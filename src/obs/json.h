#ifndef TOPK_OBS_JSON_H_
#define TOPK_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace topk {

/// Streaming JSON emitter used by the observability exporters (trace files,
/// metrics snapshots, unified stats). Handles commas, nesting, and string
/// escaping; the caller is responsible for well-formed call ordering
/// (Key() before every value inside an object).
class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  void Key(std::string_view name);
  void String(std::string_view value);
  void Number(double value);
  void Number(int64_t value);
  void Number(uint64_t value);
  void Bool(bool value);
  void Null();

  /// The document produced so far.
  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

  /// Appends `value` escaped (with surrounding quotes) to `*out`.
  static void AppendEscaped(std::string_view value, std::string* out);

 private:
  void BeforeValue();

  std::string out_;
  /// One entry per open container: true until the first element is written.
  std::vector<bool> first_;
  bool pending_key_ = false;
};

/// Minimal JSON document model, parsed with a recursive-descent parser.
/// Exists so tests and tools can schema-check the exporters' output without
/// an external dependency; it is not a general-purpose JSON library (no
/// \uXXXX surrogate pairs, numbers parsed as double).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses a complete document; trailing garbage is an error.
  static Result<JsonValue> Parse(std::string_view text);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array() const { return array_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Object member lookup; null when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

 private:
  friend class JsonParserAccess;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace topk

#endif  // TOPK_OBS_JSON_H_
