#include "obs/metrics.h"

#include <algorithm>
#include <limits>

#include "obs/json.h"

namespace topk {

void LatencyHistogram::Record(int64_t nanos) {
  if (nanos < 0) nanos = 0;
  const uint64_t sample = static_cast<uint64_t>(nanos);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
  buckets_[BucketIndex(sample)].fetch_add(1, std::memory_order_relaxed);

  int64_t seen = min_.load(std::memory_order_relaxed);
  while (seen > nanos && !min_.compare_exchange_weak(
                             seen, nanos, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (seen < nanos && !max_.compare_exchange_weak(
                             seen, nanos, std::memory_order_relaxed)) {
  }
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const {
  Snapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum_nanos = sum_.load(std::memory_order_relaxed);
  snap.min_nanos =
      snap.count == 0 ? 0 : min_.load(std::memory_order_relaxed);
  snap.max_nanos = max_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < kBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return snap;
}

void LatencyHistogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<int64_t>::max(), std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
}

double LatencyHistogram::Snapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const uint64_t next = cumulative + buckets[i];
    if (static_cast<double>(next) >= target) {
      const double lo = static_cast<double>(BucketLowerBound(i));
      const double hi =
          i == 0 ? 0.0 : static_cast<double>(BucketLowerBound(i + 1));
      const double into =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(buckets[i]);
      double value = lo + (hi - lo) * into;
      // Tighten with the exact extremes when the sample lands in a
      // boundary bucket.
      value = std::max(value, static_cast<double>(min_nanos));
      value = std::min(value, static_cast<double>(max_nanos));
      return value;
    }
    cumulative = next;
  }
  return static_cast<double>(max_nanos);
}

MetricsCounter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name), std::make_unique<MetricsCounter>())
             .first;
  }
  return it->second.get();
}

MetricsGauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<MetricsGauge>())
             .first;
  }
  return it->second.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<LatencyHistogram>())
             .first;
  }
  return it->second.get();
}

RegistrySnapshot MetricsRegistry::TakeSnapshot() const {
  RegistrySnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace(name, gauge->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.emplace(name, histogram->snapshot());
  }
  return snap;
}

RegistrySnapshot RegistrySnapshot::DeltaSince(
    const RegistrySnapshot& baseline) const {
  RegistrySnapshot delta = *this;
  for (auto& [name, value] : delta.counters) {
    auto it = baseline.counters.find(name);
    if (it == baseline.counters.end()) continue;
    value = value >= it->second ? value - it->second : 0;
  }
  for (auto& [name, snap] : delta.histograms) {
    auto it = baseline.histograms.find(name);
    if (it == baseline.histograms.end()) continue;
    const LatencyHistogram::Snapshot& base = it->second;
    snap.count = snap.count >= base.count ? snap.count - base.count : 0;
    snap.sum_nanos =
        snap.sum_nanos >= base.sum_nanos ? snap.sum_nanos - base.sum_nanos : 0;
    for (size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
      snap.buckets[i] = snap.buckets[i] >= base.buckets[i]
                            ? snap.buckets[i] - base.buckets[i]
                            : 0;
    }
    if (snap.count == 0) {
      snap.min_nanos = 0;
      snap.max_nanos = 0;
    }
  }
  return delta;
}

void RegistrySnapshot::WriteJson(JsonWriter* writer) const {
  writer->BeginObject();
  writer->Key("counters");
  writer->BeginObject();
  for (const auto& [name, value] : counters) {
    writer->Key(name);
    writer->Number(value);
  }
  writer->EndObject();
  writer->Key("gauges");
  writer->BeginObject();
  for (const auto& [name, value] : gauges) {
    writer->Key(name);
    writer->Number(value);
  }
  writer->EndObject();
  writer->Key("histograms");
  writer->BeginObject();
  for (const auto& [name, snap] : histograms) {
    writer->Key(name);
    writer->BeginObject();
    writer->Key("count");
    writer->Number(snap.count);
    writer->Key("sum_nanos");
    writer->Number(snap.sum_nanos);
    writer->Key("min_nanos");
    writer->Number(snap.min_nanos);
    writer->Key("max_nanos");
    writer->Number(snap.max_nanos);
    writer->Key("mean_nanos");
    writer->Number(snap.mean_nanos());
    writer->Key("p50_nanos");
    writer->Number(snap.Percentile(50));
    writer->Key("p95_nanos");
    writer->Number(snap.Percentile(95));
    writer->Key("p99_nanos");
    writer->Number(snap.Percentile(99));
    writer->EndObject();
  }
  writer->EndObject();
  writer->EndObject();
}

std::string RegistrySnapshot::ToJson() const {
  JsonWriter writer;
  WriteJson(&writer);
  return writer.TakeString();
}

void MetricsRegistry::WriteJson(JsonWriter* writer) const {
  TakeSnapshot().WriteJson(writer);
}

std::string MetricsRegistry::ToJson() const {
  JsonWriter writer;
  WriteJson(&writer);
  return writer.TakeString();
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

MetricsRegistry& GlobalMetrics() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace topk
