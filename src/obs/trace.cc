#include "obs/trace.h"

#include <unistd.h>

#include <fstream>
#include <unordered_map>

#include "obs/json.h"
#include "obs/obs_context.h"

namespace topk {

namespace {

uint64_t NextTracerId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

void WriteArgs(const std::vector<TraceArg>& args, JsonWriter* writer) {
  writer->Key("args");
  writer->BeginObject();
  for (const TraceArg& arg : args) {
    writer->Key(arg.name);
    switch (arg.kind) {
      case TraceArg::Kind::kDouble:
        writer->Number(arg.double_value);
        break;
      case TraceArg::Kind::kInt:
        writer->Number(arg.int_value);
        break;
      case TraceArg::Kind::kUint:
        writer->Number(arg.uint_value);
        break;
      case TraceArg::Kind::kString:
        writer->String(arg.string_value);
        break;
    }
  }
  writer->EndObject();
}

int64_t SteadyNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Tracer::Tracer() : tracer_id_(NextTracerId()) {
  epoch_nanos_.store(SteadyNowNanos(), std::memory_order_relaxed);
}

Tracer::~Tracer() = default;

void Tracer::Start() {
  Clear();
  epoch_nanos_.store(SteadyNowNanos(), std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
}

bool Tracer::DropIfFull(ThreadBuffer* buffer) {
  // Not a metric wrapper cached per call site: drops are rare (the buffer
  // has to fill first), so the registry lookup cost is irrelevant, and a
  // function-local static would pin the counter to whichever registry
  // existed at first drop.
  if (buffer->events.size() <
      max_events_per_thread_.load(std::memory_order_relaxed)) {
    return false;
  }
  dropped_.fetch_add(1, std::memory_order_relaxed);
  GlobalMetrics().GetCounter("obs.trace.events_dropped")->Add(1);
  if (ObsContext* obs = CurrentObsContext()) {
    obs->metrics().GetCounter("obs.trace.events_dropped")->Add(1);
  }
  return true;
}

void Tracer::Stop() { enabled_.store(false, std::memory_order_release); }

int64_t Tracer::NowNanos() const {
  return SteadyNowNanos() - epoch_nanos_.load(std::memory_order_relaxed);
}

Tracer::ThreadBuffer* Tracer::GetThreadBuffer() {
  // Keyed by tracer id, not pointer: a destroyed tracer's address can be
  // reused, and stale cache entries must not alias the new instance.
  thread_local std::unordered_map<uint64_t, std::shared_ptr<ThreadBuffer>>
      buffers_by_tracer;
  auto it = buffers_by_tracer.find(tracer_id_);
  if (it != buffers_by_tracer.end()) return it->second.get();

  auto buffer = std::make_shared<ThreadBuffer>();
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffer->tid = next_tid_++;
    buffers_.push_back(buffer);
  }
  buffers_by_tracer.emplace(tracer_id_, buffer);
  return buffer.get();
}

void Tracer::RecordComplete(const char* name, const char* category,
                            int64_t start_nanos, int64_t dur_nanos,
                            std::vector<TraceArg> args) {
  if (!enabled()) return;
  ThreadBuffer* buffer = GetThreadBuffer();
  TraceEvent event;
  event.phase = 'X';
  event.name = name;
  event.category = category;
  event.start_nanos = start_nanos;
  event.dur_nanos = dur_nanos;
  event.tid = buffer->tid;
  event.args = std::move(args);
  std::lock_guard<std::mutex> lock(buffer->mu);
  if (DropIfFull(buffer)) return;
  buffer->events.push_back(std::move(event));
}

void Tracer::RecordInstant(const char* name, const char* category,
                           std::vector<TraceArg> args) {
  if (!enabled()) return;
  ThreadBuffer* buffer = GetThreadBuffer();
  TraceEvent event;
  event.phase = 'i';
  event.name = name;
  event.category = category;
  event.start_nanos = NowNanos();
  event.tid = buffer->tid;
  event.args = std::move(args);
  std::lock_guard<std::mutex> lock(buffer->mu);
  if (DropIfFull(buffer)) return;
  buffer->events.push_back(std::move(event));
}

std::string Tracer::ToJson() const {
  const int64_t pid = static_cast<int64_t>(::getpid());
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffers = buffers_;
  }
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("traceEvents");
  writer.BeginArray();
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    for (const TraceEvent& event : buffer->events) {
      writer.BeginObject();
      writer.Key("name");
      writer.String(event.name);
      writer.Key("cat");
      writer.String(event.category);
      writer.Key("ph");
      writer.String(std::string_view(&event.phase, 1));
      // Chrome trace timestamps are fractional microseconds.
      writer.Key("ts");
      writer.Number(static_cast<double>(event.start_nanos) / 1000.0);
      if (event.phase == 'X') {
        writer.Key("dur");
        writer.Number(static_cast<double>(event.dur_nanos) / 1000.0);
      }
      if (event.phase == 'i') {
        writer.Key("s");
        writer.String("t");  // thread-scoped instant marker
      }
      writer.Key("pid");
      writer.Number(pid);
      writer.Key("tid");
      writer.Number(static_cast<int64_t>(event.tid));
      if (!event.args.empty()) WriteArgs(event.args, &writer);
      writer.EndObject();
    }
  }
  writer.EndArray();
  writer.Key("displayTimeUnit");
  writer.String("ms");
  writer.EndObject();
  return writer.TakeString();
}

Status Tracer::WriteJsonFile(const std::string& path) const {
  const std::string doc = ToJson();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open trace file for writing: " + path);
  }
  out.write(doc.data(), static_cast<std::streamsize>(doc.size()));
  out.flush();
  if (!out) return Status::IoError("failed writing trace file: " + path);
  return Status::OK();
}

size_t Tracer::event_count() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffers = buffers_;
  }
  size_t total = 0;
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    total += buffer->events.size();
  }
  return total;
}

void Tracer::Clear() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffers = buffers_;
  }
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    buffer->events.clear();
  }
  dropped_.store(0, std::memory_order_relaxed);
}

Tracer& GlobalTracer() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

Tracer& ActiveTracer() {
  if (ObsContext* obs = CurrentObsContext()) {
    if (obs->tracer() != nullptr) return *obs->tracer();
  }
  return GlobalTracer();
}

bool TracingEnabled() { return ActiveTracer().enabled(); }

void TraceInstant(const char* name, const char* category,
                  std::vector<TraceArg> args) {
  ActiveTracer().RecordInstant(name, category, std::move(args));
}

TraceSpan::TraceSpan(const char* name, const char* category)
    : tracer_(nullptr), name_(name), category_(category) {
  Tracer& active = ActiveTracer();
  if (active.enabled()) {
    tracer_ = &active;
    start_nanos_ = tracer_->NowNanos();
  }
}

TraceSpan::TraceSpan(const char* name, const char* category,
                     std::vector<TraceArg> args)
    : TraceSpan(name, category) {
  if (tracer_ != nullptr) args_ = std::move(args);
}

void TraceSpan::AddArg(TraceArg arg) {
  if (tracer_ != nullptr) args_.push_back(std::move(arg));
}

void TraceSpan::End() {
  if (tracer_ == nullptr) return;
  Tracer* tracer = tracer_;
  tracer_ = nullptr;
  const int64_t end_nanos = tracer->NowNanos();
  tracer->RecordComplete(name_, category_, start_nanos_,
                         end_nanos - start_nanos_, std::move(args_));
}

}  // namespace topk
