#include "obs/obs_context.h"

#include <chrono>

#include "obs/trace.h"

namespace topk {
namespace {

int64_t SteadyNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Per-thread observability cursor: which context is installed and which
/// phase node new work lands in. Both raw pointers — the CLI / test /
/// pool-task wrapper that installed the scope holds the owning shared_ptr
/// for strictly longer than the scope lives.
struct ObsTls {
  ObsContext* context = nullptr;
  /// Owning handle mirroring `context`, so pool tasks scheduled from this
  /// thread can capture a shared_ptr without shared_from_this tricks.
  std::shared_ptr<ObsContext> shared;
  PhaseNode* node = nullptr;
};

ObsTls& Tls() {
  thread_local ObsTls tls;
  return tls;
}

}  // namespace

PhaseTimeline::PhaseTimeline() {
  root_ = std::make_unique<PhaseNode>();
  root_->name = "query";
  background_ = std::make_unique<PhaseNode>();
  background_->name = "background";
}

PhaseNode* PhaseTimeline::EnterChild(PhaseNode* parent, const char* name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& child : parent->children) {
    if (child->name == name) return child.get();
  }
  auto node = std::make_unique<PhaseNode>();
  node->name = name;
  node->parent = parent;
  PhaseNode* raw = node.get();
  parent->children.push_back(std::move(node));
  return raw;
}

ObsContext::ObsContext(std::string label)
    : label_(std::move(label)),
      epoch_nanos_(SteadyNowNanos()),
      tracer_(&GlobalTracer()) {}

std::shared_ptr<ObsContext> ObsContext::Create(std::string label) {
  return std::shared_ptr<ObsContext>(new ObsContext(std::move(label)));
}

int64_t ObsContext::ElapsedNanos() const {
  const int64_t frozen = frozen_elapsed_nanos_.load(std::memory_order_relaxed);
  if (frozen >= 0) return frozen;
  return SteadyNowNanos() - epoch_nanos_;
}

void ObsContext::MarkQueryComplete() {
  int64_t expected = -1;
  frozen_elapsed_nanos_.compare_exchange_strong(
      expected, SteadyNowNanos() - epoch_nanos_, std::memory_order_relaxed);
}

void ObsContext::RecordCutoffEvent(const CutoffEvent& event) {
  std::lock_guard<std::mutex> lock(cutoff_mu_);
  if (cutoff_events_.size() >= kMaxCutoffEvents) {
    cutoff_events_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  cutoff_events_.push_back(event);
}

std::vector<ObsContext::CutoffEvent> ObsContext::cutoff_events() const {
  std::lock_guard<std::mutex> lock(cutoff_mu_);
  return cutoff_events_;
}

void ObsContext::NoteMemoryBytes(uint64_t bytes) {
  uint64_t seen = peak_memory_bytes_.load(std::memory_order_relaxed);
  while (bytes > seen && !peak_memory_bytes_.compare_exchange_weak(
                             seen, bytes, std::memory_order_relaxed)) {
  }
}

void ObsContext::NoteSpillBytes(uint64_t bytes) {
  uint64_t seen = peak_spill_bytes_.load(std::memory_order_relaxed);
  while (bytes > seen && !peak_spill_bytes_.compare_exchange_weak(
                             seen, bytes, std::memory_order_relaxed)) {
  }
}

ObsContext* CurrentObsContext() { return Tls().context; }

std::shared_ptr<ObsContext> CurrentObsContextShared() { return Tls().shared; }

ObsScope::ObsScope(const std::shared_ptr<ObsContext>& context,
                   bool background) {
  if (context == nullptr) return;
  ObsTls& tls = Tls();
  if (tls.context == context.get()) return;
  installed_ = true;
  saved_context_ = tls.context;
  saved_shared_ = std::move(tls.shared);
  saved_node_ = tls.node;
  tls.context = context.get();
  tls.shared = context;
  PhaseNode* entry = background ? context->timeline().background()
                                : context->timeline().root();
  entry->entered.fetch_add(1, std::memory_order_relaxed);
  tls.node = entry;
}

ObsScope::~ObsScope() {
  if (!installed_) return;
  ObsTls& tls = Tls();
  tls.context = saved_context_;
  tls.shared = std::move(saved_shared_);
  tls.node = saved_node_;
}

PhaseScope::PhaseScope(const char* name) {
  ObsTls& tls = Tls();
  if (tls.context == nullptr) return;
  node_ = tls.context->timeline().EnterChild(tls.node, name);
  node_->entered.fetch_add(1, std::memory_order_relaxed);
  saved_ = tls.node;
  tls.node = node_;
  start_nanos_ = SteadyNowNanos();
}

PhaseScope::~PhaseScope() {
  if (node_ == nullptr) return;
  node_->wall_nanos.fetch_add(SteadyNowNanos() - start_nanos_,
                              std::memory_order_relaxed);
  Tls().node = saved_;
}

void ObsRecordIoWait(int64_t nanos) {
  PhaseNode* node = Tls().node;
  if (node == nullptr) return;
  node->io_wait_nanos.fetch_add(nanos, std::memory_order_relaxed);
}

void ObsRecordStorageRead(uint64_t bytes, int64_t nanos) {
  PhaseNode* node = Tls().node;
  if (node == nullptr) return;
  node->bytes_read.fetch_add(bytes, std::memory_order_relaxed);
  node->io_wait_nanos.fetch_add(nanos, std::memory_order_relaxed);
}

void ObsRecordStorageWrite(uint64_t bytes, int64_t nanos) {
  PhaseNode* node = Tls().node;
  if (node == nullptr) return;
  node->bytes_written.fetch_add(bytes, std::memory_order_relaxed);
  node->io_wait_nanos.fetch_add(nanos, std::memory_order_relaxed);
}

void ObsNoteSpillBytes(uint64_t bytes) {
  if (ObsContext* obs = CurrentObsContext()) obs->NoteSpillBytes(bytes);
}

}  // namespace topk
