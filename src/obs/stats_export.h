#ifndef TOPK_OBS_STATS_EXPORT_H_
#define TOPK_OBS_STATS_EXPORT_H_

#include <optional>
#include <string>

#include "io/io_stats.h"
#include "obs/metrics.h"
#include "topk/topk_operator.h"

namespace topk {

class ObsContext;

/// Everything one operator execution produced, gathered for machine-readable
/// export: the operator's own counters, the storage substrate's traffic,
/// a metrics section (live registry or pre-taken snapshot), and optionally
/// the per-query profile.
struct StatsExport {
  /// Schema version stamped into the document; bump on breaking changes.
  /// v2: added the optional "profile" section (per-query phase tree,
  /// cutoff evolution, high-water marks) and snapshot-backed metrics.
  static constexpr int kSchemaVersion = 2;

  std::string operator_name;
  OperatorStats operator_stats;
  IoStats::Snapshot io;
  /// Registry whose live state is appended under "metrics"; ignored when
  /// `metrics` below is set, omitted (with `metrics` unset) when null.
  const MetricsRegistry* registry = nullptr;
  /// Pre-taken metrics snapshot for the "metrics" section — the right
  /// choice for per-query exports (a scoped registry's snapshot, or a
  /// global delta from RegistrySnapshot::DeltaSince) since it needs no
  /// destructive reset between queries.
  std::optional<RegistrySnapshot> metrics;
  /// Per-query observability context; when non-null its profile report is
  /// appended under "profile".
  const ObsContext* obs = nullptr;
};

/// Single JSON document:
///
///   {"schema_version": 2,
///    "operator": "HistogramTopK",
///    "operator_stats": {rows_consumed, rows_eliminated_input, ...},
///    "io": {bytes_written, bytes_read, ...},
///    "metrics": {"counters": {...}, "gauges": {...}, "histograms": {...}},
///    "profile": {"label", "total_wall_nanos", "phases": {...}, ...}}
///
/// Consumed by bench tooling and `topk_cli --metrics-json`; the layout is a
/// contract checked by tests/stats_export_test.
std::string FormatStatsJson(const StatsExport& stats);

}  // namespace topk

#endif  // TOPK_OBS_STATS_EXPORT_H_
