#ifndef TOPK_OBS_STATS_EXPORT_H_
#define TOPK_OBS_STATS_EXPORT_H_

#include <string>

#include "io/io_stats.h"
#include "topk/topk_operator.h"

namespace topk {

class MetricsRegistry;

/// Everything one operator execution produced, gathered for machine-readable
/// export: the operator's own counters, the storage substrate's traffic, and
/// (optionally) the process-wide metrics registry.
struct StatsExport {
  /// Schema version stamped into the document; bump on breaking changes.
  static constexpr int kSchemaVersion = 1;

  std::string operator_name;
  OperatorStats operator_stats;
  IoStats::Snapshot io;
  /// Process-wide registry snapshot appended under "metrics"; omitted when
  /// null.
  const MetricsRegistry* registry = nullptr;
};

/// Single JSON document:
///
///   {"schema_version": 1,
///    "operator": "HistogramTopK",
///    "operator_stats": {rows_consumed, rows_eliminated_input, ...},
///    "io": {bytes_written, bytes_read, ...},
///    "metrics": {"counters": {...}, "gauges": {...}, "histograms": {...}}}
///
/// Consumed by bench tooling and `topk_cli --metrics-json`; the layout is a
/// contract checked by tests/stats_export_test.
std::string FormatStatsJson(const StatsExport& stats);

}  // namespace topk

#endif  // TOPK_OBS_STATS_EXPORT_H_
