#include "obs/stats_export.h"

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/profile.h"

namespace topk {

namespace {

void WriteOperatorStats(const OperatorStats& stats, JsonWriter* writer) {
  writer->BeginObject();
  writer->Key("rows_consumed");
  writer->Number(stats.rows_consumed);
  writer->Key("rows_eliminated_input");
  writer->Number(stats.rows_eliminated_input);
  writer->Key("rows_eliminated_spill");
  writer->Number(stats.rows_eliminated_spill);
  writer->Key("rows_spilled");
  writer->Number(stats.rows_spilled);
  writer->Key("runs_created");
  writer->Number(stats.runs_created);
  writer->Key("bytes_spilled");
  writer->Number(stats.bytes_spilled);
  writer->Key("merge_rows_written");
  writer->Number(stats.merge_rows_written);
  writer->Key("merge_rows_read");
  writer->Number(stats.merge_rows_read);
  writer->Key("offset_rows_seek_skipped");
  writer->Number(stats.offset_rows_seek_skipped);
  writer->Key("peak_memory_bytes");
  writer->Number(static_cast<uint64_t>(stats.peak_memory_bytes));
  writer->Key("final_cutoff");
  if (stats.final_cutoff.has_value()) {
    writer->Number(*stats.final_cutoff);
  } else {
    writer->Null();
  }
  writer->Key("filter_buckets_inserted");
  writer->Number(stats.filter_buckets_inserted);
  writer->Key("filter_consolidations");
  writer->Number(stats.filter_consolidations);
  writer->Key("consume_nanos");
  writer->Number(stats.consume_nanos);
  writer->Key("finish_nanos");
  writer->Number(stats.finish_nanos);
  writer->Key("total_seconds");
  writer->Number(stats.total_seconds());
  writer->EndObject();
}

void WriteIoSnapshot(const IoStats::Snapshot& io, JsonWriter* writer) {
  writer->BeginObject();
  writer->Key("bytes_written");
  writer->Number(io.bytes_written);
  writer->Key("bytes_read");
  writer->Number(io.bytes_read);
  writer->Key("write_calls");
  writer->Number(io.write_calls);
  writer->Key("read_calls");
  writer->Number(io.read_calls);
  writer->Key("write_nanos");
  writer->Number(io.write_nanos);
  writer->Key("read_nanos");
  writer->Number(io.read_nanos);
  writer->Key("files_created");
  writer->Number(io.files_created);
  writer->Key("files_deleted");
  writer->Number(io.files_deleted);
  writer->EndObject();
}

}  // namespace

std::string FormatStatsJson(const StatsExport& stats) {
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("schema_version");
  writer.Number(static_cast<int64_t>(StatsExport::kSchemaVersion));
  writer.Key("operator");
  writer.String(stats.operator_name);
  writer.Key("operator_stats");
  WriteOperatorStats(stats.operator_stats, &writer);
  writer.Key("io");
  WriteIoSnapshot(stats.io, &writer);
  if (stats.metrics.has_value()) {
    writer.Key("metrics");
    stats.metrics->WriteJson(&writer);
  } else if (stats.registry != nullptr) {
    writer.Key("metrics");
    stats.registry->WriteJson(&writer);
  }
  if (stats.obs != nullptr) {
    writer.Key("profile");
    WriteProfileJson(BuildProfileReport(*stats.obs), &writer);
  }
  writer.EndObject();
  return writer.TakeString();
}

}  // namespace topk
