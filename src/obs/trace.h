#ifndef TOPK_OBS_TRACE_H_
#define TOPK_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/status.h"

namespace topk {

/// One key/value pair attached to a trace event. Numeric and string values
/// are supported (Chrome trace args render both).
struct TraceArg {
  enum class Kind { kDouble, kInt, kUint, kString };

  template <typename T,
            std::enable_if_t<std::is_arithmetic_v<T>, int> = 0>
  TraceArg(std::string arg_name, T value) : name(std::move(arg_name)) {
    if constexpr (std::is_floating_point_v<T>) {
      kind = Kind::kDouble;
      double_value = static_cast<double>(value);
    } else if constexpr (std::is_signed_v<T>) {
      kind = Kind::kInt;
      int_value = static_cast<int64_t>(value);
    } else {
      kind = Kind::kUint;
      uint_value = static_cast<uint64_t>(value);
    }
  }
  TraceArg(std::string arg_name, std::string value)
      : name(std::move(arg_name)),
        kind(Kind::kString),
        string_value(std::move(value)) {}
  TraceArg(std::string arg_name, const char* value)
      : TraceArg(std::move(arg_name), std::string(value)) {}

  std::string name;
  Kind kind = Kind::kDouble;
  double double_value = 0.0;
  int64_t int_value = 0;
  uint64_t uint_value = 0;
  std::string string_value;
};

/// One recorded event in Chrome trace-event terms: a complete span ('X',
/// with duration) or an instant event ('i').
struct TraceEvent {
  char phase = 'X';
  const char* name = "";      // string literal at every call site
  const char* category = "";  // ditto
  int64_t start_nanos = 0;    // relative to the tracer's Start()
  int64_t dur_nanos = 0;      // spans only
  uint32_t tid = 0;
  std::vector<TraceArg> args;
};

/// Records scoped spans and instant events per thread and dumps Chrome
/// trace-event JSON loadable in Perfetto / chrome://tracing.
///
/// Disabled (the default) it costs one relaxed atomic load per span/event
/// call site and allocates nothing. Started, each event is appended to a
/// per-thread buffer under that buffer's (uncontended) mutex, so recording
/// threads never serialize against each other — only against export, which
/// may run concurrently.
class Tracer {
 public:
  Tracer();
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Clears prior events and begins recording; timestamps restart at 0.
  void Start();
  void Stop();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Nanoseconds since Start() (monotonic clock).
  int64_t NowNanos() const;

  void RecordComplete(const char* name, const char* category,
                      int64_t start_nanos, int64_t dur_nanos,
                      std::vector<TraceArg> args = {});
  void RecordInstant(const char* name, const char* category,
                     std::vector<TraceArg> args = {});

  /// The full Chrome trace document: {"traceEvents": [...], ...}.
  std::string ToJson() const;
  /// Writes ToJson() to a local file.
  Status WriteJsonFile(const std::string& path) const;

  /// Events recorded so far (all threads).
  size_t event_count() const;
  void Clear();

  /// Per-thread buffer capacity. Once a thread's buffer is full, further
  /// events on that thread are dropped (counted, never silently): a
  /// runaway query must not grow trace memory without bound. Default
  /// 262144 events per thread; settable (before Start()) mainly so tests
  /// can exercise the drop path cheaply.
  size_t max_events_per_thread() const {
    return max_events_per_thread_.load(std::memory_order_relaxed);
  }
  void set_max_events_per_thread(size_t cap) {
    max_events_per_thread_.store(cap, std::memory_order_relaxed);
  }
  /// Events dropped to the capacity cap since the last Start()/Clear();
  /// also mirrored to the "obs.trace.events_dropped" metric.
  uint64_t dropped_count() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  struct ThreadBuffer {
    std::mutex mu;
    std::vector<TraceEvent> events;
    uint32_t tid = 0;
  };

  /// True (and counts the drop) when `buffer` has no room for one more
  /// event.
  bool DropIfFull(ThreadBuffer* buffer);

  /// This thread's buffer, registering it on first use.
  ThreadBuffer* GetThreadBuffer();

  const uint64_t tracer_id_;  // keys the thread-local buffer cache
  std::atomic<bool> enabled_{false};
  std::atomic<size_t> max_events_per_thread_{262144};
  std::atomic<uint64_t> dropped_{0};
  /// steady_clock nanos at Start(); atomic so NowNanos() is lock-free.
  std::atomic<int64_t> epoch_nanos_{0};

  mutable std::mutex mu_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  uint32_t next_tid_ = 1;
};

/// The process-wide tracer instrumentation records into by default.
Tracer& GlobalTracer();

/// The tracer for the current thread: the installed ObsContext's tracer
/// when a per-query scope is active (obs_context.h), otherwise the global
/// tracer. TraceSpan / TraceInstant route through this.
Tracer& ActiveTracer();

/// Is the active tracer recording? (One TLS read + one relaxed load.)
bool TracingEnabled();

/// Emits an instant event on the active tracer (no-op when disabled).
/// Callers with expensive-to-build args should guard with TracingEnabled().
void TraceInstant(const char* name, const char* category,
                  std::vector<TraceArg> args = {});

/// RAII span on the active tracer: records a complete event covering the
/// scope's lifetime. When tracing is off at construction this is a no-op
/// (a null tracer pointer; no clock reads, no allocations).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "topk");
  TraceSpan(const char* name, const char* category,
            std::vector<TraceArg> args);
  ~TraceSpan() { End(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// True when the span will be recorded; guards arg construction.
  bool active() const { return tracer_ != nullptr; }
  /// Attaches an arg resolved mid-scope (e.g. bytes moved); no-op when
  /// inactive.
  void AddArg(TraceArg arg);
  /// Ends the span early (the destructor then does nothing).
  void End();

 private:
  Tracer* tracer_;
  const char* name_;
  const char* category_;
  int64_t start_nanos_ = 0;
  std::vector<TraceArg> args_;
};

}  // namespace topk

#endif  // TOPK_OBS_TRACE_H_
