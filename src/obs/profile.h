#ifndef TOPK_OBS_PROFILE_H_
#define TOPK_OBS_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/obs_context.h"

namespace topk {

class JsonWriter;

/// One phase of a finished query, with times resolved to plain values.
struct ProfilePhase {
  std::string name;
  int64_t wall_nanos = 0;
  /// Wall time not covered by child phases (clamped at zero: background
  /// threads can record into a foreground node while it is closed, and a
  /// re-entered phase's children may overlap differently than its own
  /// accumulation — never report negative time).
  int64_t self_nanos = 0;
  int64_t io_wait_nanos = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t entered = 0;
  std::vector<ProfilePhase> children;
};

/// EXPLAIN ANALYZE-style profile of one query, assembled from its
/// ObsContext once the result is in hand. `phases` is the foreground tree
/// (root wall time == the query's elapsed time, so the self times of the
/// root and all descendants sum exactly to the total); `background` holds
/// pool-thread work that overlapped the foreground and is reported beside
/// it, not added to it.
struct ProfileReport {
  std::string label;
  int64_t total_wall_nanos = 0;
  ProfilePhase phases;
  ProfilePhase background;

  /// The query's scoped metrics (delta-free: the context registry only
  /// ever saw this query).
  RegistrySnapshot metrics;

  std::vector<ObsContext::CutoffEvent> cutoff_events;
  uint64_t cutoff_events_dropped = 0;

  uint64_t peak_memory_bytes = 0;
  uint64_t peak_spill_bytes = 0;
  uint64_t trace_events_dropped = 0;
};

/// Snapshots `obs` into a report. Call after the query completed (ideally
/// after ObsContext::MarkQueryComplete so the total is frozen); safe while
/// background pool work is still trickling in — accumulators are read
/// atomically.
ProfileReport BuildProfileReport(const ObsContext& obs);

/// Human-readable rendering (the `topk_cli --profile` output): the phase
/// tree with wall/self/I/O columns, cutoff-filter evolution, counter
/// highlights, and high-water marks.
std::string FormatProfileText(const ProfileReport& report);

/// The report as a JSON object (the "profile" section of the unified
/// stats export). Scoped metrics are NOT repeated here — they are the
/// document's "metrics" section; this holds the phase tree, cutoff
/// evolution, and high-water marks.
void WriteProfileJson(const ProfileReport& report, JsonWriter* writer);

}  // namespace topk

#endif  // TOPK_OBS_PROFILE_H_
