#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace topk {

void JsonWriter::AppendEscaped(std::string_view value, std::string* out) {
  out->push_back('"');
  for (char c : value) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!first_.empty()) {
    if (!first_.back()) out_.push_back(',');
    first_.back() = false;
  }
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_.push_back('{');
  first_.push_back(true);
}

void JsonWriter::EndObject() {
  out_.push_back('}');
  first_.pop_back();
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_.push_back('[');
  first_.push_back(true);
}

void JsonWriter::EndArray() {
  out_.push_back(']');
  first_.pop_back();
}

void JsonWriter::Key(std::string_view name) {
  if (!first_.empty()) {
    if (!first_.back()) out_.push_back(',');
    first_.back() = false;
  }
  AppendEscaped(name, &out_);
  out_.push_back(':');
  pending_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  BeforeValue();
  AppendEscaped(value, &out_);
}

void JsonWriter::Number(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";  // JSON has no Infinity/NaN literals
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out_ += buf;
}

void JsonWriter::Number(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::Number(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
}

/// Lets the parser (a .cc-local class) fill JsonValue's private fields.
class JsonParserAccess {
 public:
  static void SetKind(JsonValue* v, JsonValue::Kind k) { v->kind_ = k; }
  static void SetBool(JsonValue* v, bool b) { v->bool_ = b; }
  static void SetNumber(JsonValue* v, double d) { v->number_ = d; }
  static std::string* StringStorage(JsonValue* v) { return &v->string_; }
  static std::vector<JsonValue>* Array(JsonValue* v) { return &v->array_; }
  static std::vector<std::pair<std::string, JsonValue>>* Members(
      JsonValue* v) {
    return &v->members_;
  }
};

namespace {

/// Recursive-descent parser over a string_view with a position cursor.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> ParseDocument(JsonValue* out) {
    TOPK_RETURN_NOT_OK(ParseValue(out, 0));
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after document");
    }
    return std::move(*out);
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseLiteral(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return Error("bad literal");
    }
    pos_ += word.size();
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected string");
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Error("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return Error("bad \\u escape");
            }
            // Basic-multilingual-plane only; encode as UTF-8.
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Error("bad escape character");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      } else {
        out->push_back(c);
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(double* out) {
    const size_t start = pos_;
    if (Consume('-')) {}
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected number");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    *out = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Error("malformed number");
    return Status::OK();
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    *out = JsonValue();
    if (c == '{') {
      ++pos_;
      auto& node = *out;
      SetKind(&node, JsonValue::Kind::kObject);
      SkipSpace();
      if (Consume('}')) return Status::OK();
      for (;;) {
        SkipSpace();
        std::string key;
        TOPK_RETURN_NOT_OK(ParseString(&key));
        SkipSpace();
        if (!Consume(':')) return Error("expected ':'");
        JsonValue value;
        TOPK_RETURN_NOT_OK(ParseValue(&value, depth + 1));
        Members(&node).emplace_back(std::move(key), std::move(value));
        SkipSpace();
        if (Consume(',')) continue;
        if (Consume('}')) return Status::OK();
        return Error("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos_;
      auto& node = *out;
      SetKind(&node, JsonValue::Kind::kArray);
      SkipSpace();
      if (Consume(']')) return Status::OK();
      for (;;) {
        JsonValue value;
        TOPK_RETURN_NOT_OK(ParseValue(&value, depth + 1));
        Array(&node).push_back(std::move(value));
        SkipSpace();
        if (Consume(',')) continue;
        if (Consume(']')) return Status::OK();
        return Error("expected ',' or ']'");
      }
    }
    if (c == '"') {
      SetKind(out, JsonValue::Kind::kString);
      return ParseString(StringStorage(out));
    }
    if (c == 't') {
      SetKind(out, JsonValue::Kind::kBool);
      SetBool(out, true);
      return ParseLiteral("true");
    }
    if (c == 'f') {
      SetKind(out, JsonValue::Kind::kBool);
      SetBool(out, false);
      return ParseLiteral("false");
    }
    if (c == 'n') {
      SetKind(out, JsonValue::Kind::kNull);
      return ParseLiteral("null");
    }
    SetKind(out, JsonValue::Kind::kNumber);
    double v = 0;
    TOPK_RETURN_NOT_OK(ParseNumber(&v));
    SetNumber(out, v);
    return Status::OK();
  }

  static void SetKind(JsonValue* v, JsonValue::Kind k) {
    JsonParserAccess::SetKind(v, k);
  }
  static void SetBool(JsonValue* v, bool b) { JsonParserAccess::SetBool(v, b); }
  static void SetNumber(JsonValue* v, double d) {
    JsonParserAccess::SetNumber(v, d);
  }
  static std::string* StringStorage(JsonValue* v) {
    return JsonParserAccess::StringStorage(v);
  }
  static std::vector<JsonValue>& Array(JsonValue* v) {
    return *JsonParserAccess::Array(v);
  }
  static std::vector<std::pair<std::string, JsonValue>>& Members(
      JsonValue* v) {
    return *JsonParserAccess::Members(v);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  JsonValue value;
  JsonParser parser(text);
  return parser.ParseDocument(&value);
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

}  // namespace topk
