#include "obs/profile.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "obs/json.h"

namespace topk {

namespace {

/// Copies the live (atomic) phase tree into plain values; `wall_override`
/// >= 0 replaces the node's accumulated wall (used for the root, whose
/// wall is the query's elapsed time rather than a scope accumulation).
ProfilePhase SnapshotPhase(const PhaseNode& node, int64_t wall_override) {
  ProfilePhase out;
  out.name = node.name;
  out.wall_nanos = wall_override >= 0
                       ? wall_override
                       : node.wall_nanos.load(std::memory_order_relaxed);
  out.io_wait_nanos = node.io_wait_nanos.load(std::memory_order_relaxed);
  out.bytes_read = node.bytes_read.load(std::memory_order_relaxed);
  out.bytes_written = node.bytes_written.load(std::memory_order_relaxed);
  out.entered = node.entered.load(std::memory_order_relaxed);
  int64_t children_wall = 0;
  for (const auto& child : node.children) {
    out.children.push_back(SnapshotPhase(*child, -1));
    children_wall += out.children.back().wall_nanos;
  }
  out.self_nanos = std::max<int64_t>(0, out.wall_nanos - children_wall);
  return out;
}

double Seconds(int64_t nanos) { return static_cast<double>(nanos) * 1e-9; }

std::string HumanBytes(uint64_t bytes) {
  char buf[32];
  if (bytes >= 1024ull * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0 * 1024.0));
  } else if (bytes >= 1024ull * 1024) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0));
  } else if (bytes >= 1024) {
    std::snprintf(buf, sizeof(buf), "%.2f KiB",
                  static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRIu64 " B", bytes);
  }
  return buf;
}

uint64_t CounterOr0(const RegistrySnapshot& metrics, std::string_view name) {
  auto it = metrics.counters.find(name);
  return it == metrics.counters.end() ? 0 : it->second;
}

void AppendPhaseLines(const ProfilePhase& phase, int depth,
                      std::string* out) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "  %*s%-*s %9.3fs self %9.3fs", depth * 2,
                "", std::max(1, 28 - depth * 2), phase.name.c_str(),
                Seconds(phase.wall_nanos), Seconds(phase.self_nanos));
  *out += buf;
  if (phase.io_wait_nanos > 0) {
    std::snprintf(buf, sizeof(buf), "  io-wait %8.3fs",
                  Seconds(phase.io_wait_nanos));
    *out += buf;
  }
  if (phase.bytes_read > 0) {
    *out += "  read " + HumanBytes(phase.bytes_read);
  }
  if (phase.bytes_written > 0) {
    *out += "  written " + HumanBytes(phase.bytes_written);
  }
  if (phase.entered > 1) {
    std::snprintf(buf, sizeof(buf), "  x%" PRIu64, phase.entered);
    *out += buf;
  }
  *out += "\n";
  for (const ProfilePhase& child : phase.children) {
    AppendPhaseLines(child, depth + 1, out);
  }
}

void AppendCutoffLine(const ObsContext::CutoffEvent& event, std::string* out) {
  const uint64_t seen = event.rows_consumed + event.rows_eliminated_input;
  const double pass_rate =
      seen == 0 ? 1.0
                : static_cast<double>(event.rows_consumed) /
                      static_cast<double>(seen);
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "    t=%8.3fs  cutoff=%-12.6g %-9s consumed=%-10" PRIu64
                " pruned=%-10" PRIu64 " pass=%5.1f%%\n",
                Seconds(event.at_nanos), event.cutoff,
                event.tightened ? "tighten" : "establish",
                event.rows_consumed, event.rows_eliminated_input,
                pass_rate * 100.0);
  *out += buf;
}

void WritePhaseJson(const ProfilePhase& phase, JsonWriter* writer) {
  writer->BeginObject();
  writer->Key("name");
  writer->String(phase.name);
  writer->Key("wall_nanos");
  writer->Number(phase.wall_nanos);
  writer->Key("self_nanos");
  writer->Number(phase.self_nanos);
  writer->Key("io_wait_nanos");
  writer->Number(phase.io_wait_nanos);
  writer->Key("bytes_read");
  writer->Number(phase.bytes_read);
  writer->Key("bytes_written");
  writer->Number(phase.bytes_written);
  writer->Key("entered");
  writer->Number(phase.entered);
  writer->Key("children");
  writer->BeginArray();
  for (const ProfilePhase& child : phase.children) {
    WritePhaseJson(child, writer);
  }
  writer->EndArray();
  writer->EndObject();
}

}  // namespace

ProfileReport BuildProfileReport(const ObsContext& obs) {
  ProfileReport report;
  report.label = obs.label();
  report.total_wall_nanos = obs.ElapsedNanos();
  {
    std::lock_guard<std::mutex> lock(obs.timeline().mu());
    report.phases =
        SnapshotPhase(*obs.timeline().root(), report.total_wall_nanos);
    report.background = SnapshotPhase(*obs.timeline().background(), -1);
  }
  report.metrics = obs.metrics().TakeSnapshot();
  report.cutoff_events = obs.cutoff_events();
  report.cutoff_events_dropped = obs.cutoff_events_dropped();
  report.peak_memory_bytes = obs.peak_memory_bytes();
  report.peak_spill_bytes = obs.peak_spill_bytes();
  report.trace_events_dropped =
      CounterOr0(report.metrics, "obs.trace.events_dropped");
  return report;
}

std::string FormatProfileText(const ProfileReport& report) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "query profile [%s]  total %.3fs\n",
                report.label.c_str(), Seconds(report.total_wall_nanos));
  out += buf;

  out += "phases (self times sum to total):\n";
  AppendPhaseLines(report.phases, 0, &out);
  if (!report.background.children.empty() ||
      report.background.io_wait_nanos > 0 || report.background.bytes_read > 0 ||
      report.background.bytes_written > 0) {
    out += "background (pool threads, overlaps the phases above):\n";
    for (const ProfilePhase& child : report.background.children) {
      AppendPhaseLines(child, 0, &out);
    }
  }

  const uint64_t compares = CounterOr0(report.metrics, "sort.compare.count");
  if (compares > 0) {
    const uint64_t ovc_hits =
        CounterOr0(report.metrics, "sort.compare.ovc_hits");
    std::snprintf(buf, sizeof(buf),
                  "merge comparisons: %" PRIu64 " full, %" PRIu64
                  " resolved by offset-value code (%.1f%% avoided)\n",
                  compares, ovc_hits,
                  100.0 * static_cast<double>(ovc_hits) /
                      static_cast<double>(compares + ovc_hits));
    out += buf;
  }

  if (!report.cutoff_events.empty()) {
    size_t establish = 0;
    for (const auto& event : report.cutoff_events) {
      if (!event.tightened) ++establish;
    }
    std::snprintf(buf, sizeof(buf),
                  "cutoff filter: %zu updates (%zu establish, %zu tighten)",
                  report.cutoff_events.size(), establish,
                  report.cutoff_events.size() - establish);
    out += buf;
    if (report.cutoff_events_dropped > 0) {
      std::snprintf(buf, sizeof(buf), ", %" PRIu64 " elided",
                    report.cutoff_events_dropped);
      out += buf;
    }
    out += "\n";
    // Head and tail of the evolution; the middle tightenings mostly
    // interpolate between them.
    constexpr size_t kHead = 4, kTail = 4;
    const auto& events = report.cutoff_events;
    if (events.size() <= kHead + kTail) {
      for (const auto& event : events) AppendCutoffLine(event, &out);
    } else {
      for (size_t i = 0; i < kHead; ++i) AppendCutoffLine(events[i], &out);
      std::snprintf(buf, sizeof(buf), "    ... %zu more updates ...\n",
                    events.size() - kHead - kTail);
      out += buf;
      for (size_t i = events.size() - kTail; i < events.size(); ++i) {
        AppendCutoffLine(events[i], &out);
      }
    }
  }

  struct Highlight {
    const char* counter;
    const char* text;
  };
  static constexpr Highlight kHighlights[] = {
      {"io.prefetch.blocks", "prefetched blocks"},
      {"io.prefetch.blocks_unconsumed", "prefetched blocks unconsumed"},
      {"io.prefetch.deadline_exceeded", "read deadlines exceeded"},
      {"io.hedge.issued", "hedged reads issued"},
      {"io.hedge.wins", "hedge wins"},
      {"io.hedge.wasted", "hedges wasted"},
      {"io.retry.attempts", "I/O retries"},
      {"io.retry.budget_withdrawn", "retry budget withdrawals"},
      {"io.health.opened", "circuit-breaker opens"},
      {"io.health.fast_fail", "circuit-breaker fast-fails"},
      {"spill.quota_rejections", "spill-quota rejections"},
      {"spill.quota_consolidations", "spill-quota consolidations"},
      {"storage.fault.transient", "injected transient faults absorbed"},
  };
  std::string events_out;
  for (const Highlight& h : kHighlights) {
    const uint64_t value = CounterOr0(report.metrics, h.counter);
    if (value == 0) continue;
    std::snprintf(buf, sizeof(buf), "  %s: %" PRIu64 "\n", h.text, value);
    events_out += buf;
  }
  if (!events_out.empty()) {
    out += "I/O events:\n";
    out += events_out;
  }

  out += "peaks: memory " + HumanBytes(report.peak_memory_bytes) +
         ", spill on disk " + HumanBytes(report.peak_spill_bytes) + "\n";
  if (report.trace_events_dropped > 0) {
    std::snprintf(buf, sizeof(buf),
                  "trace: %" PRIu64
                  " events dropped at buffer capacity (raise "
                  "max_events_per_thread)\n",
                  report.trace_events_dropped);
    out += buf;
  }
  return out;
}

void WriteProfileJson(const ProfileReport& report, JsonWriter* writer) {
  writer->BeginObject();
  writer->Key("label");
  writer->String(report.label);
  writer->Key("total_wall_nanos");
  writer->Number(report.total_wall_nanos);
  writer->Key("phases");
  WritePhaseJson(report.phases, writer);
  writer->Key("background");
  WritePhaseJson(report.background, writer);
  writer->Key("cutoff_events");
  writer->BeginArray();
  for (const auto& event : report.cutoff_events) {
    writer->BeginObject();
    writer->Key("at_nanos");
    writer->Number(event.at_nanos);
    writer->Key("cutoff");
    writer->Number(event.cutoff);
    writer->Key("tightened");
    writer->Bool(event.tightened);
    writer->Key("rows_consumed");
    writer->Number(event.rows_consumed);
    writer->Key("rows_eliminated_input");
    writer->Number(event.rows_eliminated_input);
    writer->EndObject();
  }
  writer->EndArray();
  writer->Key("cutoff_events_dropped");
  writer->Number(report.cutoff_events_dropped);
  writer->Key("peak_memory_bytes");
  writer->Number(report.peak_memory_bytes);
  writer->Key("peak_spill_bytes");
  writer->Number(report.peak_spill_bytes);
  writer->Key("trace_events_dropped");
  writer->Number(report.trace_events_dropped);
  writer->EndObject();
}

}  // namespace topk
