#ifndef TOPK_OBS_METRICS_H_
#define TOPK_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace topk {

class JsonWriter;

/// Monotonic event counter. Handles returned by MetricsRegistry are stable
/// for the registry's lifetime; call sites cache the pointer and pay one
/// relaxed atomic add per event.
class MetricsCounter {
 public:
  void Add(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-value gauge (signed: depths, queue sizes, in-flight counts).
class MetricsGauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Log-bucketed latency histogram: bucket i counts samples in
/// [2^(i-1), 2^i) nanoseconds (bucket 0 counts exact zeros). 64 buckets
/// cover every representable duration; recording is two relaxed adds plus
/// two bounded CAS loops for min/max, cheap enough for per-block I/O calls
/// (never used per row). Thread-safe; percentiles are estimated from the
/// bucket counts with linear interpolation inside the bucket.
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 64;

  void Record(int64_t nanos);

  /// Consistent-enough copy of the counters (individual loads are relaxed;
  /// concurrent recording may skew a snapshot by in-flight samples).
  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum_nanos = 0;
    int64_t min_nanos = 0;
    int64_t max_nanos = 0;
    std::array<uint64_t, kBuckets> buckets{};

    /// Estimated value at percentile `p` in [0, 100].
    double Percentile(double p) const;
    double mean_nanos() const {
      return count == 0 ? 0.0 : static_cast<double>(sum_nanos) /
                                    static_cast<double>(count);
    }
  };
  Snapshot snapshot() const;

  void Reset();

  /// Bucket index for a sample (exposed for tests): 0 for 0ns, otherwise
  /// 1 + floor(log2(nanos)).
  static size_t BucketIndex(uint64_t nanos) {
    return nanos == 0 ? 0 : static_cast<size_t>(std::bit_width(nanos));
  }
  /// Inclusive lower bound of bucket `i`.
  static uint64_t BucketLowerBound(size_t i) {
    return i == 0 ? 0 : (i == 1 ? 1 : uint64_t{1} << (i - 1));
  }

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  /// INT64_MAX until the first sample; snapshot() reports 0 while empty.
  std::atomic<int64_t> min_{std::numeric_limits<int64_t>::max()};
  std::atomic<int64_t> max_{0};
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
};

/// Point-in-time copy of every metric in a registry. Snapshots are plain
/// values: take one as a baseline before a query, another after, and
/// DeltaSince() yields that query's contribution without ever resetting
/// the live registry — ResetAll() between queries races with in-flight
/// pool-thread increments (lost or mis-attributed counts), deltas do not.
struct RegistrySnapshot {
  std::map<std::string, uint64_t, std::less<>> counters;
  std::map<std::string, int64_t, std::less<>> gauges;
  std::map<std::string, LatencyHistogram::Snapshot, std::less<>> histograms;

  /// This snapshot minus `baseline`. Counters and histogram count/sum/
  /// buckets subtract (clamped at zero, so a racy baseline never produces
  /// wrap-around garbage); gauges are levels, not accumulations, and keep
  /// this snapshot's value; histogram min/max likewise stay lifetime
  /// values — an interval cannot recover its own extremes from two
  /// endpoint snapshots.
  RegistrySnapshot DeltaSince(const RegistrySnapshot& baseline) const;

  /// Same JSON shape as MetricsRegistry::WriteJson (the "metrics" section
  /// of the unified stats export).
  void WriteJson(JsonWriter* writer) const;
  std::string ToJson() const;
};

/// Process-wide registry of named metrics. Get*() registers on first use
/// and returns a pointer that stays valid for the registry's lifetime —
/// resolve once (constructor or function-local static), then record
/// lock-free. Snapshot export walks the registry under its mutex.
class MetricsRegistry {
 public:
  MetricsCounter* GetCounter(std::string_view name);
  MetricsGauge* GetGauge(std::string_view name);
  LatencyHistogram* GetHistogram(std::string_view name);

  /// Copies every registered metric under the registry mutex. Pair with
  /// RegistrySnapshot::DeltaSince for non-destructive per-interval
  /// readings.
  RegistrySnapshot TakeSnapshot() const;

  /// JSON object: {"counters": {...}, "gauges": {...}, "histograms":
  /// {name: {count, sum_nanos, min_nanos, max_nanos, mean_nanos, p50, p95,
  /// p99}}}. Zero-valued counters/gauges are included (schema stability
  /// beats output size at this scale).
  std::string ToJson() const;
  /// Same, appended to an in-progress document (the unified stats export).
  void WriteJson(JsonWriter* writer) const;

  /// Zeroes every registered metric (bench loops, tests). Handles stay
  /// valid.
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<MetricsCounter>, std::less<>>
      counters_;
  std::map<std::string, std::unique_ptr<MetricsGauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>>
      histograms_;
};

/// The process-wide registry every built-in instrumentation point records
/// into.
MetricsRegistry& GlobalMetrics();

}  // namespace topk

#endif  // TOPK_OBS_METRICS_H_
