#ifndef TOPK_OBS_OBS_CONTEXT_H_
#define TOPK_OBS_OBS_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace topk {

class Tracer;

/// One node of a query's wall-clock phase timeline. Accumulators are
/// atomics so pool threads and the consumer thread can record into the
/// same node without a lock; the children list is guarded by the owning
/// PhaseTimeline's mutex and only ever grows.
struct PhaseNode {
  std::string name;
  PhaseNode* parent = nullptr;
  std::atomic<int64_t> wall_nanos{0};
  /// Time inside this phase spent waiting on storage: synchronous
  /// read/write calls, prefetch-refill waits, flush backpressure.
  std::atomic<int64_t> io_wait_nanos{0};
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> bytes_written{0};
  /// Times the phase was entered (a phase like merge.intermediate runs
  /// once per merge step).
  std::atomic<uint64_t> entered{0};
  std::vector<std::unique_ptr<PhaseNode>> children;
};

/// The phase tree of one query. Two roots: `root()` ("query") holds the
/// foreground phases — they nest strictly on the consumer thread, so their
/// self times sum to the root's wall time by construction — and
/// `background()` holds pool-thread work (spill flushes, prefetches,
/// manifest saves) that overlaps the foreground and is reported
/// separately rather than summed into it.
class PhaseTimeline {
 public:
  PhaseTimeline();

  PhaseNode* root() { return root_.get(); }
  const PhaseNode* root() const { return root_.get(); }
  PhaseNode* background() { return background_.get(); }
  const PhaseNode* background() const { return background_.get(); }

  /// Finds or creates `parent`'s child named `name`.
  PhaseNode* EnterChild(PhaseNode* parent, const char* name);

  /// Guards every children list in the tree; report builders take it while
  /// walking.
  std::mutex& mu() const { return mu_; }

 private:
  mutable std::mutex mu_;
  std::unique_ptr<PhaseNode> root_;
  std::unique_ptr<PhaseNode> background_;
};

/// Per-query observability context: a scoped metrics registry, a tracer
/// (the global one unless a test installs its own), a phase timeline, the
/// cutoff-filter evolution log, and memory / spill high-water marks.
///
/// Create one per query with Create(), hand it to the operator through
/// TopKOptions::obs, and read it back for the profile report once Finish
/// returns. Instrumentation records into the context *in addition to* the
/// process-global registry, so global aggregation across concurrent
/// queries keeps working while each query also gets its own numbers.
class ObsContext : public std::enable_shared_from_this<ObsContext> {
 public:
  /// Contexts are always shared: pool tasks capture them so background
  /// work scheduled by a query outliving the query is still attributed
  /// (and recorded into live storage) correctly.
  static std::shared_ptr<ObsContext> Create(std::string label = "query");

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// Tracer spans/instants inside this context's scope record here.
  /// Defaults to the process-global tracer.
  Tracer* tracer() const { return tracer_; }
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  PhaseTimeline& timeline() { return timeline_; }
  const PhaseTimeline& timeline() const { return timeline_; }

  const std::string& label() const { return label_; }

  /// Nanoseconds since Create(), or the frozen query duration once
  /// MarkQueryComplete() ran.
  int64_t ElapsedNanos() const;
  /// Freezes ElapsedNanos() at the current clock — call when the query's
  /// result is in hand so a later report does not inflate the wall time.
  void MarkQueryComplete();

  /// One cutoff establishment or tightening, with operator progress at
  /// that moment.
  struct CutoffEvent {
    int64_t at_nanos = 0;
    double cutoff = 0.0;
    bool tightened = false;
    uint64_t rows_consumed = 0;
    uint64_t rows_eliminated_input = 0;
  };
  /// Appends an event; after kMaxCutoffEvents further events only bump the
  /// dropped count (the report states how many were elided).
  void RecordCutoffEvent(const CutoffEvent& event);
  std::vector<CutoffEvent> cutoff_events() const;
  uint64_t cutoff_events_dropped() const {
    return cutoff_events_dropped_.load(std::memory_order_relaxed);
  }

  /// High-water marks, fed by the operators (peak operator memory) and the
  /// spill manager (run bytes simultaneously on disk).
  void NoteMemoryBytes(uint64_t bytes);
  void NoteSpillBytes(uint64_t bytes);
  uint64_t peak_memory_bytes() const {
    return peak_memory_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t peak_spill_bytes() const {
    return peak_spill_bytes_.load(std::memory_order_relaxed);
  }

  static constexpr size_t kMaxCutoffEvents = 512;

 private:
  explicit ObsContext(std::string label);

  const std::string label_;
  const int64_t epoch_nanos_;
  std::atomic<int64_t> frozen_elapsed_nanos_{-1};

  MetricsRegistry metrics_;
  Tracer* tracer_;
  PhaseTimeline timeline_;

  mutable std::mutex cutoff_mu_;
  std::vector<CutoffEvent> cutoff_events_;
  std::atomic<uint64_t> cutoff_events_dropped_{0};

  std::atomic<uint64_t> peak_memory_bytes_{0};
  std::atomic<uint64_t> peak_spill_bytes_{0};
};

/// The context installed on this thread, or null. Instrumentation points
/// mirror into it when present; the global registry is always recorded
/// regardless.
ObsContext* CurrentObsContext();
/// Shared handle to the same (for capture into pool tasks); null when no
/// context is installed.
std::shared_ptr<ObsContext> CurrentObsContextShared();

/// RAII installation of a context on the current thread. A null context is
/// a no-op, as is re-installing the context already current (the phase
/// cursor is left where the outer scope put it, so nested operator entry
/// points do not reset the caller's phase). `background` routes this
/// thread's phases under the timeline's background root — the pool-task
/// wrapper uses it so overlapped work never distorts the foreground tree.
class ObsScope {
 public:
  explicit ObsScope(const std::shared_ptr<ObsContext>& context,
                    bool background = false);
  ~ObsScope();

  ObsScope(const ObsScope&) = delete;
  ObsScope& operator=(const ObsScope&) = delete;

 private:
  bool installed_ = false;
  ObsContext* saved_context_ = nullptr;
  std::shared_ptr<ObsContext> saved_shared_;
  PhaseNode* saved_node_ = nullptr;
};

/// RAII phase of the current context's timeline: enters a child of the
/// current phase (creating it on first entry) and accumulates the scope's
/// wall time into it. No-op when no context is installed.
class PhaseScope {
 public:
  explicit PhaseScope(const char* name);
  ~PhaseScope();

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  PhaseNode* node_ = nullptr;
  PhaseNode* saved_ = nullptr;
  int64_t start_nanos_ = 0;
};

/// Attribute I/O to the current phase (no-ops without a context). Storage
/// calls count their bytes and their latency as I/O wait; pure waits
/// (prefetch refill, flush backpressure) count latency only.
void ObsRecordIoWait(int64_t nanos);
void ObsRecordStorageRead(uint64_t bytes, int64_t nanos);
void ObsRecordStorageWrite(uint64_t bytes, int64_t nanos);
/// Spill high-water mark of the current context (SpillManager calls this
/// with the run bytes currently on disk).
void ObsNoteSpillBytes(uint64_t bytes);

/// Dual-recording metric handles: the process-global metric is resolved
/// once at construction (same cost as the raw cached-pointer idiom);
/// every event is additionally mirrored into the current thread's scoped
/// registry when one is installed. Mirroring looks the metric up by name
/// per event — fine at the block/operation granularity all these metrics
/// record at; none is used per row.
class ObsCounter {
 public:
  explicit ObsCounter(const char* name)
      : name_(name), global_(GlobalMetrics().GetCounter(name)) {}
  void Add(uint64_t delta = 1) {
    global_->Add(delta);
    if (ObsContext* obs = CurrentObsContext()) {
      obs->metrics().GetCounter(name_)->Add(delta);
    }
  }

 private:
  const char* name_;
  MetricsCounter* global_;
};

class ObsGauge {
 public:
  explicit ObsGauge(const char* name)
      : name_(name), global_(GlobalMetrics().GetGauge(name)) {}
  void Set(int64_t v) {
    global_->Set(v);
    if (ObsContext* obs = CurrentObsContext()) {
      obs->metrics().GetGauge(name_)->Set(v);
    }
  }
  void Add(int64_t delta) {
    global_->Add(delta);
    if (ObsContext* obs = CurrentObsContext()) {
      obs->metrics().GetGauge(name_)->Add(delta);
    }
  }

 private:
  const char* name_;
  MetricsGauge* global_;
};

class ObsHistogram {
 public:
  explicit ObsHistogram(const char* name)
      : name_(name), global_(GlobalMetrics().GetHistogram(name)) {}
  void Record(int64_t nanos) {
    global_->Record(nanos);
    if (ObsContext* obs = CurrentObsContext()) {
      obs->metrics().GetHistogram(name_)->Record(nanos);
    }
  }

 private:
  const char* name_;
  LatencyHistogram* global_;
};

}  // namespace topk

#endif  // TOPK_OBS_OBS_CONTEXT_H_
