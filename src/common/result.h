#ifndef TOPK_COMMON_RESULT_H_
#define TOPK_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace topk {

/// A value-or-error type (StatusOr-lite). Holds either a T or a non-OK
/// Status. Accessing the value of an errored Result is a programming error
/// and asserts in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. Must not be OK.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The status: OK if a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

/// Assigns the value of a Result expression to `lhs`, or returns its error
/// status from the enclosing function.
#define TOPK_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#define TOPK_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define TOPK_ASSIGN_OR_RETURN_NAME(a, b) TOPK_ASSIGN_OR_RETURN_CONCAT(a, b)
#define TOPK_ASSIGN_OR_RETURN(lhs, expr)                                     \
  TOPK_ASSIGN_OR_RETURN_IMPL(                                                \
      TOPK_ASSIGN_OR_RETURN_NAME(_topk_result_, __LINE__), lhs, expr)

}  // namespace topk

#endif  // TOPK_COMMON_RESULT_H_
