#ifndef TOPK_COMMON_LOGGING_H_
#define TOPK_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace topk {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that is emitted to stderr. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log line; emits on destruction. Used via the TOPK_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

/// Aborts the process after printing the message; used by TOPK_CHECK.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  template <typename T>
  FatalLogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

#define TOPK_LOG(level)                                                  \
  ::topk::internal::LogMessage(::topk::LogLevel::k##level, __FILE__, \
                               __LINE__)

/// Invariant check: aborts (with file/line and message) when `cond` is false.
/// Used for programming errors, never for recoverable conditions.
#define TOPK_CHECK(cond)                                             \
  if (!(cond))                                                       \
  ::topk::internal::FatalLogMessage(__FILE__, __LINE__, #cond)

#define TOPK_DCHECK(cond) TOPK_CHECK(cond)

}  // namespace topk

#endif  // TOPK_COMMON_LOGGING_H_
