#include "common/status.h"

namespace topk {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfMemory:
      return "OutOfMemory";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kUnknown:
      return "Unknown";
  }
  return "UnknownCode";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace topk
