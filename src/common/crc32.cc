#include "common/crc32.h"

namespace topk {

namespace {

/// Table-driven CRC-32C; the table is built once at first use.
struct Crc32cTable {
  uint32_t entries[256];

  Crc32cTable() {
    constexpr uint32_t kPolynomial = 0x82f63b78u;  // reflected Castagnoli
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPolynomial : 0);
      }
      entries[i] = crc;
    }
  }
};

}  // namespace

uint32_t Crc32c(uint32_t crc, const void* data, size_t n) {
  static const Crc32cTable table;
  const auto* bytes = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) {
    crc = (crc >> 8) ^ table.entries[(crc ^ bytes[i]) & 0xff];
  }
  return ~crc;
}

}  // namespace topk
