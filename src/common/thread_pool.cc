#include "common/thread_pool.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "obs/obs_context.h"

namespace topk {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(num_threads, 1);
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
}

void ThreadPool::Schedule(std::function<void()> task) {
  // Propagate the scheduling thread's observability context: background
  // spill flushes and prefetches then attribute their metrics, traces, and
  // phase time to the query that asked for them (under its timeline's
  // background tree) instead of vanishing into the global namespace. The
  // shared_ptr capture keeps the context alive for tasks that outlast the
  // query's foreground.
  if (std::shared_ptr<ObsContext> obs = CurrentObsContextShared()) {
    task = [obs = std::move(obs), inner = std::move(task)] {
      ObsScope scope(obs, /*background=*/true);
      inner();
    };
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace topk
