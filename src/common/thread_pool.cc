#include "common/thread_pool.h"

#include <algorithm>

namespace topk {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(num_threads, 1);
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
}

void ThreadPool::Schedule(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace topk
