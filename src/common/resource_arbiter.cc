#include "common/resource_arbiter.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <new>

#include "common/logging.h"
#include "obs/obs_context.h"
#include "obs/trace.h"

namespace topk {

namespace {

/// Leases grow in coarse chunks so per-row accounting (EnsureAtLeast on
/// every buffered row) costs one arbiter mutex round per chunk, not per
/// row.
constexpr size_t kLeaseChunkBytes = 256 * 1024;

// mem.arbiter.* metrics: resolved once globally, and each event also lands
// in the current query's scoped registry when one is installed (the
// ObsCounter/ObsGauge dual-recording contract).
ObsCounter& GrantsCounter() {
  static ObsCounter counter("mem.arbiter.grants");
  return counter;
}
ObsCounter& DenialsCounter() {
  static ObsCounter counter("mem.arbiter.denials");
  return counter;
}
ObsCounter& FaultsInjectedCounter() {
  static ObsCounter counter("mem.arbiter.faults_injected");
  return counter;
}
ObsCounter& PressureTransitionsCounter() {
  static ObsCounter counter("mem.arbiter.pressure_transitions");
  return counter;
}
ObsGauge& GrantedBytesGauge() {
  static ObsGauge gauge("mem.arbiter.granted_bytes");
  return gauge;
}
ObsGauge& PeakBytesGauge() {
  static ObsGauge gauge("mem.arbiter.peak_bytes");
  return gauge;
}
ObsGauge& PressureLevelGauge() {
  static ObsGauge gauge("mem.arbiter.pressure_level");
  return gauge;
}

}  // namespace

std::string_view MemoryPressureName(MemoryPressure pressure) {
  switch (pressure) {
    case MemoryPressure::kOk:
      return "ok";
    case MemoryPressure::kSoft:
      return "soft";
    case MemoryPressure::kHard:
      return "hard";
  }
  return "unknown";
}

Result<MemFaultProfile> MemFaultProfile::Parse(const std::string& spec) {
  MemFaultProfile profile;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string pair = spec.substr(pos, end - pos);
    pos = end + 1;
    if (pair.empty()) continue;
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("mem fault profile entry '" + pair +
                                     "' is not key=value");
    }
    const std::string key = pair.substr(0, eq);
    const std::string value = pair.substr(eq + 1);
    if (key == "mode") {
      if (value == "throw") {
        profile.throw_bad_alloc = true;
      } else if (value == "status") {
        profile.throw_bad_alloc = false;
      } else {
        return Status::InvalidArgument(
            "mem fault profile mode must be 'throw' or 'status', got '" +
            value + "'");
      }
      continue;
    }
    char* parse_end = nullptr;
    const double number = std::strtod(value.c_str(), &parse_end);
    if (parse_end == value.c_str() || *parse_end != '\0') {
      return Status::InvalidArgument("bad mem fault profile value '" + value +
                                     "' for key '" + key + "'");
    }
    if (key == "deny") {
      if (number < 0.0 || number > 1.0) {
        return Status::InvalidArgument("deny rate must be in [0, 1]");
      }
      profile.deny_rate = number;
    } else if (key == "nth") {
      if (number < 0) {
        return Status::InvalidArgument("nth must be >= 0");
      }
      profile.deny_nth = static_cast<uint64_t>(number);
    } else if (key == "seed") {
      profile.seed = static_cast<uint64_t>(number);
    } else {
      return Status::InvalidArgument("unknown mem fault profile key '" + key +
                                     "'");
    }
  }
  return profile;
}

std::string MemFaultProfile::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "deny=%g,nth=%llu,seed=%llu,mode=%s",
                deny_rate, static_cast<unsigned long long>(deny_nth),
                static_cast<unsigned long long>(seed),
                throw_bad_alloc ? "throw" : "status");
  return buf;
}

MemoryLease& MemoryLease::operator=(MemoryLease&& other) noexcept {
  if (this != &other) {
    Release();
    arbiter_ = other.arbiter_;
    tag_ = std::move(other.tag_);
    bytes_ = other.bytes_;
    other.arbiter_ = nullptr;
    other.bytes_ = 0;
  }
  return *this;
}

Status MemoryLease::Grow(size_t bytes) {
  if (arbiter_ == nullptr || bytes == 0) return Status::OK();
  TOPK_RETURN_NOT_OK(arbiter_->Grant(tag_, bytes, /*initial=*/false));
  bytes_ += bytes;
  return Status::OK();
}

Status MemoryLease::EnsureAtLeast(size_t bytes) {
  if (arbiter_ == nullptr || bytes <= bytes_) return Status::OK();
  const size_t needed = bytes - bytes_;
  const size_t chunked =
      ((needed + kLeaseChunkBytes - 1) / kLeaseChunkBytes) * kLeaseChunkBytes;
  return Grow(chunked);
}

void MemoryLease::ShrinkTo(size_t bytes) {
  if (arbiter_ == nullptr) return;
  const size_t target =
      ((bytes + kLeaseChunkBytes - 1) / kLeaseChunkBytes) * kLeaseChunkBytes;
  // Two chunks of hysteresis: a footprint oscillating across one chunk
  // boundary (EnsureAtLeast overshoots by a chunk, the next spill takes it
  // back — replacement selection's steady state) must not cost two arbiter
  // rounds per row.
  if (bytes_ >= target + 2 * kLeaseChunkBytes) Shrink(bytes_ - target);
}

void MemoryLease::Shrink(size_t bytes) {
  if (arbiter_ == nullptr) return;
  const size_t give_back = std::min(bytes, bytes_);
  if (give_back == 0) return;
  arbiter_->ReleaseBytes(give_back);
  bytes_ -= give_back;
}

void MemoryLease::Release() {
  if (arbiter_ == nullptr) return;
  if (bytes_ > 0) arbiter_->ReleaseBytes(bytes_);
  arbiter_ = nullptr;
  bytes_ = 0;
}

MemoryArbiter::MemoryArbiter() : MemoryArbiter(Options()) {}

MemoryArbiter::MemoryArbiter(const Options& options)
    : options_(options), fault_rng_(fault_profile_.seed) {}

Result<MemoryLease> MemoryArbiter::Acquire(std::string tag, size_t bytes) {
  TOPK_RETURN_NOT_OK(Grant(tag, bytes, /*initial=*/true));
  return MemoryLease(this, std::move(tag), bytes);
}

void MemoryArbiter::Reset(size_t budget_bytes) {
  Options options;
  options.budget_bytes = budget_bytes;
  Reset(options);
}

void MemoryArbiter::Reset(const Options& options) {
  std::vector<std::function<void(MemoryPressure)>> responders;
  MemoryPressure level = MemoryPressure::kOk;
  bool changed = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    options_ = options;
    peak_ = granted_;
    grants_ = 0;
    denials_ = 0;
    faults_injected_ = 0;
    responders = UpdatePressureLocked(&level, &changed);
  }
  if (changed) {
    for (const auto& fn : responders) fn(level);
  }
}

void MemoryArbiter::SetFaultProfile(const MemFaultProfile& profile) {
  std::lock_guard<std::mutex> lock(mu_);
  fault_profile_ = profile;
  fault_rng_ = Random(profile.seed);
}

MemFaultProfile MemoryArbiter::fault_profile() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fault_profile_;
}

MemoryArbiter::ResponderId MemoryArbiter::AddPressureResponder(
    std::function<void(MemoryPressure)> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  const ResponderId id = next_responder_id_++;
  responders_.push_back({id, std::move(fn)});
  return id;
}

void MemoryArbiter::RemovePressureResponder(ResponderId id) {
  std::lock_guard<std::mutex> lock(mu_);
  responders_.erase(
      std::remove_if(responders_.begin(), responders_.end(),
                     [id](const Responder& r) { return r.id == id; }),
      responders_.end());
}

size_t MemoryArbiter::budget_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_.budget_bytes;
}

size_t MemoryArbiter::granted_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return granted_;
}

size_t MemoryArbiter::peak_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_;
}

uint64_t MemoryArbiter::grant_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return grants_;
}

uint64_t MemoryArbiter::denial_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return denials_;
}

uint64_t MemoryArbiter::faults_injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return faults_injected_;
}

Status MemoryArbiter::Grant(const std::string& tag, size_t bytes,
                            bool initial) {
  std::vector<std::function<void(MemoryPressure)>> responders;
  MemoryPressure level = MemoryPressure::kOk;
  bool level_changed = false;
  bool inject_throw = false;
  Status failure;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++grants_;
    bool deny_injected = false;
    if (fault_profile_.enabled()) {
      if (fault_profile_.deny_nth > 0 && grants_ == fault_profile_.deny_nth) {
        deny_injected = true;
      }
      if (!deny_injected && fault_profile_.deny_rate > 0.0 &&
          fault_rng_.NextDouble() < fault_profile_.deny_rate) {
        deny_injected = true;
      }
    }
    if (deny_injected) {
      ++faults_injected_;
      ++denials_;
      if (fault_profile_.throw_bad_alloc) {
        inject_throw = true;
      } else {
        failure = Status::OutOfMemory(
            "injected allocation failure granting " + std::to_string(bytes) +
            " bytes for '" + tag + "' (mem fault profile " +
            fault_profile_.ToString() + ")");
      }
    } else if (options_.budget_bytes > 0) {
      const size_t hard_threshold = static_cast<size_t>(
          options_.hard_fraction * static_cast<double>(options_.budget_bytes));
      if (initial && granted_ >= hard_threshold) {
        ++denials_;
        failure = Status::ResourceExhausted(
            "memory arbiter under hard pressure: refusing new lease of " +
            std::to_string(bytes) + " bytes for '" + tag + "' with " +
            std::to_string(granted_) + " bytes already granted "
            "(mem_budget_bytes=" +
            std::to_string(options_.budget_bytes) + ")");
      } else if (granted_ + bytes > options_.budget_bytes) {
        ++denials_;
        failure = Status::ResourceExhausted(
            "memory arbiter budget exhausted: cannot grant " +
            std::to_string(bytes) + " bytes for '" + tag + "' over " +
            std::to_string(granted_) +
            " bytes already granted (mem_budget_bytes=" +
            std::to_string(options_.budget_bytes) + ")");
      }
    }
    if (failure.ok() && !inject_throw) {
      granted_ += bytes;
      peak_ = std::max(peak_, granted_);
      responders = UpdatePressureLocked(&level, &level_changed);
    }
    GrantedBytesGauge().Set(static_cast<int64_t>(granted_));
    PeakBytesGauge().Set(static_cast<int64_t>(peak_));
  }
  GrantsCounter().Add(1);
  if (inject_throw || !failure.ok()) {
    DenialsCounter().Add(1);
    if (inject_throw) {
      FaultsInjectedCounter().Add(1);
      throw std::bad_alloc();
    }
    if (failure.code() == StatusCode::kOutOfMemory) {
      FaultsInjectedCounter().Add(1);
    }
    return failure;
  }
  if (level_changed) NotifyPressureChange(level, responders);
  return Status::OK();
}

void MemoryArbiter::NotifyPressureChange(
    MemoryPressure level,
    const std::vector<std::function<void(MemoryPressure)>>& responders) {
  PressureTransitionsCounter().Add(1);
  PressureLevelGauge().Set(static_cast<int64_t>(level));
  if (TracingEnabled()) {
    TraceInstant("mem.pressure_change", "mem",
                 {TraceArg("level", std::string(MemoryPressureName(level))),
                  TraceArg("granted_bytes", granted_bytes())});
  }
  for (const auto& fn : responders) fn(level);
}

void MemoryArbiter::ReleaseBytes(size_t bytes) {
  std::vector<std::function<void(MemoryPressure)>> responders;
  MemoryPressure level = MemoryPressure::kOk;
  bool changed = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    granted_ = bytes > granted_ ? 0 : granted_ - bytes;
    responders = UpdatePressureLocked(&level, &changed);
    GrantedBytesGauge().Set(static_cast<int64_t>(granted_));
  }
  if (changed) NotifyPressureChange(level, responders);
}

std::vector<std::function<void(MemoryPressure)>>
MemoryArbiter::UpdatePressureLocked(MemoryPressure* level, bool* changed) {
  MemoryPressure next = MemoryPressure::kOk;
  if (options_.budget_bytes > 0) {
    const double fraction = static_cast<double>(granted_) /
                            static_cast<double>(options_.budget_bytes);
    if (fraction >= options_.hard_fraction) {
      next = MemoryPressure::kHard;
    } else if (fraction >= options_.soft_fraction) {
      next = MemoryPressure::kSoft;
    }
  }
  const int old_level = pressure_level_.exchange(static_cast<int>(next),
                                                 std::memory_order_relaxed);
  *level = next;
  *changed = old_level != static_cast<int>(next);
  if (!*changed) return {};
  std::vector<std::function<void(MemoryPressure)>> snapshot;
  snapshot.reserve(responders_.size());
  for (const Responder& r : responders_) snapshot.push_back(r.fn);
  return snapshot;
}

MemoryArbiter* GlobalMemoryArbiter() {
  static MemoryArbiter* arbiter = [] {
    auto* instance = new MemoryArbiter();  // unlimited: accounting only
    if (const char* spec = std::getenv("TOPK_MEM_FAULT");
        spec != nullptr && spec[0] != '\0') {
      auto profile = MemFaultProfile::Parse(spec);
      if (profile.ok()) {
        instance->SetFaultProfile(*profile);
      } else {
        TOPK_LOG(Warning) << "ignoring invalid TOPK_MEM_FAULT: "
                          << profile.status().ToString();
      }
    }
    return instance;
  }();
  return arbiter;
}

}  // namespace topk
