#ifndef TOPK_COMMON_CRC32_H_
#define TOPK_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace topk {

/// Incremental CRC-32C (Castagnoli) over `data`. Start with `crc = 0` and
/// chain calls for streaming data. Used to checksum run files so that
/// storage corruption is detected before wrong rows reach a query result.
uint32_t Crc32c(uint32_t crc, const void* data, size_t n);

}  // namespace topk

#endif  // TOPK_COMMON_CRC32_H_
