#ifndef TOPK_COMMON_FLAGS_H_
#define TOPK_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace topk {

/// Minimal command-line flag parser for the CLI driver and ad-hoc tools:
/// understands `--name=value` and `--name value`; bare `--name` is treated
/// as boolean true; everything else is a positional argument.
class Flags {
 public:
  /// Parses argv; fails on malformed arguments (e.g. "--" alone).
  static Result<Flags> Parse(int argc, const char* const* argv);

  bool Has(const std::string& name) const;

  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  Result<int64_t> GetInt(const std::string& name, int64_t default_value) const;
  Result<double> GetDouble(const std::string& name,
                           double default_value) const;
  Result<bool> GetBool(const std::string& name, bool default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Flags present on the command line that were never read by any Get*()
  /// call — used to reject typos.
  std::vector<std::string> UnreadFlags() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> read_;
  std::vector<std::string> positional_;
};

}  // namespace topk

#endif  // TOPK_COMMON_FLAGS_H_
