#ifndef TOPK_COMMON_STOPWATCH_H_
#define TOPK_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace topk {

/// Monotonic wall-clock stopwatch used for phase timings in operator stats
/// and benchmark harnesses.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Nanoseconds since construction or the last Restart().
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed time across start/stop intervals (phase timer).
class PhaseTimer {
 public:
  void Start() {
    watch_.Restart();
    running_ = true;
  }

  void Stop() {
    if (running_) {
      total_nanos_ += watch_.ElapsedNanos();
      running_ = false;
    }
  }

  int64_t TotalNanos() const {
    return total_nanos_ + (running_ ? watch_.ElapsedNanos() : 0);
  }

  double TotalSeconds() const {
    return static_cast<double>(TotalNanos()) * 1e-9;
  }

 private:
  Stopwatch watch_;
  int64_t total_nanos_ = 0;
  bool running_ = false;
};

}  // namespace topk

#endif  // TOPK_COMMON_STOPWATCH_H_
