#ifndef TOPK_COMMON_QUERY_CONTROL_H_
#define TOPK_COMMON_QUERY_CONTROL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/stopwatch.h"

namespace topk {

/// Cooperative cancellation and query-wide deadline for one query.
///
/// One token is shared (by plain pointer) between the thread driving the
/// query and any number of controller/pool threads. The controller calls
/// `RequestCancel` (or arms a deadline with `SetDeadline`); every long
/// loop in the query — per-row consume, run-generation spill, merge-step,
/// retry backoff, prefetch consumer wait — polls `ShouldStop`/`Check` and
/// unwinds with the token's terminal status.
///
/// Cost when idle: `ShouldStop` is one relaxed atomic load when no
/// deadline is armed, plus one steady-clock read when one is. A null
/// token pointer is always legal and means "not cancellable".
///
/// The first cause wins: once the token trips (cancel or deadline), the
/// terminal status is latched and later causes are ignored, so a query
/// reports one consistent reason everywhere.
class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Trips the token with Status::Cancelled. `reason` is folded into the
  /// message. Idempotent; wakes every `WaitFor` sleeper.
  void RequestCancel(std::string reason = "");

  /// Arms a query-wide deadline `nanos_from_now` from now. The token
  /// trips with Status::DeadlineExceeded the first time any poller looks
  /// at it past the deadline. Calling again re-arms (last call wins).
  void SetDeadline(uint64_t nanos_from_now);

  /// True once the token has tripped (checks the deadline as a side
  /// effect). The fast path for per-row polling.
  bool ShouldStop() const;

  /// OK while live; the latched Cancelled/DeadlineExceeded afterwards.
  Status Check() const { return ShouldStop() ? status() : Status::OK(); }

  /// The latched terminal status, or OK if the token has not tripped.
  /// Does not check the deadline.
  Status status() const;

  /// True once `RequestCancel`/deadline expiry has latched (no deadline
  /// re-check; pure flag read).
  bool cancelled() const { return stop_.load(std::memory_order_relaxed); }

  /// Sleeps up to `nanos` (bounded further by the deadline), waking
  /// early if the token trips. Returns true if the full wait elapsed
  /// with the token still live; false means "stop now" — the caller
  /// should return `status()`. Interruptible replacement for the blind
  /// sleep_for in retry backoff.
  bool WaitFor(uint64_t nanos) const;

 private:
  friend class CancelShield;

  void LatchDeadline() const;

  mutable std::atomic<bool> stop_{false};
  std::atomic<uint64_t> deadline_nanos_{0};  // vs watch_; 0 = unarmed
  /// While > 0 the token reports "live" to every poller (see CancelShield).
  mutable std::atomic<int> shield_depth_{0};
  Stopwatch watch_;
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  mutable Status terminal_;  // guarded by mu_, readable once stop_ is set
};

/// Masks a tripped token for the lifetime of the scope: while at least one
/// shield is alive, ShouldStop()/Check()/WaitFor() behave as if the token
/// were live (status() still reports the latched cause). The durable
/// cancel handoff (keep-for-resume, Suspend after a cancel) needs this:
/// its final run flush and manifest writes are query work performed
/// *because of* the cancellation, and would otherwise be rejected by the
/// very token that prompted them — through the retry layer's fail-fast
/// check if nowhere else. A null token is legal and makes the shield a
/// no-op.
class CancelShield {
 public:
  explicit CancelShield(const CancellationToken* token) : token_(token) {
    if (token_ != nullptr) {
      token_->shield_depth_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  ~CancelShield() {
    if (token_ != nullptr) {
      token_->shield_depth_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  CancelShield(const CancelShield&) = delete;
  CancelShield& operator=(const CancelShield&) = delete;

 private:
  const CancellationToken* token_;
};

/// True for the two caller-initiated terminal codes a tripped token
/// yields. Retry loops, storage-health accounting, and operator
/// first-error latches all treat these as "the caller changed their
/// mind", never as damage.
inline bool IsCancellation(StatusCode code) {
  return code == StatusCode::kCancelled ||
         code == StatusCode::kDeadlineExceeded;
}

/// Returns `token->status()` from the enclosing function if `token` is
/// non-null and has tripped (deadline included). The standard per-row /
/// per-step poll.
#define TOPK_RETURN_IF_CANCELLED(token_ptr)                      \
  do {                                                           \
    const ::topk::CancellationToken* _topk_tok = (token_ptr);    \
    if (_topk_tok != nullptr && _topk_tok->ShouldStop())         \
      return _topk_tok->status();                                \
  } while (false)

/// ---------------------------------------------------------------------
/// Deterministic crash points.
///
/// Named points are placed at phase boundaries where all state needed for
/// resume is durable (manifest flushed). Disarmed, `HitCrashPoint` is one
/// relaxed atomic load. Armed in process mode the process dies with
/// `_exit(kCrashExitCode)` — no destructors, no manifest cleanup — which
/// is exactly what a crash looks like to the resume path. Tests can arm
/// an in-process handler instead.
///
/// The environment variable `TOPK_CRASH_AT=<point>` arms process mode at
/// first use, so any binary (CLI, tests) can be crashed from a harness.

/// Process exit code used by armed crash points, asserted by the chaos
/// drivers to distinguish a deliberate crash from a real failure.
inline constexpr int kCrashExitCode = 42;

/// All registered crash point names:
///   post-run-flush           after run generation flushed + manifest durable
///   pre-merge-step           before an intermediate merge step starts
///   post-merge-step          after an intermediate merge step committed
///   post-manifest-checkpoint end of Suspend, manifest flushed, dir kept
///   optimized.mid-input      after OptimizedExternalTopK checkpointed input
const std::vector<std::string>& KnownCrashPoints();

/// Arms `point` in process mode (`_exit(kCrashExitCode)` when hit).
/// InvalidArgument (naming the known points) if `point` is not registered.
Status ArmCrashPoint(const std::string& point);

/// Arms `point` with an in-process handler (tests). The handler runs on
/// the thread that hits the point.
Status ArmCrashPointForTest(const std::string& point,
                            std::function<void()> handler);

/// Disarms any armed crash point (also suppresses TOPK_CRASH_AT).
void DisarmCrashPoints();

/// Fires if `point` is the armed crash point; otherwise near-free.
void HitCrashPoint(const char* point);

}  // namespace topk

#endif  // TOPK_COMMON_QUERY_CONTROL_H_
