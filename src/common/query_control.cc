#include "common/query_control.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "obs/metrics.h"
#include "obs/obs_context.h"
#include "obs/trace.h"

namespace topk {

namespace {

ObsCounter& CancelRequestedCounter() {
  static ObsCounter counter("query.cancel.requested");
  return counter;
}
ObsCounter& DeadlineExpiredCounter() {
  static ObsCounter counter("query.deadline.expired");
  return counter;
}
ObsCounter& CrashPointHitCounter() {
  static ObsCounter counter("query.crash_point.hit");
  return counter;
}

}  // namespace

void CancellationToken::RequestCancel(std::string reason) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stop_.load(std::memory_order_relaxed)) return;  // first cause wins
  terminal_ = Status::Cancelled(
      reason.empty() ? "query cancelled" : "query cancelled: " + reason);
  CancelRequestedCounter().Add(1);
  TraceInstant("query.cancelled", "query");
  stop_.store(true, std::memory_order_release);
  cv_.notify_all();
}

void CancellationToken::SetDeadline(uint64_t nanos_from_now) {
  uint64_t absolute = watch_.ElapsedNanos() + nanos_from_now;
  if (absolute == 0) absolute = 1;  // 0 means "unarmed"
  deadline_nanos_.store(absolute, std::memory_order_relaxed);
}

void CancellationToken::LatchDeadline() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (stop_.load(std::memory_order_relaxed)) return;  // first cause wins
  terminal_ = Status::DeadlineExceeded("query deadline exceeded");
  DeadlineExpiredCounter().Add(1);
  TraceInstant("query.deadline_exceeded", "query");
  stop_.store(true, std::memory_order_release);
  cv_.notify_all();
}

bool CancellationToken::ShouldStop() const {
  if (shield_depth_.load(std::memory_order_relaxed) > 0) return false;
  if (stop_.load(std::memory_order_relaxed)) return true;
  const uint64_t deadline = deadline_nanos_.load(std::memory_order_relaxed);
  if (deadline != 0 && watch_.ElapsedNanos() >= deadline) {
    LatchDeadline();
    return true;
  }
  return false;
}

Status CancellationToken::status() const {
  if (!stop_.load(std::memory_order_acquire)) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  return terminal_;
}

bool CancellationToken::WaitFor(uint64_t nanos) const {
  if (shield_depth_.load(std::memory_order_relaxed) > 0) {
    // Shielded waits are indistinguishable from a live token's: sleep the
    // full request (the shield holder wants the work to proceed normally).
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, std::chrono::nanoseconds(nanos),
                 [] { return false; });
    return true;
  }
  if (ShouldStop()) return false;
  uint64_t wait = nanos;
  const uint64_t deadline = deadline_nanos_.load(std::memory_order_relaxed);
  if (deadline != 0) {
    const uint64_t elapsed = watch_.ElapsedNanos();
    if (elapsed >= deadline) {
      LatchDeadline();
      return false;
    }
    wait = std::min(wait, deadline - elapsed);
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, std::chrono::nanoseconds(wait), [this] {
      return stop_.load(std::memory_order_relaxed);
    });
  }
  // Re-check (and latch a deadline that expired during the sleep).
  return !ShouldStop();
}

/// ---------------------------------------------------------------------
/// Crash points.

namespace {

struct CrashState {
  std::atomic<bool> armed{false};
  std::mutex mu;
  std::string point;
  std::function<void()> handler;  // null = process-kill mode
};

CrashState& GlobalCrashState() {
  // Env arming happens on first touch of any crash-point API, so a binary
  // run under TOPK_CRASH_AT=<point> needs no code changes to be crashable.
  static CrashState* state = [] {
    auto* s = new CrashState();
    const char* env = std::getenv("TOPK_CRASH_AT");
    if (env != nullptr && env[0] != '\0') {
      bool known = false;
      for (const std::string& name : KnownCrashPoints()) {
        if (name == env) known = true;
      }
      if (known) {
        s->point = env;
        s->armed.store(true, std::memory_order_release);
      } else {
        std::fprintf(stderr,
                     "TOPK_CRASH_AT: unknown crash point '%s' (ignored)\n",
                     env);
      }
    }
    return s;
  }();
  return *state;
}

Status ValidateCrashPoint(const std::string& point) {
  for (const std::string& name : KnownCrashPoints()) {
    if (name == point) return Status::OK();
  }
  std::string known;
  for (const std::string& name : KnownCrashPoints()) {
    if (!known.empty()) known += ", ";
    known += name;
  }
  return Status::InvalidArgument("unknown crash point '" + point +
                                 "'; known points: " + known);
}

}  // namespace

const std::vector<std::string>& KnownCrashPoints() {
  static const std::vector<std::string>* points = new std::vector<std::string>{
      "post-run-flush",
      "pre-merge-step",
      "post-merge-step",
      "post-manifest-checkpoint",
      "optimized.mid-input",
  };
  return *points;
}

Status ArmCrashPoint(const std::string& point) {
  TOPK_RETURN_NOT_OK(ValidateCrashPoint(point));
  CrashState& state = GlobalCrashState();
  std::lock_guard<std::mutex> lock(state.mu);
  state.point = point;
  state.handler = nullptr;
  state.armed.store(true, std::memory_order_release);
  return Status::OK();
}

Status ArmCrashPointForTest(const std::string& point,
                            std::function<void()> handler) {
  TOPK_RETURN_NOT_OK(ValidateCrashPoint(point));
  CrashState& state = GlobalCrashState();
  std::lock_guard<std::mutex> lock(state.mu);
  state.point = point;
  state.handler = std::move(handler);
  state.armed.store(true, std::memory_order_release);
  return Status::OK();
}

void DisarmCrashPoints() {
  CrashState& state = GlobalCrashState();
  std::lock_guard<std::mutex> lock(state.mu);
  state.point.clear();
  state.handler = nullptr;
  state.armed.store(false, std::memory_order_release);
}

void HitCrashPoint(const char* point) {
  CrashState& state = GlobalCrashState();
  if (!state.armed.load(std::memory_order_acquire)) return;
  std::function<void()> handler;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    if (!state.armed.load(std::memory_order_relaxed)) return;
    if (state.point != point) return;
    handler = state.handler;
  }
  CrashPointHitCounter().Add(1);
  TraceInstant("crash_point", "query", {TraceArg("point", point)});
  if (handler != nullptr) {
    handler();
    return;
  }
  std::fprintf(stderr, "TOPK_CRASH_AT: crashing at point '%s'\n", point);
  std::fflush(stderr);
  std::_Exit(kCrashExitCode);
}

}  // namespace topk
