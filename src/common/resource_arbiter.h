#ifndef TOPK_COMMON_RESOURCE_ARBITER_H_
#define TOPK_COMMON_RESOURCE_ARBITER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"

namespace topk {

/// Process-wide memory pressure, derived from the fraction of the arbiter
/// budget currently leased out. The levels form a degradation ladder:
///
///   kOk    below soft_fraction        normal operation
///   kSoft  [soft_fraction, hard)      consumers shed what they can —
///                                     prefetch windows halve, run
///                                     generators spill early, the
///                                     histogram operator consolidates runs
///   kHard  at/above hard_fraction     *new* leases are refused with
///                                     ResourceExhausted; queries already
///                                     holding leases may still grow them
///                                     up to the full budget and run to
///                                     completion
enum class MemoryPressure { kOk = 0, kSoft = 1, kHard = 2 };

std::string_view MemoryPressureName(MemoryPressure pressure);

/// Deterministic allocation-failure injection, in the FaultProfile style
/// (io/storage_env.h): parsed from --mem-fault-profile or the
/// TOPK_MEM_FAULT environment variable as comma-separated key=value pairs.
///
///   deny=<rate>  probability in [0, 1] that any one grant is denied
///   nth=<n>      deny exactly the nth grant (1-based) the arbiter sees
///   seed=<s>     RNG seed for the probabilistic draw (reproducible)
///   mode=throw   denials throw std::bad_alloc instead of returning a
///                Status — exercises the containment try/catch at operator
///                boundaries exactly like a real allocator failure
///   mode=status  denials surface as Status::OutOfMemory (the default)
struct MemFaultProfile {
  double deny_rate = 0.0;
  uint64_t deny_nth = 0;
  uint64_t seed = 0x9e3779b97f4a7c15ULL;
  bool throw_bad_alloc = false;

  bool enabled() const { return deny_rate > 0.0 || deny_nth > 0; }

  static Result<MemFaultProfile> Parse(const std::string& spec);
  std::string ToString() const;
};

class MemoryArbiter;

/// A consumer's reservation against a MemoryArbiter: RAII (releases on
/// destruction), movable, grown and shrunk as the consumer's footprint
/// changes. A default-constructed lease is detached — every operation on it
/// succeeds without touching any arbiter, so call sites need no null
/// checks when running without a budget.
class MemoryLease {
 public:
  MemoryLease() = default;
  ~MemoryLease() { Release(); }

  MemoryLease(const MemoryLease&) = delete;
  MemoryLease& operator=(const MemoryLease&) = delete;
  MemoryLease(MemoryLease&& other) noexcept { *this = std::move(other); }
  MemoryLease& operator=(MemoryLease&& other) noexcept;

  /// Grows the reservation by `bytes`. OutOfMemory on an injected fault,
  /// ResourceExhausted when the arbiter budget cannot cover it.
  Status Grow(size_t bytes);

  /// Grows the reservation (in coarse chunks, so per-row accounting costs
  /// one arbiter round per ~256 KiB, not per row) until it covers at least
  /// `bytes`. No-op when it already does.
  Status EnsureAtLeast(size_t bytes);

  /// Returns `bytes` of the reservation to the arbiter (clamped).
  void Shrink(size_t bytes);

  /// Shrinks the reservation toward `bytes` (rounded up to the chunk
  /// granularity, with two chunks of hysteresis so a footprint oscillating
  /// across a chunk boundary does not churn the arbiter).
  void ShrinkTo(size_t bytes);

  /// Returns the whole reservation and detaches the lease.
  void Release();

  size_t bytes() const { return bytes_; }
  bool attached() const { return arbiter_ != nullptr; }

 private:
  friend class MemoryArbiter;
  MemoryLease(MemoryArbiter* arbiter, std::string tag, size_t bytes)
      : arbiter_(arbiter), tag_(std::move(tag)), bytes_(bytes) {}

  MemoryArbiter* arbiter_ = nullptr;
  std::string tag_;
  size_t bytes_ = 0;
};

/// Process-wide memory admission control: every sizable memory consumer —
/// sort/run-generation buffers, the top-k heaps, the cutoff filter's bucket
/// queue, prefetch windows, double-buffered spill writers — acquires a
/// MemoryLease here instead of trusting only its local constant, so the sum
/// of all "per-component budgets" can no longer silently exceed what the
/// process may use. Generalizes the PrefetchBudget / RetryBudget /
/// SpillQuota singletons into one account (the shape the multi-query server
/// will shard into per-tenant accounts).
///
/// Thread-safe. With budget_bytes == 0 the arbiter only accounts (grants
/// always succeed, pressure stays kOk) — the default for the global
/// instance, so existing callers see no behaviour change until a budget is
/// configured via --mem-budget-mb or Reset().
class MemoryArbiter {
 public:
  struct Options {
    /// Total bytes the arbiter may lease out; 0 = unlimited (accounting
    /// only, no pressure, no denials — injection still applies).
    size_t budget_bytes = 0;
    /// Leased fraction at which pressure turns kSoft (degradation starts).
    double soft_fraction = 0.75;
    /// Leased fraction at which pressure turns kHard (new leases refused).
    double hard_fraction = 0.95;
  };

  MemoryArbiter();  // unlimited: accounting only
  explicit MemoryArbiter(const Options& options);

  MemoryArbiter(const MemoryArbiter&) = delete;
  MemoryArbiter& operator=(const MemoryArbiter&) = delete;

  /// Opens a new lease of `bytes` for the consumer named `tag` (tags show
  /// up in error messages and traces). Refused with ResourceExhausted
  /// naming the arbiter budget under hard pressure or when the budget
  /// cannot cover the bytes; an injected fault surfaces as OutOfMemory (or
  /// throws std::bad_alloc in mode=throw).
  Result<MemoryLease> Acquire(std::string tag, size_t bytes);

  /// Reconfigures the budget and clears counters/peak — the CLI/server
  /// configuration hook, mirroring RetryBudget::Reset. Only call while no
  /// leases are live (live bytes carry over, but the pressure thresholds
  /// are recomputed against the new budget immediately).
  void Reset(size_t budget_bytes);
  void Reset(const Options& options);

  void SetFaultProfile(const MemFaultProfile& profile);
  MemFaultProfile fault_profile() const;

  /// Registers a callback invoked (outside the arbiter lock, on the thread
  /// whose grant/release moved the level) on every pressure-level
  /// transition. Responders must be thread-safe and cheap; they form the
  /// push half of the degradation ladder (the poll half is pressure()).
  using ResponderId = uint64_t;
  ResponderId AddPressureResponder(std::function<void(MemoryPressure)> fn);
  void RemovePressureResponder(ResponderId id);

  /// Lock-free pressure poll (one relaxed atomic load) — cheap enough for
  /// per-row checks in run-generation loops.
  MemoryPressure pressure() const {
    return static_cast<MemoryPressure>(
        pressure_level_.load(std::memory_order_relaxed));
  }

  size_t budget_bytes() const;
  size_t granted_bytes() const;
  size_t peak_bytes() const;
  uint64_t grant_count() const;
  uint64_t denial_count() const;
  uint64_t faults_injected() const;

 private:
  friend class MemoryLease;

  /// Both Acquire and MemoryLease::Grow land here. `initial` marks a new
  /// lease (subject to the hard-pressure fail-fast); growth of an existing
  /// lease is only bounded by the full budget, so in-flight queries run to
  /// completion. May throw std::bad_alloc (injection mode=throw).
  Status Grant(const std::string& tag, size_t bytes, bool initial);
  void ReleaseBytes(size_t bytes);

  /// Recomputes the pressure level; sets *changed when the level moved and
  /// returns the responder snapshot to notify. Caller holds mu_.
  std::vector<std::function<void(MemoryPressure)>> UpdatePressureLocked(
      MemoryPressure* level, bool* changed);
  /// Records the transition (gauge, counter, trace instant) and invokes
  /// the responder snapshot. Called without mu_ held.
  void NotifyPressureChange(
      MemoryPressure level,
      const std::vector<std::function<void(MemoryPressure)>>& responders);

  mutable std::mutex mu_;
  Options options_;
  size_t granted_ = 0;
  size_t peak_ = 0;
  uint64_t grants_ = 0;
  uint64_t denials_ = 0;
  uint64_t faults_injected_ = 0;
  MemFaultProfile fault_profile_;
  Random fault_rng_;

  struct Responder {
    ResponderId id;
    std::function<void(MemoryPressure)> fn;
  };
  std::vector<Responder> responders_;
  ResponderId next_responder_id_ = 1;

  std::atomic<int> pressure_level_{0};
};

/// The process-wide arbiter every consumer falls back to when its options
/// carry no explicit one. Constructed unlimited (accounting only); the
/// TOPK_MEM_FAULT environment variable, when set to a valid profile, arms
/// fault injection at first use. Configure the budget via Reset()
/// (tools/topk_cli --mem-budget-mb).
MemoryArbiter* GlobalMemoryArbiter();

}  // namespace topk

#endif  // TOPK_COMMON_RESOURCE_ARBITER_H_
