#ifndef TOPK_COMMON_THREAD_POOL_H_
#define TOPK_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace topk {

/// Small fixed-size worker pool for background I/O. Tasks run in FIFO order
/// across the workers; the destructor drains every queued task before
/// joining, so work handed to the pool is never dropped. Shared by all
/// writers/readers of one SpillManager (spill traffic is sequential, so a
/// couple of threads suffice to hide one storage round trip per stream).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains the queue, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for asynchronous execution. Never blocks (the queue is
  /// unbounded; callers provide their own backpressure — the I/O pipeline
  /// keeps at most one block in flight per stream).
  void Schedule(std::function<void()> task);

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace topk

#endif  // TOPK_COMMON_THREAD_POOL_H_
