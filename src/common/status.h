#ifndef TOPK_COMMON_STATUS_H_
#define TOPK_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace topk {

/// Error codes used across the library. Modeled after the Status idiom used
/// by production database engines (Arrow, RocksDB): no exceptions, every
/// fallible operation returns a Status or a Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfMemory,
  kIoError,
  kNotFound,
  kFailedPrecondition,
  kCorruption,
  kResourceExhausted,
  kCancelled,
  /// The query's own deadline expired (query_control.h). Like kCancelled
  /// this is caller-initiated: never retried, never a storage-health
  /// signal.
  kDeadlineExceeded,
  /// Transient failure (storage glitch, dropped round trip): the operation
  /// did not happen but is expected to succeed on retry. The only code the
  /// I/O retry layer (io/retry.h) treats as retryable.
  kUnavailable,
  kUnknown,
};

/// Returns a human-readable name for a status code ("IoError", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A success-or-error value. Cheap to copy in the success case (no
/// allocation); carries a code and a message otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Unknown(std::string msg) {
    return Status(StatusCode::kUnknown, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Evaluates an expression producing a Status; returns it from the enclosing
/// function if it is not OK.
#define TOPK_RETURN_NOT_OK(expr)                   \
  do {                                             \
    ::topk::Status _topk_status = (expr);          \
    if (!_topk_status.ok()) return _topk_status;   \
  } while (false)

}  // namespace topk

#endif  // TOPK_COMMON_STATUS_H_
