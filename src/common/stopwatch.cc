#include "common/stopwatch.h"

// Stopwatch and PhaseTimer are header-only; this translation unit exists so
// the build file can list the module and future non-inline helpers have a
// home.
