#include "common/flags.h"

#include <cstdlib>

namespace topk {

Result<Flags> Flags::Parse(int argc, const char* const* argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      flags.positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    if (body.empty()) {
      return Status::InvalidArgument("bare '--' is not a valid flag");
    }
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      flags.values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--name value" when the next token is not itself a flag; otherwise a
    // boolean "--name".
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags.values_[body] = argv[i + 1];
      ++i;
    } else {
      flags.values_[body] = "true";
    }
  }
  return flags;
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& default_value) const {
  read_[name] = true;
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

Result<int64_t> Flags::GetInt(const std::string& name,
                              int64_t default_value) const {
  read_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  // Accept scientific notation for row counts ("--n=2e9").
  const double parsed = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("flag --" + name +
                                   " expects an integer, got '" +
                                   it->second + "'");
  }
  return static_cast<int64_t>(parsed);
}

Result<double> Flags::GetDouble(const std::string& name,
                                double default_value) const {
  read_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  const double parsed = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("flag --" + name +
                                   " expects a number, got '" + it->second +
                                   "'");
  }
  return parsed;
}

Result<bool> Flags::GetBool(const std::string& name,
                            bool default_value) const {
  read_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  return Status::InvalidArgument("flag --" + name +
                                 " expects a boolean, got '" + v + "'");
}

std::vector<std::string> Flags::UnreadFlags() const {
  std::vector<std::string> unread;
  for (const auto& [name, value] : values_) {
    if (!read_.count(name)) unread.push_back(name);
  }
  return unread;
}

}  // namespace topk
