#ifndef TOPK_COMMON_RANDOM_H_
#define TOPK_COMMON_RANDOM_H_

#include <cstdint>

namespace topk {

/// Deterministic, fast pseudo-random generator (xoshiro256**). Used by all
/// workload generators so experiments are reproducible from a seed.
class Random {
 public:
  explicit Random(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, bound). `bound` must be > 0.
  uint64_t NextUint64(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Standard normal variate (Box-Muller, deterministic for a given seed).
  double NextGaussian();

  /// Log-normal variate with the given log-space mean and sigma.
  double NextLogNormal(double mu, double sigma);

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace topk

#endif  // TOPK_COMMON_RANDOM_H_
