#include "common/random.h"

#include <cmath>

namespace topk {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// SplitMix64, used to expand the seed into the xoshiro state.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Random::Random(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Random::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Random::NextUint64(uint64_t bound) {
  // Rejection-free multiply-shift; bias is negligible for our bounds.
  __uint128_t product = static_cast<__uint128_t>(NextUint64()) * bound;
  return static_cast<uint64_t>(product >> 64);
}

double Random::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Random::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Random::NextLogNormal(double mu, double sigma) {
  return std::exp(mu + sigma * NextGaussian());
}

}  // namespace topk
