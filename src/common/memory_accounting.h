#ifndef TOPK_COMMON_MEMORY_ACCOUNTING_H_
#define TOPK_COMMON_MEMORY_ACCOUNTING_H_

#include <cstddef>

namespace topk {

/// Fixed extra bytes charged per buffered row against any memory budget
/// (heap node / vector slot / bookkeeping overhead). Every operator and run
/// generator must charge the same constant, or the in-memory and external
/// phases disagree about when memory is full and the adaptive switchover
/// point drifts between operators. Historically this constant was
/// duplicated in four translation units; it lives here so accounting cannot
/// drift again.
inline constexpr size_t kPerRowOverheadBytes = 32;

}  // namespace topk

#endif  // TOPK_COMMON_MEMORY_ACCOUNTING_H_
