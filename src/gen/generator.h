#ifndef TOPK_GEN_GENERATOR_H_
#define TOPK_GEN_GENERATOR_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/random.h"
#include "gen/distribution.h"
#include "row/row.h"

namespace topk {

/// Describes a synthetic dataset: row count, key distribution, and payload
/// shape. Payload sizes may vary per row (uniform in [min,max]) to exercise
/// variable-size-row handling in run generation.
struct DatasetSpec {
  uint64_t num_rows = 1000000;
  KeyGeneratorSpec keys;
  size_t payload_min_bytes = 0;
  size_t payload_max_bytes = 0;
  uint64_t seed = 42;

  DatasetSpec& WithRows(uint64_t n) {
    num_rows = n;
    keys.num_rows = n;
    return *this;
  }
  DatasetSpec& WithDistribution(KeyDistribution d) {
    keys.distribution = d;
    return *this;
  }
  DatasetSpec& WithFalShape(double z) {
    keys.distribution = KeyDistribution::kFal;
    keys.fal_shape = z;
    return *this;
  }
  DatasetSpec& WithPayload(size_t min_bytes, size_t max_bytes) {
    payload_min_bytes = min_bytes;
    payload_max_bytes = max_bytes;
    return *this;
  }
  DatasetSpec& WithSeed(uint64_t s) {
    seed = s;
    keys.seed = s ^ 0x5bf0a8b1u;
    return *this;
  }
};

/// Streams the rows of a DatasetSpec. Row ids are the 0-based sequence
/// numbers, so any generated dataset has a unique deterministic answer for
/// any top-k query over it.
class RowGenerator {
 public:
  explicit RowGenerator(const DatasetSpec& spec);

  /// Produces the next row; returns false when `num_rows` were produced.
  bool Next(Row* row);

  /// Rows produced so far.
  uint64_t produced() const { return produced_; }
  uint64_t num_rows() const { return spec_.num_rows; }

  /// Restarts the stream from the beginning (same seed, same rows).
  void Reset();

 private:
  void FillPayload(Row* row);

  DatasetSpec spec_;
  std::unique_ptr<KeyGenerator> keys_;
  Random payload_rng_;
  uint64_t produced_ = 0;
};

}  // namespace topk

#endif  // TOPK_GEN_GENERATOR_H_
