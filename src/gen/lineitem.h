#ifndef TOPK_GEN_LINEITEM_H_
#define TOPK_GEN_LINEITEM_H_

#include <cstdint>
#include <string>

#include "common/random.h"
#include "row/row.h"

namespace topk {

/// A TPC-H Lineitem-shaped record. The paper's evaluation query is
///   SELECT L_ORDERKEY, ..., L_COMMENT FROM LINEITEM
///   ORDER BY L_ORDERKEY LIMIT K;
/// i.e. it sorts on L_ORDERKEY and carries every other column as payload.
/// We reproduce the schema shape: the sort key is L_ORDERKEY, the remaining
/// columns are serialized into the row payload (~120 bytes on average,
/// variable because of the comment string).
struct Lineitem {
  int64_t orderkey;
  int64_t partkey;
  int64_t suppkey;
  int32_t linenumber;
  double quantity;
  double extendedprice;
  double discount;
  double tax;
  char returnflag;
  char linestatus;
  int32_t shipdate;    // days since epoch
  int32_t commitdate;
  int32_t receiptdate;
  char shipinstruct[25];
  char shipmode[10];
  std::string comment;  // 10..43 chars, variable
};

/// Generates `num_rows` Lineitem rows in random L_ORDERKEY order. Orderkeys
/// are unique-ish uniform draws from [1, num_rows * 4] like TPC-H's sparse
/// orderkey domain.
class LineitemGenerator {
 public:
  LineitemGenerator(uint64_t num_rows, uint64_t seed);

  /// Produces the next lineitem row packed into a topk::Row (key =
  /// L_ORDERKEY, payload = remaining columns). Returns false at end.
  bool Next(Row* row);

  uint64_t num_rows() const { return num_rows_; }

 private:
  void FillItem(Lineitem* item);

  uint64_t num_rows_;
  uint64_t produced_ = 0;
  Random rng_;
  std::string scratch_;
};

/// Serializes the non-key columns of `item` into `out` (cleared first).
void SerializeLineitemPayload(const Lineitem& item, std::string* out);

/// Parses a payload produced by SerializeLineitemPayload. Returns false on
/// malformed input.
bool ParseLineitemPayload(const std::string& payload, Lineitem* item);

}  // namespace topk

#endif  // TOPK_GEN_LINEITEM_H_
