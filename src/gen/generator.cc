#include "gen/generator.h"

#include <cstring>

namespace topk {

RowGenerator::RowGenerator(const DatasetSpec& spec)
    : spec_(spec),
      keys_(MakeKeyGenerator(spec.keys)),
      payload_rng_(spec.seed ^ 0x9d2c5680u) {}

void RowGenerator::Reset() {
  keys_ = MakeKeyGenerator(spec_.keys);
  payload_rng_ = Random(spec_.seed ^ 0x9d2c5680u);
  produced_ = 0;
}

bool RowGenerator::Next(Row* row) {
  if (produced_ >= spec_.num_rows) return false;
  row->key = keys_->Next();
  row->id = produced_;
  FillPayload(row);
  ++produced_;
  return true;
}

void RowGenerator::FillPayload(Row* row) {
  const size_t min = spec_.payload_min_bytes;
  const size_t max = spec_.payload_max_bytes;
  size_t size = min;
  if (max > min) {
    size = min + static_cast<size_t>(payload_rng_.NextUint64(max - min + 1));
  }
  row->payload.resize(size);
  // Cheap deterministic filler: 8 bytes of RNG repeated. Content is opaque
  // to the operators; only its size matters.
  size_t i = 0;
  while (i + 8 <= size) {
    const uint64_t v = payload_rng_.NextUint64();
    std::memcpy(row->payload.data() + i, &v, 8);
    i += 8;
  }
  for (; i < size; ++i) row->payload[i] = 'x';
}

}  // namespace topk
