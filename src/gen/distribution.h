#ifndef TOPK_GEN_DISTRIBUTION_H_
#define TOPK_GEN_DISTRIBUTION_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/random.h"

namespace topk {

/// Key distributions used by the paper's evaluation (Sec 5.1.4):
///  * kUniform    — uniform keys (the paper uses L_ORDERKEY of an unsorted
///                  Lineitem table; uniform over the key domain).
///  * kFal        — the Faloutsos–Jagadish generator: value(r) = N / r^z for
///                  rank r in [1, N]; shape z sweeps uniform-ish to
///                  hyperbolic (Zipf-like).
///  * kLogNormal  — log-normal with mu=0, sigma=2 (as in the paper).
///  * kAscending  — already sorted in query order (best case, trivial).
///  * kDescending — reverse-sorted: for an ascending top-k this is the
///                  adversarial input of Sec 5.5 (every row is admitted, the
///                  filter sharpens constantly but never eliminates).
enum class KeyDistribution {
  kUniform,
  kFal,
  kLogNormal,
  kAscending,
  kDescending,
};

/// Parses "uniform", "fal", "lognormal", "ascending", "descending".
bool ParseKeyDistribution(const std::string& name, KeyDistribution* out);
std::string KeyDistributionName(KeyDistribution dist);

/// Produces a stream of sort keys following one distribution. Deterministic
/// for a given seed.
class KeyGenerator {
 public:
  virtual ~KeyGenerator() = default;
  virtual double Next() = 0;
};

struct KeyGeneratorSpec {
  KeyDistribution distribution = KeyDistribution::kUniform;
  /// Domain size: uniform draws from [0, 1); fal uses this as N.
  uint64_t num_rows = 1000000;
  /// Shape parameter z for kFal (paper uses 0.5, 1.05, 1.25, 1.5).
  double fal_shape = 1.25;
  /// Log-normal parameters (paper: mu=0, sigma=2).
  double lognormal_mu = 0.0;
  double lognormal_sigma = 2.0;
  uint64_t seed = 42;
};

std::unique_ptr<KeyGenerator> MakeKeyGenerator(const KeyGeneratorSpec& spec);

}  // namespace topk

#endif  // TOPK_GEN_DISTRIBUTION_H_
