#include "gen/lineitem.h"

#include <cstdio>
#include <cstring>

namespace topk {

namespace {

constexpr const char* kShipInstructs[] = {
    "DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"};
constexpr const char* kShipModes[] = {"REG AIR", "AIR",  "RAIL", "SHIP",
                                      "TRUCK",   "MAIL", "FOB"};
constexpr const char* kCommentWords[] = {
    "carefully", "quickly", "furiously", "slyly",    "blithely", "packages",
    "deposits",  "requests", "accounts", "pending",  "ironic",   "express",
    "final",     "regular",  "special",  "unusual",  "bold",     "even"};

template <typename T>
void AppendRaw(const T& v, std::string* out) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ReadRaw(const std::string& in, size_t* offset, T* v) {
  if (*offset + sizeof(T) > in.size()) return false;
  std::memcpy(v, in.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return true;
}

}  // namespace

LineitemGenerator::LineitemGenerator(uint64_t num_rows, uint64_t seed)
    : num_rows_(num_rows), rng_(seed) {}

void LineitemGenerator::FillItem(Lineitem* item) {
  item->orderkey =
      static_cast<int64_t>(rng_.NextUint64(num_rows_ * 4 + 1)) + 1;
  item->partkey = static_cast<int64_t>(rng_.NextUint64(200000)) + 1;
  item->suppkey = static_cast<int64_t>(rng_.NextUint64(10000)) + 1;
  item->linenumber = static_cast<int32_t>(rng_.NextUint64(7)) + 1;
  item->quantity = 1.0 + static_cast<double>(rng_.NextUint64(50));
  item->extendedprice = 900.0 + rng_.NextDouble() * 104000.0;
  item->discount = static_cast<double>(rng_.NextUint64(11)) / 100.0;
  item->tax = static_cast<double>(rng_.NextUint64(9)) / 100.0;
  item->returnflag = "RAN"[rng_.NextUint64(3)];
  item->linestatus = "OF"[rng_.NextUint64(2)];
  item->shipdate = 8400 + static_cast<int32_t>(rng_.NextUint64(2500));
  item->commitdate = item->shipdate + static_cast<int32_t>(rng_.NextUint64(60));
  item->receiptdate = item->shipdate + static_cast<int32_t>(rng_.NextUint64(30));
  std::snprintf(item->shipinstruct, sizeof(item->shipinstruct), "%s",
                kShipInstructs[rng_.NextUint64(4)]);
  std::snprintf(item->shipmode, sizeof(item->shipmode), "%s",
                kShipModes[rng_.NextUint64(7)]);
  item->comment.clear();
  const uint64_t words = 2 + rng_.NextUint64(5);
  for (uint64_t w = 0; w < words; ++w) {
    if (w > 0) item->comment += ' ';
    item->comment += kCommentWords[rng_.NextUint64(
        sizeof(kCommentWords) / sizeof(kCommentWords[0]))];
  }
}

bool LineitemGenerator::Next(Row* row) {
  if (produced_ >= num_rows_) return false;
  Lineitem item;
  FillItem(&item);
  row->key = static_cast<double>(item.orderkey);
  row->id = produced_;
  SerializeLineitemPayload(item, &row->payload);
  ++produced_;
  return true;
}

void SerializeLineitemPayload(const Lineitem& item, std::string* out) {
  out->clear();
  AppendRaw(item.partkey, out);
  AppendRaw(item.suppkey, out);
  AppendRaw(item.linenumber, out);
  AppendRaw(item.quantity, out);
  AppendRaw(item.extendedprice, out);
  AppendRaw(item.discount, out);
  AppendRaw(item.tax, out);
  AppendRaw(item.returnflag, out);
  AppendRaw(item.linestatus, out);
  AppendRaw(item.shipdate, out);
  AppendRaw(item.commitdate, out);
  AppendRaw(item.receiptdate, out);
  out->append(item.shipinstruct, sizeof(item.shipinstruct));
  out->append(item.shipmode, sizeof(item.shipmode));
  const uint32_t comment_len = static_cast<uint32_t>(item.comment.size());
  AppendRaw(comment_len, out);
  out->append(item.comment);
}

bool ParseLineitemPayload(const std::string& payload, Lineitem* item) {
  size_t offset = 0;
  if (!ReadRaw(payload, &offset, &item->partkey) ||
      !ReadRaw(payload, &offset, &item->suppkey) ||
      !ReadRaw(payload, &offset, &item->linenumber) ||
      !ReadRaw(payload, &offset, &item->quantity) ||
      !ReadRaw(payload, &offset, &item->extendedprice) ||
      !ReadRaw(payload, &offset, &item->discount) ||
      !ReadRaw(payload, &offset, &item->tax) ||
      !ReadRaw(payload, &offset, &item->returnflag) ||
      !ReadRaw(payload, &offset, &item->linestatus) ||
      !ReadRaw(payload, &offset, &item->shipdate) ||
      !ReadRaw(payload, &offset, &item->commitdate) ||
      !ReadRaw(payload, &offset, &item->receiptdate)) {
    return false;
  }
  if (offset + sizeof(item->shipinstruct) + sizeof(item->shipmode) >
      payload.size()) {
    return false;
  }
  std::memcpy(item->shipinstruct, payload.data() + offset,
              sizeof(item->shipinstruct));
  offset += sizeof(item->shipinstruct);
  std::memcpy(item->shipmode, payload.data() + offset,
              sizeof(item->shipmode));
  offset += sizeof(item->shipmode);
  uint32_t comment_len = 0;
  if (!ReadRaw(payload, &offset, &comment_len)) return false;
  if (offset + comment_len > payload.size()) return false;
  item->comment.assign(payload.data() + offset, comment_len);
  return true;
}

}  // namespace topk
