#include "gen/distribution.h"

#include <cmath>

#include "common/logging.h"

namespace topk {

bool ParseKeyDistribution(const std::string& name, KeyDistribution* out) {
  if (name == "uniform") {
    *out = KeyDistribution::kUniform;
  } else if (name == "fal") {
    *out = KeyDistribution::kFal;
  } else if (name == "lognormal") {
    *out = KeyDistribution::kLogNormal;
  } else if (name == "ascending") {
    *out = KeyDistribution::kAscending;
  } else if (name == "descending") {
    *out = KeyDistribution::kDescending;
  } else {
    return false;
  }
  return true;
}

std::string KeyDistributionName(KeyDistribution dist) {
  switch (dist) {
    case KeyDistribution::kUniform:
      return "uniform";
    case KeyDistribution::kFal:
      return "fal";
    case KeyDistribution::kLogNormal:
      return "lognormal";
    case KeyDistribution::kAscending:
      return "ascending";
    case KeyDistribution::kDescending:
      return "descending";
  }
  return "unknown";
}

namespace {

class UniformKeyGenerator : public KeyGenerator {
 public:
  explicit UniformKeyGenerator(uint64_t seed) : rng_(seed) {}
  double Next() override { return rng_.NextDouble(); }

 private:
  Random rng_;
};

// fal: value(r) = N / r^z with rank r drawn uniformly from [1, N]. The
// original generator (Faloutsos & Jagadish 1992) enumerates ranks 1..N and
// shuffles; drawing ranks with replacement yields the same distribution for
// a streamed dataset and needs no O(N) state.
class FalKeyGenerator : public KeyGenerator {
 public:
  FalKeyGenerator(uint64_t n, double shape, uint64_t seed)
      : rng_(seed), n_(n > 0 ? n : 1), shape_(shape) {}

  double Next() override {
    const uint64_t rank = rng_.NextUint64(n_) + 1;
    return static_cast<double>(n_) /
           std::pow(static_cast<double>(rank), shape_);
  }

 private:
  Random rng_;
  uint64_t n_;
  double shape_;
};

class LogNormalKeyGenerator : public KeyGenerator {
 public:
  LogNormalKeyGenerator(double mu, double sigma, uint64_t seed)
      : rng_(seed), mu_(mu), sigma_(sigma) {}

  double Next() override { return rng_.NextLogNormal(mu_, sigma_); }

 private:
  Random rng_;
  double mu_;
  double sigma_;
};

// Monotone streams. A tiny uniform jitter inside each step keeps keys
// distinct without breaking monotonicity.
class MonotoneKeyGenerator : public KeyGenerator {
 public:
  MonotoneKeyGenerator(bool ascending, uint64_t num_rows, uint64_t seed)
      : rng_(seed), ascending_(ascending), num_rows_(num_rows) {}

  double Next() override {
    const double step = 1.0 / static_cast<double>(num_rows_ + 1);
    const double base = static_cast<double>(next_index_++) * step;
    const double jitter = rng_.NextDouble() * step * 0.5;
    const double v = base + jitter;
    return ascending_ ? v : 1.0 - v;
  }

 private:
  Random rng_;
  bool ascending_;
  uint64_t num_rows_;
  uint64_t next_index_ = 0;
};

}  // namespace

std::unique_ptr<KeyGenerator> MakeKeyGenerator(const KeyGeneratorSpec& spec) {
  switch (spec.distribution) {
    case KeyDistribution::kUniform:
      return std::make_unique<UniformKeyGenerator>(spec.seed);
    case KeyDistribution::kFal:
      return std::make_unique<FalKeyGenerator>(spec.num_rows, spec.fal_shape,
                                               spec.seed);
    case KeyDistribution::kLogNormal:
      return std::make_unique<LogNormalKeyGenerator>(
          spec.lognormal_mu, spec.lognormal_sigma, spec.seed);
    case KeyDistribution::kAscending:
      return std::make_unique<MonotoneKeyGenerator>(true, spec.num_rows,
                                                    spec.seed);
    case KeyDistribution::kDescending:
      return std::make_unique<MonotoneKeyGenerator>(false, spec.num_rows,
                                                    spec.seed);
  }
  TOPK_CHECK(false) << "unreachable distribution";
  return nullptr;
}

}  // namespace topk
