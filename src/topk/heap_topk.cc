#include "topk/heap_topk.h"

#include <algorithm>

#include "common/memory_accounting.h"
#include "obs/obs_context.h"
#include "row/serialization.h"

namespace topk {

HeapTopK::HeapTopK(const TopKOptions& options)
    : options_(options),
      comparator_(options.direction),
      heap_(comparator_) {}

Result<std::unique_ptr<HeapTopK>> HeapTopK::Make(const TopKOptions& options) {
  TOPK_RETURN_NOT_OK(ValidateTopKOptions(options, /*requires_storage=*/false));
  return std::unique_ptr<HeapTopK>(new HeapTopK(options));
}

std::optional<double> HeapTopK::cutoff() const {
  if (heap_.size() < options_.output_rows()) return std::nullopt;
  return heap_.top().key;
}

Status HeapTopK::Consume(Row row) {
  return RunWithAllocGuard("heap.Consume",
                           [&] { return ConsumeImpl(std::move(row)); });
}

Status HeapTopK::ConsumeImpl(Row row) {
  if (finished_) {
    return Status::FailedPrecondition("Consume after Finish");
  }
  if (options_.cancel != nullptr && options_.cancel->ShouldStop()) {
    // Purely in-memory: nothing to persist, so cancellation is just an
    // early return (one relaxed load when the token is quiet).
    return options_.cancel->status();
  }
  ObsScope obs_scope(options_.obs);
  Stopwatch watch;
  TOPK_RETURN_NOT_OK(ValidateRowPayload(row));
  MemoryArbiter* arbiter = options_.effective_arbiter();
  if (arbiter != nullptr && !lease_.attached()) {
    TOPK_ASSIGN_OR_RETURN(lease_, arbiter->Acquire("heap-topk", 0));
  }
  ++stats_.rows_consumed;
  const size_t cost = row.MemoryFootprint() + kPerRowOverheadBytes;
  if (heap_.size() < options_.output_rows()) {
    heap_bytes_ += cost;
    if (heap_bytes_ > options_.memory_limit_bytes &&
        !options_.allow_unbounded_memory) {
      return Status::OutOfMemory(
          "requested output does not fit in operator memory (" +
          std::to_string(heap_.size()) + " rows buffered); an external "
          "top-k operator is required");
    }
    TOPK_RETURN_NOT_OK(lease_.EnsureAtLeast(heap_bytes_));
    heap_.push(std::move(row));
  } else if (options_.with_ties && row.key == heap_.top().key) {
    // A key-tie of the current boundary row must be retained: the number
    // of duplicates is unknown, so this buffer can grow without bound —
    // the in-memory algorithm "may unexpectedly fail" (Sec 2.3).
    heap_bytes_ += cost;
    if (heap_bytes_ > options_.memory_limit_bytes &&
        !options_.allow_unbounded_memory) {
      return Status::OutOfMemory(
          "WITH TIES duplicates of the boundary key exceed operator "
          "memory; an external top-k operator is required");
    }
    TOPK_RETURN_NOT_OK(lease_.EnsureAtLeast(heap_bytes_));
    ties_.push_back(std::move(row));
  } else if (comparator_.Less(row, heap_.top())) {
    Row evicted = heap_.top();
    heap_.pop();
    heap_.push(std::move(row));
    heap_bytes_ += cost;
    if (options_.with_ties && evicted.key == heap_.top().key) {
      // The boundary key is unchanged: the evicted row is now a tie.
      ties_.push_back(std::move(evicted));
      if (heap_bytes_ > options_.memory_limit_bytes &&
          !options_.allow_unbounded_memory) {
        return Status::OutOfMemory(
            "WITH TIES duplicates of the boundary key exceed operator "
            "memory; an external top-k operator is required");
      }
      TOPK_RETURN_NOT_OK(lease_.EnsureAtLeast(heap_bytes_));
    } else {
      heap_bytes_ -= evicted.MemoryFootprint() + kPerRowOverheadBytes;
      if (options_.with_ties && !ties_.empty()) {
        // The boundary key just became sharper: retained ties of the old
        // boundary are all beyond the output now.
        for (const Row& tie : ties_) {
          heap_bytes_ -= tie.MemoryFootprint() + kPerRowOverheadBytes;
        }
        stats_.rows_eliminated_input += ties_.size();
        ties_.clear();
      }
      lease_.ShrinkTo(heap_bytes_);
    }
  } else {
    ++stats_.rows_eliminated_input;
  }
  stats_.peak_memory_bytes = std::max(stats_.peak_memory_bytes, heap_bytes_);
  stats_.consume_nanos += watch.ElapsedNanos();
  return Status::OK();
}

Result<std::vector<Row>> HeapTopK::Finish() {
  return RunWithAllocGuard("heap.Finish", [&] { return FinishImpl(); });
}

Result<std::vector<Row>> HeapTopK::FinishImpl() {
  if (finished_) {
    return Status::FailedPrecondition("Finish called twice");
  }
  finished_ = true;
  if (options_.cancel != nullptr && options_.cancel->ShouldStop()) {
    return options_.cancel->status();
  }
  ObsScope obs_scope(options_.obs);
  Stopwatch watch;
  stats_.final_cutoff = cutoff();

  std::vector<Row> rows;
  rows.reserve(heap_.size() + ties_.size());
  while (!heap_.empty()) {
    rows.push_back(heap_.top());
    heap_.pop();
  }
  std::reverse(rows.begin(), rows.end());  // best-first in query order
  if (!ties_.empty()) {
    // Retained boundary-key duplicates; merge them into full query order.
    rows.insert(rows.end(), std::make_move_iterator(ties_.begin()),
                std::make_move_iterator(ties_.end()));
    ties_.clear();
    std::sort(rows.begin(), rows.end(), comparator_);
  }
  if (options_.offset > 0) {
    const size_t skip = std::min<size_t>(options_.offset, rows.size());
    rows.erase(rows.begin(), rows.begin() + skip);
  }
  if (rows.size() > options_.k) {
    size_t end = options_.k;
    if (options_.with_ties) {
      // Extend past k while rows tie with the kth row's key.
      const double boundary = rows[options_.k - 1].key;
      while (end < rows.size() && rows[end].key == boundary) ++end;
    }
    rows.resize(end);
  }
  lease_.Release();
  stats_.finish_nanos = watch.ElapsedNanos();
  if (options_.obs != nullptr) {
    options_.obs->NoteMemoryBytes(stats_.peak_memory_bytes);
  }
  return rows;
}

}  // namespace topk
