#include "topk/optimized_external_topk.h"

#include <algorithm>

#include "obs/obs_context.h"
#include "obs/trace.h"
#include "sort/merge_planner.h"
#include "sort/merger.h"
#include "sort/replacement_selection.h"

namespace topk {

/// Spill hook implementing the [14] filter: drops rows beyond the cutoff at
/// spill time and proposes the (k+offset)th key of every physical run as a
/// new cutoff.
class OptimizedExternalTopK::KthKeyObserver : public SpillObserver {
 public:
  KthKeyObserver(OptimizedExternalTopK* op, uint64_t kth)
      : op_(op), kth_(kth) {}

  bool EliminateAtSpill(const Row& row) override {
    return op_->EliminateAtInput(row);
  }

  void OnRowSpilled(const Row& row) override {
    ++rows_in_run_;
    if (rows_in_run_ == kth_) {
      // This run alone proves k+offset rows at or before row.key.
      op_->ProposeCutoff(row.key);
    }
  }

  std::vector<HistogramBucket> OnRunFinished() override {
    rows_in_run_ = 0;
    return {};
  }

 private:
  OptimizedExternalTopK* op_;
  uint64_t kth_;
  uint64_t rows_in_run_ = 0;
};

OptimizedExternalTopK::OptimizedExternalTopK(const TopKOptions& options)
    : options_(options), comparator_(options.direction) {}

OptimizedExternalTopK::~OptimizedExternalTopK() = default;

Result<std::unique_ptr<OptimizedExternalTopK>> OptimizedExternalTopK::Make(
    const TopKOptions& options) {
  TOPK_RETURN_NOT_OK(ValidateTopKOptions(options, /*requires_storage=*/true));
  if (options.early_merge_fan_in < 2) {
    return Status::InvalidArgument("early merge fan-in must be at least 2");
  }
  return std::unique_ptr<OptimizedExternalTopK>(
      new OptimizedExternalTopK(options));
}

bool OptimizedExternalTopK::EliminateAtInput(const Row& row) const {
  return cutoff_.has_value() && comparator_.KeyBeyond(row.key, *cutoff_);
}

void OptimizedExternalTopK::ProposeCutoff(double key) {
  if (!cutoff_.has_value() || comparator_.KeyLess(key, *cutoff_)) {
    const bool tightened = cutoff_.has_value();
    cutoff_ = key;
    if (TracingEnabled()) {
      TraceInstant(tightened ? "cutoff.tighten" : "cutoff.establish",
                   "filter",
                   {TraceArg("cutoff", key),
                    TraceArg("rows_consumed", stats_.rows_consumed),
                    TraceArg("rows_eliminated_input",
                             stats_.rows_eliminated_input)});
    }
  }
}

Status OptimizedExternalTopK::CreateGenerator() {
  observer_ =
      std::make_unique<KthKeyObserver>(this, options_.output_rows());
  RunGeneratorOptions gen_options;
  gen_options.memory_limit_bytes = options_.memory_limit_bytes;
  if (options_.limit_run_size_to_output) {
    gen_options.run_row_limit = options_.output_rows();
  }
  gen_options.observer = observer_.get();
  gen_options.cancel = options_.cancel.get();
  gen_options.arbiter = options_.effective_arbiter();
  if (options_.run_generation == RunGenerationKind::kReplacementSelection) {
    generator_ = std::make_unique<ReplacementSelectionRunGenerator>(
        spill_.get(), comparator_, gen_options);
  } else {
    generator_ = std::make_unique<QuicksortRunGenerator>(
        spill_.get(), comparator_, gen_options);
  }
  return Status::OK();
}

Status OptimizedExternalTopK::SwitchToExternal() {
  PhaseScope phase("switch_to_external");
  TOPK_ASSIGN_OR_RETURN(spill_,
                        SpillManager::Create(options_.env, options_.spill_dir,
                                             options_.io_pipeline()));
  if (!options_.manifest_filename.empty()) {
    // Keep a manifest checkpointed from the very first run so a crash at
    // any later point finds a resumable state on disk.
    spill_->SetAutoManifest(options_.manifest_filename);
    TOPK_RETURN_NOT_OK(spill_->CheckpointManifest());
  }
  TOPK_RETURN_NOT_OK(CreateGenerator());
  for (Row& row : buffer_) {
    TOPK_RETURN_NOT_OK(generator_->Add(std::move(row)));
  }
  buffer_.clear();
  buffer_.shrink_to_fit();
  buffered_bytes_ = 0;
  lease_.ShrinkTo(0);
  return Status::OK();
}

Status OptimizedExternalTopK::WriteInputCheckpoint() {
  ManifestCheckpoint ckpt;
  ckpt.input_rows_consumed = stats_.rows_consumed;
  ckpt.run_id_bound = spill_->run_id_bound();
  ckpt.has_cutoff = cutoff_.has_value();
  if (cutoff_.has_value()) ckpt.cutoff = *cutoff_;
  spill_->SetManifestCheckpoint(ckpt);
  TOPK_RETURN_NOT_OK(spill_->CheckpointManifest());
  TOPK_RETURN_NOT_OK(spill_->FlushManifest());
  pinned_run_id_bound_ = ckpt.run_id_bound;
  return Status::OK();
}

Status OptimizedExternalTopK::CheckpointInput() {
  rows_since_checkpoint_ = 0;
  PhaseScope phase("input.checkpoint");
  TraceSpan span("input.checkpoint", "topk",
                 {TraceArg("rows_consumed", stats_.rows_consumed)});
  // Close the current run set: every surviving row consumed so far
  // reaches disk. Add-after-Flush is safe (RunGenerator contract), so
  // input continues into a fresh run set afterwards.
  TOPK_RETURN_NOT_OK(generator_->Flush());
  TOPK_RETURN_NOT_OK(WriteInputCheckpoint());
  HitCrashPoint("optimized.mid-input");
  return Status::OK();
}

Status OptimizedExternalTopK::MaybeEarlyMerge() {
  // An early merge only helps while no cutoff exists (k exceeds run sizes):
  // merging `early_merge_fan_in` runs can prove k rows and yield a cutoff
  // much earlier than waiting for the final merge. It interrupts run
  // generation and performs a low-fan-in merge — the cost the histogram
  // algorithm avoids.
  if (!options_.enable_early_merge) return Status::OK();
  if (cutoff_.has_value()) return Status::OK();
  // Checkpointed runs are pinned: consuming one would leave its merged
  // replacement — a higher id the resume path deletes as replay-duplicated
  // — as the only copy of pre-checkpoint rows the replay never
  // re-delivers. Only runs past the last checkpoint's frontier are fair
  // game.
  std::vector<RunMeta> inputs;
  for (const RunMeta& run : spill_->runs()) {
    if (run.id >= pinned_run_id_bound_) inputs.push_back(run);
  }
  if (inputs.size() < options_.early_merge_fan_in) return Status::OK();

  PhaseScope phase("merge.early");
  TraceSpan span("merge.early", "topk",
                 {TraceArg("runs", inputs.size())});
  std::unique_ptr<RunWriter> writer;
  TOPK_ASSIGN_OR_RETURN(writer, spill_->NewRun(comparator_));
  MergeOptions merge_options;
  merge_options.limit = options_.output_rows();
  merge_options.with_ties = options_.with_ties;
  merge_options.use_ovc = options_.use_ovc;
  merge_options.cancel = options_.cancel.get();
  MergeStats merge_stats;
  TOPK_ASSIGN_OR_RETURN(
      merge_stats, MergeRuns(spill_.get(), inputs, comparator_, merge_options,
                             [&](Row&& row) { return writer->Append(row); }));
  RunMeta merged;
  TOPK_ASSIGN_OR_RETURN(merged, writer->Finish());
  // Same crash-safe ordering as the merge planner: keep the input files
  // until the output's registration is checkpointed in the manifest.
  std::vector<std::string> consumed_paths;
  consumed_paths.reserve(inputs.size());
  for (const RunMeta& consumed : inputs) {
    std::string path;
    TOPK_ASSIGN_OR_RETURN(path, spill_->ReleaseRun(consumed.id));
    consumed_paths.push_back(std::move(path));
  }
  if (merged.rows > 0) {
    TOPK_RETURN_NOT_OK(spill_->AddRun(merged));
    ++early_merge_runs_registered_;
  } else {
    TOPK_RETURN_NOT_OK(spill_->CheckpointManifest());
    consumed_paths.push_back(merged.path);
  }
  if (spill_->auto_manifest_enabled()) {
    TOPK_RETURN_NOT_OK(spill_->FlushManifest());
  }
  for (const std::string& path : consumed_paths) {
    TOPK_RETURN_NOT_OK(spill_->DeleteSpillFile(path));
  }
  stats_.merge_rows_written += merge_stats.rows_emitted;
  stats_.merge_rows_read += merge_stats.rows_read;
  ++early_merges_done_;
  if (merge_stats.rows_emitted >= options_.output_rows()) {
    ProposeCutoff(merge_stats.last_key);
  }
  return Status::OK();
}

Status OptimizedExternalTopK::CheckCancel() {
  if (options_.cancel == nullptr || !options_.cancel->ShouldStop()) {
    return Status::OK();
  }
  return OnCancelStatus(options_.cancel->status());
}

Status OptimizedExternalTopK::OnCancelStatus(Status cause) {
  if (!IsCancellation(cause.code())) return cause;
  if (options_.on_cancel != OnCancelPolicy::kKeepForResume ||
      cancel_unwound_ || spill_ == nullptr ||
      options_.manifest_filename.empty()) {
    return cause;
  }
  // Preempted-but-resumable: the optimized handoff checkpoints input
  // consumption too, so the resumed query replays only the tail the
  // cancel cut off instead of restarting from row zero.
  cancel_unwound_ = true;
  finished_ = true;
  TraceSpan span("topk.cancel_keep_for_resume", "topk");
  CancelShield shield(options_.cancel.get());
  if (generator_ != nullptr) {
    generator_->SetCancel(nullptr);
    TOPK_RETURN_NOT_OK(generator_->Flush());
    TOPK_RETURN_NOT_OK(WriteInputCheckpoint());
  } else {
    TOPK_RETURN_NOT_OK(spill_->CheckpointManifest());
    TOPK_RETURN_NOT_OK(spill_->FlushManifest());
  }
  spill_->DisownDir();
  return cause;
}

Status OptimizedExternalTopK::Consume(Row row) {
  if (finished_) {
    return Status::FailedPrecondition("Consume after Finish");
  }
  if (resumed_ && generator_ == nullptr) {
    return Status::FailedPrecondition(
        "a merge-phase resumed operator accepts no input; its runs "
        "already hold the whole input");
  }
  ObsScope obs_scope(options_.obs);
  Status status = RunWithAllocGuard(
      "optimized.Consume", [&] { return ConsumeImpl(std::move(row)); });
  if (!status.ok() && !IsCancellation(status.code()) && first_error_.ok()) {
    first_error_ = status;
  }
  return status;
}

Status OptimizedExternalTopK::ConsumeImpl(Row row) {
  TOPK_RETURN_NOT_OK(CheckCancel());
  Stopwatch watch;
  ++stats_.rows_consumed;
  if (EliminateAtInput(row)) {
    ++stats_.rows_eliminated_input;
  } else {
    if (generator_ == nullptr) {
      MemoryArbiter* arbiter = options_.effective_arbiter();
      if (arbiter != nullptr && !lease_.attached()) {
        TOPK_ASSIGN_OR_RETURN(lease_, arbiter->Acquire("optimized-topk", 0));
      }
      const size_t cost = row.MemoryFootprint() + kPerRowOverheadBytes;
      if (buffered_bytes_ + cost <= options_.memory_limit_bytes) {
        buffered_bytes_ += cost;
        TOPK_RETURN_NOT_OK(lease_.EnsureAtLeast(buffered_bytes_));
        stats_.peak_memory_bytes =
            std::max(stats_.peak_memory_bytes, buffered_bytes_);
        buffer_.push_back(std::move(row));
        stats_.consume_nanos += watch.ElapsedNanos();
        return Status::OK();
      }
      TOPK_RETURN_NOT_OK(SwitchToExternal());
    }
    Status pushed = generator_->Add(std::move(row));
    if (pushed.ok()) pushed = MaybeEarlyMerge();
    if (!pushed.ok()) return OnCancelStatus(std::move(pushed));
  }
  // Eliminated rows advance the checkpoint clock too: the checkpoint
  // bounds how much *input* a crash replays, and the replay re-delivers
  // eliminated rows just the same.
  if (generator_ != nullptr && options_.checkpoint_input_every_rows > 0 &&
      spill_->auto_manifest_enabled() &&
      ++rows_since_checkpoint_ >= options_.checkpoint_input_every_rows) {
    Status checkpointed = CheckpointInput();
    if (!checkpointed.ok()) return OnCancelStatus(std::move(checkpointed));
  }
  stats_.consume_nanos += watch.ElapsedNanos();
  return Status::OK();
}

Result<std::vector<Row>> OptimizedExternalTopK::Finish() {
  if (finished_) {
    return Status::FailedPrecondition("Finish called twice");
  }
  finished_ = true;
  ObsScope obs_scope(options_.obs);
  Result<std::vector<Row>> result =
      RunWithAllocGuard("optimized.Finish", [&] { return FinishImpl(); });
  if (!result.ok() && !IsCancellation(result.status().code()) &&
      first_error_.ok()) {
    first_error_ = result.status();
  }
  return result;
}

Result<std::vector<Row>> OptimizedExternalTopK::FinishImpl() {
  TOPK_RETURN_NOT_OK(CheckCancel());
  Stopwatch watch;
  std::vector<Row> result;

  if (generator_ == nullptr && !resumed_) {
    std::sort(buffer_.begin(), buffer_.end(), comparator_);
    const size_t begin = std::min<size_t>(options_.offset, buffer_.size());
    size_t end = std::min<size_t>(begin + options_.k, buffer_.size());
    if (options_.with_ties && end > begin && end < buffer_.size()) {
      const double boundary = buffer_[end - 1].key;
      while (end < buffer_.size() && buffer_[end].key == boundary) ++end;
    }
    result.assign(std::make_move_iterator(buffer_.begin() + begin),
                  std::make_move_iterator(buffer_.begin() + end));
    buffer_.clear();
    lease_.Release();
    stats_.finish_nanos = watch.ElapsedNanos();
    if (options_.obs != nullptr) {
      options_.obs->NoteMemoryBytes(stats_.peak_memory_bytes);
    }
    return result;
  }

  if (generator_ != nullptr) {
    {
      PhaseScope flush_phase("rungen.flush");
      TraceSpan flush_span("rungen.flush", "topk");
      Status flushed = generator_->Flush();
      if (!flushed.ok()) return OnCancelStatus(std::move(flushed));
    }
    stats_.rows_eliminated_spill =
        generator_->stats().rows_eliminated_at_spill;
    stats_.rows_spilled = generator_->stats().rows_spilled;
    stats_.peak_memory_bytes = std::max(
        stats_.peak_memory_bytes, generator_->stats().peak_memory_bytes);
    if (spill_->auto_manifest_enabled()) {
      // The complete run set is durable; the crash point below (and any
      // real crash before the merge) finds a resumable state.
      TOPK_RETURN_NOT_OK(spill_->FlushManifest());
      HitCrashPoint("post-run-flush");
      if (spill_->manifest_checkpoint().has_value()) {
        // The whole input now lives in the runs, so the mid-input
        // checkpoint has served its purpose. Drop it: a merge-phase
        // crash must resume from the runs alone — replaying input on
        // top of merge output would double-count rows.
        spill_->ClearManifestCheckpoint();
        TOPK_RETURN_NOT_OK(spill_->CheckpointManifest());
        TOPK_RETURN_NOT_OK(spill_->FlushManifest());
      }
    }
  } else {
    // Merge-phase resume: run generation happened in the pre-crash
    // process; the restored registry totals are all that remain of it.
    stats_.rows_spilled = spill_->total_rows_spilled();
  }
  stats_.runs_created =
      spill_->total_runs_created() - early_merge_runs_registered_;
  stats_.final_cutoff = cutoff_;

  const auto merge_phase = [&]() -> Status {
    MergePlannerOptions planner_options;
    planner_options.fan_in = options_.merge_fan_in;
    planner_options.policy = options_.merge_policy;
    planner_options.intermediate_limit = options_.output_rows();
    planner_options.with_ties = options_.with_ties;
    planner_options.use_ovc = options_.use_ovc;
    planner_options.cancel = options_.cancel.get();
    MergePlanStats plan_stats;
    std::vector<RunMeta> final_runs;
    TOPK_ASSIGN_OR_RETURN(
        final_runs, ReduceRunsForFinalMerge(spill_.get(), comparator_,
                                            planner_options, &plan_stats));
    stats_.merge_rows_written += plan_stats.intermediate_rows_written;

    MergeOptions merge_options;
    merge_options.limit = options_.k;
    merge_options.skip = options_.offset;
    merge_options.with_ties = options_.with_ties;
    merge_options.use_ovc = options_.use_ovc;
    merge_options.cancel = options_.cancel.get();
    MergeStats merge_stats;
    {
      PhaseScope merge_phase_scope("merge.final");
      TraceSpan merge_span("merge.final", "topk",
                           {TraceArg("runs", final_runs.size())});
      TOPK_ASSIGN_OR_RETURN(merge_stats,
                            MergeRuns(spill_.get(), final_runs, comparator_,
                                      merge_options, [&](Row&& row) {
                                        result.push_back(std::move(row));
                                        return Status::OK();
                                      }));
      merge_span.End();
    }
    stats_.merge_rows_read +=
        plan_stats.intermediate_rows_read + merge_stats.rows_read;
    return Status::OK();
  };
  Status merged = merge_phase();
  if (!merged.ok()) {
    if (spill_->auto_manifest_enabled()) {
      // The manifest still describes a consistent run set on disk (the
      // planner deletes inputs only after checkpointing). Keep the
      // directory so ResumeFromManifest can pick the query up.
      (void)spill_->FlushManifest();
      spill_->DisownDir();
    }
    return merged;
  }
  stats_.bytes_spilled = spill_->total_bytes_spilled();
  stats_.finish_nanos = watch.ElapsedNanos();
  if (options_.obs != nullptr) {
    options_.obs->NoteMemoryBytes(stats_.peak_memory_bytes);
  }
  return result;
}

Status OptimizedExternalTopK::Suspend() {
  return RunWithAllocGuard("optimized.Suspend", [&] { return SuspendImpl(); });
}

Status OptimizedExternalTopK::SuspendImpl() {
  ObsScope obs_scope(options_.obs);
  if (!first_error_.ok()) {
    // A prior entry point already failed; the real cause of the
    // operator's demise beats a generic precondition complaint.
    return first_error_;
  }
  if (finished_) {
    return Status::FailedPrecondition("Suspend after Finish");
  }
  if (resumed_ && generator_ == nullptr) {
    return Status::FailedPrecondition(
        "Suspend of a merge-phase resumed operator");
  }
  if (options_.manifest_filename.empty()) {
    return Status::FailedPrecondition(
        "Suspend requires TopKOptions::manifest_filename");
  }
  finished_ = true;
  TraceSpan span("topk.suspend", "topk");
  // An explicit Suspend overrides a tripped cancellation token (see
  // HistogramTopK::Suspend).
  CancelShield shield(options_.cancel.get());
  if (generator_ == nullptr) {
    TOPK_RETURN_NOT_OK(SwitchToExternal());
  }
  generator_->SetCancel(nullptr);
  TOPK_RETURN_NOT_OK(generator_->Flush());
  TOPK_RETURN_NOT_OK(WriteInputCheckpoint());
  stats_.rows_eliminated_spill = generator_->stats().rows_eliminated_at_spill;
  stats_.rows_spilled = generator_->stats().rows_spilled;
  stats_.runs_created =
      spill_->total_runs_created() - early_merge_runs_registered_;
  stats_.bytes_spilled = spill_->total_bytes_spilled();
  HitCrashPoint("post-manifest-checkpoint");
  spill_->DisownDir();
  return Status::OK();
}

Result<std::unique_ptr<OptimizedExternalTopK>>
OptimizedExternalTopK::ResumeFromManifest(const TopKOptions& options,
                                          RestoreReport* report) {
  TOPK_RETURN_NOT_OK(ValidateTopKOptions(options, /*requires_storage=*/true));
  if (options.early_merge_fan_in < 2) {
    return Status::InvalidArgument("early merge fan-in must be at least 2");
  }
  if (options.manifest_filename.empty()) {
    return Status::InvalidArgument(
        "ResumeFromManifest requires TopKOptions::manifest_filename");
  }
  auto op = std::unique_ptr<OptimizedExternalTopK>(
      new OptimizedExternalTopK(options));
  op->resumed_ = true;
  ObsScope obs_scope(options.obs);
  TraceSpan span("topk.resume_from_manifest", "topk");
  TOPK_ASSIGN_OR_RETURN(
      op->spill_,
      SpillManager::OpenExisting(options.env, options.spill_dir,
                                 options.manifest_filename, op->comparator_,
                                 options.io_pipeline(), report));
  // Keep checkpointing across the resumed execution so another crash is
  // also recoverable.
  op->spill_->SetAutoManifest(options.manifest_filename);
  const std::optional<ManifestCheckpoint> ckpt =
      op->spill_->manifest_checkpoint();
  if (!ckpt.has_value()) {
    // No input checkpoint: run generation had completed (Finish clears
    // the checkpoint at that boundary). Merge-phase resume — no
    // generator, no replay, Finish merges the restored runs.
    return op;
  }
  // Mid-input crash. Runs at or past the checkpoint's id frontier were
  // written after it; the replay the caller is about to perform
  // re-delivers exactly the rows they held, so keeping them would count
  // those rows twice.
  uint64_t dropped = 0;
  for (const RunMeta& run : op->spill_->runs()) {
    if (run.id >= ckpt->run_id_bound) {
      std::string path;
      TOPK_ASSIGN_OR_RETURN(path, op->spill_->ReleaseRun(run.id));
      TOPK_RETURN_NOT_OK(op->spill_->DeleteSpillFile(path));
      ++dropped;
    }
  }
  TOPK_RETURN_NOT_OK(op->spill_->CheckpointManifest());
  if (ckpt->has_cutoff) op->cutoff_ = ckpt->cutoff;
  op->resume_input_offset_ = ckpt->input_rows_consumed;
  // Absolute input accounting continues where the checkpoint left it, so
  // the next checkpoint's input_rows_consumed stays an absolute offset.
  op->stats_.rows_consumed = ckpt->input_rows_consumed;
  op->pinned_run_id_bound_ = ckpt->run_id_bound;
  TOPK_RETURN_NOT_OK(op->CreateGenerator());
  if (TracingEnabled()) {
    TraceInstant("resume.input_checkpoint", "topk",
                 {TraceArg("replay_from", ckpt->input_rows_consumed),
                  TraceArg("runs_dropped", dropped),
                  TraceArg("cutoff_restored", ckpt->has_cutoff ? 1 : 0)});
  }
  return op;
}

}  // namespace topk
