#include "topk/optimized_external_topk.h"

#include <algorithm>

#include "obs/obs_context.h"
#include "obs/trace.h"
#include "sort/merge_planner.h"
#include "sort/merger.h"
#include "sort/replacement_selection.h"

namespace topk {

/// Spill hook implementing the [14] filter: drops rows beyond the cutoff at
/// spill time and proposes the (k+offset)th key of every physical run as a
/// new cutoff.
class OptimizedExternalTopK::KthKeyObserver : public SpillObserver {
 public:
  KthKeyObserver(OptimizedExternalTopK* op, uint64_t kth)
      : op_(op), kth_(kth) {}

  bool EliminateAtSpill(const Row& row) override {
    return op_->EliminateAtInput(row);
  }

  void OnRowSpilled(const Row& row) override {
    ++rows_in_run_;
    if (rows_in_run_ == kth_) {
      // This run alone proves k+offset rows at or before row.key.
      op_->ProposeCutoff(row.key);
    }
  }

  std::vector<HistogramBucket> OnRunFinished() override {
    rows_in_run_ = 0;
    return {};
  }

 private:
  OptimizedExternalTopK* op_;
  uint64_t kth_;
  uint64_t rows_in_run_ = 0;
};

OptimizedExternalTopK::OptimizedExternalTopK(const TopKOptions& options)
    : options_(options), comparator_(options.direction) {}

OptimizedExternalTopK::~OptimizedExternalTopK() = default;

Result<std::unique_ptr<OptimizedExternalTopK>> OptimizedExternalTopK::Make(
    const TopKOptions& options) {
  TOPK_RETURN_NOT_OK(ValidateTopKOptions(options, /*requires_storage=*/true));
  if (options.early_merge_fan_in < 2) {
    return Status::InvalidArgument("early merge fan-in must be at least 2");
  }
  return std::unique_ptr<OptimizedExternalTopK>(
      new OptimizedExternalTopK(options));
}

bool OptimizedExternalTopK::EliminateAtInput(const Row& row) const {
  return cutoff_.has_value() && comparator_.KeyBeyond(row.key, *cutoff_);
}

void OptimizedExternalTopK::ProposeCutoff(double key) {
  if (!cutoff_.has_value() || comparator_.KeyLess(key, *cutoff_)) {
    const bool tightened = cutoff_.has_value();
    cutoff_ = key;
    if (TracingEnabled()) {
      TraceInstant(tightened ? "cutoff.tighten" : "cutoff.establish",
                   "filter",
                   {TraceArg("cutoff", key),
                    TraceArg("rows_consumed", stats_.rows_consumed),
                    TraceArg("rows_eliminated_input",
                             stats_.rows_eliminated_input)});
    }
  }
}

Status OptimizedExternalTopK::SwitchToExternal() {
  TOPK_ASSIGN_OR_RETURN(spill_,
                        SpillManager::Create(options_.env, options_.spill_dir,
                                             options_.io_pipeline()));
  observer_ =
      std::make_unique<KthKeyObserver>(this, options_.output_rows());
  PhaseScope phase("switch_to_external");
  RunGeneratorOptions gen_options;
  gen_options.memory_limit_bytes = options_.memory_limit_bytes;
  if (options_.limit_run_size_to_output) {
    gen_options.run_row_limit = options_.output_rows();
  }
  gen_options.observer = observer_.get();
  if (options_.run_generation == RunGenerationKind::kReplacementSelection) {
    generator_ = std::make_unique<ReplacementSelectionRunGenerator>(
        spill_.get(), comparator_, gen_options);
  } else {
    generator_ = std::make_unique<QuicksortRunGenerator>(
        spill_.get(), comparator_, gen_options);
  }
  for (Row& row : buffer_) {
    TOPK_RETURN_NOT_OK(generator_->Add(std::move(row)));
  }
  buffer_.clear();
  buffer_.shrink_to_fit();
  buffered_bytes_ = 0;
  return Status::OK();
}

Status OptimizedExternalTopK::MaybeEarlyMerge() {
  // An early merge only helps while no cutoff exists (k exceeds run sizes):
  // merging `early_merge_fan_in` runs can prove k rows and yield a cutoff
  // much earlier than waiting for the final merge. It interrupts run
  // generation and performs a low-fan-in merge — the cost the histogram
  // algorithm avoids.
  if (!options_.enable_early_merge) return Status::OK();
  if (cutoff_.has_value()) return Status::OK();
  if (spill_->run_count() < options_.early_merge_fan_in) return Status::OK();

  PhaseScope phase("merge.early");
  TraceSpan span("merge.early", "topk",
                 {TraceArg("runs", spill_->run_count())});
  std::vector<RunMeta> inputs = spill_->runs();
  std::unique_ptr<RunWriter> writer;
  TOPK_ASSIGN_OR_RETURN(writer, spill_->NewRun(comparator_));
  MergeOptions merge_options;
  merge_options.limit = options_.output_rows();
  merge_options.with_ties = options_.with_ties;
  merge_options.use_ovc = options_.use_ovc;
  MergeStats merge_stats;
  TOPK_ASSIGN_OR_RETURN(
      merge_stats, MergeRuns(spill_.get(), inputs, comparator_, merge_options,
                             [&](Row&& row) { return writer->Append(row); }));
  RunMeta merged;
  TOPK_ASSIGN_OR_RETURN(merged, writer->Finish());
  // Same crash-safe ordering as the merge planner: keep the input files
  // until the output's registration is checkpointed in the manifest.
  std::vector<std::string> consumed_paths;
  consumed_paths.reserve(inputs.size());
  for (const RunMeta& consumed : inputs) {
    std::string path;
    TOPK_ASSIGN_OR_RETURN(path, spill_->ReleaseRun(consumed.id));
    consumed_paths.push_back(std::move(path));
  }
  if (merged.rows > 0) {
    TOPK_RETURN_NOT_OK(spill_->AddRun(merged));
    ++early_merge_runs_registered_;
  } else {
    TOPK_RETURN_NOT_OK(spill_->CheckpointManifest());
    consumed_paths.push_back(merged.path);
  }
  if (spill_->auto_manifest_enabled()) {
    TOPK_RETURN_NOT_OK(spill_->FlushManifest());
  }
  for (const std::string& path : consumed_paths) {
    TOPK_RETURN_NOT_OK(spill_->DeleteSpillFile(path));
  }
  stats_.merge_rows_written += merge_stats.rows_emitted;
  stats_.merge_rows_read += merge_stats.rows_read;
  ++early_merges_done_;
  if (merge_stats.rows_emitted >= options_.output_rows()) {
    ProposeCutoff(merge_stats.last_key);
  }
  return Status::OK();
}

Status OptimizedExternalTopK::Consume(Row row) {
  if (finished_) {
    return Status::FailedPrecondition("Consume after Finish");
  }
  ObsScope obs_scope(options_.obs);
  Stopwatch watch;
  ++stats_.rows_consumed;
  if (EliminateAtInput(row)) {
    ++stats_.rows_eliminated_input;
    stats_.consume_nanos += watch.ElapsedNanos();
    return Status::OK();
  }
  if (generator_ == nullptr) {
    const size_t cost = row.MemoryFootprint() + kPerRowOverheadBytes;
    if (buffered_bytes_ + cost <= options_.memory_limit_bytes) {
      buffered_bytes_ += cost;
      stats_.peak_memory_bytes =
          std::max(stats_.peak_memory_bytes, buffered_bytes_);
      buffer_.push_back(std::move(row));
      stats_.consume_nanos += watch.ElapsedNanos();
      return Status::OK();
    }
    TOPK_RETURN_NOT_OK(SwitchToExternal());
  }
  TOPK_RETURN_NOT_OK(generator_->Add(std::move(row)));
  TOPK_RETURN_NOT_OK(MaybeEarlyMerge());
  stats_.consume_nanos += watch.ElapsedNanos();
  return Status::OK();
}

Result<std::vector<Row>> OptimizedExternalTopK::Finish() {
  if (finished_) {
    return Status::FailedPrecondition("Finish called twice");
  }
  finished_ = true;
  ObsScope obs_scope(options_.obs);
  Stopwatch watch;
  std::vector<Row> result;

  if (generator_ == nullptr) {
    std::sort(buffer_.begin(), buffer_.end(), comparator_);
    const size_t begin = std::min<size_t>(options_.offset, buffer_.size());
    size_t end = std::min<size_t>(begin + options_.k, buffer_.size());
    if (options_.with_ties && end > begin && end < buffer_.size()) {
      const double boundary = buffer_[end - 1].key;
      while (end < buffer_.size() && buffer_[end].key == boundary) ++end;
    }
    result.assign(std::make_move_iterator(buffer_.begin() + begin),
                  std::make_move_iterator(buffer_.begin() + end));
    buffer_.clear();
    stats_.finish_nanos = watch.ElapsedNanos();
    if (options_.obs != nullptr) {
      options_.obs->NoteMemoryBytes(stats_.peak_memory_bytes);
    }
    return result;
  }

  {
    PhaseScope flush_phase("rungen.flush");
    TraceSpan flush_span("rungen.flush", "topk");
    TOPK_RETURN_NOT_OK(generator_->Flush());
  }
  stats_.rows_eliminated_spill = generator_->stats().rows_eliminated_at_spill;
  stats_.rows_spilled = generator_->stats().rows_spilled;
  stats_.runs_created =
      spill_->total_runs_created() - early_merge_runs_registered_;
  stats_.peak_memory_bytes = std::max(stats_.peak_memory_bytes,
                                      generator_->stats().peak_memory_bytes);
  stats_.final_cutoff = cutoff_;

  MergePlannerOptions planner_options;
  planner_options.fan_in = options_.merge_fan_in;
  planner_options.policy = options_.merge_policy;
  planner_options.intermediate_limit = options_.output_rows();
  planner_options.with_ties = options_.with_ties;
  planner_options.use_ovc = options_.use_ovc;
  MergePlanStats plan_stats;
  std::vector<RunMeta> final_runs;
  TOPK_ASSIGN_OR_RETURN(
      final_runs, ReduceRunsForFinalMerge(spill_.get(), comparator_,
                                          planner_options, &plan_stats));
  stats_.merge_rows_written += plan_stats.intermediate_rows_written;

  MergeOptions merge_options;
  merge_options.limit = options_.k;
  merge_options.skip = options_.offset;
  merge_options.with_ties = options_.with_ties;
  merge_options.use_ovc = options_.use_ovc;
  MergeStats merge_stats;
  {
    PhaseScope merge_phase("merge.final");
    TraceSpan merge_span("merge.final", "topk",
                         {TraceArg("runs", final_runs.size())});
    TOPK_ASSIGN_OR_RETURN(merge_stats,
                          MergeRuns(spill_.get(), final_runs, comparator_,
                                    merge_options, [&](Row&& row) {
                                      result.push_back(std::move(row));
                                      return Status::OK();
                                    }));
    merge_span.End();
  }
  stats_.merge_rows_read +=
      plan_stats.intermediate_rows_read + merge_stats.rows_read;
  stats_.bytes_spilled = spill_->total_bytes_spilled();
  stats_.finish_nanos = watch.ElapsedNanos();
  if (options_.obs != nullptr) {
    options_.obs->NoteMemoryBytes(stats_.peak_memory_bytes);
  }
  return result;
}

}  // namespace topk
