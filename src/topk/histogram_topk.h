#ifndef TOPK_TOPK_HISTOGRAM_TOPK_H_
#define TOPK_TOPK_HISTOGRAM_TOPK_H_

#include <memory>
#include <queue>
#include <vector>

#include "histogram/cutoff_filter.h"
#include "io/spill_manager.h"
#include "sort/run_generation.h"
#include "topk/topk_operator.h"

namespace topk {

/// The paper's algorithm (Sec 3): top-k by external merge sort with eager
/// input filtering guided by histograms.
///
/// Adaptive behaviour (Sec 3.1.1): while the requested output fits in the
/// memory budget the operator is exactly the in-memory priority-queue
/// algorithm and never touches storage; the moment memory overflows before
/// k+offset rows are buffered, it switches to run generation. From then on:
///
///  * every arriving row is tested against the cutoff key (Algorithm 1,
///    line 4) and dropped if it provably cannot reach the output;
///  * surviving rows enter replacement selection; rows leaving memory for a
///    run are tested again (line 11) because the cutoff may have sharpened
///    since they were admitted;
///  * each spilled row feeds the cutoff filter's histogram (line 13),
///    which continuously sharpens the cutoff — even mid-run.
///
/// The final result is produced by merging the surviving runs until k rows
/// are emitted, with lowest-keys-first intermediate merges that stop at the
/// cutoff and refine it (Sec 4.1).
class HistogramTopK : public TopKOperator {
 public:
  static Result<std::unique_ptr<HistogramTopK>> Make(
      const TopKOptions& options);

  /// Reconstructs the merge phase of a suspended or crashed operator from
  /// the manifest in `options.manifest_filename` (Sec 2.7's pause-and-resume
  /// across process boundaries). Runs failing verification are quarantined
  /// and reported via `report` rather than aborting. The resumed operator
  /// accepts no further input: call Finish() to produce the result from the
  /// surviving runs. The cutoff filter is rebuilt from the per-run
  /// histograms the manifest preserved.
  static Result<std::unique_ptr<HistogramTopK>> ResumeFromManifest(
      const TopKOptions& options, RestoreReport* report = nullptr);

  ~HistogramTopK() override;  // out-of-line: FilterObserver is incomplete
                              // here

  Status Consume(Row row) override;
  Result<std::vector<Row>> Finish() override;

  /// Makes the operator's state durable and relinquishes it instead of
  /// producing a result: buffered rows are spilled (switching to external
  /// mode if needed), the manifest is written and flushed, and the spill
  /// directory is left on disk for a later ResumeFromManifest — possibly in
  /// another process. Requires options.manifest_filename. The operator is
  /// finished afterwards.
  Status Suspend() override;

  std::string name() const override { return "histogram"; }

  /// Current cutoff key (from the heap top in in-memory mode, from the
  /// histogram model in external mode).
  std::optional<double> cutoff() const;

  /// True once the operator switched to external (spilling) mode.
  bool is_external() const { return generator_ != nullptr || resumed_; }

  /// True for an operator reconstructed by ResumeFromManifest.
  bool is_resumed() const { return resumed_; }

  /// The cutoff filter (valid in external mode; for tests/benchmarks).
  const CutoffFilter* filter() const { return filter_.get(); }

 private:
  class FilterObserver;

  explicit HistogramTopK(const TopKOptions& options);

  Status SwitchToExternal();
  CutoffFilter::Options MakeFilterOptions(uint64_t expected_run_rows);

  Status ConsumeImpl(Row row);
  Result<std::vector<Row>> FinishImpl();
  Status SuspendImpl();

  /// Entry-point poll of options_.cancel; a tripped token is routed
  /// through OnCancelStatus so the on_cancel policy applies.
  Status CheckCancel();
  /// Passes `cause` through, but when it is the cancellation token
  /// tripping and on_cancel is kKeepForResume, first performs Suspend's
  /// durable handoff (flush, checkpoint, disown) so the spilled runs
  /// survive for ResumeFromManifest. A storage error during the handoff
  /// wins over the cancellation.
  Status OnCancelStatus(Status cause);

  /// Consolidates spilled runs early when the spill quota is nearly full
  /// (checked before every row handed to run generation): merges up to
  /// merge_fan_in registered runs — lowest keys first, stopping at the
  /// cutoff — into one quota-exempt output, then deletes the inputs. The
  /// cutoff filter usually makes the output much smaller than its inputs,
  /// so disk headroom is reclaimed *before* a block write trips the quota.
  /// Only after consolidation can no longer help does a write surface
  /// ResourceExhausted.
  Status MaybeConsolidateForQuota();
  Status ConsolidateSpillForQuota();

  TopKOptions options_;
  RowComparator comparator_;

  /// In-memory phase: query-order max-heap (top = worst kept row).
  std::priority_queue<Row, std::vector<Row>, RowComparator> heap_;
  /// WITH TIES, in-memory phase: boundary-key duplicates beyond the heap.
  std::vector<Row> ties_;
  size_t heap_bytes_ = 0;
  bool heap_saturated_ = false;  // holds k+offset rows; acts as HeapTopK
  /// Arbiter lease covering heap_bytes_ (in-memory phase).
  MemoryLease lease_;
  /// Arbiter lease covering the cutoff filter's bucket-queue budget,
  /// acquired at the external switch.
  MemoryLease filter_lease_;

  /// External phase.
  std::unique_ptr<SpillManager> spill_;
  std::unique_ptr<CutoffFilter> filter_;
  std::unique_ptr<FilterObserver> observer_;
  std::unique_ptr<RunGenerator> generator_;

  bool finished_ = false;
  /// Built by ResumeFromManifest: runs come from a restored spill manager,
  /// there is no run generator, and Consume is rejected.
  bool resumed_ = false;
  /// First non-cancellation error any entry point surfaced. Suspend
  /// returns it instead of a generic precondition failure: the real cause
  /// of the operator's demise beats "Suspend after Finish".
  Status first_error_;
  /// The keep-for-resume cancel handoff ran (it must run at most once).
  bool cancel_unwound_ = false;
  /// total_runs_created() at the last quota consolidation attempt; a new
  /// attempt waits for at least one new run so a consolidation that could
  /// not free enough space is not retried on every row.
  uint64_t runs_created_at_last_quota_merge_ = 0;
};

}  // namespace topk

#endif  // TOPK_TOPK_HISTOGRAM_TOPK_H_
