#include "topk/operator_factory.h"

#include "topk/heap_topk.h"
#include "topk/histogram_topk.h"
#include "topk/optimized_external_topk.h"
#include "topk/traditional_external_topk.h"

namespace topk {

std::string TopKAlgorithmName(TopKAlgorithm algorithm) {
  switch (algorithm) {
    case TopKAlgorithm::kHeap:
      return "heap";
    case TopKAlgorithm::kTraditionalExternal:
      return "traditional-external";
    case TopKAlgorithm::kOptimizedExternal:
      return "optimized-external";
    case TopKAlgorithm::kHistogram:
      return "histogram";
  }
  return "unknown";
}

bool ParseTopKAlgorithm(const std::string& name, TopKAlgorithm* out) {
  if (name == "heap") {
    *out = TopKAlgorithm::kHeap;
  } else if (name == "traditional-external" || name == "traditional") {
    *out = TopKAlgorithm::kTraditionalExternal;
  } else if (name == "optimized-external" || name == "optimized") {
    *out = TopKAlgorithm::kOptimizedExternal;
  } else if (name == "histogram") {
    *out = TopKAlgorithm::kHistogram;
  } else {
    return false;
  }
  return true;
}

Result<std::unique_ptr<TopKOperator>> MakeTopKOperator(
    TopKAlgorithm algorithm, const TopKOptions& options) {
  switch (algorithm) {
    case TopKAlgorithm::kHeap: {
      std::unique_ptr<HeapTopK> op;
      TOPK_ASSIGN_OR_RETURN(op, HeapTopK::Make(options));
      return std::unique_ptr<TopKOperator>(std::move(op));
    }
    case TopKAlgorithm::kTraditionalExternal: {
      std::unique_ptr<TraditionalExternalTopK> op;
      TOPK_ASSIGN_OR_RETURN(op, TraditionalExternalTopK::Make(options));
      return std::unique_ptr<TopKOperator>(std::move(op));
    }
    case TopKAlgorithm::kOptimizedExternal: {
      std::unique_ptr<OptimizedExternalTopK> op;
      TOPK_ASSIGN_OR_RETURN(op, OptimizedExternalTopK::Make(options));
      return std::unique_ptr<TopKOperator>(std::move(op));
    }
    case TopKAlgorithm::kHistogram: {
      std::unique_ptr<HistogramTopK> op;
      TOPK_ASSIGN_OR_RETURN(op, HistogramTopK::Make(options));
      return std::unique_ptr<TopKOperator>(std::move(op));
    }
  }
  return Status::InvalidArgument("unknown top-k algorithm");
}

Result<std::unique_ptr<TopKOperator>> ResumeTopKOperator(
    TopKAlgorithm algorithm, const TopKOptions& options,
    RestoreReport* report) {
  switch (algorithm) {
    case TopKAlgorithm::kHistogram: {
      std::unique_ptr<HistogramTopK> op;
      TOPK_ASSIGN_OR_RETURN(op,
                            HistogramTopK::ResumeFromManifest(options, report));
      return std::unique_ptr<TopKOperator>(std::move(op));
    }
    case TopKAlgorithm::kTraditionalExternal: {
      std::unique_ptr<TraditionalExternalTopK> op;
      TOPK_ASSIGN_OR_RETURN(
          op, TraditionalExternalTopK::ResumeFromManifest(options, report));
      return std::unique_ptr<TopKOperator>(std::move(op));
    }
    case TopKAlgorithm::kOptimizedExternal: {
      std::unique_ptr<OptimizedExternalTopK> op;
      TOPK_ASSIGN_OR_RETURN(
          op, OptimizedExternalTopK::ResumeFromManifest(options, report));
      return std::unique_ptr<TopKOperator>(std::move(op));
    }
    case TopKAlgorithm::kHeap:
      break;
  }
  return Status::InvalidArgument(
      "algorithm " + TopKAlgorithmName(algorithm) +
      " does not support manifest resume (supported: histogram, "
      "traditional-external, optimized-external)");
}

}  // namespace topk
