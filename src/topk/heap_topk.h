#ifndef TOPK_TOPK_HEAP_TOPK_H_
#define TOPK_TOPK_HEAP_TOPK_H_

#include <memory>
#include <queue>
#include <vector>

#include "topk/topk_operator.h"

namespace topk {

/// The standard in-memory top-k algorithm (Sec 2.3): a priority queue holds
/// the best k+offset rows seen so far, its top entry is the current worst
/// kept row and serves as the cutoff key for eliminating further input.
///
/// Perfectly suitable while the requested output fits in memory — and, as
/// the paper stresses, neither scalable nor robust beyond that: when the
/// heap would exceed the memory budget this operator fails with
/// OutOfMemory (unless allow_unbounded_memory is set, as in the Figure 6
/// provisioning study). Engines then fall back to an external operator.
class HeapTopK : public TopKOperator {
 public:
  static Result<std::unique_ptr<HeapTopK>> Make(const TopKOptions& options);

  Status Consume(Row row) override;
  Result<std::vector<Row>> Finish() override;
  std::string name() const override { return "heap"; }

  /// Current cutoff (top of the heap) once the heap holds k+offset rows.
  std::optional<double> cutoff() const;

 private:
  explicit HeapTopK(const TopKOptions& options);

  Status ConsumeImpl(Row row);
  Result<std::vector<Row>> FinishImpl();

  TopKOptions options_;
  RowComparator comparator_;
  /// Query-order max-heap: top is the worst retained row.
  std::priority_queue<Row, std::vector<Row>, RowComparator> heap_;
  /// WITH TIES: rows whose key equals the heap top's key but which did not
  /// displace anything. Unbounded — the Sec 2.3 robustness hazard; growth
  /// is charged against the memory budget like heap rows.
  std::vector<Row> ties_;
  size_t heap_bytes_ = 0;
  /// Arbiter lease covering heap_bytes_ (detached when the effective
  /// arbiter is the unlimited global one — it still accounts).
  MemoryLease lease_;
  bool finished_ = false;
};

}  // namespace topk

#endif  // TOPK_TOPK_HEAP_TOPK_H_
