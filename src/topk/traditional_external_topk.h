#ifndef TOPK_TOPK_TRADITIONAL_EXTERNAL_TOPK_H_
#define TOPK_TOPK_TRADITIONAL_EXTERNAL_TOPK_H_

#include <memory>
#include <vector>

#include "io/spill_manager.h"
#include "sort/run_generation.h"
#include "topk/topk_operator.h"

namespace topk {

/// The traditional fallback algorithm (Sec 2.4), as found in e.g.
/// PostgreSQL: once the input exceeds memory, externally sort *all* of it —
/// quicksort memory loads into full-size runs with no input filtering and
/// no run-size limit — then merge and stop after k rows. Its cost is
/// proportional to the input, which is precisely the performance cliff the
/// paper sets out to remove.
///
/// If the whole input happens to fit in memory, it is sorted in place and
/// nothing spills.
class TraditionalExternalTopK : public TopKOperator {
 public:
  static Result<std::unique_ptr<TraditionalExternalTopK>> Make(
      const TopKOptions& options);

  /// Reconstructs the merge phase of a suspended or crashed execution from
  /// the manifest in `options.manifest_filename`. Runs failing verification
  /// are quarantined and reported via `report`. The resumed operator
  /// accepts no further input; Finish() merges the surviving runs.
  static Result<std::unique_ptr<TraditionalExternalTopK>> ResumeFromManifest(
      const TopKOptions& options, RestoreReport* report = nullptr);

  Status Consume(Row row) override;
  Result<std::vector<Row>> Finish() override;

  /// Spills all buffered state, flushes the manifest, and leaves the spill
  /// directory on disk for a later ResumeFromManifest. Requires
  /// options.manifest_filename. The operator is finished afterwards.
  Status Suspend() override;

  std::string name() const override { return "traditional-external"; }

 private:
  explicit TraditionalExternalTopK(const TopKOptions& options);

  Status SwitchToExternal();

  Status ConsumeImpl(Row row);
  Result<std::vector<Row>> FinishImpl();
  Status SuspendImpl();

  /// Entry-point poll of options_.cancel; a tripped token is routed
  /// through OnCancelStatus.
  Status CheckCancel();
  /// Passes `cause` through, but when it is the cancellation token
  /// tripping and on_cancel is kKeepForResume, first performs Suspend's
  /// durable handoff so the spilled runs survive for ResumeFromManifest.
  Status OnCancelStatus(Status cause);

  TopKOptions options_;
  RowComparator comparator_;

  /// In-memory phase.
  std::vector<Row> buffer_;
  size_t buffered_bytes_ = 0;
  /// Arbiter lease covering buffered_bytes_.
  MemoryLease lease_;

  /// External phase (created on first overflow).
  std::unique_ptr<SpillManager> spill_;
  std::unique_ptr<RunGenerator> generator_;

  bool finished_ = false;
  /// Built by ResumeFromManifest: runs come from a restored spill manager,
  /// there is no run generator, and Consume is rejected.
  bool resumed_ = false;
  /// First non-cancellation error any entry point surfaced; Suspend
  /// returns it instead of a generic precondition failure.
  Status first_error_;
  /// The keep-for-resume cancel handoff ran (it must run at most once).
  bool cancel_unwound_ = false;
};

}  // namespace topk

#endif  // TOPK_TOPK_TRADITIONAL_EXTERNAL_TOPK_H_
