#include "topk/topk_operator.h"

namespace topk {

Status ValidateTopKOptions(const TopKOptions& options,
                           bool requires_storage) {
  if (options.k == 0) {
    return Status::InvalidArgument("k must be positive");
  }
  if (options.memory_limit_bytes == 0 && !options.allow_unbounded_memory) {
    return Status::InvalidArgument("memory limit must be positive");
  }
  if (requires_storage) {
    if (options.env == nullptr) {
      return Status::InvalidArgument(
          "external top-k operators need a StorageEnv");
    }
    if (options.spill_dir.empty()) {
      return Status::InvalidArgument(
          "external top-k operators need a spill directory");
    }
    if (options.merge_fan_in < 2) {
      return Status::InvalidArgument("merge fan-in must be at least 2");
    }
  }
  return Status::OK();
}

}  // namespace topk
