#include "topk/traditional_external_topk.h"

#include <algorithm>

#include "obs/obs_context.h"
#include "obs/trace.h"
#include "sort/merge_planner.h"
#include "sort/merger.h"
#include "sort/replacement_selection.h"

namespace topk {

TraditionalExternalTopK::TraditionalExternalTopK(const TopKOptions& options)
    : options_(options), comparator_(options.direction) {}

Result<std::unique_ptr<TraditionalExternalTopK>> TraditionalExternalTopK::Make(
    const TopKOptions& options) {
  TOPK_RETURN_NOT_OK(ValidateTopKOptions(options, /*requires_storage=*/true));
  return std::unique_ptr<TraditionalExternalTopK>(
      new TraditionalExternalTopK(options));
}

Status TraditionalExternalTopK::SwitchToExternal() {
  PhaseScope phase("switch_to_external");
  TOPK_ASSIGN_OR_RETURN(spill_,
                        SpillManager::Create(options_.env, options_.spill_dir,
                                             options_.io_pipeline()));
  if (!options_.manifest_filename.empty()) {
    spill_->SetAutoManifest(options_.manifest_filename);
    TOPK_RETURN_NOT_OK(spill_->CheckpointManifest());
  }
  RunGeneratorOptions gen_options;
  gen_options.memory_limit_bytes = options_.memory_limit_bytes;
  gen_options.cancel = options_.cancel.get();
  gen_options.arbiter = options_.effective_arbiter();
  // Vanilla sort: no run-size limit, no filtering.
  if (options_.run_generation == RunGenerationKind::kReplacementSelection) {
    generator_ = std::make_unique<ReplacementSelectionRunGenerator>(
        spill_.get(), comparator_, gen_options);
  } else {
    generator_ = std::make_unique<QuicksortRunGenerator>(
        spill_.get(), comparator_, gen_options);
  }
  for (Row& row : buffer_) {
    TOPK_RETURN_NOT_OK(generator_->Add(std::move(row)));
  }
  buffer_.clear();
  buffer_.shrink_to_fit();
  buffered_bytes_ = 0;
  lease_.ShrinkTo(0);
  return Status::OK();
}

Status TraditionalExternalTopK::CheckCancel() {
  if (options_.cancel == nullptr || !options_.cancel->ShouldStop()) {
    return Status::OK();
  }
  return OnCancelStatus(options_.cancel->status());
}

Status TraditionalExternalTopK::OnCancelStatus(Status cause) {
  if (!IsCancellation(cause.code())) return cause;
  if (options_.on_cancel != OnCancelPolicy::kKeepForResume ||
      cancel_unwound_ || spill_ == nullptr ||
      options_.manifest_filename.empty()) {
    return cause;
  }
  // Preempted-but-resumable: perform Suspend's durable handoff before
  // surfacing the cancellation (see HistogramTopK::OnCancelStatus).
  cancel_unwound_ = true;
  finished_ = true;
  TraceSpan span("topk.cancel_keep_for_resume", "topk");
  CancelShield shield(options_.cancel.get());
  if (generator_ != nullptr) {
    generator_->SetCancel(nullptr);
    TOPK_RETURN_NOT_OK(generator_->Flush());
  }
  TOPK_RETURN_NOT_OK(spill_->CheckpointManifest());
  TOPK_RETURN_NOT_OK(spill_->FlushManifest());
  spill_->DisownDir();
  return cause;
}

Status TraditionalExternalTopK::Consume(Row row) {
  ObsScope obs_scope(options_.obs);
  if (finished_) {
    return Status::FailedPrecondition("Consume after Finish");
  }
  if (resumed_) {
    return Status::FailedPrecondition(
        "a resumed operator accepts no input; its runs are already on disk");
  }
  Status status = RunWithAllocGuard(
      "traditional.Consume", [&] { return ConsumeImpl(std::move(row)); });
  if (!status.ok() && !IsCancellation(status.code()) && first_error_.ok()) {
    first_error_ = status;
  }
  return status;
}

Status TraditionalExternalTopK::ConsumeImpl(Row row) {
  TOPK_RETURN_NOT_OK(CheckCancel());
  Stopwatch watch;
  ++stats_.rows_consumed;
  if (generator_ == nullptr) {
    MemoryArbiter* arbiter = options_.effective_arbiter();
    if (arbiter != nullptr && !lease_.attached()) {
      TOPK_ASSIGN_OR_RETURN(lease_, arbiter->Acquire("traditional-topk", 0));
    }
    const size_t cost = row.MemoryFootprint() + kPerRowOverheadBytes;
    if (buffered_bytes_ + cost <= options_.memory_limit_bytes) {
      buffered_bytes_ += cost;
      TOPK_RETURN_NOT_OK(lease_.EnsureAtLeast(buffered_bytes_));
      stats_.peak_memory_bytes =
          std::max(stats_.peak_memory_bytes, buffered_bytes_);
      buffer_.push_back(std::move(row));
      stats_.consume_nanos += watch.ElapsedNanos();
      return Status::OK();
    }
    TOPK_RETURN_NOT_OK(SwitchToExternal());
  }
  Status status = generator_->Add(std::move(row));
  if (!status.ok()) return OnCancelStatus(std::move(status));
  stats_.consume_nanos += watch.ElapsedNanos();
  return Status::OK();
}

Result<std::vector<Row>> TraditionalExternalTopK::Finish() {
  ObsScope obs_scope(options_.obs);
  if (finished_) {
    return Status::FailedPrecondition("Finish called twice");
  }
  finished_ = true;
  Result<std::vector<Row>> result =
      RunWithAllocGuard("traditional.Finish", [&] { return FinishImpl(); });
  if (!result.ok() && !IsCancellation(result.status().code()) &&
      first_error_.ok()) {
    first_error_ = result.status();
  }
  return result;
}

Result<std::vector<Row>> TraditionalExternalTopK::FinishImpl() {
  TOPK_RETURN_NOT_OK(CheckCancel());
  Stopwatch watch;
  std::vector<Row> result;

  if (generator_ == nullptr && !resumed_) {
    // The input fit in memory: sort and slice.
    std::sort(buffer_.begin(), buffer_.end(), comparator_);
    const size_t begin = std::min<size_t>(options_.offset, buffer_.size());
    size_t end = std::min<size_t>(begin + options_.k, buffer_.size());
    if (options_.with_ties && end > begin && end < buffer_.size()) {
      const double boundary = buffer_[end - 1].key;
      while (end < buffer_.size() && buffer_[end].key == boundary) ++end;
    }
    result.assign(std::make_move_iterator(buffer_.begin() + begin),
                  std::make_move_iterator(buffer_.begin() + end));
    buffer_.clear();
    lease_.Release();
    stats_.finish_nanos = watch.ElapsedNanos();
    return result;
  }

  if (resumed_) {
    stats_.rows_spilled = spill_->total_rows_spilled();
    stats_.runs_created = spill_->total_runs_created();
  } else {
    {
      PhaseScope flush_phase("rungen.flush");
      TraceSpan flush_span("rungen.flush", "topk");
      Status flushed = generator_->Flush();
      if (!flushed.ok()) return OnCancelStatus(std::move(flushed));
    }
    stats_.rows_spilled = generator_->stats().rows_spilled;
    stats_.runs_created = spill_->total_runs_created();
    stats_.peak_memory_bytes = std::max(
        stats_.peak_memory_bytes, generator_->stats().peak_memory_bytes);
    if (spill_->auto_manifest_enabled()) {
      // Make the complete run set durable so the crash point below (and
      // any real crash before the merge) finds a resumable state.
      TOPK_RETURN_NOT_OK(spill_->FlushManifest());
      HitCrashPoint("post-run-flush");
    }
  }

  MergePlanStats plan_stats;
  MergeStats merge_stats;
  const auto merge_phase = [&]() -> Status {
    MergePlannerOptions planner_options;
    planner_options.fan_in = options_.merge_fan_in;
    planner_options.policy = MergePolicy::kSmallestRunsFirst;
    planner_options.use_ovc = options_.use_ovc;
    planner_options.cancel = options_.cancel.get();
    std::vector<RunMeta> final_runs;
    TOPK_ASSIGN_OR_RETURN(
        final_runs, ReduceRunsForFinalMerge(spill_.get(), comparator_,
                                            planner_options, &plan_stats));
    stats_.merge_rows_written = plan_stats.intermediate_rows_written;

    MergeOptions merge_options;
    merge_options.limit = options_.k;
    merge_options.skip = options_.offset;
    merge_options.with_ties = options_.with_ties;
    merge_options.use_ovc = options_.use_ovc;
    merge_options.cancel = options_.cancel.get();
    PhaseScope merge_phase_scope("merge.final");
    TraceSpan merge_span("merge.final", "topk",
                         {TraceArg("runs", final_runs.size())});
    TOPK_ASSIGN_OR_RETURN(merge_stats,
                          MergeRuns(spill_.get(), final_runs, comparator_,
                                    merge_options, [&](Row&& row) {
                                      result.push_back(std::move(row));
                                      return Status::OK();
                                    }));
    return Status::OK();
  };
  Status merged = merge_phase();
  if (!merged.ok()) {
    if (spill_->auto_manifest_enabled()) {
      // The manifest still describes a consistent run set on disk; keep the
      // directory so ResumeFromManifest can pick the query up.
      (void)spill_->FlushManifest();
      spill_->DisownDir();
    }
    return merged;
  }
  stats_.merge_rows_read =
      plan_stats.intermediate_rows_read + merge_stats.rows_read;
  stats_.bytes_spilled = spill_->total_bytes_spilled();
  stats_.finish_nanos = watch.ElapsedNanos();
  if (options_.obs != nullptr) {
    options_.obs->NoteMemoryBytes(stats_.peak_memory_bytes);
  }
  return result;
}

Status TraditionalExternalTopK::Suspend() {
  return RunWithAllocGuard("traditional.Suspend",
                           [&] { return SuspendImpl(); });
}

Status TraditionalExternalTopK::SuspendImpl() {
  ObsScope obs_scope(options_.obs);
  if (!first_error_.ok()) {
    // A prior entry point already failed; the real cause of the
    // operator's demise beats a generic precondition complaint.
    return first_error_;
  }
  if (finished_) {
    return Status::FailedPrecondition("Suspend after Finish");
  }
  if (resumed_) {
    return Status::FailedPrecondition("Suspend of a resumed operator");
  }
  if (options_.manifest_filename.empty()) {
    return Status::FailedPrecondition(
        "Suspend requires TopKOptions::manifest_filename");
  }
  finished_ = true;
  TraceSpan span("topk.suspend", "topk");
  // An explicit Suspend overrides a tripped cancellation token (see
  // HistogramTopK::Suspend).
  CancelShield shield(options_.cancel.get());
  if (generator_ == nullptr) {
    TOPK_RETURN_NOT_OK(SwitchToExternal());
  }
  generator_->SetCancel(nullptr);
  TOPK_RETURN_NOT_OK(generator_->Flush());
  TOPK_RETURN_NOT_OK(spill_->CheckpointManifest());
  TOPK_RETURN_NOT_OK(spill_->FlushManifest());
  stats_.rows_spilled = generator_->stats().rows_spilled;
  stats_.runs_created = spill_->total_runs_created();
  stats_.bytes_spilled = spill_->total_bytes_spilled();
  HitCrashPoint("post-manifest-checkpoint");
  spill_->DisownDir();
  return Status::OK();
}

Result<std::unique_ptr<TraditionalExternalTopK>>
TraditionalExternalTopK::ResumeFromManifest(const TopKOptions& options,
                                            RestoreReport* report) {
  TOPK_RETURN_NOT_OK(ValidateTopKOptions(options, /*requires_storage=*/true));
  if (options.manifest_filename.empty()) {
    return Status::InvalidArgument(
        "ResumeFromManifest requires TopKOptions::manifest_filename");
  }
  auto op = std::unique_ptr<TraditionalExternalTopK>(
      new TraditionalExternalTopK(options));
  op->resumed_ = true;
  ObsScope obs_scope(options.obs);
  TraceSpan span("topk.resume_from_manifest", "topk");
  TOPK_ASSIGN_OR_RETURN(
      op->spill_,
      SpillManager::OpenExisting(options.env, options.spill_dir,
                                 options.manifest_filename, op->comparator_,
                                 options.io_pipeline(), report));
  op->spill_->SetAutoManifest(options.manifest_filename);
  return op;
}

}  // namespace topk
