#include "topk/stats_reporter.h"

#include <cstdio>

namespace topk {

std::string FormatCount(uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const size_t first_group = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - first_group) % 3 == 0 && i >= first_group) {
      out += ',';
    }
    out += digits[i];
  }
  return out;
}

namespace {

void AppendLine(std::string* out, const char* label,
                const std::string& value) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "  %-28s %s\n", label, value.c_str());
  *out += buf;
}

std::string Percent(uint64_t part, uint64_t whole) {
  if (whole == 0) return "";
  char buf[32];
  std::snprintf(buf, sizeof(buf), " (%.1f%%)",
                100.0 * static_cast<double>(part) /
                    static_cast<double>(whole));
  return buf;
}

}  // namespace

std::string FormatOperatorStats(const OperatorStats& stats) {
  std::string out;
  AppendLine(&out, "rows consumed", FormatCount(stats.rows_consumed));
  AppendLine(&out, "eliminated at input",
             FormatCount(stats.rows_eliminated_input) +
                 Percent(stats.rows_eliminated_input, stats.rows_consumed));
  AppendLine(&out, "eliminated at spill",
             FormatCount(stats.rows_eliminated_spill));
  AppendLine(&out, "rows spilled to runs",
             FormatCount(stats.rows_spilled) +
                 Percent(stats.rows_spilled, stats.rows_consumed));
  AppendLine(&out, "runs created", FormatCount(stats.runs_created));
  AppendLine(&out, "intermediate merge writes",
             FormatCount(stats.merge_rows_written));
  AppendLine(&out, "merge rows read", FormatCount(stats.merge_rows_read));
  if (stats.offset_rows_seek_skipped > 0) {
    AppendLine(&out, "offset rows seek-skipped",
               FormatCount(stats.offset_rows_seek_skipped));
  }
  AppendLine(&out, "run bytes written", FormatCount(stats.bytes_spilled));
  AppendLine(&out, "peak memory bytes", FormatCount(stats.peak_memory_bytes));
  if (stats.final_cutoff.has_value()) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.9g", *stats.final_cutoff);
    AppendLine(&out, "final cutoff key", buf);
  } else {
    AppendLine(&out, "final cutoff key", "(none)");
  }
  if (stats.filter_buckets_inserted > 0) {
    AppendLine(&out, "histogram buckets inserted",
               FormatCount(stats.filter_buckets_inserted));
    AppendLine(&out, "filter consolidations",
               FormatCount(stats.filter_consolidations));
  }
  char timing[96];
  std::snprintf(timing, sizeof(timing), "%.3fs consume + %.3fs finish",
                stats.consume_nanos * 1e-9, stats.finish_nanos * 1e-9);
  AppendLine(&out, "wall time", timing);
  return out;
}

}  // namespace topk
