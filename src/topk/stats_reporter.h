#ifndef TOPK_TOPK_STATS_REPORTER_H_
#define TOPK_TOPK_STATS_REPORTER_H_

#include <string>

#include "topk/topk_operator.h"

namespace topk {

/// Multi-line human-readable report of an operator execution, used by the
/// CLI driver and handy in tests/examples:
///
///   rows consumed            2,000,000
///   eliminated at input        1,709,409 (85.5%)
///   ...
std::string FormatOperatorStats(const OperatorStats& stats);

/// Formats `n` with thousands separators ("1,234,567").
std::string FormatCount(uint64_t n);

}  // namespace topk

#endif  // TOPK_TOPK_STATS_REPORTER_H_
