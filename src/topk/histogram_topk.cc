#include "topk/histogram_topk.h"

#include <algorithm>

#include "common/memory_accounting.h"
#include "extensions/offset_skip.h"
#include "obs/metrics.h"
#include "obs/obs_context.h"
#include "obs/trace.h"
#include "row/serialization.h"
#include "sort/merge_planner.h"
#include "sort/merger.h"
#include "sort/replacement_selection.h"

namespace topk {

namespace {
ObsCounter& CutoffUpdatesCounter() {
  static ObsCounter counter("filter.cutoff_updates");
  return counter;
}
ObsCounter& QuotaConsolidationsCounter() {
  static ObsCounter counter("spill.quota_consolidations");
  return counter;
}
}  // namespace

/// Bridges the run generator's spill events into the cutoff filter
/// (Algorithm 1 lines 11-13).
class HistogramTopK::FilterObserver : public SpillObserver {
 public:
  explicit FilterObserver(CutoffFilter* filter) : filter_(filter) {}

  bool EliminateAtSpill(const Row& row) override {
    return filter_->Eliminate(row);
  }

  void OnRowSpilled(const Row& row) override {
    filter_->RowSpilled(row.key);
  }

  std::vector<HistogramBucket> OnRunFinished() override {
    return filter_->RunFinished();
  }

 private:
  CutoffFilter* filter_;
};

HistogramTopK::HistogramTopK(const TopKOptions& options)
    : options_(options),
      comparator_(options.direction),
      heap_(comparator_) {}

HistogramTopK::~HistogramTopK() = default;

Result<std::unique_ptr<HistogramTopK>> HistogramTopK::Make(
    const TopKOptions& options) {
  TOPK_RETURN_NOT_OK(ValidateTopKOptions(options, /*requires_storage=*/true));
  return std::unique_ptr<HistogramTopK>(new HistogramTopK(options));
}

std::optional<double> HistogramTopK::cutoff() const {
  if (filter_ != nullptr) {
    return filter_->cutoff();
  }
  if (heap_saturated_ && !heap_.empty()) return heap_.top().key;
  return std::nullopt;
}

CutoffFilter::Options HistogramTopK::MakeFilterOptions(
    uint64_t expected_run_rows) {
  CutoffFilter::Options filter_options;
  filter_options.k = options_.approx_filter_k > 0 ? options_.approx_filter_k
                                                  : options_.output_rows();
  filter_options.direction = options_.direction;
  filter_options.target_buckets_per_run = options_.histogram_buckets_per_run;
  filter_options.memory_limit_bytes = options_.histogram_memory_limit_bytes;
  filter_options.consolidation = options_.histogram_consolidation;
  // Cutoff-evolution timeline: one instant event per establishment /
  // tightening, annotated with operator progress. The callback runs on the
  // single consumer thread, so reading stats_ here is safe.
  filter_options.on_cutoff_change =
      [this](const CutoffFilter::CutoffUpdate& update) {
        CutoffUpdatesCounter().Add(1);
        if (options_.obs != nullptr) {
          // The profile report's cutoff-evolution timeline, captured even
          // when tracing is off (it is cheap: one capped vector append).
          ObsContext::CutoffEvent event;
          event.at_nanos = options_.obs->ElapsedNanos();
          event.cutoff = update.cutoff;
          event.tightened = update.tightened;
          event.rows_consumed = stats_.rows_consumed;
          event.rows_eliminated_input = stats_.rows_eliminated_input;
          options_.obs->RecordCutoffEvent(event);
        }
        if (!TracingEnabled()) return;
        const uint64_t consumed = stats_.rows_consumed;
        const uint64_t eliminated = stats_.rows_eliminated_input;
        const double pass_rate =
            consumed == 0
                ? 1.0
                : 1.0 - static_cast<double>(eliminated) /
                            static_cast<double>(consumed);
        TraceInstant(update.tightened ? "cutoff.tighten" : "cutoff.establish",
                     "filter",
                     {TraceArg("cutoff", update.cutoff),
                      TraceArg("proposed", update.proposed ? 1 : 0),
                      TraceArg("bucket_count", update.bucket_count),
                      TraceArg("tracked_rows", update.tracked_rows),
                      TraceArg("rows_consumed", consumed),
                      TraceArg("rows_eliminated_input", eliminated),
                      TraceArg("input_pass_rate", pass_rate)});
      };
  filter_options.target_run_rows = expected_run_rows;
  return filter_options;
}

Status HistogramTopK::SwitchToExternal() {
  PhaseScope phase("switch_to_external");
  TraceSpan span("topk.switch_to_external", "topk",
                 {TraceArg("buffered_rows", heap_.size() + ties_.size())});
  // The cutoff filter's bucket queue is a sizable consumer in its own
  // right: lease its configured budget up front, so the arbiter sees the
  // external switch's full footprint before the first run is written.
  MemoryArbiter* arbiter = options_.effective_arbiter();
  if (arbiter != nullptr && !filter_lease_.attached()) {
    TOPK_ASSIGN_OR_RETURN(filter_lease_,
                          arbiter->Acquire("cutoff-filter", 0));
    TOPK_RETURN_NOT_OK(
        filter_lease_.EnsureAtLeast(options_.histogram_memory_limit_bytes));
  }
  TOPK_ASSIGN_OR_RETURN(spill_,
                        SpillManager::Create(options_.env, options_.spill_dir,
                                             options_.io_pipeline()));
  if (!options_.manifest_filename.empty()) {
    // Keep a manifest checkpointed from the very first run so a crash at
    // any later point finds a resumable state on disk.
    spill_->SetAutoManifest(options_.manifest_filename);
    TOPK_RETURN_NOT_OK(spill_->CheckpointManifest());
  }

  // Bucket width is derived from the expected run length: replacement
  // selection produces runs near twice the rows that fit in memory,
  // truncated by the run-size limit ("A best effort is made to decide the
  // target number of histogram buckets collected from each run",
  // Sec 5.1.2). The heap size at the moment memory overflowed is our
  // estimate of rows-per-memory-load.
  uint64_t expected_run_rows = 2 * std::max<uint64_t>(heap_.size(), 1);
  if (options_.limit_run_size_to_output) {
    expected_run_rows = std::min(expected_run_rows, options_.output_rows());
  }
  filter_ = std::make_unique<CutoffFilter>(MakeFilterOptions(expected_run_rows));
  observer_ = std::make_unique<FilterObserver>(filter_.get());

  RunGeneratorOptions gen_options;
  gen_options.memory_limit_bytes = options_.memory_limit_bytes;
  if (options_.limit_run_size_to_output) {
    gen_options.run_row_limit = options_.output_rows();
  }
  gen_options.observer = observer_.get();
  gen_options.cancel = options_.cancel.get();
  gen_options.arbiter = arbiter;
  // Index granularity that yields ~64 seek points per run even when runs
  // are small (offset skips need entries inside every run).
  gen_options.run_index_stride = std::max<uint64_t>(16, expected_run_rows / 64);
  if (options_.run_generation == RunGenerationKind::kReplacementSelection) {
    generator_ = std::make_unique<ReplacementSelectionRunGenerator>(
        spill_.get(), comparator_, gen_options);
  } else {
    generator_ = std::make_unique<QuicksortRunGenerator>(
        spill_.get(), comparator_, gen_options);
  }

  // Hand the buffered rows to run generation; heap order is irrelevant,
  // replacement selection re-sorts.
  while (!heap_.empty()) {
    // std::priority_queue exposes only const top(); moving would break its
    // invariant anyway since we pop immediately after copying.
    TOPK_RETURN_NOT_OK(generator_->Add(heap_.top()));
    heap_.pop();
  }
  for (Row& tie : ties_) {
    TOPK_RETURN_NOT_OK(generator_->Add(std::move(tie)));
  }
  ties_.clear();
  ties_.shrink_to_fit();
  heap_bytes_ = 0;
  lease_.ShrinkTo(0);
  return Status::OK();
}

Status HistogramTopK::MaybeConsolidateForQuota() {
  SpillQuota* quota = spill_->spill_quota();
  bool quota_pressed = false;
  if (quota->enabled()) {
    const double charged = static_cast<double>(quota->charged_bytes());
    quota_pressed = charged >= 0.85 * static_cast<double>(quota->quota_bytes());
  }
  // Memory-arbiter soft pressure reuses the same response as a near-full
  // spill quota: consolidating the lowest-key runs shrinks the registry
  // (fewer open readers and histogram buckets later) while the cutoff
  // filter drops rows for free. The runs-created guard below keeps a
  // persistent soft level from consolidating more than once per new run.
  MemoryArbiter* arbiter = options_.effective_arbiter();
  const bool mem_pressed =
      arbiter != nullptr && arbiter->pressure() >= MemoryPressure::kSoft;
  if (!quota_pressed && !mem_pressed) return Status::OK();
  if (spill_->run_count() < 2) return Status::OK();
  if (spill_->total_runs_created() == runs_created_at_last_quota_merge_) {
    return Status::OK();
  }
  return ConsolidateSpillForQuota();
}

Status HistogramTopK::ConsolidateSpillForQuota() {
  std::vector<RunMeta> inputs = spill_->runs();
  // Lowest keys first, the same policy intermediate merges use: those runs
  // are where the cutoff filter discards the most rows, so merging them
  // frees the most disk per merge.
  OrderRunsForMerge(&inputs, comparator_, MergePolicy::kLowestKeysFirst);
  if (inputs.size() > options_.merge_fan_in) {
    inputs.resize(options_.merge_fan_in);
  }
  uint64_t input_bytes = 0;
  for (const RunMeta& run : inputs) input_bytes += run.bytes;
  PhaseScope phase("spill.quota_consolidate");
  TraceSpan span("spill.quota_consolidate", "topk",
                 {TraceArg("runs", inputs.size()),
                  TraceArg("input_bytes", input_bytes),
                  TraceArg("charged_bytes", spill_->spill_quota()->charged_bytes())});
  QuotaConsolidationsCounter().Add(1);

  std::unique_ptr<RunWriter> writer;
  TOPK_ASSIGN_OR_RETURN(writer,
                        spill_->NewRun(comparator_, kDefaultIndexStride,
                                       /*quota_exempt=*/true));
  MergeOptions merge_options;
  merge_options.limit = options_.output_rows();
  merge_options.with_ties = options_.with_ties;
  merge_options.stop_filter = filter_.get();
  merge_options.refine_filter = filter_.get();
  merge_options.use_ovc = options_.use_ovc;
  merge_options.cancel = options_.cancel.get();
  MergeStats merge_stats;
  TOPK_ASSIGN_OR_RETURN(
      merge_stats, MergeRuns(spill_.get(), inputs, comparator_, merge_options,
                             [&](Row&& row) { return writer->Append(row); }));
  RunMeta merged;
  TOPK_ASSIGN_OR_RETURN(merged, writer->Finish());
  // Same crash-safe ordering as the merge planner: keep the input files
  // until the output's registration is checkpointed in the manifest.
  std::vector<std::string> consumed_paths;
  consumed_paths.reserve(inputs.size());
  for (const RunMeta& consumed : inputs) {
    std::string path;
    TOPK_ASSIGN_OR_RETURN(path, spill_->ReleaseRun(consumed.id));
    consumed_paths.push_back(std::move(path));
  }
  if (merged.rows > 0) {
    TOPK_RETURN_NOT_OK(spill_->AddRun(merged));
  } else {
    TOPK_RETURN_NOT_OK(spill_->CheckpointManifest());
    consumed_paths.push_back(merged.path);
  }
  if (spill_->auto_manifest_enabled()) {
    TOPK_RETURN_NOT_OK(spill_->FlushManifest());
  }
  for (const std::string& path : consumed_paths) {
    TOPK_RETURN_NOT_OK(spill_->DeleteSpillFile(path));
  }
  stats_.merge_rows_written += merge_stats.rows_emitted;
  stats_.merge_rows_read += merge_stats.rows_read;
  runs_created_at_last_quota_merge_ = spill_->total_runs_created();
  return Status::OK();
}

Status HistogramTopK::CheckCancel() {
  if (options_.cancel == nullptr || !options_.cancel->ShouldStop()) {
    return Status::OK();
  }
  return OnCancelStatus(options_.cancel->status());
}

Status HistogramTopK::OnCancelStatus(Status cause) {
  if (!IsCancellation(cause.code())) return cause;
  if (options_.on_cancel != OnCancelPolicy::kKeepForResume ||
      cancel_unwound_ || spill_ == nullptr ||
      options_.manifest_filename.empty()) {
    return cause;
  }
  // Preempted-but-resumable: perform Suspend's durable handoff before
  // surfacing the cancellation, so the runs this query already paid for
  // survive for ResumeFromManifest instead of being released.
  cancel_unwound_ = true;
  finished_ = true;
  TraceSpan span("topk.cancel_keep_for_resume", "topk");
  // The token has tripped; shield it (and detach it from the generator's
  // spill loops) so the handoff's own flush and manifest I/O complete
  // instead of re-observing the cancellation at every layer.
  CancelShield shield(options_.cancel.get());
  if (generator_ != nullptr) {
    generator_->SetCancel(nullptr);
    TOPK_RETURN_NOT_OK(generator_->Flush());
  }
  TOPK_RETURN_NOT_OK(spill_->CheckpointManifest());
  TOPK_RETURN_NOT_OK(spill_->FlushManifest());
  spill_->DisownDir();
  return cause;
}

Status HistogramTopK::Consume(Row row) {
  // No-op when the caller (CLI, test harness) already installed the same
  // context around its consume loop — the per-row cost is then one TLS
  // read and a pointer compare.
  ObsScope obs_scope(options_.obs);
  if (finished_) {
    return Status::FailedPrecondition("Consume after Finish");
  }
  if (resumed_) {
    return Status::FailedPrecondition(
        "a resumed operator accepts no input; its runs are already on disk");
  }
  Status status = RunWithAllocGuard(
      "histogram.Consume", [&] { return ConsumeImpl(std::move(row)); });
  if (!status.ok() && !IsCancellation(status.code()) && first_error_.ok()) {
    first_error_ = status;
  }
  return status;
}

Status HistogramTopK::ConsumeImpl(Row row) {
  TOPK_RETURN_NOT_OK(CheckCancel());
  Stopwatch watch;
  TOPK_RETURN_NOT_OK(ValidateRowPayload(row));
  ++stats_.rows_consumed;

  if (generator_ != nullptr) {
    // External mode: Algorithm 1 line 4.
    if (filter_->Eliminate(row)) {
      ++stats_.rows_eliminated_input;
    } else {
      // Reclaim disk headroom *before* handing over the row: Add takes it
      // by value, so a quota breach inside run generation would lose it.
      Status pushed = MaybeConsolidateForQuota();
      if (pushed.ok()) pushed = generator_->Add(std::move(row));
      if (!pushed.ok()) return OnCancelStatus(std::move(pushed));
    }
    stats_.consume_nanos += watch.ElapsedNanos();
    return Status::OK();
  }

  // In-memory mode: behave exactly like the priority-queue algorithm.
  MemoryArbiter* arbiter = options_.effective_arbiter();
  if (arbiter != nullptr && !lease_.attached()) {
    TOPK_ASSIGN_OR_RETURN(lease_, arbiter->Acquire("histogram-topk", 0));
  }
  if (heap_saturated_) {
    if (options_.with_ties && row.key == heap_.top().key) {
      // Boundary-key duplicate: must be retained (Sec 2.3's hazard). When
      // the duplicates overflow memory we — unlike the bare in-memory
      // algorithm — simply switch to the external algorithm below.
      const size_t cost = row.MemoryFootprint() + kPerRowOverheadBytes;
      if (heap_bytes_ + cost <= options_.memory_limit_bytes) {
        heap_bytes_ += cost;
        TOPK_RETURN_NOT_OK(lease_.EnsureAtLeast(heap_bytes_));
        ties_.push_back(std::move(row));
        stats_.peak_memory_bytes =
            std::max(stats_.peak_memory_bytes, heap_bytes_);
        stats_.consume_nanos += watch.ElapsedNanos();
        return Status::OK();
      }
      // Fall through: spill.
    } else if (!comparator_.Less(row, heap_.top())) {
      ++stats_.rows_eliminated_input;
      stats_.consume_nanos += watch.ElapsedNanos();
      return Status::OK();
    } else {
      const size_t new_cost = row.MemoryFootprint() + kPerRowOverheadBytes;
      const size_t old_cost =
          heap_.top().MemoryFootprint() + kPerRowOverheadBytes;
      if (heap_bytes_ - old_cost + new_cost <=
          options_.memory_limit_bytes) {
        Row evicted = heap_.top();
        heap_.pop();
        heap_bytes_ = heap_bytes_ - old_cost + new_cost;
        heap_.push(std::move(row));
        if (options_.with_ties && evicted.key == heap_.top().key) {
          // Boundary unchanged: the evicted row is now a retained tie.
          // This can transiently overshoot the budget by at most the
          // boundary key's duplicate count already in the heap; the next
          // duplicate arrival takes the checked path and switches to
          // external mode.
          heap_bytes_ += old_cost;
          ties_.push_back(std::move(evicted));
        } else if (options_.with_ties && !ties_.empty()) {
          // Boundary sharpened: old boundary ties fell out of the output.
          for (const Row& tie : ties_) {
            heap_bytes_ -= tie.MemoryFootprint() + kPerRowOverheadBytes;
          }
          stats_.rows_eliminated_input += ties_.size();
          ties_.clear();
        }
        TOPK_RETURN_NOT_OK(lease_.EnsureAtLeast(heap_bytes_));
        stats_.peak_memory_bytes =
            std::max(stats_.peak_memory_bytes, heap_bytes_);
        stats_.consume_nanos += watch.ElapsedNanos();
        return Status::OK();
      }
      // Replacement row does not fit (variable-size rows): spill.
    }
  } else {
    const size_t cost = row.MemoryFootprint() + kPerRowOverheadBytes;
    if (heap_bytes_ + cost <= options_.memory_limit_bytes) {
      heap_bytes_ += cost;
      TOPK_RETURN_NOT_OK(lease_.EnsureAtLeast(heap_bytes_));
      heap_.push(std::move(row));
      heap_saturated_ = heap_.size() >= options_.output_rows();
      stats_.peak_memory_bytes =
          std::max(stats_.peak_memory_bytes, heap_bytes_);
      stats_.consume_nanos += watch.ElapsedNanos();
      return Status::OK();
    }
    // Memory overflowed before k+offset rows were buffered: the output
    // does not fit, switch to the external algorithm.
  }
  TOPK_RETURN_NOT_OK(SwitchToExternal());
  Status added = generator_->Add(std::move(row));
  if (!added.ok()) return OnCancelStatus(std::move(added));
  stats_.consume_nanos += watch.ElapsedNanos();
  return Status::OK();
}

Result<std::vector<Row>> HistogramTopK::Finish() {
  ObsScope obs_scope(options_.obs);
  if (finished_) {
    return Status::FailedPrecondition("Finish called twice");
  }
  finished_ = true;
  Result<std::vector<Row>> result =
      RunWithAllocGuard("histogram.Finish", [&] { return FinishImpl(); });
  if (!result.ok() && !IsCancellation(result.status().code()) &&
      first_error_.ok()) {
    first_error_ = result.status();
  }
  return result;
}

Result<std::vector<Row>> HistogramTopK::FinishImpl() {
  TOPK_RETURN_NOT_OK(CheckCancel());
  Stopwatch watch;
  std::vector<Row> result;

  if (generator_ == nullptr && !resumed_) {
    // Pure in-memory execution.
    stats_.final_cutoff = cutoff();
    std::vector<Row> rows;
    rows.reserve(heap_.size() + ties_.size());
    while (!heap_.empty()) {
      rows.push_back(heap_.top());
      heap_.pop();
    }
    std::reverse(rows.begin(), rows.end());
    if (!ties_.empty()) {
      rows.insert(rows.end(), std::make_move_iterator(ties_.begin()),
                  std::make_move_iterator(ties_.end()));
      ties_.clear();
      std::sort(rows.begin(), rows.end(), comparator_);
    }
    const size_t begin = std::min<size_t>(options_.offset, rows.size());
    size_t end = std::min<size_t>(begin + options_.k, rows.size());
    if (options_.with_ties && end > begin && end < rows.size()) {
      const double boundary = rows[end - 1].key;
      while (end < rows.size() && rows[end].key == boundary) ++end;
    }
    result.assign(std::make_move_iterator(rows.begin() + begin),
                  std::make_move_iterator(rows.begin() + end));
    stats_.finish_nanos = watch.ElapsedNanos();
    if (options_.obs != nullptr) {
      options_.obs->NoteMemoryBytes(stats_.peak_memory_bytes);
    }
    return result;
  }

  if (resumed_) {
    // Run generation happened in the pre-crash process; the restored
    // registry totals are all that remain of it.
    stats_.rows_spilled = spill_->total_rows_spilled();
    stats_.runs_created = spill_->total_runs_created();
  } else {
    {
      PhaseScope flush_phase("rungen.flush");
      TraceSpan flush_span("rungen.flush", "topk");
      Status flushed = generator_->Flush();
      if (!flushed.ok()) return OnCancelStatus(std::move(flushed));
    }
    stats_.rows_eliminated_spill =
        generator_->stats().rows_eliminated_at_spill;
    stats_.rows_spilled = generator_->stats().rows_spilled;
    stats_.runs_created = spill_->total_runs_created();
    stats_.peak_memory_bytes = std::max(
        stats_.peak_memory_bytes, generator_->stats().peak_memory_bytes);
    if (spill_->auto_manifest_enabled()) {
      // Every run is registered and checkpointed; make the manifest
      // durable so the crash point below (and any real crash between
      // run generation and the merge) finds a resumable state.
      TOPK_RETURN_NOT_OK(spill_->FlushManifest());
      HitCrashPoint("post-run-flush");
    }
  }

  MergePlanStats plan_stats;
  MergeStats merge_stats;
  const auto merge_phase = [&]() -> Status {
    MergePlannerOptions planner_options;
    planner_options.fan_in = options_.merge_fan_in;
    planner_options.policy = options_.merge_policy;
    planner_options.intermediate_limit = options_.output_rows();
    planner_options.with_ties = options_.with_ties;
    planner_options.filter = filter_.get();
    planner_options.use_ovc = options_.use_ovc;
    planner_options.cancel = options_.cancel.get();
    std::vector<RunMeta> final_runs;
    {
      TraceSpan plan_span("merge.reduce_runs", "topk",
                          {TraceArg("runs", spill_->run_count())});
      TOPK_ASSIGN_OR_RETURN(
          final_runs, ReduceRunsForFinalMerge(spill_.get(), comparator_,
                                              planner_options, &plan_stats));
    }
    stats_.merge_rows_written += plan_stats.intermediate_rows_written;

    MergeOptions merge_options;
    merge_options.limit = options_.k;
    merge_options.skip = options_.offset;
    merge_options.with_ties = options_.with_ties;
    merge_options.use_ovc = options_.use_ovc;
    merge_options.cancel = options_.cancel.get();
    const RowSink collect = [&](Row&& row) {
      result.push_back(std::move(row));
      return Status::OK();
    };
    PhaseScope merge_phase_scope("merge.final");
    TraceSpan merge_span("merge.final", "topk",
                         {TraceArg("runs", final_runs.size())});
    if (options_.offset > 0 && options_.histogram_offset_skip) {
      // Sec 4.1: start the merge at the highest key with rank below the
      // offset, seeking past each run's skippable prefix.
      OffsetSkipPlan plan;
      TOPK_ASSIGN_OR_RETURN(
          merge_stats, MergeRunsWithOffsetSkip(spill_.get(), final_runs,
                                               comparator_, merge_options,
                                               collect, &plan));
      stats_.offset_rows_seek_skipped = plan.rows_skipped;
    } else {
      TOPK_ASSIGN_OR_RETURN(merge_stats,
                            MergeRuns(spill_.get(), final_runs, comparator_,
                                      merge_options, collect));
    }
    return Status::OK();
  };
  Status merged = merge_phase();
  if (!merged.ok()) {
    if (spill_->auto_manifest_enabled()) {
      // The merge failed, but the manifest still describes a consistent run
      // set on disk (the planner deletes inputs only after checkpointing).
      // Keep the directory so ResumeFromManifest can pick the query up.
      // This also covers a cancellation that surfaced mid-merge, whatever
      // the on_cancel policy: the runs are already durable, releasing them
      // would only destroy a valid manifest's backing files.
      (void)spill_->FlushManifest();
      spill_->DisownDir();
    }
    return merged;
  }
  stats_.merge_rows_read +=
      plan_stats.intermediate_rows_read + merge_stats.rows_read;
  stats_.bytes_spilled = spill_->total_bytes_spilled();
  stats_.final_cutoff = filter_->cutoff();
  stats_.filter_buckets_inserted = filter_->buckets_inserted();
  stats_.filter_consolidations = filter_->consolidations();
  stats_.finish_nanos = watch.ElapsedNanos();
  if (options_.obs != nullptr) {
    options_.obs->NoteMemoryBytes(stats_.peak_memory_bytes);
  }
  return result;
}

Status HistogramTopK::Suspend() {
  return RunWithAllocGuard("histogram.Suspend", [&] { return SuspendImpl(); });
}

Status HistogramTopK::SuspendImpl() {
  ObsScope obs_scope(options_.obs);
  if (!first_error_.ok()) {
    // A prior entry point already failed; the real cause of the
    // operator's demise beats a generic precondition complaint.
    return first_error_;
  }
  if (finished_) {
    return Status::FailedPrecondition("Suspend after Finish");
  }
  if (resumed_) {
    return Status::FailedPrecondition("Suspend of a resumed operator");
  }
  if (options_.manifest_filename.empty()) {
    return Status::FailedPrecondition(
        "Suspend requires TopKOptions::manifest_filename");
  }
  finished_ = true;
  TraceSpan span("topk.suspend", "topk");
  // An explicit Suspend overrides a tripped cancellation token: it IS the
  // orderly way to stop this query, so the spill and manifest work below
  // must not be interrupted by the very cancellation that prompted it.
  CancelShield shield(options_.cancel.get());
  // Everything still buffered in memory must reach a run on disk — an
  // in-memory operator spills via the normal external switch.
  if (generator_ == nullptr) {
    TOPK_RETURN_NOT_OK(SwitchToExternal());
  }
  generator_->SetCancel(nullptr);
  TOPK_RETURN_NOT_OK(generator_->Flush());
  TOPK_RETURN_NOT_OK(spill_->CheckpointManifest());
  TOPK_RETURN_NOT_OK(spill_->FlushManifest());
  stats_.rows_eliminated_spill = generator_->stats().rows_eliminated_at_spill;
  stats_.rows_spilled = generator_->stats().rows_spilled;
  stats_.runs_created = spill_->total_runs_created();
  stats_.bytes_spilled = spill_->total_bytes_spilled();
  HitCrashPoint("post-manifest-checkpoint");
  spill_->DisownDir();
  return Status::OK();
}

Result<std::unique_ptr<HistogramTopK>> HistogramTopK::ResumeFromManifest(
    const TopKOptions& options, RestoreReport* report) {
  TOPK_RETURN_NOT_OK(ValidateTopKOptions(options, /*requires_storage=*/true));
  if (options.manifest_filename.empty()) {
    return Status::InvalidArgument(
        "ResumeFromManifest requires TopKOptions::manifest_filename");
  }
  auto op = std::unique_ptr<HistogramTopK>(new HistogramTopK(options));
  op->resumed_ = true;
  ObsScope obs_scope(options.obs);
  TraceSpan span("topk.resume_from_manifest", "topk");
  TOPK_ASSIGN_OR_RETURN(
      op->spill_,
      SpillManager::OpenExisting(options.env, options.spill_dir,
                                 options.manifest_filename, op->comparator_,
                                 options.io_pipeline(), report));
  // Keep checkpointing across the resumed merge so another crash is also
  // recoverable.
  op->spill_->SetAutoManifest(options.manifest_filename);

  // Rebuild the cutoff filter from the per-run histograms the manifest
  // preserved ("retain any information once gained" surviving a process
  // death): merge steps resume with the same eager filtering the original
  // execution had earned.
  uint64_t max_run_rows = 1;
  uint64_t buckets = 0;
  for (const RunMeta& run : op->spill_->runs()) {
    max_run_rows = std::max(max_run_rows, run.rows);
    buckets += run.histogram.size();
  }
  op->filter_ =
      std::make_unique<CutoffFilter>(op->MakeFilterOptions(max_run_rows));
  for (const RunMeta& run : op->spill_->runs()) {
    for (const HistogramBucket& bucket : run.histogram) {
      op->filter_->InsertBucket(bucket);
    }
  }
  if (TracingEnabled()) {
    TraceInstant("resume.filter_rebuilt", "topk",
                 {TraceArg("runs", op->spill_->run_count()),
                  TraceArg("buckets", buckets),
                  TraceArg("cutoff_established",
                           op->filter_->cutoff().has_value() ? 1 : 0)});
  }
  return op;
}

}  // namespace topk
