#ifndef TOPK_TOPK_TOPK_OPERATOR_H_
#define TOPK_TOPK_TOPK_OPERATOR_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/query_control.h"
#include "common/resource_arbiter.h"
#include "common/result.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "io/async_io.h"
#include "io/storage_env.h"
#include "obs/obs_context.h"
#include "row/row.h"
#include "sort/merge_planner.h"
#include "sort/run_generation.h"

namespace topk {

/// What a cancelled external operator does with spilled state it already
/// paid for (query_control.h; in-memory operators have nothing to keep).
enum class OnCancelPolicy {
  /// Release everything: the spill directory is removed as usual when the
  /// operator is destroyed. The default — a cancelled query is garbage.
  kReleaseSpill,
  /// Keep the runs for a later ResumeFromManifest: before surfacing the
  /// cancellation the operator flushes in-flight run state, checkpoints
  /// the manifest, and disowns the spill directory — the same durable
  /// handoff Suspend() performs. Requires manifest_filename; preempted
  /// queries restart from their runs instead of from row zero.
  kKeepForResume,
};

/// Configuration shared by every top-k operator. Mirrors the paper's
/// experimental knobs (Sec 5.1.2): memory budget, histogram sizing, run-size
/// limit, plus the storage substrate to spill into.
struct TopKOptions {
  /// LIMIT: number of output rows.
  uint64_t k = 0;
  /// OFFSET: rows of the sorted stream to skip before the output
  /// (pause-and-resume paging, Sec 2.7).
  uint64_t offset = 0;
  /// SQL FETCH FIRST k ROWS WITH TIES: also return every row whose key
  /// equals the kth output row's key. The number of tied duplicates is
  /// unbounded and unknown in advance — exactly the robustness hazard
  /// Sec 2.3 raises for the in-memory algorithm; the external operators
  /// handle it naturally because the cutoff filter never eliminates
  /// key-ties.
  bool with_ties = false;
  SortDirection direction = SortDirection::kAscending;

  /// Operator memory budget in bytes (paper default: 1 GB; experiments use
  /// much smaller budgets).
  size_t memory_limit_bytes = 64 << 20;

  /// Target histogram buckets collected per run (paper default: 50; 0
  /// disables the filter).
  uint64_t histogram_buckets_per_run = 50;
  /// Memory budget of the histogram priority queue (paper default: 1 MB).
  size_t histogram_memory_limit_bytes = 1 << 20;
  /// Fallback when the queue outgrows its budget (paper: full
  /// consolidation; kAdaptive degrades more gracefully under tiny
  /// budgets — see bench/ablation_consolidation).
  CutoffFilter::ConsolidationPolicy histogram_consolidation =
      CutoffFilter::ConsolidationPolicy::kFull;

  /// Maximum runs merged per step.
  size_t merge_fan_in = 64;
  /// Which runs multi-step merges consume first (Sec 4.1 recommends
  /// lowest-keys-first for top operations; used by the histogram and
  /// optimized operators).
  MergePolicy merge_policy = MergePolicy::kLowestKeysFirst;
  /// Number of initial runs an early merge step combines to establish a
  /// cutoff in the optimized baseline (Sec 2.5; the paper's example uses
  /// 10).
  size_t early_merge_fan_in = 10;

  /// OptimizedExternalTopK: force an early merge step to establish a
  /// cutoff when k exceeds the run size (the [14] recommendation). The
  /// paper's *measured* baseline lacks an effective cutoff in that regime
  /// ("the baseline algorithm externally sorts the entire input", Sec
  /// 5.2), so figure benches disable this to match it.
  bool enable_early_merge = true;

  /// Limit run sizes to k + offset (Sec 2.4 optimization). On by default
  /// for the external top-k operators.
  bool limit_run_size_to_output = true;

  RunGenerationKind run_generation = RunGenerationKind::kReplacementSelection;

  /// Offset-value coding on every merge step's loser tree (Do & Graefe;
  /// see row/normalized_key.h): most tournament repairs become one integer
  /// compare. Output is byte-identical with it on or off; the switch
  /// exists for A/B benchmarks and the CI equivalence matrix. Defaults to
  /// on unless the TOPK_OVC environment variable disables it process-wide.
  bool use_ovc = DefaultOvcEnabled();

  /// Storage substrate; required by the external operators. Not owned.
  StorageEnv* env = nullptr;
  /// Directory for spill files; required by the external operators.
  std::string spill_dir;

  /// Background I/O pipeline: worker threads that flush full spill blocks
  /// and prefetch merge blocks while the operator keeps computing. On
  /// disaggregated storage (read/write latency per call) this overlaps the
  /// round trip with replacement selection / loser-tree work. 0 = fully
  /// synchronous I/O (today's deterministic path, byte-identical run
  /// files).
  size_t io_background_threads = 2;
  /// Read one block ahead of every merge cursor (needs background
  /// threads).
  bool enable_io_prefetch = true;
  /// Merge-wide prefetch memory budget (bytes): how much
  /// prefetched-but-unmerged block data all runs of a merge may hold
  /// beyond their first lookahead block. The merge planner apportions it
  /// across the live runs; each reader then adapts its lookahead depth to
  /// the observed round-trip / merge-rate ratio within its share, and runs
  /// abandoned by the cutoff return their share to the pool. 0 pins the
  /// fixed one-block lookahead.
  size_t prefetch_memory_budget = 8 << 20;

  /// Retry policy applied to every spill read/write/delete and manifest
  /// round trip (transient Unavailable errors only; see io/retry.h). Its
  /// deadline_nanos also bounds how long a merge read waits for a
  /// prefetched block, and its retry_budget caps retries across the whole
  /// pipeline.
  RetryPolicy io_retry;
  /// Verify each run's CRC-32C inline while the merge reads it (a mismatch
  /// is permanent Corruption, never retried).
  bool verify_spill_checksums = true;

  /// Hedge straggling prefetch reads (see PrefetchTuning::hedge_reads): a
  /// block overdue against the reader's observed round-trip EWMA is
  /// re-requested on a second handle and the first completion wins. Tames
  /// tail latency on degraded storage at the cost of some duplicate reads.
  bool io_hedge_reads = false;
  /// Issue the hedge once the wait exceeds this multiple of the EWMA.
  double io_hedge_latency_multiplier = 3.0;

  /// Cap on spill bytes simultaneously on disk, 0 = unlimited. Under
  /// pressure the histogram operator first consolidates runs through the
  /// cutoff filter to reclaim space; only when that cannot help does a
  /// spill write fail with ResourceExhausted naming the quota.
  uint64_t spill_quota_bytes = 0;

  /// When non-empty, the operator keeps a manifest of this name inside the
  /// spill directory, checkpointed after every registered run and merge
  /// step, and leaves the spill directory on disk if Finish fails — the
  /// crash-recovery contract behind ResumeFromManifest.
  std::string manifest_filename;

  /// Query lifecycle control (query_control.h). When set, every operator
  /// entry point, run-generation spill loop, merge row loop, retry
  /// backoff, and prefetch consumer wait polls this token, so the query
  /// observes RequestCancel/SetDeadline within a bounded number of
  /// row/block steps and unwinds with Cancelled/DeadlineExceeded. The
  /// shared_ptr keeps the token alive for background work; operators also
  /// thread it into io_retry (and thus the whole I/O pipeline).
  std::shared_ptr<CancellationToken> cancel;
  /// What a cancelled external operator does with its spilled runs.
  OnCancelPolicy on_cancel = OnCancelPolicy::kReleaseSpill;

  /// OptimizedExternalTopK: checkpoint input consumption every N consumed
  /// rows (0 = off). Each checkpoint flushes the current run, records
  /// (rows consumed, last run id, cutoff) in the manifest as a v3 ckpt
  /// record, and makes it durable — a crash between checkpoints replays
  /// at most N input rows on resume. Requires manifest_filename.
  uint64_t checkpoint_input_every_rows = 0;

  /// The spill pipeline configuration derived from the knobs above.
  IoPipelineOptions io_pipeline() const {
    IoPipelineOptions io;
    io.background_threads = io_background_threads;
    io.enable_prefetch = enable_io_prefetch;
    io.retry = io_retry;
    // The token rides inside the retry policy: RetryOp checks it before
    // attempts and during backoff, SpillManager::OpenRun copies it into
    // each reader's PrefetchTuning for the consumer wait.
    if (io.retry.cancel == nullptr) io.retry.cancel = cancel.get();
    io.verify_read_checksums = verify_spill_checksums;
    io.prefetch_memory_budget = prefetch_memory_budget;
    io.hedge_reads = io_hedge_reads;
    io.hedge_latency_multiplier = io_hedge_latency_multiplier;
    io.spill_quota_bytes = spill_quota_bytes;
    io.arbiter = effective_arbiter();
    return io;
  }

  /// Histogram-guided OFFSET skip (Sec 4.1): when true (default) and the
  /// query has an offset, the final merge seeks each run past the prefix
  /// that provably belongs to the skipped rows instead of reading it.
  bool histogram_offset_skip = true;

  /// Approximate mode (Sec 4.5, used via ApproxTopK): when non-zero, the
  /// cutoff filter targets this many rows instead of k + offset, trading a
  /// possible shortfall of output rows for earlier, sharper cutoffs. Must
  /// be <= k + offset.
  uint64_t approx_filter_k = 0;

  /// HeapTopK only: allow the heap to grow past memory_limit_bytes instead
  /// of failing (used by the Figure 6 cost study where the in-memory
  /// operator is deliberately granted output-sized memory).
  bool allow_unbounded_memory = false;

  /// Per-query observability context (obs_context.h). When set, the
  /// operator installs it for the duration of every entry point, so all
  /// metrics/trace/phase instrumentation — including background pool work
  /// it schedules — is attributed to this query in addition to the global
  /// registry. Null (the default) records globally only.
  std::shared_ptr<ObsContext> obs;

  /// Memory arbiter the operator leases its heap/buffer/filter/prefetch
  /// memory from (common/resource_arbiter.h). Null falls back to the
  /// process-wide GlobalMemoryArbiter() — unlimited until a budget is
  /// configured (--mem-budget-mb), so accounting is always on but
  /// admission control is opt-in. Not owned.
  MemoryArbiter* arbiter = nullptr;

  /// The arbiter every consumer of these options actually uses.
  MemoryArbiter* effective_arbiter() const {
    return arbiter != nullptr ? arbiter : GlobalMemoryArbiter();
  }

  /// Total rows the operator must keep to answer the query.
  uint64_t output_rows() const { return k + offset; }
};

/// Runs an operator entry-point body and contains std::bad_alloc — real or
/// injected (MemFaultProfile mode=throw) — as Status::OutOfMemory, so an
/// allocation failure surfaces as a failed query, never a crash. `where`
/// names the boundary in the message.
template <typename Fn>
auto RunWithAllocGuard(std::string_view where, Fn&& fn) -> decltype(fn()) {
  try {
    return fn();
  } catch (const std::bad_alloc&) {
    return Status::OutOfMemory("allocation failure contained at " +
                               std::string(where));
  }
}

/// Uniform observability across operators; the evaluation (Sec 5) is driven
/// entirely off these counters.
struct OperatorStats {
  uint64_t rows_consumed = 0;
  /// Rows dropped by the cutoff before entering the sort (Algorithm 1,
  /// line 4).
  uint64_t rows_eliminated_input = 0;
  /// Rows dropped right before being written to a run (line 11).
  uint64_t rows_eliminated_spill = 0;
  /// Input rows written to runs during run generation — the paper's "Rows"
  /// column and its principal cost metric.
  uint64_t rows_spilled = 0;
  /// Physical runs created during run generation (the "Runs" column).
  uint64_t runs_created = 0;
  /// Total run-file bytes written to secondary storage, including
  /// intermediate merge output.
  uint64_t bytes_spilled = 0;
  /// Rows written by intermediate merge steps (extra secondary-storage
  /// traffic beyond run generation).
  uint64_t merge_rows_written = 0;
  /// Rows read back by all merge steps.
  uint64_t merge_rows_read = 0;
  /// Offset rows skipped via index seeks instead of reads (Sec 4.1).
  uint64_t offset_rows_seek_skipped = 0;
  /// Peak operator memory across the row buffer.
  size_t peak_memory_bytes = 0;

  /// Final cutoff key, when one was established.
  std::optional<double> final_cutoff;
  /// Cutoff-filter internals (histogram operator only).
  uint64_t filter_buckets_inserted = 0;
  uint64_t filter_consolidations = 0;

  /// Wall time inside Consume() / Finish().
  int64_t consume_nanos = 0;
  int64_t finish_nanos = 0;

  double total_seconds() const {
    return static_cast<double>(consume_nanos + finish_nanos) * 1e-9;
  }
  /// Total rows that touched secondary storage (spills + merge output).
  uint64_t total_rows_written() const {
    return rows_spilled + merge_rows_written;
  }
};

/// A top-k operator: push rows in any order, then Finish() returns the k
/// top rows (after `offset`) in query order. Single-use.
class TopKOperator {
 public:
  virtual ~TopKOperator() = default;

  virtual Status Consume(Row row) = 0;

  /// Consumes a whole batch (convenience; same semantics as repeated
  /// Consume).
  Status ConsumeBatch(std::vector<Row> rows) {
    for (Row& row : rows) {
      TOPK_RETURN_NOT_OK(Consume(std::move(row)));
    }
    return Status::OK();
  }

  /// Ends the input and produces the result. Must be called exactly once.
  virtual Result<std::vector<Row>> Finish() = 0;

  /// Makes the operator's state durable on disk and relinquishes it for a
  /// later manifest-based resume instead of producing a result (mutually
  /// exclusive with Finish). Only the spilling operators that support
  /// ResumeFromManifest implement this.
  virtual Status Suspend() {
    return Status::FailedPrecondition(
        name() +
        " does not support Suspend; suspend/resume is supported by the "
        "histogram, traditional-external, and optimized-external operators");
  }

  /// True when a manifest-resumed instance of this operator still accepts
  /// Consume(): the optimized operator checkpoints mid-input, so its
  /// resume replays the input tail from resume_input_offset(). The
  /// merge-phase resumers (histogram, traditional) return false — their
  /// runs already hold every surviving row.
  virtual bool resume_accepts_input() const { return false; }

  /// Number of input rows the resumed state already covers; the caller
  /// replays the input stream starting at this row (0-based). Meaningful
  /// only when resume_accepts_input() is true.
  virtual uint64_t resume_input_offset() const { return 0; }

  virtual std::string name() const = 0;
  const OperatorStats& stats() const { return stats_; }

 protected:
  OperatorStats stats_;
};

/// Validates option combinations common to all operators.
Status ValidateTopKOptions(const TopKOptions& options, bool requires_storage);

}  // namespace topk

#endif  // TOPK_TOPK_TOPK_OPERATOR_H_
