#ifndef TOPK_TOPK_OPTIMIZED_EXTERNAL_TOPK_H_
#define TOPK_TOPK_OPTIMIZED_EXTERNAL_TOPK_H_

#include <memory>
#include <optional>
#include <vector>

#include "io/spill_manager.h"
#include "sort/run_generation.h"
#include "topk/topk_operator.h"

namespace topk {

/// The paper's baseline (Sec 2.5): external merge sort optimized for top
/// queries per Graefe 2008 ("A general and efficient algorithm for 'top'
/// queries"). Run generation uses replacement selection with run sizes
/// limited to k+offset, and the input is filtered by a single cutoff key
/// obtained two ways:
///
///  * k fits in a run: the (k+offset)th key of each run is a valid cutoff
///    (that run alone proves k rows at or before it) — the "incrementally
///    sharpening filter" of [14]. With the run-size limit, this is exactly
///    the key that truncates each run.
///  * k larger than a run: once `early_merge_fan_in` runs exist, an early
///    merge step combines them into an intermediate run of at most
///    k+offset rows; if it reaches k+offset rows, its last key becomes the
///    cutoff. Early merges repeat as runs accumulate, so the cutoff keeps
///    sharpening — at the price of sub-optimal merge steps and interrupted
///    run generation, the drawbacks Sec 2.5 calls out and the histogram
///    algorithm removes.
///
/// This was F1 Query's production operator before the histogram algorithm.
class OptimizedExternalTopK : public TopKOperator {
 public:
  static Result<std::unique_ptr<OptimizedExternalTopK>> Make(
      const TopKOptions& options);

  ~OptimizedExternalTopK() override;  // out-of-line: KthKeyObserver is
                                      // incomplete here

  Status Consume(Row row) override;
  Result<std::vector<Row>> Finish() override;
  std::string name() const override { return "optimized-external"; }

  std::optional<double> cutoff() const { return cutoff_; }

 private:
  class KthKeyObserver;

  explicit OptimizedExternalTopK(const TopKOptions& options);

  Status SwitchToExternal();
  Status MaybeEarlyMerge();
  bool EliminateAtInput(const Row& row) const;
  void ProposeCutoff(double key);

  TopKOptions options_;
  RowComparator comparator_;

  /// In-memory phase buffer.
  std::vector<Row> buffer_;
  size_t buffered_bytes_ = 0;

  /// External phase.
  std::unique_ptr<SpillManager> spill_;
  std::unique_ptr<KthKeyObserver> observer_;
  std::unique_ptr<RunGenerator> generator_;

  std::optional<double> cutoff_;
  uint64_t early_merges_done_ = 0;
  uint64_t early_merge_runs_registered_ = 0;

  bool finished_ = false;
};

}  // namespace topk

#endif  // TOPK_TOPK_OPTIMIZED_EXTERNAL_TOPK_H_
