#ifndef TOPK_TOPK_OPTIMIZED_EXTERNAL_TOPK_H_
#define TOPK_TOPK_OPTIMIZED_EXTERNAL_TOPK_H_

#include <memory>
#include <optional>
#include <vector>

#include "io/spill_manager.h"
#include "sort/run_generation.h"
#include "topk/topk_operator.h"

namespace topk {

/// The paper's baseline (Sec 2.5): external merge sort optimized for top
/// queries per Graefe 2008 ("A general and efficient algorithm for 'top'
/// queries"). Run generation uses replacement selection with run sizes
/// limited to k+offset, and the input is filtered by a single cutoff key
/// obtained two ways:
///
///  * k fits in a run: the (k+offset)th key of each run is a valid cutoff
///    (that run alone proves k rows at or before it) — the "incrementally
///    sharpening filter" of [14]. With the run-size limit, this is exactly
///    the key that truncates each run.
///  * k larger than a run: once `early_merge_fan_in` runs exist, an early
///    merge step combines them into an intermediate run of at most
///    k+offset rows; if it reaches k+offset rows, its last key becomes the
///    cutoff. Early merges repeat as runs accumulate, so the cutoff keeps
///    sharpening — at the price of sub-optimal merge steps and interrupted
///    run generation, the drawbacks Sec 2.5 calls out and the histogram
///    algorithm removes.
///
/// This was F1 Query's production operator before the histogram algorithm.
class OptimizedExternalTopK : public TopKOperator {
 public:
  static Result<std::unique_ptr<OptimizedExternalTopK>> Make(
      const TopKOptions& options);

  /// Reconstructs a suspended or crashed execution from the manifest in
  /// `options.manifest_filename`. Two shapes, decided by the manifest:
  ///
  ///  * It holds an input checkpoint (ckpt record): the crash happened
  ///    mid-input. Runs past the checkpoint's run-id frontier are deleted
  ///    (the replay re-delivers their rows), the cutoff is restored, and
  ///    the resumed operator ACCEPTS INPUT — resume_accepts_input() is
  ///    true and the caller must replay the input stream starting at
  ///    resume_input_offset(), then call Finish().
  ///
  ///  * No checkpoint: the input had been fully flushed into runs before
  ///    the crash (Finish clears the checkpoint at that boundary). The
  ///    resumed operator accepts no input; Finish() merges the runs.
  ///
  /// Note: without checkpoint_input_every_rows, a manifest written
  /// mid-input has no ckpt record and is indistinguishable from the
  /// post-input state — only crashes after run generation completed are
  /// then safely resumable. Enable input checkpointing when optimized
  /// executions must survive mid-input crashes.
  static Result<std::unique_ptr<OptimizedExternalTopK>> ResumeFromManifest(
      const TopKOptions& options, RestoreReport* report = nullptr);

  ~OptimizedExternalTopK() override;  // out-of-line: KthKeyObserver is
                                      // incomplete here

  Status Consume(Row row) override;
  Result<std::vector<Row>> Finish() override;

  /// Flushes buffered rows into runs, records an input checkpoint (rows
  /// consumed, run-id frontier, cutoff), makes the manifest durable, and
  /// leaves the spill directory for a later ResumeFromManifest — which
  /// will accept the input tail this execution never saw. Requires
  /// options.manifest_filename. Also legal on an input-accepting resumed
  /// operator (a resumed query can be preempted again).
  Status Suspend() override;

  std::string name() const override { return "optimized-external"; }

  bool resume_accepts_input() const override {
    return resumed_ && generator_ != nullptr;
  }
  uint64_t resume_input_offset() const override {
    return resume_input_offset_;
  }

  std::optional<double> cutoff() const { return cutoff_; }

  /// True for an operator reconstructed by ResumeFromManifest.
  bool is_resumed() const { return resumed_; }

 private:
  class KthKeyObserver;

  explicit OptimizedExternalTopK(const TopKOptions& options);

  Status SwitchToExternal();
  /// Builds observer_ + generator_ against the existing spill_ (shared by
  /// the external switch and the mid-input resume path).
  Status CreateGenerator();
  Status MaybeEarlyMerge();
  bool EliminateAtInput(const Row& row) const;
  void ProposeCutoff(double key);

  /// Closes the current run set and makes an input checkpoint durable;
  /// the "optimized.mid-input" crash point fires once it is.
  Status CheckpointInput();
  /// Records (rows consumed, run-id frontier, cutoff) in the manifest and
  /// flushes it; advances the early-merge pin.
  Status WriteInputCheckpoint();

  Status ConsumeImpl(Row row);
  Result<std::vector<Row>> FinishImpl();
  Status SuspendImpl();

  /// Entry-point poll of options_.cancel; a tripped token is routed
  /// through OnCancelStatus.
  Status CheckCancel();
  /// Passes `cause` through, but when it is the cancellation token
  /// tripping and on_cancel is kKeepForResume, first performs Suspend's
  /// durable handoff (checkpoint included) so the query resumes from
  /// where the cancel caught it.
  Status OnCancelStatus(Status cause);

  TopKOptions options_;
  RowComparator comparator_;

  /// In-memory phase buffer.
  std::vector<Row> buffer_;
  size_t buffered_bytes_ = 0;
  /// Arbiter lease covering buffered_bytes_.
  MemoryLease lease_;

  /// External phase.
  std::unique_ptr<SpillManager> spill_;
  std::unique_ptr<KthKeyObserver> observer_;
  std::unique_ptr<RunGenerator> generator_;

  std::optional<double> cutoff_;
  uint64_t early_merges_done_ = 0;
  uint64_t early_merge_runs_registered_ = 0;

  bool finished_ = false;
  /// Built by ResumeFromManifest. With a generator the operator accepts
  /// the replayed input tail; without one it is merge-phase only.
  bool resumed_ = false;
  /// Input rows the restored state already covers (resume replays from
  /// here).
  uint64_t resume_input_offset_ = 0;
  /// Rows consumed since the last input checkpoint.
  uint64_t rows_since_checkpoint_ = 0;
  /// Run ids below this bound are covered by the last durable input
  /// checkpoint. Early merges must not consume them: their merged
  /// replacement would get a higher id — which the resume path deletes as
  /// replay-duplicated — while the replay never re-delivers the
  /// pre-checkpoint rows it absorbed.
  uint64_t pinned_run_id_bound_ = 0;
  /// First non-cancellation error any entry point surfaced; Suspend
  /// returns it instead of a generic precondition failure.
  Status first_error_;
  /// The keep-for-resume cancel handoff ran (it must run at most once).
  bool cancel_unwound_ = false;
};

}  // namespace topk

#endif  // TOPK_TOPK_OPTIMIZED_EXTERNAL_TOPK_H_
