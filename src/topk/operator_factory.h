#ifndef TOPK_TOPK_OPERATOR_FACTORY_H_
#define TOPK_TOPK_OPERATOR_FACTORY_H_

#include <memory>
#include <string>

#include "io/spill_manager.h"
#include "topk/topk_operator.h"

namespace topk {

/// The top-k execution strategies the library implements (Sec 2.3-2.5 and
/// Sec 3 of the paper).
enum class TopKAlgorithm {
  kHeap,                 // in-memory priority queue (Sec 2.3)
  kTraditionalExternal,  // full external sort (Sec 2.4)
  kOptimizedExternal,    // Graefe 2008 baseline (Sec 2.5)
  kHistogram,            // the paper's algorithm (Sec 3)
};

std::string TopKAlgorithmName(TopKAlgorithm algorithm);
bool ParseTopKAlgorithm(const std::string& name, TopKAlgorithm* out);

/// Creates the requested operator, validating `options` for it.
Result<std::unique_ptr<TopKOperator>> MakeTopKOperator(
    TopKAlgorithm algorithm, const TopKOptions& options);

/// Resumes a suspended or crashed execution from the manifest named by
/// `options.manifest_filename` inside `options.spill_dir`. Supported for
/// the spilling algorithms (kHistogram, kTraditionalExternal,
/// kOptimizedExternal). Most resumed operators accept no further input —
/// call Finish() for the result. The exception is an optimized-external
/// execution restored from a mid-input checkpoint: there
/// resume_accepts_input() is true and the caller must replay the input
/// from resume_input_offset() before Finish(). Runs failing verification
/// are quarantined and recorded in `report`.
Result<std::unique_ptr<TopKOperator>> ResumeTopKOperator(
    TopKAlgorithm algorithm, const TopKOptions& options,
    RestoreReport* report = nullptr);

}  // namespace topk

#endif  // TOPK_TOPK_OPERATOR_FACTORY_H_
