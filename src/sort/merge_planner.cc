#include "sort/merge_planner.h"

#include <algorithm>

#include "common/query_control.h"
#include "obs/obs_context.h"
#include "obs/trace.h"
#include "sort/merger.h"

namespace topk {

void OrderRunsForMerge(std::vector<RunMeta>* runs,
                       const RowComparator& comparator, MergePolicy policy) {
  switch (policy) {
    case MergePolicy::kSmallestRunsFirst:
      std::sort(runs->begin(), runs->end(),
                [](const RunMeta& a, const RunMeta& b) {
                  if (a.rows != b.rows) return a.rows < b.rows;
                  return a.id < b.id;
                });
      break;
    case MergePolicy::kLowestKeysFirst:
      std::sort(runs->begin(), runs->end(),
                [&](const RunMeta& a, const RunMeta& b) {
                  // Best (lowest, for ascending) keys first; compare by the
                  // run's last key — a recently produced, sharply filtered
                  // run ends early in the key domain.
                  if (a.last_key != b.last_key) {
                    return comparator.KeyLess(a.last_key, b.last_key);
                  }
                  if (a.first_key != b.first_key) {
                    return comparator.KeyLess(a.first_key, b.first_key);
                  }
                  return a.id < b.id;
                });
      break;
  }
}

Result<std::vector<RunMeta>> ReduceRunsForFinalMerge(
    SpillManager* spill, const RowComparator& comparator,
    const MergePlannerOptions& options, MergePlanStats* stats) {
  if (options.fan_in < 2) {
    return Status::InvalidArgument("merge fan-in must be at least 2");
  }
  std::vector<RunMeta> runs = spill->runs();
  while (runs.size() > options.fan_in) {
    // Between steps is the cheapest place to stop: the previous step is
    // fully committed (manifest flushed, inputs deleted), so cancellation
    // here leaves a cleanly resumable run set.
    TOPK_RETURN_IF_CANCELLED(options.cancel);
    OrderRunsForMerge(&runs, comparator, options.policy);
    // Crash point: the ordered plan exists only in memory; everything
    // durable is the previous step's committed state.
    HitCrashPoint("pre-merge-step");
    // Merge enough runs that the final pass can cover the rest: prefer the
    // largest useful step (full fan-in) unless fewer suffice.
    const size_t excess = runs.size() - options.fan_in;
    const size_t step = std::min(options.fan_in, excess + 1);
    std::vector<RunMeta> inputs(runs.begin(), runs.begin() + step);
    // Plan-time prefetch apportioning: the step's readers share the
    // manager-wide prefetch memory budget evenly. Runs the cutoff abandons
    // mid-step release their reservations back through the shared
    // PrefetchBudget, letting the surviving readers deepen up to this cap.
    const size_t prefetch_depth_cap = ApportionPrefetchDepth(
        spill->io_options().prefetch_memory_budget, inputs.size(),
        kDefaultBlockBytes);
    PhaseScope phase("merge.intermediate");
    TraceSpan step_span("merge.intermediate_step", "sort",
                        {TraceArg("fan_in", step),
                         TraceArg("runs_remaining", runs.size()),
                         TraceArg("prefetch_depth_cap", prefetch_depth_cap)});

    std::unique_ptr<RunWriter> writer;
    TOPK_ASSIGN_OR_RETURN(writer, spill->NewRun(comparator));
    MergeOptions merge_options;
    merge_options.limit = options.intermediate_limit;
    merge_options.with_ties = options.with_ties;
    merge_options.stop_filter = options.filter;
    merge_options.refine_filter = options.filter;
    merge_options.prefetch_depth_cap = prefetch_depth_cap;
    merge_options.use_ovc = options.use_ovc;
    merge_options.cancel = options.cancel;
    MergeStats merge_stats;
    TOPK_ASSIGN_OR_RETURN(
        merge_stats,
        MergeRuns(spill, inputs, comparator, merge_options,
                  [&](Row&& row) { return writer->Append(row); }));
    RunMeta merged;
    TOPK_ASSIGN_OR_RETURN(merged, writer->Finish());
    // Crash-safe ordering: deregister the inputs but keep their files,
    // register the output (which checkpoints the manifest when the spill
    // manager runs in auto-manifest mode), make that checkpoint durable,
    // and only then delete the input files. A crash at any point leaves a
    // manifest whose runs — old inputs or the merged output — all still
    // exist on disk, so the merge can resume from it.
    std::vector<std::string> consumed_paths;
    consumed_paths.reserve(inputs.size());
    for (const RunMeta& consumed : inputs) {
      std::string path;
      TOPK_ASSIGN_OR_RETURN(path, spill->ReleaseRun(consumed.id));
      consumed_paths.push_back(std::move(path));
    }
    if (merged.rows > 0) {
      TOPK_RETURN_NOT_OK(spill->AddRun(merged));
    } else {
      // Nothing survived the cutoff filter; the registry still shrank, so
      // checkpoint explicitly before the inputs disappear.
      TOPK_RETURN_NOT_OK(spill->CheckpointManifest());
      consumed_paths.push_back(merged.path);
    }
    if (spill->auto_manifest_enabled()) {
      TOPK_RETURN_NOT_OK(spill->FlushManifest());
    }
    for (const std::string& path : consumed_paths) {
      TOPK_RETURN_NOT_OK(spill->DeleteSpillFile(path));
    }
    // Crash point: the step is fully committed — output registered,
    // manifest durable, inputs gone.
    HitCrashPoint("post-merge-step");
    if (stats != nullptr) {
      ++stats->intermediate_steps;
      stats->intermediate_rows_written += merge_stats.rows_emitted;
      stats->intermediate_rows_read += merge_stats.rows_read;
    }
    runs = spill->runs();
  }
  return runs;
}

}  // namespace topk
