#ifndef TOPK_SORT_RUN_GENERATION_H_
#define TOPK_SORT_RUN_GENERATION_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "common/memory_accounting.h"
#include "common/resource_arbiter.h"
#include "common/status.h"
#include "histogram/bucket.h"
#include "io/spill_manager.h"
#include "row/row.h"

namespace topk {

/// How an external operator generates its sorted runs.
enum class RunGenerationKind {
  kQuicksort,             // load-sort-store (PostgreSQL-style)
  kReplacementSelection,  // pipelined, the paper's production choice
};

/// Hook invoked by run generators around every spill. This is how the
/// cutoff filter logic of Algorithm 1 attaches to any run-generation
/// algorithm ("the cutoff filter logic ... can be combined with any
/// run-generation algorithm", Sec 3.1.2): the observer re-checks rows right
/// before they hit secondary storage (line 11) and accounts written rows
/// into the input model (line 13).
class SpillObserver {
 public:
  virtual ~SpillObserver() = default;

  /// Returns true when `row` must be dropped instead of written. Called
  /// with rows in run order.
  virtual bool EliminateAtSpill(const Row& row) {
    (void)row;
    return false;
  }

  /// `row` was appended to the current run.
  virtual void OnRowSpilled(const Row& row) { (void)row; }

  /// The current run was closed; returns the histogram collected from it
  /// (stored into RunMeta::histogram).
  virtual std::vector<HistogramBucket> OnRunFinished() { return {}; }
};

struct RunGeneratorOptions {
  /// Operator memory budget for buffered rows.
  size_t memory_limit_bytes = 64 << 20;
  /// Maximum rows per physical run; top-k operators set this to k+offset
  /// ("limiting the size of each run to the final output size", Sec 2.4).
  uint64_t run_row_limit = std::numeric_limits<uint64_t>::max();
  /// Optional spill hook (cutoff filter). Not owned.
  SpillObserver* observer = nullptr;
  /// Seek-index granularity of produced runs (rows per RunIndexEntry).
  uint64_t run_index_stride = kDefaultIndexStride;
  /// Optional query cancellation token, polled per spilled row: a spill
  /// of a whole memory load (potentially seconds on slow storage) unwinds
  /// within one row of a cancel. Not owned.
  const CancellationToken* cancel = nullptr;
  /// Memory arbiter the generator leases its row buffer from (not owned;
  /// nullptr = unaccounted, the legacy behaviour). Under soft pressure the
  /// generator spills early — at half its configured memory limit — so
  /// buffered rows drain while the process still has headroom.
  MemoryArbiter* arbiter = nullptr;
};

struct RunGeneratorStats {
  uint64_t rows_added = 0;
  uint64_t rows_eliminated_at_spill = 0;
  uint64_t rows_spilled = 0;
  size_t peak_memory_bytes = 0;
  /// Rows currently buffered in memory.
  uint64_t rows_in_memory = 0;
};

// kPerRowOverheadBytes — the fixed extra bytes charged per buffered row —
// now lives in common/memory_accounting.h, shared with the operators.

/// Produces sorted runs in a SpillManager from an unsorted row stream.
class RunGenerator {
 public:
  virtual ~RunGenerator() = default;

  /// Buffers one row, spilling as needed to respect the memory budget.
  virtual Status Add(Row row) = 0;

  /// Ends the input: spills everything still buffered and closes the last
  /// run. After Flush() the SpillManager holds the complete set of runs.
  /// Safe to keep Add()ing afterwards (a new run set begins) — the
  /// optimized operator's input checkpoints rely on this.
  virtual Status Flush() = 0;

  /// Replaces the cancellation token polled by the spill loops (nullptr
  /// detaches). The keep-for-resume cancel unwind detaches it so the
  /// final checkpoint flush completes even though the token has tripped.
  virtual void SetCancel(const CancellationToken* cancel) = 0;

  virtual const RunGeneratorStats& stats() const = 0;
};

/// Load-sort-store run generation: fill memory, quicksort, write one run
/// (split at run_row_limit). Simple and cache-friendly, but consumption of
/// the input stalls during each sort+spill (the paper's motivation for
/// replacement selection); runs are at most one memory-load long.
class QuicksortRunGenerator : public RunGenerator {
 public:
  QuicksortRunGenerator(SpillManager* spill, const RowComparator& comparator,
                        const RunGeneratorOptions& options);

  Status Add(Row row) override;
  Status Flush() override;
  void SetCancel(const CancellationToken* cancel) override {
    options_.cancel = cancel;
  }
  const RunGeneratorStats& stats() const override { return stats_; }

 private:
  Status SortAndSpill();

  SpillManager* spill_;
  RowComparator comparator_;
  RunGeneratorOptions options_;
  RunGeneratorStats stats_;
  std::vector<Row> buffer_;
  size_t buffered_bytes_ = 0;
  /// Lease covering buffered_bytes_ (detached without an arbiter).
  MemoryLease lease_;
};

}  // namespace topk

#endif  // TOPK_SORT_RUN_GENERATION_H_
