#ifndef TOPK_SORT_MERGER_H_
#define TOPK_SORT_MERGER_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "histogram/cutoff_filter.h"
#include "io/spill_manager.h"
#include "row/row.h"

namespace topk {

/// Receives merged rows in sorted order.
using RowSink = std::function<Status(Row&&)>;

struct MergeOptions {
  /// Stop after emitting this many rows (a top-k merge "ends when the row
  /// count desired for the final output is reached", Sec 4.1).
  uint64_t limit = std::numeric_limits<uint64_t>::max();

  /// Rows to drop before the first emitted row (OFFSET support; rows still
  /// count as read).
  uint64_t skip = 0;

  /// SQL FETCH FIRST .. WITH TIES: after `limit` rows, keep emitting rows
  /// whose key equals the last emitted key. The cutoff filter never
  /// eliminates key-ties, so tied rows are guaranteed to still be present
  /// in the runs.
  bool with_ties = false;

  /// When set, the merge stops as soon as the next merged row is eliminated
  /// by the filter ("or when the value of the latest merged row exceeds the
  /// cutoff key", Sec 4.1): every remaining row sorts at or after it, so
  /// none can reach the output.
  const CutoffFilter* stop_filter = nullptr;

  /// When set, the kth merged row's key is proposed to this filter as a
  /// cutoff ("each merge step can also reduce the cutoff key", Sec 4.1).
  /// Useful when input remains unsorted and run generation continues.
  CutoffFilter* refine_filter = nullptr;

  /// Histogram-guided offset seek (Sec 4.1, filled by PlanOffsetSkip):
  /// when non-empty (parallel to the run list), each reader seeks past
  /// `seek_bytes[i]` of row data before merging; the `seek_rows_total`
  /// rows so skipped count against `skip`.
  std::vector<uint64_t> seek_bytes;
  uint64_t seek_rows_total = 0;

  /// Per-reader cap on the adaptive prefetch window (blocks of lookahead).
  /// 0 = apportion the spill manager's prefetch memory budget across this
  /// merge's runs (ApportionPrefetchDepth); the planner passes the value
  /// it computed at plan time. 1 pins the legacy fixed one-block
  /// lookahead.
  size_t prefetch_depth_cap = 0;

  /// Offset-value coding on the loser tree (Do & Graefe): each way carries
  /// its row's normalized key plus an offset-value code, so most tournament
  /// repairs are a single integer compare and only equal codes fall back to
  /// one key memcmp. Output is byte-identical either way; the off switch
  /// exists for the CI equivalence matrix and A/B benchmarks
  /// (sort.compare.count / sort.compare.ovc_hits quantify the win).
  bool use_ovc = DefaultOvcEnabled();

  /// Optional query cancellation token, polled once per merged row (one
  /// relaxed load): a cancelled merge unwinds within one row, cancelling
  /// its readers' in-flight prefetches on the way out. Not owned.
  const CancellationToken* cancel = nullptr;
};

struct MergeStats {
  uint64_t rows_read = 0;
  uint64_t rows_emitted = 0;
  uint64_t rows_skipped = 0;
  /// True when every input run was fully consumed (the merge did not stop
  /// early on limit/cutoff).
  bool exhausted_inputs = false;
  /// Key of the last emitted row (valid when rows_emitted > 0).
  double last_key = 0.0;
};

/// Merges `runs` (already registered in `spill`) with a loser tree and
/// streams the result to `sink` in query order. Does not delete the input
/// runs; callers decide (the planner removes consumed runs).
Result<MergeStats> MergeRuns(SpillManager* spill,
                             const std::vector<RunMeta>& runs,
                             const RowComparator& comparator,
                             const MergeOptions& options, const RowSink& sink);

}  // namespace topk

#endif  // TOPK_SORT_MERGER_H_
