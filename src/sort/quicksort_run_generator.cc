#include <algorithm>

#include "obs/obs_context.h"
#include "obs/trace.h"
#include "row/serialization.h"
#include "sort/run_generation.h"

namespace topk {

namespace {
/// Spills forced by arbiter soft pressure before the generator's own
/// memory limit was reached (shared name with replacement selection — one
/// ladder rung, two generators).
ObsCounter& EarlySpillsCounter() {
  static ObsCounter counter("mem.arbiter.early_spills");
  return counter;
}
}  // namespace

QuicksortRunGenerator::QuicksortRunGenerator(
    SpillManager* spill, const RowComparator& comparator,
    const RunGeneratorOptions& options)
    : spill_(spill), comparator_(comparator), options_(options) {}

Status QuicksortRunGenerator::Add(Row row) {
  TOPK_RETURN_NOT_OK(ValidateRowPayload(row));
  const size_t cost = row.MemoryFootprint() + kPerRowOverheadBytes;
  // Under arbiter soft pressure the buffer flushes at half its configured
  // budget: shorter runs, but memory drains while headroom remains.
  size_t effective_limit = options_.memory_limit_bytes;
  if (options_.arbiter != nullptr &&
      options_.arbiter->pressure() >= MemoryPressure::kSoft) {
    effective_limit = std::max<size_t>(1, effective_limit / 2);
  }
  if (buffered_bytes_ + cost > effective_limit && !buffer_.empty()) {
    if (buffered_bytes_ + cost <= options_.memory_limit_bytes) {
      EarlySpillsCounter().Add(1);
    }
    TOPK_RETURN_NOT_OK(SortAndSpill());
  }
  buffered_bytes_ += cost;
  if (options_.arbiter != nullptr && !lease_.attached()) {
    TOPK_ASSIGN_OR_RETURN(lease_,
                          options_.arbiter->Acquire("run-generation", 0));
  }
  TOPK_RETURN_NOT_OK(lease_.EnsureAtLeast(buffered_bytes_));
  buffer_.push_back(std::move(row));
  ++stats_.rows_added;
  stats_.rows_in_memory = buffer_.size();
  stats_.peak_memory_bytes =
      std::max(stats_.peak_memory_bytes, buffered_bytes_);
  return Status::OK();
}

Status QuicksortRunGenerator::SortAndSpill() {
  TraceSpan span("rungen.sort_and_spill", "sort",
                 {TraceArg("rows", buffer_.size())});
  // Sort (normalized key, buffer index) pairs instead of the rows
  // themselves: ordering was decided once at encode time (NaN-total,
  // -0.0 folded, direction baked in), every quicksort comparison is a
  // two-word integer compare, and the variable-size payloads are never
  // moved during the sort — only the 24-byte pairs are.
  std::vector<std::pair<NormalizedKey, uint32_t>> order;
  order.reserve(buffer_.size());
  const SortDirection direction = comparator_.direction();
  for (uint32_t i = 0; i < buffer_.size(); ++i) {
    order.emplace_back(buffer_[i].normalized_key(direction), i);
  }
  {
    TraceSpan sort_span("rungen.quicksort", "sort");
    std::sort(order.begin(), order.end(),
              [](const std::pair<NormalizedKey, uint32_t>& a,
                 const std::pair<NormalizedKey, uint32_t>& b) {
                return a.first < b.first;
              });
  }

  std::unique_ptr<RunWriter> writer;
  uint64_t rows_in_run = 0;
  for (const auto& [norm, index] : order) {
    TOPK_RETURN_IF_CANCELLED(options_.cancel);
    Row& row = buffer_[index];
    if (options_.observer != nullptr &&
        options_.observer->EliminateAtSpill(row)) {
      ++stats_.rows_eliminated_at_spill;
      continue;
    }
    if (writer != nullptr && rows_in_run >= options_.run_row_limit) {
      RunMeta meta;
      TOPK_ASSIGN_OR_RETURN(meta, writer->Finish());
      if (options_.observer != nullptr) {
        meta.histogram = options_.observer->OnRunFinished();
      }
      TOPK_RETURN_NOT_OK(spill_->AddRun(std::move(meta)));
      writer.reset();
      rows_in_run = 0;
    }
    if (writer == nullptr) {
      TOPK_ASSIGN_OR_RETURN(
          writer, spill_->NewRun(comparator_, options_.run_index_stride));
    }
    TOPK_RETURN_NOT_OK(writer->Append(row));
    if (options_.observer != nullptr) options_.observer->OnRowSpilled(row);
    ++stats_.rows_spilled;
    ++rows_in_run;
  }
  if (writer != nullptr) {
    RunMeta meta;
    TOPK_ASSIGN_OR_RETURN(meta, writer->Finish());
    if (options_.observer != nullptr) {
      meta.histogram = options_.observer->OnRunFinished();
    }
    TOPK_RETURN_NOT_OK(spill_->AddRun(std::move(meta)));
  } else if (options_.observer != nullptr) {
    // Everything was eliminated; still reset the observer's per-run state.
    options_.observer->OnRunFinished();
  }
  buffer_.clear();
  buffered_bytes_ = 0;
  lease_.ShrinkTo(0);
  stats_.rows_in_memory = 0;
  return Status::OK();
}

Status QuicksortRunGenerator::Flush() {
  if (!buffer_.empty()) {
    TOPK_RETURN_NOT_OK(SortAndSpill());
  }
  return Status::OK();
}

}  // namespace topk
