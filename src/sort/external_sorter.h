#ifndef TOPK_SORT_EXTERNAL_SORTER_H_
#define TOPK_SORT_EXTERNAL_SORTER_H_

#include <memory>
#include <vector>

#include "io/spill_manager.h"
#include "obs/obs_context.h"
#include "sort/merger.h"
#include "sort/run_generation.h"

namespace topk {

/// General-purpose external merge sort over the same substrates the top-k
/// operators use (run generation, merge planner, loser-tree merge). This is
/// the "vanilla sort" many systems bolt their top-k onto (Sec 2.4) — here
/// as a clean reusable facade: feed rows, then stream the fully sorted
/// output. With no LIMIT to exploit, it spills everything; the top-k
/// operators exist precisely to beat it.
class ExternalSorter {
 public:
  struct Options {
    size_t memory_limit_bytes = 64 << 20;
    size_t merge_fan_in = 64;
    RunGenerationKind run_generation =
        RunGenerationKind::kReplacementSelection;
    SortDirection direction = SortDirection::kAscending;
    StorageEnv* env = nullptr;
    std::string spill_dir;
    /// Background I/O pipeline (see TopKOptions::io_background_threads).
    /// 0 = synchronous spills and merge reads.
    size_t io_background_threads = 2;
    bool enable_io_prefetch = true;
    /// Merge-wide adaptive prefetch memory budget in bytes (see
    /// TopKOptions::prefetch_memory_budget). 0 = fixed one-block
    /// lookahead.
    size_t prefetch_memory_budget = 8 << 20;
    /// Per-query observability scope (see TopKOptions::obs). Null = record
    /// into the global registry only.
    std::shared_ptr<ObsContext> obs;
    /// Optional cancellation token (see TopKOptions::cancel); observed by
    /// run generation, spills, and the merge. Not owned; must outlive the
    /// sorter. Null = never cancelled.
    const CancellationToken* cancel = nullptr;
  };

  static Result<std::unique_ptr<ExternalSorter>> Make(const Options& options);

  /// Adds one unsorted row.
  Status Add(Row row);

  /// Ends the input and streams every row, in sort order, to `sink`.
  Status Sort(const RowSink& sink);

  /// Convenience: collects the sorted output into a vector (test scale).
  Result<std::vector<Row>> SortToVector();

  uint64_t rows_added() const { return rows_added_; }
  uint64_t rows_spilled() const {
    return generator_ != nullptr ? generator_->stats().rows_spilled : 0;
  }
  uint64_t runs_created() const {
    return spill_ != nullptr ? spill_->total_runs_created() : 0;
  }

 private:
  explicit ExternalSorter(const Options& options);

  Status SwitchToExternal();

  Options options_;
  RowComparator comparator_;

  std::vector<Row> buffer_;
  size_t buffered_bytes_ = 0;
  uint64_t rows_added_ = 0;

  std::unique_ptr<SpillManager> spill_;
  std::unique_ptr<RunGenerator> generator_;
  bool finished_ = false;
};

}  // namespace topk

#endif  // TOPK_SORT_EXTERNAL_SORTER_H_
