#include "sort/external_sorter.h"

#include <algorithm>

#include "obs/obs_context.h"
#include "obs/trace.h"
#include "sort/merge_planner.h"
#include "sort/replacement_selection.h"

namespace topk {

ExternalSorter::ExternalSorter(const Options& options)
    : options_(options), comparator_(options.direction) {}

Result<std::unique_ptr<ExternalSorter>> ExternalSorter::Make(
    const Options& options) {
  if (options.memory_limit_bytes == 0) {
    return Status::InvalidArgument("memory limit must be positive");
  }
  if (options.env == nullptr || options.spill_dir.empty()) {
    return Status::InvalidArgument(
        "external sorter needs a StorageEnv and a spill directory");
  }
  if (options.merge_fan_in < 2) {
    return Status::InvalidArgument("merge fan-in must be at least 2");
  }
  return std::unique_ptr<ExternalSorter>(new ExternalSorter(options));
}

Status ExternalSorter::SwitchToExternal() {
  IoPipelineOptions io;
  io.background_threads = options_.io_background_threads;
  io.enable_prefetch = options_.enable_io_prefetch;
  io.prefetch_memory_budget = options_.prefetch_memory_budget;
  io.retry.cancel = options_.cancel;
  TOPK_ASSIGN_OR_RETURN(
      spill_, SpillManager::Create(options_.env, options_.spill_dir, io));
  RunGeneratorOptions gen_options;
  gen_options.memory_limit_bytes = options_.memory_limit_bytes;
  gen_options.cancel = options_.cancel;
  if (options_.run_generation == RunGenerationKind::kReplacementSelection) {
    generator_ = std::make_unique<ReplacementSelectionRunGenerator>(
        spill_.get(), comparator_, gen_options);
  } else {
    generator_ = std::make_unique<QuicksortRunGenerator>(
        spill_.get(), comparator_, gen_options);
  }
  for (Row& row : buffer_) {
    TOPK_RETURN_NOT_OK(generator_->Add(std::move(row)));
  }
  buffer_.clear();
  buffer_.shrink_to_fit();
  buffered_bytes_ = 0;
  return Status::OK();
}

Status ExternalSorter::Add(Row row) {
  if (finished_) {
    return Status::FailedPrecondition("Add after Sort");
  }
  if (options_.cancel != nullptr && options_.cancel->ShouldStop()) {
    return options_.cancel->status();
  }
  ObsScope obs_scope(options_.obs);
  ++rows_added_;
  if (generator_ != nullptr) {
    return generator_->Add(std::move(row));
  }
  const size_t cost = row.MemoryFootprint() + kPerRowOverheadBytes;
  if (buffered_bytes_ + cost <= options_.memory_limit_bytes) {
    buffered_bytes_ += cost;
    buffer_.push_back(std::move(row));
    return Status::OK();
  }
  TOPK_RETURN_NOT_OK(SwitchToExternal());
  return generator_->Add(std::move(row));
}

Status ExternalSorter::Sort(const RowSink& sink) {
  if (finished_) {
    return Status::FailedPrecondition("Sort called twice");
  }
  ObsScope obs_scope(options_.obs);
  finished_ = true;
  if (options_.cancel != nullptr && options_.cancel->ShouldStop()) {
    return options_.cancel->status();
  }
  if (generator_ == nullptr) {
    std::sort(buffer_.begin(), buffer_.end(), comparator_);
    for (Row& row : buffer_) {
      TOPK_RETURN_NOT_OK(sink(std::move(row)));
    }
    buffer_.clear();
    return Status::OK();
  }
  {
    PhaseScope flush_phase("rungen.flush");
    TraceSpan flush_span("rungen.flush", "sort");
    TOPK_RETURN_NOT_OK(generator_->Flush());
  }
  MergePlannerOptions planner_options;
  planner_options.fan_in = options_.merge_fan_in;
  planner_options.policy = MergePolicy::kSmallestRunsFirst;
  planner_options.cancel = options_.cancel;
  std::vector<RunMeta> final_runs;
  TOPK_ASSIGN_OR_RETURN(
      final_runs,
      ReduceRunsForFinalMerge(spill_.get(), comparator_, planner_options));
  MergeStats merge_stats;
  {
    PhaseScope merge_phase("merge.final");
    MergeOptions merge_options;
    merge_options.cancel = options_.cancel;
    TOPK_ASSIGN_OR_RETURN(merge_stats,
                          MergeRuns(spill_.get(), final_runs, comparator_,
                                    merge_options, sink));
  }
  return Status::OK();
}

Result<std::vector<Row>> ExternalSorter::SortToVector() {
  std::vector<Row> out;
  out.reserve(rows_added_);
  TOPK_RETURN_NOT_OK(Sort([&](Row&& row) {
    out.push_back(std::move(row));
    return Status::OK();
  }));
  return out;
}

}  // namespace topk
