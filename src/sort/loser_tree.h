#ifndef TOPK_SORT_LOSER_TREE_H_
#define TOPK_SORT_LOSER_TREE_H_

#include <cstddef>
#include <functional>
#include <vector>

namespace topk {

/// Classic tree-of-losers selection tree over `ways` input ways, the
/// workhorse of external merge sort (Knuth Vol. 3). The tree stores loser
/// indices in internal nodes and the overall winner at the root; replacing
/// the winner costs one leaf-to-root path of comparisons (log2(ways)), not
/// the 2*log2 of a binary heap.
///
/// The tree does not know what the ways hold: the owner supplies a
/// comparison over way indices. Exhausted ways must compare as losing to
/// every non-exhausted way (the owner encodes the "infinity sentinel").
class LoserTree {
 public:
  /// `less(a, b)` returns true when way `a`'s current item sorts strictly
  /// before way `b`'s. Must be a total preorder; ties may be broken by way
  /// index for stability.
  using LessFn = std::function<bool(size_t, size_t)>;

  LoserTree(size_t ways, LessFn less);

  /// (Re)builds the tree from the ways' current items. O(ways) comparisons.
  void Build();

  /// Index of the winning way.
  size_t winner() const { return winner_; }

  /// Call after the winner's way advanced to its next item (or became
  /// exhausted): replays the winner's path. O(log ways).
  void ReplayWinner();

  size_t ways() const { return ways_; }

 private:
  size_t ways_;
  LessFn less_;
  /// tree_[1..ways_-1] hold loser way indices; tree_[0] unused.
  std::vector<size_t> tree_;
  size_t winner_ = 0;
};

}  // namespace topk

#endif  // TOPK_SORT_LOSER_TREE_H_
