#ifndef TOPK_SORT_REPLACEMENT_SELECTION_H_
#define TOPK_SORT_REPLACEMENT_SELECTION_H_

#include <memory>
#include <queue>
#include <vector>

#include "sort/run_generation.h"

namespace topk {

/// Replacement-selection run generation (Knuth Vol. 3; used by the paper's
/// production implementation, Sec 5.1.2). Rows live in a selection heap;
/// when memory is full the smallest row is spilled to the current run.
/// Incoming rows that can still extend the current run (they sort at or
/// after the last spilled row) are tagged for it; smaller rows are deferred
/// to the next run. Run generation therefore never stalls the input
/// ("pipelined operation", Sec 2.1) and runs average twice the memory size
/// on random input.
///
/// Variable-size rows are supported: the memory budget is tracked in bytes,
/// so the number of buffered rows floats with row sizes.
///
/// Physical runs are additionally cut at `run_row_limit` rows (the top-k
/// "limit run size to k" optimization); a cut mid-sequence is safe because
/// rows of one logical run pop in sorted order, so any contiguous slice of
/// them is itself a sorted run.
class ReplacementSelectionRunGenerator : public RunGenerator {
 public:
  ReplacementSelectionRunGenerator(SpillManager* spill,
                                   const RowComparator& comparator,
                                   const RunGeneratorOptions& options);

  Status Add(Row row) override;
  Status Flush() override;
  void SetCancel(const CancellationToken* cancel) override {
    options_.cancel = cancel;
  }
  const RunGeneratorStats& stats() const override { return stats_; }

  /// Logical run sequence currently being written (for tests).
  uint64_t current_run_seq() const { return current_seq_; }

 private:
  struct Entry {
    uint64_t run_seq;
    /// The row's sort order, encoded once at Add time: every heap sift
    /// compares two integers instead of re-running RowComparator, and a
    /// NaN key takes its defined place instead of corrupting the heap
    /// invariant.
    NormalizedKey norm;
    Row row;
  };

  /// Orders the selection heap: smallest (run_seq, normalized key) on top.
  struct EntryGreater {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.run_seq != b.run_seq) return a.run_seq > b.run_seq;
      return b.norm < a.norm;
    }
  };

  /// Spills the heap minimum, honoring elimination, run boundaries, and the
  /// physical row limit.
  Status SpillOne();
  Status CloseRun();
  Status EnsureWriter();

  SpillManager* spill_;
  RowComparator comparator_;
  RunGeneratorOptions options_;
  RunGeneratorStats stats_;

  std::priority_queue<Entry, std::vector<Entry>, EntryGreater> heap_;
  size_t buffered_bytes_ = 0;
  /// Lease covering buffered_bytes_ (detached without an arbiter).
  MemoryLease lease_;

  uint64_t current_seq_ = 0;
  bool has_last_spilled_ = false;
  /// Normalized key of the last row written to the current logical run;
  /// the can-this-row-extend-the-run test is one integer compare.
  NormalizedKey last_spilled_norm_;

  std::unique_ptr<RunWriter> writer_;
  uint64_t rows_in_physical_run_ = 0;
};

}  // namespace topk

#endif  // TOPK_SORT_REPLACEMENT_SELECTION_H_
