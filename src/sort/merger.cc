#include "sort/merger.h"

#include <memory>

#include "obs/trace.h"
#include "sort/loser_tree.h"

namespace topk {

namespace {

/// One merge input: a run reader with a one-row lookahead buffer.
struct MergeWay {
  std::unique_ptr<RunReader> reader;
  Row current;
  bool exhausted = false;

  Status Advance(MergeStats* stats) {
    bool eof = false;
    TOPK_RETURN_NOT_OK(reader->Next(&current, &eof));
    if (eof) {
      exhausted = true;
      // Leave the shared prefetch budget immediately: the freed slots are
      // re-apportioned to the surviving ways, whose lookahead windows may
      // grow mid-step instead of waiting for the merge to finish.
      reader->CancelPrefetch();
    } else {
      ++stats->rows_read;
    }
    return Status::OK();
  }
};

/// Cancels every way's prefetch pipeline on scope exit — before the ways
/// (and their readers) are destroyed. A merge that stops early at k rows
/// or the cutoff leaves lookahead blocks in flight on most ways; cancel
/// marks them deliberately discarded (io.prefetch.blocks_cancelled) and
/// stops the pumps, so reader teardown waits at most one in-flight block
/// per run and the blocks_unconsumed overshoot signal stays clean.
struct PrefetchCancelGuard {
  std::vector<MergeWay>* ways;
  ~PrefetchCancelGuard() {
    for (MergeWay& way : *ways) {
      if (way.reader != nullptr) way.reader->CancelPrefetch();
    }
  }
};

}  // namespace

Result<MergeStats> MergeRuns(SpillManager* spill,
                             const std::vector<RunMeta>& runs,
                             const RowComparator& comparator,
                             const MergeOptions& options,
                             const RowSink& sink) {
  MergeStats stats;
  if (runs.empty()) {
    stats.exhausted_inputs = true;
    return stats;
  }
  TraceSpan span("merge.run", "sort", {TraceArg("ways", runs.size())});

  if (!options.seek_bytes.empty() &&
      options.seek_bytes.size() != runs.size()) {
    return Status::InvalidArgument(
        "seek_bytes must be parallel to the run list");
  }
  if (options.seek_rows_total > options.skip) {
    return Status::InvalidArgument("seek skips more rows than the offset");
  }

  // The planner passes the lookahead cap it apportioned at plan time;
  // direct callers (final merges, tests) derive it here from this merge's
  // actual width.
  const size_t depth_cap =
      options.prefetch_depth_cap != 0
          ? options.prefetch_depth_cap
          : ApportionPrefetchDepth(
                spill->io_options().prefetch_memory_budget, runs.size(),
                kDefaultBlockBytes);
  std::vector<MergeWay> ways(runs.size());
  PrefetchCancelGuard cancel_guard{&ways};
  for (size_t i = 0; i < runs.size(); ++i) {
    TOPK_ASSIGN_OR_RETURN(ways[i].reader, spill->OpenRun(runs[i], depth_cap));
    if (!options.seek_bytes.empty() && options.seek_bytes[i] > 0) {
      TOPK_RETURN_NOT_OK(ways[i].reader->SkipToByte(options.seek_bytes[i]));
    }
    TOPK_RETURN_NOT_OK(ways[i].Advance(&stats));
  }

  LoserTree tree(ways.size(), [&](size_t a, size_t b) {
    if (ways[a].exhausted) return false;
    if (ways[b].exhausted) return true;
    return comparator.Less(ways[a].current, ways[b].current);
  });
  tree.Build();

  // Rows already skipped via seeks count toward the offset.
  const uint64_t residual_skip = options.skip - options.seek_rows_total;
  stats.rows_skipped = options.seek_rows_total;
  const uint64_t kMax = std::numeric_limits<uint64_t>::max();
  const uint64_t target = (options.limit > kMax - residual_skip)
                              ? kMax
                              : residual_skip + options.limit;
  uint64_t produced = 0;  // skipped + emitted
  for (;;) {
    const size_t w = tree.winner();
    if (produced >= target) {
      // Limit reached; only key-ties of the last emitted row may follow.
      if (!options.with_ties || stats.rows_emitted == 0 ||
          ways[w].exhausted || ways[w].current.key != stats.last_key) {
        break;
      }
    }
    if (ways[w].exhausted) {
      stats.exhausted_inputs = true;
      break;
    }
    if (options.stop_filter != nullptr &&
        options.stop_filter->Eliminate(ways[w].current)) {
      // Every remaining row in every run sorts at or after this one.
      break;
    }
    Row row = std::move(ways[w].current);
    TOPK_RETURN_NOT_OK(ways[w].Advance(&stats));
    tree.ReplayWinner();

    ++produced;
    if (produced <= residual_skip) {
      ++stats.rows_skipped;
      continue;
    }
    stats.last_key = row.key;
    ++stats.rows_emitted;
    if (options.refine_filter != nullptr &&
        stats.rows_emitted + stats.rows_skipped ==
            options.refine_filter->k()) {
      options.refine_filter->ProposeCutoff(row.key);
    }
    TOPK_RETURN_NOT_OK(sink(std::move(row)));
  }
  if (!stats.exhausted_inputs) {
    // Check whether we happened to stop exactly at the end of all inputs.
    bool all_done = true;
    for (const MergeWay& way : ways) {
      if (!way.exhausted) {
        all_done = false;
        break;
      }
    }
    stats.exhausted_inputs = all_done;
  }
  return stats;
}

}  // namespace topk
