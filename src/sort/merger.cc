#include "sort/merger.h"

#include <memory>

#include "obs/metrics.h"
#include "obs/obs_context.h"
#include "obs/trace.h"
#include "sort/loser_tree.h"

namespace topk {

namespace {

/// One merge input: a run reader with a one-row lookahead buffer, plus the
/// row's normalized key and offset-value code (the OVC is relative to the
/// most recent row this way surrendered to the output — see
/// row/normalized_key.h for the coding rules).
struct MergeWay {
  std::unique_ptr<RunReader> reader;
  Row current;
  NormalizedKey norm;
  OffsetValueCode ovc = kOvcExhausted;
  bool exhausted = false;

  Status Advance(MergeStats* stats, SortDirection direction) {
    bool eof = false;
    TOPK_RETURN_NOT_OK(reader->Next(&current, &eof));
    if (eof) {
      exhausted = true;
      ovc = kOvcExhausted;
      // Leave the shared prefetch budget immediately: the freed slots are
      // re-apportioned to the surviving ways, whose lookahead windows may
      // grow mid-step instead of waiting for the merge to finish.
      reader->CancelPrefetch();
    } else {
      ++stats->rows_read;
      // The row this one replaces was just surrendered to the output (it is
      // the previous overall winner), so it is exactly the base the new
      // code must be relative to.
      const NormalizedKey base = norm;
      norm = current.normalized_key(direction);
      ovc = MakeOvcAgainstBase(norm, base);
    }
    return Status::OK();
  }

  /// First read of the run: the code is relative to the virtual
  /// sorts-before-everything base all ways start from.
  Status AdvanceFirst(MergeStats* stats, SortDirection direction) {
    bool eof = false;
    TOPK_RETURN_NOT_OK(reader->Next(&current, &eof));
    if (eof) {
      exhausted = true;
      ovc = kOvcExhausted;
      reader->CancelPrefetch();
    } else {
      ++stats->rows_read;
      norm = current.normalized_key(direction);
      ovc = MakeInitialOvc(norm);
    }
    return Status::OK();
  }
};

/// Cancels every way's prefetch pipeline on scope exit — before the ways
/// (and their readers) are destroyed. A merge that stops early at k rows
/// or the cutoff leaves lookahead blocks in flight on most ways; cancel
/// marks them deliberately discarded (io.prefetch.blocks_cancelled) and
/// stops the pumps, so reader teardown waits at most one in-flight block
/// per run and the blocks_unconsumed overshoot signal stays clean.
struct PrefetchCancelGuard {
  std::vector<MergeWay>* ways;
  ~PrefetchCancelGuard() {
    for (MergeWay& way : *ways) {
      if (way.reader != nullptr) way.reader->CancelPrefetch();
    }
  }
};

/// Tournament-comparison tallies, accumulated locally (the merge loop is
/// far too hot for a relaxed atomic per comparison) and published once per
/// merge step — globally and, when a per-query context is installed, to
/// that query's scoped registry.
struct CompareCounts {
  /// Full key comparisons performed (comparator or normalized-key bytes).
  uint64_t full = 0;
  /// Comparisons decided by the offset-value codes alone.
  uint64_t ovc_hits = 0;

  ~CompareCounts() {
    static ObsCounter count("sort.compare.count");
    static ObsCounter hits("sort.compare.ovc_hits");
    count.Add(full);
    hits.Add(ovc_hits);
  }
};

}  // namespace

Result<MergeStats> MergeRuns(SpillManager* spill,
                             const std::vector<RunMeta>& runs,
                             const RowComparator& comparator,
                             const MergeOptions& options,
                             const RowSink& sink) {
  MergeStats stats;
  if (runs.empty()) {
    stats.exhausted_inputs = true;
    return stats;
  }
  TraceSpan span("merge.run", "sort", {TraceArg("ways", runs.size())});
  const SortDirection direction = comparator.direction();

  if (!options.seek_bytes.empty() &&
      options.seek_bytes.size() != runs.size()) {
    return Status::InvalidArgument(
        "seek_bytes must be parallel to the run list");
  }
  if (options.seek_rows_total > options.skip) {
    return Status::InvalidArgument("seek skips more rows than the offset");
  }

  // The planner passes the lookahead cap it apportioned at plan time;
  // direct callers (final merges, tests) derive it here from this merge's
  // actual width.
  const size_t depth_cap =
      options.prefetch_depth_cap != 0
          ? options.prefetch_depth_cap
          : ApportionPrefetchDepth(
                spill->io_options().prefetch_memory_budget, runs.size(),
                kDefaultBlockBytes);
  std::vector<MergeWay> ways(runs.size());
  PrefetchCancelGuard cancel_guard{&ways};
  for (size_t i = 0; i < runs.size(); ++i) {
    TOPK_ASSIGN_OR_RETURN(ways[i].reader, spill->OpenRun(runs[i], depth_cap));
    if (!options.seek_bytes.empty() && options.seek_bytes[i] > 0) {
      TOPK_RETURN_NOT_OK(ways[i].reader->SkipToByte(options.seek_bytes[i]));
    }
    TOPK_RETURN_NOT_OK(ways[i].AdvanceFirst(&stats, direction));
  }

  CompareCounts compares;
  LoserTree::LessFn less;
  if (options.use_ovc) {
    // OVC fast path. Both contestants' codes are always relative to the
    // same base (initially the virtual start key, later the previous
    // overall winner — the loser tree preserves this, see
    // row/normalized_key.h), so differing codes decide the comparison
    // outright. Equal codes fall back to one normalized-key comparison,
    // after which the loser's code is recomputed relative to the winner —
    // the update that keeps every stored loser comparable on later
    // replays. Exhausted ways carry the sentinel code and lose to every
    // live way for free.
    less = [&ways, &compares](size_t a, size_t b) {
      MergeWay& wa = ways[a];
      MergeWay& wb = ways[b];
      if (wa.ovc != wb.ovc) {
        ++compares.ovc_hits;
        return wa.ovc < wb.ovc;
      }
      if (wa.exhausted) return false;  // both exhausted: order is moot
      ++compares.full;
      const size_t offset = wa.norm.FirstDifferingByte(wb.norm);
      if (offset >= 16) return false;  // identical (key, id): keep stable
      if (wa.norm.ByteAt(offset) < wb.norm.ByteAt(offset)) {
        wb.ovc = MakeOvc(offset, wb.norm.ByteAt(offset));
        return true;
      }
      wa.ovc = MakeOvc(offset, wa.norm.ByteAt(offset));
      return false;
    };
  } else {
    // Legacy path: every repair re-compares the full (key, id) pair through
    // RowComparator. Kept for the CI equivalence matrix and as the A/B
    // baseline; the ordering is identical, so output bytes are too.
    less = [&ways, &compares, &comparator](size_t a, size_t b) {
      if (ways[a].exhausted) return false;
      if (ways[b].exhausted) return true;
      ++compares.full;
      return comparator.Less(ways[a].current, ways[b].current);
    };
  }
  LoserTree tree(ways.size(), std::move(less));
  tree.Build();

  // Rows already skipped via seeks count toward the offset.
  const uint64_t residual_skip = options.skip - options.seek_rows_total;
  stats.rows_skipped = options.seek_rows_total;
  const uint64_t kMax = std::numeric_limits<uint64_t>::max();
  const uint64_t target = (options.limit > kMax - residual_skip)
                              ? kMax
                              : residual_skip + options.limit;
  uint64_t produced = 0;  // skipped + emitted
  uint64_t last_key_norm = 0;
  for (;;) {
    // One relaxed load per merged row: a cancelled query's merge unwinds
    // within a single row step, and the PrefetchCancelGuard above cancels
    // every way's in-flight prefetch on the way out.
    TOPK_RETURN_IF_CANCELLED(options.cancel);
    const size_t w = tree.winner();
    if (produced >= target) {
      // Limit reached; only key-ties of the last emitted row may follow.
      // Tie detection runs on the normalized key word, so NaN and ±0.0
      // boundary keys tie exactly as they order.
      if (!options.with_ties || stats.rows_emitted == 0 ||
          ways[w].exhausted || ways[w].norm.key_word != last_key_norm) {
        break;
      }
    }
    if (ways[w].exhausted) {
      stats.exhausted_inputs = true;
      break;
    }
    if (options.stop_filter != nullptr &&
        options.stop_filter->EliminateNormalizedKey(ways[w].norm.key_word)) {
      // Every remaining row in every run sorts at or after this one.
      break;
    }
    Row row = std::move(ways[w].current);
    const uint64_t row_key_norm = ways[w].norm.key_word;
    TOPK_RETURN_NOT_OK(ways[w].Advance(&stats, direction));
    tree.ReplayWinner();

    ++produced;
    if (produced <= residual_skip) {
      ++stats.rows_skipped;
      continue;
    }
    stats.last_key = row.key;
    last_key_norm = row_key_norm;
    ++stats.rows_emitted;
    if (options.refine_filter != nullptr &&
        stats.rows_emitted + stats.rows_skipped ==
            options.refine_filter->k()) {
      options.refine_filter->ProposeCutoff(row.key);
    }
    TOPK_RETURN_NOT_OK(sink(std::move(row)));
  }
  if (!stats.exhausted_inputs) {
    // Check whether we happened to stop exactly at the end of all inputs.
    bool all_done = true;
    for (const MergeWay& way : ways) {
      if (!way.exhausted) {
        all_done = false;
        break;
      }
    }
    stats.exhausted_inputs = all_done;
  }
  return stats;
}

}  // namespace topk
