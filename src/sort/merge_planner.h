#ifndef TOPK_SORT_MERGE_PLANNER_H_
#define TOPK_SORT_MERGE_PLANNER_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "common/result.h"
#include "histogram/cutoff_filter.h"
#include "io/spill_manager.h"
#include "row/row.h"

namespace topk {

/// Which runs an intermediate merge step consumes first.
enum class MergePolicy {
  /// Classic external sort: merge the smallest remaining runs, minimizing
  /// the work to reduce the run count.
  kSmallestRunsFirst,
  /// Top-k aware (Sec 4.1): "each merge step should choose the runs with
  /// the lowest keys, i.e., the runs produced most recently" — their rows
  /// are the likeliest to reach the output, and merging them sharpens the
  /// cutoff the most.
  kLowestKeysFirst,
};

struct MergePlannerOptions {
  /// Maximum runs merged in one step.
  size_t fan_in = 64;
  MergePolicy policy = MergePolicy::kLowestKeysFirst;
  /// Rows an intermediate run needs at most (k + offset for a top-k: a
  /// sorted intermediate never contributes beyond its first k+offset rows).
  uint64_t intermediate_limit = std::numeric_limits<uint64_t>::max();
  /// When set, intermediate merges stop at this filter's cutoff and propose
  /// their (k)th key back to it.
  CutoffFilter* filter = nullptr;
  /// WITH TIES queries: intermediate runs must keep key-ties of their
  /// limit-th row or the final merge could lose tied output rows.
  bool with_ties = false;
  /// Offset-value coding on each intermediate step's loser tree (see
  /// MergeOptions::use_ovc).
  bool use_ovc = DefaultOvcEnabled();
  /// Optional query cancellation token: polled before each intermediate
  /// step and per-row inside it (forwarded to MergeOptions::cancel). A
  /// completed step is durable before the next poll, so cancellation
  /// never strands a half-committed step. Not owned.
  const CancellationToken* cancel = nullptr;
};

struct MergePlanStats {
  uint64_t intermediate_steps = 0;
  uint64_t intermediate_rows_written = 0;
  uint64_t intermediate_rows_read = 0;
};

/// Reduces the SpillManager's registered runs to at most `fan_in` by
/// executing intermediate merge steps (consumed runs are deleted, each step
/// registers its output run). Returns the surviving runs, ready for a final
/// merge. Statistics about performed steps are added to `*stats` when
/// non-null.
Result<std::vector<RunMeta>> ReduceRunsForFinalMerge(
    SpillManager* spill, const RowComparator& comparator,
    const MergePlannerOptions& options, MergePlanStats* stats = nullptr);

/// Orders runs by the chosen policy; exposed for tests.
void OrderRunsForMerge(std::vector<RunMeta>* runs,
                       const RowComparator& comparator, MergePolicy policy);

}  // namespace topk

#endif  // TOPK_SORT_MERGE_PLANNER_H_
