#include "sort/loser_tree.h"

#include "common/logging.h"

namespace topk {

LoserTree::LoserTree(size_t ways, LessFn less)
    : ways_(ways), less_(std::move(less)) {
  TOPK_CHECK(ways_ > 0) << "loser tree needs at least one way";
  tree_.assign(ways_ < 2 ? 1 : ways_, 0);
}

void LoserTree::Build() {
  if (ways_ == 1) {
    winner_ = 0;
    return;
  }
  // Bottom-up build: run a knockout tournament. Node i has children that
  // are either leaves (way indices) or other internal nodes' winners.
  // We compute winners for all internal nodes, storing losers in tree_.
  std::vector<size_t> winners(2 * ways_);
  for (size_t i = 0; i < ways_; ++i) winners[ways_ + i] = i;
  for (size_t node = ways_ - 1; node >= 1; --node) {
    const size_t a = winners[2 * node];
    const size_t b = winners[2 * node + 1];
    if (less_(b, a)) {
      winners[node] = b;
      tree_[node] = a;
    } else {
      winners[node] = a;
      tree_[node] = b;
    }
  }
  winner_ = winners[1];
}

void LoserTree::ReplayWinner() {
  if (ways_ == 1) return;
  size_t node = (ways_ + winner_) / 2;
  size_t current = winner_;
  while (node >= 1) {
    const size_t opponent = tree_[node];
    if (less_(opponent, current)) {
      tree_[node] = current;
      current = opponent;
    }
    node /= 2;
  }
  winner_ = current;
}

}  // namespace topk
