#include "sort/replacement_selection.h"

#include <algorithm>

#include "obs/obs_context.h"
#include "obs/trace.h"
#include "row/serialization.h"

namespace topk {

namespace {
/// Spills forced by arbiter soft pressure before the generator's own
/// memory limit was reached — the degradation ladder's run-generation rung.
ObsCounter& EarlySpillsCounter() {
  static ObsCounter counter("mem.arbiter.early_spills");
  return counter;
}
}  // namespace

ReplacementSelectionRunGenerator::ReplacementSelectionRunGenerator(
    SpillManager* spill, const RowComparator& comparator,
    const RunGeneratorOptions& options)
    : spill_(spill),
      comparator_(comparator),
      options_(options),
      heap_(EntryGreater{}) {}

Status ReplacementSelectionRunGenerator::Add(Row row) {
  TOPK_RETURN_NOT_OK(ValidateRowPayload(row));
  const NormalizedKey norm = row.normalized_key(comparator_.direction());
  uint64_t seq = current_seq_;
  if (has_last_spilled_ && norm < last_spilled_norm_) {
    // Too small to extend the current run in sorted order: defer.
    seq = current_seq_ + 1;
  }
  const size_t cost = row.MemoryFootprint() + kPerRowOverheadBytes;
  buffered_bytes_ += cost;
  if (options_.arbiter != nullptr && !lease_.attached()) {
    TOPK_ASSIGN_OR_RETURN(lease_,
                          options_.arbiter->Acquire("run-generation", 0));
  }
  TOPK_RETURN_NOT_OK(lease_.EnsureAtLeast(buffered_bytes_));
  heap_.push(Entry{seq, norm, std::move(row)});
  ++stats_.rows_added;
  stats_.rows_in_memory = heap_.size();
  stats_.peak_memory_bytes =
      std::max(stats_.peak_memory_bytes, buffered_bytes_);
  // Under arbiter soft pressure the selection heap drains at half its
  // configured budget: runs get shorter, but buffered bytes flow to disk
  // while the process still has headroom (the early-spill rung of the
  // degradation ladder).
  size_t effective_limit = options_.memory_limit_bytes;
  if (options_.arbiter != nullptr &&
      options_.arbiter->pressure() >= MemoryPressure::kSoft) {
    effective_limit = std::max<size_t>(1, effective_limit / 2);
  }
  bool early = false;
  while (buffered_bytes_ > effective_limit && heap_.size() > 1) {
    TOPK_RETURN_IF_CANCELLED(options_.cancel);
    if (!early && buffered_bytes_ <= options_.memory_limit_bytes) {
      early = true;
      EarlySpillsCounter().Add(1);
    }
    TOPK_RETURN_NOT_OK(SpillOne());
  }
  lease_.ShrinkTo(buffered_bytes_);
  stats_.rows_in_memory = heap_.size();
  return Status::OK();
}

Status ReplacementSelectionRunGenerator::SpillOne() {
  Entry entry = heap_.top();
  heap_.pop();
  buffered_bytes_ -= entry.row.MemoryFootprint() + kPerRowOverheadBytes;

  if (entry.run_seq != current_seq_) {
    // The current logical run is exhausted; start the next one.
    TOPK_RETURN_NOT_OK(CloseRun());
    current_seq_ = entry.run_seq;
    has_last_spilled_ = false;
  }

  if (options_.observer != nullptr &&
      options_.observer->EliminateAtSpill(entry.row)) {
    ++stats_.rows_eliminated_at_spill;
    return Status::OK();
  }

  if (writer_ != nullptr && rows_in_physical_run_ >= options_.run_row_limit) {
    TOPK_RETURN_NOT_OK(CloseRun());
  }
  TOPK_RETURN_NOT_OK(EnsureWriter());
  TOPK_RETURN_NOT_OK(writer_->Append(entry.row));
  if (options_.observer != nullptr) {
    options_.observer->OnRowSpilled(entry.row);
  }
  ++stats_.rows_spilled;
  ++rows_in_physical_run_;
  last_spilled_norm_ = entry.norm;
  has_last_spilled_ = true;
  return Status::OK();
}

Status ReplacementSelectionRunGenerator::EnsureWriter() {
  if (writer_ == nullptr) {
    TOPK_ASSIGN_OR_RETURN(
        writer_, spill_->NewRun(comparator_, options_.run_index_stride));
    rows_in_physical_run_ = 0;
  }
  return Status::OK();
}

Status ReplacementSelectionRunGenerator::CloseRun() {
  std::vector<HistogramBucket> histogram;
  if (options_.observer != nullptr) {
    histogram = options_.observer->OnRunFinished();
  }
  if (writer_ == nullptr) return Status::OK();
  TraceSpan span("rungen.close_run", "sort",
                 {TraceArg("rows", rows_in_physical_run_)});
  RunMeta meta;
  TOPK_ASSIGN_OR_RETURN(meta, writer_->Finish());
  meta.histogram = std::move(histogram);
  TOPK_RETURN_NOT_OK(spill_->AddRun(std::move(meta)));
  writer_.reset();
  rows_in_physical_run_ = 0;
  return Status::OK();
}

Status ReplacementSelectionRunGenerator::Flush() {
  while (!heap_.empty()) {
    TOPK_RETURN_IF_CANCELLED(options_.cancel);
    TOPK_RETURN_NOT_OK(SpillOne());
  }
  TOPK_RETURN_NOT_OK(CloseRun());
  buffered_bytes_ = 0;
  lease_.Release();
  stats_.rows_in_memory = 0;
  return Status::OK();
}

}  // namespace topk
