#ifndef TOPK_HISTOGRAM_BUCKET_H_
#define TOPK_HISTOGRAM_BUCKET_H_

#include <cstdint>

namespace topk {

/// One histogram bucket (Sec 3.1.2): `count` rows whose keys all sort at or
/// before `boundary` (in the query direction) and after the previous
/// bucket's boundary within the same run. Buckets from all runs are combined
/// in the cutoff filter's priority queue; together they are the concise
/// model of the input.
struct HistogramBucket {
  /// The maximum (for ascending queries) key among the rows this bucket
  /// represents.
  double boundary = 0.0;
  /// Number of spilled rows the bucket represents. Variable per bucket: the
  /// sizing policy decides it (Sec 3.1.2 "the size of each bucket is
  /// variable").
  uint64_t count = 0;

  bool operator==(const HistogramBucket& other) const {
    return boundary == other.boundary && count == other.count;
  }
};

}  // namespace topk

#endif  // TOPK_HISTOGRAM_BUCKET_H_
