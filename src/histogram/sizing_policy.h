#ifndef TOPK_HISTOGRAM_SIZING_POLICY_H_
#define TOPK_HISTOGRAM_SIZING_POLICY_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "histogram/bucket.h"

namespace topk {

/// Decides how many rows each histogram bucket represents. With a target of
/// B buckets for a run of R rows, a bucket closes every
/// max(1, round(R / (B + 1))) spilled rows. The divisor B+1 reproduces the
/// paper's two anchor policies exactly:
///   * B = 1 tracks the run's median key with a bucket of R/2 rows
///     ("only one bucket ... which has the median key as a boundary key",
///     Sec 3.2.2);
///   * B = 9 tracks the run's deciles 10%..90% with buckets of R/10 rows
///     (the Table 1 configuration).
/// A partial tail segment produces no bucket: the filter's guarantee only
/// needs lower bounds on how many rows sort at-or-before each boundary.
class BucketSizingPolicy {
 public:
  /// `target_buckets` == 0 disables histogram collection entirely (the
  /// Table 2 "#Buckets = 0" configuration: no cutoff is ever established).
  BucketSizingPolicy(uint64_t target_buckets, uint64_t target_run_rows);

  /// Rows per bucket for the configured targets; 0 when disabled.
  uint64_t rows_per_bucket() const { return rows_per_bucket_; }

  uint64_t target_buckets() const { return target_buckets_; }

 private:
  uint64_t target_buckets_;
  uint64_t rows_per_bucket_;
};

/// Accumulates the spilled rows of one run into histogram buckets according
/// to a sizing policy. Reset per run.
class RunHistogramBuilder {
 public:
  explicit RunHistogramBuilder(const BucketSizingPolicy& policy);

  /// Accounts one spilled row (keys arrive in run order). Returns the bucket
  /// that this row closed, if any. At most `target_buckets` buckets are
  /// produced per run; further rows fall into the (discarded) tail — with
  /// B=1 this tracks exactly the run's median, with B=9 the deciles
  /// 10%..90%, matching the paper's anchor policies.
  std::optional<HistogramBucket> AddSpilledRow(double key);

  /// Ends the current run: the in-progress partial bucket is discarded and
  /// the builder is ready for the next run. Returns the buckets collected
  /// from the finished run (also suitable for RunMeta::histogram).
  std::vector<HistogramBucket> FinishRun();

  /// Doubles the bucket width (adaptive sizing under memory pressure:
  /// fewer, coarser buckets so a bounded queue can still prove k rows).
  void CoarsenWidth();

  uint64_t rows_in_current_bucket() const { return rows_in_bucket_; }
  uint64_t rows_per_bucket() const { return rows_per_bucket_; }

 private:
  BucketSizingPolicy policy_;
  uint64_t rows_per_bucket_;
  uint64_t rows_in_bucket_ = 0;
  std::vector<HistogramBucket> run_buckets_;
};

}  // namespace topk

#endif  // TOPK_HISTOGRAM_SIZING_POLICY_H_
