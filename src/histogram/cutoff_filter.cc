#include "histogram/cutoff_filter.h"

#include <algorithm>

#include "common/logging.h"

namespace topk {

CutoffFilter::CutoffFilter(const Options& options)
    : k_(options.k),
      comparator_(options.direction),
      memory_limit_bytes_(options.memory_limit_bytes),
      consolidation_(options.consolidation),
      policy_(options.target_buckets_per_run, options.target_run_rows),
      builder_(policy_),
      queue_(BucketWorse{}),
      on_cutoff_change_(options.on_cutoff_change) {
  TOPK_CHECK(options.k > 0) << "cutoff filter requires k > 0";
}

void CutoffFilter::NotifyCutoffChange(bool tightened, bool proposed) const {
  if (!on_cutoff_change_) return;
  CutoffUpdate update;
  update.cutoff = cutoff_;
  update.tightened = tightened;
  update.proposed = proposed;
  update.tracked_rows = tracked_rows_;
  update.bucket_count = queue_.size();
  update.buckets_inserted = buckets_inserted_;
  update.consolidations = consolidations_;
  on_cutoff_change_(update);
}

void CutoffFilter::RowSpilled(double key) {
  std::optional<HistogramBucket> bucket = builder_.AddSpilledRow(key);
  if (bucket.has_value()) {
    InsertBucket(*bucket);
  }
}

std::vector<HistogramBucket> CutoffFilter::RunFinished() {
  return builder_.FinishRun();
}

void CutoffFilter::InsertBucket(HistogramBucket bucket) {
  if (bucket.count == 0) return;
  const uint64_t norm =
      NormalizeDoubleKey(bucket.boundary, comparator_.direction());
  // A bucket entirely beyond the cutoff proves nothing new and would only
  // be popped again; skip it (keeps the queue small on adversarial inputs).
  if (has_cutoff_ && norm > cutoff_norm_) {
    return;
  }
  queue_.push(NormBucket{norm, bucket.boundary, bucket.count});
  tracked_rows_ += bucket.count;
  ++buckets_inserted_;
  Refine();
  MaybeConsolidate();
}

void CutoffFilter::Refine() {
  if (tracked_rows_ < k_) return;
  // Established: the top boundary is a valid cutoff. Sharpen while the
  // model still proves k rows without the top bucket.
  while (!queue_.empty() && tracked_rows_ - queue_.top().count >= k_) {
    tracked_rows_ -= queue_.top().count;
    queue_.pop();
    ++buckets_popped_;
  }
  TOPK_DCHECK(!queue_.empty());
  const NormBucket& top = queue_.top();
  if (!has_cutoff_ || top.norm_boundary < cutoff_norm_) {
    SetCutoff(top.norm_boundary, top.boundary, /*proposed=*/false);
  }
}

void CutoffFilter::ProposeCutoff(double key) {
  const uint64_t norm = NormalizeDoubleKey(key, comparator_.direction());
  if (!has_cutoff_ || norm < cutoff_norm_) {
    SetCutoff(norm, key, /*proposed=*/true);
  }
}

void CutoffFilter::SetCutoff(uint64_t norm, double key, bool proposed) {
  const bool tightened = has_cutoff_;
  has_cutoff_ = true;
  cutoff_ = key;
  cutoff_norm_ = norm;
  NotifyCutoffChange(tightened, proposed);
}

size_t CutoffFilter::BucketBytes() { return sizeof(NormBucket); }

size_t CutoffFilter::memory_bytes() const {
  return queue_.size() * sizeof(NormBucket);
}

void CutoffFilter::MaybeConsolidate() {
  if (memory_bytes() <= memory_limit_bytes_) return;
  ++consolidations_;
  if (consolidation_ == ConsolidationPolicy::kFull) {
    // Replace every bucket with a single one: boundary = current top
    // boundary, count = sum of all counts (Sec 5.1.2). Guarantee
    // preserved: all tracked rows sort at or before the top boundary.
    const NormBucket top = queue_.top();
    const uint64_t total = tracked_rows_;
    while (!queue_.empty()) queue_.pop();
    queue_.push(NormBucket{top.norm_boundary, top.boundary, total});
    return;
  }
  // kAdaptive: pop the worst-boundary half and merge it into one bucket.
  // The merged bucket keeps the worst popped boundary, so every merged row
  // still sorts at or before it. Also coarsen the bucket width: with a
  // bounded queue the *unmerged* buckets must eventually represent k rows
  // for anything to be poppable, which needs width >= ~k / queue capacity.
  //
  // One half-merge may not reach the budget (e.g. a tiny budget where
  // size/2 rounds down to 1), so repeat until the post-condition
  // memory_bytes() <= memory_limit_bytes_ holds or a single bucket
  // remains — a bounded queue must stay bounded, not merely shrink once.
  while (memory_bytes() > memory_limit_bytes_ && queue_.size() > 1) {
    builder_.CoarsenWidth();
    const size_t to_merge =
        std::min(queue_.size(), std::max<size_t>(queue_.size() / 2, 2));
    const NormBucket worst = queue_.top();
    uint64_t merged = 0;
    for (size_t i = 0; i < to_merge; ++i) {
      merged += queue_.top().count;
      queue_.pop();
    }
    queue_.push(NormBucket{worst.norm_boundary, worst.boundary, merged});
  }
}

}  // namespace topk
