#include "histogram/sizing_policy.h"

namespace topk {

BucketSizingPolicy::BucketSizingPolicy(uint64_t target_buckets,
                                       uint64_t target_run_rows)
    : target_buckets_(target_buckets) {
  if (target_buckets == 0 || target_run_rows == 0) {
    rows_per_bucket_ = 0;
    return;
  }
  // round(R / (B + 1)), at least one row per bucket.
  const uint64_t denom = target_buckets + 1;
  uint64_t width = (target_run_rows + denom / 2) / denom;
  if (width == 0) width = 1;
  rows_per_bucket_ = width;
}

RunHistogramBuilder::RunHistogramBuilder(const BucketSizingPolicy& policy)
    : policy_(policy), rows_per_bucket_(policy.rows_per_bucket()) {}

void RunHistogramBuilder::CoarsenWidth() {
  if (rows_per_bucket_ > 0) rows_per_bucket_ *= 2;
}

std::optional<HistogramBucket> RunHistogramBuilder::AddSpilledRow(
    double key) {
  if (rows_per_bucket_ == 0) return std::nullopt;
  if (run_buckets_.size() >= policy_.target_buckets()) return std::nullopt;
  ++rows_in_bucket_;
  if (rows_in_bucket_ < rows_per_bucket_) return std::nullopt;
  HistogramBucket bucket{key, rows_in_bucket_};
  rows_in_bucket_ = 0;
  run_buckets_.push_back(bucket);
  return bucket;
}

std::vector<HistogramBucket> RunHistogramBuilder::FinishRun() {
  rows_in_bucket_ = 0;
  std::vector<HistogramBucket> out;
  out.swap(run_buckets_);
  return out;
}

}  // namespace topk
