#ifndef TOPK_HISTOGRAM_CUTOFF_FILTER_H_
#define TOPK_HISTOGRAM_CUTOFF_FILTER_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <vector>

#include "histogram/bucket.h"
#include "histogram/sizing_policy.h"
#include "row/row.h"

namespace topk {

/// The paper's core contribution (Sec 3.1.2): a concise model of the input
/// built from per-run histograms, from which a cutoff key is derived and
/// continuously sharpened while runs are still being written.
///
/// Mechanics (ascending query; descending is symmetric):
///  * As rows are spilled to a run, the sizing policy closes buckets
///    (boundary key, row count) which are pushed into a priority queue
///    ordered by boundary *descending* — the inverse of the query order.
///  * A cutoff key exists once the bucket counts in the queue sum to >= k:
///    the buckets then prove that at least k rows sort at or before the
///    queue's top boundary, so any row strictly beyond it cannot be in the
///    output. The cutoff is that top boundary.
///  * After every insertion the filter pops while `sum - top.count >= k`,
///    which sharpens the cutoff to the next smaller boundary.
///  * Because buckets are inserted while the current run is still being
///    written, the sharpened cutoff can truncate the very run that produced
///    it.
///
/// Memory is bounded (Sec 5.1.2): when the queue exceeds its budget, a
/// consolidation step replaces all buckets with a single bucket whose
/// boundary is the current top boundary and whose count is the sum — the
/// cost of one insertion, and the filter's guarantee is preserved.
class CutoffFilter {
 public:
  /// What happens when the bucket queue exceeds its memory budget.
  enum class ConsolidationPolicy {
    /// The paper's policy (Sec 5.1.2): replace every bucket with a single
    /// one. Simple, but if the merged count dominates the queue the big
    /// bucket can never be popped (popping needs the *other* buckets to
    /// prove k rows), freezing the cutoff when the budget is far below
    /// k-rows-worth of buckets.
    kFull,
    /// Merge only the worst half of the queue into one bucket AND double
    /// the bucket width for future runs (the paper's "sizing policy
    /// determines the new buckets" adaptively). The sharp low-boundary
    /// buckets survive, and coarser future buckets let a bounded queue
    /// still accumulate k provable rows, so the cutoff keeps refining
    /// under tiny budgets (see bench/ablation_consolidation). Same
    /// validity argument as kFull.
    kAdaptive,
  };

  /// Passed to Options::on_cutoff_change every time the cutoff key moves
  /// (establishment or tightening). Drives the cutoff-evolution timeline in
  /// traces; all fields are the filter's own state — callers layer on
  /// operator context (rows consumed, pass rate) themselves.
  struct CutoffUpdate {
    double cutoff = 0.0;
    /// False for the very first cutoff, true for every sharpening after.
    bool tightened = false;
    /// True when the new value came from ProposeCutoff (merge output)
    /// rather than histogram refinement.
    bool proposed = false;
    uint64_t tracked_rows = 0;
    size_t bucket_count = 0;
    uint64_t buckets_inserted = 0;
    uint64_t consolidations = 0;
  };

  struct Options {
    /// Requested output size (LIMIT k plus any OFFSET).
    uint64_t k = 0;
    SortDirection direction = SortDirection::kAscending;
    /// Target histogram buckets collected per run (paper default: 50).
    /// 0 disables filtering entirely.
    uint64_t target_buckets_per_run = 50;
    /// Expected run size in rows, used to derive the bucket width.
    uint64_t target_run_rows = 0;
    /// Memory budget for the bucket priority queue (paper default: 1 MB).
    size_t memory_limit_bytes = 1 << 20;
    ConsolidationPolicy consolidation = ConsolidationPolicy::kFull;
    /// Invoked (synchronously, on the mutating thread) whenever the cutoff
    /// is established or sharpened. Must be cheap and must not reenter the
    /// filter.
    std::function<void(const CutoffUpdate&)> on_cutoff_change;
  };

  explicit CutoffFilter(const Options& options);

  /// True when `row` provably cannot be in the top-k output. Always false
  /// until a cutoff key is established. Rows whose key equals the cutoff are
  /// never eliminated (ties with the kth key may be needed). The cutoff is
  /// held in normalized form (row/normalized_key.h), so a probe is one
  /// integer compare — and NaN / -0.0 keys order exactly as they sort.
  bool Eliminate(const Row& row) const { return EliminateKey(row.key); }
  bool EliminateKey(double key) const {
    return has_cutoff_ &&
           NormalizeDoubleKey(key, comparator_.direction()) > cutoff_norm_;
  }
  /// Probe with an already-normalized key (the merge loop carries one per
  /// way); must be encoded with this filter's direction.
  bool EliminateNormalizedKey(uint64_t key_norm) const {
    return has_cutoff_ && key_norm > cutoff_norm_;
  }

  /// Accounts a row that was written to the current run (Algorithm 1's
  /// rowSpilled). May close a bucket, insert it into the model, and sharpen
  /// the cutoff.
  void RowSpilled(double key);

  /// Marks the end of the current run; returns the histogram collected from
  /// it (for RunMeta). The partial tail bucket is discarded.
  std::vector<HistogramBucket> RunFinished();

  /// Inserts an externally produced bucket (merge-step refinement, Sec 4.1,
  /// or a peer's buckets in parallel execution, Sec 4.4).
  void InsertBucket(HistogramBucket bucket);

  /// Directly proposes a cutoff candidate known to be valid (e.g. the kth
  /// key of a merge output). Adopted only if sharper than the current one.
  void ProposeCutoff(double key);

  /// The current cutoff key, if established.
  std::optional<double> cutoff() const {
    if (!has_cutoff_) return std::nullopt;
    return cutoff_;
  }

  // --- introspection (tests, stats, benchmarks) ---
  /// Bytes the model charges per tracked bucket — the unit to use when
  /// sizing memory_limit_bytes as "N buckets". Larger than the persisted
  /// HistogramBucket: the in-memory form also carries the pre-normalized
  /// boundary.
  static size_t BucketBytes();
  uint64_t k() const { return k_; }
  size_t bucket_count() const { return queue_.size(); }
  /// Sum of bucket counts currently in the model.
  uint64_t tracked_rows() const { return tracked_rows_; }
  uint64_t consolidations() const { return consolidations_; }
  uint64_t buckets_inserted() const { return buckets_inserted_; }
  uint64_t buckets_popped() const { return buckets_popped_; }
  size_t memory_bytes() const;
  const RowComparator& comparator() const { return comparator_; }

 private:
  /// A bucket as stored in the model: the boundary is pre-encoded into its
  /// normalized form, so every queue reorder and every refinement compare
  /// is one integer compare (the double is retained for RunMeta histograms
  /// and stats — persistence stays in doubles). Ordering is decided once,
  /// at insert time; a NaN boundary takes the defined last-in-direction
  /// slot instead of breaking the priority queue's invariants.
  struct NormBucket {
    uint64_t norm_boundary = 0;
    double boundary = 0.0;
    uint64_t count = 0;
  };

  /// Pops buckets while the model still proves k rows without the top
  /// bucket; updates the cutoff.
  void Refine();
  void MaybeConsolidate();
  void SetCutoff(uint64_t norm, double key, bool proposed);
  /// Fires on_cutoff_change after the cutoff moved.
  void NotifyCutoffChange(bool tightened, bool proposed) const;

  /// Orders the priority queue inversely to the query direction: the top
  /// bucket carries the *worst* boundary (largest normalized value — for
  /// ascending queries, the largest key).
  struct BucketWorse {
    bool operator()(const NormBucket& a, const NormBucket& b) const {
      if (a.norm_boundary != b.norm_boundary) {
        return a.norm_boundary < b.norm_boundary;
      }
      return a.count < b.count;
    }
  };

  uint64_t k_;
  RowComparator comparator_;
  size_t memory_limit_bytes_;
  ConsolidationPolicy consolidation_;
  BucketSizingPolicy policy_;
  RunHistogramBuilder builder_;

  std::priority_queue<NormBucket, std::vector<NormBucket>, BucketWorse>
      queue_;
  uint64_t tracked_rows_ = 0;
  bool has_cutoff_ = false;
  double cutoff_ = 0.0;
  /// cutoff_ in normalized form (valid iff has_cutoff_); the hot probes
  /// compare against this.
  uint64_t cutoff_norm_ = 0;

  uint64_t consolidations_ = 0;
  uint64_t buckets_inserted_ = 0;
  uint64_t buckets_popped_ = 0;

  std::function<void(const CutoffUpdate&)> on_cutoff_change_;
};

}  // namespace topk

#endif  // TOPK_HISTOGRAM_CUTOFF_FILTER_H_
