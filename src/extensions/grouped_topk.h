#ifndef TOPK_EXTENSIONS_GROUPED_TOPK_H_
#define TOPK_EXTENSIONS_GROUPED_TOPK_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "topk/histogram_topk.h"
#include "topk/topk_operator.h"

namespace topk {

/// Top-k within disjoint groups (Sec 4.3), e.g. "the 10 million most active
/// customers from each country". The principal difficulty is bookkeeping:
/// every group tracks its own histogram priority queue and cutoff key. Each
/// group gets its own HistogramTopK instance; sizing decisions (bucket
/// width, consolidation) are made independently per group, as the paper
/// prescribes for groups with few rows per run.
class GroupedTopK {
 public:
  struct Options {
    /// Per-group query shape and resources. memory_limit_bytes is the
    /// budget for EACH group's operator; spill directories are derived per
    /// group from spill_dir.
    TopKOptions per_group;
    /// Smaller histograms for grouped execution (paper: "Smaller histograms
    /// can reduce the size of the created input models"). Overrides
    /// per_group.histogram_buckets_per_run when non-zero.
    uint64_t grouped_buckets_per_run = 0;
  };

  struct GroupResult {
    uint64_t group = 0;
    std::vector<Row> rows;
  };

  static Result<std::unique_ptr<GroupedTopK>> Make(const Options& options);

  /// Routes `row` to its group's operator (created on first sight).
  Status Consume(uint64_t group, Row row);

  /// Finishes every group; results are ordered by group id.
  Result<std::vector<GroupResult>> Finish();

  size_t group_count() const { return groups_.size(); }
  const TopKOperator* group_operator(uint64_t group) const;

 private:
  explicit GroupedTopK(const Options& options);

  Result<TopKOperator*> GetOrCreateGroup(uint64_t group);

  Options options_;
  std::map<uint64_t, std::unique_ptr<TopKOperator>> groups_;
  bool finished_ = false;
};

}  // namespace topk

#endif  // TOPK_EXTENSIONS_GROUPED_TOPK_H_
