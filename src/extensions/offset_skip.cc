#include "extensions/offset_skip.h"

#include <algorithm>

namespace topk {

namespace {

/// Upper bound on the rows of `run` whose keys sort at-or-before `key`:
/// one less than the position of the first index entry strictly beyond
/// `key` (that entry's row is already beyond), or the whole run if no
/// entry is beyond.
uint64_t UpperBoundRowsAtOrBefore(const RunMeta& run, double key,
                                  const RowComparator& comparator) {
  for (const RunIndexEntry& entry : run.index) {
    if (comparator.KeyBeyond(entry.key, key)) {
      return entry.rows - 1;
    }
  }
  return run.rows;
}

/// The last index entry of `run` whose key sorts at-or-before `key`
/// (every row up to it is safely skippable), or nullptr.
const RunIndexEntry* LastEntryAtOrBefore(const RunMeta& run, double key,
                                         const RowComparator& comparator) {
  const RunIndexEntry* best = nullptr;
  for (const RunIndexEntry& entry : run.index) {
    if (comparator.KeyBeyond(entry.key, key)) break;
    best = &entry;
  }
  return best;
}

}  // namespace

OffsetSkipPlan PlanOffsetSkip(const std::vector<RunMeta>& runs,
                              uint64_t offset,
                              const RowComparator& comparator) {
  OffsetSkipPlan plan;
  plan.skip_rows.assign(runs.size(), 0);
  plan.skip_bytes.assign(runs.size(), 0);
  if (offset == 0 || runs.empty()) return plan;

  // Candidate skip keys: every index entry key, best-first in query order.
  std::vector<double> candidates;
  for (const RunMeta& run : runs) {
    for (const RunIndexEntry& entry : run.index) {
      candidates.push_back(entry.key);
    }
  }
  if (candidates.empty()) return plan;
  std::sort(candidates.begin(), candidates.end(),
            [&](double a, double b) { return comparator.KeyLess(a, b); });
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  // The largest candidate K whose total at-or-before upper bound still
  // fits inside the offset: every row with key <=q K is then provably one
  // of the first `offset` merged rows. The bound is monotone in K, so scan
  // best-first and keep the last safe candidate.
  bool found = false;
  double skip_key = 0.0;
  for (double candidate : candidates) {
    uint64_t upper = 0;
    for (const RunMeta& run : runs) {
      upper += UpperBoundRowsAtOrBefore(run, candidate, comparator);
    }
    if (upper > offset) break;
    skip_key = candidate;
    found = true;
  }
  if (!found) return plan;

  plan.has_skip = true;
  plan.skip_key = skip_key;
  for (size_t i = 0; i < runs.size(); ++i) {
    const RunIndexEntry* entry =
        LastEntryAtOrBefore(runs[i], skip_key, comparator);
    if (entry != nullptr) {
      plan.skip_rows[i] = entry->rows;
      plan.skip_bytes[i] = entry->bytes;
      plan.rows_skipped += entry->rows;
    }
  }
  return plan;
}

Result<MergeStats> MergeRunsWithOffsetSkip(SpillManager* spill,
                                           const std::vector<RunMeta>& runs,
                                           const RowComparator& comparator,
                                           const MergeOptions& options,
                                           const RowSink& sink,
                                           OffsetSkipPlan* plan_out) {
  OffsetSkipPlan plan = PlanOffsetSkip(runs, options.skip, comparator);
  MergeOptions seek_options = options;
  if (plan.has_skip) {
    seek_options.seek_bytes = plan.skip_bytes;
    seek_options.seek_rows_total = plan.rows_skipped;
  }
  if (plan_out != nullptr) *plan_out = plan;
  return MergeRuns(spill, runs, comparator, seek_options, sink);
}

}  // namespace topk
