#include "extensions/approx_topk.h"

#include <cmath>

namespace topk {

ApproxTopK::ApproxTopK(std::unique_ptr<HistogramTopK> inner,
                       uint64_t requested_k, uint64_t reduced_k)
    : inner_(std::move(inner)),
      requested_k_(requested_k),
      reduced_k_(reduced_k) {}

Result<std::unique_ptr<ApproxTopK>> ApproxTopK::Make(
    const TopKOptions& options, double tolerance) {
  if (tolerance < 0.0 || tolerance >= 1.0) {
    return Status::InvalidArgument("tolerance must be in [0, 1)");
  }
  const uint64_t reduced_k = std::max<uint64_t>(
      1, static_cast<uint64_t>(
             std::ceil(static_cast<double>(options.k) * (1.0 - tolerance))));
  TopKOptions approx_options = options;
  approx_options.approx_filter_k = reduced_k + options.offset;
  std::unique_ptr<HistogramTopK> inner;
  TOPK_ASSIGN_OR_RETURN(inner, HistogramTopK::Make(approx_options));
  return std::unique_ptr<ApproxTopK>(
      new ApproxTopK(std::move(inner), options.k, reduced_k));
}

Status ApproxTopK::Consume(Row row) { return inner_->Consume(std::move(row)); }

Result<std::vector<Row>> ApproxTopK::Finish() {
  std::vector<Row> rows;
  TOPK_ASSIGN_OR_RETURN(rows, inner_->Finish());
  stats_ = inner_->stats();
  return rows;
}

}  // namespace topk
