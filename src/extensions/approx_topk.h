#ifndef TOPK_EXTENSIONS_APPROX_TOPK_H_
#define TOPK_EXTENSIONS_APPROX_TOPK_H_

#include <memory>
#include <vector>

#include "topk/histogram_topk.h"
#include "topk/topk_operator.h"

namespace topk {

/// Approximate top-k (Sec 4.5, first form: "the row count may be
/// approximate ... a 'top 100' request may produce 90, 100, or 110 rows").
///
/// The cutoff filter is configured with a reduced target
/// k' = ceil(k * (1 - tolerance)), so the cutoff is established earlier and
/// sharpened more aggressively; rows of the true top k beyond the sharper
/// cutoff may be discarded. What survives is still an exact *prefix* of the
/// global order, so the result is the true top-m for some m in [k', k]:
/// fewer rows, never wrong rows. The paper's caution applies verbatim:
/// "even a conservatively estimated final cutoff key may lead to fewer
/// final result rows than requested".
class ApproxTopK : public TopKOperator {
 public:
  /// `tolerance` in [0, 1): the acceptable shortfall fraction of k.
  static Result<std::unique_ptr<ApproxTopK>> Make(const TopKOptions& options,
                                                  double tolerance);

  Status Consume(Row row) override;
  Result<std::vector<Row>> Finish() override;
  std::string name() const override { return "approx-histogram"; }

  uint64_t guaranteed_rows() const { return reduced_k_; }

 private:
  ApproxTopK(std::unique_ptr<HistogramTopK> inner, uint64_t requested_k,
             uint64_t reduced_k);

  std::unique_ptr<HistogramTopK> inner_;
  uint64_t requested_k_;
  uint64_t reduced_k_;
};

}  // namespace topk

#endif  // TOPK_EXTENSIONS_APPROX_TOPK_H_
