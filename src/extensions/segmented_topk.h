#ifndef TOPK_EXTENSIONS_SEGMENTED_TOPK_H_
#define TOPK_EXTENSIONS_SEGMENTED_TOPK_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "topk/topk_operator.h"

namespace topk {

/// Segmented execution for partially sorted inputs (Sec 4.2): when the
/// input order and the top-k ORDER BY clause share a prefix, the sort
/// proceeds segment by segment (one segment per distinct prefix value) and
/// stops — ignoring all later segments — once k rows have been produced.
///
/// Earlier segments are "required in their entirety" (no filtering gain);
/// the paper's optimizations apply to the last relevant segment, whose
/// operator here runs the histogram algorithm with k reduced to the rows
/// still missing.
class SegmentedTopK {
 public:
  struct Options {
    /// Query shape and resources used for each segment's inner operator.
    TopKOptions base;
  };

  struct SegmentedRow {
    uint64_t segment = 0;
    Row row;
  };

  static Result<std::unique_ptr<SegmentedTopK>> Make(const Options& options);

  /// Consumes the next row. Segment ids must be non-decreasing (the input
  /// is sorted by the shared prefix); a smaller id than an earlier one is
  /// InvalidArgument. Rows of segments past the point where k rows are
  /// already guaranteed are discarded without work.
  Status Consume(uint64_t segment, Row row);

  /// Rows in (segment, key) order, exactly min(k, input size) of them.
  Result<std::vector<SegmentedRow>> Finish();

  /// Rows still needed from current/future segments (k minus completed
  /// segments' output).
  uint64_t remaining_needed() const { return remaining_; }
  /// True once enough segments completed to satisfy k (later segments are
  /// being ignored).
  bool saturated() const { return remaining_ == 0; }
  /// Input rows skipped because the query was already satisfied.
  uint64_t rows_ignored() const { return rows_ignored_; }

 private:
  explicit SegmentedTopK(const Options& options);

  Status CloseCurrentSegment();
  Status OpenSegment(uint64_t segment);

  Options options_;
  uint64_t remaining_;
  uint64_t rows_ignored_ = 0;

  std::optional<uint64_t> current_segment_;
  std::unique_ptr<TopKOperator> current_op_;
  uint64_t segment_counter_ = 0;  // distinct spill dir per segment

  std::vector<SegmentedRow> output_;
  bool finished_ = false;
};

}  // namespace topk

#endif  // TOPK_EXTENSIONS_SEGMENTED_TOPK_H_
