#include "extensions/grouped_topk.h"

#include "topk/operator_factory.h"

namespace topk {

GroupedTopK::GroupedTopK(const Options& options) : options_(options) {}

Result<std::unique_ptr<GroupedTopK>> GroupedTopK::Make(
    const Options& options) {
  TOPK_RETURN_NOT_OK(
      ValidateTopKOptions(options.per_group, /*requires_storage=*/true));
  return std::unique_ptr<GroupedTopK>(new GroupedTopK(options));
}

Result<TopKOperator*> GroupedTopK::GetOrCreateGroup(uint64_t group) {
  auto it = groups_.find(group);
  if (it != groups_.end()) return it->second.get();

  TopKOptions group_options = options_.per_group;
  group_options.spill_dir = options_.per_group.spill_dir + "/group-" +
                            std::to_string(group);
  if (options_.grouped_buckets_per_run > 0) {
    group_options.histogram_buckets_per_run =
        options_.grouped_buckets_per_run;
  }
  std::unique_ptr<TopKOperator> op;
  TOPK_ASSIGN_OR_RETURN(
      op, MakeTopKOperator(TopKAlgorithm::kHistogram, group_options));
  TopKOperator* raw = op.get();
  groups_.emplace(group, std::move(op));
  return raw;
}

Status GroupedTopK::Consume(uint64_t group, Row row) {
  if (finished_) {
    return Status::FailedPrecondition("Consume after Finish");
  }
  TopKOperator* op = nullptr;
  TOPK_ASSIGN_OR_RETURN(op, GetOrCreateGroup(group));
  return op->Consume(std::move(row));
}

Result<std::vector<GroupedTopK::GroupResult>> GroupedTopK::Finish() {
  if (finished_) {
    return Status::FailedPrecondition("Finish called twice");
  }
  finished_ = true;
  std::vector<GroupResult> results;
  results.reserve(groups_.size());
  for (auto& [group, op] : groups_) {
    GroupResult result;
    result.group = group;
    TOPK_ASSIGN_OR_RETURN(result.rows, op->Finish());
    results.push_back(std::move(result));
  }
  return results;
}

const TopKOperator* GroupedTopK::group_operator(uint64_t group) const {
  auto it = groups_.find(group);
  return it == groups_.end() ? nullptr : it->second.get();
}

}  // namespace topk
