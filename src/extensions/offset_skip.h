#ifndef TOPK_EXTENSIONS_OFFSET_SKIP_H_
#define TOPK_EXTENSIONS_OFFSET_SKIP_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "io/spill_manager.h"
#include "row/row.h"
#include "sort/merger.h"

namespace topk {

/// Histogram-guided OFFSET support (Sec 4.1): "The combined histogram from
/// all runs can determine the highest key value with a rank lower than the
/// offset; this is the key value where the merge logic should start.
/// [...] If runs are stored in search structures this search is quite
/// efficient." Our runs carry a sparse seek index (RunMeta::index), so each
/// merge input can begin mid-run, behind a prefix of rows that provably
/// belong to the skipped offset.

/// Per-run skip decision for one merge.
struct OffsetSkipPlan {
  /// For each run (parallel to the planned run list): rows and bytes of
  /// the run's prefix that are skipped via a seek instead of being read.
  std::vector<uint64_t> skip_rows;
  std::vector<uint64_t> skip_bytes;
  /// Total rows skipped by seeks; the merge must still discard
  /// `offset - rows_skipped` rows the slow way.
  uint64_t rows_skipped = 0;
  /// The skip key chosen from the combined index (for diagnostics).
  double skip_key = 0.0;
  bool has_skip = false;
};

/// Chooses the sharpest safe skip: the largest indexed key K such that the
/// total number of rows with keys at-or-before K (upper-bounded via each
/// run's index) cannot exceed `offset`. Every row skipped is then provably
/// among the first `offset` rows of the merged order, regardless of tie
/// interleaving.
OffsetSkipPlan PlanOffsetSkip(const std::vector<RunMeta>& runs,
                              uint64_t offset,
                              const RowComparator& comparator);

/// Merges `runs` like MergeRuns, but first seeks each input past the
/// offset prefix chosen by PlanOffsetSkip. `options.skip` must be the full
/// offset; the residual (offset - seeked rows) is discarded row-by-row.
Result<MergeStats> MergeRunsWithOffsetSkip(SpillManager* spill,
                                           const std::vector<RunMeta>& runs,
                                           const RowComparator& comparator,
                                           const MergeOptions& options,
                                           const RowSink& sink,
                                           OffsetSkipPlan* plan_out = nullptr);

}  // namespace topk

#endif  // TOPK_EXTENSIONS_OFFSET_SKIP_H_
