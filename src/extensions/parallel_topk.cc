#include "extensions/parallel_topk.h"

#include <algorithm>
#include <deque>

#include "obs/trace.h"
#include "sort/merge_planner.h"
#include "sort/merger.h"
#include "sort/replacement_selection.h"

namespace topk {

SharedCutoffFilter::SharedCutoffFilter(const CutoffFilter::Options& options)
    : comparator_(options.direction), filter_(options) {}

bool SharedCutoffFilter::EliminateKey(double key) const {
  if (!has_cutoff_.load(std::memory_order_acquire)) return false;
  return comparator_.KeyBeyond(key,
                               cutoff_.load(std::memory_order_relaxed));
}

void SharedCutoffFilter::PublishCutoff() {
  const std::optional<double> c = filter_.cutoff();
  if (c.has_value()) {
    cutoff_.store(*c, std::memory_order_relaxed);
    has_cutoff_.store(true, std::memory_order_release);
  }
}

void SharedCutoffFilter::RowSpilled(double key) {
  std::lock_guard<std::mutex> lock(mu_);
  filter_.RowSpilled(key);
  PublishCutoff();
}

std::vector<HistogramBucket> SharedCutoffFilter::RunFinished() {
  std::lock_guard<std::mutex> lock(mu_);
  return filter_.RunFinished();
}

void SharedCutoffFilter::InsertBucket(HistogramBucket bucket) {
  std::lock_guard<std::mutex> lock(mu_);
  filter_.InsertBucket(bucket);
  PublishCutoff();
}

void SharedCutoffFilter::ProposeCutoff(double key) {
  std::lock_guard<std::mutex> lock(mu_);
  filter_.ProposeCutoff(key);
  PublishCutoff();
}

std::optional<double> SharedCutoffFilter::cutoff() const {
  if (!has_cutoff_.load(std::memory_order_acquire)) return std::nullopt;
  return cutoff_.load(std::memory_order_relaxed);
}

namespace {

/// Routes a worker's spill events into the shared filter. Note: the shared
/// filter's histogram builder is also shared, which would interleave
/// buckets across workers' runs; instead each worker builds its own run
/// histograms locally and only the *buckets* go to the shared model.
class WorkerObserver : public SpillObserver {
 public:
  WorkerObserver(SharedCutoffFilter* shared, const BucketSizingPolicy& policy)
      : shared_(shared), builder_(policy) {}

  bool EliminateAtSpill(const Row& row) override {
    return shared_->Eliminate(row);
  }

  void OnRowSpilled(const Row& row) override {
    std::optional<HistogramBucket> bucket = builder_.AddSpilledRow(row.key);
    if (bucket.has_value()) {
      // Feed the shared model bucket-by-bucket; RowSpilled would rebuild
      // buckets with the shared builder, so insert directly via the only
      // mutation path that takes complete buckets.
      shared_->InsertBucket(*bucket);
    }
  }

  std::vector<HistogramBucket> OnRunFinished() override {
    return builder_.FinishRun();
  }

 private:
  SharedCutoffFilter* shared_;
  RunHistogramBuilder builder_;
};

}  // namespace

struct ParallelTopK::Worker {
  size_t index = 0;
  /// Private filter when the shared one is disabled (Sec 4.4 contrast).
  std::unique_ptr<SharedCutoffFilter> own_filter;
  std::unique_ptr<WorkerObserver> observer;
  std::unique_ptr<RunGenerator> generator;
  std::thread thread;

  std::mutex mu;
  std::condition_variable cv_producer;
  std::condition_variable cv_consumer;
  std::deque<Row> queue;
  bool closed = false;
  Status status;
};

ParallelTopK::ParallelTopK(const Options& options)
    : options_(options), comparator_(options.base.direction) {}

ParallelTopK::~ParallelTopK() {
  for (auto& worker : workers_) {
    {
      std::lock_guard<std::mutex> lock(worker->mu);
      worker->closed = true;
    }
    worker->cv_consumer.notify_all();
    if (worker->thread.joinable()) worker->thread.join();
  }
}

Result<std::unique_ptr<ParallelTopK>> ParallelTopK::Make(
    const Options& options) {
  TOPK_RETURN_NOT_OK(
      ValidateTopKOptions(options.base, /*requires_storage=*/true));
  if (options.num_workers == 0) {
    return Status::InvalidArgument("need at least one worker");
  }
  auto op = std::unique_ptr<ParallelTopK>(new ParallelTopK(options));
  TOPK_RETURN_NOT_OK(op->Start());
  return op;
}

Status ParallelTopK::Start() {
  TOPK_ASSIGN_OR_RETURN(
      spill_,
      SpillManager::Create(options_.base.env, options_.base.spill_dir,
                           options_.base.io_pipeline()));

  const size_t per_worker_memory =
      std::max<size_t>(options_.base.memory_limit_bytes /
                           options_.num_workers,
                       64 * 1024);
  const uint64_t avg_row_guess = 128 + kPerRowOverheadBytes;
  uint64_t expected_run_rows =
      2 * std::max<uint64_t>(per_worker_memory / avg_row_guess, 1);
  if (options_.base.limit_run_size_to_output) {
    expected_run_rows =
        std::min(expected_run_rows, options_.base.output_rows());
  }

  CutoffFilter::Options filter_options;
  filter_options.k = options_.base.output_rows();
  filter_options.direction = options_.base.direction;
  filter_options.target_buckets_per_run =
      options_.base.histogram_buckets_per_run;
  filter_options.target_run_rows = expected_run_rows;
  filter_options.memory_limit_bytes =
      options_.base.histogram_memory_limit_bytes;
  // Cutoff-evolution timeline for parallel execution. The callback fires
  // under the shared filter's mutex on whichever worker thread sharpened
  // the cutoff, so only filter-internal fields are reported — operator
  // counters would race.
  filter_options.on_cutoff_change =
      [](const CutoffFilter::CutoffUpdate& update) {
        if (!TracingEnabled()) return;
        TraceInstant(update.tightened ? "cutoff.tighten" : "cutoff.establish",
                     "filter",
                     {TraceArg("cutoff", update.cutoff),
                      TraceArg("proposed", update.proposed ? 1 : 0),
                      TraceArg("bucket_count", update.bucket_count),
                      TraceArg("tracked_rows", update.tracked_rows)});
      };
  if (options_.share_filter) {
    filter_ = std::make_unique<SharedCutoffFilter>(filter_options);
  }

  const BucketSizingPolicy policy(options_.base.histogram_buckets_per_run,
                                  expected_run_rows);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->index = i;
    if (!options_.share_filter) {
      worker->own_filter = std::make_unique<SharedCutoffFilter>(filter_options);
    }
    worker->observer = std::make_unique<WorkerObserver>(
        options_.share_filter ? filter_.get() : worker->own_filter.get(),
        policy);
    RunGeneratorOptions gen_options;
    gen_options.memory_limit_bytes = per_worker_memory;
    if (options_.base.limit_run_size_to_output) {
      gen_options.run_row_limit = options_.base.output_rows();
    }
    gen_options.observer = worker->observer.get();
    worker->generator = std::make_unique<ReplacementSelectionRunGenerator>(
        spill_.get(), comparator_, gen_options);
    worker->thread = std::thread([this, w = worker.get()] { WorkerLoop(w); });
    workers_.push_back(std::move(worker));
  }
  return Status::OK();
}

void ParallelTopK::WorkerLoop(Worker* worker) {
  TraceSpan span("parallel.worker", "topk",
                 {TraceArg("worker", worker->index)});
  for (;;) {
    Row row;
    {
      std::unique_lock<std::mutex> lock(worker->mu);
      worker->cv_consumer.wait(
          lock, [&] { return worker->closed || !worker->queue.empty(); });
      if (worker->queue.empty()) return;  // closed and drained
      row = std::move(worker->queue.front());
      worker->queue.pop_front();
    }
    worker->cv_producer.notify_one();
    if (WorkerFilter(worker)->Eliminate(row)) continue;
    Status status = worker->generator->Add(std::move(row));
    if (!status.ok()) {
      std::lock_guard<std::mutex> lock(worker->mu);
      if (worker->status.ok()) worker->status = status;
      return;
    }
  }
}

Status ParallelTopK::Consume(Row row) {
  if (finished_) {
    return Status::FailedPrecondition("Consume after Finish");
  }
  ++stats_.rows_consumed;
  Worker* worker = workers_[next_worker_].get();
  next_worker_ = (next_worker_ + 1) % workers_.size();
  // Producer-side filtering: the paper's flow-control variant sends the
  // current cutoff back to producers so they stop shipping doomed rows.
  if (WorkerFilter(worker)->Eliminate(row)) {
    ++stats_.rows_eliminated_input;
    return Status::OK();
  }
  {
    std::unique_lock<std::mutex> lock(worker->mu);
    worker->cv_producer.wait(lock, [&] {
      return worker->queue.size() < options_.queue_capacity ||
             !worker->status.ok();
    });
    if (!worker->status.ok()) return worker->status;
    worker->queue.push_back(std::move(row));
  }
  worker->cv_consumer.notify_one();
  return Status::OK();
}

Result<std::vector<Row>> ParallelTopK::Finish() {
  if (finished_) {
    return Status::FailedPrecondition("Finish called twice");
  }
  finished_ = true;
  Stopwatch watch;
  for (auto& worker : workers_) {
    {
      std::lock_guard<std::mutex> lock(worker->mu);
      worker->closed = true;
    }
    worker->cv_consumer.notify_all();
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
    TOPK_RETURN_NOT_OK(worker->status);
    TOPK_RETURN_NOT_OK(worker->generator->Flush());
    stats_.rows_spilled += worker->generator->stats().rows_spilled;
    stats_.rows_eliminated_spill +=
        worker->generator->stats().rows_eliminated_at_spill;
    stats_.peak_memory_bytes +=
        worker->generator->stats().peak_memory_bytes;
  }
  stats_.runs_created = spill_->total_runs_created();

  // One merge over every worker's runs produces the global answer.
  MergePlannerOptions planner_options;
  planner_options.fan_in = options_.base.merge_fan_in;
  planner_options.policy = MergePolicy::kLowestKeysFirst;
  planner_options.intermediate_limit = options_.base.output_rows();
  planner_options.use_ovc = options_.base.use_ovc;
  MergePlanStats plan_stats;
  std::vector<RunMeta> final_runs;
  TOPK_ASSIGN_OR_RETURN(
      final_runs, ReduceRunsForFinalMerge(spill_.get(), comparator_,
                                          planner_options, &plan_stats));
  stats_.merge_rows_written = plan_stats.intermediate_rows_written;

  std::vector<Row> result;
  MergeOptions merge_options;
  merge_options.limit = options_.base.k;
  merge_options.skip = options_.base.offset;
  merge_options.use_ovc = options_.base.use_ovc;
  MergeStats merge_stats;
  TOPK_ASSIGN_OR_RETURN(merge_stats,
                        MergeRuns(spill_.get(), final_runs, comparator_,
                                  merge_options, [&](Row&& r) {
                                    result.push_back(std::move(r));
                                    return Status::OK();
                                  }));
  stats_.merge_rows_read =
      plan_stats.intermediate_rows_read + merge_stats.rows_read;
  stats_.bytes_spilled = spill_->total_bytes_spilled();
  if (filter_ != nullptr) {
    stats_.final_cutoff = filter_->cutoff();
  } else {
    // Best (sharpest) of the independent workers' cutoffs.
    RowComparator cmp(options_.base.direction);
    for (const auto& worker : workers_) {
      const auto cutoff = worker->own_filter->cutoff();
      if (!cutoff.has_value()) continue;
      if (!stats_.final_cutoff.has_value() ||
          cmp.KeyLess(*cutoff, *stats_.final_cutoff)) {
        stats_.final_cutoff = cutoff;
      }
    }
  }
  stats_.finish_nanos = watch.ElapsedNanos();
  return result;
}

SharedCutoffFilter* ParallelTopK::WorkerFilter(Worker* worker) const {
  return filter_ != nullptr ? filter_.get() : worker->own_filter.get();
}

}  // namespace topk
