#ifndef TOPK_EXTENSIONS_PARALLEL_TOPK_H_
#define TOPK_EXTENSIONS_PARALLEL_TOPK_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "histogram/cutoff_filter.h"
#include "io/spill_manager.h"
#include "sort/run_generation.h"
#include "topk/topk_operator.h"

namespace topk {

/// Thread-safe facade over a CutoffFilter, shared by parallel workers
/// (Sec 4.4: "If the participating threads share an address space, they may
/// share a histogram priority queue. Such a group of threads retains
/// basically the same number of input rows as a single thread.").
///
/// Eliminate() is lock-free (the cutoff is mirrored into atomics — it is
/// the hot path, called for every input row); mutations take a mutex.
class SharedCutoffFilter {
 public:
  explicit SharedCutoffFilter(const CutoffFilter::Options& options);

  bool Eliminate(const Row& row) const { return EliminateKey(row.key); }
  bool EliminateKey(double key) const;

  void RowSpilled(double key);
  std::vector<HistogramBucket> RunFinished();
  void ProposeCutoff(double key);
  /// Inserts a complete bucket built by a worker-local histogram builder.
  void InsertBucket(HistogramBucket bucket);

  std::optional<double> cutoff() const;
  const RowComparator& comparator() const { return comparator_; }

 private:
  void PublishCutoff();

  RowComparator comparator_;
  mutable std::mutex mu_;
  CutoffFilter filter_;
  std::atomic<bool> has_cutoff_{false};
  std::atomic<double> cutoff_{0.0};
};

/// Parallel top-k (Sec 4.4): worker threads each run replacement selection
/// over their share of the input, all filtering through one shared cutoff
/// filter and spilling into one shared SpillManager. The final result is a
/// single merge of every worker's runs.
///
/// Each worker collects its own per-run histograms (its spills interleave
/// with nobody: runs are per-worker), but every bucket lands in the shared
/// model, so the combined filter sharpens as fast as a single thread's
/// would — the paper's key observation about shared-address-space
/// parallelism.
class ParallelTopK {
 public:
  struct Options {
    TopKOptions base;
    size_t num_workers = 4;
    /// Rows buffered per worker queue before Consume blocks.
    size_t queue_capacity = 4096;
    /// Share one cutoff filter across workers (Sec 4.4: threads in one
    /// address space "may share a histogram priority queue. Such a group
    /// of threads retains basically the same number of input rows as a
    /// single thread."). false = each worker filters independently, the
    /// degraded behaviour the paper contrasts against (every worker must
    /// prove k rows on its own slice before eliminating anything).
    bool share_filter = true;
  };

  static Result<std::unique_ptr<ParallelTopK>> Make(const Options& options);
  ~ParallelTopK();

  ParallelTopK(const ParallelTopK&) = delete;
  ParallelTopK& operator=(const ParallelTopK&) = delete;

  /// Thread-compatible (single producer): dispatches rows to workers
  /// round-robin. Rows already beyond the shared cutoff are dropped here,
  /// on the producer side (the flow-control idea of Sec 4.4).
  Status Consume(Row row);

  /// Drains the queues, joins the workers, merges all runs.
  Result<std::vector<Row>> Finish();

  const OperatorStats& stats() const { return stats_; }
  /// The shared filter (null when share_filter is false).
  const SharedCutoffFilter* filter() const { return filter_.get(); }

 private:
  struct Worker;

  /// The filter a given worker eliminates through.
  SharedCutoffFilter* WorkerFilter(Worker* worker) const;

  explicit ParallelTopK(const Options& options);
  Status Start();
  void WorkerLoop(Worker* worker);

  Options options_;
  RowComparator comparator_;
  std::unique_ptr<StorageEnv> owned_env_;  // unused; env comes from options
  std::unique_ptr<SpillManager> spill_;
  std::unique_ptr<SharedCutoffFilter> filter_;
  std::vector<std::unique_ptr<Worker>> workers_;
  size_t next_worker_ = 0;
  OperatorStats stats_;
  bool finished_ = false;
};

}  // namespace topk

#endif  // TOPK_EXTENSIONS_PARALLEL_TOPK_H_
