#include "extensions/segmented_topk.h"

#include "topk/operator_factory.h"

namespace topk {

SegmentedTopK::SegmentedTopK(const Options& options)
    : options_(options), remaining_(options.base.k) {}

Result<std::unique_ptr<SegmentedTopK>> SegmentedTopK::Make(
    const Options& options) {
  TOPK_RETURN_NOT_OK(
      ValidateTopKOptions(options.base, /*requires_storage=*/true));
  if (options.base.offset != 0) {
    return Status::InvalidArgument(
        "segmented execution with OFFSET is not supported; apply the offset "
        "downstream");
  }
  return std::unique_ptr<SegmentedTopK>(new SegmentedTopK(options));
}

Status SegmentedTopK::OpenSegment(uint64_t segment) {
  TopKOptions segment_options = options_.base;
  // Only `remaining_` rows can still reach the output; the inner operator
  // filters against that bound.
  segment_options.k = remaining_;
  segment_options.spill_dir = options_.base.spill_dir + "/segment-" +
                              std::to_string(segment_counter_++);
  std::unique_ptr<TopKOperator> op;
  TOPK_ASSIGN_OR_RETURN(
      op, MakeTopKOperator(TopKAlgorithm::kHistogram, segment_options));
  current_op_ = std::move(op);
  current_segment_ = segment;
  return Status::OK();
}

Status SegmentedTopK::CloseCurrentSegment() {
  if (current_op_ == nullptr) return Status::OK();
  std::vector<Row> rows;
  TOPK_ASSIGN_OR_RETURN(rows, current_op_->Finish());
  for (Row& row : rows) {
    output_.push_back(SegmentedRow{*current_segment_, std::move(row)});
  }
  remaining_ -= std::min<uint64_t>(remaining_, rows.size());
  current_op_.reset();
  current_segment_.reset();
  return Status::OK();
}

Status SegmentedTopK::Consume(uint64_t segment, Row row) {
  if (finished_) {
    return Status::FailedPrecondition("Consume after Finish");
  }
  if (saturated()) {
    // "subsequent segments can be ignored"
    ++rows_ignored_;
    return Status::OK();
  }
  if (current_segment_.has_value()) {
    if (segment < *current_segment_) {
      return Status::InvalidArgument(
          "segment ids must be non-decreasing (input must be sorted by the "
          "shared prefix)");
    }
    if (segment != *current_segment_) {
      TOPK_RETURN_NOT_OK(CloseCurrentSegment());
      if (saturated()) {
        ++rows_ignored_;
        return Status::OK();
      }
    }
  }
  if (!current_segment_.has_value()) {
    TOPK_RETURN_NOT_OK(OpenSegment(segment));
  }
  return current_op_->Consume(std::move(row));
}

Result<std::vector<SegmentedTopK::SegmentedRow>> SegmentedTopK::Finish() {
  if (finished_) {
    return Status::FailedPrecondition("Finish called twice");
  }
  finished_ = true;
  TOPK_RETURN_NOT_OK(CloseCurrentSegment());
  return std::move(output_);
}

}  // namespace topk
