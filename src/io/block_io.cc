#include "io/block_io.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace topk {

BlockWriter::BlockWriter(std::unique_ptr<WritableFile> file,
                         size_t block_bytes)
    : file_(std::move(file)), block_bytes_(block_bytes) {
  buffer_.reserve(block_bytes_);
}

BlockWriter::~BlockWriter() {
  // Best effort; callers that care about errors must Close() explicitly. A
  // destructor cannot return a Status, so a failure here can only be logged
  // — never silently discarded.
  if (!closed_) {
    Status status = Close();
    if (!status.ok()) {
      TOPK_LOG(Warning) << "BlockWriter close error dropped in destructor: "
                        << status.ToString();
    }
  }
}

Status BlockWriter::Append(std::string_view data) {
  if (closed_) {
    return Status::FailedPrecondition("append to closed BlockWriter");
  }
  const size_t total = data.size();
  while (!data.empty()) {
    const size_t room = block_bytes_ - buffer_.size();
    const size_t take = std::min(room, data.size());
    buffer_.append(data.data(), take);
    data.remove_prefix(take);
    if (buffer_.size() == block_bytes_) {
      TOPK_RETURN_NOT_OK(FlushBuffer());
    }
  }
  // Counted only after every flush succeeded: a failed Append must not
  // overstate the run's byte accounting.
  bytes_appended_ += total;
  return Status::OK();
}

Status BlockWriter::FlushBuffer() {
  if (buffer_.empty()) return Status::OK();
  TOPK_RETURN_NOT_OK(file_->Append(buffer_));
  buffer_.clear();
  return Status::OK();
}

Status BlockWriter::Close() {
  if (closed_) return Status::OK();
  closed_ = true;
  TOPK_RETURN_NOT_OK(FlushBuffer());
  TOPK_RETURN_NOT_OK(file_->Flush());
  return file_->Close();
}

BlockReader::BlockReader(std::unique_ptr<SequentialFile> file,
                         size_t block_bytes)
    : file_(std::move(file)), block_bytes_(block_bytes) {
  buffer_.resize(block_bytes_);
}

Status BlockReader::Refill() {
  pos_ = 0;
  limit_ = 0;
  if (at_eof_) return Status::OK();
  size_t got = 0;
  TOPK_RETURN_NOT_OK(file_->Read(block_bytes_, buffer_.data(), &got));
  limit_ = got;
  if (got == 0) at_eof_ = true;
  return Status::OK();
}

Status BlockReader::ReadExact(size_t n, char* out, bool* eof) {
  *eof = false;
  size_t produced = 0;
  while (produced < n) {
    if (pos_ == limit_) {
      TOPK_RETURN_NOT_OK(Refill());
      if (limit_ == 0) {
        if (produced == 0) {
          *eof = true;
          return Status::OK();
        }
        return Status::Corruption("file truncated mid-record");
      }
    }
    const size_t take = std::min(n - produced, limit_ - pos_);
    std::memcpy(out + produced, buffer_.data() + pos_, take);
    pos_ += take;
    produced += take;
  }
  bytes_consumed_ += n;
  return Status::OK();
}

Status BlockReader::Skip(uint64_t n) {
  const uint64_t buffered = limit_ - pos_;
  if (n <= buffered) {
    pos_ += n;
  } else {
    const uint64_t beyond = n - buffered;
    pos_ = 0;
    limit_ = 0;
    TOPK_RETURN_NOT_OK(file_->Skip(beyond));
  }
  bytes_consumed_ += n;
  return Status::OK();
}

}  // namespace topk
