#ifndef TOPK_IO_IO_STATS_H_
#define TOPK_IO_IO_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace topk {

/// Counters for secondary-storage traffic. The paper's principal metric is
/// the amount of data written to (and re-read from) secondary storage
/// ("With input and output sizes fixed, the size of the required secondary
/// storage determines overall performance", Sec 1), so every byte that moves
/// through the storage substrate is accounted here. Thread-safe: parallel
/// operators share one instance.
class IoStats {
 public:
  void RecordWrite(uint64_t bytes, int64_t nanos) {
    bytes_written_.fetch_add(bytes, std::memory_order_relaxed);
    write_calls_.fetch_add(1, std::memory_order_relaxed);
    write_nanos_.fetch_add(nanos, std::memory_order_relaxed);
  }

  void RecordRead(uint64_t bytes, int64_t nanos) {
    bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
    read_calls_.fetch_add(1, std::memory_order_relaxed);
    read_nanos_.fetch_add(nanos, std::memory_order_relaxed);
  }

  void RecordFileCreated() {
    files_created_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordFileDeleted() {
    files_deleted_.fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t bytes_written() const { return bytes_written_.load(); }
  uint64_t bytes_read() const { return bytes_read_.load(); }
  uint64_t write_calls() const { return write_calls_.load(); }
  uint64_t read_calls() const { return read_calls_.load(); }
  int64_t write_nanos() const { return write_nanos_.load(); }
  int64_t read_nanos() const { return read_nanos_.load(); }
  uint64_t files_created() const { return files_created_.load(); }
  uint64_t files_deleted() const { return files_deleted_.load(); }

  void Reset() {
    bytes_written_ = 0;
    bytes_read_ = 0;
    write_calls_ = 0;
    read_calls_ = 0;
    write_nanos_ = 0;
    read_nanos_ = 0;
    files_created_ = 0;
    files_deleted_ = 0;
  }

  /// One-line human-readable summary for logs and bench output.
  std::string ToString() const;

 private:
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> write_calls_{0};
  std::atomic<uint64_t> read_calls_{0};
  std::atomic<int64_t> write_nanos_{0};
  std::atomic<int64_t> read_nanos_{0};
  std::atomic<uint64_t> files_created_{0};
  std::atomic<uint64_t> files_deleted_{0};
};

}  // namespace topk

#endif  // TOPK_IO_IO_STATS_H_
