#ifndef TOPK_IO_IO_STATS_H_
#define TOPK_IO_IO_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace topk {

/// Counters for secondary-storage traffic. The paper's principal metric is
/// the amount of data written to (and re-read from) secondary storage
/// ("With input and output sizes fixed, the size of the required secondary
/// storage determines overall performance", Sec 1), so every byte that moves
/// through the storage substrate is accounted here. Thread-safe: parallel
/// operators share one instance.
class IoStats {
 public:
  void RecordWrite(uint64_t bytes, int64_t nanos) {
    bytes_written_.fetch_add(bytes, std::memory_order_relaxed);
    write_calls_.fetch_add(1, std::memory_order_relaxed);
    write_nanos_.fetch_add(nanos, std::memory_order_relaxed);
  }

  void RecordRead(uint64_t bytes, int64_t nanos) {
    bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
    read_calls_.fetch_add(1, std::memory_order_relaxed);
    read_nanos_.fetch_add(nanos, std::memory_order_relaxed);
  }

  void RecordFileCreated() {
    files_created_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordFileDeleted() {
    files_deleted_.fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t bytes_written() const { return bytes_written_.load(); }
  uint64_t bytes_read() const { return bytes_read_.load(); }
  uint64_t write_calls() const { return write_calls_.load(); }
  uint64_t read_calls() const { return read_calls_.load(); }
  int64_t write_nanos() const { return write_nanos_.load(); }
  int64_t read_nanos() const { return read_nanos_.load(); }
  uint64_t files_created() const { return files_created_.load(); }
  uint64_t files_deleted() const { return files_deleted_.load(); }

  /// Point-in-time copy of every counter, so callers diff or export a
  /// coherent-enough view instead of re-reading live atomics field by
  /// field.
  struct Snapshot {
    uint64_t bytes_written = 0;
    uint64_t bytes_read = 0;
    uint64_t write_calls = 0;
    uint64_t read_calls = 0;
    int64_t write_nanos = 0;
    int64_t read_nanos = 0;
    uint64_t files_created = 0;
    uint64_t files_deleted = 0;
  };
  Snapshot snapshot() const {
    Snapshot snap;
    snap.bytes_written = bytes_written_.load(std::memory_order_relaxed);
    snap.bytes_read = bytes_read_.load(std::memory_order_relaxed);
    snap.write_calls = write_calls_.load(std::memory_order_relaxed);
    snap.read_calls = read_calls_.load(std::memory_order_relaxed);
    snap.write_nanos = write_nanos_.load(std::memory_order_relaxed);
    snap.read_nanos = read_nanos_.load(std::memory_order_relaxed);
    snap.files_created = files_created_.load(std::memory_order_relaxed);
    snap.files_deleted = files_deleted_.load(std::memory_order_relaxed);
    return snap;
  }

  void Reset() {
    // Explicit relaxed stores: `atomic = 0` is a seq_cst store, and Reset()
    // sits between bench iterations where that fence is pure overhead.
    bytes_written_.store(0, std::memory_order_relaxed);
    bytes_read_.store(0, std::memory_order_relaxed);
    write_calls_.store(0, std::memory_order_relaxed);
    read_calls_.store(0, std::memory_order_relaxed);
    write_nanos_.store(0, std::memory_order_relaxed);
    read_nanos_.store(0, std::memory_order_relaxed);
    files_created_.store(0, std::memory_order_relaxed);
    files_deleted_.store(0, std::memory_order_relaxed);
  }

  /// One-line human-readable summary for logs and bench output.
  std::string ToString() const;

 private:
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> write_calls_{0};
  std::atomic<uint64_t> read_calls_{0};
  std::atomic<int64_t> write_nanos_{0};
  std::atomic<int64_t> read_nanos_{0};
  std::atomic<uint64_t> files_created_{0};
  std::atomic<uint64_t> files_deleted_{0};
};

}  // namespace topk

#endif  // TOPK_IO_IO_STATS_H_
