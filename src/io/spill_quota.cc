#include "io/spill_quota.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/obs_context.h"

namespace topk {

namespace {

ObsCounter& QuotaRejectedCounter() {
  static ObsCounter counter("spill.quota_rejections");
  return counter;
}
ObsGauge& QuotaChargedGauge() {
  static ObsGauge gauge("spill.quota_charged_bytes");
  return gauge;
}

}  // namespace

SpillQuota::SpillQuota(uint64_t quota_bytes) : quota_bytes_(quota_bytes) {}

uint64_t SpillQuota::charged_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return charged_;
}

Status SpillQuota::Charge(const std::string& path, uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (enabled() && charged_ + bytes > quota_bytes_ &&
      exempt_.find(path) == exempt_.end()) {
    QuotaRejectedCounter().Add(1);
    return Status::ResourceExhausted(
        "spill quota exceeded: appending " + std::to_string(bytes) +
        " bytes to " + path + " would use " +
        std::to_string(charged_ + bytes) + " of " +
        std::to_string(quota_bytes_) + " bytes (spill_quota_bytes)");
  }
  charged_ += bytes;
  per_path_[path] += bytes;
  QuotaChargedGauge().Set(static_cast<int64_t>(charged_));
  return Status::OK();
}

void SpillQuota::ChargeAtLeast(const std::string& path, uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t& charged_for_path = per_path_[path];
  if (bytes > charged_for_path) {
    charged_ += bytes - charged_for_path;
    charged_for_path = bytes;
    QuotaChargedGauge().Set(static_cast<int64_t>(charged_));
  }
  exempt_.erase(path);
}

uint64_t SpillQuota::CreditFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = per_path_.find(path);
  if (it == per_path_.end()) {
    exempt_.erase(path);
    return 0;
  }
  const uint64_t bytes = it->second;
  charged_ -= std::min(charged_, bytes);
  per_path_.erase(it);
  exempt_.erase(path);
  QuotaChargedGauge().Set(static_cast<int64_t>(charged_));
  return bytes;
}

void SpillQuota::AddExemption(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  exempt_.insert(path);
}

QuotaChargingWritableFile::QuotaChargingWritableFile(
    std::unique_ptr<WritableFile> base, std::string path, SpillQuota* quota)
    : base_(std::move(base)), path_(std::move(path)), quota_(quota) {}

Status QuotaChargingWritableFile::Append(std::string_view data) {
  Status admitted = quota_->Charge(path_, data.size());
  if (!admitted.ok()) return admitted;
  // A failed append below (already retried by the layer underneath) leaves
  // the charge in place: the accounting stays conservative and the whole
  // file's charge is credited back when the run is deleted.
  return base_->Append(data);
}

Status QuotaChargingWritableFile::Flush() { return base_->Flush(); }

Status QuotaChargingWritableFile::Close() { return base_->Close(); }

}  // namespace topk
