#include "io/async_io.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/obs_context.h"
#include "obs/trace.h"

namespace topk {

namespace {

/// Smoothing factor of the round-trip / consume-interval EWMAs: heavy
/// enough on history that one slow block does not whipsaw the window.
constexpr double kEwmaAlpha = 0.3;
/// Consume-interval samples required before the window may grow past one
/// block: the first refill interval includes reader-open noise, and a run
/// that dies young (the k-limited common case) never reaches the bar.
constexpr size_t kDepthWarmupSamples = 2;

double UpdateEwma(double ewma, double sample) {
  return ewma == 0.0 ? sample : kEwmaAlpha * sample + (1.0 - kEwmaAlpha) * ewma;
}

// Pipeline-wide metrics; the global handle is resolved once, and each
// event also lands in the current query's scoped registry when one is
// installed (ObsCounter dual recording).
ObsCounter& FlushBlocksCounter() {
  static ObsCounter counter("io.flush.blocks");
  return counter;
}
ObsHistogram& FlushBlockHistogram() {
  static ObsHistogram histogram("io.flush.block_nanos");
  return histogram;
}
ObsCounter& PrefetchBlocksCounter() {
  static ObsCounter counter("io.prefetch.blocks");
  return counter;
}
ObsHistogram& PrefetchBlockHistogram() {
  static ObsHistogram histogram("io.prefetch.block_nanos");
  return histogram;
}
ObsCounter& PrefetchUnconsumedCounter() {
  static ObsCounter counter("io.prefetch.blocks_unconsumed");
  return counter;
}
ObsCounter& PrefetchCancelledCounter() {
  static ObsCounter counter("io.prefetch.blocks_cancelled");
  return counter;
}
ObsGauge& PrefetchDepthGauge() {
  static ObsGauge gauge("io.prefetch.depth");
  return gauge;
}
ObsHistogram& PrefetchDepthHistogram() {
  static ObsHistogram histogram("io.prefetch.depth");
  return histogram;
}
ObsCounter& HedgeIssuedCounter() {
  static ObsCounter counter("io.hedge.issued");
  return counter;
}
ObsCounter& HedgeWinsCounter() {
  static ObsCounter counter("io.hedge.wins");
  return counter;
}
ObsCounter& HedgeWastedCounter() {
  static ObsCounter counter("io.hedge.wasted");
  return counter;
}
ObsCounter& ReadDeadlineCounter() {
  static ObsCounter counter("io.prefetch.deadline_exceeded");
  return counter;
}
/// Times a reader's depth cap was halved because the memory arbiter
/// reported soft pressure — the prefetch rung of the degradation ladder.
ObsCounter& PrefetchShrunkCounter() {
  static ObsCounter counter("mem.arbiter.prefetch_shrunk");
  return counter;
}
/// Appends that degraded to synchronous write-through because the arbiter
/// refused to lease the in-flight block copy.
ObsCounter& WriterSyncFallbackCounter() {
  static ObsCounter counter("mem.arbiter.writer_sync_fallback");
  return counter;
}

}  // namespace

void PrefetchBudget::AttachArbiter(MemoryArbiter* arbiter) {
  std::lock_guard<std::mutex> lock(mu_);
  arbiter_ = arbiter;
  lease_.Release();
}

bool PrefetchBudget::TryAcquire(size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (acquired_ + bytes > total_) return false;
  if (arbiter_ != nullptr) {
    // A refused (or fault-injected) grant is not an error here: the window
    // simply stops growing. Contain mode=throw injections too — TryAcquire
    // runs on pool threads where an escaping bad_alloc would abort.
    try {
      if (!lease_.attached()) {
        auto acquired = arbiter_->Acquire("prefetch-budget", 0);
        if (!acquired.ok()) return false;
        lease_ = std::move(acquired).value();
      }
      if (!lease_.EnsureAtLeast(acquired_ + bytes).ok()) return false;
    } catch (const std::bad_alloc&) {
      return false;
    }
  }
  acquired_ += bytes;
  return true;
}

void PrefetchBudget::Release(size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  acquired_ = bytes > acquired_ ? 0 : acquired_ - bytes;
  lease_.ShrinkTo(acquired_);
}

size_t PrefetchBudget::acquired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return acquired_;
}

void PrefetchBudget::AddReader() {
  std::lock_guard<std::mutex> lock(mu_);
  ++live_readers_;
}

void PrefetchBudget::RemoveReader() {
  std::lock_guard<std::mutex> lock(mu_);
  if (live_readers_ > 0) --live_readers_;
}

size_t PrefetchBudget::live_readers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_readers_;
}

size_t PrefetchBudget::available() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ - acquired_;
}

size_t ApportionPrefetchDepth(size_t budget_bytes, size_t live_runs,
                              size_t block_bytes) {
  if (block_bytes == 0) return 1;
  if (live_runs == 0) live_runs = 1;
  const size_t extra_slots = budget_bytes / block_bytes / live_runs;
  return std::min<size_t>(1 + extra_slots, kMaxPrefetchDepth);
}

DoubleBufferedWriter::DoubleBufferedWriter(std::unique_ptr<WritableFile> base,
                                           ThreadPool* pool,
                                           MemoryArbiter* arbiter)
    : base_(std::move(base)), pool_(pool), arbiter_(arbiter) {
  TOPK_CHECK(pool_ != nullptr) << "DoubleBufferedWriter needs a thread pool";
}

DoubleBufferedWriter::~DoubleBufferedWriter() {
  WaitForInflight();
  std::lock_guard<std::mutex> lock(mu_);
  if (!latched_.ok() && !error_observed_) {
    TOPK_LOG(Warning) << "background write error dropped in destructor: "
                      << latched_.ToString();
  }
}

Status DoubleBufferedWriter::WaitForInflight() {
  std::unique_lock<std::mutex> lock(mu_);
  if (!inflight_) return latched_;
  // Flush backpressure: the producer outran the background writer. Charge
  // the stall to the current phase as I/O wait.
  Stopwatch wait_watch;
  cv_.wait(lock, [this] { return !inflight_; });
  ObsRecordIoWait(wait_watch.ElapsedNanos());
  return latched_;
}

Status DoubleBufferedWriter::Append(std::string_view data) {
  Status latched = WaitForInflight();
  // No flush is in flight now and the background task is done touching our
  // state, so the members are safe to use without the lock.
  if (closed_) {
    return Status::FailedPrecondition("append to closed writer");
  }
  if (!latched.ok()) {
    error_observed_ = true;
    return latched;
  }
  if (arbiter_ != nullptr && !sync_fallback_) {
    // Lease the in-flight block copy. A refused grant (hard pressure,
    // budget exhausted, injected fault) degrades this writer to synchronous
    // write-through for good: the caller's buffer is written directly, no
    // copy is held, output stays byte-identical — just unoverlapped.
    bool leased = false;
    try {
      if (!lease_.attached()) {
        auto acquired = arbiter_->Acquire("double-buffered-writer", 0);
        if (acquired.ok()) lease_ = std::move(acquired).value();
      }
      leased = lease_.attached() && lease_.EnsureAtLeast(data.size()).ok();
    } catch (const std::bad_alloc&) {
      leased = false;
    }
    if (!leased) {
      sync_fallback_ = true;
      lease_.Release();
      WriterSyncFallbackCounter().Add(1);
    }
  }
  if (sync_fallback_) {
    return base_->Append(data);
  }
  writing_.assign(data.data(), data.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    inflight_ = true;
  }
  pool_->Schedule([this] {
    PhaseScope phase("io.flush");
    TraceSpan span("spill.flush_block", "io.bg");
    if (span.active()) {
      span.AddArg(TraceArg("bytes", writing_.size()));
    }
    Stopwatch watch;
    Status status = base_->Append(writing_);
    FlushBlocksCounter().Add(1);
    FlushBlockHistogram().Record(watch.ElapsedNanos());
    std::lock_guard<std::mutex> lock(mu_);
    if (!status.ok() && latched_.ok()) latched_ = status;
    inflight_ = false;
    cv_.notify_all();
  });
  return Status::OK();
}

Status DoubleBufferedWriter::Flush() {
  Status latched = WaitForInflight();
  if (closed_) {
    return Status::FailedPrecondition("flush of closed writer");
  }
  if (!latched.ok()) {
    error_observed_ = true;
    return latched;
  }
  return base_->Flush();
}

Status DoubleBufferedWriter::Close() {
  Status latched = WaitForInflight();
  if (closed_) return latched;
  closed_ = true;
  if (!latched.ok()) {
    error_observed_ = true;
    base_->Close();  // release the handle either way; keep the first error
    return latched;
  }
  return base_->Close();
}

PrefetchingBlockReader::PrefetchingBlockReader(
    std::unique_ptr<SequentialFile> base, ThreadPool* pool, size_t block_bytes,
    size_t depth_cap, PrefetchBudget* budget, SequentialFileFactory reopen,
    const PrefetchTuning& tuning)
    : pool_(pool),
      block_bytes_(block_bytes),
      depth_cap_(std::clamp<size_t>(depth_cap, 1, kMaxPrefetchDepth)),
      budget_(budget),
      reopen_(std::move(reopen)),
      tuning_(tuning) {
  TOPK_CHECK(pool_ != nullptr) << "PrefetchingBlockReader needs a thread pool";
  TOPK_CHECK(block_bytes_ > 0) << "block size must be positive";
  auto handle = std::make_shared<Handle>();
  handle->file = std::move(base);
  // Fetch the first block immediately: when a merge opens many runs, their
  // first blocks ride the storage round trip concurrently instead of one
  // after another.
  std::lock_guard<std::mutex> lock(mu_);
  if (budget_ != nullptr) {
    budget_->AddReader();
    budget_registered_ = true;
  }
  idle_handles_.push_back(std::move(handle));
  handles_total_ = 1;
  IssueOneLocked();
}

PrefetchingBlockReader::~PrefetchingBlockReader() {
  std::unique_lock<std::mutex> lock(mu_);
  stopping_ = true;
  cv_.wait(lock, [this] { return inflight_ == 0; });
  // Blocks fetched off storage but never handed to the consumer. After a
  // deliberate CancelPrefetch (merge stopped at k rows / the cutoff) they
  // are accounted as cancelled; otherwise they are overshoot — wasted
  // round trips the adaptive window should have avoided.
  uint64_t leftover = ring_.size();
  if (ready_size_ > 0 && ready_pos_ == 0) ++leftover;
  if (leftover > 0) {
    (cancelled_ ? PrefetchCancelledCounter() : PrefetchUnconsumedCounter())
        .Add(leftover);
  }
  if (budget_ != nullptr && reserved_slots_ > 0) {
    budget_->Release(reserved_slots_ * block_bytes_);
    reserved_slots_ = 0;
  }
  DeregisterLocked();
}

void PrefetchingBlockReader::CancelPrefetch() {
  std::lock_guard<std::mutex> lock(mu_);
  cancelled_ = true;
  stopping_ = true;  // in-flight fetches finish, but no new readahead
  // An abandoned run will never grow its window again: hand the budget
  // share back right now so surviving readers can re-apportion mid-step
  // instead of waiting for this reader's destruction.
  target_depth_ = 1;
  ReleaseExcessLocked();
  DeregisterLocked();
}

void PrefetchingBlockReader::DeregisterLocked() {
  if (budget_registered_) {
    budget_->RemoveReader();
    budget_registered_ = false;
  }
}

size_t PrefetchingBlockReader::DynamicDepthCapLocked() const {
  size_t cap = depth_cap_;
  if (budget_ != nullptr && tuning_.reapportion_depth) {
    // The cap was apportioned over the merge step's live runs at open time;
    // re-apportion over whoever is still alive so freed budget is inherited
    // immediately. Never below the opening cap — shrinking mid-run would
    // strand already-reserved slots.
    const size_t apportioned = ApportionPrefetchDepth(
        budget_->total(), budget_->live_readers(), block_bytes_);
    cap = std::clamp<size_t>(std::max(depth_cap_, apportioned), 1,
                             kMaxPrefetchDepth);
  }
  if (budget_ != nullptr && budget_->pressure_shrink() && cap > 1) {
    // Memory-arbiter soft pressure: halve the lookahead this reader may
    // target, reusing the same re-apportioning machinery. Excess slots
    // drain back to the budget (and its lease) via ReleaseExcessLocked.
    cap = std::max<size_t>(1, cap / 2);
    PrefetchShrunkCounter().Add(1);
  }
  return cap;
}

size_t PrefetchingBlockReader::target_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return target_depth_;
}

size_t PrefetchingBlockReader::max_target_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_target_depth_;
}

bool PrefetchingBlockReader::IssueOneLocked() {
  if (!latched_.ok()) return false;
  if (fetch_offset_ >= eof_offset_) return false;
  // Prefer the idle handle closest behind the claim (usually exactly at
  // it: the handle that completed the previous stripe).
  size_t best = idle_handles_.size();
  for (size_t i = 0; i < idle_handles_.size(); ++i) {
    if (idle_handles_[i]->pos > fetch_offset_) continue;
    if (best == idle_handles_.size() ||
        idle_handles_[i]->pos > idle_handles_[best]->pos) {
      best = i;
    }
  }
  std::shared_ptr<Handle> handle;
  if (best < idle_handles_.size()) {
    handle = std::move(idle_handles_[best]);
    idle_handles_.erase(idle_handles_.begin() + best);
  } else if (reopen_ != nullptr && handles_total_ < DynamicDepthCapLocked()) {
    auto opened = reopen_();
    if (!opened.ok()) return false;  // fewer slots, not a stream error
    handle = std::make_shared<Handle>();
    handle->file = std::move(*opened);
    ++handles_total_;
  } else {
    return false;  // the single handle is busy; its completion re-issues
  }
  const uint64_t offset = fetch_offset_;
  const uint64_t skip = offset - handle->pos;
  fetch_offset_ += block_bytes_;
  ++inflight_;
  ++inflight_by_offset_[offset];
  pool_->Schedule([this, handle = std::move(handle), offset, skip]() mutable {
    FetchStep(std::move(handle), offset, skip, /*is_hedge=*/false);
  });
  return true;
}

bool PrefetchingBlockReader::IssueHedgeLocked() {
  const uint64_t offset = consume_offset_;
  // Any handle at or before the block can serve the duplicate (forward
  // Skip only); prefer the furthest-advanced one.
  size_t best = idle_handles_.size();
  for (size_t i = 0; i < idle_handles_.size(); ++i) {
    if (idle_handles_[i]->pos > offset) continue;
    if (best == idle_handles_.size() ||
        idle_handles_[i]->pos > idle_handles_[best]->pos) {
      best = i;
    }
  }
  std::shared_ptr<Handle> handle;
  if (best < idle_handles_.size()) {
    handle = std::move(idle_handles_[best]);
    idle_handles_.erase(idle_handles_.begin() + best);
  } else if (reopen_ != nullptr &&
             handles_total_ < DynamicDepthCapLocked() + 1) {
    // One handle beyond the window cap is reserved for the hedge: the
    // whole window may legitimately be in flight when the straggler hits.
    auto opened = reopen_();
    if (!opened.ok()) return false;
    handle = std::make_shared<Handle>();
    handle->file = std::move(*opened);
    ++handles_total_;
  } else {
    return false;
  }
  hedged_.insert(offset);
  HedgeIssuedCounter().Add(1);
  if (TracingEnabled()) {
    TraceInstant("io.hedge", "io",
                 {TraceArg("offset", offset),
                  TraceArg("rtt_ewma_nanos", rtt_ewma_nanos_)});
  }
  const uint64_t skip = offset - handle->pos;
  ++inflight_;
  ++inflight_by_offset_[offset];
  pool_->Schedule([this, handle = std::move(handle), offset, skip]() mutable {
    FetchStep(std::move(handle), offset, skip, /*is_hedge=*/true);
  });
  return true;
}

void PrefetchingBlockReader::TopUpLocked() {
  if (stopping_ || !latched_.ok()) return;
  if (fetch_offset_ >= eof_offset_) {
    // Every remaining byte is claimed or consumed: the window is done
    // growing, so shed reservations instead of re-acquiring them.
    target_depth_ = 1;
    ReleaseExcessLocked();
    return;
  }
  // Pipelining ahead only starts once the run survived its first refill.
  // Most runs of a k-limited merge die inside block one; prefetching their
  // second block is the overshoot the io.prefetch.blocks_unconsumed
  // counter measures.
  if (blocks_promoted_ < 2) return;
  AcquireForTargetLocked();
  size_t usable = target_depth_;
  if (budget_ != nullptr) {
    usable = std::min(usable, 1 + reserved_slots_);
  }
  while (ring_.size() + inflight_ < usable) {
    if (!IssueOneLocked()) break;
  }
}

void PrefetchingBlockReader::FetchStep(std::shared_ptr<Handle> handle,
                                       uint64_t offset, uint64_t skip,
                                       bool is_hedge) {
  PhaseScope phase("io.prefetch");
  FetchedBlock block;
  block.data.resize(block_bytes_);
  Status status;
  int64_t nanos = 0;
  if (skip > 0) {
    // Reposition a reused (or freshly opened) handle onto this slot's
    // stripe: a relative seek, no storage round trip.
    status = handle->file->Skip(skip);
  }
  if (status.ok()) {
    TraceSpan span("merge.prefetch_block", "io.bg");
    Stopwatch watch;
    status = handle->file->Read(block_bytes_, block.data.data(), &block.size);
    nanos = watch.ElapsedNanos();
    if (span.active()) {
      span.AddArg(TraceArg("bytes", block.size));
    }
    PrefetchBlocksCounter().Add(1);
    PrefetchBlockHistogram().Record(nanos);
  }

  std::lock_guard<std::mutex> lock(mu_);
  --inflight_;
  auto of_it = inflight_by_offset_.find(offset);
  if (of_it != inflight_by_offset_.end() && --(of_it->second) <= 0) {
    inflight_by_offset_.erase(of_it);
  }
  // Did the other copy of this offset already deliver (hedge raced its
  // primary)? Then this completion — success or failure — is moot.
  const bool covered =
      offset < consume_offset_ || ring_.count(offset) > 0;
  const bool duplicate_in_flight = inflight_by_offset_.count(offset) > 0;
  if (!status.ok()) {
    // The handle's position is unknown after a failed seek/read; drop it.
    --handles_total_;
    // Only latch when no other copy of the block can still arrive: a dead
    // hedge (or a dead primary whose hedge won) is not a stream error.
    if (!covered && !duplicate_in_flight && latched_.ok()) latched_ = status;
  } else {
    handle->pos = offset + block.size;
    if (covered) {
      // Lost the race; the block already reached the consumer path.
      if (is_hedge) HedgeWastedCounter().Add(1);
    } else {
      if (block.size < block_bytes_) {
        // Short or empty read: the end of the file is at offset + size,
        // and no claim at or past it can produce data.
        eof_offset_ = std::min(eof_offset_, offset + block.size);
      }
      if (block.size > 0) {
        rtt_ewma_nanos_ =
            UpdateEwma(rtt_ewma_nanos_, static_cast<double>(nanos));
        ring_.emplace(offset, std::move(block));
        if (is_hedge) HedgeWinsCounter().Add(1);
      }
    }
    idle_handles_.push_back(std::move(handle));
  }
  if (fetch_offset_ >= eof_offset_ || !latched_.ok()) {
    if (inflight_ == 0) {
      // No further fetches can happen; shed reservations the held blocks
      // do not need so sibling runs can deepen.
      target_depth_ = 1;
      ReleaseExcessLocked();
      DeregisterLocked();
    }
  } else if (!stopping_) {
    TopUpLocked();
  }
  cv_.notify_all();
}

void PrefetchingBlockReader::AcquireForTargetLocked() {
  if (budget_ == nullptr) return;
  while (reserved_slots_ + 1 < target_depth_ &&
         budget_->TryAcquire(block_bytes_)) {
    ++reserved_slots_;
  }
}

void PrefetchingBlockReader::ReleaseExcessLocked() {
  if (budget_ == nullptr) return;
  // Reservations must keep covering blocks physically held in memory (the
  // ring plus every in-flight fetch buffer), minus the free first slot.
  const size_t held = ring_.size() + inflight_;
  const size_t needed =
      std::max(target_depth_ - 1, held > 0 ? held - 1 : 0);
  if (reserved_slots_ > needed) {
    budget_->Release((reserved_slots_ - needed) * block_bytes_);
    reserved_slots_ = needed;
  }
}

void PrefetchingBlockReader::UpdateTargetLocked() {
  if (consume_samples_ < kDepthWarmupSamples) return;
  if (rtt_ewma_nanos_ <= 0.0 || consume_ewma_nanos_ <= 0.0) return;
  const double ratio = rtt_ewma_nanos_ / consume_ewma_nanos_;
  const size_t want = std::clamp<size_t>(
      static_cast<size_t>(std::ceil(ratio)), 1, DynamicDepthCapLocked());
  if (want == target_depth_) return;
  const size_t old = target_depth_;
  target_depth_ = want;
  max_target_depth_ = std::max(max_target_depth_, want);
  PrefetchDepthGauge().Set(static_cast<int64_t>(want));
  PrefetchDepthHistogram().Record(static_cast<int64_t>(want));
  if (TracingEnabled()) {
    TraceInstant("prefetch.depth_change", "io",
                 {TraceArg("old", old), TraceArg("new", want),
                  TraceArg("rtt_ewma_nanos", rtt_ewma_nanos_),
                  TraceArg("consume_ewma_nanos", consume_ewma_nanos_)});
  }
}

void PrefetchingBlockReader::PromoteLocked() {
  auto it = ring_.begin();
  ready_ = std::move(it->second.data);
  ready_size_ = it->second.size;
  ready_pos_ = 0;
  ring_.erase(it);
  consume_offset_ += ready_size_;
  ++blocks_promoted_;
  hedged_.erase(hedged_.begin(), hedged_.lower_bound(consume_offset_));
  last_promote_ = std::chrono::steady_clock::now();
  last_promote_valid_ = true;
  ReleaseExcessLocked();
  TopUpLocked();
}

Status PrefetchingBlockReader::Read(size_t n, char* scratch,
                                    size_t* bytes_read) {
  *bytes_read = 0;
  if (ready_pos_ == ready_size_) {
    std::unique_lock<std::mutex> lock(mu_);
    if (last_promote_valid_ && ready_size_ > 0) {
      // The time from the last promotion to this refill *request* is the
      // consumer's pure merge time for one block — sampled before any
      // waiting below, so storage stalls never inflate it.
      const double delta = static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - last_promote_)
              .count());
      consume_ewma_nanos_ = UpdateEwma(consume_ewma_nanos_, delta);
      ++consume_samples_;
      UpdateTargetLocked();
    }
    Stopwatch wait_watch;
    for (;;) {
      // Blocks are promoted strictly in offset order; out-of-order
      // completions park in the ring until the cursor reaches them.
      if (!ring_.empty() && ring_.begin()->first == consume_offset_) break;
      if (consume_offset_ >= eof_offset_) {
        ready_size_ = 0;
        ready_pos_ = 0;
        DeregisterLocked();  // fully drained: never grows again
        ObsRecordIoWait(wait_watch.ElapsedNanos());
        return Status::OK();  // clean EOF
      }
      if (inflight_ == 0) {
        // Every claim has completed. A missing cursor block now means its
        // fetch failed (ring blocks before the error were served first).
        if (!latched_.ok()) {
          ObsRecordIoWait(wait_watch.ElapsedNanos());
          return latched_;
        }
        // Demand fetch: a Skip may have drained everything, or the
        // deferral kept the pipeline idle after the first block. Allowed
        // even after CancelPrefetch — a cancelled reader still serves its
        // consumer, one un-chained block per refill.
        if (!IssueOneLocked()) {
          return Status::IoError("prefetch pipeline has no readable handle");
        }
      }
      if (tuning_.cancel != nullptr && tuning_.cancel->ShouldStop()) {
        // Caller-initiated: surface promptly without waiting for the
        // in-flight fetch, and do NOT latch it as a stream error — the
        // pool-thread completion still lands in the ring and is released
        // (blocks_cancelled) at teardown.
        ObsRecordIoWait(wait_watch.ElapsedNanos());
        return tuning_.cancel->status();
      }
      const auto pred = [this] {
        return (!ring_.empty() && ring_.begin()->first == consume_offset_) ||
               inflight_ == 0 || consume_offset_ >= eof_offset_;
      };
      // Bounded waits, two reasons: a hedge threshold (duplicate the
      // straggling cursor fetch on a second handle) and the consumer
      // deadline (a hung storage call must surface as Unavailable, not
      // park the merge forever).
      const bool hedge_eligible =
          tuning_.hedge_reads && reopen_ != nullptr &&
          hedged_.count(consume_offset_) == 0 &&
          inflight_by_offset_.count(consume_offset_) > 0;
      int64_t hedge_wait_nanos = -1;
      if (hedge_eligible) {
        hedge_wait_nanos = std::max<int64_t>(
            tuning_.hedge_min_nanos,
            static_cast<int64_t>(tuning_.hedge_latency_multiplier *
                                 rtt_ewma_nanos_));
      }
      int64_t wait_nanos = hedge_wait_nanos;
      if (tuning_.read_deadline_nanos > 0) {
        const int64_t remaining =
            tuning_.read_deadline_nanos - wait_watch.ElapsedNanos();
        if (remaining <= 0) {
          ReadDeadlineCounter().Add(1);
          Status deadline = Status::Unavailable(
              "deadline exceeded waiting for block at offset " +
              std::to_string(consume_offset_));
          if (latched_.ok()) latched_ = deadline;
          ObsRecordIoWait(wait_watch.ElapsedNanos());
          return deadline;
        }
        wait_nanos =
            wait_nanos < 0 ? remaining : std::min(wait_nanos, remaining);
      }
      if (tuning_.cancel != nullptr) {
        // With a cancellation token armed, never park indefinitely: wait
        // in bounded slices so the top-of-loop poll observes a cancel
        // within one slice even when storage has hung.
        constexpr int64_t kCancelPollNanos = 10'000'000;  // 10 ms
        wait_nanos = wait_nanos < 0 ? kCancelPollNanos
                                    : std::min(wait_nanos, kCancelPollNanos);
      }
      if (wait_nanos < 0) {
        cv_.wait(lock, pred);
      } else if (!cv_.wait_for(lock, std::chrono::nanoseconds(wait_nanos),
                               pred)) {
        if (hedge_eligible && hedge_wait_nanos >= 0 &&
            wait_watch.ElapsedNanos() >= hedge_wait_nanos &&
            hedged_.count(consume_offset_) == 0 &&
            inflight_by_offset_.count(consume_offset_) > 0) {
          // Only hedge once the full hedge threshold has elapsed — a
          // cancel-poll slice waking early must not duplicate the fetch.
          IssueHedgeLocked();
        }
        // A deadline overrun is caught by the remaining-time check above
        // on the next iteration.
      }
    }
    ObsRecordIoWait(wait_watch.ElapsedNanos());
    PromoteLocked();
  }
  const size_t take = std::min(n, ready_size_ - ready_pos_);
  std::memcpy(scratch, ready_.data() + ready_pos_, take);
  ready_pos_ += take;
  *bytes_read = take;
  return Status::OK();
}

Status PrefetchingBlockReader::Skip(uint64_t n) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return inflight_ == 0; });
  if (!latched_.ok()) return latched_;
  uint64_t remaining = n;
  const uint64_t from_ready =
      std::min<uint64_t>(remaining, ready_size_ - ready_pos_);
  ready_pos_ += from_ready;
  remaining -= from_ready;
  while (remaining > 0 && !ring_.empty() &&
         ring_.begin()->first == consume_offset_) {
    // Consume completed prefetches before moving the cursor. Skips are
    // not promotions: the deferral still applies to the first block the
    // consumer actually reads.
    auto it = ring_.begin();
    FetchedBlock block = std::move(it->second);
    ring_.erase(it);
    consume_offset_ += block.size;
    const uint64_t use = std::min<uint64_t>(remaining, block.size);
    remaining -= use;
    if (use < block.size) {
      ready_ = std::move(block.data);
      ready_size_ = block.size;
      ready_pos_ = use;
    }
  }
  ReleaseExcessLocked();
  if (remaining > 0) {
    // Nothing buffered covers the rest: just advance the cursor. The next
    // fetch repositions whichever handle it picks with a relative seek, so
    // no storage call happens here.
    consume_offset_ += remaining;
    if (fetch_offset_ < consume_offset_) fetch_offset_ = consume_offset_;
  }
  if (ready_pos_ == ready_size_ && ring_.empty() &&
      consume_offset_ < eof_offset_) {
    // Buffers drained past the seek point: restart the eager first fetch.
    IssueOneLocked();
  }
  return Status::OK();
}

}  // namespace topk
