#include "io/async_io.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace topk {

namespace {

// Pipeline-wide metrics; handles resolved once, recording is lock-free.
MetricsCounter& FlushBlocksCounter() {
  static MetricsCounter* counter =
      GlobalMetrics().GetCounter("io.flush.blocks");
  return *counter;
}
LatencyHistogram& FlushBlockHistogram() {
  static LatencyHistogram* histogram =
      GlobalMetrics().GetHistogram("io.flush.block_nanos");
  return *histogram;
}
MetricsCounter& PrefetchBlocksCounter() {
  static MetricsCounter* counter =
      GlobalMetrics().GetCounter("io.prefetch.blocks");
  return *counter;
}
LatencyHistogram& PrefetchBlockHistogram() {
  static LatencyHistogram* histogram =
      GlobalMetrics().GetHistogram("io.prefetch.block_nanos");
  return *histogram;
}
MetricsCounter& PrefetchUnconsumedCounter() {
  static MetricsCounter* counter =
      GlobalMetrics().GetCounter("io.prefetch.blocks_unconsumed");
  return *counter;
}

}  // namespace

DoubleBufferedWriter::DoubleBufferedWriter(std::unique_ptr<WritableFile> base,
                                           ThreadPool* pool)
    : base_(std::move(base)), pool_(pool) {
  TOPK_CHECK(pool_ != nullptr) << "DoubleBufferedWriter needs a thread pool";
}

DoubleBufferedWriter::~DoubleBufferedWriter() {
  WaitForInflight();
  std::lock_guard<std::mutex> lock(mu_);
  if (!latched_.ok() && !error_observed_) {
    TOPK_LOG(Warning) << "background write error dropped in destructor: "
                      << latched_.ToString();
  }
}

Status DoubleBufferedWriter::WaitForInflight() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return !inflight_; });
  return latched_;
}

Status DoubleBufferedWriter::Append(std::string_view data) {
  Status latched = WaitForInflight();
  // No flush is in flight now and the background task is done touching our
  // state, so the members are safe to use without the lock.
  if (closed_) {
    return Status::FailedPrecondition("append to closed writer");
  }
  if (!latched.ok()) {
    error_observed_ = true;
    return latched;
  }
  writing_.assign(data.data(), data.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    inflight_ = true;
  }
  pool_->Schedule([this] {
    TraceSpan span("spill.flush_block", "io.bg");
    if (span.active()) {
      span.AddArg(TraceArg("bytes", writing_.size()));
    }
    Stopwatch watch;
    Status status = base_->Append(writing_);
    FlushBlocksCounter().Add(1);
    FlushBlockHistogram().Record(watch.ElapsedNanos());
    std::lock_guard<std::mutex> lock(mu_);
    if (!status.ok() && latched_.ok()) latched_ = status;
    inflight_ = false;
    cv_.notify_all();
  });
  return Status::OK();
}

Status DoubleBufferedWriter::Flush() {
  Status latched = WaitForInflight();
  if (closed_) {
    return Status::FailedPrecondition("flush of closed writer");
  }
  if (!latched.ok()) {
    error_observed_ = true;
    return latched;
  }
  return base_->Flush();
}

Status DoubleBufferedWriter::Close() {
  Status latched = WaitForInflight();
  if (closed_) return latched;
  closed_ = true;
  if (!latched.ok()) {
    error_observed_ = true;
    base_->Close();  // release the handle either way; keep the first error
    return latched;
  }
  return base_->Close();
}

PrefetchingBlockReader::PrefetchingBlockReader(
    std::unique_ptr<SequentialFile> base, ThreadPool* pool,
    size_t block_bytes)
    : base_(std::move(base)), pool_(pool), block_bytes_(block_bytes) {
  TOPK_CHECK(pool_ != nullptr) << "PrefetchingBlockReader needs a thread pool";
  TOPK_CHECK(block_bytes_ > 0) << "block size must be positive";
  // Fetch the first block immediately: when a merge opens many runs, their
  // first blocks ride the storage round trip concurrently instead of one
  // after another.
  StartPrefetch();
}

PrefetchingBlockReader::~PrefetchingBlockReader() {
  WaitForInflight();
  // Blocks fetched off storage but never handed to the consumer: wasted
  // round trips. A k-limited merge abandons each run with one block still
  // in the pipeline (and possibly an untouched ready block), so this
  // counter quantifies the ROADMAP's "prefetch overshoot" item.
  uint64_t unconsumed = fetched_size_ > 0 ? 1 : 0;
  if (ready_size_ > 0 && ready_pos_ == 0) ++unconsumed;
  if (unconsumed > 0) PrefetchUnconsumedCounter().Add(unconsumed);
}

void PrefetchingBlockReader::WaitForInflight() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return !inflight_; });
}

void PrefetchingBlockReader::StartPrefetch() {
  if (at_eof_ || !latched_.ok()) return;
  fetched_.resize(block_bytes_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    inflight_ = true;
  }
  pool_->Schedule([this] {
    TraceSpan span("merge.prefetch_block", "io.bg");
    Stopwatch watch;
    size_t got = 0;
    Status status = base_->Read(block_bytes_, fetched_.data(), &got);
    PrefetchBlocksCounter().Add(1);
    PrefetchBlockHistogram().Record(watch.ElapsedNanos());
    if (span.active()) {
      span.AddArg(TraceArg("bytes", got));
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (!status.ok()) {
      if (latched_.ok()) latched_ = status;
    } else {
      fetched_size_ = got;
      if (got == 0) at_eof_ = true;
    }
    inflight_ = false;
    cv_.notify_all();
  });
}

Status PrefetchingBlockReader::PromoteFetched() {
  // Called with no prefetch in flight. Ensure a block is available (a Skip
  // may have drained everything without restarting the pipeline).
  if (fetched_size_ == 0 && !at_eof_) {
    if (!latched_.ok()) return latched_;
    StartPrefetch();
    WaitForInflight();
  }
  if (!latched_.ok()) return latched_;
  ready_.swap(fetched_);
  ready_size_ = fetched_size_;
  ready_pos_ = 0;
  fetched_size_ = 0;
  ++blocks_promoted_;
  // Keep one block ahead of the consumer — but only once the run survived
  // its first refill. Most runs of a k-limited merge die inside block one;
  // prefetching their second block is the overshoot the
  // io.prefetch.blocks_unconsumed counter measures.
  if (blocks_promoted_ >= 2) StartPrefetch();
  return Status::OK();
}

Status PrefetchingBlockReader::Read(size_t n, char* scratch,
                                    size_t* bytes_read) {
  *bytes_read = 0;
  if (ready_pos_ == ready_size_) {
    WaitForInflight();
    TOPK_RETURN_NOT_OK(PromoteFetched());
    if (ready_size_ == 0) return Status::OK();  // clean EOF
  }
  const size_t take = std::min(n, ready_size_ - ready_pos_);
  std::memcpy(scratch, ready_.data() + ready_pos_, take);
  ready_pos_ += take;
  *bytes_read = take;
  return Status::OK();
}

Status PrefetchingBlockReader::Skip(uint64_t n) {
  WaitForInflight();
  if (!latched_.ok()) return latched_;
  uint64_t remaining = n;
  const uint64_t from_ready =
      std::min<uint64_t>(remaining, ready_size_ - ready_pos_);
  ready_pos_ += from_ready;
  remaining -= from_ready;
  if (remaining > 0 && fetched_size_ > 0) {
    // Consume the completed prefetch before seeking the base file.
    ready_.swap(fetched_);
    ready_size_ = fetched_size_;
    fetched_size_ = 0;
    ready_pos_ = std::min<uint64_t>(remaining, ready_size_);
    remaining -= ready_pos_;
  }
  if (remaining > 0) {
    TOPK_RETURN_NOT_OK(base_->Skip(remaining));
  }
  if (ready_pos_ == ready_size_) {
    // Buffers drained past the seek point: restart the pipeline.
    StartPrefetch();
  }
  return Status::OK();
}

}  // namespace topk
