#ifndef TOPK_IO_RUN_FILE_H_
#define TOPK_IO_RUN_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "histogram/bucket.h"
#include "io/async_io.h"
#include "io/block_io.h"
#include "io/retry.h"
#include "io/storage_env.h"
#include "row/row.h"

namespace topk {

class SpillQuota;

/// One entry of a run's sparse seek index: after `rows` rows (the last of
/// which has sort key `key`), the run file position is `bytes`. Runs stored
/// with such an index act as the paper's "runs stored in search structures"
/// (Sec 4.1): the merge logic can start mid-run without reading the prefix.
struct RunIndexEntry {
  double key = 0.0;
  uint64_t rows = 0;
  uint64_t bytes = 0;
};

/// Metadata describing one sorted run on secondary storage. Kept in memory
/// by the spill manager ("retain any information once gained", Sec 2.1); the
/// per-run histogram recorded here powers the merge planner's
/// lowest-keys-first policy, and the seek index powers the histogram-guided
/// offset skip of Sec 4.1.
struct RunMeta {
  uint64_t id = 0;
  std::string path;
  uint64_t rows = 0;
  uint64_t bytes = 0;
  /// Keys of the first and last row in run order (= query order).
  double first_key = 0.0;
  double last_key = 0.0;
  /// The histogram collected from this run while it was written. Bucket
  /// counts sum to at most `rows` (a partial tail segment carries no
  /// bucket).
  std::vector<HistogramBucket> histogram;
  /// Sparse seek index (every RunWriter index_stride rows).
  std::vector<RunIndexEntry> index;
  /// CRC-32C over the run's serialized row data (excluding the magic).
  uint32_t crc32c = 0;
};

/// Default seek-index granularity (rows between entries).
inline constexpr uint64_t kDefaultIndexStride = 1024;

/// Writes one sorted run. The caller appends rows in sorted (query) order;
/// the writer checks that invariant, accounts bytes, and produces RunMeta.
class RunWriter {
 public:
  /// Creates the file eagerly so I/O errors surface before rows are lost.
  /// `index_stride` > 0 records a RunIndexEntry every that-many rows.
  /// A non-null `io_pool` routes full blocks through a DoubleBufferedWriter
  /// so the storage round trip overlaps with run generation; the writer
  /// must not outlive the pool. `retry` governs transient-failure retries
  /// of every block write (stacked *under* the double buffer, so backoff
  /// runs on the pool thread). A non-null `quota` charges every block
  /// against the spill disk-space quota before it is written (above the
  /// retry layer: a quota breach is permanent ResourceExhausted, never
  /// retried). A non-null `arbiter` leases the double buffer's in-flight
  /// block copy; a refused lease degrades that writer to synchronous
  /// write-through instead of failing the run.
  static Result<std::unique_ptr<RunWriter>> Create(
      StorageEnv* env, std::string path, uint64_t run_id,
      const RowComparator& comparator,
      size_t block_bytes = kDefaultBlockBytes,
      uint64_t index_stride = kDefaultIndexStride,
      ThreadPool* io_pool = nullptr,
      const RetryPolicy& retry = RetryPolicy(),
      SpillQuota* quota = nullptr,
      MemoryArbiter* arbiter = nullptr);

  Status Append(const Row& row);

  /// Flushes, closes the file, and returns the run's metadata (histogram is
  /// attached by the caller / sizing policy afterwards if desired).
  Result<RunMeta> Finish();

  uint64_t rows_written() const { return meta_.rows; }
  uint64_t run_id() const { return meta_.id; }

 private:
  RunWriter(std::unique_ptr<BlockWriter> writer, std::string path,
            uint64_t run_id, const RowComparator& comparator,
            uint64_t index_stride);

  std::unique_ptr<BlockWriter> writer_;
  RowComparator comparator_;
  RunMeta meta_;
  /// Normalized key of the last appended row: the sorted-order invariant
  /// check is one integer compare and needs no copy of the row (the old
  /// full-Row copy duplicated the payload on every append).
  NormalizedKey last_key_norm_;
  std::string scratch_;
  uint64_t index_stride_;
  bool finished_ = false;
};

/// Inline integrity checking for a RunReader: when enabled, the reader
/// accumulates CRC-32C over every serialized row it returns and, at a clean
/// EOF, checks row count and checksum against the values recorded at write
/// time. A mismatch is permanent Corruption — by definition not transient,
/// so the retry layer never touches it. The check is skipped when the run
/// was entered mid-file via SkipToByte (the prefix never passed through the
/// CRC) or abandoned before EOF (a k-limited merge).
struct RunReadVerification {
  bool enabled = false;
  uint32_t expected_crc32c = 0;
  uint64_t expected_rows = 0;
  /// For error messages only.
  uint64_t run_id = 0;
};

/// Streams rows back from a run file in sorted order.
class RunReader {
 public:
  /// A non-null `prefetch_pool` inserts a PrefetchingBlockReader under the
  /// block reader so the next block is fetched while the current one is
  /// merged; the reader must not outlive the pool. `retry` governs
  /// transient-failure retries of every block read (under the prefetcher,
  /// so backoff rides the pool thread); `verify` enables inline CRC/row
  /// count verification at EOF. `prefetch_depth_cap` bounds the adaptive
  /// lookahead window (1 = fixed single-block lookahead) and
  /// `prefetch_budget` gates every window slot beyond the first. `tuning`
  /// carries the degraded-storage knobs (hedged reads, consumer deadline).
  static Result<std::unique_ptr<RunReader>> Open(
      StorageEnv* env, const std::string& path,
      size_t block_bytes = kDefaultBlockBytes,
      ThreadPool* prefetch_pool = nullptr,
      const RetryPolicy& retry = RetryPolicy(),
      const RunReadVerification& verify = RunReadVerification(),
      size_t prefetch_depth_cap = 1,
      PrefetchBudget* prefetch_budget = nullptr,
      const PrefetchTuning& tuning = PrefetchTuning());

  /// Reads the next row. Sets `*eof` at end of run; with verification
  /// enabled a clean EOF that fails the CRC / row-count check returns
  /// Corruption instead.
  Status Next(Row* row, bool* eof);

  /// Skips `bytes` of row data (must land exactly on a row boundary, e.g.
  /// a RunIndexEntry position). Only valid before the first Next().
  /// Disables EOF verification: the skipped prefix cannot be checksummed.
  Status SkipToByte(uint64_t bytes);

  /// Marks the remaining prefetch lookahead as deliberately discarded and
  /// stops the background pump (no-op without a prefetcher). Merges call
  /// this on every input when they stop early at k rows / the cutoff, so
  /// abandoned lookahead is counted under io.prefetch.blocks_cancelled
  /// instead of polluting the blocks_unconsumed overshoot signal.
  void CancelPrefetch();

 private:
  RunReader(std::unique_ptr<BlockReader> reader,
            const RunReadVerification& verify,
            PrefetchingBlockReader* prefetcher);

  std::unique_ptr<BlockReader> reader_;
  /// Borrowed from the stack under reader_ (null when prefetch is off).
  PrefetchingBlockReader* prefetcher_;
  std::vector<char> scratch_;
  RunReadVerification verify_;
  uint32_t crc_ = 0;
  uint64_t rows_read_ = 0;
  bool skipped_ = false;
};

/// Magic bytes at the head of every run file.
inline constexpr char kRunFileMagic[8] = {'T', 'K', 'R', 'U',
                                          'N', '0', '1', '\n'};

}  // namespace topk

#endif  // TOPK_IO_RUN_FILE_H_
