#include "io/io_stats.h"

#include <cstdio>

namespace topk {

std::string IoStats::ToString() const {
  const Snapshot snap = snapshot();
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "written=%.2f MiB (%llu calls) read=%.2f MiB (%llu calls) "
                "files=%llu",
                static_cast<double>(snap.bytes_written) / (1024.0 * 1024.0),
                static_cast<unsigned long long>(snap.write_calls),
                static_cast<double>(snap.bytes_read) / (1024.0 * 1024.0),
                static_cast<unsigned long long>(snap.read_calls),
                static_cast<unsigned long long>(snap.files_created));
  return buf;
}

}  // namespace topk
