#ifndef TOPK_IO_SPILL_MANAGER_H_
#define TOPK_IO_SPILL_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include <optional>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "io/async_io.h"
#include "io/manifest.h"
#include "io/run_file.h"
#include "io/spill_quota.h"
#include "io/storage_env.h"
#include "row/row.h"

namespace topk {

/// One run that OpenExisting refused to restore, with the reason. The run
/// file (if any) is left on disk for inspection; it is not registered and
/// its rows will be missing from a resumed merge.
struct QuarantinedRun {
  RunMeta meta;
  Status reason;
};

/// What OpenExisting found: how many manifest runs were verified and
/// registered, and which were quarantined instead of aborting the restore.
struct RestoreReport {
  size_t runs_restored = 0;
  std::vector<QuarantinedRun> quarantined;
};

/// Owns the temporary directory where an operator's sorted runs live,
/// allocates run ids/paths, keeps the registry of finished runs (with their
/// histograms), and cleans everything up on destruction. One instance per
/// operator execution; parallel workers may share one (it is thread-safe).
class SpillManager {
 public:
  /// Creates `dir` (and parents) if needed. Files are placed under it as
  /// run-<id>.tkr. `io` configures the background I/O pipeline shared by
  /// every run written to / read from this manager (0 threads, the
  /// default, keeps all I/O synchronous).
  static Result<std::unique_ptr<SpillManager>> Create(
      StorageEnv* env, std::string dir, const IoPipelineOptions& io = {});

  /// Re-opens an existing spill directory from a manifest previously
  /// written by SaveManifest: the listed runs are registered (optionally
  /// re-verified against their checksums) and run-id allocation continues
  /// past them. Enables resuming the merge phase of a crashed or paused
  /// operator without regenerating runs.
  static Result<std::unique_ptr<SpillManager>> Restore(
      StorageEnv* env, std::string dir, const std::string& manifest_filename,
      bool verify_runs, const RowComparator& comparator = RowComparator(),
      const IoPipelineOptions& io = {});

  /// The crash-recovery variant of Restore: every manifest run is verified
  /// end-to-end, and a run that fails verification (missing file, torn
  /// tail, checksum mismatch) is *quarantined* — recorded in `report` and
  /// left on disk, but not registered — instead of failing the whole
  /// restore. Only an unreadable manifest is fatal. Run-id allocation
  /// continues past every id the manifest mentions, including quarantined
  /// ones, so recovered merge output never collides with leftover files.
  static Result<std::unique_ptr<SpillManager>> OpenExisting(
      StorageEnv* env, std::string dir, const std::string& manifest_filename,
      const RowComparator& comparator = RowComparator(),
      const IoPipelineOptions& io = {}, RestoreReport* report = nullptr);

  /// Writes the current run registry as a manifest file inside the spill
  /// directory. Safe to call repeatedly (e.g. after every finished run).
  ///
  /// With a background I/O pool the write is scheduled asynchronously —
  /// SaveManifest returns once the registry snapshot is taken, and the
  /// storage round trip rides a pool worker. At most one manifest write is
  /// in flight; a newer request waits for the older one. Errors are latched
  /// and surfaced by the next SaveManifest or FlushManifest — a manifest is
  /// a recovery aid, so the run-generation hot path never stalls on it.
  /// Without a pool (the default) the write is synchronous as before.
  Status SaveManifest(const std::string& manifest_filename) const;

  /// Blocks until no manifest write is in flight and returns the latched
  /// error, if any (then clears it). Call before relying on the manifest
  /// being durable (e.g. pause-and-resume handoff).
  Status FlushManifest() const;

  ~SpillManager();

  SpillManager(const SpillManager&) = delete;
  SpillManager& operator=(const SpillManager&) = delete;

  /// Starts a new run file with a fresh id. `index_stride` controls the
  /// run's sparse seek index granularity (rows per entry). With a spill
  /// quota configured (IoPipelineOptions::spill_quota_bytes) the run's
  /// block writes are charged against it and fail with ResourceExhausted
  /// when it would be exceeded; an already-exhausted quota fails NewRun
  /// itself. `quota_exempt` marks the run as quota-exempt while it is
  /// written — used for consolidation output, which *reduces* net spill
  /// usage once its inputs are deleted, so refusing it under pressure
  /// would be self-defeating. The exemption ends when the finished run is
  /// registered via AddRun.
  Result<std::unique_ptr<RunWriter>> NewRun(
      const RowComparator& comparator,
      uint64_t index_stride = kDefaultIndexStride, bool quota_exempt = false);

  /// Registers a finished run in the registry. With auto-manifest enabled
  /// (SetAutoManifest) this also checkpoints the manifest, making the run
  /// registration itself the durable commit point of a merge step; a failed
  /// checkpoint is returned (and latched for FlushManifest) but does not
  /// undo the registration. Also settles the run's spill-quota charge to
  /// its final byte size and clears any write-time exemption.
  Status AddRun(RunMeta meta);

  /// Removes a run from the registry and deletes its file (used after a
  /// merge step consumed it).
  Status RemoveRun(uint64_t run_id);

  /// Removes a run from the registry *without* deleting its file, returning
  /// the file path. Crash-safe merge steps use this: inputs are released,
  /// the merged output is registered (checkpointing the manifest), and only
  /// once that checkpoint is durable are the released files deleted — so a
  /// crash at any point leaves a manifest whose runs all exist on disk.
  Result<std::string> ReleaseRun(uint64_t run_id);

  /// Deletes a spill file that is no longer registered (a released merge
  /// input, or an empty merge output). Transient delete faults are retried
  /// under the manager's RetryPolicy.
  Status DeleteSpillFile(const std::string& path);

  /// Enables auto-manifest mode: every AddRun checkpoints the registry to
  /// `<dir>/<manifest_filename>`. Callers that need the checkpoint durable
  /// (e.g. before deleting merge inputs) follow up with FlushManifest().
  void SetAutoManifest(std::string manifest_filename);

  bool auto_manifest_enabled() const;

  /// Writes the manifest now if auto-manifest mode is on (no-op otherwise).
  /// Non-OK results are also latched for FlushManifest, like background
  /// manifest writes.
  Status CheckpointManifest();

  /// Records an input-consumption checkpoint: every manifest write from
  /// now on (auto-checkpoints included) embeds it as a v3 ckpt record.
  /// The caller is responsible for ordering — take the snapshot only once
  /// every run it covers has been registered via AddRun.
  void SetManifestCheckpoint(const ManifestCheckpoint& checkpoint);

  /// The checkpoint read back by Restore/OpenExisting (empty if the
  /// manifest had none), updated by SetManifestCheckpoint.
  std::optional<ManifestCheckpoint> manifest_checkpoint() const;

  /// Drops the input checkpoint: subsequent manifest writes revert to the
  /// v2 (run-registry-only) format. The optimized operator clears it once
  /// the whole input is durable in runs, so merge-phase crashes resume
  /// from the runs alone instead of replaying input against them.
  void ClearManifestCheckpoint();

  /// Exclusive upper bound on the run ids allocated so far (the id the
  /// next NewRun would get). This is the ManifestCheckpoint::run_id_bound
  /// an input checkpoint taken right now should record.
  uint64_t run_id_bound() const;

  /// Tells the destructor to leave the spill directory (and every file in
  /// it) on disk. Used when suspending an operator whose state a later
  /// process will resume, and after a failed merge whose runs are still
  /// recoverable through the manifest.
  void DisownDir();

  /// Opens a registered run for reading. `prefetch_depth_cap` bounds the
  /// reader's adaptive lookahead window; 0 (the default) apportions the
  /// manager's prefetch memory budget across the currently registered runs
  /// (callers that know the merge width — the planner — pass an explicit
  /// cap instead). Every slot beyond the first is gated by the manager's
  /// shared PrefetchBudget, so concurrent merges can never exceed the
  /// configured budget regardless of the caps they pass.
  Result<std::unique_ptr<RunReader>> OpenRun(
      const RunMeta& meta, size_t prefetch_depth_cap = 0) const;

  /// Re-reads `meta`'s file end-to-end and checks row count, sort order,
  /// and the CRC-32C recorded at write time. Returns Corruption on any
  /// mismatch. Used to validate spilled state after suspicious storage
  /// behaviour.
  Status VerifyRun(const RunMeta& meta,
                   const RowComparator& comparator) const;

  /// Snapshot of the registered runs.
  std::vector<RunMeta> runs() const;

  size_t run_count() const;

  /// Sum of `rows` over all runs ever registered (not reduced by merges);
  /// this is the paper's "Rows" column: input rows written to runs.
  uint64_t total_rows_spilled() const;
  /// Sum of payload bytes over all runs ever registered.
  uint64_t total_bytes_spilled() const;
  /// Number of runs ever registered (the paper's "Runs" column).
  uint64_t total_runs_created() const;

  StorageEnv* env() const { return env_; }
  const std::string& dir() const { return dir_; }
  /// The shared background I/O pool (null in synchronous mode). RunWriters
  /// and RunReaders obtained from this manager borrow it, so they must be
  /// destroyed before the manager.
  ThreadPool* io_pool() const { return io_pool_.get(); }
  /// The I/O pipeline configuration this manager was created with.
  const IoPipelineOptions& io_options() const { return io_options_; }
  /// The shared prefetch-lookahead byte pool (see IoPipelineOptions::
  /// prefetch_memory_budget). Readers borrow it like the pool.
  PrefetchBudget* prefetch_budget() const { return &prefetch_budget_; }
  /// The spill disk-space quota (disabled when spill_quota_bytes was 0).
  SpillQuota* spill_quota() const { return &spill_quota_; }

 private:
  SpillManager(StorageEnv* env, std::string dir, const IoPipelineOptions& io);

  StorageEnv* env_;
  std::string dir_;
  IoPipelineOptions io_options_;
  /// Workers for background flushes and prefetches. Declared before the
  /// registry so it outlives nothing that matters; destroyed (joined) after
  /// the destructor body removed the directory — by then every borrowed
  /// writer/reader is gone.
  std::unique_ptr<ThreadPool> io_pool_;
  /// Bounds the summed prefetch lookahead of every reader opened through
  /// this manager. Mutable: opening a run for reading is logically const.
  mutable PrefetchBudget prefetch_budget_;
  /// Caps the bytes this manager may hold on disk at once (see
  /// IoPipelineOptions::spill_quota_bytes; 0 disables enforcement).
  mutable SpillQuota spill_quota_;
  /// Registration of this manager's degradation-ladder responder with
  /// io_options_.arbiter (0 = none): soft pressure flips the prefetch
  /// budget's shrink flag so readers halve their lookahead windows.
  MemoryArbiter::ResponderId pressure_responder_ = 0;
  /// Whether the destructor removes the directory. Cleared while Restore
  /// is still loading so a failed restore never destroys the on-disk state
  /// it was asked to recover.
  bool owns_dir_ = true;

  mutable std::mutex mu_;
  /// Non-empty once SetAutoManifest was called (guarded by mu_).
  std::string auto_manifest_;
  uint64_t next_run_id_ = 0;
  std::vector<RunMeta> runs_;
  /// Input-consumption checkpoint embedded in every manifest write once
  /// set (guarded by mu_; snapshotted together with the run registry).
  std::optional<ManifestCheckpoint> manifest_checkpoint_;
  uint64_t total_rows_spilled_ = 0;
  uint64_t total_bytes_spilled_ = 0;
  uint64_t total_runs_created_ = 0;

  /// Async-manifest state (guarded by manifest_mu_). The destructor waits
  /// for an in-flight write before removing the directory.
  mutable std::mutex manifest_mu_;
  mutable std::condition_variable manifest_cv_;
  mutable bool manifest_inflight_ = false;
  mutable Status manifest_latched_;
};

}  // namespace topk

#endif  // TOPK_IO_SPILL_MANAGER_H_
