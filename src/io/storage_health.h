#ifndef TOPK_IO_STORAGE_HEALTH_H_
#define TOPK_IO_STORAGE_HEALTH_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/stopwatch.h"

namespace topk {

/// Circuit breaker over the storage substrate. Each op class (write, read,
/// flush, close, delete) keeps a sliding window of recent call outcomes;
/// when the window shows sustained failure the breaker trips Open and every
/// further call in that class fails fast with Unavailable — no round trip,
/// no injected latency, no pool thread parked behind a dead storage
/// service. After a cooldown the breaker Half-Opens and admits a handful of
/// probe calls: if they all succeed it Closes again, if any fails it snaps
/// back to Open for another cooldown.
///
/// Failure classification: Unavailable and IoError count as failures (the
/// storage service misbehaved); ResourceExhausted / FailedPrecondition /
/// NotFound describe caller state and are not health signals (they are not
/// recorded at all).
class StorageHealth {
 public:
  enum class OpClass { kWrite = 0, kRead, kFlush, kClose, kDelete };
  static constexpr int kNumOpClasses = 5;

  /// Gauge encoding (worst state across op classes): 0 = closed,
  /// 1 = half-open, 2 = open.
  enum class State { kClosed = 0, kHalfOpen = 1, kOpen = 2 };

  struct Options {
    /// Outcomes remembered per op class.
    size_t window_size = 32;
    /// The breaker never trips before this many samples are in the window.
    size_t min_samples = 16;
    /// Failure fraction of the window at which the breaker trips Open.
    double failure_threshold = 0.5;
    /// Wall-clock spent Open before probes are admitted.
    int64_t open_cooldown_nanos = 50'000'000;  // 50 ms
    /// Consecutive probe successes required to Close from Half-Open.
    int half_open_probes = 3;
  };

  StorageHealth();
  explicit StorageHealth(const Options& options);

  /// Admission check before a storage call. OK while Closed (and for
  /// admitted Half-Open probes); Unavailable("circuit breaker open ...")
  /// while Open or when Half-Open probe slots are taken.
  Status AllowRequest(OpClass op);

  /// Feeds one completed call's outcome back into the window. Statuses
  /// that are neither success nor storage failure (see class comment) are
  /// ignored.
  void RecordOutcome(OpClass op, const Status& status, int64_t latency_nanos);

  State state(OpClass op) const;
  /// Worst state across all op classes (what the io.health.state gauge
  /// shows).
  State worst_state() const;

  static const char* OpClassName(OpClass op);
  static const char* StateName(State state);

 private:
  struct ClassState {
    State state = State::kClosed;
    /// Ring buffer of the last `window_size` outcomes (true = failure).
    std::vector<bool> window;
    size_t next = 0;
    size_t samples = 0;
    size_t failures = 0;
    /// ElapsedNanos() timestamp of the last Open transition.
    int64_t opened_at = 0;
    /// Half-open probe bookkeeping.
    int probes_admitted = 0;
    int probe_successes = 0;
  };

  void TransitionLocked(ClassState* cls, OpClass op, State next_state);
  void ResetWindowLocked(ClassState* cls);
  void PublishGaugeLocked();

  const Options options_;
  Stopwatch clock_;
  mutable std::mutex mu_;
  ClassState classes_[kNumOpClasses];
};

}  // namespace topk

#endif  // TOPK_IO_STORAGE_HEALTH_H_
