#include "io/storage_health.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/obs_context.h"
#include "obs/trace.h"

namespace topk {

namespace {

ObsGauge& HealthStateGauge() {
  static ObsGauge gauge("io.health.state");
  return gauge;
}
ObsCounter& HealthOpenedCounter() {
  static ObsCounter counter("io.health.opened");
  return counter;
}
ObsCounter& HealthFastFailCounter() {
  static ObsCounter counter("io.health.fast_fail");
  return counter;
}
ObsCounter& HealthProbesCounter() {
  static ObsCounter counter("io.health.probes");
  return counter;
}

bool IsHealthFailure(const Status& status) {
  // Only codes the *storage service* caused count against its health.
  // Caller-initiated outcomes — Cancelled, DeadlineExceeded (the query
  // gave up), InvalidArgument, Corruption-on-our-own-bytes, quota — say
  // nothing about whether the service is up, so they must neither trip
  // the breaker nor pollute the sliding window (RecordOutcome drops them
  // below).
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kIoError;
}

}  // namespace

StorageHealth::StorageHealth() : StorageHealth(Options()) {}

StorageHealth::StorageHealth(const Options& options) : options_(options) {
  for (ClassState& cls : classes_) {
    cls.window.assign(std::max<size_t>(1, options_.window_size), false);
  }
}

const char* StorageHealth::OpClassName(OpClass op) {
  switch (op) {
    case OpClass::kWrite: return "write";
    case OpClass::kRead: return "read";
    case OpClass::kFlush: return "flush";
    case OpClass::kClose: return "close";
    case OpClass::kDelete: return "delete";
  }
  return "unknown";
}

const char* StorageHealth::StateName(State state) {
  switch (state) {
    case State::kClosed: return "closed";
    case State::kHalfOpen: return "half_open";
    case State::kOpen: return "open";
  }
  return "unknown";
}

Status StorageHealth::AllowRequest(OpClass op) {
  std::lock_guard<std::mutex> lock(mu_);
  ClassState& cls = classes_[static_cast<int>(op)];
  switch (cls.state) {
    case State::kClosed:
      return Status::OK();
    case State::kOpen: {
      if (clock_.ElapsedNanos() - cls.opened_at >=
          options_.open_cooldown_nanos) {
        TransitionLocked(&cls, op, State::kHalfOpen);
        ++cls.probes_admitted;
        HealthProbesCounter().Add(1);
        return Status::OK();
      }
      HealthFastFailCounter().Add(1);
      return Status::Unavailable(
          std::string("circuit breaker open for storage ") + OpClassName(op) +
          " calls (failing fast)");
    }
    case State::kHalfOpen: {
      if (cls.probes_admitted < options_.half_open_probes) {
        ++cls.probes_admitted;
        HealthProbesCounter().Add(1);
        return Status::OK();
      }
      HealthFastFailCounter().Add(1);
      return Status::Unavailable(
          std::string("circuit breaker half-open for storage ") +
          OpClassName(op) + " calls (probe slots taken)");
    }
  }
  return Status::OK();
}

void StorageHealth::RecordOutcome(OpClass op, const Status& status,
                                  int64_t latency_nanos) {
  (void)latency_nanos;
  const bool failure = IsHealthFailure(status);
  if (!status.ok() && !failure) return;  // caller-state codes: not a signal
  std::lock_guard<std::mutex> lock(mu_);
  ClassState& cls = classes_[static_cast<int>(op)];
  if (cls.state == State::kHalfOpen) {
    if (failure) {
      // A probe died: the service is still sick. Snap back to Open and
      // restart the cooldown.
      TransitionLocked(&cls, op, State::kOpen);
    } else {
      ++cls.probe_successes;
      if (cls.probe_successes >= options_.half_open_probes) {
        TransitionLocked(&cls, op, State::kClosed);
      }
    }
    return;
  }
  if (cls.state == State::kOpen) return;  // stragglers from before the trip
  // Closed: slide the window.
  const size_t slot = cls.next;
  cls.next = (cls.next + 1) % cls.window.size();
  if (cls.samples < cls.window.size()) {
    ++cls.samples;
  } else if (cls.window[slot]) {
    --cls.failures;
  }
  cls.window[slot] = failure;
  if (failure) ++cls.failures;
  if (cls.samples >= std::max<size_t>(1, options_.min_samples) &&
      static_cast<double>(cls.failures) >=
          options_.failure_threshold * static_cast<double>(cls.samples)) {
    TransitionLocked(&cls, op, State::kOpen);
  }
}

StorageHealth::State StorageHealth::state(OpClass op) const {
  std::lock_guard<std::mutex> lock(mu_);
  return classes_[static_cast<int>(op)].state;
}

StorageHealth::State StorageHealth::worst_state() const {
  std::lock_guard<std::mutex> lock(mu_);
  State worst = State::kClosed;
  for (const ClassState& cls : classes_) {
    if (static_cast<int>(cls.state) > static_cast<int>(worst)) {
      worst = cls.state;
    }
  }
  return worst;
}

void StorageHealth::TransitionLocked(ClassState* cls, OpClass op,
                                     State next_state) {
  const State prev = cls->state;
  if (prev == next_state) return;
  cls->state = next_state;
  if (next_state == State::kOpen) {
    cls->opened_at = clock_.ElapsedNanos();
    HealthOpenedCounter().Add(1);
  }
  if (next_state == State::kHalfOpen) {
    cls->probes_admitted = 0;
    cls->probe_successes = 0;
  }
  if (next_state == State::kClosed) ResetWindowLocked(cls);
  PublishGaugeLocked();
  if (TracingEnabled()) {
    TraceInstant("io.health.state_change", "io",
                 {TraceArg("op", OpClassName(op)),
                  TraceArg("from", StateName(prev)),
                  TraceArg("to", StateName(next_state))});
  }
}

void StorageHealth::ResetWindowLocked(ClassState* cls) {
  std::fill(cls->window.begin(), cls->window.end(), false);
  cls->next = 0;
  cls->samples = 0;
  cls->failures = 0;
  cls->probes_admitted = 0;
  cls->probe_successes = 0;
}

void StorageHealth::PublishGaugeLocked() {
  State worst = State::kClosed;
  for (const ClassState& cls : classes_) {
    if (static_cast<int>(cls.state) > static_cast<int>(worst)) {
      worst = cls.state;
    }
  }
  HealthStateGauge().Set(static_cast<int64_t>(worst));
}

}  // namespace topk
