#ifndef TOPK_IO_RETRY_H_
#define TOPK_IO_RETRY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "common/query_control.h"
#include "common/random.h"
#include "common/status.h"
#include "io/storage_env.h"

namespace topk {

/// Process-wide admission control for retries: a token bucket shared by
/// every decorator that carries a pointer to it. Each retry withdraws one
/// token; each *successful* storage call refills a fraction of one. During
/// a brownout an N-way parallel merge then degrades to one bounded wave of
/// retries across all pool threads instead of N independent exponential
/// storms — once the bucket drains, further retries fail fast with
/// Unavailable until real successes refill it.
class RetryBudget {
 public:
  /// `capacity` tokens when full (also the starting balance);
  /// `refill_per_success` tokens credited per successful operation.
  explicit RetryBudget(double capacity = 64.0,
                       double refill_per_success = 0.1);

  /// Takes one token if available; false means the budget is exhausted and
  /// the caller must not retry.
  bool TryWithdraw();
  /// Credits the bucket for a successful call (saturating at capacity).
  void RecordSuccess();

  double capacity() const { return capacity_; }
  double tokens() const;
  /// Re-arms the bucket (tests and CLI reconfiguration).
  void Reset(double capacity, double refill_per_success);

 private:
  mutable std::mutex mu_;
  double capacity_;
  double refill_per_success_;
  double tokens_;
};

/// The budget shared by default across the process (all pool threads, all
/// operators). Decorators only consult it when a RetryPolicy points at it.
RetryBudget* GlobalRetryBudget();

/// Bounded-retry configuration for storage calls. On disaggregated storage
/// a transient failure (dropped round trip, storage-service hiccup) is the
/// common case, not the exception; retrying it at the block layer keeps the
/// whole operator oblivious. Only Status::Unavailable is ever retried —
/// torn writes, corruption, quota and genuine I/O errors are permanent and
/// surface immediately.
struct RetryPolicy {
  /// Total tries per operation (1 = no retries).
  int max_attempts = 4;
  /// Backoff before retry `i` grows exponentially from this value...
  int64_t initial_backoff_nanos = 1'000'000;  // 1 ms
  double backoff_multiplier = 2.0;
  /// ...capped here.
  int64_t max_backoff_nanos = 100'000'000;  // 100 ms
  /// Each backoff is scaled by a uniform factor in [1 - jitter, 1 + jitter]
  /// so a fleet of writers does not retry in lockstep.
  double jitter = 0.5;
  /// Overall wall-clock budget across all attempts of one operation
  /// (0 = unbounded). Once exceeded, the last error surfaces even if
  /// attempts remain.
  int64_t deadline_nanos = 0;
  /// Seed for the deterministic jitter stream. Each pool thread derives its
  /// own stream from this seed xor its thread id (PerThreadJitterRng), so
  /// concurrent threads never share a jitter sequence.
  uint64_t jitter_seed = 0x7e77;
  /// Optional shared retry-admission budget. When set, every retry must
  /// withdraw a token first; an empty bucket converts the retry into an
  /// immediate Unavailable ("retry budget exhausted"). Not owned.
  RetryBudget* retry_budget = nullptr;
  /// Optional query cancellation token (query_control.h). When set,
  /// RetryOp checks it before the first attempt and before every retry,
  /// and backs off with an interruptible wait: a cancelled query stops
  /// burning attempts (and budget tokens) immediately and surfaces the
  /// token's Cancelled/DeadlineExceeded status. Not owned.
  const CancellationToken* cancel = nullptr;

  static RetryPolicy NoRetries() {
    RetryPolicy policy;
    policy.max_attempts = 1;
    return policy;
  }
};

/// The retryable-vs-permanent classification: only Unavailable is safe to
/// retry. IoError/Corruption/ResourceExhausted describe state that a
/// repeat of the same call cannot fix (and retrying a Corruption would
/// just re-read the same bad bytes).
bool IsRetryable(const Status& status);

/// Backoff before retry number `retry` (1-based), with jitter drawn from
/// `rng`. Exposed for tests.
int64_t RetryBackoffNanos(const RetryPolicy& policy, int retry, Random* rng);

/// The calling thread's jitter stream for `jitter_seed`: lazily seeded from
/// `jitter_seed ^ hash(thread id)` and cached thread-locally per seed, so
/// pool threads retrying the same policy draw independent jitter and never
/// back off in lockstep.
Random* PerThreadJitterRng(uint64_t jitter_seed);

/// Runs `op` under `policy`: retries Unavailable results with exponential
/// backoff + jitter until success, a permanent error, attempt exhaustion,
/// budget exhaustion, or the deadline. Exhaustion/deadline return the last
/// error with the attempt count appended to its message (so a latched
/// background error records how many retries were burned). Emits
/// io.retry.attempts / io.retry.exhausted / io.retry.deadline_exceeded /
/// io.retry.budget_* counters, the io.retry.backoff_nanos histogram, and
/// io.retry trace instants. Pass jitter_rng = nullptr to use the calling
/// thread's PerThreadJitterRng stream.
Status RetryOp(const RetryPolicy& policy, const std::string& op_name,
               Random* jitter_rng, const std::function<Status()>& op);

/// WritableFile decorator applying RetryPolicy to Append/Flush/Close.
/// Stacks under DoubleBufferedWriter so background flushes retry on the
/// pool thread without stalling the producer.
class RetryingWritableFile : public WritableFile {
 public:
  RetryingWritableFile(std::unique_ptr<WritableFile> base, std::string name,
                       const RetryPolicy& policy);

  Status Append(std::string_view data) override;
  Status Flush() override;
  Status Close() override;

 private:
  std::unique_ptr<WritableFile> base_;
  std::string name_;
  RetryPolicy policy_;
};

/// SequentialFile decorator applying RetryPolicy to Read/Skip. A failed
/// Read consumed nothing, so the retried call resumes at the same offset.
class RetryingSequentialFile : public SequentialFile {
 public:
  RetryingSequentialFile(std::unique_ptr<SequentialFile> base,
                         std::string name, const RetryPolicy& policy);

  Status Read(size_t n, char* scratch, size_t* bytes_read) override;
  Status Skip(uint64_t n) override;

 private:
  std::unique_ptr<SequentialFile> base_;
  std::string name_;
  RetryPolicy policy_;
};

/// Wraps `file` in a RetryingWritableFile unless the policy disables
/// retries (max_attempts <= 1), in which case the file passes through
/// untouched — no extra virtual hop when retries are off.
std::unique_ptr<WritableFile> MaybeWrapWithRetries(
    std::unique_ptr<WritableFile> file, const std::string& name,
    const RetryPolicy& policy);
std::unique_ptr<SequentialFile> MaybeWrapWithRetries(
    std::unique_ptr<SequentialFile> file, const std::string& name,
    const RetryPolicy& policy);

}  // namespace topk

#endif  // TOPK_IO_RETRY_H_
