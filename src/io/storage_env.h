#ifndef TOPK_IO_STORAGE_ENV_H_
#define TOPK_IO_STORAGE_ENV_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "io/io_stats.h"

namespace topk {

/// Append-only file handle produced by StorageEnv.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(std::string_view data) = 0;
  virtual Status Flush() = 0;
  virtual Status Close() = 0;
};

/// Forward-only file handle produced by StorageEnv.
class SequentialFile {
 public:
  virtual ~SequentialFile() = default;

  /// Reads up to `n` bytes into `scratch`; `*bytes_read == 0` at EOF.
  virtual Status Read(size_t n, char* scratch, size_t* bytes_read) = 0;

  /// Skips `n` bytes forward (used by histogram-guided offset seeks).
  virtual Status Skip(uint64_t n) = 0;
};

/// The storage substrate. In F1 Query storage is disaggregated: every I/O is
/// a network round trip plus a storage-service invocation plus a disk access
/// (Sec 2.1 "Late Materialization"). We substitute local files and can
/// optionally inject a fixed latency per read/write call to emulate the
/// round trip; the essential property — sequential spills dominate cost,
/// random I/O is prohibitively expensive — is preserved either way.
///
/// The env also supports failure injection (fail the Nth write/read call),
/// which the tests use to verify that I/O errors propagate as Status through
/// every operator instead of crashing or corrupting results.
class StorageEnv {
 public:
  struct Options {
    /// Injected latency added to each write / read call (emulates a
    /// disaggregated storage round trip). 0 = plain local I/O.
    int64_t write_latency_nanos = 0;
    int64_t read_latency_nanos = 0;
    /// Disk quota: total bytes this env may write (0 = unlimited). Spills
    /// beyond the quota fail with ResourceExhausted — the operator-level
    /// equivalent of a full scratch volume.
    uint64_t max_bytes_written = 0;
  };

  StorageEnv() = default;
  explicit StorageEnv(Options options) : options_(options) {}

  StorageEnv(const StorageEnv&) = delete;
  StorageEnv& operator=(const StorageEnv&) = delete;

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path);
  Result<std::unique_ptr<SequentialFile>> NewSequentialFile(
      const std::string& path);

  Status DeleteFile(const std::string& path);
  Status CreateDirs(const std::string& path);
  Result<uint64_t> FileSize(const std::string& path);

  IoStats* stats() { return &stats_; }
  const Options& options() const { return options_; }

  /// Failure injection: the `n`th write Append() from now (1-based) fails
  /// with IoError. 0 disables injection.
  void InjectWriteFailure(uint64_t nth_call) { fail_write_at_ = nth_call; }
  /// Same for reads.
  void InjectReadFailure(uint64_t nth_call) { fail_read_at_ = nth_call; }

 private:
  friend class LocalWritableFile;
  friend class LocalSequentialFile;

  /// Returns true when this call should fail (and consumes the trigger).
  bool ShouldFailWrite();
  bool ShouldFailRead();

  Options options_;
  IoStats stats_;
  std::atomic<uint64_t> fail_write_at_{0};
  std::atomic<uint64_t> fail_read_at_{0};
  std::atomic<uint64_t> write_calls_seen_{0};
  std::atomic<uint64_t> read_calls_seen_{0};
};

}  // namespace topk

#endif  // TOPK_IO_STORAGE_ENV_H_
