#ifndef TOPK_IO_STORAGE_ENV_H_
#define TOPK_IO_STORAGE_ENV_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "io/io_stats.h"
#include "io/storage_health.h"

namespace topk {

/// Probabilistic fault model for the storage substrate, emulating the
/// failure modes of disaggregated storage (Sec 2.1: every I/O is a network
/// round trip): transient errors that succeed on retry, latency spikes,
/// torn writes, and silent bit flips. All draws come from one deterministic
/// xoshiro256** stream seeded by `seed`, so a single-threaded run replays
/// the exact same fault sequence.
///
/// Fault classification contract:
///   * transient   -> Status::Unavailable (retryable; nothing was written /
///                    read, so a retry is always safe)
///   * torn write  -> a prefix of the block hits storage, the handle is
///                    poisoned, and every later call returns the same
///                    permanent IoError (never retried)
///   * bit flip    -> Read succeeds with one corrupted bit; only checksum
///                    verification can catch it (Corruption, never retried)
///   * latency spike -> the call succeeds after an extra sleep
struct FaultProfile {
  /// Probability that an injectable call fails with Unavailable.
  double transient_fault_rate = 0.0;
  /// Probability that a read/write call sleeps `latency_spike_nanos` extra.
  double latency_spike_rate = 0.0;
  int64_t latency_spike_nanos = 2'000'000;  // 2 ms
  /// Probability that an Append persists only a prefix and poisons the
  /// handle permanently.
  double torn_write_rate = 0.0;
  /// Probability that a Read silently flips one bit of the returned data.
  double bit_flip_rate = 0.0;
  uint64_t seed = 0x5eed;

  bool enabled() const {
    return transient_fault_rate > 0 || latency_spike_rate > 0 ||
           torn_write_rate > 0 || bit_flip_rate > 0;
  }

  /// Parses a `--fault-profile` spec: comma-separated key=value pairs with
  /// keys transient, spike, spike-us, torn, bitflip, seed, e.g.
  ///   "transient=0.01,spike=0.005,spike-us=2000,torn=0.001,seed=7".
  static Result<FaultProfile> Parse(const std::string& spec);

  std::string ToString() const;
};

/// Append-only file handle produced by StorageEnv.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(std::string_view data) = 0;
  virtual Status Flush() = 0;
  virtual Status Close() = 0;
};

/// Forward-only file handle produced by StorageEnv.
class SequentialFile {
 public:
  virtual ~SequentialFile() = default;

  /// Reads up to `n` bytes into `scratch`; `*bytes_read == 0` at EOF.
  virtual Status Read(size_t n, char* scratch, size_t* bytes_read) = 0;

  /// Skips `n` bytes forward (used by histogram-guided offset seeks).
  virtual Status Skip(uint64_t n) = 0;
};

/// The storage substrate. In F1 Query storage is disaggregated: every I/O is
/// a network round trip plus a storage-service invocation plus a disk access
/// (Sec 2.1 "Late Materialization"). We substitute local files and can
/// optionally inject a fixed latency per read/write call to emulate the
/// round trip; the essential property — sequential spills dominate cost,
/// random I/O is prohibitively expensive — is preserved either way.
///
/// The env also supports failure injection, which the tests use to verify
/// that I/O errors propagate as Status through every operator instead of
/// crashing or corrupting results. Three mechanisms, composable:
///   * Nth-call permanent failures (InjectWriteFailure & friends): the Nth
///     call from now fails with IoError, exactly once. Permanent — the
///     retry layer must surface it, not mask it.
///   * Scripted transient failures (InjectTransientWriteFailures &c.): the
///     next N calls fail with Unavailable, then calls succeed again —
///     deterministic fuel for retry tests.
///   * A probabilistic FaultProfile (SetFaultProfile) driven by the
///     deterministic RNG, covering transients, latency spikes, torn writes
///     and bit flips.
class StorageEnv {
 public:
  struct Options {
    /// Injected latency added to each write / read call (emulates a
    /// disaggregated storage round trip). 0 = plain local I/O.
    int64_t write_latency_nanos = 0;
    int64_t read_latency_nanos = 0;
    /// Disk quota: total bytes this env may write (0 = unlimited). Spills
    /// beyond the quota fail with ResourceExhausted — the operator-level
    /// equivalent of a full scratch volume.
    uint64_t max_bytes_written = 0;
  };

  StorageEnv() = default;
  explicit StorageEnv(Options options) : options_(options) {}

  StorageEnv(const StorageEnv&) = delete;
  StorageEnv& operator=(const StorageEnv&) = delete;

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path);
  Result<std::unique_ptr<SequentialFile>> NewSequentialFile(
      const std::string& path);

  Status DeleteFile(const std::string& path);
  Status CreateDirs(const std::string& path);
  Result<uint64_t> FileSize(const std::string& path);

  IoStats* stats() { return &stats_; }
  const Options& options() const { return options_; }

  /// Failure injection: the `n`th write Append() from now (1-based) fails
  /// with IoError. 0 disables injection.
  void InjectWriteFailure(uint64_t nth_call) { fail_write_at_ = nth_call; }
  /// Same for reads.
  void InjectReadFailure(uint64_t nth_call) { fail_read_at_ = nth_call; }
  /// Same for Flush(), Close(), and DeleteFile() — the calls whose dropped
  /// errors historically hid data loss.
  void InjectFlushFailure(uint64_t nth_call) { fail_flush_at_ = nth_call; }
  void InjectCloseFailure(uint64_t nth_call) { fail_close_at_ = nth_call; }
  void InjectDeleteFailure(uint64_t nth_call) { fail_delete_at_ = nth_call; }

  /// Scripted transient failures: the next `calls` Append() calls fail with
  /// Unavailable (nothing written), then succeed again. Deterministic fuel
  /// for retry tests. Additive with any FaultProfile.
  void InjectTransientWriteFailures(uint64_t calls) {
    transient_writes_left_ = calls;
  }
  /// Same for reads.
  void InjectTransientReadFailures(uint64_t calls) {
    transient_reads_left_ = calls;
  }

  /// Installs (or, with a default-constructed profile, removes) the
  /// probabilistic fault model. Not thread-safe against in-flight I/O;
  /// install before handing the env to an operator.
  void SetFaultProfile(const FaultProfile& profile);
  const FaultProfile& fault_profile() const { return fault_profile_; }

  /// Installs a StorageHealth circuit breaker over every storage call this
  /// env serves: calls are admission-checked first (failing fast with
  /// Unavailable while the breaker is open) and their outcomes feed the
  /// per-op-class sliding windows. Install before handing the env to an
  /// operator; not thread-safe against in-flight I/O.
  void EnableStorageHealth(const StorageHealth::Options& options);
  /// The installed breaker, or nullptr when disabled.
  StorageHealth* health() { return health_.get(); }

 private:
  friend class LocalWritableFile;
  friend class LocalSequentialFile;

  /// The calls the fault model can target.
  enum class FaultOp { kWrite, kRead, kFlush, kClose, kDelete };
  /// What the fault model decided for one call.
  enum class FaultAction { kNone, kTransient, kLatencySpike, kTornWrite,
                           kBitFlip };

  /// Returns true when this call should fail (and consumes the trigger).
  bool ShouldFailWrite();
  bool ShouldFailRead();
  bool ShouldFailFlush();
  bool ShouldFailClose();
  bool ShouldFailDelete();
  /// Consumes one scripted transient failure, if any are left.
  bool ConsumeTransientWrite();
  bool ConsumeTransientRead();

  /// Draws this call's fault from the profile (kNone when disabled). Torn
  /// writes are only drawn for kWrite, bit flips only for kRead, latency
  /// spikes only for kWrite/kRead.
  FaultAction DrawFault(FaultOp op);
  /// Uniform value in [0, bound) from the fault RNG (for torn-write prefix
  /// lengths and bit-flip positions).
  uint64_t DrawFaultUint64(uint64_t bound);

  /// Circuit-breaker hooks (no-ops when no breaker is installed).
  Status HealthAllow(FaultOp op);
  void HealthRecord(FaultOp op, const Status& status, int64_t nanos);

  Options options_;
  IoStats stats_;
  std::atomic<uint64_t> fail_write_at_{0};
  std::atomic<uint64_t> fail_read_at_{0};
  std::atomic<uint64_t> fail_flush_at_{0};
  std::atomic<uint64_t> fail_close_at_{0};
  std::atomic<uint64_t> fail_delete_at_{0};
  std::atomic<uint64_t> write_calls_seen_{0};
  std::atomic<uint64_t> read_calls_seen_{0};
  std::atomic<uint64_t> flush_calls_seen_{0};
  std::atomic<uint64_t> close_calls_seen_{0};
  std::atomic<uint64_t> delete_calls_seen_{0};
  std::atomic<uint64_t> transient_writes_left_{0};
  std::atomic<uint64_t> transient_reads_left_{0};

  /// Fault-profile state. The RNG is not thread-safe; the mutex serializes
  /// draws from background I/O threads.
  FaultProfile fault_profile_;
  std::mutex fault_mu_;
  Random fault_rng_;

  /// Optional circuit breaker (EnableStorageHealth).
  std::unique_ptr<StorageHealth> health_;
};

}  // namespace topk

#endif  // TOPK_IO_STORAGE_ENV_H_
