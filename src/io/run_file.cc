#include "io/run_file.h"

#include <cstring>

#include "common/crc32.h"
#include "common/logging.h"
#include "io/async_io.h"
#include "io/spill_quota.h"
#include "row/serialization.h"

namespace topk {

RunWriter::RunWriter(std::unique_ptr<BlockWriter> writer, std::string path,
                     uint64_t run_id, const RowComparator& comparator,
                     uint64_t index_stride)
    : writer_(std::move(writer)),
      comparator_(comparator),
      index_stride_(index_stride) {
  meta_.id = run_id;
  meta_.path = std::move(path);
}

Result<std::unique_ptr<RunWriter>> RunWriter::Create(
    StorageEnv* env, std::string path, uint64_t run_id,
    const RowComparator& comparator, size_t block_bytes,
    uint64_t index_stride, ThreadPool* io_pool, const RetryPolicy& retry,
    SpillQuota* quota, MemoryArbiter* arbiter) {
  std::unique_ptr<WritableFile> file;
  TOPK_ASSIGN_OR_RETURN(file, env->NewWritableFile(path));
  // Stack: base -> retry -> quota -> double buffer. Background flushes
  // retry their transient failures on the pool thread; only an exhausted
  // retry budget reaches the double buffer's latch (with the attempt count
  // recorded in the message). The quota check sits above the retries:
  // ResourceExhausted is permanent, so a full quota fails the block
  // immediately instead of burning backoff on it.
  file = MaybeWrapWithRetries(std::move(file), path, retry);
  if (quota != nullptr) {
    file = std::make_unique<QuotaChargingWritableFile>(std::move(file), path,
                                                       quota);
  }
  if (io_pool != nullptr) {
    file = std::make_unique<DoubleBufferedWriter>(std::move(file), io_pool,
                                                  arbiter);
  }
  auto block_writer =
      std::make_unique<BlockWriter>(std::move(file), block_bytes);
  TOPK_RETURN_NOT_OK(
      block_writer->Append(std::string_view(kRunFileMagic, 8)));
  return std::unique_ptr<RunWriter>(
      new RunWriter(std::move(block_writer), std::move(path), run_id,
                    comparator, index_stride));
}

Status RunWriter::Append(const Row& row) {
  if (finished_) {
    return Status::FailedPrecondition("append to finished run");
  }
  const NormalizedKey norm = row.normalized_key(comparator_.direction());
  if (meta_.rows > 0 && norm < last_key_norm_) {
    return Status::InvalidArgument(
        "rows must be appended to a run in sorted order");
  }
  TOPK_RETURN_NOT_OK(ValidateRowPayload(row));
  scratch_.clear();
  SerializeRow(row, &scratch_);
  TOPK_RETURN_NOT_OK(writer_->Append(scratch_));
  meta_.crc32c = Crc32c(meta_.crc32c, scratch_.data(), scratch_.size());
  if (meta_.rows == 0) meta_.first_key = row.key;
  meta_.last_key = row.key;
  last_key_norm_ = norm;
  ++meta_.rows;
  if (index_stride_ > 0 && meta_.rows % index_stride_ == 0) {
    // Position after this row, relative to the start of row data (i.e.
    // excluding the file magic) — exactly what RunReader::SkipToByte wants.
    meta_.index.push_back(RunIndexEntry{
        row.key, meta_.rows, writer_->bytes_appended() - sizeof(kRunFileMagic)});
  }
  return Status::OK();
}

Result<RunMeta> RunWriter::Finish() {
  if (finished_) {
    return Status::FailedPrecondition("run already finished");
  }
  finished_ = true;
  TOPK_RETURN_NOT_OK(writer_->Close());
  meta_.bytes = writer_->bytes_appended();
  return meta_;
}

RunReader::RunReader(std::unique_ptr<BlockReader> reader,
                     const RunReadVerification& verify,
                     PrefetchingBlockReader* prefetcher)
    : reader_(std::move(reader)), prefetcher_(prefetcher), verify_(verify) {
  scratch_.resize(kRowHeaderBytes);
}

Result<std::unique_ptr<RunReader>> RunReader::Open(
    StorageEnv* env, const std::string& path, size_t block_bytes,
    ThreadPool* prefetch_pool, const RetryPolicy& retry,
    const RunReadVerification& verify, size_t prefetch_depth_cap,
    PrefetchBudget* prefetch_budget, const PrefetchTuning& tuning) {
  std::unique_ptr<SequentialFile> file;
  TOPK_ASSIGN_OR_RETURN(file, env->NewSequentialFile(path));
  // Stack: base -> retry -> prefetcher. Background prefetches retry their
  // transient failures on the pool thread; only an exhausted budget is
  // latched and surfaced to the merge.
  file = MaybeWrapWithRetries(std::move(file), path, retry);
  PrefetchingBlockReader* prefetcher = nullptr;
  if (prefetch_pool != nullptr) {
    // A window deeper than one block only overlaps round trips if the
    // slots can read concurrently; the factory opens extra handles on the
    // (immutable, fully written) run file, each retry-wrapped like the
    // first.
    SequentialFileFactory reopen;
    if (prefetch_depth_cap > 1 || prefetch_budget != nullptr ||
        tuning.hedge_reads) {
      reopen = [env, path, retry]() -> Result<std::unique_ptr<SequentialFile>> {
        std::unique_ptr<SequentialFile> extra;
        TOPK_ASSIGN_OR_RETURN(extra, env->NewSequentialFile(path));
        return MaybeWrapWithRetries(std::move(extra), path, retry);
      };
    }
    auto prefetching = std::make_unique<PrefetchingBlockReader>(
        std::move(file), prefetch_pool, block_bytes, prefetch_depth_cap,
        prefetch_budget, std::move(reopen), tuning);
    prefetcher = prefetching.get();
    file = std::move(prefetching);
  }
  auto block_reader =
      std::make_unique<BlockReader>(std::move(file), block_bytes);
  char magic[8];
  bool eof = false;
  TOPK_RETURN_NOT_OK(block_reader->ReadExact(8, magic, &eof));
  if (eof || std::memcmp(magic, kRunFileMagic, 8) != 0) {
    return Status::Corruption("not a run file: " + path);
  }
  return std::unique_ptr<RunReader>(
      new RunReader(std::move(block_reader), verify, prefetcher));
}

void RunReader::CancelPrefetch() {
  if (prefetcher_ != nullptr) prefetcher_->CancelPrefetch();
}

Status RunReader::SkipToByte(uint64_t bytes) {
  skipped_ = true;
  return reader_->Skip(bytes);
}

Status RunReader::Next(Row* row, bool* eof) {
  TOPK_RETURN_NOT_OK(
      reader_->ReadExact(kRowHeaderBytes, scratch_.data(), eof));
  const bool verifying = verify_.enabled && !skipped_;
  if (*eof) {
    // Clean end of run: with the whole run read, the stream must match the
    // checksum and row count recorded at write time. Catches bit flips
    // (silent storage corruption) and truncation at a row boundary, which
    // the framing checks below cannot see.
    if (verifying) {
      if (rows_read_ != verify_.expected_rows) {
        return Status::Corruption(
            "run " + std::to_string(verify_.run_id) + " has " +
            std::to_string(rows_read_) + " rows, expected " +
            std::to_string(verify_.expected_rows));
      }
      if (crc_ != verify_.expected_crc32c) {
        return Status::Corruption("run " + std::to_string(verify_.run_id) +
                                  " CRC-32C mismatch on read");
      }
    }
    return Status::OK();
  }
  size_t offset = 0;
  double key = 0.0;
  uint64_t id = 0;
  uint32_t len = 0;
  std::memcpy(&key, scratch_.data(), sizeof(key));
  offset += sizeof(key);
  std::memcpy(&id, scratch_.data() + offset, sizeof(id));
  offset += sizeof(id);
  std::memcpy(&len, scratch_.data() + offset, sizeof(len));
  if (len > kMaxRowPayloadBytes) {
    return Status::Corruption("row payload length " + std::to_string(len) +
                              " exceeds the format limit");
  }
  row->key = key;
  row->id = id;
  row->payload.resize(len);
  if (len > 0) {
    bool payload_eof = false;
    TOPK_RETURN_NOT_OK(
        reader_->ReadExact(len, row->payload.data(), &payload_eof));
    if (payload_eof) return Status::Corruption("run truncated mid-row");
  }
  if (verifying) {
    crc_ = Crc32c(crc_, scratch_.data(), kRowHeaderBytes);
    if (len > 0) crc_ = Crc32c(crc_, row->payload.data(), len);
    ++rows_read_;
  }
  return Status::OK();
}

}  // namespace topk
