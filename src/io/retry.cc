#include "io/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <unordered_map>

#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/obs_context.h"
#include "obs/trace.h"

namespace topk {

namespace {

ObsCounter& RetryAttemptsCounter() {
  static ObsCounter counter("io.retry.attempts");
  return counter;
}
ObsCounter& RetryExhaustedCounter() {
  static ObsCounter counter("io.retry.exhausted");
  return counter;
}
ObsCounter& RetryDeadlineCounter() {
  static ObsCounter counter("io.retry.deadline_exceeded");
  return counter;
}
ObsCounter& BudgetWithdrawnCounter() {
  static ObsCounter counter("io.retry.budget_withdrawn");
  return counter;
}
ObsCounter& BudgetExhaustedCounter() {
  static ObsCounter counter("io.retry.budget_exhausted");
  return counter;
}
ObsHistogram& RetryBackoffHistogram() {
  static ObsHistogram histogram("io.retry.backoff_nanos");
  return histogram;
}
ObsCounter& CancelledOpsCounter() {
  static ObsCounter counter("io.cancelled_ops");
  return counter;
}

Status WithAttempts(const Status& status, const std::string& op_name,
                    int attempts) {
  return Status(status.code(),
                op_name + " failed after " + std::to_string(attempts) +
                    (attempts == 1 ? " attempt: " : " attempts: ") +
                    status.message());
}

}  // namespace

RetryBudget::RetryBudget(double capacity, double refill_per_success)
    : capacity_(std::max(0.0, capacity)),
      refill_per_success_(std::max(0.0, refill_per_success)),
      tokens_(capacity_) {}

bool RetryBudget::TryWithdraw() {
  std::lock_guard<std::mutex> lock(mu_);
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

void RetryBudget::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  tokens_ = std::min(capacity_, tokens_ + refill_per_success_);
}

double RetryBudget::tokens() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tokens_;
}

void RetryBudget::Reset(double capacity, double refill_per_success) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = std::max(0.0, capacity);
  refill_per_success_ = std::max(0.0, refill_per_success);
  tokens_ = capacity_;
}

RetryBudget* GlobalRetryBudget() {
  static RetryBudget* budget = new RetryBudget();
  return budget;
}

bool IsRetryable(const Status& status) {
  // Only Unavailable. Cancelled/DeadlineExceeded are caller-initiated
  // (the query gave up, not the storage) and are permanent by design:
  // retrying them would spend attempts, budget tokens, and backoff sleeps
  // on a query nobody is waiting for.
  return status.code() == StatusCode::kUnavailable;
}

int64_t RetryBackoffNanos(const RetryPolicy& policy, int retry, Random* rng) {
  double backoff = static_cast<double>(policy.initial_backoff_nanos);
  for (int i = 1; i < retry; ++i) backoff *= policy.backoff_multiplier;
  backoff = std::min(backoff, static_cast<double>(policy.max_backoff_nanos));
  if (policy.jitter > 0 && rng != nullptr) {
    const double scale = 1.0 + policy.jitter * (2.0 * rng->NextDouble() - 1.0);
    backoff *= scale;
  }
  return std::max<int64_t>(0, static_cast<int64_t>(backoff));
}

Random* PerThreadJitterRng(uint64_t jitter_seed) {
  // One stream per (thread, seed): keyed on the seed so two policies with
  // different seeds on the same thread do not alternate within one stream.
  thread_local std::unordered_map<uint64_t, Random> streams;
  auto it = streams.find(jitter_seed);
  if (it == streams.end()) {
    const uint64_t thread_salt =
        std::hash<std::thread::id>{}(std::this_thread::get_id());
    it = streams.emplace(jitter_seed, Random(jitter_seed ^ thread_salt)).first;
  }
  return &it->second;
}

Status RetryOp(const RetryPolicy& policy, const std::string& op_name,
               Random* jitter_rng, const std::function<Status()>& op) {
  const int max_attempts = std::max(1, policy.max_attempts);
  if (jitter_rng == nullptr) jitter_rng = PerThreadJitterRng(policy.jitter_seed);
  // A cancelled query's ops fail fast before touching storage: no attempt,
  // no budget withdrawal, no health-window signal.
  if (policy.cancel != nullptr && policy.cancel->ShouldStop()) {
    CancelledOpsCounter().Add(1);
    return policy.cancel->status();
  }
  Stopwatch deadline_watch;
  Status status;
  for (int attempt = 1;; ++attempt) {
    status = op();
    if (status.ok()) {
      if (policy.retry_budget != nullptr) policy.retry_budget->RecordSuccess();
      return status;
    }
    if (!IsRetryable(status)) return status;
    // The op failed with a retryable error, but if the query has been
    // cancelled in the meantime the retry belongs to nobody: surface the
    // cancellation instead of the transient error.
    if (policy.cancel != nullptr && policy.cancel->ShouldStop()) {
      CancelledOpsCounter().Add(1);
      return policy.cancel->status();
    }
    if (attempt >= max_attempts) {
      RetryExhaustedCounter().Add(1);
      return WithAttempts(status, op_name, attempt);
    }
    const int64_t elapsed = deadline_watch.ElapsedNanos();
    if (policy.deadline_nanos > 0 && elapsed >= policy.deadline_nanos) {
      RetryExhaustedCounter().Add(1);
      RetryDeadlineCounter().Add(1);
      return WithAttempts(
          Status(status.code(), "retry deadline exceeded: " + status.message()),
          op_name, attempt);
    }
    if (policy.retry_budget != nullptr &&
        !policy.retry_budget->TryWithdraw()) {
      BudgetExhaustedCounter().Add(1);
      if (TracingEnabled()) {
        TraceInstant("io.retry.budget_exhausted", "io",
                     {TraceArg("op", op_name), TraceArg("attempt", attempt)});
      }
      return WithAttempts(
          Status(status.code(), "retry budget exhausted: " + status.message()),
          op_name, attempt);
    }
    if (policy.retry_budget != nullptr) BudgetWithdrawnCounter().Add(1);
    int64_t backoff = RetryBackoffNanos(policy, attempt, jitter_rng);
    if (policy.deadline_nanos > 0) {
      // Never sleep past the deadline: cap the backoff to what remains so
      // the final wait cannot overshoot the per-operation budget.
      backoff = std::min(backoff, policy.deadline_nanos - elapsed);
    }
    RetryAttemptsCounter().Add(1);
    RetryBackoffHistogram().Record(backoff);
    if (TracingEnabled()) {
      TraceInstant("io.retry", "io",
                   {TraceArg("op", op_name), TraceArg("attempt", attempt),
                    TraceArg("backoff_nanos", backoff)});
    }
    if (backoff > 0) {
      if (policy.cancel != nullptr) {
        // Interruptible backoff: a RequestCancel during the sleep wakes
        // the retrier immediately instead of after up to max_backoff.
        if (!policy.cancel->WaitFor(static_cast<uint64_t>(backoff))) {
          CancelledOpsCounter().Add(1);
          return policy.cancel->status();
        }
      } else {
        std::this_thread::sleep_for(std::chrono::nanoseconds(backoff));
      }
    }
  }
}

RetryingWritableFile::RetryingWritableFile(std::unique_ptr<WritableFile> base,
                                           std::string name,
                                           const RetryPolicy& policy)
    : base_(std::move(base)), name_(std::move(name)), policy_(policy) {}

Status RetryingWritableFile::Append(std::string_view data) {
  return RetryOp(policy_, "write " + name_, nullptr,
                 [&] { return base_->Append(data); });
}

Status RetryingWritableFile::Flush() {
  return RetryOp(policy_, "flush " + name_, nullptr,
                 [&] { return base_->Flush(); });
}

Status RetryingWritableFile::Close() {
  return RetryOp(policy_, "close " + name_, nullptr,
                 [&] { return base_->Close(); });
}

RetryingSequentialFile::RetryingSequentialFile(
    std::unique_ptr<SequentialFile> base, std::string name,
    const RetryPolicy& policy)
    : base_(std::move(base)), name_(std::move(name)), policy_(policy) {}

Status RetryingSequentialFile::Read(size_t n, char* scratch,
                                    size_t* bytes_read) {
  return RetryOp(policy_, "read " + name_, nullptr,
                 [&] { return base_->Read(n, scratch, bytes_read); });
}

Status RetryingSequentialFile::Skip(uint64_t n) {
  return RetryOp(policy_, "skip " + name_, nullptr,
                 [&] { return base_->Skip(n); });
}

std::unique_ptr<WritableFile> MaybeWrapWithRetries(
    std::unique_ptr<WritableFile> file, const std::string& name,
    const RetryPolicy& policy) {
  if (policy.max_attempts <= 1) return file;
  return std::make_unique<RetryingWritableFile>(std::move(file), name, policy);
}

std::unique_ptr<SequentialFile> MaybeWrapWithRetries(
    std::unique_ptr<SequentialFile> file, const std::string& name,
    const RetryPolicy& policy) {
  if (policy.max_attempts <= 1) return file;
  return std::make_unique<RetryingSequentialFile>(std::move(file), name,
                                                  policy);
}

}  // namespace topk
