#include "io/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace topk {

namespace {

MetricsCounter& RetryAttemptsCounter() {
  static MetricsCounter* counter =
      GlobalMetrics().GetCounter("io.retry.attempts");
  return *counter;
}
MetricsCounter& RetryExhaustedCounter() {
  static MetricsCounter* counter =
      GlobalMetrics().GetCounter("io.retry.exhausted");
  return *counter;
}
LatencyHistogram& RetryBackoffHistogram() {
  static LatencyHistogram* histogram =
      GlobalMetrics().GetHistogram("io.retry.backoff_nanos");
  return *histogram;
}

Status WithAttempts(const Status& status, const std::string& op_name,
                    int attempts) {
  return Status(status.code(),
                op_name + " failed after " + std::to_string(attempts) +
                    (attempts == 1 ? " attempt: " : " attempts: ") +
                    status.message());
}

}  // namespace

bool IsRetryable(const Status& status) {
  return status.code() == StatusCode::kUnavailable;
}

int64_t RetryBackoffNanos(const RetryPolicy& policy, int retry, Random* rng) {
  double backoff = static_cast<double>(policy.initial_backoff_nanos);
  for (int i = 1; i < retry; ++i) backoff *= policy.backoff_multiplier;
  backoff = std::min(backoff, static_cast<double>(policy.max_backoff_nanos));
  if (policy.jitter > 0 && rng != nullptr) {
    const double scale = 1.0 + policy.jitter * (2.0 * rng->NextDouble() - 1.0);
    backoff *= scale;
  }
  return std::max<int64_t>(0, static_cast<int64_t>(backoff));
}

Status RetryOp(const RetryPolicy& policy, const std::string& op_name,
               Random* jitter_rng, const std::function<Status()>& op) {
  const int max_attempts = std::max(1, policy.max_attempts);
  Stopwatch deadline_watch;
  Status status;
  for (int attempt = 1;; ++attempt) {
    status = op();
    if (status.ok() || !IsRetryable(status)) return status;
    if (attempt >= max_attempts) {
      RetryExhaustedCounter().Add(1);
      return WithAttempts(status, op_name, attempt);
    }
    if (policy.deadline_nanos > 0 &&
        deadline_watch.ElapsedNanos() >= policy.deadline_nanos) {
      RetryExhaustedCounter().Add(1);
      return WithAttempts(
          Status(status.code(), "retry deadline exceeded: " + status.message()),
          op_name, attempt);
    }
    const int64_t backoff = RetryBackoffNanos(policy, attempt, jitter_rng);
    RetryAttemptsCounter().Add(1);
    RetryBackoffHistogram().Record(backoff);
    if (TracingEnabled()) {
      TraceInstant("io.retry", "io",
                   {TraceArg("op", op_name), TraceArg("attempt", attempt),
                    TraceArg("backoff_nanos", backoff)});
    }
    if (backoff > 0) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(backoff));
    }
  }
}

RetryingWritableFile::RetryingWritableFile(std::unique_ptr<WritableFile> base,
                                           std::string name,
                                           const RetryPolicy& policy)
    : base_(std::move(base)),
      name_(std::move(name)),
      policy_(policy),
      rng_(policy.jitter_seed) {}

Status RetryingWritableFile::Append(std::string_view data) {
  return RetryOp(policy_, "write " + name_, &rng_,
                 [&] { return base_->Append(data); });
}

Status RetryingWritableFile::Flush() {
  return RetryOp(policy_, "flush " + name_, &rng_,
                 [&] { return base_->Flush(); });
}

Status RetryingWritableFile::Close() {
  return RetryOp(policy_, "close " + name_, &rng_,
                 [&] { return base_->Close(); });
}

RetryingSequentialFile::RetryingSequentialFile(
    std::unique_ptr<SequentialFile> base, std::string name,
    const RetryPolicy& policy)
    : base_(std::move(base)),
      name_(std::move(name)),
      policy_(policy),
      rng_(policy.jitter_seed) {}

Status RetryingSequentialFile::Read(size_t n, char* scratch,
                                    size_t* bytes_read) {
  return RetryOp(policy_, "read " + name_, &rng_,
                 [&] { return base_->Read(n, scratch, bytes_read); });
}

Status RetryingSequentialFile::Skip(uint64_t n) {
  return RetryOp(policy_, "skip " + name_, &rng_,
                 [&] { return base_->Skip(n); });
}

std::unique_ptr<WritableFile> MaybeWrapWithRetries(
    std::unique_ptr<WritableFile> file, const std::string& name,
    const RetryPolicy& policy) {
  if (policy.max_attempts <= 1) return file;
  return std::make_unique<RetryingWritableFile>(std::move(file), name, policy);
}

std::unique_ptr<SequentialFile> MaybeWrapWithRetries(
    std::unique_ptr<SequentialFile> file, const std::string& name,
    const RetryPolicy& policy) {
  if (policy.max_attempts <= 1) return file;
  return std::make_unique<RetryingSequentialFile>(std::move(file), name,
                                                  policy);
}

}  // namespace topk
