#ifndef TOPK_IO_SPILL_QUOTA_H_
#define TOPK_IO_SPILL_QUOTA_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "common/status.h"
#include "io/storage_env.h"

namespace topk {

/// Disk-space accounting for one spill directory. Every block appended to a
/// run file is charged against `quota_bytes` before it is written; once the
/// pool is full, further spill writes fail with ResourceExhausted naming
/// the quota — the operator-level equivalent of a scratch volume running
/// out, surfaced as a Status instead of a crashed query. Deleting a spill
/// file credits its bytes back, so merge steps that consolidate many runs
/// into one net-shrink the footprint.
///
/// Exempt paths exist for exactly one caller: emergency consolidation. When
/// the histogram operator consolidates to survive a full quota, the merged
/// output run must be writable while the pool is exhausted — its path is
/// exempt from the admission check (its bytes are still tracked, and the
/// exemption ends when the run registers via ChargeAtLeast).
class SpillQuota {
 public:
  /// `quota_bytes` = 0 disables enforcement (accounting still runs).
  explicit SpillQuota(uint64_t quota_bytes);

  bool enabled() const { return quota_bytes_ > 0; }
  uint64_t quota_bytes() const { return quota_bytes_; }
  uint64_t charged_bytes() const;

  /// Admission check + charge for `bytes` about to be appended to `path`.
  /// ResourceExhausted when the write would exceed the quota (and the path
  /// is not exempt); nothing is charged on failure.
  Status Charge(const std::string& path, uint64_t bytes);

  /// Raises `path`'s charge to at least `bytes` without ever failing — used
  /// when a finished or restored run registers with its final size (the
  /// bytes already exist on disk; refusing to account for them would only
  /// make the books wrong). Clears any consolidation exemption.
  void ChargeAtLeast(const std::string& path, uint64_t bytes);

  /// Returns `path`'s bytes to the pool (file deleted / released).
  uint64_t CreditFile(const std::string& path);

  /// Marks `path` exempt from the admission check until it registers.
  void AddExemption(const std::string& path);

 private:
  const uint64_t quota_bytes_;
  mutable std::mutex mu_;
  uint64_t charged_ = 0;
  std::unordered_map<std::string, uint64_t> per_path_;
  std::unordered_set<std::string> exempt_;
};

/// WritableFile decorator that charges every Append against a SpillQuota
/// before forwarding it. Stacks *above* the retry layer: ResourceExhausted
/// is permanent, so a quota breach fails the write immediately instead of
/// burning retries on an error no retry can fix.
class QuotaChargingWritableFile : public WritableFile {
 public:
  QuotaChargingWritableFile(std::unique_ptr<WritableFile> base,
                            std::string path, SpillQuota* quota);

  Status Append(std::string_view data) override;
  Status Flush() override;
  Status Close() override;

 private:
  std::unique_ptr<WritableFile> base_;
  std::string path_;
  SpillQuota* quota_;
};

}  // namespace topk

#endif  // TOPK_IO_SPILL_QUOTA_H_
