#include "io/spill_manager.h"

#include <algorithm>
#include <filesystem>

#include "common/crc32.h"
#include "common/logging.h"
#include "common/random.h"
#include "io/manifest.h"
#include "obs/metrics.h"
#include "obs/obs_context.h"
#include "obs/trace.h"
#include "row/serialization.h"

namespace topk {

namespace {

ObsCounter& RunsRestoredCounter() {
  static ObsCounter counter("resume.runs_restored");
  return counter;
}
ObsCounter& RunsQuarantinedCounter() {
  static ObsCounter counter("resume.runs_quarantined");
  return counter;
}

}  // namespace

SpillManager::SpillManager(StorageEnv* env, std::string dir,
                           const IoPipelineOptions& io)
    : env_(env),
      dir_(std::move(dir)),
      io_options_(io),
      prefetch_budget_(io.prefetch_memory_budget),
      spill_quota_(io.spill_quota_bytes) {
  if (io_options_.background_threads > 0) {
    io_pool_ = std::make_unique<ThreadPool>(io_options_.background_threads);
  }
  if (io_options_.arbiter != nullptr) {
    prefetch_budget_.AttachArbiter(io_options_.arbiter);
    // The push half of the degradation ladder: on a soft-pressure
    // transition, tell every reader sharing this manager's prefetch budget
    // to halve its lookahead. The responder only flips an atomic flag —
    // no locks, safe from any grant/release thread.
    pressure_responder_ = io_options_.arbiter->AddPressureResponder(
        [this](MemoryPressure level) {
          prefetch_budget_.SetPressureShrink(level >= MemoryPressure::kSoft);
        });
    // Transitions before this manager existed still apply.
    prefetch_budget_.SetPressureShrink(io_options_.arbiter->pressure() >=
                                       MemoryPressure::kSoft);
  }
}

SpillManager::~SpillManager() {
  if (io_options_.arbiter != nullptr && pressure_responder_ != 0) {
    io_options_.arbiter->RemovePressureResponder(pressure_responder_);
  }
  // An async manifest write may still reference env_ and the directory;
  // let it land (or fail) before tearing anything down.
  {
    std::unique_lock<std::mutex> lock(manifest_mu_);
    manifest_cv_.wait(lock, [this] { return !manifest_inflight_; });
    if (!manifest_latched_.ok()) {
      TOPK_LOG(Warning) << "background manifest write error dropped in "
                           "destructor: "
                        << manifest_latched_.ToString();
    }
  }
  if (!owns_dir_) return;
  std::error_code ec;
  std::filesystem::remove_all(dir_, ec);
  if (ec) {
    TOPK_LOG(Warning) << "failed to clean spill dir " << dir_ << ": "
                      << ec.message();
  }
}

Result<std::unique_ptr<SpillManager>> SpillManager::Create(
    StorageEnv* env, std::string dir, const IoPipelineOptions& io) {
  TOPK_RETURN_NOT_OK(env->CreateDirs(dir));
  return std::unique_ptr<SpillManager>(
      new SpillManager(env, std::move(dir), io));
}

Result<std::unique_ptr<SpillManager>> SpillManager::Restore(
    StorageEnv* env, std::string dir, const std::string& manifest_filename,
    bool verify_runs, const RowComparator& comparator,
    const IoPipelineOptions& io) {
  auto manager = std::unique_ptr<SpillManager>(
      new SpillManager(env, std::move(dir), io));
  // A failed restore must leave the directory intact for another attempt.
  manager->owns_dir_ = false;
  std::vector<RunMeta> runs;
  ManifestCheckpoint ckpt;
  bool has_ckpt = false;
  TOPK_ASSIGN_OR_RETURN(
      runs, ReadManifest(env, manager->dir_ + "/" + manifest_filename,
                         io.retry, &ckpt, &has_ckpt));
  if (has_ckpt) manager->SetManifestCheckpoint(ckpt);
  uint64_t max_id = 0;
  for (RunMeta& run : runs) {
    if (verify_runs) {
      TOPK_RETURN_NOT_OK(manager->VerifyRun(run, comparator));
    }
    max_id = std::max(max_id, run.id);
    manager->AddRun(std::move(run));
  }
  {
    std::lock_guard<std::mutex> lock(manager->mu_);
    // Also advance past the checkpoint's run-id frontier: runs above it
    // may have been deleted by a resume, and replay output must not reuse
    // their ids (a second crash would mistake it for covered state).
    manager->next_run_id_ =
        std::max(runs.empty() ? 0 : max_id + 1,
                 has_ckpt ? ckpt.run_id_bound : 0);
  }
  manager->owns_dir_ = true;  // restored successfully: normal lifecycle
  return manager;
}

Result<std::unique_ptr<SpillManager>> SpillManager::OpenExisting(
    StorageEnv* env, std::string dir, const std::string& manifest_filename,
    const RowComparator& comparator, const IoPipelineOptions& io,
    RestoreReport* report) {
  auto manager = std::unique_ptr<SpillManager>(
      new SpillManager(env, std::move(dir), io));
  // A failed open must leave the crashed operator's state on disk.
  manager->owns_dir_ = false;
  std::vector<RunMeta> runs;
  ManifestCheckpoint ckpt;
  bool has_ckpt = false;
  TOPK_ASSIGN_OR_RETURN(
      runs, ReadManifest(env, manager->dir_ + "/" + manifest_filename,
                         io.retry, &ckpt, &has_ckpt));
  if (has_ckpt) manager->SetManifestCheckpoint(ckpt);
  uint64_t max_id = 0;
  for (RunMeta& run : runs) {
    // Ids of quarantined runs count too: merge output written after the
    // resume must never collide with a leftover (possibly corrupt) file.
    max_id = std::max(max_id, run.id);
    Status verified = manager->VerifyRun(run, comparator);
    if (verified.ok()) {
      RunsRestoredCounter().Add(1);
      if (report != nullptr) ++report->runs_restored;
      manager->AddRun(std::move(run));
    } else {
      RunsQuarantinedCounter().Add(1);
      TOPK_LOG(Warning) << "quarantining run " << run.id << " (" << run.path
                        << "): " << verified.ToString();
      if (report != nullptr) {
        report->quarantined.push_back(
            QuarantinedRun{std::move(run), std::move(verified)});
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(manager->mu_);
    // Also advance past the checkpoint's run-id frontier: runs above it
    // may have been deleted by a resume, and replay output must not reuse
    // their ids (a second crash would mistake it for covered state).
    manager->next_run_id_ =
        std::max(runs.empty() ? 0 : max_id + 1,
                 has_ckpt ? ckpt.run_id_bound : 0);
  }
  manager->owns_dir_ = true;
  return manager;
}

Status SpillManager::SaveManifest(const std::string& manifest_filename) const {
  const std::string path = dir_ + "/" + manifest_filename;
  // Snapshot registry + checkpoint together under one lock so a manifest
  // never pairs a new checkpoint with an older run set (or vice versa).
  std::vector<RunMeta> snapshot;
  std::optional<ManifestCheckpoint> ckpt;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot = runs_;
    ckpt = manifest_checkpoint_;
  }
  if (io_pool_ == nullptr) {
    TraceSpan span("manifest.save", "io");
    return WriteManifest(env_, path, snapshot, io_options_.retry,
                         ckpt.has_value() ? &*ckpt : nullptr);
  }
  // The manifest reflects the state at the call; the storage round trip
  // rides the pool. One write in flight at a time keeps manifests ordered;
  // a burst of saves degrades to the previous synchronous behaviour rather
  // than queueing stale snapshots.
  std::unique_lock<std::mutex> lock(manifest_mu_);
  manifest_cv_.wait(lock, [this] { return !manifest_inflight_; });
  if (!manifest_latched_.ok()) {
    Status latched = manifest_latched_;
    manifest_latched_ = Status::OK();
    return latched;
  }
  manifest_inflight_ = true;
  io_pool_->Schedule([this, path, snapshot = std::move(snapshot),
                      ckpt = std::move(ckpt)] {
    TraceSpan span("manifest.save", "io.bg",
                   {TraceArg("runs", snapshot.size())});
    Status status = WriteManifest(env_, path, snapshot, io_options_.retry,
                                  ckpt.has_value() ? &*ckpt : nullptr);
    std::lock_guard<std::mutex> inner(manifest_mu_);
    if (!status.ok() && manifest_latched_.ok()) manifest_latched_ = status;
    manifest_inflight_ = false;
    manifest_cv_.notify_all();
  });
  return Status::OK();
}

Status SpillManager::FlushManifest() const {
  std::unique_lock<std::mutex> lock(manifest_mu_);
  manifest_cv_.wait(lock, [this] { return !manifest_inflight_; });
  Status latched = manifest_latched_;
  manifest_latched_ = Status::OK();
  return latched;
}

Result<std::unique_ptr<RunWriter>> SpillManager::NewRun(
    const RowComparator& comparator, uint64_t index_stride,
    bool quota_exempt) {
  if (spill_quota_.enabled() && !quota_exempt &&
      spill_quota_.charged_bytes() >= spill_quota_.quota_bytes()) {
    // Fail before creating the file: a run that cannot accept a single
    // block only burns an id and leaves an empty file to clean up.
    return Status::ResourceExhausted(
        "spill quota exhausted: " +
        std::to_string(spill_quota_.charged_bytes()) + " of " +
        std::to_string(spill_quota_.quota_bytes()) +
        " bytes already on disk (spill_quota_bytes)");
  }
  uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_run_id_++;
  }
  std::string path = dir_ + "/run-" + std::to_string(id) + ".tkr";
  if (spill_quota_.enabled() && quota_exempt) {
    spill_quota_.AddExemption(path);
  }
  return RunWriter::Create(env_, std::move(path), id, comparator,
                           kDefaultBlockBytes, index_stride, io_pool_.get(),
                           io_options_.retry,
                           spill_quota_.enabled() ? &spill_quota_ : nullptr,
                           io_options_.arbiter);
}

Status SpillManager::AddRun(RunMeta meta) {
  if (spill_quota_.enabled()) {
    // Settle the charge to the run's final size (covers restored runs and
    // merge output written through other paths) and end any write-time
    // exemption — from here on the run occupies real quota.
    spill_quota_.ChargeAtLeast(meta.path, meta.bytes);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    total_rows_spilled_ += meta.rows;
    total_bytes_spilled_ += meta.bytes;
    ++total_runs_created_;
    runs_.push_back(std::move(meta));
    // Spill high-water mark for the profile report: bytes of registered
    // runs simultaneously on disk (not the lifetime total_bytes_spilled_,
    // which keeps counting runs the merges already consumed and deleted).
    uint64_t on_disk = 0;
    for (const RunMeta& run : runs_) on_disk += run.bytes;
    ObsNoteSpillBytes(on_disk);
  }
  // Outside mu_: CheckpointManifest snapshots the registry itself. Errors
  // are latched there; registration is not undone by a failed checkpoint.
  return CheckpointManifest();
}

Status SpillManager::RemoveRun(uint64_t run_id) {
  std::string path;
  TOPK_ASSIGN_OR_RETURN(path, ReleaseRun(run_id));
  return DeleteSpillFile(path);
}

Result<std::string> SpillManager::ReleaseRun(uint64_t run_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = std::find_if(runs_.begin(), runs_.end(),
                         [&](const RunMeta& m) { return m.id == run_id; });
  if (it == runs_.end()) {
    return Status::NotFound("run " + std::to_string(run_id) +
                            " not registered");
  }
  std::string path = it->path;
  runs_.erase(it);
  return path;
}

Status SpillManager::DeleteSpillFile(const std::string& path) {
  // Deterministic per-path jitter seed; a local RNG keeps concurrent
  // deletes race-free without another manager-wide lock.
  Random rng(io_options_.retry.jitter_seed ^
             static_cast<uint64_t>(std::hash<std::string>{}(path)));
  Status status = RetryOp(io_options_.retry, "delete " + path, &rng,
                          [&] { return env_->DeleteFile(path); });
  if (status.ok() && spill_quota_.enabled()) {
    // The bytes are off the disk: return them to the quota.
    spill_quota_.CreditFile(path);
  }
  return status;
}

void SpillManager::SetAutoManifest(std::string manifest_filename) {
  std::lock_guard<std::mutex> lock(mu_);
  auto_manifest_ = std::move(manifest_filename);
}

bool SpillManager::auto_manifest_enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !auto_manifest_.empty();
}

Status SpillManager::CheckpointManifest() {
  std::string filename;
  {
    std::lock_guard<std::mutex> lock(mu_);
    filename = auto_manifest_;
  }
  if (filename.empty()) return Status::OK();
  Status status = SaveManifest(filename);
  if (!status.ok()) {
    // Mirror the background-write contract: a failed checkpoint stays
    // latched until FlushManifest surfaces it.
    std::lock_guard<std::mutex> lock(manifest_mu_);
    if (manifest_latched_.ok()) manifest_latched_ = status;
  }
  return status;
}

void SpillManager::SetManifestCheckpoint(const ManifestCheckpoint& checkpoint) {
  std::lock_guard<std::mutex> lock(mu_);
  manifest_checkpoint_ = checkpoint;
}

std::optional<ManifestCheckpoint> SpillManager::manifest_checkpoint() const {
  std::lock_guard<std::mutex> lock(mu_);
  return manifest_checkpoint_;
}

void SpillManager::ClearManifestCheckpoint() {
  std::lock_guard<std::mutex> lock(mu_);
  manifest_checkpoint_.reset();
}

uint64_t SpillManager::run_id_bound() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_run_id_;
}

void SpillManager::DisownDir() {
  std::lock_guard<std::mutex> lock(mu_);
  owns_dir_ = false;
}

Result<std::unique_ptr<RunReader>> SpillManager::OpenRun(
    const RunMeta& meta, size_t prefetch_depth_cap) const {
  ThreadPool* prefetch_pool =
      io_options_.enable_prefetch ? io_pool_.get() : nullptr;
  RunReadVerification verify;
  if (io_options_.verify_read_checksums) {
    verify.enabled = true;
    verify.expected_crc32c = meta.crc32c;
    verify.expected_rows = meta.rows;
    verify.run_id = meta.id;
  }
  PrefetchTuning tuning;
  tuning.hedge_reads = io_options_.hedge_reads;
  tuning.hedge_latency_multiplier = io_options_.hedge_latency_multiplier;
  tuning.hedge_min_nanos = io_options_.hedge_min_nanos;
  tuning.read_deadline_nanos = io_options_.retry.deadline_nanos;
  tuning.cancel = io_options_.retry.cancel;
  if (prefetch_depth_cap == 0) {
    // No plan-time cap from the caller: assume every registered run may be
    // read concurrently and split the budget evenly. Such apportioned caps
    // may be re-derived mid-merge as sibling readers finish and leave the
    // shared budget (explicit caps from the planner stay pinned).
    tuning.reapportion_depth = true;
    prefetch_depth_cap =
        ApportionPrefetchDepth(io_options_.prefetch_memory_budget, run_count(),
                               kDefaultBlockBytes);
  }
  return RunReader::Open(env_, meta.path, kDefaultBlockBytes, prefetch_pool,
                         io_options_.retry, verify, prefetch_depth_cap,
                         &prefetch_budget_, tuning);
}

Status SpillManager::VerifyRun(const RunMeta& meta,
                               const RowComparator& comparator) const {
  std::unique_ptr<RunReader> reader;
  // No inline verification: this path computes row count, order, and CRC
  // itself and reports richer mismatch messages.
  TOPK_ASSIGN_OR_RETURN(
      reader, RunReader::Open(env_, meta.path, kDefaultBlockBytes,
                              /*prefetch_pool=*/nullptr, io_options_.retry));
  Row row, previous;
  uint64_t rows = 0;
  uint32_t crc = 0;
  std::string scratch;
  for (;;) {
    bool eof = false;
    TOPK_RETURN_NOT_OK(reader->Next(&row, &eof));
    if (eof) break;
    if (rows > 0 && comparator.Less(row, previous)) {
      return Status::Corruption("run " + std::to_string(meta.id) +
                                " is not sorted at row " +
                                std::to_string(rows));
    }
    scratch.clear();
    SerializeRow(row, &scratch);
    crc = Crc32c(crc, scratch.data(), scratch.size());
    previous = row;
    ++rows;
  }
  if (rows != meta.rows) {
    return Status::Corruption(
        "run " + std::to_string(meta.id) + " has " + std::to_string(rows) +
        " rows, expected " + std::to_string(meta.rows));
  }
  if (crc != meta.crc32c) {
    return Status::Corruption("run " + std::to_string(meta.id) +
                              " CRC mismatch");
  }
  return Status::OK();
}

std::vector<RunMeta> SpillManager::runs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return runs_;
}

size_t SpillManager::run_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return runs_.size();
}

uint64_t SpillManager::total_rows_spilled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_rows_spilled_;
}

uint64_t SpillManager::total_bytes_spilled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_bytes_spilled_;
}

uint64_t SpillManager::total_runs_created() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_runs_created_;
}

}  // namespace topk
