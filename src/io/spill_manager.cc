#include "io/spill_manager.h"

#include <algorithm>
#include <filesystem>

#include "common/crc32.h"
#include "common/logging.h"
#include "io/manifest.h"
#include "obs/trace.h"
#include "row/serialization.h"

namespace topk {

SpillManager::SpillManager(StorageEnv* env, std::string dir,
                           const IoPipelineOptions& io)
    : env_(env), dir_(std::move(dir)), io_options_(io) {
  if (io_options_.background_threads > 0) {
    io_pool_ = std::make_unique<ThreadPool>(io_options_.background_threads);
  }
}

SpillManager::~SpillManager() {
  // An async manifest write may still reference env_ and the directory;
  // let it land (or fail) before tearing anything down.
  {
    std::unique_lock<std::mutex> lock(manifest_mu_);
    manifest_cv_.wait(lock, [this] { return !manifest_inflight_; });
    if (!manifest_latched_.ok()) {
      TOPK_LOG(Warning) << "background manifest write error dropped in "
                           "destructor: "
                        << manifest_latched_.ToString();
    }
  }
  if (!owns_dir_) return;
  std::error_code ec;
  std::filesystem::remove_all(dir_, ec);
  if (ec) {
    TOPK_LOG(Warning) << "failed to clean spill dir " << dir_ << ": "
                      << ec.message();
  }
}

Result<std::unique_ptr<SpillManager>> SpillManager::Create(
    StorageEnv* env, std::string dir, const IoPipelineOptions& io) {
  TOPK_RETURN_NOT_OK(env->CreateDirs(dir));
  return std::unique_ptr<SpillManager>(
      new SpillManager(env, std::move(dir), io));
}

Result<std::unique_ptr<SpillManager>> SpillManager::Restore(
    StorageEnv* env, std::string dir, const std::string& manifest_filename,
    bool verify_runs, const RowComparator& comparator,
    const IoPipelineOptions& io) {
  auto manager = std::unique_ptr<SpillManager>(
      new SpillManager(env, std::move(dir), io));
  // A failed restore must leave the directory intact for another attempt.
  manager->owns_dir_ = false;
  std::vector<RunMeta> runs;
  TOPK_ASSIGN_OR_RETURN(
      runs, ReadManifest(env, manager->dir_ + "/" + manifest_filename));
  uint64_t max_id = 0;
  for (RunMeta& run : runs) {
    if (verify_runs) {
      TOPK_RETURN_NOT_OK(manager->VerifyRun(run, comparator));
    }
    max_id = std::max(max_id, run.id);
    manager->AddRun(std::move(run));
  }
  {
    std::lock_guard<std::mutex> lock(manager->mu_);
    manager->next_run_id_ = runs.empty() ? 0 : max_id + 1;
  }
  manager->owns_dir_ = true;  // restored successfully: normal lifecycle
  return manager;
}

Status SpillManager::SaveManifest(const std::string& manifest_filename) const {
  const std::string path = dir_ + "/" + manifest_filename;
  if (io_pool_ == nullptr) {
    TraceSpan span("manifest.save", "io");
    return WriteManifest(env_, path, runs());
  }
  // Snapshot the registry now (the manifest reflects the state at the call),
  // then ship the storage round trip to the pool. One write in flight at a
  // time keeps manifests ordered; a burst of saves degrades to the previous
  // synchronous behaviour rather than queueing stale snapshots.
  std::vector<RunMeta> snapshot = runs();
  std::unique_lock<std::mutex> lock(manifest_mu_);
  manifest_cv_.wait(lock, [this] { return !manifest_inflight_; });
  if (!manifest_latched_.ok()) {
    Status latched = manifest_latched_;
    manifest_latched_ = Status::OK();
    return latched;
  }
  manifest_inflight_ = true;
  io_pool_->Schedule([this, path, snapshot = std::move(snapshot)] {
    TraceSpan span("manifest.save", "io.bg",
                   {TraceArg("runs", snapshot.size())});
    Status status = WriteManifest(env_, path, snapshot);
    std::lock_guard<std::mutex> inner(manifest_mu_);
    if (!status.ok() && manifest_latched_.ok()) manifest_latched_ = status;
    manifest_inflight_ = false;
    manifest_cv_.notify_all();
  });
  return Status::OK();
}

Status SpillManager::FlushManifest() const {
  std::unique_lock<std::mutex> lock(manifest_mu_);
  manifest_cv_.wait(lock, [this] { return !manifest_inflight_; });
  Status latched = manifest_latched_;
  manifest_latched_ = Status::OK();
  return latched;
}

Result<std::unique_ptr<RunWriter>> SpillManager::NewRun(
    const RowComparator& comparator, uint64_t index_stride) {
  uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_run_id_++;
  }
  std::string path = dir_ + "/run-" + std::to_string(id) + ".tkr";
  return RunWriter::Create(env_, std::move(path), id, comparator,
                           kDefaultBlockBytes, index_stride, io_pool_.get());
}

void SpillManager::AddRun(RunMeta meta) {
  std::lock_guard<std::mutex> lock(mu_);
  total_rows_spilled_ += meta.rows;
  total_bytes_spilled_ += meta.bytes;
  ++total_runs_created_;
  runs_.push_back(std::move(meta));
}

Status SpillManager::RemoveRun(uint64_t run_id) {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = std::find_if(runs_.begin(), runs_.end(),
                           [&](const RunMeta& m) { return m.id == run_id; });
    if (it == runs_.end()) {
      return Status::NotFound("run " + std::to_string(run_id) +
                              " not registered");
    }
    path = it->path;
    runs_.erase(it);
  }
  return env_->DeleteFile(path);
}

Result<std::unique_ptr<RunReader>> SpillManager::OpenRun(
    const RunMeta& meta) const {
  ThreadPool* prefetch_pool =
      io_options_.enable_prefetch ? io_pool_.get() : nullptr;
  return RunReader::Open(env_, meta.path, kDefaultBlockBytes, prefetch_pool);
}

Status SpillManager::VerifyRun(const RunMeta& meta,
                               const RowComparator& comparator) const {
  std::unique_ptr<RunReader> reader;
  TOPK_ASSIGN_OR_RETURN(reader, RunReader::Open(env_, meta.path));
  Row row, previous;
  uint64_t rows = 0;
  uint32_t crc = 0;
  std::string scratch;
  for (;;) {
    bool eof = false;
    TOPK_RETURN_NOT_OK(reader->Next(&row, &eof));
    if (eof) break;
    if (rows > 0 && comparator.Less(row, previous)) {
      return Status::Corruption("run " + std::to_string(meta.id) +
                                " is not sorted at row " +
                                std::to_string(rows));
    }
    scratch.clear();
    SerializeRow(row, &scratch);
    crc = Crc32c(crc, scratch.data(), scratch.size());
    previous = row;
    ++rows;
  }
  if (rows != meta.rows) {
    return Status::Corruption(
        "run " + std::to_string(meta.id) + " has " + std::to_string(rows) +
        " rows, expected " + std::to_string(meta.rows));
  }
  if (crc != meta.crc32c) {
    return Status::Corruption("run " + std::to_string(meta.id) +
                              " CRC mismatch");
  }
  return Status::OK();
}

std::vector<RunMeta> SpillManager::runs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return runs_;
}

size_t SpillManager::run_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return runs_.size();
}

uint64_t SpillManager::total_rows_spilled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_rows_spilled_;
}

uint64_t SpillManager::total_bytes_spilled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_bytes_spilled_;
}

uint64_t SpillManager::total_runs_created() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_runs_created_;
}

}  // namespace topk
