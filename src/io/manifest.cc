#include "io/manifest.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>
#include <sstream>

namespace topk {

namespace {

constexpr char kHeader[] = "topk-manifest v1";

void AppendRunLine(const RunMeta& run, std::string* out) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "run %" PRIu64 " %" PRIu64 " %" PRIu64 " %.17g %.17g %u ",
                run.id, run.rows, run.bytes, run.first_key, run.last_key,
                run.crc32c);
  *out += buf;
  *out += run.path;  // last field: may contain spaces in theory? no — keep
                     // paths space-free (SpillManager guarantees it)
  *out += '\n';
  for (const HistogramBucket& bucket : run.histogram) {
    std::snprintf(buf, sizeof(buf), "hist %" PRIu64 " %.17g %" PRIu64 "\n",
                  run.id, bucket.boundary, bucket.count);
    *out += buf;
  }
  for (const RunIndexEntry& entry : run.index) {
    std::snprintf(buf, sizeof(buf),
                  "index %" PRIu64 " %.17g %" PRIu64 " %" PRIu64 "\n",
                  run.id, entry.key, entry.rows, entry.bytes);
    *out += buf;
  }
}

}  // namespace

Status WriteManifest(StorageEnv* env, const std::string& path,
                     const std::vector<RunMeta>& runs) {
  std::string content(kHeader);
  content += '\n';
  for (const RunMeta& run : runs) {
    if (run.path.find_first_of(" \n") != std::string::npos) {
      return Status::InvalidArgument("run path contains whitespace: " +
                                     run.path);
    }
    AppendRunLine(run, &content);
  }
  content += "end " + std::to_string(runs.size()) + "\n";

  std::unique_ptr<WritableFile> file;
  TOPK_ASSIGN_OR_RETURN(file, env->NewWritableFile(path));
  TOPK_RETURN_NOT_OK(file->Append(content));
  TOPK_RETURN_NOT_OK(file->Flush());
  return file->Close();
}

Result<std::vector<RunMeta>> ReadManifest(StorageEnv* env,
                                          const std::string& path) {
  std::unique_ptr<SequentialFile> file;
  TOPK_ASSIGN_OR_RETURN(file, env->NewSequentialFile(path));
  std::string content;
  char buf[64 * 1024];
  for (;;) {
    size_t got = 0;
    TOPK_RETURN_NOT_OK(file->Read(sizeof(buf), buf, &got));
    if (got == 0) break;
    content.append(buf, got);
  }

  std::istringstream in(content);
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    return Status::Corruption("not a topk manifest: " + path);
  }

  std::vector<RunMeta> runs;
  std::map<uint64_t, size_t> run_position;
  bool saw_end = false;
  uint64_t declared_count = 0;
  size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    if (saw_end) {
      return Status::Corruption("content after end record");
    }
    std::istringstream fields(line);
    std::string kind;
    fields >> kind;
    if (kind == "run") {
      RunMeta run;
      fields >> run.id >> run.rows >> run.bytes >> run.first_key >>
          run.last_key >> run.crc32c >> run.path;
      if (fields.fail() || run.path.empty()) {
        return Status::Corruption("malformed run record at line " +
                                  std::to_string(line_number));
      }
      if (run_position.count(run.id) > 0) {
        return Status::Corruption("duplicate run id " +
                                  std::to_string(run.id));
      }
      run_position[run.id] = runs.size();
      runs.push_back(std::move(run));
    } else if (kind == "hist" || kind == "index") {
      uint64_t id = 0;
      fields >> id;
      auto it = run_position.find(id);
      if (fields.fail() || it == run_position.end()) {
        return Status::Corruption("record for unknown run at line " +
                                  std::to_string(line_number));
      }
      if (kind == "hist") {
        HistogramBucket bucket;
        fields >> bucket.boundary >> bucket.count;
        if (fields.fail()) {
          return Status::Corruption("malformed hist record at line " +
                                    std::to_string(line_number));
        }
        runs[it->second].histogram.push_back(bucket);
      } else {
        RunIndexEntry entry;
        fields >> entry.key >> entry.rows >> entry.bytes;
        if (fields.fail()) {
          return Status::Corruption("malformed index record at line " +
                                    std::to_string(line_number));
        }
        runs[it->second].index.push_back(entry);
      }
    } else if (kind == "end") {
      fields >> declared_count;
      if (fields.fail()) {
        return Status::Corruption("malformed end record");
      }
      saw_end = true;
    } else {
      return Status::Corruption("unknown record '" + kind + "' at line " +
                                std::to_string(line_number));
    }
  }
  if (!saw_end) {
    return Status::Corruption("manifest truncated (no end record)");
  }
  if (declared_count != runs.size()) {
    return Status::Corruption("manifest run count mismatch");
  }
  return runs;
}

}  // namespace topk
