#include "io/manifest.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>

#include "common/crc32.h"

namespace topk {

namespace {

constexpr char kHeader[] = "topk-manifest v2";
constexpr char kHeaderV3[] = "topk-manifest v3";

void AppendRunLine(const RunMeta& run, std::string* out) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "run %" PRIu64 " %" PRIu64 " %" PRIu64 " %.17g %.17g %u ",
                run.id, run.rows, run.bytes, run.first_key, run.last_key,
                run.crc32c);
  *out += buf;
  *out += run.path;  // last field: may contain spaces in theory? no — keep
                     // paths space-free (SpillManager guarantees it)
  *out += '\n';
  for (const HistogramBucket& bucket : run.histogram) {
    std::snprintf(buf, sizeof(buf), "hist %" PRIu64 " %.17g %" PRIu64 "\n",
                  run.id, bucket.boundary, bucket.count);
    *out += buf;
  }
  for (const RunIndexEntry& entry : run.index) {
    std::snprintf(buf, sizeof(buf),
                  "index %" PRIu64 " %.17g %" PRIu64 " %" PRIu64 "\n",
                  run.id, entry.key, entry.rows, entry.bytes);
    *out += buf;
  }
}

}  // namespace

Status WriteManifest(StorageEnv* env, const std::string& path,
                     const std::vector<RunMeta>& runs,
                     const RetryPolicy& retry,
                     const ManifestCheckpoint* checkpoint) {
  // v2 when no checkpoint: byte-for-byte the format every pre-checkpoint
  // reader (and golden test) expects; v3 only when there is new state.
  std::string content(checkpoint == nullptr ? kHeader : kHeaderV3);
  content += '\n';
  if (checkpoint != nullptr) {
    char buf[128];
    if (checkpoint->has_cutoff) {
      std::snprintf(buf, sizeof(buf), "ckpt %" PRIu64 " %" PRIu64 " %.17g\n",
                    checkpoint->input_rows_consumed, checkpoint->run_id_bound,
                    checkpoint->cutoff);
    } else {
      std::snprintf(buf, sizeof(buf), "ckpt %" PRIu64 " %" PRIu64 " none\n",
                    checkpoint->input_rows_consumed, checkpoint->run_id_bound);
    }
    content += buf;
  }
  for (const RunMeta& run : runs) {
    if (run.path.find_first_of(" \n") != std::string::npos) {
      return Status::InvalidArgument("run path contains whitespace: " +
                                     run.path);
    }
    AppendRunLine(run, &content);
  }
  // The end record carries a CRC-32C over everything before it: any bit
  // flip or truncation of the preceding content is detectable, including
  // flips that keep a field syntactically valid.
  const uint32_t crc = Crc32c(0, content.data(), content.size());
  content += "end " + std::to_string(runs.size()) + " " +
             std::to_string(crc) + "\n";

  std::unique_ptr<WritableFile> file;
  TOPK_ASSIGN_OR_RETURN(file, env->NewWritableFile(path));
  file = MaybeWrapWithRetries(std::move(file), path, retry);
  TOPK_RETURN_NOT_OK(file->Append(content));
  TOPK_RETURN_NOT_OK(file->Flush());
  return file->Close();
}

Result<std::vector<RunMeta>> ReadManifest(StorageEnv* env,
                                          const std::string& path,
                                          const RetryPolicy& retry,
                                          ManifestCheckpoint* checkpoint,
                                          bool* has_checkpoint) {
  if (has_checkpoint != nullptr) *has_checkpoint = false;
  std::unique_ptr<SequentialFile> file;
  TOPK_ASSIGN_OR_RETURN(file, env->NewSequentialFile(path));
  file = MaybeWrapWithRetries(std::move(file), path, retry);
  std::string content;
  char buf[64 * 1024];
  for (;;) {
    size_t got = 0;
    TOPK_RETURN_NOT_OK(file->Read(sizeof(buf), buf, &got));
    if (got == 0) break;
    content.append(buf, got);
  }

  // Lines are split by hand (not getline) so the byte offset of the end
  // record is known: its CRC covers content[0, end-line-start).
  size_t offset = 0;
  size_t line_number = 0;
  const auto next_line = [&](std::string* line, size_t* line_start) {
    if (offset >= content.size()) return false;
    *line_start = offset;
    const size_t nl = content.find('\n', offset);
    const size_t line_end = nl == std::string::npos ? content.size() : nl;
    line->assign(content, offset, line_end - offset);
    offset = nl == std::string::npos ? content.size() : nl + 1;
    ++line_number;
    return true;
  };

  std::string line;
  size_t line_start = 0;
  if (!next_line(&line, &line_start) ||
      (line != kHeader && line != kHeaderV3)) {
    return Status::Corruption("not a topk manifest: " + path);
  }
  const bool v3 = line == kHeaderV3;

  std::vector<RunMeta> runs;
  std::map<uint64_t, size_t> run_position;
  bool saw_end = false;
  bool saw_ckpt = false;
  uint64_t declared_count = 0;
  while (next_line(&line, &line_start)) {
    if (line.empty()) continue;
    if (saw_end) {
      return Status::Corruption("content after end record");
    }
    std::istringstream fields(line);
    std::string kind;
    fields >> kind;
    if (kind == "run") {
      RunMeta run;
      fields >> run.id >> run.rows >> run.bytes >> run.first_key >>
          run.last_key >> run.crc32c >> run.path;
      if (fields.fail() || run.path.empty()) {
        return Status::Corruption("malformed run record at line " +
                                  std::to_string(line_number));
      }
      if (run_position.count(run.id) > 0) {
        return Status::Corruption("duplicate run id " +
                                  std::to_string(run.id));
      }
      run_position[run.id] = runs.size();
      runs.push_back(std::move(run));
    } else if (kind == "hist" || kind == "index") {
      uint64_t id = 0;
      fields >> id;
      auto it = run_position.find(id);
      if (fields.fail() || it == run_position.end()) {
        return Status::Corruption("record for unknown run at line " +
                                  std::to_string(line_number));
      }
      if (kind == "hist") {
        HistogramBucket bucket;
        fields >> bucket.boundary >> bucket.count;
        if (fields.fail()) {
          return Status::Corruption("malformed hist record at line " +
                                    std::to_string(line_number));
        }
        runs[it->second].histogram.push_back(bucket);
      } else {
        RunIndexEntry entry;
        fields >> entry.key >> entry.rows >> entry.bytes;
        if (fields.fail()) {
          return Status::Corruption("malformed index record at line " +
                                    std::to_string(line_number));
        }
        runs[it->second].index.push_back(entry);
      }
    } else if (kind == "ckpt") {
      if (!v3) {
        return Status::Corruption("ckpt record in a v2 manifest at line " +
                                  std::to_string(line_number));
      }
      if (saw_ckpt) {
        return Status::Corruption("duplicate ckpt record at line " +
                                  std::to_string(line_number));
      }
      ManifestCheckpoint ckpt;
      std::string cutoff_field;
      fields >> ckpt.input_rows_consumed >> ckpt.run_id_bound >> cutoff_field;
      if (fields.fail() || cutoff_field.empty()) {
        return Status::Corruption("malformed ckpt record at line " +
                                  std::to_string(line_number));
      }
      if (cutoff_field != "none") {
        char* parse_end = nullptr;
        ckpt.cutoff = std::strtod(cutoff_field.c_str(), &parse_end);
        if (parse_end == nullptr || *parse_end != '\0') {
          return Status::Corruption("malformed ckpt cutoff at line " +
                                    std::to_string(line_number));
        }
        ckpt.has_cutoff = true;
      }
      saw_ckpt = true;
      if (checkpoint != nullptr) *checkpoint = ckpt;
      if (has_checkpoint != nullptr) *has_checkpoint = true;
    } else if (kind == "end") {
      uint32_t declared_crc = 0;
      fields >> declared_count >> declared_crc;
      if (fields.fail()) {
        return Status::Corruption("malformed end record");
      }
      // Reject trailing bytes: `>> declared_crc` stops at the first
      // non-digit, so a bit flip appending garbage would otherwise pass.
      std::string trailing;
      if (fields >> trailing) {
        return Status::Corruption("trailing bytes after end record");
      }
      const uint32_t actual_crc = Crc32c(0, content.data(), line_start);
      if (actual_crc != declared_crc) {
        return Status::Corruption("manifest checksum mismatch in " + path);
      }
      saw_end = true;
    } else {
      return Status::Corruption("unknown record '" + kind + "' at line " +
                                std::to_string(line_number));
    }
  }
  if (!saw_end) {
    return Status::Corruption("manifest truncated (no end record)");
  }
  if (declared_count != runs.size()) {
    return Status::Corruption("manifest run count mismatch");
  }
  return runs;
}

}  // namespace topk
