#ifndef TOPK_IO_BLOCK_IO_H_
#define TOPK_IO_BLOCK_IO_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "io/storage_env.h"

namespace topk {

/// Default I/O unit. Spill traffic is sequential, so we batch rows into
/// large blocks before touching the storage env; each Append/Read of a block
/// corresponds to one (possibly latency-injected) storage call.
inline constexpr size_t kDefaultBlockBytes = 256 * 1024;

/// Accumulates bytes and writes them to a WritableFile in block-size units.
class BlockWriter {
 public:
  BlockWriter(std::unique_ptr<WritableFile> file,
              size_t block_bytes = kDefaultBlockBytes);
  ~BlockWriter();

  BlockWriter(const BlockWriter&) = delete;
  BlockWriter& operator=(const BlockWriter&) = delete;

  /// Buffers `data`, flushing whole blocks as they fill.
  Status Append(std::string_view data);

  /// Flushes any buffered bytes and closes the file. Idempotent.
  Status Close();

  /// Total bytes appended (buffered + written).
  uint64_t bytes_appended() const { return bytes_appended_; }

 private:
  Status FlushBuffer();

  std::unique_ptr<WritableFile> file_;
  std::string buffer_;
  size_t block_bytes_;
  uint64_t bytes_appended_ = 0;
  bool closed_ = false;
};

/// Streams a file through a block-size read buffer and hands out bytes.
class BlockReader {
 public:
  BlockReader(std::unique_ptr<SequentialFile> file,
              size_t block_bytes = kDefaultBlockBytes);

  BlockReader(const BlockReader&) = delete;
  BlockReader& operator=(const BlockReader&) = delete;

  /// Reads exactly `n` bytes into `out`. Sets `*eof` instead of failing when
  /// the file ends cleanly *before* the first byte; a file ending mid-read
  /// is Corruption.
  Status ReadExact(size_t n, char* out, bool* eof);

  /// Skips `n` bytes (serves from the buffer, then seeks the file).
  Status Skip(uint64_t n);

  uint64_t bytes_consumed() const { return bytes_consumed_; }

 private:
  Status Refill();

  std::unique_ptr<SequentialFile> file_;
  std::vector<char> buffer_;
  size_t block_bytes_;
  size_t pos_ = 0;
  size_t limit_ = 0;
  bool at_eof_ = false;
  uint64_t bytes_consumed_ = 0;
};

}  // namespace topk

#endif  // TOPK_IO_BLOCK_IO_H_
