#ifndef TOPK_IO_MANIFEST_H_
#define TOPK_IO_MANIFEST_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "io/retry.h"
#include "io/run_file.h"
#include "io/storage_env.h"

namespace topk {

/// Spill-state manifests: a durable, human-readable record of a spill
/// directory's run registry (paths, row counts, key ranges, checksums,
/// per-run histograms and seek indexes). The paper's principle of
/// "retain any information once gained" (Sec 2.1) applied across process
/// boundaries: with a manifest, a spilled operator's state can be
/// inspected, verified, or resumed by a different process — e.g. restart
/// the merge phase after a crash without regenerating runs.
///
/// Format (text, one record per line):
///   topk-manifest v2
///   run <id> <rows> <bytes> <first_key> <last_key> <crc32c> <path>
///   hist <id> <boundary> <count>
///   index <id> <key> <rows> <bytes>
///   end <run count> <crc32c>
/// Keys are printed with %.17g and round-trip exactly. The end record's
/// CRC-32C covers every byte of the file before the end line, so any
/// truncation or bit flip — even one that keeps a field syntactically
/// valid, like a flipped digit in a row count — is detected as Corruption.

/// Writes `runs` as a manifest file at `path`. `retry` governs
/// transient-failure retries of the underlying storage calls.
Status WriteManifest(StorageEnv* env, const std::string& path,
                     const std::vector<RunMeta>& runs,
                     const RetryPolicy& retry = RetryPolicy());

/// Parses a manifest. Fails with Corruption on any malformed, truncated,
/// or checksum-mismatched content (including a missing `end` record or
/// run-count mismatch) — never a crash, never partial data.
Result<std::vector<RunMeta>> ReadManifest(StorageEnv* env,
                                          const std::string& path,
                                          const RetryPolicy& retry =
                                              RetryPolicy());

}  // namespace topk

#endif  // TOPK_IO_MANIFEST_H_
