#ifndef TOPK_IO_MANIFEST_H_
#define TOPK_IO_MANIFEST_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "io/retry.h"
#include "io/run_file.h"
#include "io/storage_env.h"

namespace topk {

/// Spill-state manifests: a durable, human-readable record of a spill
/// directory's run registry (paths, row counts, key ranges, checksums,
/// per-run histograms and seek indexes). The paper's principle of
/// "retain any information once gained" (Sec 2.1) applied across process
/// boundaries: with a manifest, a spilled operator's state can be
/// inspected, verified, or resumed by a different process — e.g. restart
/// the merge phase after a crash without regenerating runs.
///
/// Format (text, one record per line):
///   topk-manifest v2            (v3 when a ckpt record is present)
///   ckpt <rows_consumed> <run_id_bound> <cutoff|none>   (v3 only)
///   run <id> <rows> <bytes> <first_key> <last_key> <crc32c> <path>
///   hist <id> <boundary> <count>
///   index <id> <key> <rows> <bytes>
///   end <run count> <crc32c>
/// Keys are printed with %.17g and round-trip exactly. The end record's
/// CRC-32C covers every byte of the file before the end line, so any
/// truncation or bit flip — even one that keeps a field syntactically
/// valid, like a flipped digit in a row count — is detected as Corruption.
///
/// The v3 `ckpt` record is the input-offset bookkeeping that makes the
/// optimized baseline resumable: its early merges interleave with input
/// consumption, so run metadata alone cannot say *where in the input* the
/// crash happened. A checkpoint records how many input rows the durable
/// run set covers, the run-id frontier it covers (later runs hold rows the
/// resumed query will replay and must be dropped), and the cutoff the
/// filter had earned. A v2 manifest (no checkpoint) still parses; a v3
/// manifest read by code that ignores checkpoints just yields its runs.

/// Input-consumption checkpoint persisted in a v3 manifest.
struct ManifestCheckpoint {
  /// Input rows consumed when the checkpoint was taken; the durable runs
  /// with id < run_id_bound conservatively cover exactly this prefix.
  uint64_t input_rows_consumed = 0;
  /// Exclusive upper bound on the run ids the checkpoint covers (run ids
  /// are 0-based, so 0 means "no runs yet"). Runs with id >= run_id_bound
  /// were written after the checkpoint and duplicate rows the resume
  /// replay re-consumes — the resume path deletes them.
  uint64_t run_id_bound = 0;
  /// The input-filter cutoff in force at the checkpoint (optimized path).
  bool has_cutoff = false;
  double cutoff = 0.0;
};

/// Writes `runs` as a manifest file at `path`. `retry` governs
/// transient-failure retries of the underlying storage calls. A non-null
/// `checkpoint` upgrades the file to v3 and embeds it as a ckpt record.
Status WriteManifest(StorageEnv* env, const std::string& path,
                     const std::vector<RunMeta>& runs,
                     const RetryPolicy& retry = RetryPolicy(),
                     const ManifestCheckpoint* checkpoint = nullptr);

/// Parses a manifest (v2 or v3). Fails with Corruption on any malformed,
/// truncated, or checksum-mismatched content (including a missing `end`
/// record or run-count mismatch) — never a crash, never partial data.
/// When `checkpoint` is non-null, *checkpoint reports the ckpt record
/// (`has_checkpoint` distinguishes "no record" from a zero checkpoint).
Result<std::vector<RunMeta>> ReadManifest(StorageEnv* env,
                                          const std::string& path,
                                          const RetryPolicy& retry =
                                              RetryPolicy(),
                                          ManifestCheckpoint* checkpoint =
                                              nullptr,
                                          bool* has_checkpoint = nullptr);

}  // namespace topk

#endif  // TOPK_IO_MANIFEST_H_
