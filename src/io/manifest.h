#ifndef TOPK_IO_MANIFEST_H_
#define TOPK_IO_MANIFEST_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "io/run_file.h"
#include "io/storage_env.h"

namespace topk {

/// Spill-state manifests: a durable, human-readable record of a spill
/// directory's run registry (paths, row counts, key ranges, checksums,
/// per-run histograms and seek indexes). The paper's principle of
/// "retain any information once gained" (Sec 2.1) applied across process
/// boundaries: with a manifest, a spilled operator's state can be
/// inspected, verified, or resumed by a different process — e.g. restart
/// the merge phase after a crash without regenerating runs.
///
/// Format (text, one record per line):
///   topk-manifest v1
///   run <id> <rows> <bytes> <first_key> <last_key> <crc32c> <path>
///   hist <id> <boundary> <count>
///   index <id> <key> <rows> <bytes>
///   end <run count>
/// Keys are printed with %.17g and round-trip exactly.

/// Writes `runs` as a manifest file at `path`.
Status WriteManifest(StorageEnv* env, const std::string& path,
                     const std::vector<RunMeta>& runs);

/// Parses a manifest. Fails with Corruption on any malformed or truncated
/// content (including a missing `end` record or run-count mismatch).
Result<std::vector<RunMeta>> ReadManifest(StorageEnv* env,
                                          const std::string& path);

}  // namespace topk

#endif  // TOPK_IO_MANIFEST_H_
