#ifndef TOPK_IO_ASYNC_IO_H_
#define TOPK_IO_ASYNC_IO_H_

#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "io/retry.h"
#include "io/storage_env.h"

namespace topk {

/// Background I/O pipeline configuration. On disaggregated storage every
/// block write/read pays a full round trip (StorageEnv latency injection
/// emulates it); overlapping those round trips with replacement selection
/// and loser-tree merging hides most of the cost. 0 background threads =
/// the fully synchronous path (byte-identical output, deterministic call
/// ordering — what every pre-pipeline test expects).
///
/// Also carries the storage fault-tolerance policies shared by every run
/// stream of one SpillManager: the retry policy for transient failures and
/// the inline read-side checksum verification switch.
struct IoPipelineOptions {
  /// Workers shared by all streams of one SpillManager. 0 disables the
  /// pipeline entirely.
  size_t background_threads = 0;
  /// Read one block ahead of the merge cursor (only meaningful when
  /// background_threads > 0).
  bool enable_prefetch = true;
  /// Retry policy applied to every block read/write/flush/close and to
  /// manifest I/O. Retries run on the background pool threads when the
  /// pipeline is active, so backoff never stalls the producer. Default:
  /// up to 4 attempts with 1 ms initial backoff.
  RetryPolicy retry;
  /// Verify each fully-drained run against its recorded CRC-32C and row
  /// count inline on the merge read path (checksum mismatch = permanent
  /// Corruption, never retried).
  bool verify_read_checksums = true;
};

/// WritableFile decorator that hands full blocks to a background flusher.
/// Append copies the data and returns immediately; at most one block is in
/// flight (double buffering: the caller fills the next block while the
/// previous one rides the storage round trip). Errors from background
/// flushes are latched and surfaced on the next Append/Flush/Close — never
/// lost. Once an error is latched every later call returns it and no
/// further data is written.
class DoubleBufferedWriter : public WritableFile {
 public:
  DoubleBufferedWriter(std::unique_ptr<WritableFile> base, ThreadPool* pool);

  /// Waits for the in-flight block. A latched error that was never
  /// observed through Append/Flush/Close is logged at WARNING (the
  /// destructor cannot return Status).
  ~DoubleBufferedWriter() override;

  Status Append(std::string_view data) override;
  Status Flush() override;
  Status Close() override;

 private:
  /// Blocks until no flush is in flight; returns the latched status.
  Status WaitForInflight();

  std::unique_ptr<WritableFile> base_;
  ThreadPool* pool_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool inflight_ = false;
  Status latched_;          // first background error, sticky
  bool error_observed_ = false;  // latched_ was returned to the caller
  std::string writing_;     // block owned by the background task
  bool closed_ = false;
};

/// SequentialFile decorator that keeps one block-size read ahead of the
/// consumer. The prefetch of the first block starts at construction (so a
/// K-way merge opening many runs overlaps their first round trips); the
/// *second* block, however, is only fetched once the consumer actually
/// exhausts the first — a run must survive its first refill before the
/// pipeline reads ahead. A k-limited merge abandons most runs inside their
/// first block, so this deferral removes the one-wasted-block-per-run
/// overshoot (ROADMAP item, quantified by io.prefetch.blocks_unconsumed)
/// at the cost of one unoverlapped round trip per surviving run. From the
/// second refill on every Read is served from the completed prefetch while
/// the next one is already in flight. Errors from background reads are
/// latched and surfaced on the Read/Skip that would have consumed the
/// data.
///
/// Intended to sit under a BlockReader configured with the same
/// `block_bytes`, so each Refill consumes exactly one prefetched block.
class PrefetchingBlockReader : public SequentialFile {
 public:
  PrefetchingBlockReader(std::unique_ptr<SequentialFile> base,
                         ThreadPool* pool, size_t block_bytes);

  ~PrefetchingBlockReader() override;

  Status Read(size_t n, char* scratch, size_t* bytes_read) override;
  Status Skip(uint64_t n) override;

 private:
  /// Issues an async read of the next block (no-op at EOF / after error).
  void StartPrefetch();
  /// Blocks until the in-flight prefetch (if any) completed.
  void WaitForInflight();
  /// Moves the completed prefetch into the ready buffer.
  Status PromoteFetched();

  std::unique_ptr<SequentialFile> base_;
  ThreadPool* pool_;
  size_t block_bytes_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool inflight_ = false;
  Status latched_;
  bool at_eof_ = false;        // base returned a short/empty block
  std::vector<char> fetched_;  // buffer owned by the background task
  size_t fetched_size_ = 0;

  std::vector<char> ready_;  // completed block being consumed
  size_t ready_size_ = 0;
  size_t ready_pos_ = 0;

  /// Number of blocks promoted to the consumer. Pipelining ahead only
  /// starts after the second promotion (the run survived its first
  /// refill).
  size_t blocks_promoted_ = 0;
};

}  // namespace topk

#endif  // TOPK_IO_ASYNC_IO_H_
