#ifndef TOPK_IO_ASYNC_IO_H_
#define TOPK_IO_ASYNC_IO_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/resource_arbiter.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "io/retry.h"
#include "io/storage_env.h"

namespace topk {

/// Hard ceiling on the lookahead window of one PrefetchingBlockReader, no
/// matter how large the memory budget is: beyond ~32 blocks the merge is
/// bound by pool parallelism, not by queued lookahead.
inline constexpr size_t kMaxPrefetchDepth = 32;

/// Degraded-storage knobs for one PrefetchingBlockReader. Hedged reads
/// follow Dean & Barroso's "Tail at Scale" recipe: when the consumer has
/// waited `hedge_latency_multiplier` x the observed round-trip EWMA for
/// the block it needs (but at least `hedge_min_nanos`), a duplicate read
/// of the same block is issued on a second handle; the first completion
/// wins and the loser is discarded. Run files are immutable, so the
/// duplicate is always safe. `read_deadline_nanos` bounds how long one
/// consumer Read may wait for its block before surfacing Unavailable
/// ("deadline exceeded") instead of parking the merge behind a hung call.
struct PrefetchTuning {
  bool hedge_reads = false;
  double hedge_latency_multiplier = 3.0;
  int64_t hedge_min_nanos = 1'000'000;  // never hedge before 1 ms
  /// 0 = wait forever (legacy behaviour).
  int64_t read_deadline_nanos = 0;
  /// True when the depth cap was apportioned from the shared budget (not
  /// pinned by the caller): the reader may then re-apportion mid-step as
  /// sibling readers finish and live_readers() shrinks, inheriting freed
  /// budget without waiting for the next merge step.
  bool reapportion_depth = false;
  /// Optional query cancellation token (query_control.h). When set, the
  /// consumer wait in Read() polls it (bounded wait slices instead of an
  /// indefinite block) and returns the token's status promptly even with
  /// the fetch still in flight on a pool thread — the reader stays valid
  /// and the in-flight block is accounted via io.prefetch.blocks_cancelled
  /// when the stream is torn down. Not owned.
  const CancellationToken* cancel = nullptr;
};

/// Background I/O pipeline configuration. On disaggregated storage every
/// block write/read pays a full round trip (StorageEnv latency injection
/// emulates it); overlapping those round trips with replacement selection
/// and loser-tree merging hides most of the cost. 0 background threads =
/// the fully synchronous path (byte-identical output, deterministic call
/// ordering — what every pre-pipeline test expects).
///
/// Also carries the storage fault-tolerance policies shared by every run
/// stream of one SpillManager: the retry policy for transient failures and
/// the inline read-side checksum verification switch.
struct IoPipelineOptions {
  /// Workers shared by all streams of one SpillManager. 0 disables the
  /// pipeline entirely.
  size_t background_threads = 0;
  /// Read one block ahead of the merge cursor (only meaningful when
  /// background_threads > 0).
  bool enable_prefetch = true;
  /// Retry policy applied to every block read/write/flush/close and to
  /// manifest I/O. Retries run on the background pool threads when the
  /// pipeline is active, so backoff never stalls the producer. Default:
  /// up to 4 attempts with 1 ms initial backoff.
  RetryPolicy retry;
  /// Verify each fully-drained run against its recorded CRC-32C and row
  /// count inline on the merge read path (checksum mismatch = permanent
  /// Corruption, never retried).
  bool verify_read_checksums = true;
  /// Total bytes of prefetched-but-unconsumed block memory all readers of
  /// one SpillManager may hold *beyond* their first lookahead block. The
  /// merge planner apportions it across the live runs of a merge step
  /// (ApportionPrefetchDepth); each reader then grows its window only as
  /// far as it can reserve slots from the shared PrefetchBudget, and runs
  /// abandoned by the cutoff hand their slots back. 0 = fixed one-block
  /// lookahead (the pre-adaptive behaviour).
  size_t prefetch_memory_budget = 8 << 20;
  /// Hedge straggling block reads on the merge path (see PrefetchTuning).
  bool hedge_reads = false;
  double hedge_latency_multiplier = 3.0;
  int64_t hedge_min_nanos = 1'000'000;
  /// Disk-space quota for one SpillManager's directory: total bytes its
  /// run files may occupy (0 = unlimited). Breaches surface as
  /// ResourceExhausted naming spill_quota_bytes.
  uint64_t spill_quota_bytes = 0;
  /// Memory arbiter the pipeline's buffers are leased from (prefetch
  /// windows through the PrefetchBudget, double-buffered writer blocks).
  /// Null = unaccounted, the legacy behaviour. Not owned.
  MemoryArbiter* arbiter = nullptr;
};

/// Thread-safe byte pool bounding the total prefetch lookahead of one
/// SpillManager. The first lookahead block of every reader is free (that
/// is the baseline double-buffer the pipeline always had); every deeper
/// slot must be reserved here first, so a merge can never queue more than
/// `total` bytes of speculative reads no matter how many runs it opens.
class PrefetchBudget {
 public:
  explicit PrefetchBudget(size_t total_bytes) : total_(total_bytes) {}

  PrefetchBudget(const PrefetchBudget&) = delete;
  PrefetchBudget& operator=(const PrefetchBudget&) = delete;

  /// Attaches a memory arbiter: every reservation is additionally leased
  /// from it (a refused grant just stops window growth — graceful), and
  /// arbiter soft pressure halves the depth caps readers derive from this
  /// budget (SetPressureShrink, flipped by the owning SpillManager's
  /// pressure responder). Call before readers share the budget.
  void AttachArbiter(MemoryArbiter* arbiter);

  /// Degradation-ladder flag: while set, DynamicDepthCapLocked-style
  /// apportionments over this budget are halved. Lock-free.
  void SetPressureShrink(bool shrink) {
    pressure_shrink_.store(shrink, std::memory_order_relaxed);
  }
  bool pressure_shrink() const {
    return pressure_shrink_.load(std::memory_order_relaxed);
  }

  /// Reserves `bytes`; false when the pool is exhausted (the caller keeps
  /// its current window instead of growing).
  bool TryAcquire(size_t bytes);
  /// Returns a previous reservation to the pool.
  void Release(size_t bytes);

  /// Live-reader registry: every PrefetchingBlockReader sharing this
  /// budget registers at construction and deregisters when it can no
  /// longer grow (cancelled, clean EOF, or destroyed). Survivors use the
  /// count to re-apportion the budget mid-merge-step, inheriting the
  /// slots a finished sibling freed.
  void AddReader();
  void RemoveReader();
  size_t live_readers() const;

  size_t total() const { return total_; }
  size_t acquired() const;
  size_t available() const;

 private:
  const size_t total_;
  std::atomic<bool> pressure_shrink_{false};
  mutable std::mutex mu_;
  size_t acquired_ = 0;
  size_t live_readers_ = 0;
  /// Optional arbiter backing: reservations grow lease_ and a refused
  /// grant fails the TryAcquire (the window simply stops growing).
  MemoryArbiter* arbiter_ = nullptr;
  MemoryLease lease_;
};

/// How many blocks of lookahead one reader may use when `budget_bytes` of
/// prefetch memory is split evenly across `live_runs` concurrently merged
/// runs: 1 free slot + this run's share of the budget, clamped to
/// kMaxPrefetchDepth. The merge planner calls this at plan time; abandoned
/// runs return their share through the PrefetchBudget, so late-surviving
/// runs can still deepen up to the same cap.
size_t ApportionPrefetchDepth(size_t budget_bytes, size_t live_runs,
                              size_t block_bytes);

/// WritableFile decorator that hands full blocks to a background flusher.
/// Append copies the data and returns immediately; at most one block is in
/// flight (double buffering: the caller fills the next block while the
/// previous one rides the storage round trip). Errors from background
/// flushes are latched and surfaced on the next Append/Flush/Close — never
/// lost. Once an error is latched every later call returns it and no
/// further data is written.
class DoubleBufferedWriter : public WritableFile {
 public:
  /// A non-null `arbiter` leases the in-flight block copy; when the lease
  /// is refused (hard pressure / budget exhausted) the writer degrades to
  /// synchronous write-through on the caller's thread instead of failing —
  /// slower, but no extra memory and byte-identical output (counted under
  /// mem.arbiter.writer_sync_fallback).
  DoubleBufferedWriter(std::unique_ptr<WritableFile> base, ThreadPool* pool,
                       MemoryArbiter* arbiter = nullptr);

  /// Waits for the in-flight block. A latched error that was never
  /// observed through Append/Flush/Close is logged at WARNING (the
  /// destructor cannot return Status).
  ~DoubleBufferedWriter() override;

  Status Append(std::string_view data) override;
  Status Flush() override;
  Status Close() override;

 private:
  /// Blocks until no flush is in flight; returns the latched status.
  Status WaitForInflight();

  std::unique_ptr<WritableFile> base_;
  ThreadPool* pool_;
  MemoryArbiter* arbiter_;
  /// Lease over the in-flight block copy (detached without an arbiter or
  /// after a refused grant put the writer in write-through mode).
  MemoryLease lease_;
  /// Latched once a lease was refused: all later Appends write through
  /// synchronously (no flapping back to buffered mode under pressure).
  bool sync_fallback_ = false;

  std::mutex mu_;
  std::condition_variable cv_;
  bool inflight_ = false;
  Status latched_;          // first background error, sticky
  bool error_observed_ = false;  // latched_ was returned to the caller
  std::string writing_;     // block owned by the background task
  bool closed_ = false;
};

/// Opens one more SequentialFile on the same (immutable, fully written)
/// file, positioned at byte 0. PrefetchingBlockReader uses it to put more
/// than one storage round trip in flight per stream: a plain sequential
/// handle serialises its reads, but extra handles on a finished run file
/// can each ride their own round trip concurrently.
using SequentialFileFactory =
    std::function<Result<std::unique_ptr<SequentialFile>>()>;

/// SequentialFile decorator that keeps an adaptive window of block-size
/// reads in flight ahead of the consumer. The prefetch of the first block
/// starts at construction (so a K-way merge opening many runs overlaps
/// their first round trips); the *second* block, however, is only fetched
/// once the consumer actually exhausts the first — a run must survive its
/// first refill before the pipeline reads ahead. A k-limited merge
/// abandons most runs inside their first block, so this deferral removes
/// the one-wasted-block-per-run overshoot (quantified by
/// io.prefetch.blocks_unconsumed) at the cost of one unoverlapped round
/// trip per surviving run.
///
/// From the second refill on, the reader maintains a multi-slot ring of
/// in-flight reads: each slot claims the next block offset and fetches it
/// on the pool, completions land in an offset-keyed ring and are promoted
/// to the consumer strictly in file order. One sequential handle can only
/// serialise its reads, so slots beyond the first open additional handles
/// on the same file through the `reopen` factory (run files are immutable
/// once finished) and stripe themselves across block offsets with cheap
/// relative seeks — up to depth round trips genuinely overlap, and a
/// latency-bound merge drains a hot run depth times faster. Without a
/// factory the reader degrades to the single-handle pump (at most one
/// call in flight; depth then only buys burst absorption).
///
/// The window scales itself: the reader tracks an EWMA of the block
/// round-trip time (measured around each storage Read) and of the
/// consumer's per-block merge time (measured from one promotion to the
/// next refill *request*, so stall time is excluded), and targets
/// ceil(rtt / consume) blocks, clamped to [1, depth_cap]. Slots beyond
/// the first are reserved from the shared PrefetchBudget and returned as
/// the window shrinks, at EOF, and on destruction — a run abandoned by
/// the cutoff hands its share back to the surviving runs. With the
/// default depth_cap of 1 the reader behaves exactly like the fixed
/// one-block pipeline.
///
/// Errors from background reads are latched and surfaced on the Read/Skip
/// that would have consumed the data (ring blocks fetched before the error
/// are served first). CancelPrefetch marks the remaining lookahead as
/// deliberately discarded: the destructor then counts leftover blocks
/// under io.prefetch.blocks_cancelled instead of blocks_unconsumed, so a
/// merge stopping early at k rows does not masquerade as overshoot.
///
/// Intended to sit under a BlockReader configured with the same
/// `block_bytes`, so each Refill consumes exactly one prefetched block.
class PrefetchingBlockReader : public SequentialFile {
 public:
  /// `depth_cap` bounds the adaptive window (1 = fixed single-block
  /// lookahead, the legacy behaviour). A non-null `budget` gates every
  /// slot beyond the first; without one the cap alone bounds the window.
  /// A non-null `reopen` lets slots open extra handles for genuinely
  /// concurrent reads (see the class comment); it is also what hedged
  /// reads duplicate straggling fetches onto. `tuning` carries the
  /// degraded-storage knobs (hedging, consumer deadline, mid-step
  /// re-apportioning).
  PrefetchingBlockReader(std::unique_ptr<SequentialFile> base,
                         ThreadPool* pool, size_t block_bytes,
                         size_t depth_cap = 1,
                         PrefetchBudget* budget = nullptr,
                         SequentialFileFactory reopen = nullptr,
                         const PrefetchTuning& tuning = PrefetchTuning());

  ~PrefetchingBlockReader() override;

  Status Read(size_t n, char* scratch, size_t* bytes_read) override;
  Status Skip(uint64_t n) override;

  /// Stops the pump after its in-flight block and marks the remaining
  /// lookahead as deliberately discarded (counted under
  /// io.prefetch.blocks_cancelled). Called by the merge when it stops
  /// early at k rows / the cutoff; does not block.
  void CancelPrefetch();

  /// Current adaptive window target (blocks of lookahead). Exposed for
  /// tests and debugging.
  size_t target_depth() const;

  /// Highest window target this reader ever adapted to (the current
  /// target shrinks back to 1 at EOF). Exposed for tests and debugging.
  size_t max_target_depth() const;

 private:
  struct FetchedBlock {
    std::vector<char> data;
    size_t size = 0;
  };

  /// One sequential handle on the underlying file plus the byte offset it
  /// is positioned at. A handle is either idle (owned by idle_handles_)
  /// or checked out by exactly one in-flight fetch task.
  struct Handle {
    std::unique_ptr<SequentialFile> file;
    uint64_t pos = 0;
  };

  /// Claims the next block offset and schedules its fetch on the pool,
  /// reusing the best-positioned idle handle (or opening a new one via
  /// reopen_). False when nothing can be issued: EOF reached, error
  /// latched, or no handle is available. Not gated on stopping_ or the
  /// deferral — those belong to TopUpLocked; the consumer's demand fetch
  /// must always work. Caller holds mu_.
  bool IssueOneLocked();
  /// Issues readahead fetches until ring + in-flight reaches the usable
  /// window (deferral passed, budget slots acquired). Caller holds mu_.
  void TopUpLocked();
  /// Body of one fetch task: seeks the handle to `offset` if needed,
  /// reads one block, and lands the completion in the ring. A hedge task
  /// (`is_hedge`) is a deliberate duplicate of an in-flight fetch: the
  /// first completion for an offset supplies the block, the loser is
  /// discarded (io.hedge.wasted when the hedge lost) and its handle is
  /// recycled.
  void FetchStep(std::shared_ptr<Handle> handle, uint64_t offset,
                 uint64_t skip, bool is_hedge);
  /// Issues a duplicate fetch of the cursor block on a spare or freshly
  /// opened handle (one handle beyond the depth cap is allowed for the
  /// hedge). Caller holds mu_.
  bool IssueHedgeLocked();
  /// The effective depth cap right now: the construction-time cap, or —
  /// when the cap was apportioned (tuning.reapportion_depth) — the
  /// apportionment over the budget's *current* live readers, so survivors
  /// inherit freed budget mid-step. Caller holds mu_.
  size_t DynamicDepthCapLocked() const;
  /// Removes this reader from the budget's live-reader registry exactly
  /// once. Caller holds mu_.
  void DeregisterLocked();
  /// Reserves budget slots up to target_depth_ - 1. Caller holds mu_.
  void AcquireForTargetLocked();
  /// Returns slots not needed by the current target or the blocks still
  /// held in memory or in flight. Caller holds mu_.
  void ReleaseExcessLocked();
  /// Recomputes target_depth_ from the EWMAs (after warmup) and records
  /// the gauge/histogram/trace instant on change. Caller holds mu_.
  void UpdateTargetLocked();
  /// Moves the ring's front block (which the caller has checked sits at
  /// consume_offset_) into the ready buffer. Caller holds mu_.
  void PromoteLocked();

  ThreadPool* pool_;
  size_t block_bytes_;
  size_t depth_cap_;
  PrefetchBudget* budget_;
  SequentialFileFactory reopen_;
  PrefetchTuning tuning_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t inflight_ = 0;     // fetch tasks currently on the pool
  bool stopping_ = false;   // destructor/cancel: no more readahead
  bool cancelled_ = false;  // leftovers are deliberate, not overshoot
  Status latched_;
  /// Next byte offset a fetch slot will claim (block_bytes_ strides).
  uint64_t fetch_offset_ = 0;
  /// Offset of the next block the consumer will promote; blocks are
  /// promoted strictly in offset order.
  uint64_t consume_offset_ = 0;
  /// End of file as discovered by a short or empty read; fetches are
  /// never issued at or past it.
  uint64_t eof_offset_ = std::numeric_limits<uint64_t>::max();
  /// Completed blocks ahead of the consumer, keyed by byte offset
  /// (completions land out of order when several slots are in flight).
  std::map<uint64_t, FetchedBlock> ring_;
  /// In-flight fetch tasks per offset (2 while a hedge races its primary).
  /// A failed fetch only latches when no other copy of its offset is in
  /// flight or already landed — the hedge's whole point.
  std::map<uint64_t, int> inflight_by_offset_;
  /// Offsets a hedge was issued for (never hedge the same block twice);
  /// pruned as the consumer moves past them.
  std::set<uint64_t> hedged_;
  /// This reader is counted in budget_->live_readers().
  bool budget_registered_ = false;
  /// Handles not checked out by a fetch task, each tagged with its file
  /// position. handles_total_ counts idle + checked-out, capped at
  /// depth_cap_.
  std::vector<std::shared_ptr<Handle>> idle_handles_;
  size_t handles_total_ = 0;
  /// Budget slots currently reserved (each block_bytes_ large); the first
  /// lookahead slot is free and not counted here.
  size_t reserved_slots_ = 0;
  size_t target_depth_ = 1;
  size_t max_target_depth_ = 1;

  /// EWMA of the storage round trip per block (pump-side) and of the
  /// consumer's merge time per block (promotion -> next refill request).
  double rtt_ewma_nanos_ = 0.0;
  double consume_ewma_nanos_ = 0.0;
  size_t consume_samples_ = 0;
  std::chrono::steady_clock::time_point last_promote_;
  bool last_promote_valid_ = false;

  std::vector<char> ready_;  // completed block being consumed
  size_t ready_size_ = 0;
  size_t ready_pos_ = 0;

  /// Number of blocks promoted to the consumer. Pipelining ahead only
  /// starts after the second promotion (the run survived its first
  /// refill).
  size_t blocks_promoted_ = 0;
};

}  // namespace topk

#endif  // TOPK_IO_ASYNC_IO_H_
