#include "io/storage_env.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <thread>

#include "common/stopwatch.h"
#include "obs/metrics.h"

namespace topk {

namespace {

// Per-call storage latency distributions (p50/p95/p99 in the metrics
// export). Recorded per block, not per row — cheap relative to the I/O.
LatencyHistogram& WriteLatencyHistogram() {
  static LatencyHistogram* histogram =
      GlobalMetrics().GetHistogram("storage.write_nanos");
  return *histogram;
}
LatencyHistogram& ReadLatencyHistogram() {
  static LatencyHistogram* histogram =
      GlobalMetrics().GetHistogram("storage.read_nanos");
  return *histogram;
}

void MaybeSleep(int64_t nanos) {
  if (nanos > 0) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(nanos));
  }
}

std::string ErrnoMessage(const std::string& context) {
  return context + ": " + std::strerror(errno);
}

}  // namespace

class LocalWritableFile : public WritableFile {
 public:
  LocalWritableFile(std::FILE* file, std::string path, StorageEnv* env)
      : file_(file), path_(std::move(path)), env_(env) {}

  ~LocalWritableFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  Status Append(std::string_view data) override {
    if (file_ == nullptr) {
      return Status::FailedPrecondition("append to closed file " + path_);
    }
    if (env_->ShouldFailWrite()) {
      return Status::IoError("injected write failure on " + path_);
    }
    const uint64_t quota = env_->options().max_bytes_written;
    if (quota > 0 &&
        env_->stats()->bytes_written() + data.size() > quota) {
      return Status::ResourceExhausted(
          "disk quota exceeded writing " + path_ + " (" +
          std::to_string(quota) + " bytes allowed)");
    }
    Stopwatch watch;
    MaybeSleep(env_->options().write_latency_nanos);
    const size_t written = std::fwrite(data.data(), 1, data.size(), file_);
    if (written != data.size()) {
      return Status::IoError(ErrnoMessage("short write to " + path_));
    }
    const int64_t nanos = watch.ElapsedNanos();
    env_->stats()->RecordWrite(data.size(), nanos);
    WriteLatencyHistogram().Record(nanos);
    return Status::OK();
  }

  Status Flush() override {
    if (file_ == nullptr) {
      return Status::FailedPrecondition("flush of closed file " + path_);
    }
    if (std::fflush(file_) != 0) {
      return Status::IoError(ErrnoMessage("flush failed for " + path_));
    }
    return Status::OK();
  }

  Status Close() override {
    if (file_ == nullptr) return Status::OK();
    const int rc = std::fclose(file_);
    file_ = nullptr;
    if (rc != 0) {
      return Status::IoError(ErrnoMessage("close failed for " + path_));
    }
    return Status::OK();
  }

 private:
  std::FILE* file_;
  std::string path_;
  StorageEnv* env_;
};

class LocalSequentialFile : public SequentialFile {
 public:
  LocalSequentialFile(std::FILE* file, std::string path, StorageEnv* env)
      : file_(file), path_(std::move(path)), env_(env) {}

  ~LocalSequentialFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  Status Read(size_t n, char* scratch, size_t* bytes_read) override {
    *bytes_read = 0;
    if (env_->ShouldFailRead()) {
      return Status::IoError("injected read failure on " + path_);
    }
    Stopwatch watch;
    MaybeSleep(env_->options().read_latency_nanos);
    const size_t got = std::fread(scratch, 1, n, file_);
    if (got < n && std::ferror(file_)) {
      return Status::IoError(ErrnoMessage("read failed for " + path_));
    }
    *bytes_read = got;
    const int64_t nanos = watch.ElapsedNanos();
    env_->stats()->RecordRead(got, nanos);
    ReadLatencyHistogram().Record(nanos);
    return Status::OK();
  }

  Status Skip(uint64_t n) override {
    if (std::fseek(file_, static_cast<long>(n), SEEK_CUR) != 0) {
      return Status::IoError(ErrnoMessage("seek failed for " + path_));
    }
    return Status::OK();
  }

 private:
  std::FILE* file_;
  std::string path_;
  StorageEnv* env_;
};

bool StorageEnv::ShouldFailWrite() {
  const uint64_t target = fail_write_at_.load(std::memory_order_relaxed);
  if (target == 0) return false;
  const uint64_t seen =
      write_calls_seen_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (seen == target) {
    fail_write_at_.store(0, std::memory_order_relaxed);
    write_calls_seen_.store(0, std::memory_order_relaxed);
    return true;
  }
  return false;
}

bool StorageEnv::ShouldFailRead() {
  const uint64_t target = fail_read_at_.load(std::memory_order_relaxed);
  if (target == 0) return false;
  const uint64_t seen =
      read_calls_seen_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (seen == target) {
    fail_read_at_.store(0, std::memory_order_relaxed);
    read_calls_seen_.store(0, std::memory_order_relaxed);
    return true;
  }
  return false;
}

Result<std::unique_ptr<WritableFile>> StorageEnv::NewWritableFile(
    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError(ErrnoMessage("cannot create " + path));
  }
  stats_.RecordFileCreated();
  return std::unique_ptr<WritableFile>(
      new LocalWritableFile(file, path, this));
}

Result<std::unique_ptr<SequentialFile>> StorageEnv::NewSequentialFile(
    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IoError(ErrnoMessage("cannot open " + path));
  }
  return std::unique_ptr<SequentialFile>(
      new LocalSequentialFile(file, path, this));
}

Status StorageEnv::DeleteFile(const std::string& path) {
  std::error_code ec;
  if (!std::filesystem::remove(path, ec)) {
    if (ec) return Status::IoError("cannot delete " + path + ": " + ec.message());
    return Status::NotFound("no such file: " + path);
  }
  stats_.RecordFileDeleted();
  return Status::OK();
}

Status StorageEnv::CreateDirs(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) {
    return Status::IoError("cannot create directory " + path + ": " +
                           ec.message());
  }
  return Status::OK();
}

Result<uint64_t> StorageEnv::FileSize(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) {
    return Status::IoError("cannot stat " + path + ": " + ec.message());
  }
  return static_cast<uint64_t>(size);
}

}  // namespace topk
