#include "io/storage_env.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <thread>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/obs_context.h"

namespace topk {

namespace {

// Per-call storage latency distributions (p50/p95/p99 in the metrics
// export). Recorded per block, not per row — cheap relative to the I/O.
ObsHistogram& WriteLatencyHistogram() {
  static ObsHistogram histogram("storage.write_nanos");
  return histogram;
}
ObsHistogram& ReadLatencyHistogram() {
  static ObsHistogram histogram("storage.read_nanos");
  return histogram;
}

// Injected-fault counters, by kind. Exported so a test (or an operator
// dashboard) can confirm the profile actually fired.
ObsCounter& TransientFaultCounter() {
  static ObsCounter counter("storage.fault.transient");
  return counter;
}
ObsCounter& LatencySpikeCounter() {
  static ObsCounter counter("storage.fault.latency_spike");
  return counter;
}
ObsCounter& TornWriteCounter() {
  static ObsCounter counter("storage.fault.torn_write");
  return counter;
}
ObsCounter& BitFlipCounter() {
  static ObsCounter counter("storage.fault.bit_flip");
  return counter;
}

void MaybeSleep(int64_t nanos) {
  if (nanos > 0) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(nanos));
  }
}

std::string ErrnoMessage(const std::string& context) {
  return context + ": " + std::strerror(errno);
}

}  // namespace

Result<FaultProfile> FaultProfile::Parse(const std::string& spec) {
  FaultProfile profile;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string pair = spec.substr(pos, end - pos);
    pos = end + 1;
    if (pair.empty()) continue;
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("fault profile entry '" + pair +
                                     "' is not key=value");
    }
    const std::string key = pair.substr(0, eq);
    const std::string value = pair.substr(eq + 1);
    char* parse_end = nullptr;
    const double number = std::strtod(value.c_str(), &parse_end);
    if (parse_end == value.c_str() || *parse_end != '\0') {
      return Status::InvalidArgument("bad fault profile value '" + value +
                                     "' for key '" + key + "'");
    }
    if (key == "transient" || key == "spike" || key == "torn" ||
        key == "bitflip") {
      if (number < 0.0 || number > 1.0) {
        return Status::InvalidArgument("fault rate '" + key +
                                       "' must be in [0, 1]");
      }
      if (key == "transient") profile.transient_fault_rate = number;
      if (key == "spike") profile.latency_spike_rate = number;
      if (key == "torn") profile.torn_write_rate = number;
      if (key == "bitflip") profile.bit_flip_rate = number;
    } else if (key == "spike-us") {
      if (number < 0) {
        return Status::InvalidArgument("spike-us must be >= 0");
      }
      profile.latency_spike_nanos = static_cast<int64_t>(number * 1000.0);
    } else if (key == "seed") {
      profile.seed = static_cast<uint64_t>(number);
    } else {
      return Status::InvalidArgument("unknown fault profile key '" + key +
                                     "'");
    }
  }
  return profile;
}

std::string FaultProfile::ToString() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "transient=%g,spike=%g,spike-us=%lld,torn=%g,bitflip=%g,"
                "seed=%llu",
                transient_fault_rate, latency_spike_rate,
                static_cast<long long>(latency_spike_nanos / 1000),
                torn_write_rate, bit_flip_rate,
                static_cast<unsigned long long>(seed));
  return buf;
}

void StorageEnv::SetFaultProfile(const FaultProfile& profile) {
  std::lock_guard<std::mutex> lock(fault_mu_);
  fault_profile_ = profile;
  fault_rng_ = Random(profile.seed);
}

void StorageEnv::EnableStorageHealth(const StorageHealth::Options& options) {
  health_ = std::make_unique<StorageHealth>(options);
}

namespace {
StorageHealth::OpClass HealthOpClass(int op) {
  // FaultOp and StorageHealth::OpClass enumerate the same five calls in the
  // same order.
  return static_cast<StorageHealth::OpClass>(op);
}
}  // namespace

Status StorageEnv::HealthAllow(FaultOp op) {
  if (health_ == nullptr) return Status::OK();
  return health_->AllowRequest(HealthOpClass(static_cast<int>(op)));
}

void StorageEnv::HealthRecord(FaultOp op, const Status& status, int64_t nanos) {
  if (health_ == nullptr) return;
  health_->RecordOutcome(HealthOpClass(static_cast<int>(op)), status, nanos);
}

StorageEnv::FaultAction StorageEnv::DrawFault(FaultOp op) {
  if (!fault_profile_.enabled()) return FaultAction::kNone;
  std::lock_guard<std::mutex> lock(fault_mu_);
  // One draw per call, mapped onto the cumulative rate ranges so the
  // categories are mutually exclusive and the sequence is reproducible.
  const double u = fault_rng_.NextDouble();
  double threshold = fault_profile_.transient_fault_rate;
  if (u < threshold) {
    TransientFaultCounter().Add(1);
    return FaultAction::kTransient;
  }
  if (op == FaultOp::kWrite) {
    threshold += fault_profile_.torn_write_rate;
    if (u < threshold) {
      TornWriteCounter().Add(1);
      return FaultAction::kTornWrite;
    }
  }
  if (op == FaultOp::kRead) {
    threshold += fault_profile_.bit_flip_rate;
    if (u < threshold) {
      BitFlipCounter().Add(1);
      return FaultAction::kBitFlip;
    }
  }
  if (op == FaultOp::kWrite || op == FaultOp::kRead) {
    threshold += fault_profile_.latency_spike_rate;
    if (u < threshold) {
      LatencySpikeCounter().Add(1);
      return FaultAction::kLatencySpike;
    }
  }
  return FaultAction::kNone;
}

uint64_t StorageEnv::DrawFaultUint64(uint64_t bound) {
  std::lock_guard<std::mutex> lock(fault_mu_);
  return fault_rng_.NextUint64(bound);
}

class LocalWritableFile : public WritableFile {
 public:
  LocalWritableFile(std::FILE* file, std::string path, StorageEnv* env)
      : file_(file), path_(std::move(path)), env_(env) {}

  ~LocalWritableFile() override {
    if (file_ == nullptr) return;
    if (std::fclose(file_) != 0) {
      TOPK_LOG(Warning) << "close failed in destructor for " << path_ << ": "
                        << std::strerror(errno);
    }
  }

  Status Append(std::string_view data) override {
    Status admit = env_->HealthAllow(StorageEnv::FaultOp::kWrite);
    if (!admit.ok()) return admit;
    Stopwatch health_watch;
    Status status = AppendImpl(data);
    env_->HealthRecord(StorageEnv::FaultOp::kWrite, status,
                       health_watch.ElapsedNanos());
    return status;
  }

  Status Flush() override {
    Status admit = env_->HealthAllow(StorageEnv::FaultOp::kFlush);
    if (!admit.ok()) return admit;
    Stopwatch health_watch;
    Status status = FlushImpl();
    env_->HealthRecord(StorageEnv::FaultOp::kFlush, status,
                       health_watch.ElapsedNanos());
    return status;
  }

  Status Close() override {
    Status admit = env_->HealthAllow(StorageEnv::FaultOp::kClose);
    if (!admit.ok()) return admit;
    Stopwatch health_watch;
    Status status = CloseImpl();
    env_->HealthRecord(StorageEnv::FaultOp::kClose, status,
                       health_watch.ElapsedNanos());
    return status;
  }

 private:
  Status AppendImpl(std::string_view data) {
    if (file_ == nullptr) {
      return Status::FailedPrecondition("append to closed file " + path_);
    }
    if (!poisoned_.ok()) return poisoned_;
    if (env_->ShouldFailWrite()) {
      return Status::IoError("injected write failure on " + path_);
    }
    // Transient failures fire before any byte reaches storage, so a retry
    // of the same Append is always safe on this append-only format.
    if (env_->ConsumeTransientWrite()) {
      return Status::Unavailable("injected transient write failure on " +
                                 path_);
    }
    const StorageEnv::FaultAction fault =
        env_->DrawFault(StorageEnv::FaultOp::kWrite);
    if (fault == StorageEnv::FaultAction::kTransient) {
      return Status::Unavailable("transient write fault on " + path_);
    }
    const uint64_t quota = env_->options().max_bytes_written;
    if (quota > 0 &&
        env_->stats()->bytes_written() + data.size() > quota) {
      return Status::ResourceExhausted(
          "disk quota exceeded writing " + path_ + " (" +
          std::to_string(quota) + " bytes allowed)");
    }
    Stopwatch watch;
    MaybeSleep(env_->options().write_latency_nanos);
    if (fault == StorageEnv::FaultAction::kLatencySpike) {
      MaybeSleep(env_->fault_profile().latency_spike_nanos);
    }
    if (fault == StorageEnv::FaultAction::kTornWrite && !data.empty()) {
      // A prefix lands on storage, then the handle dies. Permanent: a
      // retry would duplicate the prefix, so this must never be retried.
      const size_t prefix =
          static_cast<size_t>(env_->DrawFaultUint64(data.size()));
      if (prefix > 0) {
        const size_t written =
            std::fwrite(data.data(), 1, prefix, file_);
        env_->stats()->RecordWrite(written, watch.ElapsedNanos());
      }
      poisoned_ = Status::IoError(
          "torn write on " + path_ + ": connection lost after " +
          std::to_string(prefix) + " of " + std::to_string(data.size()) +
          " bytes");
      return poisoned_;
    }
    const size_t written = std::fwrite(data.data(), 1, data.size(), file_);
    if (written != data.size()) {
      return Status::IoError(ErrnoMessage("short write to " + path_));
    }
    const int64_t nanos = watch.ElapsedNanos();
    env_->stats()->RecordWrite(data.size(), nanos);
    WriteLatencyHistogram().Record(nanos);
    ObsRecordStorageWrite(data.size(), nanos);
    return Status::OK();
  }

  Status FlushImpl() {
    if (file_ == nullptr) {
      return Status::FailedPrecondition("flush of closed file " + path_);
    }
    if (!poisoned_.ok()) return poisoned_;
    if (env_->ShouldFailFlush()) {
      return Status::IoError("injected flush failure on " + path_);
    }
    if (env_->DrawFault(StorageEnv::FaultOp::kFlush) ==
        StorageEnv::FaultAction::kTransient) {
      return Status::Unavailable("transient flush fault on " + path_);
    }
    if (std::fflush(file_) != 0) {
      return Status::IoError(ErrnoMessage("flush failed for " + path_));
    }
    return Status::OK();
  }

  Status CloseImpl() {
    if (file_ == nullptr) return Status::OK();
    if (env_->ShouldFailClose()) {
      return Status::IoError("injected close failure on " + path_);
    }
    if (env_->DrawFault(StorageEnv::FaultOp::kClose) ==
        StorageEnv::FaultAction::kTransient) {
      // The handle stays open: a retried Close can still succeed.
      return Status::Unavailable("transient close fault on " + path_);
    }
    const int rc = std::fclose(file_);
    file_ = nullptr;
    if (!poisoned_.ok()) return poisoned_;
    if (rc != 0) {
      return Status::IoError(ErrnoMessage("close failed for " + path_));
    }
    return Status::OK();
  }

  std::FILE* file_;
  std::string path_;
  StorageEnv* env_;
  /// Set by a torn write; every later call returns it (permanent).
  Status poisoned_;
};

class LocalSequentialFile : public SequentialFile {
 public:
  LocalSequentialFile(std::FILE* file, std::string path, StorageEnv* env)
      : file_(file), path_(std::move(path)), env_(env) {}

  ~LocalSequentialFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  Status Read(size_t n, char* scratch, size_t* bytes_read) override {
    Status admit = env_->HealthAllow(StorageEnv::FaultOp::kRead);
    if (!admit.ok()) {
      *bytes_read = 0;
      return admit;
    }
    Stopwatch health_watch;
    Status status = ReadImpl(n, scratch, bytes_read);
    env_->HealthRecord(StorageEnv::FaultOp::kRead, status,
                       health_watch.ElapsedNanos());
    return status;
  }

 private:
  Status ReadImpl(size_t n, char* scratch, size_t* bytes_read) {
    *bytes_read = 0;
    if (env_->ShouldFailRead()) {
      return Status::IoError("injected read failure on " + path_);
    }
    // Transient failures fire before the file position advances, so a
    // retried Read resumes exactly where the failed one would have.
    if (env_->ConsumeTransientRead()) {
      return Status::Unavailable("injected transient read failure on " +
                                 path_);
    }
    const StorageEnv::FaultAction fault =
        env_->DrawFault(StorageEnv::FaultOp::kRead);
    if (fault == StorageEnv::FaultAction::kTransient) {
      return Status::Unavailable("transient read fault on " + path_);
    }
    Stopwatch watch;
    MaybeSleep(env_->options().read_latency_nanos);
    if (fault == StorageEnv::FaultAction::kLatencySpike) {
      MaybeSleep(env_->fault_profile().latency_spike_nanos);
    }
    const size_t got = std::fread(scratch, 1, n, file_);
    if (got < n && std::ferror(file_)) {
      return Status::IoError(ErrnoMessage("read failed for " + path_));
    }
    if (fault == StorageEnv::FaultAction::kBitFlip && got > 0) {
      // Silent corruption: the read "succeeds". Only checksum verification
      // downstream can catch this.
      const uint64_t bit = env_->DrawFaultUint64(got * 8);
      scratch[bit / 8] ^= static_cast<char>(1u << (bit % 8));
    }
    *bytes_read = got;
    const int64_t nanos = watch.ElapsedNanos();
    env_->stats()->RecordRead(got, nanos);
    ReadLatencyHistogram().Record(nanos);
    ObsRecordStorageRead(got, nanos);
    return Status::OK();
  }

 public:
  Status Skip(uint64_t n) override {
    if (std::fseek(file_, static_cast<long>(n), SEEK_CUR) != 0) {
      return Status::IoError(ErrnoMessage("seek failed for " + path_));
    }
    return Status::OK();
  }

 private:
  std::FILE* file_;
  std::string path_;
  StorageEnv* env_;
};

bool StorageEnv::ShouldFailWrite() {
  const uint64_t target = fail_write_at_.load(std::memory_order_relaxed);
  if (target == 0) return false;
  const uint64_t seen =
      write_calls_seen_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (seen == target) {
    fail_write_at_.store(0, std::memory_order_relaxed);
    write_calls_seen_.store(0, std::memory_order_relaxed);
    return true;
  }
  return false;
}

bool StorageEnv::ShouldFailRead() {
  const uint64_t target = fail_read_at_.load(std::memory_order_relaxed);
  if (target == 0) return false;
  const uint64_t seen =
      read_calls_seen_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (seen == target) {
    fail_read_at_.store(0, std::memory_order_relaxed);
    read_calls_seen_.store(0, std::memory_order_relaxed);
    return true;
  }
  return false;
}

bool StorageEnv::ShouldFailFlush() {
  const uint64_t target = fail_flush_at_.load(std::memory_order_relaxed);
  if (target == 0) return false;
  const uint64_t seen =
      flush_calls_seen_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (seen == target) {
    fail_flush_at_.store(0, std::memory_order_relaxed);
    flush_calls_seen_.store(0, std::memory_order_relaxed);
    return true;
  }
  return false;
}

bool StorageEnv::ShouldFailClose() {
  const uint64_t target = fail_close_at_.load(std::memory_order_relaxed);
  if (target == 0) return false;
  const uint64_t seen =
      close_calls_seen_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (seen == target) {
    fail_close_at_.store(0, std::memory_order_relaxed);
    close_calls_seen_.store(0, std::memory_order_relaxed);
    return true;
  }
  return false;
}

bool StorageEnv::ShouldFailDelete() {
  const uint64_t target = fail_delete_at_.load(std::memory_order_relaxed);
  if (target == 0) return false;
  const uint64_t seen =
      delete_calls_seen_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (seen == target) {
    fail_delete_at_.store(0, std::memory_order_relaxed);
    delete_calls_seen_.store(0, std::memory_order_relaxed);
    return true;
  }
  return false;
}

bool StorageEnv::ConsumeTransientWrite() {
  uint64_t left = transient_writes_left_.load(std::memory_order_relaxed);
  while (left > 0) {
    if (transient_writes_left_.compare_exchange_weak(
            left, left - 1, std::memory_order_relaxed)) {
      TransientFaultCounter().Add(1);
      return true;
    }
  }
  return false;
}

bool StorageEnv::ConsumeTransientRead() {
  uint64_t left = transient_reads_left_.load(std::memory_order_relaxed);
  while (left > 0) {
    if (transient_reads_left_.compare_exchange_weak(
            left, left - 1, std::memory_order_relaxed)) {
      TransientFaultCounter().Add(1);
      return true;
    }
  }
  return false;
}

Result<std::unique_ptr<WritableFile>> StorageEnv::NewWritableFile(
    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError(ErrnoMessage("cannot create " + path));
  }
  stats_.RecordFileCreated();
  return std::unique_ptr<WritableFile>(
      new LocalWritableFile(file, path, this));
}

Result<std::unique_ptr<SequentialFile>> StorageEnv::NewSequentialFile(
    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IoError(ErrnoMessage("cannot open " + path));
  }
  return std::unique_ptr<SequentialFile>(
      new LocalSequentialFile(file, path, this));
}

Status StorageEnv::DeleteFile(const std::string& path) {
  Status admit = HealthAllow(FaultOp::kDelete);
  if (!admit.ok()) return admit;
  Stopwatch health_watch;
  Status status = [&]() -> Status {
    if (ShouldFailDelete()) {
      return Status::IoError("injected delete failure on " + path);
    }
    if (DrawFault(FaultOp::kDelete) == FaultAction::kTransient) {
      return Status::Unavailable("transient delete fault on " + path);
    }
    std::error_code ec;
    if (!std::filesystem::remove(path, ec)) {
      if (ec) {
        return Status::IoError("cannot delete " + path + ": " + ec.message());
      }
      return Status::NotFound("no such file: " + path);
    }
    stats_.RecordFileDeleted();
    return Status::OK();
  }();
  HealthRecord(FaultOp::kDelete, status, health_watch.ElapsedNanos());
  return status;
}

Status StorageEnv::CreateDirs(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) {
    return Status::IoError("cannot create directory " + path + ": " +
                           ec.message());
  }
  return Status::OK();
}

Result<uint64_t> StorageEnv::FileSize(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) {
    return Status::IoError("cannot stat " + path + ": " + ec.message());
  }
  return static_cast<uint64_t>(size);
}

}  // namespace topk
