#include "model/analytic_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "histogram/cutoff_filter.h"

namespace topk {

AnalyticModelResult RunAnalyticModel(const AnalyticModelConfig& config) {
  TOPK_CHECK(config.k > 0);
  TOPK_CHECK(config.memory_rows > 0);

  AnalyticModelResult result;
  result.ideal_cutoff = static_cast<double>(config.k) /
                        static_cast<double>(config.input_rows);

  CutoffFilter::Options filter_options;
  filter_options.k = config.k;
  filter_options.direction = SortDirection::kAscending;
  filter_options.target_buckets_per_run = config.buckets_per_run;
  filter_options.target_run_rows = config.memory_rows;
  // Configurable (default ample — the paper's analysis never
  // consolidates) so a model run can mirror a real operator's
  // histogram_memory_limit_bytes instead of assuming unlimited filter
  // memory.
  filter_options.memory_limit_bytes = config.histogram_memory_limit_bytes;
  CutoffFilter filter(filter_options);

  const uint64_t capacity = config.memory_rows;
  uint64_t remaining = config.input_rows;

  while (remaining > 0) {
    AnalyticRunRecord record;
    record.run_index = result.total_runs + 1;
    record.remaining_before = remaining;
    record.cutoff_before = filter.cutoff();

    // Fill phase: each remaining input row passes the filter with
    // probability c (uniform keys), so `capacity` accepted rows consume
    // floor(capacity / c) input rows.
    const double fill_cutoff = filter.cutoff().value_or(1.0);
    uint64_t consumed = remaining;
    uint64_t accepted = 0;
    if (fill_cutoff >= 1.0) {
      consumed = std::min<uint64_t>(remaining, capacity);
      accepted = consumed;
    } else {
      const uint64_t needed = static_cast<uint64_t>(
          std::floor(static_cast<double>(capacity) / fill_cutoff));
      if (needed <= remaining) {
        consumed = needed;
        accepted = capacity;
      } else {
        consumed = remaining;
        accepted = static_cast<uint64_t>(
            std::floor(static_cast<double>(remaining) * fill_cutoff));
        accepted = std::min(accepted, capacity);
      }
    }
    remaining -= consumed;
    record.rows_consumed = consumed;

    if (accepted == 0) {
      // Every remaining row was eliminated by the input filter; no run.
      continue;
    }

    // Write phase: sorted keys are uniformly spread over [0, fill_cutoff].
    // Rows are written until one falls beyond the sharpening cutoff; each
    // written row feeds the filter (and may sharpen the cutoff mid-run).
    uint64_t written = 0;
    for (uint64_t j = 1; j <= accepted; ++j) {
      // The `accepted` buffered keys are uniform over [0, fill_cutoff].
      const double key = fill_cutoff * static_cast<double>(j) /
                         static_cast<double>(accepted);
      if (filter.EliminateKey(key)) break;
      filter.RowSpilled(key);
      ++written;
      // Record Table 1's decile columns: the key at each decile of the
      // memory load, when that row was actually written.
      if (capacity >= 10 && j % (capacity / 10) == 0) {
        const uint64_t decile = j / (capacity / 10);
        if (decile >= 1 && decile <= 9) {
          record.decile_keys[decile - 1] = key;
        }
      }
    }
    filter.RunFinished();
    record.rows_written = written;

    if (written > 0) {
      ++result.total_runs;
      result.total_rows_spilled += written;
      result.runs.push_back(record);
    }
  }

  result.final_cutoff = filter.cutoff();
  return result;
}

BaselineAnalysis AnalyzeBaselines(const AnalyticModelConfig& config,
                                  uint64_t early_merge_runs) {
  BaselineAnalysis analysis;
  analysis.traditional_rows_spilled = config.input_rows;

  // Optimized baseline ([14]): write `early_merge_runs` full runs, merge
  // them (writing min(k, merged) more rows), and take the k-th key of the
  // merged prefix as the cutoff for all further input. With uniform keys
  // the k-th key of m merged rows sits at quantile k/m.
  const uint64_t merged_rows =
      std::min<uint64_t>(config.input_rows,
                         early_merge_runs * config.memory_rows);
  uint64_t spilled = merged_rows;                      // the initial runs
  spilled += std::min<uint64_t>(config.k, merged_rows);  // merge output
  double cutoff = 1.0;
  if (merged_rows >= config.k && merged_rows > 0) {
    cutoff = static_cast<double>(config.k) / static_cast<double>(merged_rows);
    const uint64_t remaining =
        config.input_rows > merged_rows ? config.input_rows - merged_rows : 0;
    spilled += static_cast<uint64_t>(
        std::floor(static_cast<double>(remaining) * cutoff));
  } else {
    // Never enough rows for a cutoff: everything spills.
    spilled = config.input_rows + std::min(config.k, config.input_rows);
  }
  analysis.optimized_rows_spilled = spilled;
  analysis.optimized_cutoff = cutoff;
  return analysis;
}

}  // namespace topk
