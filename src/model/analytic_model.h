#ifndef TOPK_MODEL_ANALYTIC_MODEL_H_
#define TOPK_MODEL_ANALYTIC_MODEL_H_

#include <cstdint>
#include <optional>
#include <vector>

namespace topk {

/// Deterministic simulation of the algorithm on perfectly uniform keys in
/// [0, 1], exactly as the paper's analysis section does ("These calculations
/// assume perfectly uniform random distributions", Sec 3.2.1). It drives
/// the *real* CutoffFilter; only the data is idealized:
///
///  * run generation is load-sort-store with `memory_rows` capacity;
///  * filling memory under cutoff c consumes floor(memory_rows / c) input
///    rows (each remaining row passes the input filter with probability c);
///  * the sorted memory load has keys c * j / memory_rows, j = 1..capacity;
///  * rows are written until a key exceeds the (continuously sharpening)
///    cutoff, each written row feeding the filter.
///
/// Regenerates Tables 1-5 of the paper without materializing any rows.
struct AnalyticModelConfig {
  uint64_t input_rows = 1000000;
  uint64_t k = 5000;
  uint64_t memory_rows = 1000;
  /// Histogram buckets per run; 0 = no filtering (traditional sort), 1 =
  /// run median, 9 = deciles (the Table 1 configuration).
  uint64_t buckets_per_run = 9;
  /// Byte budget handed to the simulated CutoffFilter's bucket queue —
  /// the same knob as TopKOptions::histogram_memory_limit_bytes, so a
  /// model run can mirror a real operator configuration instead of
  /// assuming unlimited filter memory. The default is deliberately ample
  /// (the paper's analysis never consolidates): at 48 bytes per tracked
  /// bucket it admits ~350k buckets.
  size_t histogram_memory_limit_bytes = 16u << 20;
};

/// Per-run trace entry (one row of Table 1).
struct AnalyticRunRecord {
  uint64_t run_index = 0;  // 1-based
  /// Input rows not yet consumed before this run started.
  uint64_t remaining_before = 0;
  /// Cutoff in force when the run's fill began (nullopt before
  /// establishment).
  std::optional<double> cutoff_before;
  /// Keys at each decile (10%..90%) of the memory load that were actually
  /// written; nullopt for deciles eliminated by the sharpening cutoff.
  std::optional<double> decile_keys[9];
  uint64_t rows_consumed = 0;
  uint64_t rows_written = 0;
};

struct AnalyticModelResult {
  std::vector<AnalyticRunRecord> runs;
  uint64_t total_runs = 0;
  /// Input rows written to secondary storage (the paper's "Rows" column).
  uint64_t total_rows_spilled = 0;
  /// Final cutoff; nullopt when none was ever established.
  std::optional<double> final_cutoff;
  /// k / input_rows: the last key of the true output under uniform keys.
  double ideal_cutoff = 0.0;

  /// Cutoff / ideal (the "Ratio" column); uses the domain max 1.0 when no
  /// cutoff was established.
  double ratio() const {
    return final_cutoff.value_or(1.0) / ideal_cutoff;
  }
};

AnalyticModelResult RunAnalyticModel(const AnalyticModelConfig& config);

/// Idealized spill counts of the two baseline algorithms under the same
/// uniform model, for the Sec 3.2.1 comparisons:
///  * traditional external merge sort spills the entire input;
///  * the optimized external sort ([14]) spills until an early merge of
///    `early_merge_runs` runs establishes a cutoff (the k-th key of the
///    merged prefix), then spills only keys below that fixed cutoff; the
///    intermediate merge output (k rows) is also written.
struct BaselineAnalysis {
  uint64_t traditional_rows_spilled = 0;
  uint64_t optimized_rows_spilled = 0;
  /// Cutoff the optimized baseline settles on (1.0 when never established).
  double optimized_cutoff = 1.0;
};

BaselineAnalysis AnalyzeBaselines(const AnalyticModelConfig& config,
                                  uint64_t early_merge_runs = 10);

}  // namespace topk

#endif  // TOPK_MODEL_ANALYTIC_MODEL_H_
