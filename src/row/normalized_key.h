#ifndef TOPK_ROW_NORMALIZED_KEY_H_
#define TOPK_ROW_NORMALIZED_KEY_H_

#include <bit>
#include <cmath>
#include <cstdint>

namespace topk {

/// Direction of the ORDER BY clause a top-k query sorts on. "Top k" means
/// the first k rows in this direction (kAscending: the k smallest keys).
/// Defined here (not row.h) because the normalized-key encoding bakes the
/// direction in; row.h re-exports it by including this header.
enum class SortDirection { kAscending, kDescending };

/// --- Normalized keys -----------------------------------------------------
///
/// A binary-comparable ("normalized") encoding of the sort attributes
/// (key, id), the layout both Do & Graefe ("Robust and Efficient Sorting
/// with Offset-Value Coding") and Polyntsov et al. ("Implementing the
/// Comparison-Based External Sort") build their sort fast paths on. All
/// ordering decisions are made ONCE, at encode time; afterwards the query
/// order is plain unsigned integer comparison (equivalently: memcmp over the
/// big-endian byte string). This structurally removes the comparator
/// edge-case bug class:
///
///   * NaN breaks `<` strict-weak-ordering — here NaN is canonicalized to
///     the largest encoding, so it totally orders last in query direction.
///   * -0.0 and +0.0 compare equal but have different bit patterns — here
///     -0.0 is folded into +0.0 before encoding, so they are the same key.
///   * ascending/descending needs no branch per comparison — descending is
///     the bitwise complement of the ascending encoding.
///
/// Encoding table for the key word (8 bytes, then compared as uint64):
///
///   input double          IEEE-754 bits      ascending encoding
///   ------------------    ---------------    -------------------------
///   NaN (any payload)     s111...1xxxx       0xFFFFFFFFFFFFFFFF (fixed)
///   +inf                  0x7FF0...0         0xFFF0000000000000
///   positive finite       0x000...0x7FEF..   bits | 0x8000000000000000
///   +0.0 and -0.0         0x0 / 0x8000...0   0x8000000000000000
///   negative finite       0x8000...0xFFEF..  ~bits
///   -inf                  0xFFF0...0         0x000FFFFFFFFFFFFF
///
///   descending encoding = ~ascending, except NaN stays 0xFF..FF (last in
///   the *query* direction either way). No non-NaN double can produce
///   0xFF..FF in either direction (it would require a NaN bit pattern), so
///   the NaN encoding never collides with a real key.

/// The canonical encoding of a NaN key: sorts after every real key.
inline constexpr uint64_t kNormalizedNaN = ~uint64_t{0};

/// Order-preserving encoding of `key` for `direction`:
/// NormalizeDoubleKey(a) < NormalizeDoubleKey(b) iff a sorts strictly
/// before b in the query direction (with NaN last and -0.0 == +0.0).
inline uint64_t NormalizeDoubleKey(double key, SortDirection direction) {
  if (std::isnan(key)) return kNormalizedNaN;
  // key == 0.0 is true for both zeros; writing +0.0 folds the sign away.
  const uint64_t bits = std::bit_cast<uint64_t>(key == 0.0 ? 0.0 : key);
  const uint64_t sign = uint64_t{1} << 63;
  const uint64_t ascending = (bits & sign) ? ~bits : (bits | sign);
  return direction == SortDirection::kAscending ? ascending : ~ascending;
}

/// The total-order, memcmp-comparable 16-byte encoding of a row's sort
/// attributes: the normalized key word followed by the row id as the
/// tiebreak word (ids ascend regardless of direction, preserving
/// RowComparator's deterministic tie order). Stored as two host uint64s
/// whose numeric order equals lexicographic order over the conceptual
/// big-endian 16-byte string; ByteAt() exposes that byte view for
/// offset-value coding.
struct NormalizedKey {
  uint64_t key_word = 0;
  uint64_t id_word = 0;

  static NormalizedKey Encode(double key, uint64_t id,
                              SortDirection direction) {
    return NormalizedKey{NormalizeDoubleKey(key, direction), id};
  }

  /// Byte `i` (0..15) of the big-endian byte string.
  uint8_t ByteAt(size_t i) const {
    const uint64_t word = i < 8 ? key_word : id_word;
    return static_cast<uint8_t>(word >> (56 - 8 * (i & 7)));
  }

  /// Index (0..15) of the first byte where `*this` and `other` differ, or
  /// 16 when they are identical.
  size_t FirstDifferingByte(const NormalizedKey& other) const {
    if (const uint64_t x = key_word ^ other.key_word; x != 0) {
      return static_cast<size_t>(std::countl_zero(x)) / 8;
    }
    if (const uint64_t x = id_word ^ other.id_word; x != 0) {
      return 8 + static_cast<size_t>(std::countl_zero(x)) / 8;
    }
    return 16;
  }

  friend bool operator==(const NormalizedKey& a, const NormalizedKey& b) {
    return a.key_word == b.key_word && a.id_word == b.id_word;
  }
  friend bool operator!=(const NormalizedKey& a, const NormalizedKey& b) {
    return !(a == b);
  }
  friend bool operator<(const NormalizedKey& a, const NormalizedKey& b) {
    if (a.key_word != b.key_word) return a.key_word < b.key_word;
    return a.id_word < b.id_word;
  }
  friend bool operator<=(const NormalizedKey& a, const NormalizedKey& b) {
    return !(b < a);
  }
};

/// --- Offset-value codes --------------------------------------------------
///
/// An offset-value code (Conner 1977; Do & Graefe 2022) summarizes a
/// normalized key *relative to a base key it sorts at or after* (in a merge:
/// the most recent output row). With offset = index of the first byte where
/// the key differs from the base and value = the key's byte there:
///
///   code = ((16 - offset) << 8) | value        (0 when key == base)
///
/// For two keys coded against the SAME base, code order equals key order,
/// and equal codes leave the order undecided — only then is a full key
/// comparison needed, after which the LOSER (the later-sorting key) takes a
/// new code relative to the winner (see MakeOvcAgainstBase applied to the
/// winner). When codes differ no update is needed: the loser's code
/// relative to its conqueror provably equals its code relative to the old
/// base (Do & Graefe's theorem — the property that makes tournament trees
/// and OVCs compose).
using OffsetValueCode = uint32_t;

/// Sorts after every real code: the "exhausted merge input" sentinel.
inline constexpr OffsetValueCode kOvcExhausted = ~OffsetValueCode{0};

inline OffsetValueCode MakeOvc(size_t offset, uint8_t value) {
  return offset >= 16
             ? 0
             : static_cast<OffsetValueCode>((16 - offset) << 8) | value;
}

/// Code of `key` relative to `base`, requiring base <= key in the encoded
/// order (in a merge every candidate sorts at or after the last output).
inline OffsetValueCode MakeOvcAgainstBase(const NormalizedKey& key,
                                          const NormalizedKey& base) {
  const size_t offset = key.FirstDifferingByte(base);
  return offset >= 16 ? 0 : MakeOvc(offset, key.ByteAt(offset));
}

/// Code of `key` relative to the virtual "sorts before everything" base all
/// merge inputs start from: offset 0, value = the first key byte. Every
/// initial code uses the same virtual base, so they are mutually
/// comparable.
inline OffsetValueCode MakeInitialOvc(const NormalizedKey& key) {
  return MakeOvc(0, key.ByteAt(0));
}

/// Process-wide default for the merge path's offset-value-coding fast path.
/// True unless the environment variable TOPK_OVC is set to "0" or "false"
/// (the CI matrix runs the suite both ways); TopKOptions::use_ovc and the
/// CLI --ovc flag override it per query.
bool DefaultOvcEnabled();

}  // namespace topk

#endif  // TOPK_ROW_NORMALIZED_KEY_H_
