#ifndef TOPK_ROW_SERIALIZATION_H_
#define TOPK_ROW_SERIALIZATION_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "row/row.h"

namespace topk {

/// Run-file row wire format (little-endian):
///   [key: f64][id: u64][payload_len: u32][payload bytes]
/// The format is self-delimiting so runs can hold variable-size rows.

/// Appends the serialized form of `row` to `out`.
void SerializeRow(const Row& row, std::string* out);

/// Parses one row from `data + *offset`, advancing `*offset`. Returns
/// Corruption if the buffer is truncated.
Status DeserializeRow(const char* data, size_t size, size_t* offset, Row* row);

/// Fixed per-row header size of the wire format.
inline constexpr size_t kRowHeaderBytes =
    sizeof(double) + sizeof(uint64_t) + sizeof(uint32_t);

/// Hard format limit on a row's payload. Enforced at write time
/// (InvalidArgument) and at read time (Corruption) — a corrupt length
/// field must not trigger a multi-gigabyte allocation. The wire format's
/// length field is 32 bits; this limit (far below 4 GiB) guarantees the
/// narrowing cast in SerializeRow can never truncate.
inline constexpr uint32_t kMaxRowPayloadBytes = 64u << 20;

/// Rejects rows whose payload exceeds the wire-format limit. Called where
/// rows enter an operator or a run file, so an oversized payload fails
/// loudly with InvalidArgument at append time instead of silently
/// truncating its length through the uint32_t cast at serialization time.
Status ValidateRowPayload(const Row& row);

}  // namespace topk

#endif  // TOPK_ROW_SERIALIZATION_H_
