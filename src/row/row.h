#ifndef TOPK_ROW_ROW_H_
#define TOPK_ROW_ROW_H_

#include <cstdint>
#include <string>
#include <utility>

#include "row/normalized_key.h"

namespace topk {

/// A row as seen by the top-k operator: a numeric sort key (the score/ORDER
/// BY expression, already computed upstream per Sec 2 of the paper), a unique
/// row id used as a deterministic tie-breaker and late-materialization
/// handle, and an opaque variable-size payload carrying the projected
/// columns. Variable payload sizes exercise the paper's point that
/// replacement selection must handle variable-size rows.
struct Row {
  double key = 0.0;
  uint64_t id = 0;
  std::string payload;

  Row() = default;
  Row(double k, uint64_t i) : key(k), id(i) {}
  Row(double k, uint64_t i, std::string p)
      : key(k), id(i), payload(std::move(p)) {}

  /// Allocator bookkeeping bytes charged per heap-allocated payload block
  /// (malloc header/rounding).
  static constexpr size_t kPayloadHeapOverheadBytes = 16;

  /// Bytes this row occupies in operator memory; used against the memory
  /// budget. Counts the struct plus, when the payload outgrew the string's
  /// inline (SSO) buffer, its heap block: capacity, the terminating NUL the
  /// allocation carries, and the allocator overhead. The SSO threshold is
  /// probed from the implementation instead of guessed from
  /// sizeof(std::string) — the old guess admitted heap-allocated payloads
  /// of up to sizeof(std::string) bytes free of charge, so small-payload
  /// workloads buffered more rows than memory_limit_bytes intended.
  size_t MemoryFootprint() const {
    static const size_t sso_capacity = std::string().capacity();
    const size_t heap =
        payload.capacity() > sso_capacity
            ? payload.capacity() + 1 + kPayloadHeapOverheadBytes
            : 0;
    return sizeof(Row) + heap;
  }

  /// Bytes this row occupies when serialized to a run file. The wire format
  /// stores the payload length in 32 bits; payloads above the format limit
  /// are rejected with InvalidArgument where rows enter an operator or a
  /// run (see kMaxRowPayloadBytes in row/serialization.h) — never silently
  /// truncated here.
  size_t SerializedSize() const {
    return sizeof(double) + sizeof(uint64_t) + sizeof(uint32_t) +
           payload.size();
  }

  /// The row's position in the query order, decided once: all comparisons
  /// downstream (run generation, loser tree, cutoff probes) reduce to
  /// integer comparisons on this encoding.
  NormalizedKey normalized_key(SortDirection direction) const {
    return NormalizedKey::Encode(key, id, direction);
  }

  bool operator==(const Row& other) const {
    return key == other.key && id == other.id && payload == other.payload;
  }
};

/// Total order over rows for a given sort direction: by key in the query
/// direction, ties broken by ascending row id so results are deterministic.
///
/// All comparisons delegate to the normalized-key encoding
/// (row/normalized_key.h), which makes the order TOTAL for every double:
/// NaN keys sort last in the query direction (a raw `<` on doubles makes
/// NaN incomparable, violating strict weak ordering and corrupting
/// quicksort/loser-tree invariants), and -0.0 is the same key as +0.0 (raw
/// comparison treats them as equal but they serialize differently, so run
/// order could disagree with resume-time verification).
class RowComparator {
 public:
  explicit RowComparator(SortDirection direction = SortDirection::kAscending)
      : ascending_(direction == SortDirection::kAscending) {}

  SortDirection direction() const {
    return ascending_ ? SortDirection::kAscending : SortDirection::kDescending;
  }

  /// True when `a` sorts strictly before `b` in the query order.
  bool Less(const Row& a, const Row& b) const {
    const uint64_t na = NormalizeDoubleKey(a.key, direction());
    const uint64_t nb = NormalizeDoubleKey(b.key, direction());
    if (na != nb) return na < nb;
    return a.id < b.id;
  }

  bool operator()(const Row& a, const Row& b) const { return Less(a, b); }

  /// True when key `a` sorts strictly before key `b` (ignoring ties).
  bool KeyLess(double a, double b) const {
    return NormalizeDoubleKey(a, direction()) <
           NormalizeDoubleKey(b, direction());
  }

  /// True when a row with key `key` lies strictly beyond the cutoff, i.e. it
  /// can never be part of the top-k output once the cutoff is established.
  /// Rows whose key equals the cutoff are kept (the kth output row may share
  /// the cutoff key).
  bool KeyBeyond(double key, double cutoff) const {
    return NormalizeDoubleKey(key, direction()) >
           NormalizeDoubleKey(cutoff, direction());
  }

 private:
  bool ascending_;
};

}  // namespace topk

#endif  // TOPK_ROW_ROW_H_
