#ifndef TOPK_ROW_ROW_H_
#define TOPK_ROW_ROW_H_

#include <cstdint>
#include <string>
#include <utility>

namespace topk {

/// Direction of the ORDER BY clause a top-k query sorts on. "Top k" means
/// the first k rows in this direction (kAscending: the k smallest keys).
enum class SortDirection { kAscending, kDescending };

/// A row as seen by the top-k operator: a numeric sort key (the score/ORDER
/// BY expression, already computed upstream per Sec 2 of the paper), a unique
/// row id used as a deterministic tie-breaker and late-materialization
/// handle, and an opaque variable-size payload carrying the projected
/// columns. Variable payload sizes exercise the paper's point that
/// replacement selection must handle variable-size rows.
struct Row {
  double key = 0.0;
  uint64_t id = 0;
  std::string payload;

  Row() = default;
  Row(double k, uint64_t i) : key(k), id(i) {}
  Row(double k, uint64_t i, std::string p)
      : key(k), id(i), payload(std::move(p)) {}

  /// Bytes this row occupies in operator memory; used against the memory
  /// budget. Counts the struct plus the payload heap allocation.
  size_t MemoryFootprint() const {
    return sizeof(Row) + (payload.capacity() > sizeof(std::string)
                              ? payload.capacity()
                              : 0);
  }

  /// Bytes this row occupies when serialized to a run file.
  size_t SerializedSize() const {
    return sizeof(double) + sizeof(uint64_t) + sizeof(uint32_t) +
           payload.size();
  }

  bool operator==(const Row& other) const {
    return key == other.key && id == other.id && payload == other.payload;
  }
};

/// Total order over rows for a given sort direction: by key in the query
/// direction, ties broken by ascending row id so results are deterministic.
class RowComparator {
 public:
  explicit RowComparator(SortDirection direction = SortDirection::kAscending)
      : ascending_(direction == SortDirection::kAscending) {}

  SortDirection direction() const {
    return ascending_ ? SortDirection::kAscending : SortDirection::kDescending;
  }

  /// True when `a` sorts strictly before `b` in the query order.
  bool Less(const Row& a, const Row& b) const {
    if (a.key != b.key) return ascending_ ? a.key < b.key : a.key > b.key;
    return a.id < b.id;
  }

  bool operator()(const Row& a, const Row& b) const { return Less(a, b); }

  /// True when key `a` sorts strictly before key `b` (ignoring ties).
  bool KeyLess(double a, double b) const {
    return ascending_ ? a < b : a > b;
  }

  /// True when a row with key `key` lies strictly beyond the cutoff, i.e. it
  /// can never be part of the top-k output once the cutoff is established.
  /// Rows whose key equals the cutoff are kept (the kth output row may share
  /// the cutoff key).
  bool KeyBeyond(double key, double cutoff) const {
    return ascending_ ? key > cutoff : key < cutoff;
  }

 private:
  bool ascending_;
};

}  // namespace topk

#endif  // TOPK_ROW_ROW_H_
