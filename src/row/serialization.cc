#include "row/serialization.h"

#include <cstring>

namespace topk {

namespace {

template <typename T>
void AppendRaw(const T& v, std::string* out) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ReadRaw(const char* data, size_t size, size_t* offset, T* v) {
  if (*offset + sizeof(T) > size) return false;
  std::memcpy(v, data + *offset, sizeof(T));
  *offset += sizeof(T);
  return true;
}

}  // namespace

Status ValidateRowPayload(const Row& row) {
  if (row.payload.size() > kMaxRowPayloadBytes) {
    return Status::InvalidArgument(
        "row payload of " + std::to_string(row.payload.size()) +
        " bytes exceeds the format limit of " +
        std::to_string(kMaxRowPayloadBytes) + " bytes");
  }
  return Status::OK();
}

void SerializeRow(const Row& row, std::string* out) {
  AppendRaw(row.key, out);
  AppendRaw(row.id, out);
  const uint32_t len = static_cast<uint32_t>(row.payload.size());
  AppendRaw(len, out);
  out->append(row.payload);
}

Status DeserializeRow(const char* data, size_t size, size_t* offset,
                      Row* row) {
  double key = 0.0;
  uint64_t id = 0;
  uint32_t len = 0;
  if (!ReadRaw(data, size, offset, &key) ||
      !ReadRaw(data, size, offset, &id) ||
      !ReadRaw(data, size, offset, &len)) {
    return Status::Corruption("row header truncated");
  }
  if (*offset + len > size) {
    return Status::Corruption("row payload truncated");
  }
  row->key = key;
  row->id = id;
  row->payload.assign(data + *offset, len);
  *offset += len;
  return Status::OK();
}

}  // namespace topk
