#include "row/row.h"

// Row and RowComparator are header-only; definitions live here if they
// outgrow the header.
