#include "row/normalized_key.h"

#include <cstdlib>
#include <cstring>

namespace topk {

bool DefaultOvcEnabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("TOPK_OVC");
    if (env == nullptr) return true;
    return !(std::strcmp(env, "0") == 0 || std::strcmp(env, "false") == 0 ||
             std::strcmp(env, "off") == 0);
  }();
  return enabled;
}

}  // namespace topk
