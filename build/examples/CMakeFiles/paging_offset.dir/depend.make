# Empty dependencies file for paging_offset.
# This may be replaced when dependencies are built.
