file(REMOVE_RECURSE
  "CMakeFiles/paging_offset.dir/paging_offset.cpp.o"
  "CMakeFiles/paging_offset.dir/paging_offset.cpp.o.d"
  "paging_offset"
  "paging_offset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paging_offset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
