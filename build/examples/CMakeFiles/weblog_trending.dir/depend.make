# Empty dependencies file for weblog_trending.
# This may be replaced when dependencies are built.
