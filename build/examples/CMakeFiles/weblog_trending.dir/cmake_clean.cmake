file(REMOVE_RECURSE
  "CMakeFiles/weblog_trending.dir/weblog_trending.cpp.o"
  "CMakeFiles/weblog_trending.dir/weblog_trending.cpp.o.d"
  "weblog_trending"
  "weblog_trending.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weblog_trending.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
