file(REMOVE_RECURSE
  "CMakeFiles/grouped_regional.dir/grouped_regional.cpp.o"
  "CMakeFiles/grouped_regional.dir/grouped_regional.cpp.o.d"
  "grouped_regional"
  "grouped_regional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grouped_regional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
