# Empty compiler generated dependencies file for grouped_regional.
# This may be replaced when dependencies are built.
