# Empty dependencies file for histogram_topk_test.
# This may be replaced when dependencies are built.
