file(REMOVE_RECURSE
  "CMakeFiles/histogram_topk_test.dir/histogram_topk_test.cc.o"
  "CMakeFiles/histogram_topk_test.dir/histogram_topk_test.cc.o.d"
  "histogram_topk_test"
  "histogram_topk_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/histogram_topk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
