file(REMOVE_RECURSE
  "CMakeFiles/sizing_policy_test.dir/sizing_policy_test.cc.o"
  "CMakeFiles/sizing_policy_test.dir/sizing_policy_test.cc.o.d"
  "sizing_policy_test"
  "sizing_policy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sizing_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
