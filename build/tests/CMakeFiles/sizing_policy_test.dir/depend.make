# Empty dependencies file for sizing_policy_test.
# This may be replaced when dependencies are built.
