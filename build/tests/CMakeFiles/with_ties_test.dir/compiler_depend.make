# Empty compiler generated dependencies file for with_ties_test.
# This may be replaced when dependencies are built.
