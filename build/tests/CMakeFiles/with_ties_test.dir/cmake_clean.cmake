file(REMOVE_RECURSE
  "CMakeFiles/with_ties_test.dir/with_ties_test.cc.o"
  "CMakeFiles/with_ties_test.dir/with_ties_test.cc.o.d"
  "with_ties_test"
  "with_ties_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/with_ties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
