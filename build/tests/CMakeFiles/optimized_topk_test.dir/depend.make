# Empty dependencies file for optimized_topk_test.
# This may be replaced when dependencies are built.
