file(REMOVE_RECURSE
  "CMakeFiles/optimized_topk_test.dir/optimized_topk_test.cc.o"
  "CMakeFiles/optimized_topk_test.dir/optimized_topk_test.cc.o.d"
  "optimized_topk_test"
  "optimized_topk_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimized_topk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
