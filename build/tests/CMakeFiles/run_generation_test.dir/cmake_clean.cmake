file(REMOVE_RECURSE
  "CMakeFiles/run_generation_test.dir/run_generation_test.cc.o"
  "CMakeFiles/run_generation_test.dir/run_generation_test.cc.o.d"
  "run_generation_test"
  "run_generation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_generation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
