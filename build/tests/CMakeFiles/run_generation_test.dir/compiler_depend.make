# Empty compiler generated dependencies file for run_generation_test.
# This may be replaced when dependencies are built.
