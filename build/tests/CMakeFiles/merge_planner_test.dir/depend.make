# Empty dependencies file for merge_planner_test.
# This may be replaced when dependencies are built.
