file(REMOVE_RECURSE
  "CMakeFiles/merge_planner_test.dir/merge_planner_test.cc.o"
  "CMakeFiles/merge_planner_test.dir/merge_planner_test.cc.o.d"
  "merge_planner_test"
  "merge_planner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merge_planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
