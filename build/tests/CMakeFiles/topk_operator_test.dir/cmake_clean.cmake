file(REMOVE_RECURSE
  "CMakeFiles/topk_operator_test.dir/topk_operator_test.cc.o"
  "CMakeFiles/topk_operator_test.dir/topk_operator_test.cc.o.d"
  "topk_operator_test"
  "topk_operator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topk_operator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
