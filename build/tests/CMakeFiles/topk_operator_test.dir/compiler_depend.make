# Empty compiler generated dependencies file for topk_operator_test.
# This may be replaced when dependencies are built.
