# Empty compiler generated dependencies file for offset_skip_test.
# This may be replaced when dependencies are built.
