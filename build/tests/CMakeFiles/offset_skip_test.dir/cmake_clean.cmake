file(REMOVE_RECURSE
  "CMakeFiles/offset_skip_test.dir/offset_skip_test.cc.o"
  "CMakeFiles/offset_skip_test.dir/offset_skip_test.cc.o.d"
  "offset_skip_test"
  "offset_skip_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offset_skip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
