file(REMOVE_RECURSE
  "CMakeFiles/heap_topk_test.dir/heap_topk_test.cc.o"
  "CMakeFiles/heap_topk_test.dir/heap_topk_test.cc.o.d"
  "heap_topk_test"
  "heap_topk_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heap_topk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
