# Empty dependencies file for heap_topk_test.
# This may be replaced when dependencies are built.
