file(REMOVE_RECURSE
  "CMakeFiles/run_file_fuzz_test.dir/run_file_fuzz_test.cc.o"
  "CMakeFiles/run_file_fuzz_test.dir/run_file_fuzz_test.cc.o.d"
  "run_file_fuzz_test"
  "run_file_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_file_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
