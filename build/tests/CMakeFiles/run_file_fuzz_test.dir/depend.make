# Empty dependencies file for run_file_fuzz_test.
# This may be replaced when dependencies are built.
