file(REMOVE_RECURSE
  "CMakeFiles/cutoff_filter_test.dir/cutoff_filter_test.cc.o"
  "CMakeFiles/cutoff_filter_test.dir/cutoff_filter_test.cc.o.d"
  "cutoff_filter_test"
  "cutoff_filter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cutoff_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
