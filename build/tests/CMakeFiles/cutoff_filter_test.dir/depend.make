# Empty dependencies file for cutoff_filter_test.
# This may be replaced when dependencies are built.
