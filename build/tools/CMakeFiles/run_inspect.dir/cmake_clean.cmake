file(REMOVE_RECURSE
  "CMakeFiles/run_inspect.dir/run_inspect.cc.o"
  "CMakeFiles/run_inspect.dir/run_inspect.cc.o.d"
  "run_inspect"
  "run_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
