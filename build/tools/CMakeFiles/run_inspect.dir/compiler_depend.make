# Empty compiler generated dependencies file for run_inspect.
# This may be replaced when dependencies are built.
