# Empty dependencies file for topk.
# This may be replaced when dependencies are built.
