
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/crc32.cc" "src/CMakeFiles/topk.dir/common/crc32.cc.o" "gcc" "src/CMakeFiles/topk.dir/common/crc32.cc.o.d"
  "/root/repo/src/common/flags.cc" "src/CMakeFiles/topk.dir/common/flags.cc.o" "gcc" "src/CMakeFiles/topk.dir/common/flags.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/topk.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/topk.dir/common/logging.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/topk.dir/common/random.cc.o" "gcc" "src/CMakeFiles/topk.dir/common/random.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/topk.dir/common/status.cc.o" "gcc" "src/CMakeFiles/topk.dir/common/status.cc.o.d"
  "/root/repo/src/common/stopwatch.cc" "src/CMakeFiles/topk.dir/common/stopwatch.cc.o" "gcc" "src/CMakeFiles/topk.dir/common/stopwatch.cc.o.d"
  "/root/repo/src/extensions/approx_topk.cc" "src/CMakeFiles/topk.dir/extensions/approx_topk.cc.o" "gcc" "src/CMakeFiles/topk.dir/extensions/approx_topk.cc.o.d"
  "/root/repo/src/extensions/grouped_topk.cc" "src/CMakeFiles/topk.dir/extensions/grouped_topk.cc.o" "gcc" "src/CMakeFiles/topk.dir/extensions/grouped_topk.cc.o.d"
  "/root/repo/src/extensions/offset_skip.cc" "src/CMakeFiles/topk.dir/extensions/offset_skip.cc.o" "gcc" "src/CMakeFiles/topk.dir/extensions/offset_skip.cc.o.d"
  "/root/repo/src/extensions/parallel_topk.cc" "src/CMakeFiles/topk.dir/extensions/parallel_topk.cc.o" "gcc" "src/CMakeFiles/topk.dir/extensions/parallel_topk.cc.o.d"
  "/root/repo/src/extensions/segmented_topk.cc" "src/CMakeFiles/topk.dir/extensions/segmented_topk.cc.o" "gcc" "src/CMakeFiles/topk.dir/extensions/segmented_topk.cc.o.d"
  "/root/repo/src/gen/distribution.cc" "src/CMakeFiles/topk.dir/gen/distribution.cc.o" "gcc" "src/CMakeFiles/topk.dir/gen/distribution.cc.o.d"
  "/root/repo/src/gen/generator.cc" "src/CMakeFiles/topk.dir/gen/generator.cc.o" "gcc" "src/CMakeFiles/topk.dir/gen/generator.cc.o.d"
  "/root/repo/src/gen/lineitem.cc" "src/CMakeFiles/topk.dir/gen/lineitem.cc.o" "gcc" "src/CMakeFiles/topk.dir/gen/lineitem.cc.o.d"
  "/root/repo/src/histogram/cutoff_filter.cc" "src/CMakeFiles/topk.dir/histogram/cutoff_filter.cc.o" "gcc" "src/CMakeFiles/topk.dir/histogram/cutoff_filter.cc.o.d"
  "/root/repo/src/histogram/sizing_policy.cc" "src/CMakeFiles/topk.dir/histogram/sizing_policy.cc.o" "gcc" "src/CMakeFiles/topk.dir/histogram/sizing_policy.cc.o.d"
  "/root/repo/src/io/block_io.cc" "src/CMakeFiles/topk.dir/io/block_io.cc.o" "gcc" "src/CMakeFiles/topk.dir/io/block_io.cc.o.d"
  "/root/repo/src/io/io_stats.cc" "src/CMakeFiles/topk.dir/io/io_stats.cc.o" "gcc" "src/CMakeFiles/topk.dir/io/io_stats.cc.o.d"
  "/root/repo/src/io/manifest.cc" "src/CMakeFiles/topk.dir/io/manifest.cc.o" "gcc" "src/CMakeFiles/topk.dir/io/manifest.cc.o.d"
  "/root/repo/src/io/run_file.cc" "src/CMakeFiles/topk.dir/io/run_file.cc.o" "gcc" "src/CMakeFiles/topk.dir/io/run_file.cc.o.d"
  "/root/repo/src/io/spill_manager.cc" "src/CMakeFiles/topk.dir/io/spill_manager.cc.o" "gcc" "src/CMakeFiles/topk.dir/io/spill_manager.cc.o.d"
  "/root/repo/src/io/storage_env.cc" "src/CMakeFiles/topk.dir/io/storage_env.cc.o" "gcc" "src/CMakeFiles/topk.dir/io/storage_env.cc.o.d"
  "/root/repo/src/model/analytic_model.cc" "src/CMakeFiles/topk.dir/model/analytic_model.cc.o" "gcc" "src/CMakeFiles/topk.dir/model/analytic_model.cc.o.d"
  "/root/repo/src/row/row.cc" "src/CMakeFiles/topk.dir/row/row.cc.o" "gcc" "src/CMakeFiles/topk.dir/row/row.cc.o.d"
  "/root/repo/src/row/serialization.cc" "src/CMakeFiles/topk.dir/row/serialization.cc.o" "gcc" "src/CMakeFiles/topk.dir/row/serialization.cc.o.d"
  "/root/repo/src/sort/external_sorter.cc" "src/CMakeFiles/topk.dir/sort/external_sorter.cc.o" "gcc" "src/CMakeFiles/topk.dir/sort/external_sorter.cc.o.d"
  "/root/repo/src/sort/loser_tree.cc" "src/CMakeFiles/topk.dir/sort/loser_tree.cc.o" "gcc" "src/CMakeFiles/topk.dir/sort/loser_tree.cc.o.d"
  "/root/repo/src/sort/merge_planner.cc" "src/CMakeFiles/topk.dir/sort/merge_planner.cc.o" "gcc" "src/CMakeFiles/topk.dir/sort/merge_planner.cc.o.d"
  "/root/repo/src/sort/merger.cc" "src/CMakeFiles/topk.dir/sort/merger.cc.o" "gcc" "src/CMakeFiles/topk.dir/sort/merger.cc.o.d"
  "/root/repo/src/sort/quicksort_run_generator.cc" "src/CMakeFiles/topk.dir/sort/quicksort_run_generator.cc.o" "gcc" "src/CMakeFiles/topk.dir/sort/quicksort_run_generator.cc.o.d"
  "/root/repo/src/sort/replacement_selection.cc" "src/CMakeFiles/topk.dir/sort/replacement_selection.cc.o" "gcc" "src/CMakeFiles/topk.dir/sort/replacement_selection.cc.o.d"
  "/root/repo/src/topk/heap_topk.cc" "src/CMakeFiles/topk.dir/topk/heap_topk.cc.o" "gcc" "src/CMakeFiles/topk.dir/topk/heap_topk.cc.o.d"
  "/root/repo/src/topk/histogram_topk.cc" "src/CMakeFiles/topk.dir/topk/histogram_topk.cc.o" "gcc" "src/CMakeFiles/topk.dir/topk/histogram_topk.cc.o.d"
  "/root/repo/src/topk/operator_factory.cc" "src/CMakeFiles/topk.dir/topk/operator_factory.cc.o" "gcc" "src/CMakeFiles/topk.dir/topk/operator_factory.cc.o.d"
  "/root/repo/src/topk/optimized_external_topk.cc" "src/CMakeFiles/topk.dir/topk/optimized_external_topk.cc.o" "gcc" "src/CMakeFiles/topk.dir/topk/optimized_external_topk.cc.o.d"
  "/root/repo/src/topk/stats_reporter.cc" "src/CMakeFiles/topk.dir/topk/stats_reporter.cc.o" "gcc" "src/CMakeFiles/topk.dir/topk/stats_reporter.cc.o.d"
  "/root/repo/src/topk/topk_operator.cc" "src/CMakeFiles/topk.dir/topk/topk_operator.cc.o" "gcc" "src/CMakeFiles/topk.dir/topk/topk_operator.cc.o.d"
  "/root/repo/src/topk/traditional_external_topk.cc" "src/CMakeFiles/topk.dir/topk/traditional_external_topk.cc.o" "gcc" "src/CMakeFiles/topk.dir/topk/traditional_external_topk.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
