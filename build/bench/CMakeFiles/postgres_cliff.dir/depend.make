# Empty dependencies file for postgres_cliff.
# This may be replaced when dependencies are built.
