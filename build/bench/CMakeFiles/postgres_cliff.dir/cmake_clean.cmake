file(REMOVE_RECURSE
  "CMakeFiles/postgres_cliff.dir/postgres_cliff.cc.o"
  "CMakeFiles/postgres_cliff.dir/postgres_cliff.cc.o.d"
  "postgres_cliff"
  "postgres_cliff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/postgres_cliff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
