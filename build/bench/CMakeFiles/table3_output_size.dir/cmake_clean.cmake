file(REMOVE_RECURSE
  "CMakeFiles/table3_output_size.dir/table3_output_size.cc.o"
  "CMakeFiles/table3_output_size.dir/table3_output_size.cc.o.d"
  "table3_output_size"
  "table3_output_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_output_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
