# Empty dependencies file for table3_output_size.
# This may be replaced when dependencies are built.
