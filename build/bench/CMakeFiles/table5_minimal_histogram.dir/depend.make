# Empty dependencies file for table5_minimal_histogram.
# This may be replaced when dependencies are built.
