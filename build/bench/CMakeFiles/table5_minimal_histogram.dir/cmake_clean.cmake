file(REMOVE_RECURSE
  "CMakeFiles/table5_minimal_histogram.dir/table5_minimal_histogram.cc.o"
  "CMakeFiles/table5_minimal_histogram.dir/table5_minimal_histogram.cc.o.d"
  "table5_minimal_histogram"
  "table5_minimal_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_minimal_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
