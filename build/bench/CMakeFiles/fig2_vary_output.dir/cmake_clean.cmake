file(REMOVE_RECURSE
  "CMakeFiles/fig2_vary_output.dir/fig2_vary_output.cc.o"
  "CMakeFiles/fig2_vary_output.dir/fig2_vary_output.cc.o.d"
  "fig2_vary_output"
  "fig2_vary_output.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_vary_output.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
