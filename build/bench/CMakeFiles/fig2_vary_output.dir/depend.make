# Empty dependencies file for fig2_vary_output.
# This may be replaced when dependencies are built.
