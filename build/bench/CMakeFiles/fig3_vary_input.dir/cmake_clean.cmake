file(REMOVE_RECURSE
  "CMakeFiles/fig3_vary_input.dir/fig3_vary_input.cc.o"
  "CMakeFiles/fig3_vary_input.dir/fig3_vary_input.cc.o.d"
  "fig3_vary_input"
  "fig3_vary_input.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_vary_input.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
