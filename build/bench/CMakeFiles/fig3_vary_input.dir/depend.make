# Empty dependencies file for fig3_vary_input.
# This may be replaced when dependencies are built.
