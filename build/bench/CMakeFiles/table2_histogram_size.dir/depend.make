# Empty dependencies file for table2_histogram_size.
# This may be replaced when dependencies are built.
