# Empty dependencies file for overhead_adversarial.
# This may be replaced when dependencies are built.
