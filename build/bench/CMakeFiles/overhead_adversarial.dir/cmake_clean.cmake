file(REMOVE_RECURSE
  "CMakeFiles/overhead_adversarial.dir/overhead_adversarial.cc.o"
  "CMakeFiles/overhead_adversarial.dir/overhead_adversarial.cc.o.d"
  "overhead_adversarial"
  "overhead_adversarial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhead_adversarial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
