# Empty dependencies file for disaggregated_storage.
# This may be replaced when dependencies are built.
