file(REMOVE_RECURSE
  "CMakeFiles/disaggregated_storage.dir/disaggregated_storage.cc.o"
  "CMakeFiles/disaggregated_storage.dir/disaggregated_storage.cc.o.d"
  "disaggregated_storage"
  "disaggregated_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disaggregated_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
