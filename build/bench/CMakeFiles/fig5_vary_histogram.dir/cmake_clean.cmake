file(REMOVE_RECURSE
  "CMakeFiles/fig5_vary_histogram.dir/fig5_vary_histogram.cc.o"
  "CMakeFiles/fig5_vary_histogram.dir/fig5_vary_histogram.cc.o.d"
  "fig5_vary_histogram"
  "fig5_vary_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_vary_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
