# Empty dependencies file for fig5_vary_histogram.
# This may be replaced when dependencies are built.
