# Empty dependencies file for fig4_histogram_lines.
# This may be replaced when dependencies are built.
