file(REMOVE_RECURSE
  "CMakeFiles/fig4_histogram_lines.dir/fig4_histogram_lines.cc.o"
  "CMakeFiles/fig4_histogram_lines.dir/fig4_histogram_lines.cc.o.d"
  "fig4_histogram_lines"
  "fig4_histogram_lines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_histogram_lines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
