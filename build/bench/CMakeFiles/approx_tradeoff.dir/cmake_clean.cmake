file(REMOVE_RECURSE
  "CMakeFiles/approx_tradeoff.dir/approx_tradeoff.cc.o"
  "CMakeFiles/approx_tradeoff.dir/approx_tradeoff.cc.o.d"
  "approx_tradeoff"
  "approx_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approx_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
