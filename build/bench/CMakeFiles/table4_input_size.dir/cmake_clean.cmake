file(REMOVE_RECURSE
  "CMakeFiles/table4_input_size.dir/table4_input_size.cc.o"
  "CMakeFiles/table4_input_size.dir/table4_input_size.cc.o.d"
  "table4_input_size"
  "table4_input_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_input_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
