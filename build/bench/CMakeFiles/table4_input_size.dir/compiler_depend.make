# Empty compiler generated dependencies file for table4_input_size.
# This may be replaced when dependencies are built.
