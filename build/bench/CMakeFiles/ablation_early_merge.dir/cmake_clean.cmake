file(REMOVE_RECURSE
  "CMakeFiles/ablation_early_merge.dir/ablation_early_merge.cc.o"
  "CMakeFiles/ablation_early_merge.dir/ablation_early_merge.cc.o.d"
  "ablation_early_merge"
  "ablation_early_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_early_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
