# Empty compiler generated dependencies file for ablation_early_merge.
# This may be replaced when dependencies are built.
