# Empty compiler generated dependencies file for ablation_offset_skip.
# This may be replaced when dependencies are built.
