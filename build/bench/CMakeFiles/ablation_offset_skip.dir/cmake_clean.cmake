file(REMOVE_RECURSE
  "CMakeFiles/ablation_offset_skip.dir/ablation_offset_skip.cc.o"
  "CMakeFiles/ablation_offset_skip.dir/ablation_offset_skip.cc.o.d"
  "ablation_offset_skip"
  "ablation_offset_skip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_offset_skip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
