/// Run-file inspector: dumps the header, row statistics, key range, sort
/// validity and (optionally) rows of a .tkr run file. The debugging tool
/// you want when a spill directory is left behind.
///
///   run_inspect <path> [--rows N] [--descending]

#include <algorithm>
#include <cstdio>
#include <limits>

#include "common/flags.h"
#include "io/run_file.h"
#include "io/storage_env.h"
#include "topk/stats_reporter.h"

int main(int argc, char** argv) {
  using namespace topk;

  auto flags_result = Flags::Parse(argc, argv);
  if (!flags_result.ok()) {
    std::fprintf(stderr, "%s\n", flags_result.status().ToString().c_str());
    return 1;
  }
  const Flags& flags = *flags_result;
  if (flags.positional().size() != 1) {
    std::fprintf(stderr, "usage: run_inspect <run-file> [--rows N] "
                         "[--descending]\n");
    return 1;
  }
  int64_t show_rows = 0;
  bool descending = false;
  {
    auto rows_flag = flags.GetInt("rows", 0);
    auto desc_flag = flags.GetBool("descending", false);
    if (!rows_flag.ok() || !desc_flag.ok()) {
      std::fprintf(stderr, "bad flags\n");
      return 1;
    }
    show_rows = *rows_flag;
    descending = *desc_flag;
  }

  StorageEnv env;
  const std::string path = flags.positional()[0];
  auto reader = RunReader::Open(&env, path);
  if (!reader.ok()) {
    std::fprintf(stderr, "%s\n", reader.status().ToString().c_str());
    return 1;
  }

  RowComparator cmp(descending ? SortDirection::kDescending
                               : SortDirection::kAscending);
  Row row, prev;
  uint64_t rows = 0, payload_bytes = 0, order_violations = 0;
  size_t min_payload = std::numeric_limits<size_t>::max(), max_payload = 0;
  double first_key = 0, last_key = 0;
  for (;;) {
    bool eof = false;
    Status status = (*reader)->Next(&row, &eof);
    if (!status.ok()) {
      std::fprintf(stderr, "read error after %llu rows: %s\n",
                   static_cast<unsigned long long>(rows),
                   status.ToString().c_str());
      return 1;
    }
    if (eof) break;
    if (rows == 0) {
      first_key = row.key;
    } else if (cmp.Less(row, prev)) {
      ++order_violations;
    }
    last_key = row.key;
    payload_bytes += row.payload.size();
    min_payload = std::min(min_payload, row.payload.size());
    max_payload = std::max(max_payload, row.payload.size());
    if (rows < static_cast<uint64_t>(show_rows)) {
      std::printf("row %-8llu key=%-14.9g id=%-10llu payload=%zuB\n",
                  static_cast<unsigned long long>(rows), row.key,
                  static_cast<unsigned long long>(row.id),
                  row.payload.size());
    }
    prev = row;
    ++rows;
  }

  std::printf("\n%s\n", path.c_str());
  std::printf("  rows               %s\n", FormatCount(rows).c_str());
  if (rows > 0) {
    std::printf("  key range          %.9g .. %.9g\n", first_key, last_key);
    std::printf("  payload bytes      %s total, %zu..%zu per row\n",
                FormatCount(payload_bytes).c_str(), min_payload,
                max_payload);
  }
  std::printf("  sort order (%s)   %s\n", descending ? "desc" : "asc ",
              order_violations == 0
                  ? "OK"
                  : (std::to_string(order_violations) + " violations").c_str());
  return order_violations == 0 ? 0 : 2;
}
