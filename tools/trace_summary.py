#!/usr/bin/env python3
"""Per-phase wall-time summary of a Chrome trace produced by this repo.

Usage:
    tools/trace_summary.py TRACE_JSON [--by-thread]

Reads the trace-event file written by `topk_cli --trace-out=FILE` or
`TOPK_TRACE_OUT=FILE build/bench/...` and prints, per span name, the call
count, total duration, and *self* time (total minus time spent in child
spans on the same thread — so `rungen.sort_and_spill` does not double-count
its nested `rungen.quicksort`). Instant events are listed with counts only.
"""

import argparse
import json
import sys
from collections import defaultdict


def salvage_events(text):
    """Recovers complete event objects from a truncated trace file.

    A process that dies mid-write leaves `{"traceEvents": [{...}, {...}, {"na`
    — everything before the cut is still valid JSON objects. Decode them one
    by one until the first undecodable tail and analyse what survived.
    """
    start = text.find("[")
    if start < 0:
        return []
    decoder = json.JSONDecoder()
    events = []
    pos = start + 1
    while True:
        # Skip whitespace and the comma between array elements.
        while pos < len(text) and text[pos] in " \t\r\n,":
            pos += 1
        if pos >= len(text) or text[pos] != "{":
            break
        try:
            obj, pos = decoder.raw_decode(text, pos)
        except json.JSONDecodeError:
            break
        if isinstance(obj, dict):
            events.append(obj)
    return events


def load_events(path):
    with open(path, "r", encoding="utf-8") as f:
        text = f.read()
    try:
        doc = json.loads(text)
        events = doc.get("traceEvents", doc if isinstance(doc, list) else [])
    except json.JSONDecodeError:
        events = salvage_events(text)
        if not events:
            raise
        print(f"warning: {path} is truncated or malformed JSON; "
              f"salvaged {len(events)} complete events", file=sys.stderr)
    spans = [e for e in events
             if e.get("ph") == "X" and isinstance(e.get("ts"), (int, float))]
    instants = [e for e in events if e.get("ph") == "i"]
    return spans, instants


def self_times(spans):
    """Total and self duration per span name.

    Spans nest on a thread when one interval contains another; a child's
    duration is subtracted from its innermost enclosing parent.
    """
    total = defaultdict(float)
    self_time = defaultdict(float)
    count = defaultdict(int)
    by_tid = defaultdict(list)
    for e in spans:
        by_tid[(e.get("pid"), e.get("tid"))].append(e)
    for tid_spans in by_tid.values():
        # Sort by start ascending, then by end descending so parents come
        # before their children.
        tid_spans.sort(key=lambda e: (e["ts"], -(e["ts"] + e.get("dur", 0))))
        stack = []  # (end_ts, name)
        for e in tid_spans:
            start, dur = e["ts"], e.get("dur", 0.0)
            name = e.get("name", "?")
            while stack and stack[-1][0] <= start:
                stack.pop()
            total[name] += dur
            self_time[name] += dur
            count[name] += 1
            if stack:
                self_time[stack[-1][1]] -= dur
            stack.append((start + dur, name))
    return total, self_time, count


def fmt_us(us):
    if us >= 1e6:
        return f"{us / 1e6:10.3f}s "
    if us >= 1e3:
        return f"{us / 1e3:10.3f}ms"
    return f"{us:10.1f}us"


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="Chrome trace JSON file")
    parser.add_argument("--by-thread", action="store_true",
                        help="additionally break spans down per thread")
    args = parser.parse_args()

    try:
        spans, instants = load_events(args.trace)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read {args.trace}: {err}", file=sys.stderr)
        return 1
    if not spans and not instants:
        print("no trace events found")
        return 0

    total, self_time, count = self_times(spans)
    wall = 0.0
    if spans:
        wall = max(e["ts"] + e.get("dur", 0) for e in spans) - min(
            e["ts"] for e in spans)

    print(f"{'span':32} {'count':>7} {'total':>12} {'self':>12}  % of wall")
    for name in sorted(total, key=lambda n: -self_time[n]):
        share = 100.0 * total[name] / wall if wall > 0 else 0.0
        print(f"{name:32} {count[name]:7d} {fmt_us(total[name])} "
              f"{fmt_us(self_time[name])}  {share:5.1f}%")
    if wall > 0:
        print(f"{'(trace wall span)':32} {'':7} {fmt_us(wall)}")

    if args.by_thread:
        per_thread = defaultdict(lambda: defaultdict(float))
        for e in spans:
            per_thread[e.get("tid")][e.get("name", "?")] += e.get("dur", 0.0)
        for tid in sorted(per_thread):
            print(f"\nthread {tid}:")
            for name, dur in sorted(per_thread[tid].items(),
                                    key=lambda kv: -kv[1]):
                print(f"  {name:30} {fmt_us(dur)}")

    if instants:
        inst_count = defaultdict(int)
        for e in instants:
            inst_count[e.get("name", "?")] += 1
        print("\ninstant events:")
        for name, n in sorted(inst_count.items(), key=lambda kv: -kv[1]):
            print(f"  {name:30} {n:7d}")

    return 0


if __name__ == "__main__":
    sys.exit(main())
