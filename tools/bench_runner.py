#!/usr/bin/env python3
"""Continuous-benchmark runner: executes a curated bench subset and writes
one machine-comparable snapshot, `BENCH_<label>.json`.

Usage:
    tools/bench_runner.py --label=ci [--build-dir=build] [--scale=0.25]
                          [--benches=io_pipeline,micro_components,fig2_vary_output]
                          [--out=BENCH_ci.json]

Per bench it collects:
  - `io_pipeline`, `fig2_vary_output`: every measured execution's unified
    stats document (via TOPK_STATS_JSONL) reduced to cost metrics — wall
    seconds, rows spilled, bytes written/read, comparison counts. Documents
    are keyed `<bench>/<index>:<operator>` in execution order, which is
    deterministic for a fixed scale.
  - `micro_components`: Google-benchmark JSON (`--benchmark_out`), keyed by
    benchmark name with real/cpu nanoseconds.

The snapshot embeds an environment fingerprint (host, CPU, core count, git
revision, scale) so `bench_compare.py` can warn when two snapshots were not
taken on comparable hardware. Compare snapshots with:

    tools/bench_compare.py BENCH_seed.json BENCH_ci.json --threshold=0.10
"""

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile

DEFAULT_BENCHES = "io_pipeline,micro_components,fig2_vary_output"

# Cost metrics lifted from each stats JSONL document. All are
# "higher is worse": times, I/O traffic, and work counters.
OPERATOR_STAT_KEYS = (
    "rows_spilled",
    "runs_created",
    "bytes_spilled",
    "merge_rows_written",
    "merge_rows_read",
    "consume_nanos",
    "finish_nanos",
)
IO_STAT_KEYS = ("bytes_written", "bytes_read", "write_calls", "read_calls")
COUNTER_KEYS = ("sort.compare.count", "io.prefetch.blocks")


def cpu_model():
    try:
        with open("/proc/cpuinfo", "r", encoding="utf-8") as f:
            for line in f:
                if line.startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or "unknown"


def git_revision():
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            check=True, cwd=os.path.dirname(os.path.abspath(__file__)))
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def fingerprint(scale):
    return {
        "host": platform.node(),
        "os": platform.platform(),
        "cpu": cpu_model(),
        "cores": os.cpu_count(),
        "git_revision": git_revision(),
        "bench_scale": scale,
    }


def run_stats_bench(binary, bench_name, scale, metrics):
    """Runs a bench_util-based bench, reduces its stats JSONL to metrics."""
    with tempfile.NamedTemporaryFile(suffix=".jsonl", delete=False) as tmp:
        jsonl_path = tmp.name
    try:
        env = dict(os.environ)
        env["TOPK_BENCH_SCALE"] = str(scale)
        env["TOPK_STATS_JSONL"] = jsonl_path
        proc = subprocess.run([binary], env=env, capture_output=True,
                              text=True)
        if proc.returncode != 0:
            print(f"error: {bench_name} exited {proc.returncode}:\n"
                  f"{proc.stderr}", file=sys.stderr)
            return False
        with open(jsonl_path, "r", encoding="utf-8") as f:
            docs = [json.loads(line) for line in f if line.strip()]
    finally:
        os.unlink(jsonl_path)
    if not docs:
        print(f"error: {bench_name} produced no stats documents",
              file=sys.stderr)
        return False
    for index, doc in enumerate(docs):
        key_base = f"{bench_name}/{index}:{doc.get('operator', '?')}"
        stats = doc.get("operator_stats", {})
        for stat in OPERATOR_STAT_KEYS:
            if stat in stats:
                metrics[f"{key_base}/{stat}"] = stats[stat]
        io = doc.get("io") or {}
        for stat in IO_STAT_KEYS:
            if stat in io:
                metrics[f"{key_base}/io.{stat}"] = io[stat]
        counters = (doc.get("metrics") or {}).get("counters", {})
        for counter in COUNTER_KEYS:
            if counter in counters:
                metrics[f"{key_base}/{counter}"] = counters[counter]
    return True


def run_google_bench(binary, bench_name, metrics):
    """Runs a Google-benchmark binary, keeps real/cpu time per case."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        out_path = tmp.name
    try:
        proc = subprocess.run(
            [binary, f"--benchmark_out={out_path}",
             "--benchmark_out_format=json",
             "--benchmark_min_time=0.05"],
            capture_output=True, text=True)
        if proc.returncode != 0:
            print(f"error: {bench_name} exited {proc.returncode}:\n"
                  f"{proc.stderr}", file=sys.stderr)
            return False
        with open(out_path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    finally:
        os.unlink(out_path)
    for case in doc.get("benchmarks", []):
        if case.get("run_type") == "aggregate":
            continue
        name = case.get("name", "?")
        metrics[f"{bench_name}/{name}/real_nanos"] = case.get("real_time", 0)
        metrics[f"{bench_name}/{name}/cpu_nanos"] = case.get("cpu_time", 0)
    return True


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", required=True,
                        help="snapshot label, e.g. 'seed' or 'ci'")
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--scale", type=float, default=0.25,
                        help="TOPK_BENCH_SCALE for stats benches")
    parser.add_argument("--benches", default=DEFAULT_BENCHES,
                        help="comma-separated bench binary names")
    parser.add_argument("--out", default=None,
                        help="output path (default BENCH_<label>.json)")
    args = parser.parse_args()

    metrics = {}
    ok = True
    for bench_name in [b for b in args.benches.split(",") if b]:
        binary = os.path.join(args.build_dir, "bench", bench_name)
        if not os.path.exists(binary):
            print(f"error: bench binary not found: {binary} "
                  f"(build with: cmake --build {args.build_dir})",
                  file=sys.stderr)
            ok = False
            continue
        print(f"running {bench_name} ...", flush=True)
        if bench_name == "micro_components":
            ok = run_google_bench(binary, bench_name, metrics) and ok
        else:
            ok = run_stats_bench(binary, bench_name, args.scale,
                                 metrics) and ok
    if not metrics:
        print("error: no metrics collected", file=sys.stderr)
        return 1

    snapshot = {
        "bench_schema_version": 1,
        "label": args.label,
        "environment": fingerprint(args.scale),
        "metrics": metrics,
    }
    out_path = args.out or f"BENCH_{args.label}.json"
    with open(out_path, "w", encoding="utf-8") as f:
        json.dump(snapshot, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"{len(metrics)} metrics written to {out_path}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
