#!/usr/bin/env python3
"""Compares two bench snapshots produced by `bench_runner.py`.

Usage:
    tools/bench_compare.py BASELINE.json CANDIDATE.json
                           [--threshold=0.10] [--min-nanos=1000000]
                           [--warn-only]

Every metric in a snapshot is a cost (wall/cpu nanoseconds, bytes, work
counters), so "higher than baseline" is a regression. A metric regresses
when it exceeds the baseline by more than --threshold (relative). Timing
metrics below --min-nanos in the baseline are skipped — sub-millisecond
measurements are dominated by noise at any threshold.

Exit status: 0 when no metric regresses (or --warn-only), 1 otherwise.
Improvements and metrics present in only one snapshot are reported but
never fail the comparison.
"""

import argparse
import json
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def is_timing(key):
    return key.endswith("_nanos") or key.endswith("/real_nanos") or \
        key.endswith("/cpu_nanos")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative regression threshold (default 0.10)")
    parser.add_argument("--min-nanos", type=float, default=1e6,
                        help="ignore timing metrics whose baseline is below "
                             "this many nanoseconds (default 1e6)")
    parser.add_argument("--warn-only", action="store_true",
                        help="report regressions but always exit 0")
    args = parser.parse_args()

    try:
        baseline = load(args.baseline)
        candidate = load(args.candidate)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2

    base_env = baseline.get("environment", {})
    cand_env = candidate.get("environment", {})
    for field in ("cpu", "cores", "bench_scale"):
        if base_env.get(field) != cand_env.get(field):
            print(f"warning: environment mismatch on '{field}': "
                  f"{base_env.get(field)!r} vs {cand_env.get(field)!r} — "
                  f"timing comparisons may not be meaningful")

    base_metrics = baseline.get("metrics", {})
    cand_metrics = candidate.get("metrics", {})
    regressions = []
    improvements = []
    skipped_noise = 0
    for key in sorted(base_metrics):
        if key not in cand_metrics:
            print(f"note: metric only in baseline: {key}")
            continue
        base_val = base_metrics[key]
        cand_val = cand_metrics[key]
        if not isinstance(base_val, (int, float)) or \
                not isinstance(cand_val, (int, float)):
            continue
        if is_timing(key) and base_val < args.min_nanos:
            skipped_noise += 1
            continue
        if base_val <= 0:
            if cand_val > 0 and not is_timing(key):
                regressions.append((key, base_val, cand_val, float("inf")))
            continue
        change = (cand_val - base_val) / base_val
        if change > args.threshold:
            regressions.append((key, base_val, cand_val, change))
        elif change < -args.threshold:
            improvements.append((key, base_val, cand_val, change))
    for key in sorted(set(cand_metrics) - set(base_metrics)):
        print(f"note: metric only in candidate: {key}")

    if skipped_noise:
        print(f"({skipped_noise} sub-threshold timing metrics skipped as "
              f"noise; lower --min-nanos to include them)")
    for key, base_val, cand_val, change in improvements:
        print(f"improved   {key}: {base_val:g} -> {cand_val:g} "
              f"({change:+.1%})")
    for key, base_val, cand_val, change in regressions:
        pct = "new" if change == float("inf") else f"{change:+.1%}"
        print(f"REGRESSION {key}: {base_val:g} -> {cand_val:g} ({pct})")

    compared = len(set(base_metrics) & set(cand_metrics))
    print(f"\n{compared} metrics compared, {len(regressions)} regressions, "
          f"{len(improvements)} improvements "
          f"(threshold {args.threshold:.0%})")
    if regressions and not args.warn_only:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
