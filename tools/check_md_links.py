#!/usr/bin/env python3
"""Check that local markdown links resolve to real files.

Walks the given markdown files (or the repo's documentation set when run
with no arguments), extracts inline links and images, and verifies that
every non-external target exists relative to the file that references it.
Anchors (#...) are stripped before the existence check; http(s)/mailto
links are skipped. Exits non-zero listing every broken link.

Usage:
    tools/check_md_links.py [FILE.md ...]
"""

import re
import sys
from pathlib import Path

# Inline links/images: [text](target) / ![alt](target). Reference-style
# definitions: "[label]: target". Code spans are stripped first so that
# `foo[i](bar)` in inline code does not register as a link.
INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REF_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
CODE_SPAN = re.compile(r"`[^`]*`")
FENCED_BLOCK = re.compile(r"^(```|~~~).*?^\1\s*$", re.MULTILINE | re.DOTALL)
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")

DEFAULT_SET = ["README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md"]


def targets_in(text):
    text = FENCED_BLOCK.sub("", text)
    text = CODE_SPAN.sub("", text)
    for pattern in (INLINE_LINK, REF_DEF):
        for match in pattern.finditer(text):
            yield match.group(1)


def check_file(md_path):
    broken = []
    text = md_path.read_text(encoding="utf-8")
    for target in targets_in(text):
        if target.startswith(EXTERNAL) or target.startswith("#"):
            continue
        path_part = target.split("#", 1)[0]
        if not path_part:
            continue
        resolved = (md_path.parent / path_part).resolve()
        if not resolved.exists():
            broken.append((target, resolved))
    return broken


def main(argv):
    if argv:
        files = [Path(a) for a in argv]
    else:
        root = Path(__file__).resolve().parent.parent
        files = [root / name for name in DEFAULT_SET]
        files += sorted((root / "docs").glob("*.md"))

    failures = 0
    for md in files:
        if not md.exists():
            print(f"MISSING FILE: {md}")
            failures += 1
            continue
        for target, resolved in check_file(md):
            print(f"{md}: broken link '{target}' -> {resolved}")
            failures += 1
    if failures:
        print(f"\n{failures} broken link(s)")
        return 1
    print(f"checked {len(files)} file(s): all local links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
