#!/usr/bin/env bash
# Builds and runs the test suite under a sanitizer.
#
#   tools/run_sanitized.sh [thread|address|address-undefined] [extra ctest args...]
#
# Default is thread (TSan) — the configuration that validates the
# background I/O pipeline (DoubleBufferedWriter / PrefetchingBlockReader)
# and the parallel_topk worker loop.
set -euo pipefail

SANITIZER="${1:-thread}"
shift || true
case "$SANITIZER" in
  thread|address|address-undefined) ;;
  *) echo "usage: $0 [thread|address|address-undefined] [ctest args...]" >&2
     exit 2 ;;
esac

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="$ROOT/build-$SANITIZER"

cmake -B "$BUILD_DIR" -S "$ROOT" -DTOPK_SANITIZE="$SANITIZER" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure "$@"
