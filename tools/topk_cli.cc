/// Command-line driver: run any of the library's top-k algorithms on a
/// synthetic workload and report the full execution statistics. Handy for
/// exploring the paper's parameter space without writing code.
///
///   topk_cli --algorithm=histogram --n=2e6 --k=5e4 --memory-mb=2 \
///            --dist=fal --shape=1.25 --buckets=50 --payload=56
///
/// Supported flags (defaults in parentheses):
///   --algorithm   heap | traditional | optimized | histogram (histogram)
///   --n           input rows (1e6)
///   --k           output rows (1e4)
///   --offset      OFFSET clause (0)
///   --memory-mb   operator memory budget in MiB (4)
///   --dist        uniform | fal | lognormal | ascending | descending
///   --shape       fal shape parameter z (1.25)
///   --payload     payload bytes per row (56)
///   --buckets     histogram buckets per run (50)
///   --direction   asc | desc (asc)
///   --fan-in      merge fan-in (64)
///   --ovc         offset-value coding on the merge loser trees; output is
///                 byte-identical either way, the switch exists for A/B
///                 comparisons (true, or the TOPK_OVC env default)
///   --early-merge optimized baseline: enable early merge (true)
///   --io-threads  background I/O pipeline threads, 0 = synchronous (2)
///   --prefetch    read ahead of the merge cursor (true)
///   --prefetch-budget-mb  merge-wide adaptive prefetch memory budget in
///                 MiB; 0 pins the fixed one-block lookahead (8)
///   --io-latency-us  injected storage latency per I/O call, emulating
///                 disaggregated storage (0)
///   --fault-profile  inject storage faults, e.g.
///                 "transient=0.01,spike=0.005,spike-us=2000,torn=0.001,
///                 bitflip=0.0001,seed=7" (off)
///   --io-retry-attempts  max attempts per storage call for transient
///                 faults, 1 = no retries (4)
///   --io-deadline-ms  wall-clock deadline per storage operation across all
///                 of its retries, and per merge-read block wait; 0 =
///                 unbounded (0)
///   --io-retry-budget  shared retry-token budget across all pool threads;
///                 an exhausted budget fails retries fast, successes refill
///                 it; 0 = unbounded (0)
///   --hedge       hedge straggling prefetch reads: re-request an overdue
///                 block on a second handle, first completion wins (false)
///   --hedge-multiplier  issue the hedge when the wait exceeds this multiple
///                 of the reader's round-trip EWMA (3.0)
///   --storage-breaker  trip a circuit breaker per storage op class under
///                 sustained failure and fail fast until probes succeed
///                 (false)
///   --spill-quota-mb  cap on spill bytes on disk at once; the histogram
///                 operator consolidates runs before giving up; 0 =
///                 unlimited (0)
///   --mem-budget-mb  process-wide memory-arbiter budget in MiB; consumers
///                 degrade (smaller prefetch windows, early spills, run
///                 consolidation, synchronous writes) under soft pressure
///                 and new grants fail with RESOURCE_EXHAUSTED (exit 3)
///                 under hard pressure; 0 = accounting only (0)
///   --mem-fault-profile  inject allocation failures at the memory
///                 arbiter, e.g. "deny=0.01,seed=7,mode=status" or
///                 "nth=25,mode=throw" (also available as the
///                 TOPK_MEM_FAULT environment variable) (off)
///   --manifest    keep a spill manifest of this name checkpointed inside
///                 --spill-dir, enabling crash recovery (off)
///   --suspend-before-merge  consume the input, persist the runs + manifest,
///                 and exit without merging — the crash/suspend half of a
///                 resume exercise (false)
///   --resume-from=NAME  resume from manifest NAME inside --spill-dir. A
///                 merge-phase manifest resumes straight into the merge; an
///                 optimized-external manifest with a mid-input checkpoint
///                 makes the CLI regenerate the input and replay it from the
///                 checkpointed row before finishing (off)
///   --cancel-after-ms  trip the query's cancellation token from a control
///                 thread after this many milliseconds; the query unwinds
///                 with CANCELLED (0 = never)
///   --query-deadline-ms  arm a query-wide deadline; past it the query
///                 unwinds with DEADLINE_EXCEEDED (0 = none)
///   --on-cancel   release | keep — what a cancelled query does with its
///                 spill state: delete it, or checkpoint the manifest and
///                 keep the directory for --resume-from (release)
///   --checkpoint-every-rows  optimized baseline: make a durable input
///                 checkpoint every N consumed rows so mid-input crashes
///                 resume with replay from the last checkpoint; requires
///                 --manifest (0 = off)
///   --crash-at=POINT  arm a deterministic crash point; the process exits
///                 with code 42 when execution reaches it (also available
///                 as the TOPK_CRASH_AT environment variable)
///   --seed        RNG seed (42)
///   --spill-dir   run directory (under $TMPDIR)
///   --verify      cross-check against the in-memory reference (false)
///   --input       read sort keys from a file (one per line; overrides
///                 --n/--dist; --payload bytes are attached per row)
///   --trace-out   write a Chrome trace-event JSON of the execution to FILE
///                 (open in Perfetto / chrome://tracing)
///   --metrics-json  write the unified stats document (operator stats +
///                 storage traffic + scoped metrics + profile) to FILE
///   --profile     print an EXPLAIN ANALYZE-style profile report after the
///                 query: phase tree with wall/self/I/O-wait time, bytes,
///                 cutoff-filter evolution, I/O event highlights (false)
///   --progress    print a progress line every ~5% of the input (false)

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <thread>

#include <fstream>

#include "common/query_control.h"

#include "common/flags.h"
#include "common/resource_arbiter.h"
#include "gen/generator.h"
#include "obs/metrics.h"
#include "obs/obs_context.h"
#include "obs/profile.h"
#include "obs/stats_export.h"
#include "obs/trace.h"
#include "topk/operator_factory.h"
#include "topk/stats_reporter.h"

namespace {

int Fail(const topk::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  // Memory exhaustion gets a distinct exit status so harnesses can tell a
  // clean arbiter denial from any other failure (and from a crash).
  if (status.code() == topk::StatusCode::kResourceExhausted ||
      status.code() == topk::StatusCode::kOutOfMemory) {
    return 3;
  }
  return 1;
}

/// Loads one sort key per line from `path` (trace-driven execution).
topk::Result<std::vector<double>> LoadKeys(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    return topk::Status::IoError("cannot open --input file " + path);
  }
  std::vector<double> keys;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    char* end = nullptr;
    const double key = std::strtod(line.c_str(), &end);
    if (end == line.c_str()) {
      return topk::Status::InvalidArgument(
          "bad key at " + path + ":" + std::to_string(line_number));
    }
    keys.push_back(key);
  }
  return keys;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace topk;

  auto flags_result = Flags::Parse(argc, argv);
  if (!flags_result.ok()) return Fail(flags_result.status());
  const Flags& flags = *flags_result;

  TopKAlgorithm algorithm;
  const std::string algorithm_name =
      flags.GetString("algorithm", "histogram");
  if (!ParseTopKAlgorithm(algorithm_name, &algorithm)) {
    return Fail(Status::InvalidArgument("unknown --algorithm '" +
                                        algorithm_name + "'"));
  }

  DatasetSpec spec;
  int64_t n = 0, k = 0, offset = 0, payload = 0, buckets = 0, fan_in = 0,
          seed = 0;
  int64_t io_threads = 0, io_latency_us = 0, io_retry_attempts = 0;
  int64_t io_deadline_ms = 0, io_retry_budget = 0;
  int64_t cancel_after_ms = 0, query_deadline_ms = 0;
  int64_t checkpoint_every_rows = 0;
  double memory_mb = 0, shape = 0, prefetch_budget_mb = 8.0;
  double hedge_multiplier = 3.0, spill_quota_mb = 0, mem_budget_mb = 0;
  bool early_merge = true, verify = false, prefetch = true, progress = false;
  bool suspend_before_merge = false, hedge = false, storage_breaker = false;
  bool profile = false;
  bool use_ovc = DefaultOvcEnabled();
  {
    auto status = [&]() -> Status {
      TOPK_ASSIGN_OR_RETURN(n, flags.GetInt("n", 1000000));
      TOPK_ASSIGN_OR_RETURN(k, flags.GetInt("k", 10000));
      TOPK_ASSIGN_OR_RETURN(offset, flags.GetInt("offset", 0));
      TOPK_ASSIGN_OR_RETURN(payload, flags.GetInt("payload", 56));
      TOPK_ASSIGN_OR_RETURN(buckets, flags.GetInt("buckets", 50));
      TOPK_ASSIGN_OR_RETURN(fan_in, flags.GetInt("fan-in", 64));
      TOPK_ASSIGN_OR_RETURN(seed, flags.GetInt("seed", 42));
      TOPK_ASSIGN_OR_RETURN(memory_mb, flags.GetDouble("memory-mb", 4.0));
      TOPK_ASSIGN_OR_RETURN(shape, flags.GetDouble("shape", 1.25));
      TOPK_ASSIGN_OR_RETURN(early_merge,
                            flags.GetBool("early-merge", true));
      TOPK_ASSIGN_OR_RETURN(use_ovc, flags.GetBool("ovc", use_ovc));
      TOPK_ASSIGN_OR_RETURN(io_threads, flags.GetInt("io-threads", 2));
      if (io_threads < 0 || io_threads > 64) {
        return Status::InvalidArgument("--io-threads must be in [0, 64]");
      }
      TOPK_ASSIGN_OR_RETURN(io_latency_us,
                            flags.GetInt("io-latency-us", 0));
      if (io_latency_us < 0) {
        return Status::InvalidArgument("--io-latency-us must be >= 0");
      }
      TOPK_ASSIGN_OR_RETURN(prefetch, flags.GetBool("prefetch", true));
      TOPK_ASSIGN_OR_RETURN(prefetch_budget_mb,
                            flags.GetDouble("prefetch-budget-mb", 8.0));
      if (prefetch_budget_mb < 0 || prefetch_budget_mb > 4096) {
        return Status::InvalidArgument(
            "--prefetch-budget-mb must be in [0, 4096]");
      }
      TOPK_ASSIGN_OR_RETURN(io_retry_attempts,
                            flags.GetInt("io-retry-attempts", 4));
      if (io_retry_attempts < 1 || io_retry_attempts > 100) {
        return Status::InvalidArgument(
            "--io-retry-attempts must be in [1, 100]");
      }
      TOPK_ASSIGN_OR_RETURN(io_deadline_ms,
                            flags.GetInt("io-deadline-ms", 0));
      if (io_deadline_ms < 0) {
        return Status::InvalidArgument("--io-deadline-ms must be >= 0");
      }
      TOPK_ASSIGN_OR_RETURN(io_retry_budget,
                            flags.GetInt("io-retry-budget", 0));
      if (io_retry_budget < 0) {
        return Status::InvalidArgument("--io-retry-budget must be >= 0");
      }
      TOPK_ASSIGN_OR_RETURN(hedge, flags.GetBool("hedge", false));
      TOPK_ASSIGN_OR_RETURN(hedge_multiplier,
                            flags.GetDouble("hedge-multiplier", 3.0));
      if (hedge_multiplier < 1.0) {
        return Status::InvalidArgument("--hedge-multiplier must be >= 1");
      }
      TOPK_ASSIGN_OR_RETURN(storage_breaker,
                            flags.GetBool("storage-breaker", false));
      TOPK_ASSIGN_OR_RETURN(spill_quota_mb,
                            flags.GetDouble("spill-quota-mb", 0.0));
      if (spill_quota_mb < 0) {
        return Status::InvalidArgument("--spill-quota-mb must be >= 0");
      }
      TOPK_ASSIGN_OR_RETURN(mem_budget_mb,
                            flags.GetDouble("mem-budget-mb", 0.0));
      if (mem_budget_mb < 0) {
        return Status::InvalidArgument("--mem-budget-mb must be >= 0");
      }
      TOPK_ASSIGN_OR_RETURN(cancel_after_ms,
                            flags.GetInt("cancel-after-ms", 0));
      if (cancel_after_ms < 0) {
        return Status::InvalidArgument("--cancel-after-ms must be >= 0");
      }
      TOPK_ASSIGN_OR_RETURN(query_deadline_ms,
                            flags.GetInt("query-deadline-ms", 0));
      if (query_deadline_ms < 0) {
        return Status::InvalidArgument("--query-deadline-ms must be >= 0");
      }
      TOPK_ASSIGN_OR_RETURN(checkpoint_every_rows,
                            flags.GetInt("checkpoint-every-rows", 0));
      if (checkpoint_every_rows < 0) {
        return Status::InvalidArgument(
            "--checkpoint-every-rows must be >= 0");
      }
      TOPK_ASSIGN_OR_RETURN(verify, flags.GetBool("verify", false));
      TOPK_ASSIGN_OR_RETURN(profile, flags.GetBool("profile", false));
      TOPK_ASSIGN_OR_RETURN(progress, flags.GetBool("progress", false));
      TOPK_ASSIGN_OR_RETURN(suspend_before_merge,
                            flags.GetBool("suspend-before-merge", false));
      return Status::OK();
    }();
    if (!status.ok()) return Fail(status);
  }

  KeyDistribution dist;
  const std::string dist_name = flags.GetString("dist", "uniform");
  if (!ParseKeyDistribution(dist_name, &dist)) {
    return Fail(Status::InvalidArgument("unknown --dist '" + dist_name + "'"));
  }
  const std::string direction_name = flags.GetString("direction", "asc");
  const std::string input_path = flags.GetString("input", "");
  const std::string trace_out = flags.GetString("trace-out", "");
  const std::string metrics_json = flags.GetString("metrics-json", "");
  const std::string fault_profile_spec = flags.GetString("fault-profile", "");
  const std::string mem_fault_profile_spec =
      flags.GetString("mem-fault-profile", "");
  const std::string manifest_name = flags.GetString("manifest", "");
  const std::string resume_from = flags.GetString("resume-from", "");
  const std::string crash_at = flags.GetString("crash-at", "");
  const std::string on_cancel_name = flags.GetString("on-cancel", "release");
  const std::string spill_dir = flags.GetString(
      "spill-dir", (std::filesystem::temp_directory_path() /
                    ("topk_cli_" + std::to_string(::getpid())))
                       .string());
  if (const auto unread = flags.UnreadFlags(); !unread.empty()) {
    return Fail(Status::InvalidArgument("unknown flag --" + unread.front()));
  }

  std::vector<double> trace_keys;
  if (!input_path.empty()) {
    auto keys = LoadKeys(input_path);
    if (!keys.ok()) return Fail(keys.status());
    trace_keys = std::move(*keys);
    n = static_cast<int64_t>(trace_keys.size());
  }

  spec.WithRows(static_cast<uint64_t>(n))
      .WithDistribution(dist)
      .WithPayload(static_cast<size_t>(payload),
                   static_cast<size_t>(payload))
      .WithSeed(static_cast<uint64_t>(seed));
  spec.keys.fal_shape = shape;

  if (suspend_before_merge && manifest_name.empty()) {
    return Fail(Status::InvalidArgument(
        "--suspend-before-merge requires --manifest"));
  }
  if (!resume_from.empty() && suspend_before_merge) {
    return Fail(Status::InvalidArgument(
        "--resume-from and --suspend-before-merge are mutually exclusive"));
  }
  if (checkpoint_every_rows > 0 && manifest_name.empty() &&
      resume_from.empty()) {
    return Fail(Status::InvalidArgument(
        "--checkpoint-every-rows requires --manifest"));
  }
  if (on_cancel_name != "release" && on_cancel_name != "keep") {
    return Fail(Status::InvalidArgument("--on-cancel must be release|keep"));
  }
  if (!crash_at.empty()) {
    Status armed = ArmCrashPoint(crash_at);
    if (!armed.ok()) return Fail(armed);
  }

  StorageEnv::Options env_options;
  env_options.write_latency_nanos = io_latency_us * 1000;
  env_options.read_latency_nanos = io_latency_us * 1000;
  StorageEnv env(env_options);
  if (!fault_profile_spec.empty()) {
    auto profile = FaultProfile::Parse(fault_profile_spec);
    if (!profile.ok()) return Fail(profile.status());
    env.SetFaultProfile(*profile);
    std::printf("fault profile: %s\n", profile->ToString().c_str());
  }
  if (storage_breaker) {
    env.EnableStorageHealth(StorageHealth::Options());
  }
  if (mem_budget_mb > 0) {
    GlobalMemoryArbiter()->Reset(
        static_cast<size_t>(mem_budget_mb * 1024.0 * 1024.0));
    std::printf("memory budget: %.1f MiB (arbiter-enforced)\n",
                mem_budget_mb);
  }
  if (!mem_fault_profile_spec.empty()) {
    auto mem_profile = MemFaultProfile::Parse(mem_fault_profile_spec);
    if (!mem_profile.ok()) return Fail(mem_profile.status());
    GlobalMemoryArbiter()->SetFaultProfile(*mem_profile);
    std::printf("memory fault profile: %s\n",
                mem_profile->ToString().c_str());
  }
  TopKOptions options;
  options.k = static_cast<uint64_t>(k);
  options.offset = static_cast<uint64_t>(offset);
  options.direction = direction_name == "desc" ? SortDirection::kDescending
                                               : SortDirection::kAscending;
  options.memory_limit_bytes =
      static_cast<size_t>(memory_mb * 1024.0 * 1024.0);
  options.histogram_buckets_per_run = static_cast<uint64_t>(buckets);
  options.merge_fan_in = static_cast<size_t>(fan_in);
  options.enable_early_merge = early_merge;
  options.use_ovc = use_ovc;
  options.io_background_threads = static_cast<size_t>(io_threads);
  options.enable_io_prefetch = prefetch;
  options.prefetch_memory_budget =
      static_cast<size_t>(prefetch_budget_mb * 1024.0 * 1024.0);
  options.io_retry.max_attempts = static_cast<int>(io_retry_attempts);
  options.io_retry.deadline_nanos = io_deadline_ms * 1'000'000;
  if (io_retry_budget > 0) {
    GlobalRetryBudget()->Reset(static_cast<double>(io_retry_budget),
                               /*refill_per_success=*/0.1);
    options.io_retry.retry_budget = GlobalRetryBudget();
  }
  options.io_hedge_reads = hedge;
  options.io_hedge_latency_multiplier = hedge_multiplier;
  options.spill_quota_bytes =
      static_cast<uint64_t>(spill_quota_mb * 1024.0 * 1024.0);
  options.manifest_filename =
      resume_from.empty() ? manifest_name : resume_from;
  options.env = &env;
  options.spill_dir = spill_dir;
  options.checkpoint_input_every_rows =
      static_cast<uint64_t>(checkpoint_every_rows);
  options.on_cancel = on_cancel_name == "keep" ? OnCancelPolicy::kKeepForResume
                                               : OnCancelPolicy::kReleaseSpill;
  if (algorithm == TopKAlgorithm::kHeap) {
    options.allow_unbounded_memory = true;
  }

  // Query lifecycle control: one token shared by the query and (when
  // --cancel-after-ms asks for it) a controller thread that trips it.
  std::thread canceller;
  CancellationToken canceller_quit;
  struct CancellerJoin {
    CancellationToken* quit;
    std::thread* thread;
    ~CancellerJoin() {
      if (thread->joinable()) {
        quit->RequestCancel();
        thread->join();
      }
    }
  } canceller_join{&canceller_quit, &canceller};
  if (cancel_after_ms > 0 || query_deadline_ms > 0) {
    options.cancel = std::make_shared<CancellationToken>();
    if (query_deadline_ms > 0) {
      options.cancel->SetDeadline(
          static_cast<uint64_t>(query_deadline_ms) * 1'000'000);
    }
    if (cancel_after_ms > 0) {
      canceller = std::thread([token = options.cancel, &canceller_quit,
                               cancel_after_ms] {
        if (canceller_quit.WaitFor(
                static_cast<uint64_t>(cancel_after_ms) * 1'000'000)) {
          token->RequestCancel("--cancel-after-ms=" +
                               std::to_string(cancel_after_ms));
        }
      });
    }
  }

  // One observability scope for the whole query: every metric recorded
  // below lands in both the global registry and this query's own registry,
  // and phase scopes hang off its timeline. In this single-query process
  // the scoped snapshot matches the global registry's deltas.
  std::shared_ptr<ObsContext> obs = ObsContext::Create(algorithm_name);
  options.obs = obs;
  ObsScope main_scope(obs);

  if (!trace_out.empty()) {
    GlobalTracer().Start();
  }

  RestoreReport restore_report;
  Result<std::unique_ptr<TopKOperator>> op =
      resume_from.empty()
          ? MakeTopKOperator(algorithm, options)
          : ResumeTopKOperator(algorithm, options, &restore_report);
  if (!op.ok()) return Fail(op.status());

  if (resume_from.empty()) {
    std::printf("running %s: top-%lld%s of %lld %s rows, %.1f MiB memory\n",
                TopKAlgorithmName(algorithm).c_str(),
                static_cast<long long>(k),
                offset > 0 ? (" offset " + std::to_string(offset)).c_str()
                           : "",
                static_cast<long long>(n),
                trace_keys.empty() ? dist_name.c_str() : "trace", memory_mb);
  } else {
    std::printf(
        "resuming %s: top-%lld%s from %s/%s (%zu runs restored, %zu "
        "quarantined)\n",
        TopKAlgorithmName(algorithm).c_str(), static_cast<long long>(k),
        offset > 0 ? (" offset " + std::to_string(offset)).c_str() : "",
        spill_dir.c_str(), resume_from.c_str(), restore_report.runs_restored,
        restore_report.quarantined.size());
    for (const QuarantinedRun& bad : restore_report.quarantined) {
      std::printf("  quarantined run %llu (%s): %s\n",
                  static_cast<unsigned long long>(bad.meta.id),
                  bad.meta.path.c_str(), bad.reason.ToString().c_str());
    }
  }

  // Progress reporting: one line every ~5% of the input showing how the
  // cutoff filter is eating the stream.
  const uint64_t progress_stride =
      progress ? std::max<uint64_t>(static_cast<uint64_t>(n) / 20, 1) : 0;
  uint64_t consumed = 0;
  const auto maybe_report = [&](const Stopwatch& w) {
    if (progress_stride == 0 || consumed % progress_stride != 0) return;
    const OperatorStats& s = (*op)->stats();
    const double eliminated_pct =
        s.rows_consumed == 0
            ? 0.0
            : 100.0 * static_cast<double>(s.rows_eliminated_input) /
                  static_cast<double>(s.rows_consumed);
    std::printf("  %5.1f%%  %12llu rows  %5.1f%% eliminated  %7.2fs\n",
                100.0 * static_cast<double>(consumed) /
                    static_cast<double>(n > 0 ? n : 1),
                static_cast<unsigned long long>(s.rows_consumed),
                eliminated_pct, w.ElapsedSeconds());
    std::fflush(stdout);
  };

  Row row;
  Stopwatch watch;
  // A resumed operator normally rejects input, but an optimized-external
  // execution restored from a mid-input checkpoint wants the input tail
  // replayed: regenerate the deterministic input and skip the rows the
  // checkpoint already covers.
  const bool replay_input = !resume_from.empty() && (*op)->resume_accepts_input();
  const uint64_t replay_skip = replay_input ? (*op)->resume_input_offset() : 0;
  if (replay_input) {
    std::printf("  mid-input checkpoint: replaying input from row %llu\n",
                static_cast<unsigned long long>(replay_skip));
  }
  if (resume_from.empty() || replay_input) {
    PhaseScope consume_phase("consume");
    if (!trace_keys.empty()) {
      const std::string fill(static_cast<size_t>(payload), 'p');
      for (size_t i = 0; i < trace_keys.size(); ++i) {
        if (i < replay_skip) continue;
        Status status = (*op)->Consume(Row(trace_keys[i], i, fill));
        if (!status.ok()) return Fail(status);
        ++consumed;
        maybe_report(watch);
      }
    } else {
      RowGenerator gen(spec);
      uint64_t index = 0;
      while (gen.Next(&row)) {
        if (index++ < replay_skip) continue;
        Status status = (*op)->Consume(std::move(row));
        if (!status.ok()) return Fail(status);
        ++consumed;
        maybe_report(watch);
      }
    }
  }
  if (suspend_before_merge) {
    Status status = [&] {
      PhaseScope suspend_phase("suspend");
      return (*op)->Suspend();
    }();
    if (!status.ok()) return Fail(status);
    obs->MarkQueryComplete();
    std::printf(
        "suspended after %llu rows: runs and manifest '%s' left in %s\n"
        "resume with --resume-from=%s --spill-dir=%s\n",
        static_cast<unsigned long long>(consumed), manifest_name.c_str(),
        spill_dir.c_str(), manifest_name.c_str(), spill_dir.c_str());
    std::printf("\n%s", FormatOperatorStats((*op)->stats()).c_str());
    std::printf("  %-28s %s\n", "storage traffic",
                env.stats()->ToString().c_str());
    if (!trace_out.empty()) {
      GlobalTracer().Stop();
      Status trace_status = GlobalTracer().WriteJsonFile(trace_out);
      if (!trace_status.ok()) return Fail(trace_status);
    }
    if (!metrics_json.empty()) {
      StatsExport exported;
      exported.operator_name = (*op)->name();
      exported.operator_stats = (*op)->stats();
      exported.io = env.stats()->snapshot();
      exported.metrics = obs->metrics().TakeSnapshot();
      exported.obs = obs.get();
      std::ofstream out(metrics_json, std::ios::binary | std::ios::trunc);
      if (!out) {
        return Fail(Status::IoError("cannot open --metrics-json file " +
                                    metrics_json));
      }
      out << FormatStatsJson(exported) << "\n";
      std::printf("metrics written to %s\n", metrics_json.c_str());
    }
    if (profile) {
      std::printf("\n%s", FormatProfileText(BuildProfileReport(*obs)).c_str());
    }
    return 0;
  }
  Result<std::vector<Row>> result = [&]() {
    PhaseScope finish_phase("finish");
    TraceSpan finish_span("topk.finish", "topk");
    return (*op)->Finish();
  }();
  if (!result.ok()) return Fail(result.status());
  obs->MarkQueryComplete();
  const double seconds = watch.ElapsedSeconds();

  if (!trace_out.empty()) {
    GlobalTracer().Stop();
    Status status = GlobalTracer().WriteJsonFile(trace_out);
    if (!status.ok()) return Fail(status);
    std::printf("trace written to %s (%zu events)\n", trace_out.c_str(),
                GlobalTracer().event_count());
  }
  if (!metrics_json.empty()) {
    StatsExport exported;
    exported.operator_name = (*op)->name();
    exported.operator_stats = (*op)->stats();
    exported.io = env.stats()->snapshot();
    exported.metrics = obs->metrics().TakeSnapshot();
    exported.obs = obs.get();
    std::ofstream out(metrics_json, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Fail(Status::IoError("cannot open --metrics-json file " +
                                  metrics_json));
    }
    out << FormatStatsJson(exported) << "\n";
    if (!out) {
      return Fail(Status::IoError("failed writing " + metrics_json));
    }
    std::printf("metrics written to %s\n", metrics_json.c_str());
  }

  std::printf("\n%zu rows in %.3fs", result->size(), seconds);
  if (!result->empty()) {
    std::printf(" — keys %.6g .. %.6g", result->front().key,
                result->back().key);
  }
  std::printf("\n\n%s", FormatOperatorStats((*op)->stats()).c_str());
  std::printf("  %-28s %s\n", "storage traffic",
              env.stats()->ToString().c_str());
  if (profile) {
    std::printf("\n%s", FormatProfileText(BuildProfileReport(*obs)).c_str());
  }

  if (verify) {
    std::vector<Row> all;
    if (!trace_keys.empty()) {
      const std::string fill(static_cast<size_t>(payload), 'p');
      all.reserve(trace_keys.size());
      for (size_t i = 0; i < trace_keys.size(); ++i) {
        all.push_back(Row(trace_keys[i], i, fill));
      }
    } else {
      RowGenerator regen(spec);
      all.reserve(spec.num_rows);
      while (regen.Next(&row)) all.push_back(row);
    }
    RowComparator cmp(options.direction);
    std::sort(all.begin(), all.end(), cmp);
    const size_t begin = std::min<size_t>(options.offset, all.size());
    const size_t end = std::min<size_t>(begin + options.k, all.size());
    bool ok = result->size() == end - begin;
    for (size_t i = 0; ok && i < result->size(); ++i) {
      ok = (*result)[i].id == all[begin + i].id;
    }
    std::printf("\nverification vs full sort: %s\n",
                ok ? "IDENTICAL" : "MISMATCH");
    if (!ok) return 2;
  }

  std::error_code ec;
  std::filesystem::remove_all(spill_dir, ec);
  return 0;
}
