#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "gen/distribution.h"
#include "gen/generator.h"
#include "gen/lineitem.h"

namespace topk {
namespace {

TEST(DistributionTest, ParseNames) {
  KeyDistribution d;
  EXPECT_TRUE(ParseKeyDistribution("uniform", &d));
  EXPECT_EQ(d, KeyDistribution::kUniform);
  EXPECT_TRUE(ParseKeyDistribution("fal", &d));
  EXPECT_EQ(d, KeyDistribution::kFal);
  EXPECT_TRUE(ParseKeyDistribution("lognormal", &d));
  EXPECT_EQ(d, KeyDistribution::kLogNormal);
  EXPECT_TRUE(ParseKeyDistribution("ascending", &d));
  EXPECT_TRUE(ParseKeyDistribution("descending", &d));
  EXPECT_FALSE(ParseKeyDistribution("zipfish", &d));
}

TEST(DistributionTest, NamesRoundTrip) {
  for (auto dist :
       {KeyDistribution::kUniform, KeyDistribution::kFal,
        KeyDistribution::kLogNormal, KeyDistribution::kAscending,
        KeyDistribution::kDescending}) {
    KeyDistribution parsed;
    ASSERT_TRUE(ParseKeyDistribution(KeyDistributionName(dist), &parsed));
    EXPECT_EQ(parsed, dist);
  }
}

TEST(DistributionTest, UniformRangeAndMean) {
  KeyGeneratorSpec spec;
  spec.seed = 1;
  auto gen = MakeKeyGenerator(spec);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = gen->Next();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(DistributionTest, DeterministicForSeed) {
  for (auto dist : {KeyDistribution::kUniform, KeyDistribution::kFal,
                    KeyDistribution::kLogNormal}) {
    KeyGeneratorSpec spec;
    spec.distribution = dist;
    spec.seed = 77;
    auto a = MakeKeyGenerator(spec);
    auto b = MakeKeyGenerator(spec);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a->Next(), b->Next());
  }
}

TEST(DistributionTest, FalValuesMatchFormula) {
  // Every fal value must equal N / r^z for some integer rank r in [1, N].
  KeyGeneratorSpec spec;
  spec.distribution = KeyDistribution::kFal;
  spec.num_rows = 1000;
  spec.fal_shape = 1.25;
  auto gen = MakeKeyGenerator(spec);
  for (int i = 0; i < 1000; ++i) {
    const double v = gen->Next();
    const double rank =
        std::pow(static_cast<double>(spec.num_rows) / v, 1.0 / 1.25);
    const double rounded = std::round(rank);
    ASSERT_GE(rounded, 1.0);
    ASSERT_LE(rounded, 1000.0);
    const double expected =
        static_cast<double>(spec.num_rows) / std::pow(rounded, 1.25);
    EXPECT_NEAR(v, expected, expected * 1e-9);
  }
}

TEST(DistributionTest, FalLargerShapeIsMoreSkewed) {
  auto skew = [](double shape) {
    KeyGeneratorSpec spec;
    spec.distribution = KeyDistribution::kFal;
    spec.num_rows = 100000;
    spec.fal_shape = shape;
    spec.seed = 5;
    auto gen = MakeKeyGenerator(spec);
    std::vector<double> values;
    for (int i = 0; i < 20000; ++i) values.push_back(gen->Next());
    std::sort(values.begin(), values.end());
    // Ratio of max to median grows with the shape parameter.
    return values.back() / values[values.size() / 2];
  };
  EXPECT_LT(skew(0.5), skew(1.25));
  EXPECT_LT(skew(1.25), skew(1.5));
}

TEST(DistributionTest, MonotoneStreams) {
  for (bool ascending : {true, false}) {
    KeyGeneratorSpec spec;
    spec.distribution = ascending ? KeyDistribution::kAscending
                                  : KeyDistribution::kDescending;
    spec.num_rows = 1000;
    auto gen = MakeKeyGenerator(spec);
    double prev = gen->Next();
    for (int i = 1; i < 1000; ++i) {
      const double v = gen->Next();
      if (ascending) {
        ASSERT_GT(v, prev);
      } else {
        ASSERT_LT(v, prev);
      }
      prev = v;
    }
  }
}

TEST(RowGeneratorTest, ProducesExactlyNumRowsWithSequentialIds) {
  DatasetSpec spec;
  spec.WithRows(1000).WithSeed(3);
  RowGenerator gen(spec);
  Row row;
  uint64_t count = 0;
  while (gen.Next(&row)) {
    EXPECT_EQ(row.id, count);
    ++count;
  }
  EXPECT_EQ(count, 1000u);
  EXPECT_FALSE(gen.Next(&row));
}

TEST(RowGeneratorTest, PayloadSizesWithinBounds) {
  DatasetSpec spec;
  spec.WithRows(500).WithPayload(10, 50).WithSeed(4);
  RowGenerator gen(spec);
  Row row;
  bool saw_min_side = false, saw_max_side = false;
  while (gen.Next(&row)) {
    ASSERT_GE(row.payload.size(), 10u);
    ASSERT_LE(row.payload.size(), 50u);
    if (row.payload.size() < 20) saw_min_side = true;
    if (row.payload.size() > 40) saw_max_side = true;
  }
  EXPECT_TRUE(saw_min_side);
  EXPECT_TRUE(saw_max_side);
}

TEST(RowGeneratorTest, ResetReplaysIdenticalStream) {
  DatasetSpec spec;
  spec.WithRows(100).WithPayload(5, 20).WithSeed(9);
  RowGenerator gen(spec);
  std::vector<Row> first;
  Row row;
  while (gen.Next(&row)) first.push_back(row);
  gen.Reset();
  std::vector<Row> second;
  while (gen.Next(&row)) second.push_back(row);
  EXPECT_EQ(first, second);
}

TEST(RowGeneratorTest, SpecBuildersCompose) {
  DatasetSpec spec;
  spec.WithRows(10).WithFalShape(1.05).WithSeed(2).WithPayload(1, 2);
  EXPECT_EQ(spec.num_rows, 10u);
  EXPECT_EQ(spec.keys.num_rows, 10u);
  EXPECT_EQ(spec.keys.distribution, KeyDistribution::kFal);
  EXPECT_EQ(spec.keys.fal_shape, 1.05);
}

TEST(LineitemTest, PayloadRoundTrip) {
  LineitemGenerator gen(100, 42);
  Row row;
  while (gen.Next(&row)) {
    Lineitem item;
    ASSERT_TRUE(ParseLineitemPayload(row.payload, &item));
    // The orderkey travels as the row's sort key, not in the payload.
    item.orderkey = static_cast<int64_t>(row.key);
    EXPECT_EQ(static_cast<double>(item.orderkey), row.key);
    EXPECT_GE(item.quantity, 1.0);
    EXPECT_LE(item.quantity, 51.0);
    EXPECT_GE(item.discount, 0.0);
    EXPECT_LE(item.discount, 0.10);
    EXPECT_FALSE(item.comment.empty());
    EXPECT_GE(item.commitdate, item.shipdate);
  }
}

TEST(LineitemTest, ParseRejectsTruncatedPayload) {
  LineitemGenerator gen(1, 42);
  Row row;
  ASSERT_TRUE(gen.Next(&row));
  Lineitem item;
  EXPECT_FALSE(ParseLineitemPayload(row.payload.substr(0, 10), &item));
  EXPECT_FALSE(
      ParseLineitemPayload(row.payload.substr(0, row.payload.size() - 1),
                           &item));
}

TEST(LineitemTest, KeysSparseUniform) {
  LineitemGenerator gen(10000, 7);
  Row row;
  double max_key = 0;
  while (gen.Next(&row)) {
    ASSERT_GE(row.key, 1.0);
    ASSERT_LE(row.key, 40001.0);
    max_key = std::max(max_key, row.key);
  }
  EXPECT_GT(max_key, 30000.0);  // spread over the sparse domain
}

}  // namespace
}  // namespace topk
