#include "histogram/sizing_policy.h"

#include <gtest/gtest.h>

namespace topk {
namespace {

TEST(BucketSizingPolicyTest, MedianPolicy) {
  // B=1 over runs of 1000 rows: one bucket of 500 rows at the median.
  BucketSizingPolicy policy(1, 1000);
  EXPECT_EQ(policy.rows_per_bucket(), 500u);
}

TEST(BucketSizingPolicyTest, DecilePolicy) {
  // B=9 over runs of 1000 rows: buckets of 100 rows at each decile.
  BucketSizingPolicy policy(9, 1000);
  EXPECT_EQ(policy.rows_per_bucket(), 100u);
}

TEST(BucketSizingPolicyTest, EveryKeyPolicy) {
  BucketSizingPolicy policy(1000, 1000);
  EXPECT_EQ(policy.rows_per_bucket(), 1u);
}

TEST(BucketSizingPolicyTest, DisabledPolicies) {
  EXPECT_EQ(BucketSizingPolicy(0, 1000).rows_per_bucket(), 0u);
  EXPECT_EQ(BucketSizingPolicy(10, 0).rows_per_bucket(), 0u);
}

TEST(BucketSizingPolicyTest, WidthAtLeastOne) {
  // More buckets than rows: width clamps to one row per bucket.
  BucketSizingPolicy policy(1000, 10);
  EXPECT_EQ(policy.rows_per_bucket(), 1u);
}

TEST(RunHistogramBuilderTest, ClosesBucketEveryWidthRows) {
  BucketSizingPolicy policy(9, 1000);  // width 100
  RunHistogramBuilder builder(policy);
  int buckets = 0;
  for (int i = 1; i <= 1000; ++i) {
    auto bucket = builder.AddSpilledRow(i * 0.001);
    if (bucket.has_value()) {
      ++buckets;
      EXPECT_EQ(bucket->count, 100u);
      EXPECT_DOUBLE_EQ(bucket->boundary, buckets * 100 * 0.001);
    }
  }
  // Capped at 9 buckets; the 10th segment (rows 901..1000) yields none.
  EXPECT_EQ(buckets, 9);
}

TEST(RunHistogramBuilderTest, MedianPolicyYieldsOneBucket) {
  BucketSizingPolicy policy(1, 1000);
  RunHistogramBuilder builder(policy);
  int buckets = 0;
  for (int i = 1; i <= 1000; ++i) {
    if (builder.AddSpilledRow(i).has_value()) ++buckets;
  }
  EXPECT_EQ(buckets, 1);
}

TEST(RunHistogramBuilderTest, FinishRunReturnsCollectedBucketsAndResets) {
  BucketSizingPolicy policy(9, 1000);
  RunHistogramBuilder builder(policy);
  for (int i = 1; i <= 350; ++i) builder.AddSpilledRow(i);
  EXPECT_EQ(builder.rows_in_current_bucket(), 50u);  // partial tail
  auto buckets = builder.FinishRun();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0].boundary, 100.0);
  EXPECT_EQ(buckets[2].boundary, 300.0);
  EXPECT_EQ(builder.rows_in_current_bucket(), 0u);

  // Next run starts fresh.
  for (int i = 1; i <= 100; ++i) builder.AddSpilledRow(i * 2.0);
  auto next = builder.FinishRun();
  ASSERT_EQ(next.size(), 1u);
  EXPECT_EQ(next[0].boundary, 200.0);
}

TEST(RunHistogramBuilderTest, DisabledPolicyProducesNothing) {
  BucketSizingPolicy policy(0, 1000);
  RunHistogramBuilder builder(policy);
  for (int i = 1; i <= 1000; ++i) {
    EXPECT_FALSE(builder.AddSpilledRow(i).has_value());
  }
  EXPECT_TRUE(builder.FinishRun().empty());
}

TEST(RunHistogramBuilderTest, TruncatedRunKeepsCompleteBucketsOnly) {
  BucketSizingPolicy policy(9, 1000);
  RunHistogramBuilder builder(policy);
  // Run truncated by the cutoff after 250 rows.
  for (int i = 1; i <= 250; ++i) builder.AddSpilledRow(i);
  auto buckets = builder.FinishRun();
  EXPECT_EQ(buckets.size(), 2u);  // rows 201-250 discarded
}

}  // namespace
}  // namespace topk
