#include "topk/heap_topk.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace topk {
namespace {

using testing_util::ExpectSameRows;
using testing_util::MaterializeDataset;
using testing_util::ReferenceTopK;
using testing_util::RunOperator;

TopKOptions HeapOptions(uint64_t k) {
  TopKOptions options;
  options.k = k;
  options.memory_limit_bytes = 16 << 20;
  return options;
}

TEST(HeapTopKTest, MatchesReferenceOnUniformInput) {
  DatasetSpec spec;
  spec.WithRows(10000).WithSeed(1);
  auto rows = MaterializeDataset(spec);
  auto op = HeapTopK::Make(HeapOptions(100));
  ASSERT_TRUE(op.ok());
  auto result = RunOperator(op->get(), rows);
  ASSERT_TRUE(result.ok());
  ExpectSameRows(ReferenceTopK(rows, 100, 0, SortDirection::kAscending),
                 *result);
  EXPECT_EQ((*op)->stats().rows_consumed, 10000u);
  EXPECT_GT((*op)->stats().rows_eliminated_input, 9000u);
}

TEST(HeapTopKTest, DescendingDirection) {
  DatasetSpec spec;
  spec.WithRows(5000).WithSeed(2);
  auto rows = MaterializeDataset(spec);
  TopKOptions options = HeapOptions(50);
  options.direction = SortDirection::kDescending;
  auto op = HeapTopK::Make(options);
  ASSERT_TRUE(op.ok());
  auto result = RunOperator(op->get(), rows);
  ASSERT_TRUE(result.ok());
  ExpectSameRows(ReferenceTopK(rows, 50, 0, SortDirection::kDescending),
                 *result);
}

TEST(HeapTopKTest, OffsetSkipsRows) {
  DatasetSpec spec;
  spec.WithRows(2000).WithSeed(3);
  auto rows = MaterializeDataset(spec);
  TopKOptions options = HeapOptions(20);
  options.offset = 35;
  auto op = HeapTopK::Make(options);
  ASSERT_TRUE(op.ok());
  auto result = RunOperator(op->get(), rows);
  ASSERT_TRUE(result.ok());
  ExpectSameRows(ReferenceTopK(rows, 20, 35, SortDirection::kAscending),
                 *result);
}

TEST(HeapTopKTest, InputSmallerThanKReturnsEverythingSorted) {
  DatasetSpec spec;
  spec.WithRows(30).WithSeed(4);
  auto rows = MaterializeDataset(spec);
  auto op = HeapTopK::Make(HeapOptions(100));
  ASSERT_TRUE(op.ok());
  auto result = RunOperator(op->get(), rows);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 30u);
  ExpectSameRows(ReferenceTopK(rows, 100, 0, SortDirection::kAscending),
                 *result);
}

TEST(HeapTopKTest, FailsWithOutOfMemoryWhenOutputExceedsBudget) {
  // The paper's point about the in-memory algorithm: it "may unexpectedly
  // fail" when the output does not fit.
  TopKOptions options = HeapOptions(1000000);
  options.memory_limit_bytes = 4096;
  auto op = HeapTopK::Make(options);
  ASSERT_TRUE(op.ok());
  Status status = Status::OK();
  for (int i = 0; i < 100000 && status.ok(); ++i) {
    status = (*op)->Consume(Row(i * 1.0, i));
  }
  EXPECT_EQ(status.code(), StatusCode::kOutOfMemory);
}

TEST(HeapTopKTest, UnboundedMemoryModeNeverFails) {
  TopKOptions options = HeapOptions(50000);
  options.memory_limit_bytes = 4096;
  options.allow_unbounded_memory = true;
  auto op = HeapTopK::Make(options);
  ASSERT_TRUE(op.ok());
  DatasetSpec spec;
  spec.WithRows(100000).WithSeed(5);
  auto rows = MaterializeDataset(spec);
  auto result = RunOperator(op->get(), rows);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 50000u);
}

TEST(HeapTopKTest, CutoffIsHeapTopOnceSaturated) {
  auto op = HeapTopK::Make(HeapOptions(3));
  ASSERT_TRUE(op.ok());
  EXPECT_FALSE((*op)->cutoff().has_value());
  ASSERT_TRUE((*op)->Consume(Row(5, 1)).ok());
  ASSERT_TRUE((*op)->Consume(Row(1, 2)).ok());
  EXPECT_FALSE((*op)->cutoff().has_value());
  ASSERT_TRUE((*op)->Consume(Row(3, 3)).ok());
  ASSERT_TRUE((*op)->cutoff().has_value());
  EXPECT_EQ(*(*op)->cutoff(), 5.0);
  ASSERT_TRUE((*op)->Consume(Row(2, 4)).ok());
  EXPECT_EQ(*(*op)->cutoff(), 3.0);
}

TEST(HeapTopKTest, DuplicateKeysStableById) {
  std::vector<Row> rows;
  for (int i = 0; i < 100; ++i) rows.push_back(Row(1.0, 99 - i));
  auto op = HeapTopK::Make(HeapOptions(10));
  ASSERT_TRUE(op.ok());
  auto result = RunOperator(op->get(), rows);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ((*result)[i].id, static_cast<uint64_t>(i));
  }
}

TEST(HeapTopKTest, ConsumeBatchMatchesRepeatedConsume) {
  DatasetSpec spec;
  spec.WithRows(3000).WithSeed(6);
  auto rows = MaterializeDataset(spec);

  auto batched = HeapTopK::Make(HeapOptions(100));
  ASSERT_TRUE(batched.ok());
  ASSERT_TRUE((*batched)->ConsumeBatch(rows).ok());
  auto batched_result = (*batched)->Finish();
  ASSERT_TRUE(batched_result.ok());

  auto single = HeapTopK::Make(HeapOptions(100));
  ASSERT_TRUE(single.ok());
  auto single_result = RunOperator(single->get(), rows);
  ASSERT_TRUE(single_result.ok());
  ExpectSameRows(*single_result, *batched_result);
}

TEST(HeapTopKTest, RejectsZeroK) {
  EXPECT_FALSE(HeapTopK::Make(HeapOptions(0)).ok());
}

TEST(HeapTopKTest, ConsumeAfterFinishFails) {
  auto op = HeapTopK::Make(HeapOptions(5));
  ASSERT_TRUE(op.ok());
  ASSERT_TRUE((*op)->Consume(Row(1, 1)).ok());
  ASSERT_TRUE((*op)->Finish().ok());
  EXPECT_EQ((*op)->Consume(Row(2, 2)).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ((*op)->Finish().status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace topk
