#ifndef TOPK_TESTS_TEST_UTIL_H_
#define TOPK_TESTS_TEST_UTIL_H_

#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gen/generator.h"
#include "io/storage_env.h"
#include "row/row.h"
#include "topk/topk_operator.h"

namespace topk {
namespace testing_util {

/// Creates a unique scratch directory for the current test and removes it on
/// destruction.
class ScratchDir {
 public:
  ScratchDir() {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    std::string name = "topk_test";
    if (info != nullptr) {
      name = std::string(info->test_suite_name()) + "_" + info->name();
      for (char& c : name) {
        if (c == '/' || c == '\\') c = '_';
      }
    }
    path_ = std::filesystem::temp_directory_path() /
            (name + "_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    std::filesystem::create_directories(path_);
  }

  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }

  std::string str() const { return path_.string(); }

 private:
  static inline int counter_ = 0;
  std::filesystem::path path_;
};

/// Materializes the full dataset of `spec` (test scale only).
inline std::vector<Row> MaterializeDataset(const DatasetSpec& spec) {
  RowGenerator gen(spec);
  std::vector<Row> rows;
  rows.reserve(spec.num_rows);
  Row row;
  while (gen.Next(&row)) rows.push_back(row);
  return rows;
}

/// Ground truth: full sort, then slice [offset, offset + k).
inline std::vector<Row> ReferenceTopK(std::vector<Row> rows, uint64_t k,
                                      uint64_t offset,
                                      SortDirection direction) {
  RowComparator cmp(direction);
  std::sort(rows.begin(), rows.end(), cmp);
  const size_t begin = std::min<size_t>(offset, rows.size());
  const size_t end = std::min<size_t>(begin + k, rows.size());
  return std::vector<Row>(rows.begin() + begin, rows.begin() + end);
}

/// Ground truth for WITH TIES: sort, slice [offset, offset + k), then
/// extend while keys equal the boundary key.
inline std::vector<Row> ReferenceTopKWithTies(std::vector<Row> rows,
                                              uint64_t k, uint64_t offset,
                                              SortDirection direction) {
  RowComparator cmp(direction);
  std::sort(rows.begin(), rows.end(), cmp);
  const size_t begin = std::min<size_t>(offset, rows.size());
  size_t end = std::min<size_t>(begin + k, rows.size());
  if (end > begin) {
    const double boundary = rows[end - 1].key;
    while (end < rows.size() && rows[end].key == boundary) ++end;
  }
  return std::vector<Row>(rows.begin() + begin, rows.begin() + end);
}

/// Feeds `rows` into `op` and finishes it.
inline Result<std::vector<Row>> RunOperator(TopKOperator* op,
                                            const std::vector<Row>& rows) {
  for (const Row& row : rows) {
    TOPK_RETURN_NOT_OK(op->Consume(row));
  }
  return op->Finish();
}

/// Asserts two row vectors are identical (key, id, payload).
inline void ExpectSameRows(const std::vector<Row>& expected,
                           const std::vector<Row>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(expected[i].key, actual[i].key) << "row " << i;
    ASSERT_EQ(expected[i].id, actual[i].id) << "row " << i;
    ASSERT_EQ(expected[i].payload, actual[i].payload) << "row " << i;
  }
}

/// Like ExpectSameRows, but compares keys by bit pattern: ASSERT_EQ on a
/// double says NaN != NaN, so NaN-bearing expectations need this variant.
inline void ExpectSameRowsBitwise(const std::vector<Row>& expected,
                                  const std::vector<Row>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(std::bit_cast<uint64_t>(expected[i].key),
              std::bit_cast<uint64_t>(actual[i].key))
        << "row " << i;
    ASSERT_EQ(expected[i].id, actual[i].id) << "row " << i;
    ASSERT_EQ(expected[i].payload, actual[i].payload) << "row " << i;
  }
}

}  // namespace testing_util
}  // namespace topk

#endif  // TOPK_TESTS_TEST_UTIL_H_
