#include "topk/optimized_external_topk.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "topk/operator_factory.h"

namespace topk {
namespace {

using testing_util::ExpectSameRows;
using testing_util::MaterializeDataset;
using testing_util::ReferenceTopK;
using testing_util::RunOperator;
using testing_util::ScratchDir;

class OptimizedTopKTest : public ::testing::Test {
 protected:
  TopKOptions Options(uint64_t k, size_t memory_bytes = 32 * 1024) {
    TopKOptions options;
    options.k = k;
    options.memory_limit_bytes = memory_bytes;
    options.env = &env_;
    options.spill_dir = scratch_.str() + "/" + std::to_string(dir_seq_++);
    return options;
  }

  ScratchDir scratch_;
  StorageEnv env_;
  int dir_seq_ = 0;
};

TEST_F(OptimizedTopKTest, SmallKCutoffFromRunKthKey) {
  // k smaller than a run: the (k)th key of the first full run becomes the
  // cutoff (the incrementally sharpening filter of [14]); no early merge is
  // needed.
  auto op = OptimizedExternalTopK::Make(Options(100, 32 * 1024));
  ASSERT_TRUE(op.ok());
  DatasetSpec spec;
  spec.WithRows(50000).WithSeed(1);
  auto rows = MaterializeDataset(spec);
  auto result = RunOperator(op->get(), rows);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE((*op)->cutoff().has_value());
  EXPECT_GT((*op)->stats().rows_eliminated_input, 30000u);
  EXPECT_EQ((*op)->stats().merge_rows_written, 0u);  // no early merges
  ExpectSameRows(ReferenceTopK(rows, 100, 0, SortDirection::kAscending),
                 *result);
}

TEST_F(OptimizedTopKTest, LargeKCutoffRequiresEarlyMerge) {
  // k larger than any run: only an early merge step can prove k rows and
  // establish a cutoff (Sec 2.5), at the cost of intermediate merge I/O.
  TopKOptions options = Options(3000, 16 * 1024);
  options.early_merge_fan_in = 5;
  auto op = OptimizedExternalTopK::Make(options);
  ASSERT_TRUE(op.ok());
  DatasetSpec spec;
  spec.WithRows(60000).WithSeed(2);
  auto rows = MaterializeDataset(spec);
  auto result = RunOperator(op->get(), rows);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE((*op)->cutoff().has_value());
  EXPECT_GT((*op)->stats().merge_rows_written, 0u);  // early merges ran
  EXPECT_GT((*op)->stats().rows_eliminated_input, 0u);
  ExpectSameRows(ReferenceTopK(rows, 3000, 0, SortDirection::kAscending),
                 *result);
}

TEST_F(OptimizedTopKTest, RunSizesRespectOutputLimit) {
  auto op = OptimizedExternalTopK::Make(Options(200, 64 * 1024));
  ASSERT_TRUE(op.ok());
  DatasetSpec spec;
  spec.WithRows(30000).WithSeed(3);
  auto rows = MaterializeDataset(spec);
  ASSERT_TRUE(RunOperator(op->get(), rows).ok());
  // Runs were limited to k rows; with ~1300 rows of memory, unlimited runs
  // would be far larger, so runs_created must exceed rows_spilled / 1300.
  const OperatorStats& stats = (*op)->stats();
  EXPECT_GE(stats.runs_created, stats.rows_spilled / 200);
}

TEST_F(OptimizedTopKTest, SpillsLessThanTraditionalButMoreThanHistogram) {
  // The paper's ordering of the three external algorithms by I/O effort.
  DatasetSpec spec;
  spec.WithRows(80000).WithSeed(4);
  auto rows = MaterializeDataset(spec);

  uint64_t written[3] = {0, 0, 0};
  const TopKAlgorithm algorithms[3] = {TopKAlgorithm::kTraditionalExternal,
                                       TopKAlgorithm::kOptimizedExternal,
                                       TopKAlgorithm::kHistogram};
  for (int i = 0; i < 3; ++i) {
    TopKOptions options = Options(2000, 16 * 1024);
    auto op = MakeTopKOperator(algorithms[i], options);
    ASSERT_TRUE(op.ok());
    auto result = RunOperator(op->get(), rows);
    ASSERT_TRUE(result.ok());
    written[i] =
        (*op)->stats().rows_spilled + (*op)->stats().merge_rows_written;
  }
  EXPECT_LT(written[1], written[0]);  // optimized beats traditional
  EXPECT_LT(written[2], written[1]);  // histogram beats optimized
}

TEST_F(OptimizedTopKTest, DescendingDirection) {
  TopKOptions options = Options(1000, 16 * 1024);
  options.direction = SortDirection::kDescending;
  auto op = OptimizedExternalTopK::Make(options);
  ASSERT_TRUE(op.ok());
  DatasetSpec spec;
  spec.WithRows(30000).WithSeed(5);
  auto rows = MaterializeDataset(spec);
  auto result = RunOperator(op->get(), rows);
  ASSERT_TRUE(result.ok());
  ExpectSameRows(ReferenceTopK(rows, 1000, 0, SortDirection::kDescending),
                 *result);
}

TEST_F(OptimizedTopKTest, RejectsBadEarlyMergeFanIn) {
  TopKOptions options = Options(10);
  options.early_merge_fan_in = 1;
  EXPECT_FALSE(OptimizedExternalTopK::Make(options).ok());
}

}  // namespace
}  // namespace topk
