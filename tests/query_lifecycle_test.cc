/// Query lifecycle control: the cancellation token and deadline unit
/// behavior, cooperative unwind through every operator with bounded
/// latency, the classification of Cancelled as caller-initiated (never
/// retried, never health-signalled), cancellation racing background pool
/// work, and the keep-for-resume cancel policy whose durable handoff lets
/// a preempted query continue from where the cancel caught it.

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <thread>

#include "common/query_control.h"
#include "io/retry.h"
#include "obs/metrics.h"
#include "tests/test_util.h"
#include "topk/histogram_topk.h"
#include "topk/operator_factory.h"
#include "topk/optimized_external_topk.h"
#include "topk/traditional_external_topk.h"

namespace topk {
namespace {

using testing_util::ExpectSameRows;
using testing_util::MaterializeDataset;
using testing_util::ReferenceTopK;
using testing_util::ScratchDir;

constexpr char kManifest[] = "query.tkm";

std::vector<Row> Dataset(uint64_t rows, uint64_t seed = 17) {
  DatasetSpec spec;
  spec.WithRows(rows).WithSeed(seed).WithPayload(24, 24);
  return MaterializeDataset(spec);
}

TopKOptions SmallOptions(StorageEnv* env, const std::string& dir) {
  TopKOptions options;
  options.k = 500;
  options.memory_limit_bytes = 16 * 1024;
  options.env = env;
  options.spill_dir = dir;
  return options;
}

// ---------------------------------------------------------------- token

TEST(CancellationTokenTest, StartsLive) {
  CancellationToken token;
  EXPECT_FALSE(token.ShouldStop());
  EXPECT_FALSE(token.cancelled());
  EXPECT_TRUE(token.Check().ok());
  EXPECT_TRUE(token.status().ok());
}

TEST(CancellationTokenTest, RequestCancelLatchesReason) {
  CancellationToken token;
  token.RequestCancel("user hit ^C");
  EXPECT_TRUE(token.ShouldStop());
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.status().code(), StatusCode::kCancelled);
  EXPECT_NE(token.status().message().find("user hit ^C"), std::string::npos);
}

TEST(CancellationTokenTest, FirstCauseWins) {
  CancellationToken token;
  token.RequestCancel("first");
  token.RequestCancel("second");
  EXPECT_NE(token.status().message().find("first"), std::string::npos);
  EXPECT_EQ(token.status().message().find("second"), std::string::npos);
}

TEST(CancellationTokenTest, DeadlineTripsWithDeadlineExceeded) {
  CancellationToken token;
  token.SetDeadline(1);  // 1ns: already past by the time we poll
  EXPECT_TRUE(token.ShouldStop());
  EXPECT_EQ(token.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(CancellationTokenTest, GenerousDeadlineStaysLive) {
  CancellationToken token;
  token.SetDeadline(uint64_t{3600} * 1'000'000'000);
  EXPECT_FALSE(token.ShouldStop());
}

TEST(CancellationTokenTest, WaitForWakesOnCancel) {
  CancellationToken token;
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    token.RequestCancel("wake up");
  });
  Stopwatch watch;
  // A 30s sleep must be interrupted by the 10ms cancel.
  EXPECT_FALSE(token.WaitFor(uint64_t{30} * 1'000'000'000));
  EXPECT_LT(watch.ElapsedSeconds(), 10.0);
  canceller.join();
}

TEST(CancellationTokenTest, WaitForRunsFullWhenLive) {
  CancellationToken token;
  EXPECT_TRUE(token.WaitFor(1'000'000));  // 1ms
  EXPECT_FALSE(token.ShouldStop());
}

Status PollWithMacro(const CancellationToken* token) {
  TOPK_RETURN_IF_CANCELLED(token);
  return Status::OK();
}

TEST(CancellationTokenTest, MacroReturnsLatchedStatus) {
  EXPECT_TRUE(PollWithMacro(nullptr).ok());
  CancellationToken token;
  EXPECT_TRUE(PollWithMacro(&token).ok());
  token.RequestCancel();
  EXPECT_EQ(PollWithMacro(&token).code(), StatusCode::kCancelled);
}

TEST(CancelShieldTest, MasksTrippedTokenWithinScope) {
  CancellationToken token;
  token.RequestCancel("preempted");
  ASSERT_TRUE(token.ShouldStop());
  {
    CancelShield shield(&token);
    EXPECT_FALSE(token.ShouldStop());
    EXPECT_TRUE(token.Check().ok());
    // The latched cause is still readable under the shield.
    EXPECT_EQ(token.status().code(), StatusCode::kCancelled);
    // A shielded wait sleeps the full request instead of failing fast.
    EXPECT_TRUE(token.WaitFor(1'000'000));
    {
      CancelShield nested(&token);
      EXPECT_FALSE(token.ShouldStop());
    }
    EXPECT_FALSE(token.ShouldStop());
  }
  EXPECT_TRUE(token.ShouldStop());
}

TEST(CancelShieldTest, NullTokenIsLegal) {
  CancelShield shield(nullptr);  // must not crash
}

TEST(QueryLifecycleTest, IsCancellationClassifier) {
  EXPECT_TRUE(IsCancellation(StatusCode::kCancelled));
  EXPECT_TRUE(IsCancellation(StatusCode::kDeadlineExceeded));
  EXPECT_FALSE(IsCancellation(StatusCode::kUnavailable));
  EXPECT_FALSE(IsCancellation(StatusCode::kIoError));
  EXPECT_FALSE(IsCancellation(StatusCode::kOk));
}

// ------------------------------------------------------- operator unwind

TEST(OperatorCancelTest, EveryOperatorUnwindsOnNextConsume) {
  const auto rows = Dataset(30000);
  for (const TopKAlgorithm algorithm :
       {TopKAlgorithm::kHeap, TopKAlgorithm::kTraditionalExternal,
        TopKAlgorithm::kOptimizedExternal, TopKAlgorithm::kHistogram}) {
    SCOPED_TRACE(TopKAlgorithmName(algorithm));
    ScratchDir scratch;
    StorageEnv env;
    TopKOptions options = SmallOptions(&env, scratch.str());
    if (algorithm == TopKAlgorithm::kHeap) {
      options.allow_unbounded_memory = true;
    }
    options.cancel = std::make_shared<CancellationToken>();
    auto op = MakeTopKOperator(algorithm, options);
    ASSERT_TRUE(op.ok()) << op.status().ToString();
    for (size_t i = 0; i < 10000; ++i) {
      ASSERT_TRUE((*op)->Consume(rows[i]).ok());
    }
    options.cancel->RequestCancel("test preemption");
    // The very next row observes the cancel: bounded-step observation.
    Status status = (*op)->Consume(rows[10000]);
    EXPECT_EQ(status.code(), StatusCode::kCancelled) << status.ToString();
  }
}

TEST(OperatorCancelTest, DeadlineSurfacesAsDeadlineExceeded) {
  const auto rows = Dataset(5000);
  ScratchDir scratch;
  StorageEnv env;
  TopKOptions options = SmallOptions(&env, scratch.str());
  options.cancel = std::make_shared<CancellationToken>();
  options.cancel->SetDeadline(1'000'000);  // 1ms
  auto op = MakeTopKOperator(TopKAlgorithm::kHistogram, options);
  ASSERT_TRUE(op.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  Status status = Status::OK();
  for (const Row& row : rows) {
    status = (*op)->Consume(row);
    if (!status.ok()) break;
  }
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
}

TEST(OperatorCancelTest, FinishObservesCancel) {
  const auto rows = Dataset(30000);
  ScratchDir scratch;
  StorageEnv env;
  TopKOptions options = SmallOptions(&env, scratch.str());
  options.cancel = std::make_shared<CancellationToken>();
  auto op = MakeTopKOperator(TopKAlgorithm::kHistogram, options);
  ASSERT_TRUE(op.ok());
  for (const Row& row : rows) {
    ASSERT_TRUE((*op)->Consume(row).ok());
  }
  options.cancel->RequestCancel();
  auto result = (*op)->Finish();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST(OperatorCancelTest, CancelUnwindLatencyBounded) {
  // A controller cancelling mid-stream must see the query thread unwind
  // quickly — the per-row poll guarantees bounded observation latency.
  const auto rows = Dataset(200000);
  ScratchDir scratch;
  StorageEnv env;
  TopKOptions options = SmallOptions(&env, scratch.str());
  options.cancel = std::make_shared<CancellationToken>();
  auto op = MakeTopKOperator(TopKAlgorithm::kHistogram, options);
  ASSERT_TRUE(op.ok());

  std::atomic<bool> unwound{false};
  Status final_status;
  std::thread query([&] {
    for (const Row& row : rows) {
      final_status = (*op)->Consume(row);
      if (!final_status.ok()) break;
    }
    unwound.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  Stopwatch cancel_watch;
  options.cancel->RequestCancel("controller");
  query.join();
  // Generous bound for loaded CI machines, but a bound: seconds, not the
  // minutes an unobserved cancel would take on a large input.
  EXPECT_LT(cancel_watch.ElapsedSeconds(), 5.0);
  ASSERT_TRUE(unwound.load());
  EXPECT_EQ(final_status.code(), StatusCode::kCancelled);
}

// --------------------------------------------- retry/pool classification

TEST(CancelledRetryTest, TrippedTokenFailsFastWithoutAttempt) {
  MetricsCounter* cancelled_ops =
      GlobalMetrics().GetCounter("io.cancelled_ops");
  MetricsCounter* attempts = GlobalMetrics().GetCounter("io.retry.attempts");
  const uint64_t cancelled_before = cancelled_ops->value();
  const uint64_t attempts_before = attempts->value();

  CancellationToken token;
  token.RequestCancel("gone");
  RetryBudget budget(10.0, 0.1);
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.cancel = &token;
  policy.retry_budget = &budget;
  int calls = 0;
  Random rng(1);
  Status status = RetryOp(policy, "spill write", &rng, [&] {
    ++calls;
    return Status::OK();
  });
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  EXPECT_EQ(calls, 0);  // storage never touched
  EXPECT_EQ(budget.tokens(), 10.0);  // no budget withdrawal
  EXPECT_EQ(cancelled_ops->value(), cancelled_before + 1);
  EXPECT_EQ(attempts->value(), attempts_before);  // zero retries
}

TEST(CancelledRetryTest, CancelDuringBackoffStopsRetrying) {
  MetricsCounter* attempts = GlobalMetrics().GetCounter("io.retry.attempts");
  const uint64_t attempts_before = attempts->value();
  CancellationToken token;
  RetryPolicy policy;
  policy.max_attempts = 100;
  policy.initial_backoff_nanos = uint64_t{10} * 1'000'000'000;  // 10s
  policy.max_backoff_nanos = uint64_t{10} * 1'000'000'000;
  policy.cancel = &token;
  int calls = 0;
  Random rng(1);
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    token.RequestCancel("impatient");
  });
  Stopwatch watch;
  Status status = RetryOp(policy, "flaky read", &rng, [&] {
    ++calls;
    return Status::Unavailable("hiccup");
  });
  canceller.join();
  // The interruptible backoff woke on the cancel instead of sleeping 10s.
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  EXPECT_EQ(calls, 1);
  EXPECT_LT(watch.ElapsedSeconds(), 8.0);
  EXPECT_EQ(attempts->value(), attempts_before + 1);
}

TEST(CancelledRetryTest, CancelledIsNotRetryable) {
  EXPECT_FALSE(IsRetryable(Status::Cancelled("stop")));
  EXPECT_FALSE(IsRetryable(Status::DeadlineExceeded("late")));
  EXPECT_TRUE(IsRetryable(Status::Unavailable("hiccup")));
}

TEST(OperatorCancelTest, CancelRacingBackgroundPoolWork) {
  // Cancellation lands while the background I/O pool has work in flight
  // (spill writes, prefetch reads). The query must unwind cleanly with no
  // leaked in-flight blocks; run under tools/run_sanitized.sh thread for
  // the race coverage.
  MetricsCounter* blocks_cancelled =
      GlobalMetrics().GetCounter("io.prefetch.blocks_cancelled");
  const uint64_t blocks_cancelled_before = blocks_cancelled->value();
  const auto rows = Dataset(60000);
  for (int round = 0; round < 3; ++round) {
    SCOPED_TRACE(round);
    ScratchDir scratch;
    StorageEnv env;
    TopKOptions options = SmallOptions(&env, scratch.str());
    options.io_background_threads = 2;
    options.enable_io_prefetch = true;
    options.merge_fan_in = 4;  // force intermediate merges with prefetch
    options.cancel = std::make_shared<CancellationToken>();
    auto op = MakeTopKOperator(TopKAlgorithm::kTraditionalExternal, options);
    ASSERT_TRUE(op.ok());
    Status final_status;
    std::thread query([&] {
      for (const Row& row : rows) {
        final_status = (*op)->Consume(row);
        if (!final_status.ok()) return;
      }
      auto result = (*op)->Finish();
      final_status = result.status();
    });
    // Stagger the cancel so different rounds catch different phases
    // (consume, spill, merge).
    std::this_thread::sleep_for(std::chrono::milliseconds(5 + 25 * round));
    options.cancel->RequestCancel("race");
    query.join();
    // Either the query beat the cancel or it unwound with the token's
    // status — both are correct; crashing or deadlocking is not.
    if (!final_status.ok()) {
      EXPECT_EQ(final_status.code(), StatusCode::kCancelled)
          << final_status.ToString();
    }
    op->reset();  // teardown with the token still tripped must be clean
  }
  // Abandoned in-flight prefetch blocks are accounted as deliberately
  // cancelled, not leaked (counter is cumulative; >= is all we can pin).
  EXPECT_GE(blocks_cancelled->value(), blocks_cancelled_before);
}

// ----------------------------------------------------- keep-for-resume

TEST(KeepForResumeTest, HistogramCancelMidConsumeResumesPrefix) {
  const auto rows = Dataset(30000);
  constexpr size_t kCancelAt = 20000;
  const auto expected = ReferenceTopK(
      std::vector<Row>(rows.begin(), rows.begin() + kCancelAt), 500, 0,
      SortDirection::kAscending);
  ScratchDir scratch;
  StorageEnv env;
  TopKOptions options = SmallOptions(&env, scratch.str());
  options.manifest_filename = kManifest;
  options.on_cancel = OnCancelPolicy::kKeepForResume;
  options.cancel = std::make_shared<CancellationToken>();
  {
    auto op = HistogramTopK::Make(options);
    ASSERT_TRUE(op.ok());
    for (size_t i = 0; i < kCancelAt; ++i) {
      ASSERT_TRUE((*op)->Consume(rows[i]).ok());
    }
    ASSERT_TRUE((*op)->is_external());
    options.cancel->RequestCancel("preempted");
    EXPECT_EQ((*op)->Consume(rows[kCancelAt]).code(), StatusCode::kCancelled);
  }
  // The cancel handoff left a durable manifest behind.
  ASSERT_TRUE(std::filesystem::exists(scratch.str() + "/" + kManifest));
  TopKOptions resume_options = options;
  resume_options.cancel = nullptr;
  auto resumed = ResumeTopKOperator(TopKAlgorithm::kHistogram, resume_options);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  auto result = (*resumed)->Finish();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Exactly the top-k of the prefix the query consumed before preemption.
  ExpectSameRows(expected, *result);
}

TEST(KeepForResumeTest, TraditionalCancelBeforeFinishResumesFull) {
  const auto rows = Dataset(30000);
  const auto expected =
      ReferenceTopK(rows, 500, 0, SortDirection::kAscending);
  ScratchDir scratch;
  StorageEnv env;
  TopKOptions options = SmallOptions(&env, scratch.str());
  options.manifest_filename = kManifest;
  options.on_cancel = OnCancelPolicy::kKeepForResume;
  options.cancel = std::make_shared<CancellationToken>();
  {
    auto op = TraditionalExternalTopK::Make(options);
    ASSERT_TRUE(op.ok());
    for (const Row& row : rows) {
      ASSERT_TRUE((*op)->Consume(row).ok());
    }
    options.cancel->RequestCancel("preempted at the finish line");
    auto result = (*op)->Finish();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  }
  TopKOptions resume_options = options;
  resume_options.cancel = nullptr;
  auto resumed =
      ResumeTopKOperator(TopKAlgorithm::kTraditionalExternal, resume_options);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  auto result = (*resumed)->Finish();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectSameRows(expected, *result);
}

TEST(KeepForResumeTest, OptimizedCancelMidInputReplaysTail) {
  const auto rows = Dataset(30000);
  const auto expected =
      ReferenceTopK(rows, 500, 0, SortDirection::kAscending);
  constexpr size_t kCancelAt = 17000;
  ScratchDir scratch;
  StorageEnv env;
  TopKOptions options = SmallOptions(&env, scratch.str());
  options.manifest_filename = kManifest;
  options.on_cancel = OnCancelPolicy::kKeepForResume;
  options.checkpoint_input_every_rows = 5000;
  options.cancel = std::make_shared<CancellationToken>();
  {
    auto op = OptimizedExternalTopK::Make(options);
    ASSERT_TRUE(op.ok());
    for (size_t i = 0; i < kCancelAt; ++i) {
      ASSERT_TRUE((*op)->Consume(rows[i]).ok());
    }
    options.cancel->RequestCancel("preempted");
    EXPECT_EQ((*op)->Consume(rows[kCancelAt]).code(), StatusCode::kCancelled);
  }
  TopKOptions resume_options = options;
  resume_options.cancel = nullptr;
  auto resumed = OptimizedExternalTopK::ResumeFromManifest(resume_options);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  // The cancel handoff checkpointed at the cancel point itself, so the
  // replay starts exactly where the preempted query stopped.
  ASSERT_TRUE((*resumed)->resume_accepts_input());
  EXPECT_EQ((*resumed)->resume_input_offset(), kCancelAt);
  for (size_t i = (*resumed)->resume_input_offset(); i < rows.size(); ++i) {
    ASSERT_TRUE((*resumed)->Consume(rows[i]).ok());
  }
  auto result = (*resumed)->Finish();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Tail replay on top of the restored runs: full-input answer.
  ExpectSameRows(expected, *result);
}

TEST(KeepForResumeTest, ReleasePolicyDropsSpillState) {
  const auto rows = Dataset(30000);
  ScratchDir scratch;
  StorageEnv env;
  TopKOptions options = SmallOptions(&env, scratch.str());
  options.manifest_filename = kManifest;
  // Default policy: a cancelled query's spill state is released.
  options.cancel = std::make_shared<CancellationToken>();
  {
    auto op = MakeTopKOperator(TopKAlgorithm::kHistogram, options);
    ASSERT_TRUE(op.ok());
    for (size_t i = 0; i < 20000; ++i) {
      ASSERT_TRUE((*op)->Consume(rows[i]).ok());
    }
    options.cancel->RequestCancel();
    EXPECT_EQ((*op)->Consume(rows[20000]).code(), StatusCode::kCancelled);
  }
  // The spill manager owned the directory and cleaned it on destruction.
  EXPECT_FALSE(std::filesystem::exists(scratch.str() + "/" + kManifest));
}

// --------------------------------------------------- suspend error paths

TEST(SuspendErrorTest, SuspendAfterLatchedErrorSurfacesThatError) {
  // A query that died of a real storage error and is then asked to
  // suspend must report the storage error — the actionable cause — not a
  // generic precondition failure.
  const auto rows = Dataset(30000);
  ScratchDir scratch;
  StorageEnv env;
  FaultProfile profile;
  profile.torn_write_rate = 1.0;  // every spill write is torn: permanent
  profile.seed = 3;
  env.SetFaultProfile(profile);
  TopKOptions options = SmallOptions(&env, scratch.str());
  options.manifest_filename = kManifest;
  auto op = MakeTopKOperator(TopKAlgorithm::kTraditionalExternal, options);
  ASSERT_TRUE(op.ok());
  Status consume_status;
  for (const Row& row : rows) {
    consume_status = (*op)->Consume(row);
    if (!consume_status.ok()) break;
  }
  ASSERT_FALSE(consume_status.ok());
  ASSERT_FALSE(IsCancellation(consume_status.code()));
  Status suspend_status = (*op)->Suspend();
  EXPECT_EQ(suspend_status.code(), consume_status.code());
  EXPECT_EQ(suspend_status.message(), consume_status.message());
}

TEST(SuspendErrorTest, ExplicitSuspendOverridesTrippedToken) {
  // Suspend IS the cancel handler in a coordinator that preempts queries:
  // the tripped token must not veto the durable handoff it prompted.
  const auto rows = Dataset(30000);
  const auto expected =
      ReferenceTopK(rows, 500, 0, SortDirection::kAscending);
  ScratchDir scratch;
  StorageEnv env;
  TopKOptions options = SmallOptions(&env, scratch.str());
  options.manifest_filename = kManifest;
  options.cancel = std::make_shared<CancellationToken>();
  {
    auto op = MakeTopKOperator(TopKAlgorithm::kHistogram, options);
    ASSERT_TRUE(op.ok());
    for (const Row& row : rows) {
      ASSERT_TRUE((*op)->Consume(row).ok());
    }
    options.cancel->RequestCancel("preempt, keep state");
    ASSERT_TRUE((*op)->Suspend().ok());
  }
  TopKOptions resume_options = options;
  resume_options.cancel = nullptr;
  auto resumed = ResumeTopKOperator(TopKAlgorithm::kHistogram, resume_options);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  auto result = (*resumed)->Finish();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectSameRows(expected, *result);
}

}  // namespace
}  // namespace topk
