/// Unit tests for the process-wide memory arbiter: lease accounting, the
/// pressure ladder, hard-pressure admission control, responder callbacks,
/// chunked lease growth, and deterministic allocation-fault injection.

#include "common/resource_arbiter.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <new>
#include <utility>
#include <vector>

namespace topk {
namespace {

constexpr size_t kChunk = 256 * 1024;  // mirrors kLeaseChunkBytes

MemoryArbiter::Options BudgetOptions(size_t budget) {
  MemoryArbiter::Options options;
  options.budget_bytes = budget;
  return options;
}

TEST(MemoryArbiterTest, AccountingOnlyByDefault) {
  MemoryArbiter arbiter;  // budget 0: grants always succeed
  EXPECT_EQ(arbiter.budget_bytes(), 0u);
  auto lease = arbiter.Acquire("test", 1 << 20);
  ASSERT_TRUE(lease.ok()) << lease.status().ToString();
  EXPECT_EQ(arbiter.granted_bytes(), size_t{1} << 20);
  EXPECT_EQ(arbiter.peak_bytes(), size_t{1} << 20);
  EXPECT_EQ(arbiter.pressure(), MemoryPressure::kOk);
  lease->Release();
  EXPECT_EQ(arbiter.granted_bytes(), 0u);
  EXPECT_EQ(arbiter.peak_bytes(), size_t{1} << 20);  // peak survives release
  EXPECT_EQ(arbiter.denial_count(), 0u);
}

TEST(MemoryArbiterTest, BudgetDenialNamesTheBudget) {
  MemoryArbiter arbiter(BudgetOptions(1000));
  auto lease = arbiter.Acquire("greedy", 2000);
  ASSERT_FALSE(lease.ok());
  EXPECT_EQ(lease.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(lease.status().message().find("(mem_budget_bytes=1000)"),
            std::string::npos)
      << lease.status().ToString();
  EXPECT_NE(lease.status().message().find("greedy"), std::string::npos);
  EXPECT_EQ(arbiter.denial_count(), 1u);
  EXPECT_EQ(arbiter.granted_bytes(), 0u);
}

TEST(MemoryArbiterTest, PressureLadderTransitions) {
  MemoryArbiter arbiter(BudgetOptions(100000));  // soft at 75k, hard at 95k
  auto lease = arbiter.Acquire("ladder", 70000);
  ASSERT_TRUE(lease.ok());
  EXPECT_EQ(arbiter.pressure(), MemoryPressure::kOk);
  ASSERT_TRUE(lease->Grow(10000).ok());  // 80k
  EXPECT_EQ(arbiter.pressure(), MemoryPressure::kSoft);
  ASSERT_TRUE(lease->Grow(16000).ok());  // 96k
  EXPECT_EQ(arbiter.pressure(), MemoryPressure::kHard);
  lease->Shrink(30000);  // 66k
  EXPECT_EQ(arbiter.pressure(), MemoryPressure::kOk);
}

TEST(MemoryArbiterTest, HardPressureRefusesNewLeasesButAllowsGrowth) {
  MemoryArbiter arbiter(BudgetOptions(100000));
  auto holder = arbiter.Acquire("holder", 96000);
  ASSERT_TRUE(holder.ok());
  ASSERT_EQ(arbiter.pressure(), MemoryPressure::kHard);

  // A new lease — even a zero-byte bootstrap — is fail-fasted.
  auto newcomer = arbiter.Acquire("newcomer", 0);
  ASSERT_FALSE(newcomer.ok());
  EXPECT_EQ(newcomer.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(newcomer.status().message().find("hard pressure"),
            std::string::npos)
      << newcomer.status().ToString();

  // The in-flight holder may still grow to the full budget...
  EXPECT_TRUE(holder->Grow(4000).ok());  // exactly 100k
  // ...but not past it.
  Status over = holder->Grow(1);
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.code(), StatusCode::kResourceExhausted);
}

TEST(MemoryArbiterTest, RespondersSeeEveryTransition) {
  MemoryArbiter arbiter(BudgetOptions(100000));
  std::vector<MemoryPressure> seen;
  const auto id = arbiter.AddPressureResponder(
      [&seen](MemoryPressure level) { seen.push_back(level); });

  auto lease = arbiter.Acquire("resp", 80000);  // ok -> soft
  ASSERT_TRUE(lease.ok());
  ASSERT_TRUE(lease->Grow(16000).ok());  // soft -> hard
  lease->Release();                      // hard -> ok
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], MemoryPressure::kSoft);
  EXPECT_EQ(seen[1], MemoryPressure::kHard);
  EXPECT_EQ(seen[2], MemoryPressure::kOk);

  arbiter.RemovePressureResponder(id);
  auto again = arbiter.Acquire("resp2", 80000);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(seen.size(), 3u);  // removed responder stays silent
}

TEST(MemoryArbiterTest, NthGrantDenied) {
  MemoryArbiter arbiter;
  MemFaultProfile profile;
  profile.deny_nth = 3;
  arbiter.SetFaultProfile(profile);

  EXPECT_TRUE(arbiter.Acquire("a", 10).ok());
  EXPECT_TRUE(arbiter.Acquire("b", 10).ok());
  auto third = arbiter.Acquire("c", 10);
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kOutOfMemory);
  EXPECT_NE(third.status().message().find("injected allocation failure"),
            std::string::npos)
      << third.status().ToString();
  EXPECT_EQ(arbiter.faults_injected(), 1u);
  EXPECT_TRUE(arbiter.Acquire("d", 10).ok());  // only the nth is denied
}

TEST(MemoryArbiterTest, ProbabilisticDenialIsDeterministic) {
  MemFaultProfile profile;
  profile.deny_rate = 0.5;
  profile.seed = 7;

  auto run = [&profile]() {
    MemoryArbiter arbiter;
    arbiter.SetFaultProfile(profile);
    std::vector<bool> denied;
    for (int i = 0; i < 100; ++i) {
      denied.push_back(!arbiter.Acquire("p", 1).ok());
    }
    return denied;
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first, second);
  const size_t denials =
      static_cast<size_t>(std::count(first.begin(), first.end(), true));
  EXPECT_GT(denials, 0u);
  EXPECT_LT(denials, 100u);
}

TEST(MemoryArbiterTest, ThrowModeThrowsBadAlloc) {
  MemoryArbiter arbiter;
  MemFaultProfile profile;
  profile.deny_nth = 1;
  profile.throw_bad_alloc = true;
  arbiter.SetFaultProfile(profile);
  EXPECT_THROW({ auto lease = arbiter.Acquire("boom", 1); }, std::bad_alloc);
  EXPECT_EQ(arbiter.faults_injected(), 1u);
  EXPECT_EQ(arbiter.granted_bytes(), 0u);  // the denied grant charged nothing
}

TEST(MemFaultProfileTest, ParseRoundTrip) {
  auto profile = MemFaultProfile::Parse("deny=0.25,nth=5,seed=9,mode=throw");
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  EXPECT_DOUBLE_EQ(profile->deny_rate, 0.25);
  EXPECT_EQ(profile->deny_nth, 5u);
  EXPECT_EQ(profile->seed, 9u);
  EXPECT_TRUE(profile->throw_bad_alloc);
  EXPECT_TRUE(profile->enabled());

  auto reparsed = MemFaultProfile::Parse(profile->ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_DOUBLE_EQ(reparsed->deny_rate, profile->deny_rate);
  EXPECT_EQ(reparsed->deny_nth, profile->deny_nth);
  EXPECT_EQ(reparsed->seed, profile->seed);
  EXPECT_EQ(reparsed->throw_bad_alloc, profile->throw_bad_alloc);
}

TEST(MemFaultProfileTest, ParseRejectsBadSpecs) {
  EXPECT_EQ(MemFaultProfile::Parse("bogus=1").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(MemFaultProfile::Parse("deny=1.5").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(MemFaultProfile::Parse("mode=explode").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(MemFaultProfile::Parse("nth=abc").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(MemFaultProfile::Parse("deny").status().code(),
            StatusCode::kInvalidArgument);
  auto empty = MemFaultProfile::Parse("");
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(empty->enabled());
}

TEST(MemoryLeaseTest, EnsureAtLeastGrowsInChunks) {
  MemoryArbiter arbiter;
  auto lease = arbiter.Acquire("chunked", 0);
  ASSERT_TRUE(lease.ok());
  const uint64_t grants_after_acquire = arbiter.grant_count();

  ASSERT_TRUE(lease->EnsureAtLeast(1).ok());
  EXPECT_EQ(lease->bytes(), kChunk);
  EXPECT_EQ(arbiter.grant_count(), grants_after_acquire + 1);

  // Growth within the already-leased chunk is free: no arbiter round.
  ASSERT_TRUE(lease->EnsureAtLeast(kChunk - 1).ok());
  ASSERT_TRUE(lease->EnsureAtLeast(kChunk).ok());
  EXPECT_EQ(arbiter.grant_count(), grants_after_acquire + 1);
  EXPECT_EQ(lease->bytes(), kChunk);

  // One byte past the chunk boundary costs exactly one more chunk.
  ASSERT_TRUE(lease->EnsureAtLeast(kChunk + 1).ok());
  EXPECT_EQ(lease->bytes(), 2 * kChunk);
  EXPECT_EQ(arbiter.grant_count(), grants_after_acquire + 2);
}

TEST(MemoryLeaseTest, ShrinkToKeepsTwoChunksOfHysteresis) {
  MemoryArbiter arbiter;
  auto lease = arbiter.Acquire("hysteresis", 4 * kChunk);
  ASSERT_TRUE(lease.ok());

  // Two+ chunks of slack beyond the rounded target are returned.
  lease->ShrinkTo(kChunk + 1);  // rounds to 2 chunks; 4 >= 2 + 2 slack
  EXPECT_EQ(lease->bytes(), 2 * kChunk);

  // Within two chunks of the rounded target: hysteresis, no churn. This
  // is the replacement-selection steady state — EnsureAtLeast overshoots
  // by one chunk, the next spill dips back under — which must not cost an
  // arbiter round per row.
  lease->ShrinkTo(kChunk);  // rounds to 1 chunk; 2 < 1 + 2 slack
  EXPECT_EQ(lease->bytes(), 2 * kChunk);

  lease->ShrinkTo(0);  // 2 >= 0 + 2 slack: released entirely
  EXPECT_EQ(lease->bytes(), 0u);
  EXPECT_EQ(arbiter.granted_bytes(), 0u);
}

TEST(MemoryLeaseTest, DetachedLeaseNoops) {
  MemoryLease lease;
  EXPECT_FALSE(lease.attached());
  EXPECT_TRUE(lease.Grow(1 << 20).ok());
  EXPECT_TRUE(lease.EnsureAtLeast(1 << 20).ok());
  lease.Shrink(123);
  lease.ShrinkTo(0);
  lease.Release();
  EXPECT_EQ(lease.bytes(), 0u);
}

TEST(MemoryLeaseTest, MoveTransfersTheReservation) {
  MemoryArbiter arbiter;
  auto lease = arbiter.Acquire("mover", 1000);
  ASSERT_TRUE(lease.ok());
  MemoryLease moved = std::move(*lease);
  EXPECT_FALSE(lease->attached());
  EXPECT_TRUE(moved.attached());
  EXPECT_EQ(moved.bytes(), 1000u);
  EXPECT_EQ(arbiter.granted_bytes(), 1000u);
  moved.Release();
  EXPECT_EQ(arbiter.granted_bytes(), 0u);
}

TEST(MemoryLeaseTest, ReleasesOnDestruction) {
  MemoryArbiter arbiter;
  {
    auto lease = arbiter.Acquire("raii", 4096);
    ASSERT_TRUE(lease.ok());
    EXPECT_EQ(arbiter.granted_bytes(), 4096u);
  }
  EXPECT_EQ(arbiter.granted_bytes(), 0u);
}

TEST(MemoryArbiterTest, ResetClearsCountersAndRearmsBudget) {
  MemoryArbiter arbiter(BudgetOptions(1000));
  (void)arbiter.Acquire("denied", 2000);  // one denial
  EXPECT_EQ(arbiter.denial_count(), 1u);

  arbiter.Reset(size_t{1} << 20);
  EXPECT_EQ(arbiter.budget_bytes(), size_t{1} << 20);
  EXPECT_EQ(arbiter.denial_count(), 0u);
  EXPECT_EQ(arbiter.grant_count(), 0u);
  EXPECT_EQ(arbiter.faults_injected(), 0u);
  EXPECT_TRUE(arbiter.Acquire("now-fits", 2000).ok());
}

}  // namespace
}  // namespace topk
