#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace topk {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::IoError("disk").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::OutOfMemory("mem").code(), StatusCode::kOutOfMemory);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("y").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Corruption("z").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::ResourceExhausted("r").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Cancelled("c").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::DeadlineExceeded("late").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Unknown("u").code(), StatusCode::kUnknown);
  EXPECT_EQ(Status::Unavailable("hiccup").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::IoError("disk").message(), "disk");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::IoError("disk full").ToString(), "IoError: disk full");
  // Unavailable is the transient (retryable) class — distinct from the
  // permanent IoError in name as well as code.
  EXPECT_EQ(Status::Unavailable("blip").ToString(), "Unavailable: blip");
  // The two caller-initiated terminal codes of a cancelled query.
  EXPECT_EQ(Status::Cancelled("stop").ToString(), "Cancelled: stop");
  EXPECT_EQ(Status::DeadlineExceeded("late").ToString(),
            "DeadlineExceeded: late");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::IoError("a"), Status::IoError("a"));
  EXPECT_FALSE(Status::IoError("a") == Status::IoError("b"));
  EXPECT_FALSE(Status::IoError("a") == Status::Corruption("a"));
}

Status ReturnIfError(bool fail) {
  TOPK_RETURN_NOT_OK(fail ? Status::IoError("inner") : Status::OK());
  return Status::Corruption("not reached on failure");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_EQ(ReturnIfError(true).code(), StatusCode::kIoError);
  EXPECT_EQ(ReturnIfError(false).code(), StatusCode::kCorruption);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  TOPK_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalf(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(UseHalf(7, &out).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace topk
