/// The transient-fault retry layer: Status classification, backoff shape,
/// the RetryOp loop (success-after-transients, exhaustion, deadline), and
/// the file decorators against scripted StorageEnv faults. Only
/// Unavailable may ever be retried — permanent errors must surface on the
/// first attempt, unchanged.

#include "io/retry.h"

#include <gtest/gtest.h>

#include <thread>

#include "common/random.h"
#include "obs/metrics.h"
#include "tests/test_util.h"

namespace topk {
namespace {

using testing_util::ScratchDir;

/// Fast policy so tests spend microseconds, not milliseconds, sleeping.
RetryPolicy FastPolicy(int max_attempts = 4) {
  RetryPolicy policy;
  policy.max_attempts = max_attempts;
  policy.initial_backoff_nanos = 1'000;  // 1 us
  policy.max_backoff_nanos = 100'000;
  return policy;
}

TEST(RetryClassificationTest, OnlyUnavailableIsRetryable) {
  EXPECT_TRUE(IsRetryable(Status::Unavailable("hiccup")));
  EXPECT_FALSE(IsRetryable(Status::OK()));
  EXPECT_FALSE(IsRetryable(Status::IoError("disk gone")));
  EXPECT_FALSE(IsRetryable(Status::Corruption("bad checksum")));
  EXPECT_FALSE(IsRetryable(Status::ResourceExhausted("quota")));
  EXPECT_FALSE(IsRetryable(Status::NotFound("missing")));
  EXPECT_FALSE(IsRetryable(Status::InvalidArgument("bad")));
}

TEST(RetryBackoffTest, GrowsExponentiallyAndCaps) {
  RetryPolicy policy;
  policy.initial_backoff_nanos = 1'000'000;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_nanos = 4'000'000;
  policy.jitter = 0.0;  // deterministic for this test
  Random rng(1);
  EXPECT_EQ(RetryBackoffNanos(policy, 1, &rng), 1'000'000);
  EXPECT_EQ(RetryBackoffNanos(policy, 2, &rng), 2'000'000);
  EXPECT_EQ(RetryBackoffNanos(policy, 3, &rng), 4'000'000);
  EXPECT_EQ(RetryBackoffNanos(policy, 4, &rng), 4'000'000);  // capped
  EXPECT_EQ(RetryBackoffNanos(policy, 10, &rng), 4'000'000);
}

TEST(RetryBackoffTest, JitterStaysWithinBounds) {
  RetryPolicy policy;
  policy.initial_backoff_nanos = 1'000'000;
  policy.jitter = 0.5;
  Random rng(7);
  bool saw_below = false, saw_above = false;
  for (int i = 0; i < 200; ++i) {
    const int64_t backoff = RetryBackoffNanos(policy, 1, &rng);
    EXPECT_GE(backoff, 500'000);
    EXPECT_LE(backoff, 1'500'000);
    saw_below |= backoff < 1'000'000;
    saw_above |= backoff > 1'000'000;
  }
  // The jitter actually spreads in both directions.
  EXPECT_TRUE(saw_below);
  EXPECT_TRUE(saw_above);
}

TEST(RetryOpTest, SucceedsAfterTransients) {
  MetricsCounter* attempts = GlobalMetrics().GetCounter("io.retry.attempts");
  const uint64_t attempts_before = attempts->value();
  Random rng(1);
  int calls = 0;
  Status status = RetryOp(FastPolicy(), "test op", &rng, [&] {
    ++calls;
    return calls < 3 ? Status::Unavailable("hiccup") : Status::OK();
  });
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(attempts->value(), attempts_before + 2);
}

TEST(RetryOpTest, PermanentErrorSurfacesImmediately) {
  Random rng(1);
  int calls = 0;
  Status status = RetryOp(FastPolicy(), "test op", &rng, [&] {
    ++calls;
    return Status::IoError("disk on fire");
  });
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_EQ(calls, 1);  // never retried
  EXPECT_EQ(status.message(), "disk on fire");  // message untouched
}

TEST(RetryOpTest, ExhaustionRecordsAttemptCount) {
  MetricsCounter* exhausted = GlobalMetrics().GetCounter("io.retry.exhausted");
  const uint64_t exhausted_before = exhausted->value();
  Random rng(1);
  int calls = 0;
  Status status = RetryOp(FastPolicy(3), "write blk", &rng, [&] {
    ++calls;
    return Status::Unavailable("still down");
  });
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 3);
  // The latched error must record how many retries were burned.
  EXPECT_NE(status.message().find("write blk failed after 3 attempts"),
            std::string::npos)
      << status.ToString();
  EXPECT_NE(status.message().find("still down"), std::string::npos);
  EXPECT_EQ(exhausted->value(), exhausted_before + 1);
}

TEST(RetryOpTest, DeadlineBoundsTotalWait) {
  RetryPolicy policy = FastPolicy(1000);
  policy.initial_backoff_nanos = 2'000'000;  // 2 ms per retry
  policy.deadline_nanos = 5'000'000;         // but only 5 ms overall
  Random rng(1);
  int calls = 0;
  Status status = RetryOp(policy, "test op", &rng, [&] {
    ++calls;
    return Status::Unavailable("still down");
  });
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_NE(status.message().find("retry deadline exceeded"),
            std::string::npos)
      << status.ToString();
  EXPECT_LT(calls, 1000);  // the deadline cut the attempt budget short
}

TEST(RetryOpTest, NoRetriesPolicySingleAttempt) {
  Random rng(1);
  int calls = 0;
  Status status = RetryOp(RetryPolicy::NoRetries(), "test op", &rng, [&] {
    ++calls;
    return Status::Unavailable("hiccup");
  });
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 1);
}

TEST(RetryBudgetTest, WithdrawsUntilEmptyAndRefillsOnSuccess) {
  RetryBudget budget(/*capacity=*/2.0, /*refill_per_success=*/0.5);
  EXPECT_EQ(budget.capacity(), 2.0);
  EXPECT_TRUE(budget.TryWithdraw());
  EXPECT_TRUE(budget.TryWithdraw());
  EXPECT_FALSE(budget.TryWithdraw());  // empty: the caller must not retry
  // Two successes refill one whole token.
  budget.RecordSuccess();
  budget.RecordSuccess();
  EXPECT_TRUE(budget.TryWithdraw());
  EXPECT_FALSE(budget.TryWithdraw());
}

TEST(RetryBudgetTest, RefillSaturatesAtCapacity) {
  RetryBudget budget(/*capacity=*/1.0, /*refill_per_success=*/1.0);
  for (int i = 0; i < 10; ++i) budget.RecordSuccess();
  EXPECT_EQ(budget.tokens(), 1.0);  // never above capacity
  EXPECT_TRUE(budget.TryWithdraw());
  EXPECT_FALSE(budget.TryWithdraw());
}

TEST(RetryBudgetTest, ResetRearmsTheBucket) {
  RetryBudget budget(/*capacity=*/1.0, /*refill_per_success=*/0.0);
  EXPECT_TRUE(budget.TryWithdraw());
  EXPECT_FALSE(budget.TryWithdraw());
  budget.Reset(/*capacity=*/3.0, /*refill_per_success=*/0.0);
  EXPECT_EQ(budget.tokens(), 3.0);
  EXPECT_TRUE(budget.TryWithdraw());
}

TEST(RetryBudgetTest, GlobalBudgetIsAProcessSingleton) {
  ASSERT_NE(GlobalRetryBudget(), nullptr);
  EXPECT_EQ(GlobalRetryBudget(), GlobalRetryBudget());
}

TEST(RetryBudgetTest, RetryOpStopsWhenBudgetRunsDry) {
  MetricsCounter* withdrawn =
      GlobalMetrics().GetCounter("io.retry.budget_withdrawn");
  MetricsCounter* exhausted =
      GlobalMetrics().GetCounter("io.retry.budget_exhausted");
  const uint64_t withdrawn_before = withdrawn->value();
  const uint64_t exhausted_before = exhausted->value();

  RetryBudget budget(/*capacity=*/2.0, /*refill_per_success=*/0.0);
  RetryPolicy policy = FastPolicy(10);
  policy.retry_budget = &budget;
  Random rng(1);
  int calls = 0;
  Status status = RetryOp(policy, "test op", &rng, [&] {
    ++calls;
    return Status::Unavailable("brownout");
  });
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  // Two retries were admitted (tokens), the third was refused — three
  // calls total, not ten.
  EXPECT_EQ(calls, 3);
  EXPECT_NE(status.message().find("retry budget exhausted"),
            std::string::npos)
      << status.ToString();
  EXPECT_EQ(withdrawn->value(), withdrawn_before + 2);
  EXPECT_EQ(exhausted->value(), exhausted_before + 1);
}

TEST(RetryBudgetTest, SuccessesRefillTheSharedBucket) {
  RetryBudget budget(/*capacity=*/1.0, /*refill_per_success=*/1.0);
  RetryPolicy policy = FastPolicy(4);
  policy.retry_budget = &budget;
  Random rng(1);
  // First op: one failure, one admitted retry, then success (which
  // refills the token it spent).
  int calls = 0;
  Status status = RetryOp(policy, "op a", &rng, [&] {
    ++calls;
    return calls < 2 ? Status::Unavailable("hiccup") : Status::OK();
  });
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(budget.tokens(), 1.0);
  // Second op can therefore retry again.
  calls = 0;
  status = RetryOp(policy, "op b", &rng, [&] {
    ++calls;
    return calls < 2 ? Status::Unavailable("hiccup") : Status::OK();
  });
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(JitterRngTest, PerThreadStreamsAreIndependent) {
  // Same seed, two threads: each thread gets its own deterministic stream
  // (seeded seed ^ hash(thread id)), so concurrent retries never back off
  // in lockstep.
  Random* here = PerThreadJitterRng(0x7e77);
  ASSERT_NE(here, nullptr);
  EXPECT_EQ(here, PerThreadJitterRng(0x7e77));  // cached per thread
  uint64_t other_draw = 0;
  Random* other_ptr = nullptr;
  std::thread worker([&] {
    other_ptr = PerThreadJitterRng(0x7e77);
    other_draw = other_ptr->NextUint64();
  });
  worker.join();
  EXPECT_NE(other_ptr, here);
  EXPECT_NE(other_draw, here->NextUint64());
}

TEST(JitterRngTest, DistinctSeedsGetDistinctStreams) {
  Random* a = PerThreadJitterRng(1);
  Random* b = PerThreadJitterRng(2);
  EXPECT_NE(a, b);
}

TEST(RetryOpTest, DeadlineEmitsMetric) {
  MetricsCounter* deadline =
      GlobalMetrics().GetCounter("io.retry.deadline_exceeded");
  const uint64_t deadline_before = deadline->value();
  RetryPolicy policy = FastPolicy(1000);
  policy.initial_backoff_nanos = 2'000'000;
  policy.deadline_nanos = 5'000'000;
  Random rng(1);
  Status status = RetryOp(policy, "test op", &rng,
                          [&] { return Status::Unavailable("still down"); });
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(deadline->value(), deadline_before + 1);
}

TEST(RetryingFileTest, WriteRidesThroughScriptedTransients) {
  ScratchDir scratch;
  StorageEnv env;
  const std::string path = scratch.str() + "/f";
  auto base = env.NewWritableFile(path);
  ASSERT_TRUE(base.ok());
  auto file = MaybeWrapWithRetries(std::move(*base), path, FastPolicy());

  env.InjectTransientWriteFailures(2);  // next two Appends fail, then heal
  EXPECT_TRUE(file->Append("hello ").ok());
  EXPECT_TRUE(file->Append("world").ok());
  EXPECT_TRUE(file->Flush().ok());
  EXPECT_TRUE(file->Close().ok());

  auto in = env.NewSequentialFile(path);
  ASSERT_TRUE(in.ok());
  char buf[32];
  size_t got = 0;
  ASSERT_TRUE((*in)->Read(sizeof(buf), buf, &got).ok());
  EXPECT_EQ(std::string(buf, got), "hello world");
}

TEST(RetryingFileTest, ReadRidesThroughScriptedTransients) {
  ScratchDir scratch;
  StorageEnv env;
  const std::string path = scratch.str() + "/f";
  {
    auto out = env.NewWritableFile(path);
    ASSERT_TRUE(out.ok());
    ASSERT_TRUE((*out)->Append("payload").ok());
    ASSERT_TRUE((*out)->Close().ok());
  }
  auto base = env.NewSequentialFile(path);
  ASSERT_TRUE(base.ok());
  auto file = MaybeWrapWithRetries(std::move(*base), path, FastPolicy());
  env.InjectTransientReadFailures(3);
  char buf[32];
  size_t got = 0;
  ASSERT_TRUE(file->Read(sizeof(buf), buf, &got).ok());
  EXPECT_EQ(std::string(buf, got), "payload");
}

TEST(RetryingFileTest, ExhaustedTransientsSurfaceUnavailable) {
  ScratchDir scratch;
  StorageEnv env;
  const std::string path = scratch.str() + "/f";
  auto base = env.NewWritableFile(path);
  ASSERT_TRUE(base.ok());
  auto file = MaybeWrapWithRetries(std::move(*base), path, FastPolicy(2));
  env.InjectTransientWriteFailures(10);  // more faults than attempts
  Status status = file->Append("data");
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_NE(status.message().find("failed after 2 attempts"),
            std::string::npos)
      << status.ToString();
}

TEST(RetryingFileTest, NthCallPermanentInjectionIsNotRetried) {
  // The legacy Nth-call injection produces kIoError: the retry layer must
  // pass it through on the first attempt (existing failure-injection
  // semantics survive retries being on by default).
  ScratchDir scratch;
  StorageEnv env;
  const std::string path = scratch.str() + "/f";
  auto base = env.NewWritableFile(path);
  ASSERT_TRUE(base.ok());
  auto file = MaybeWrapWithRetries(std::move(*base), path, FastPolicy());
  env.InjectWriteFailure(1);
  Status status = file->Append("data");
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  // And the next call goes through (the injection fired exactly once).
  EXPECT_TRUE(file->Append("data").ok());
  EXPECT_TRUE(file->Close().ok());
}

TEST(RetryingFileTest, PassThroughWhenRetriesDisabled) {
  ScratchDir scratch;
  StorageEnv env;
  const std::string path = scratch.str() + "/f";
  auto base = env.NewWritableFile(path);
  ASSERT_TRUE(base.ok());
  WritableFile* raw = base->get();
  auto file =
      MaybeWrapWithRetries(std::move(*base), path, RetryPolicy::NoRetries());
  EXPECT_EQ(file.get(), raw);  // no decorator inserted
  env.InjectTransientWriteFailures(1);
  EXPECT_EQ(file->Append("data").code(), StatusCode::kUnavailable);
  EXPECT_TRUE(file->Close().ok());
}

}  // namespace
}  // namespace topk
