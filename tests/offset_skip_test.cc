#include "extensions/offset_skip.h"

#include <unistd.h>

#include <algorithm>
#include <filesystem>

#include <gtest/gtest.h>

#include "common/random.h"
#include "tests/test_util.h"
#include "topk/histogram_topk.h"

namespace topk {
namespace {

using testing_util::ExpectSameRows;
using testing_util::MaterializeDataset;
using testing_util::ReferenceTopK;
using testing_util::RunOperator;
using testing_util::ScratchDir;

class OffsetSkipTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto spill = SpillManager::Create(&env_, scratch_.str() + "/spill");
    ASSERT_TRUE(spill.ok());
    spill_ = std::move(*spill);
  }

  /// Writes sorted `keys` as one run with a tiny index stride so even small
  /// tests exercise seeks.
  void WriteIndexedRun(const std::vector<double>& keys,
                       uint64_t index_stride) {
    RowComparator cmp;
    const uint64_t run_id = next_run_++;
    auto writer = RunWriter::Create(
        &env_, scratch_.str() + "/run" + std::to_string(run_id), run_id,
        cmp, kDefaultBlockBytes, index_stride);
    ASSERT_TRUE(writer.ok());
    for (double key : keys) {
      ASSERT_TRUE((*writer)->Append(Row(key, next_id_++)).ok());
    }
    auto meta = (*writer)->Finish();
    ASSERT_TRUE(meta.ok());
    spill_->AddRun(*meta);
  }

  ScratchDir scratch_;
  StorageEnv env_;
  std::unique_ptr<SpillManager> spill_;
  uint64_t next_run_ = 0;
  uint64_t next_id_ = 0;
};

TEST_F(OffsetSkipTest, RunIndexEntriesRecorded) {
  std::vector<double> keys(100);
  for (int i = 0; i < 100; ++i) keys[i] = i;
  WriteIndexedRun(keys, /*index_stride=*/10);
  const std::vector<RunMeta> runs = spill_->runs();
  const RunMeta& meta = runs[0];
  ASSERT_EQ(meta.index.size(), 10u);
  EXPECT_EQ(meta.index[0].key, 9.0);
  EXPECT_EQ(meta.index[0].rows, 10u);
  EXPECT_EQ(meta.index[9].rows, 100u);
  EXPECT_LT(meta.index[0].bytes, meta.index[9].bytes);
}

TEST_F(OffsetSkipTest, PlanRespectsOffsetUpperBound) {
  // Two runs of 0..99 and 100..199; offset 50 can safely skip at most the
  // rows provably below the 50th key.
  std::vector<double> a(100), b(100);
  for (int i = 0; i < 100; ++i) {
    a[i] = i;
    b[i] = 100 + i;
  }
  WriteIndexedRun(a, 10);
  WriteIndexedRun(b, 10);
  auto plan = PlanOffsetSkip(spill_->runs(), 50, RowComparator());
  EXPECT_TRUE(plan.has_skip);
  EXPECT_LE(plan.rows_skipped, 50u);
  EXPECT_GT(plan.rows_skipped, 0u);
  // All skipped rows must come from run a (run b starts at key 100).
  EXPECT_EQ(plan.skip_rows[1], 0u);
}

TEST_F(OffsetSkipTest, PlanZeroOffsetSkipsNothing) {
  std::vector<double> keys(50);
  for (int i = 0; i < 50; ++i) keys[i] = i;
  WriteIndexedRun(keys, 10);
  auto plan = PlanOffsetSkip(spill_->runs(), 0, RowComparator());
  EXPECT_FALSE(plan.has_skip);
  EXPECT_EQ(plan.rows_skipped, 0u);
}

TEST_F(OffsetSkipTest, PlanWithoutIndexesSkipsNothing) {
  std::vector<double> keys(50);
  for (int i = 0; i < 50; ++i) keys[i] = i;
  WriteIndexedRun(keys, /*index_stride=*/0);  // no index
  auto plan = PlanOffsetSkip(spill_->runs(), 25, RowComparator());
  EXPECT_FALSE(plan.has_skip);
}

TEST_F(OffsetSkipTest, MergeWithSkipMatchesPlainMerge) {
  Random rng(1);
  std::vector<double> all;
  for (int run = 0; run < 5; ++run) {
    std::vector<double> keys;
    for (int i = 0; i < 400; ++i) keys.push_back(rng.NextDouble());
    std::sort(keys.begin(), keys.end());
    all.insert(all.end(), keys.begin(), keys.end());
    WriteIndexedRun(keys, 16);
  }
  std::sort(all.begin(), all.end());

  for (uint64_t offset : {1ULL, 17ULL, 250ULL, 1000ULL, 1999ULL}) {
    MergeOptions options;
    options.skip = offset;
    options.limit = 100;
    std::vector<Row> out;
    OffsetSkipPlan plan;
    auto stats = MergeRunsWithOffsetSkip(
        spill_.get(), spill_->runs(), RowComparator(), options,
        [&](Row&& row) {
          out.push_back(std::move(row));
          return Status::OK();
        },
        &plan);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    const size_t expect_n =
        std::min<size_t>(100, all.size() - std::min<size_t>(offset, all.size()));
    ASSERT_EQ(out.size(), expect_n) << "offset " << offset;
    for (size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i].key, all[offset + i]) << "offset " << offset;
    }
    if (offset >= 100) {
      EXPECT_TRUE(plan.has_skip) << "offset " << offset;
      EXPECT_GT(plan.rows_skipped, 0u);
      // Seeked rows were never read from storage.
      EXPECT_EQ(stats->rows_skipped, offset);
    }
  }
}

TEST_F(OffsetSkipTest, SkipReducesRowsRead) {
  Random rng(2);
  for (int run = 0; run < 4; ++run) {
    std::vector<double> keys;
    for (int i = 0; i < 1000; ++i) keys.push_back(rng.NextDouble());
    std::sort(keys.begin(), keys.end());
    WriteIndexedRun(keys, 32);
  }
  MergeOptions options;
  options.skip = 3000;
  options.limit = 50;

  auto count_reads = [&](bool use_skip) {
    std::vector<Row> out;
    MergeStats stats;
    auto sink = [&](Row&& row) {
      out.push_back(std::move(row));
      return Status::OK();
    };
    if (use_skip) {
      auto r = MergeRunsWithOffsetSkip(spill_.get(), spill_->runs(),
                                       RowComparator(), options, sink);
      EXPECT_TRUE(r.ok());
      return r->rows_read;
    }
    auto r = MergeRuns(spill_.get(), spill_->runs(), RowComparator(),
                       options, sink);
    EXPECT_TRUE(r.ok());
    return r->rows_read;
  };

  const uint64_t plain = count_reads(false);
  const uint64_t seek = count_reads(true);
  EXPECT_GT(plain, 3000u);
  EXPECT_LT(seek, plain / 2);  // most of the offset prefix never read
}

TEST_F(OffsetSkipTest, DescendingDirection) {
  RowComparator cmp(SortDirection::kDescending);
  auto writer = RunWriter::Create(&env_, scratch_.str() + "/desc", 100, cmp,
                                  kDefaultBlockBytes, /*index_stride=*/8);
  ASSERT_TRUE(writer.ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE((*writer)->Append(Row(200.0 - i, i)).ok());
  }
  auto meta = (*writer)->Finish();
  ASSERT_TRUE(meta.ok());
  spill_->AddRun(*meta);

  MergeOptions options;
  options.skip = 100;
  options.limit = 10;
  std::vector<Row> out;
  auto stats = MergeRunsWithOffsetSkip(spill_.get(), spill_->runs(), cmp,
                                       options, [&](Row&& row) {
                                         out.push_back(std::move(row));
                                         return Status::OK();
                                       });
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(out.size(), 10u);
  EXPECT_EQ(out[0].key, 100.0);  // 101st largest of 200..1
  EXPECT_LT(stats->rows_read, 150u);
}

TEST_F(OffsetSkipTest, OperatorLevelOffsetSkipMatchesPlain) {
  ScratchDir op_scratch;
  StorageEnv env;
  DatasetSpec spec;
  spec.WithRows(40000).WithSeed(21);
  auto rows = MaterializeDataset(spec);
  const uint64_t k = 500, offset = 5000;
  auto expected = ReferenceTopK(rows, k, offset, SortDirection::kAscending);

  for (bool use_skip : {true, false}) {
    TopKOptions options;
    options.k = k;
    options.offset = offset;
    options.memory_limit_bytes = 16 * 1024;
    options.histogram_offset_skip = use_skip;
    options.env = &env;
    options.spill_dir = op_scratch.str() + (use_skip ? "/skip" : "/plain");
    auto op = HistogramTopK::Make(options);
    ASSERT_TRUE(op.ok());
    auto result = RunOperator(op->get(), rows);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectSameRows(expected, *result);
    if (use_skip) {
      EXPECT_GT((*op)->stats().offset_rows_seek_skipped, 0u);
    } else {
      EXPECT_EQ((*op)->stats().offset_rows_seek_skipped, 0u);
    }
  }
}

/// Property sweep: random runs, random offsets — seek-merge must equal the
/// flattened sorted reference in every case.
class OffsetSkipPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OffsetSkipPropertyTest, SeekMergeEqualsReference) {
  const uint64_t seed = GetParam();
  Random rng(seed * 31 + 5);
  ScratchDir scratch;
  StorageEnv env;
  auto spill_result = SpillManager::Create(&env, scratch.str() + "/s");
  ASSERT_TRUE(spill_result.ok());
  auto& spill = *spill_result;

  RowComparator cmp;
  std::vector<double> all;
  uint64_t id = 0;
  const int num_runs = 1 + static_cast<int>(rng.NextUint64(8));
  for (int r = 0; r < num_runs; ++r) {
    std::vector<double> keys;
    const size_t n = rng.NextUint64(600);
    for (size_t i = 0; i < n; ++i) keys.push_back(rng.NextDouble());
    std::sort(keys.begin(), keys.end());
    all.insert(all.end(), keys.begin(), keys.end());
    auto writer = RunWriter::Create(
        &env, scratch.str() + "/r" + std::to_string(r), r, cmp,
        kDefaultBlockBytes, /*index_stride=*/1 + rng.NextUint64(64));
    ASSERT_TRUE(writer.ok());
    for (double key : keys) {
      ASSERT_TRUE((*writer)->Append(Row(key, id++)).ok());
    }
    auto meta = (*writer)->Finish();
    ASSERT_TRUE(meta.ok());
    spill->AddRun(*meta);
  }
  std::sort(all.begin(), all.end());

  MergeOptions options;
  options.skip = rng.NextUint64(all.size() + 10);
  options.limit = rng.NextUint64(200);
  std::vector<Row> out;
  auto stats = MergeRunsWithOffsetSkip(spill.get(), spill->runs(), cmp,
                                       options, [&](Row&& row) {
                                         out.push_back(std::move(row));
                                         return Status::OK();
                                       });
  ASSERT_TRUE(stats.ok());
  const size_t start = std::min<size_t>(options.skip, all.size());
  const size_t expect_n = std::min<size_t>(options.limit, all.size() - start);
  ASSERT_EQ(out.size(), expect_n);
  for (size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i].key, all[start + i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OffsetSkipPropertyTest,
                         ::testing::Range<uint64_t>(0, 15));

}  // namespace
}  // namespace topk
