#include "obs/metrics.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.h"

namespace topk {
namespace {

TEST(MetricsCounterTest, AddAndReset) {
  MetricsCounter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(MetricsGaugeTest, SetAddReset) {
  MetricsGauge gauge;
  gauge.Set(10);
  gauge.Add(-3);
  EXPECT_EQ(gauge.value(), 7);
  gauge.Reset();
  EXPECT_EQ(gauge.value(), 0);
}

TEST(LatencyHistogramTest, BucketBoundaries) {
  // Bucket 0 holds exact zeros; bucket i >= 1 holds [2^(i-1), 2^i).
  EXPECT_EQ(LatencyHistogram::BucketIndex(0), 0u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(1), 1u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(2), 2u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(3), 2u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(4), 3u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(7), 3u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(8), 4u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(1023), 10u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(1024), 11u);

  EXPECT_EQ(LatencyHistogram::BucketLowerBound(0), 0u);
  EXPECT_EQ(LatencyHistogram::BucketLowerBound(1), 1u);
  EXPECT_EQ(LatencyHistogram::BucketLowerBound(2), 2u);
  EXPECT_EQ(LatencyHistogram::BucketLowerBound(3), 4u);
  EXPECT_EQ(LatencyHistogram::BucketLowerBound(11), 1024u);

  // Every bucket boundary sample lands in the bucket whose lower bound it
  // is.
  for (size_t i = 1; i < 63; ++i) {
    EXPECT_EQ(LatencyHistogram::BucketIndex(
                  LatencyHistogram::BucketLowerBound(i)),
              i)
        << "bucket " << i;
  }
}

TEST(LatencyHistogramTest, SnapshotStats) {
  LatencyHistogram histogram;
  LatencyHistogram::Snapshot empty = histogram.snapshot();
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.min_nanos, 0);
  EXPECT_EQ(empty.max_nanos, 0);
  EXPECT_EQ(empty.Percentile(50), 0.0);
  EXPECT_EQ(empty.mean_nanos(), 0.0);

  histogram.Record(100);
  histogram.Record(200);
  histogram.Record(300);
  LatencyHistogram::Snapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.sum_nanos, 600u);
  EXPECT_EQ(snap.min_nanos, 100);
  EXPECT_EQ(snap.max_nanos, 300);
  EXPECT_DOUBLE_EQ(snap.mean_nanos(), 200.0);
  // Percentiles are bucket estimates clamped into [min, max].
  EXPECT_GE(snap.Percentile(50), 100.0);
  EXPECT_LE(snap.Percentile(50), 300.0);
  EXPECT_LE(snap.Percentile(50), snap.Percentile(99));
  EXPECT_EQ(snap.Percentile(100), 300.0);
}

TEST(LatencyHistogramTest, NegativeSamplesClampToZero) {
  LatencyHistogram histogram;
  histogram.Record(-5);
  LatencyHistogram::Snapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.min_nanos, 0);
  EXPECT_EQ(snap.buckets[0], 1u);
}

TEST(LatencyHistogramTest, ResetRestoresEmptyState) {
  LatencyHistogram histogram;
  histogram.Record(1000);
  histogram.Reset();
  LatencyHistogram::Snapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.min_nanos, 0);
  EXPECT_EQ(snap.max_nanos, 0);
  histogram.Record(7);
  snap = histogram.snapshot();
  EXPECT_EQ(snap.min_nanos, 7);
  EXPECT_EQ(snap.max_nanos, 7);
}

TEST(MetricsRegistryTest, HandlesAreStableAndNamed) {
  MetricsRegistry registry;
  MetricsCounter* counter = registry.GetCounter("test.counter");
  EXPECT_EQ(counter, registry.GetCounter("test.counter"));
  counter->Add(5);
  registry.GetGauge("test.gauge")->Set(-3);
  registry.GetHistogram("test.hist")->Record(1000);

  const std::string json = registry.ToJson();
  auto parsed = JsonValue::Parse(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << json;
  const JsonValue* counters = parsed->Find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* value = counters->Find("test.counter");
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(value->number_value(), 5.0);
  const JsonValue* gauges = parsed->Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(gauges->Find("test.gauge")->number_value(), -3.0);
  const JsonValue* histograms = parsed->Find("histograms");
  ASSERT_NE(histograms, nullptr);
  const JsonValue* hist = histograms->Find("test.hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->Find("count")->number_value(), 1.0);
  EXPECT_EQ(hist->Find("min_nanos")->number_value(), 1000.0);

  registry.ResetAll();
  EXPECT_EQ(counter->value(), 0u);
}

TEST(MetricsRegistryTest, ConcurrentRecording) {
  // Hammer one registry from many threads: registration races, counter
  // increments, and histogram records must all be thread-safe (run under
  // TSan via tools/run_sanitized.sh).
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIterations = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      MetricsCounter* counter = registry.GetCounter("shared.counter");
      LatencyHistogram* histogram = registry.GetHistogram("shared.hist");
      MetricsGauge* gauge = registry.GetGauge("shared.gauge");
      for (int i = 0; i < kIterations; ++i) {
        counter->Add(1);
        histogram->Record(t * 1000 + i);
        gauge->Set(i);
        if (i % 500 == 0) {
          // Export concurrently with recording.
          registry.ToJson();
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(registry.GetCounter("shared.counter")->value(),
            static_cast<uint64_t>(kThreads) * kIterations);
  LatencyHistogram::Snapshot snap =
      registry.GetHistogram("shared.hist")->snapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kIterations);
  EXPECT_EQ(snap.min_nanos, 0);
  EXPECT_EQ(snap.max_nanos, (kThreads - 1) * 1000 + kIterations - 1);
}

TEST(JsonWriterTest, EscapesAndNesting) {
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("text");
  writer.String("a\"b\\c\nd\x01");
  writer.Key("list");
  writer.BeginArray();
  writer.Number(int64_t{-1});
  writer.Number(uint64_t{18446744073709551615ull});
  writer.Bool(true);
  writer.Null();
  writer.EndArray();
  writer.EndObject();
  const std::string json = writer.TakeString();
  EXPECT_EQ(json,
            "{\"text\":\"a\\\"b\\\\c\\nd\\u0001\","
            "\"list\":[-1,18446744073709551615,true,null]}");
  auto parsed = JsonValue::Parse(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("text")->string_value(), "a\"b\\c\nd\x01");
  EXPECT_EQ(parsed->Find("list")->array().size(), 4u);
}

TEST(JsonValueTest, ParseErrors) {
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,]").ok());
  EXPECT_FALSE(JsonValue::Parse("{} trailing").ok());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
  EXPECT_FALSE(JsonValue::Parse("nul").ok());
  auto ok = JsonValue::Parse("  {\"a\": [1, 2.5, \"\\u0041\"]} ");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->Find("a")->array()[2].string_value(), "A");
}

}  // namespace
}  // namespace topk
