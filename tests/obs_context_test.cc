#include "obs/obs_context.h"

#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "tests/test_util.h"
#include "topk/histogram_topk.h"

namespace topk {
namespace {

using testing_util::MaterializeDataset;
using testing_util::RunOperator;
using testing_util::ScratchDir;

/// One spilling histogram query against its own StorageEnv, recorded into
/// its own ObsContext. Row count varies per query so two concurrent
/// queries are distinguishable in every metric.
struct QueryRun {
  std::shared_ptr<ObsContext> obs;
  IoStats::Snapshot io;
  OperatorStats stats;
};

QueryRun RunScopedQuery(const std::string& spill_dir, uint64_t rows,
                        uint64_t seed) {
  QueryRun run;
  run.obs = ObsContext::Create("q" + std::to_string(seed));
  StorageEnv env;
  TopKOptions options;
  options.k = 2000;
  options.memory_limit_bytes = 16 * 1024;  // forces the external path
  options.env = &env;
  options.spill_dir = spill_dir;
  options.obs = run.obs;
  auto op = HistogramTopK::Make(options);
  EXPECT_TRUE(op.ok()) << op.status().ToString();
  DatasetSpec spec;
  spec.WithRows(rows).WithSeed(seed);
  auto rows_in = MaterializeDataset(spec);
  auto result = RunOperator(op->get(), rows_in);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  run.obs->MarkQueryComplete();
  run.io = env.stats()->snapshot();
  run.stats = (*op)->stats();
  return run;
}

uint64_t ScopedHistogramCount(const QueryRun& run, const char* name) {
  return run.obs->metrics().GetHistogram(name)->snapshot().count;
}

uint64_t ScopedCounter(const QueryRun& run, const char* name) {
  return run.obs->metrics().GetCounter(name)->value();
}

TEST(ObsContextTest, ConcurrentQueriesGetDisjointScopedMetrics) {
  ScratchDir scratch;
  const RegistrySnapshot global_baseline = GlobalMetrics().TakeSnapshot();

  // Two spilling queries of different sizes, truly concurrent: per-query
  // metrics must reflect each query's own StorageEnv exactly, while the
  // global registry aggregates both.
  QueryRun a, b;
  std::thread ta([&] { a = RunScopedQuery(scratch.str() + "/a", 30000, 1); });
  std::thread tb([&] { b = RunScopedQuery(scratch.str() + "/b", 60000, 2); });
  ta.join();
  tb.join();

  ASSERT_GT(a.stats.rows_spilled, 0u);
  ASSERT_GT(b.stats.rows_spilled, 0u);

  // Every storage call against query A's env — and no other call — shows
  // up in A's scoped latency histograms. That is disjointness measured at
  // the source of truth, not just "the numbers differ".
  EXPECT_EQ(ScopedHistogramCount(a, "storage.write_nanos"),
            a.io.write_calls);
  EXPECT_EQ(ScopedHistogramCount(b, "storage.write_nanos"),
            b.io.write_calls);
  EXPECT_EQ(ScopedHistogramCount(a, "storage.read_nanos"), a.io.read_calls);
  EXPECT_EQ(ScopedHistogramCount(b, "storage.read_nanos"), b.io.read_calls);
  EXPECT_GT(a.io.write_calls, 0u);
  EXPECT_GT(b.io.write_calls, 0u);
  EXPECT_NE(a.io.write_calls, b.io.write_calls);

  // Cutoff-update counts are per-query work; both queries did some and
  // each scoped registry saw only its own.
  EXPECT_GT(ScopedCounter(a, "filter.cutoff_updates"), 0u);
  EXPECT_GT(ScopedCounter(b, "filter.cutoff_updates"), 0u);
  EXPECT_EQ(ScopedCounter(a, "filter.cutoff_updates"),
            a.obs->cutoff_events().size() + a.obs->cutoff_events_dropped());
  EXPECT_EQ(ScopedCounter(b, "filter.cutoff_updates"),
            b.obs->cutoff_events().size() + b.obs->cutoff_events_dropped());

  // The global registry aggregated both queries: its delta over the run
  // equals the sum of the two scoped registries for per-query metrics.
  const RegistrySnapshot global_delta =
      GlobalMetrics().TakeSnapshot().DeltaSince(global_baseline);
  const auto it = global_delta.histograms.find("storage.write_nanos");
  ASSERT_NE(it, global_delta.histograms.end());
  EXPECT_EQ(it->second.count, a.io.write_calls + b.io.write_calls);
  const auto cutoff_it = global_delta.counters.find("filter.cutoff_updates");
  ASSERT_NE(cutoff_it, global_delta.counters.end());
  EXPECT_EQ(cutoff_it->second, ScopedCounter(a, "filter.cutoff_updates") +
                                   ScopedCounter(b, "filter.cutoff_updates"));
}

TEST(ObsContextTest, ProfileSelfTimesTelescopeToTotal) {
  ScratchDir scratch;
  QueryRun run = RunScopedQuery(scratch.str() + "/q", 30000, 3);
  const ProfileReport report = BuildProfileReport(*run.obs);

  EXPECT_GT(report.total_wall_nanos, 0);
  EXPECT_EQ(report.phases.wall_nanos, report.total_wall_nanos);

  // Foreground self times sum exactly to the root's wall (the report
  // clamps negatives, so "exactly" can only be missed downward — allow the
  // acceptance criterion's 5%).
  int64_t self_sum = 0;
  const std::function<void(const ProfilePhase&)> walk =
      [&](const ProfilePhase& phase) {
        self_sum += phase.self_nanos;
        for (const ProfilePhase& child : phase.children) walk(child);
      };
  walk(report.phases);
  EXPECT_GE(self_sum, report.total_wall_nanos * 95 / 100);
  EXPECT_LE(self_sum, report.total_wall_nanos);

  EXPECT_EQ(report.peak_memory_bytes, run.obs->peak_memory_bytes());
  EXPECT_GT(report.peak_spill_bytes, 0u);
  EXPECT_FALSE(report.cutoff_events.empty());
}

TEST(ObsContextTest, ReinstallingCurrentContextKeepsPhaseCursor) {
  auto obs = ObsContext::Create("nested");
  ObsScope outer(obs);
  PhaseScope phase("consume");
  {
    // An operator entry point re-installing the already-current context
    // must not reset the phase cursor to the root.
    ObsScope inner(obs);
    PhaseScope child("switch_to_external");
  }
  const ProfileReport report = BuildProfileReport(*obs);
  ASSERT_EQ(report.phases.children.size(), 1u);
  EXPECT_EQ(report.phases.children[0].name, "consume");
  ASSERT_EQ(report.phases.children[0].children.size(), 1u);
  EXPECT_EQ(report.phases.children[0].children[0].name,
            "switch_to_external");
}

TEST(ObsContextTest, PoolTasksInheritTheSpawningScope) {
  auto obs = ObsContext::Create("pool");
  {
    // The pool's destructor drains the queue, so every task ran by the
    // time the assertions below execute.
    ThreadPool pool(2);
    ObsScope scope(obs);
    for (int i = 0; i < 8; ++i) {
      pool.Schedule([] {
        static ObsCounter counter("test.obs.pool_task");
        counter.Add(1);
        ObsRecordIoWait(100);
      });
    }
  }
  EXPECT_EQ(obs->metrics().GetCounter("test.obs.pool_task")->value(), 8u);
  // Pool work lands under the background root, never the foreground tree.
  const ProfileReport report = BuildProfileReport(*obs);
  EXPECT_TRUE(report.phases.children.empty());
  EXPECT_GE(report.background.entered, 8u);
  EXPECT_GE(report.background.io_wait_nanos, 800);
}

TEST(ObsContextTest, TraceBufferCapDropsAndCounts) {
  Tracer& tracer = GlobalTracer();
  tracer.Clear();
  tracer.set_max_events_per_thread(16);
  tracer.Start();
  auto obs = ObsContext::Create("dropper");
  {
    ObsScope scope(obs);
    for (int i = 0; i < 64; ++i) {
      TraceInstant("test.obs.flood", "test");
    }
  }
  tracer.Stop();
  EXPECT_EQ(tracer.event_count(), 16u);
  EXPECT_EQ(tracer.dropped_count(), 48u);
  EXPECT_EQ(obs->metrics().GetCounter("obs.trace.events_dropped")->value(),
            48u);
  const ProfileReport report = BuildProfileReport(*obs);
  EXPECT_EQ(report.trace_events_dropped, 48u);
  // Restore the default cap; Clear() resets the dropped count.
  tracer.set_max_events_per_thread(262144);
  tracer.Clear();
  EXPECT_EQ(tracer.dropped_count(), 0u);
}

TEST(ObsContextTest, DeltaSinceSubtractsAccumulationsKeepsLevels) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Add(10);
  registry.GetGauge("g")->Set(7);
  registry.GetHistogram("h")->Record(100);
  const RegistrySnapshot baseline = registry.TakeSnapshot();

  registry.GetCounter("c")->Add(5);
  registry.GetGauge("g")->Set(3);
  registry.GetHistogram("h")->Record(200);
  registry.GetHistogram("h")->Record(400);
  const RegistrySnapshot delta =
      registry.TakeSnapshot().DeltaSince(baseline);

  EXPECT_EQ(delta.counters.at("c"), 5u);
  EXPECT_EQ(delta.gauges.at("g"), 3);  // level, not difference
  EXPECT_EQ(delta.histograms.at("h").count, 2u);
  EXPECT_EQ(delta.histograms.at("h").sum_nanos, 600u);

  // A metric born after the baseline appears whole.
  registry.GetCounter("late")->Add(2);
  EXPECT_EQ(registry.TakeSnapshot().DeltaSince(baseline).counters.at("late"),
            2u);

  // An interval with no samples zeroes the lifetime min/max instead of
  // reporting stale extremes.
  const RegistrySnapshot quiet =
      registry.TakeSnapshot().DeltaSince(registry.TakeSnapshot());
  EXPECT_EQ(quiet.histograms.at("h").count, 0u);
  EXPECT_EQ(quiet.histograms.at("h").min_nanos, 0);
  EXPECT_EQ(quiet.histograms.at("h").max_nanos, 0);
}

}  // namespace
}  // namespace topk
