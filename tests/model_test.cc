/// Validates the analytic model against the paper's published numbers
/// (Tables 1-5) and cross-checks it against the real operator.

#include "model/analytic_model.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "topk/histogram_topk.h"

namespace topk {
namespace {

AnalyticModelConfig Config(uint64_t input, uint64_t k, uint64_t memory,
                           uint64_t buckets) {
  AnalyticModelConfig config;
  config.input_rows = input;
  config.k = k;
  config.memory_rows = memory;
  config.buckets_per_run = buckets;
  return config;
}

// --- Table 1 anchors (top 5,000 of 1,000,000; memory 1,000; deciles) ---

TEST(AnalyticModelTest, Table1RunCountAndSpill) {
  auto result = RunAnalyticModel(Config(1000000, 5000, 1000, 9));
  // Paper: "only 39 runs are required containing less than 35,000 rows".
  EXPECT_EQ(result.total_runs, 39u);
  EXPECT_LT(result.total_rows_spilled, 35000u);
  ASSERT_TRUE(result.final_cutoff.has_value());
  EXPECT_NEAR(*result.final_cutoff, 0.0063, 0.0002);
}

TEST(AnalyticModelTest, Table1CutoffEstablishedAfterSixRuns) {
  auto result = RunAnalyticModel(Config(1000000, 5000, 1000, 9));
  ASSERT_GE(result.runs.size(), 8u);
  // Runs 1-6 run unfiltered; run 7 is the first with a cutoff (0.9).
  EXPECT_FALSE(result.runs[5].cutoff_before.has_value());
  ASSERT_TRUE(result.runs[6].cutoff_before.has_value());
  EXPECT_DOUBLE_EQ(*result.runs[6].cutoff_before, 0.9);
  // Paper Table 1: cutoff before run 8 is 0.72, before run 9 is 0.6.
  ASSERT_TRUE(result.runs[7].cutoff_before.has_value());
  EXPECT_NEAR(*result.runs[7].cutoff_before, 0.72, 1e-9);
  EXPECT_NEAR(*result.runs[8].cutoff_before, 0.6, 1e-9);
}

TEST(AnalyticModelTest, Table1RemainingInputTrace) {
  auto result = RunAnalyticModel(Config(1000000, 5000, 1000, 9));
  // Paper Table 1's "Remaining Input Rows" column for runs 7-9.
  EXPECT_EQ(result.runs[6].remaining_before, 994000u);
  EXPECT_EQ(result.runs[7].remaining_before, 992889u);
  EXPECT_EQ(result.runs[8].remaining_before, 991501u);
}

TEST(AnalyticModelTest, Table1DecileKeys) {
  auto result = RunAnalyticModel(Config(1000000, 5000, 1000, 9));
  // Run 1: deciles 0.1 .. 0.9.
  for (int d = 0; d < 9; ++d) {
    ASSERT_TRUE(result.runs[0].decile_keys[d].has_value());
    EXPECT_NEAR(*result.runs[0].decile_keys[d], 0.1 * (d + 1), 1e-9);
  }
  // Run 8 (cutoff 0.72): deciles 0.072, 0.144, ...; the 90% decile was
  // eliminated by the sharpened cutoff (empty cell in the paper's table).
  EXPECT_NEAR(*result.runs[7].decile_keys[0], 0.072, 1e-9);
  EXPECT_NEAR(*result.runs[7].decile_keys[7], 0.576, 1e-9);
  EXPECT_FALSE(result.runs[7].decile_keys[8].has_value());
}

// --- Table 2: varying histogram size ---

struct Table2Row {
  uint64_t buckets;
  uint64_t paper_runs;
  uint64_t paper_rows;
};

class Table2Test : public ::testing::TestWithParam<Table2Row> {};

TEST_P(Table2Test, MatchesPaperWithinTolerance) {
  const Table2Row& row = GetParam();
  auto result = RunAnalyticModel(Config(1000000, 5000, 1000, row.buckets));
  // Identical mechanics up to bucket-width rounding: within 2 runs / 7%.
  EXPECT_NEAR(static_cast<double>(result.total_runs),
              static_cast<double>(row.paper_runs), 2.0);
  EXPECT_NEAR(static_cast<double>(result.total_rows_spilled),
              static_cast<double>(row.paper_rows),
              0.07 * static_cast<double>(row.paper_rows));
}

INSTANTIATE_TEST_SUITE_P(
    PaperRows, Table2Test,
    ::testing::Values(Table2Row{0, 1000, 1000000}, Table2Row{1, 66, 62781},
                      Table2Row{5, 44, 39150}, Table2Row{10, 39, 34077},
                      Table2Row{20, 37, 31568}, Table2Row{50, 35, 30156},
                      Table2Row{100, 35, 29780},
                      Table2Row{1000, 35, 29258}),
    [](const ::testing::TestParamInfo<Table2Row>& info) {
      return "B" + std::to_string(info.param.buckets);
    });

TEST(AnalyticModelTest, Table2ZeroBucketsSpillsEverything) {
  auto result = RunAnalyticModel(Config(1000000, 5000, 1000, 0));
  EXPECT_EQ(result.total_runs, 1000u);
  EXPECT_EQ(result.total_rows_spilled, 1000000u);
  EXPECT_FALSE(result.final_cutoff.has_value());
}

TEST(AnalyticModelTest, Table2MinimalHistogramExact) {
  // B=1 is bit-exact against the paper: 66 runs, 62,781 rows, cutoff
  // 0.015625.
  auto result = RunAnalyticModel(Config(1000000, 5000, 1000, 1));
  EXPECT_EQ(result.total_runs, 66u);
  EXPECT_EQ(result.total_rows_spilled, 62781u);
  ASSERT_TRUE(result.final_cutoff.has_value());
  EXPECT_DOUBLE_EQ(*result.final_cutoff, 0.015625);
}

// --- Table 3: varying output size ---

struct Table3Row {
  uint64_t k;
  uint64_t paper_runs;
  uint64_t paper_rows;
};

class Table3Test : public ::testing::TestWithParam<Table3Row> {};

TEST_P(Table3Test, MatchesPaperWithinTolerance) {
  const Table3Row& row = GetParam();
  auto result = RunAnalyticModel(Config(1000000, row.k, 1000, 9));
  EXPECT_NEAR(static_cast<double>(result.total_runs),
              static_cast<double>(row.paper_runs),
              std::max(2.0, 0.03 * row.paper_runs));
  EXPECT_NEAR(static_cast<double>(result.total_rows_spilled),
              static_cast<double>(row.paper_rows),
              0.05 * static_cast<double>(row.paper_rows));
}

INSTANTIATE_TEST_SUITE_P(PaperRows, Table3Test,
                         ::testing::Values(Table3Row{2000, 20, 14858},
                                           Table3Row{5000, 39, 34077},
                                           Table3Row{10000, 67, 62072},
                                           Table3Row{20000, 113, 109016}),
                         [](const ::testing::TestParamInfo<Table3Row>& info) {
                           return "k" + std::to_string(info.param.k);
                         });

// --- Table 4 / Table 5: varying input size ---

TEST(AnalyticModelTest, Table4SmallInputsExact) {
  // Paper: N=6,000 -> 6 runs / 5,900 rows / cutoff 0.9.
  auto r6k = RunAnalyticModel(Config(6000, 5000, 1000, 9));
  EXPECT_EQ(r6k.total_runs, 6u);
  EXPECT_EQ(r6k.total_rows_spilled, 5900u);
  EXPECT_DOUBLE_EQ(*r6k.final_cutoff, 0.9);
  // N=20,000 -> 13 runs / 11,840 rows / cutoff 0.288.
  auto r20k = RunAnalyticModel(Config(20000, 5000, 1000, 9));
  EXPECT_EQ(r20k.total_runs, 13u);
  EXPECT_EQ(r20k.total_rows_spilled, 11840u);
  EXPECT_NEAR(*r20k.final_cutoff, 0.288, 1e-9);
}

TEST(AnalyticModelTest, Table4ScalingShape) {
  // The paper's headline scaling: doubling the input adds only a handful
  // of runs. N=1M -> 39 runs; N=2M -> 44; N=100M -> 71 (we allow +-1).
  auto r1m = RunAnalyticModel(Config(1000000, 5000, 1000, 9));
  auto r2m = RunAnalyticModel(Config(2000000, 5000, 1000, 9));
  auto r100m = RunAnalyticModel(Config(100000000, 5000, 1000, 9));
  EXPECT_NEAR(r1m.total_runs, 39.0, 1.0);
  EXPECT_NEAR(r2m.total_runs, 44.0, 1.0);
  EXPECT_NEAR(r100m.total_runs, 71.0, 1.0);
  EXPECT_LE(r2m.total_runs - r1m.total_runs, 6u);
  // >3 orders of magnitude less I/O than a full sort at N=100M.
  EXPECT_LT(r100m.total_rows_spilled, 100000000u / 1000u);
}

TEST(AnalyticModelTest, Table5MinimalHistogramExactSeries) {
  const struct {
    uint64_t input;
    uint64_t runs;
    uint64_t rows;
  } rows[] = {
      {6000, 6, 6000},     {10000, 10, 9500},   {20000, 15, 14500},
      {50000, 25, 24000},  {100000, 34, 32250}, {1000000, 66, 62781},
      {10000000, 100, 94999},
  };
  for (const auto& expected : rows) {
    auto result = RunAnalyticModel(Config(expected.input, 5000, 1000, 1));
    EXPECT_EQ(result.total_runs, expected.runs) << "N=" << expected.input;
    // +-1 row: the paper rounds the final partial run differently.
    EXPECT_NEAR(static_cast<double>(result.total_rows_spilled),
                static_cast<double>(expected.rows), 1.0)
        << "N=" << expected.input;
  }
}

TEST(AnalyticModelTest, RatioUsesDomainMaxWithoutCutoff) {
  auto result = RunAnalyticModel(Config(6000, 5000, 1000, 1));
  EXPECT_FALSE(result.final_cutoff.has_value());
  EXPECT_NEAR(result.ratio(), 1.2, 0.01);  // 1.0 / (5000/6000)
}

// --- baseline analysis (Sec 3.2.1's comparisons) ---

TEST(BaselineAnalysisTest, TraditionalSpillsEntireInput) {
  auto baselines = AnalyzeBaselines(Config(1000000, 5000, 1000, 9));
  EXPECT_EQ(baselines.traditional_rows_spilled, 1000000u);
}

TEST(BaselineAnalysisTest, OptimizedEarlyMergeCutoffAndSpill) {
  // 10 runs of 1,000 rows merged: cutoff = 5,000/10,000 = 0.5, so the
  // remaining 990,000 rows spill at rate 0.5 -> ~505,000 total (paper
  // Sec 3.2.1: "eliminate 1/2 of the remaining input immediately";
  // 12x more than the histogram algorithm's ~34k).
  auto baselines = AnalyzeBaselines(Config(1000000, 5000, 1000, 9));
  EXPECT_DOUBLE_EQ(baselines.optimized_cutoff, 0.5);
  EXPECT_NEAR(static_cast<double>(baselines.optimized_rows_spilled),
              10000 + 5000 + 495000, 100.0);
  auto histogram = RunAnalyticModel(Config(1000000, 5000, 1000, 9));
  const double vs_optimized =
      static_cast<double>(baselines.optimized_rows_spilled) /
      static_cast<double>(histogram.total_rows_spilled);
  const double vs_traditional =
      static_cast<double>(baselines.traditional_rows_spilled) /
      static_cast<double>(histogram.total_rows_spilled);
  EXPECT_NEAR(vs_optimized, 15.0, 3.5);     // paper: 12x
  EXPECT_NEAR(vs_traditional, 29.0, 2.0);   // paper: 28x
}

TEST(BaselineAnalysisTest, NoCutoffWhenInputSmallerThanK) {
  // Early merge cannot prove k rows: the optimized baseline degenerates
  // to spilling everything (plus its fruitless merge output).
  auto baselines = AnalyzeBaselines(Config(3000, 5000, 1000, 9));
  EXPECT_DOUBLE_EQ(baselines.optimized_cutoff, 1.0);
  EXPECT_GE(baselines.optimized_rows_spilled, 3000u);
}

// --- cross-check: model vs the real operator on real uniform data ---

TEST(AnalyticModelTest, ModelPredictsRealOperatorWithinFactor) {
  using testing_util::MaterializeDataset;
  using testing_util::RunOperator;
  using testing_util::ScratchDir;

  const uint64_t input = 200000, k = 2000;
  auto model = RunAnalyticModel(Config(input, k, 1000, 9));

  ScratchDir scratch;
  StorageEnv env;
  TopKOptions options;
  options.k = k;
  // ~1000 rows of memory: Row(48B) + overhead(32B + 32B heap) = 112.
  options.memory_limit_bytes = 1000 * 112;
  options.histogram_buckets_per_run = 9;
  options.env = &env;
  options.spill_dir = scratch.str();
  auto op = HistogramTopK::Make(options);
  ASSERT_TRUE(op.ok());
  DatasetSpec spec;
  spec.WithRows(input).WithSeed(12);
  auto rows = MaterializeDataset(spec);
  ASSERT_TRUE(RunOperator(op->get(), rows).ok());

  // The model idealizes run generation (load-sort-store, exact quantiles),
  // the operator uses replacement selection on random data — agreement
  // within 2x demonstrates the model captures the real behaviour.
  const double model_rows = static_cast<double>(model.total_rows_spilled);
  const double real_rows = static_cast<double>((*op)->stats().rows_spilled);
  EXPECT_LT(real_rows, 2.0 * model_rows);
  EXPECT_GT(real_rows, 0.4 * model_rows);
  // Both eliminate the overwhelming majority of the input.
  EXPECT_LT(real_rows, 0.2 * input);
}

}  // namespace
}  // namespace topk
