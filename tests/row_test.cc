#include "row/row.h"

#include <gtest/gtest.h>

#include "row/serialization.h"

namespace topk {
namespace {

TEST(RowTest, DefaultConstructed) {
  Row row;
  EXPECT_EQ(row.key, 0.0);
  EXPECT_EQ(row.id, 0u);
  EXPECT_TRUE(row.payload.empty());
}

TEST(RowTest, SerializedSizeCountsHeaderAndPayload) {
  Row row(1.5, 7, "abcde");
  EXPECT_EQ(row.SerializedSize(), kRowHeaderBytes + 5);
}

TEST(RowTest, MemoryFootprintGrowsWithPayload) {
  Row small(1.0, 1, "");
  Row big(1.0, 1, std::string(1000, 'x'));
  EXPECT_GT(big.MemoryFootprint(), small.MemoryFootprint() + 900);
}

TEST(RowComparatorTest, AscendingByKey) {
  RowComparator cmp(SortDirection::kAscending);
  EXPECT_TRUE(cmp.Less(Row(1.0, 0), Row(2.0, 0)));
  EXPECT_FALSE(cmp.Less(Row(2.0, 0), Row(1.0, 0)));
}

TEST(RowComparatorTest, DescendingByKey) {
  RowComparator cmp(SortDirection::kDescending);
  EXPECT_TRUE(cmp.Less(Row(2.0, 0), Row(1.0, 0)));
  EXPECT_FALSE(cmp.Less(Row(1.0, 0), Row(2.0, 0)));
}

TEST(RowComparatorTest, TiesBrokenByIdBothDirections) {
  for (auto dir : {SortDirection::kAscending, SortDirection::kDescending}) {
    RowComparator cmp(dir);
    EXPECT_TRUE(cmp.Less(Row(1.0, 1), Row(1.0, 2)));
    EXPECT_FALSE(cmp.Less(Row(1.0, 2), Row(1.0, 1)));
    EXPECT_FALSE(cmp.Less(Row(1.0, 1), Row(1.0, 1)));
  }
}

TEST(RowComparatorTest, KeyBeyondAscending) {
  RowComparator cmp(SortDirection::kAscending);
  EXPECT_TRUE(cmp.KeyBeyond(5.0, 4.0));
  EXPECT_FALSE(cmp.KeyBeyond(4.0, 4.0));  // ties are kept
  EXPECT_FALSE(cmp.KeyBeyond(3.0, 4.0));
}

TEST(RowComparatorTest, KeyBeyondDescending) {
  RowComparator cmp(SortDirection::kDescending);
  EXPECT_TRUE(cmp.KeyBeyond(3.0, 4.0));
  EXPECT_FALSE(cmp.KeyBeyond(4.0, 4.0));
  EXPECT_FALSE(cmp.KeyBeyond(5.0, 4.0));
}

TEST(RowComparatorTest, KeyLessFollowsDirection) {
  EXPECT_TRUE(RowComparator(SortDirection::kAscending).KeyLess(1.0, 2.0));
  EXPECT_TRUE(RowComparator(SortDirection::kDescending).KeyLess(2.0, 1.0));
}

TEST(RowComparatorTest, DirectionAccessor) {
  EXPECT_EQ(RowComparator(SortDirection::kDescending).direction(),
            SortDirection::kDescending);
  EXPECT_EQ(RowComparator().direction(), SortDirection::kAscending);
}

TEST(SerializationTest, RoundTrip) {
  Row in(3.25, 99, "payload bytes");
  std::string buf;
  SerializeRow(in, &buf);
  EXPECT_EQ(buf.size(), in.SerializedSize());

  Row out;
  size_t offset = 0;
  ASSERT_TRUE(DeserializeRow(buf.data(), buf.size(), &offset, &out).ok());
  EXPECT_EQ(offset, buf.size());
  EXPECT_EQ(out, in);
}

TEST(SerializationTest, RoundTripEmptyPayload) {
  Row in(-1.0, 0, "");
  std::string buf;
  SerializeRow(in, &buf);
  Row out;
  size_t offset = 0;
  ASSERT_TRUE(DeserializeRow(buf.data(), buf.size(), &offset, &out).ok());
  EXPECT_EQ(out, in);
}

TEST(SerializationTest, MultipleRowsSequential) {
  std::string buf;
  for (int i = 0; i < 10; ++i) {
    SerializeRow(Row(i * 0.5, i, std::string(i, 'a')), &buf);
  }
  size_t offset = 0;
  for (int i = 0; i < 10; ++i) {
    Row out;
    ASSERT_TRUE(DeserializeRow(buf.data(), buf.size(), &offset, &out).ok());
    EXPECT_EQ(out.key, i * 0.5);
    EXPECT_EQ(out.id, static_cast<uint64_t>(i));
    EXPECT_EQ(out.payload.size(), static_cast<size_t>(i));
  }
  EXPECT_EQ(offset, buf.size());
}

TEST(SerializationTest, TruncatedHeaderIsCorruption) {
  Row in(1.0, 2, "xyz");
  std::string buf;
  SerializeRow(in, &buf);
  Row out;
  size_t offset = 0;
  const Status status =
      DeserializeRow(buf.data(), kRowHeaderBytes - 1, &offset, &out);
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

TEST(SerializationTest, TruncatedPayloadIsCorruption) {
  Row in(1.0, 2, "xyz");
  std::string buf;
  SerializeRow(in, &buf);
  Row out;
  size_t offset = 0;
  const Status status =
      DeserializeRow(buf.data(), buf.size() - 1, &offset, &out);
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

TEST(SerializationTest, NegativeAndSpecialKeys) {
  for (double key : {-1e300, -0.0, 1e-300, 1e300}) {
    Row in(key, 1, "p");
    std::string buf;
    SerializeRow(in, &buf);
    Row out;
    size_t offset = 0;
    ASSERT_TRUE(DeserializeRow(buf.data(), buf.size(), &offset, &out).ok());
    EXPECT_EQ(out.key, key);
  }
}

}  // namespace
}  // namespace topk
