#include "row/row.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "row/serialization.h"

namespace topk {
namespace {

TEST(RowTest, DefaultConstructed) {
  Row row;
  EXPECT_EQ(row.key, 0.0);
  EXPECT_EQ(row.id, 0u);
  EXPECT_TRUE(row.payload.empty());
}

TEST(RowTest, SerializedSizeCountsHeaderAndPayload) {
  Row row(1.5, 7, "abcde");
  EXPECT_EQ(row.SerializedSize(), kRowHeaderBytes + 5);
}

TEST(RowTest, MemoryFootprintGrowsWithPayload) {
  Row small(1.0, 1, "");
  Row big(1.0, 1, std::string(1000, 'x'));
  EXPECT_GT(big.MemoryFootprint(), small.MemoryFootprint() + 900);
}

TEST(RowTest, MemoryFootprintChargesEveryHeapPayload) {
  // Regression: the footprint compared capacity against sizeof(std::string)
  // instead of the SSO capacity, so heap-allocated payloads between the two
  // (16..31 bytes under libstdc++) were charged zero heap bytes. Any
  // payload the string did NOT inline must cost at least its capacity plus
  // the allocator overhead.
  const size_t sso_capacity = std::string().capacity();
  const size_t base = Row(1.0, 1, "").MemoryFootprint();
  EXPECT_EQ(base, sizeof(Row));
  for (size_t size : {size_t{0}, size_t{8}, sso_capacity, sso_capacity + 1,
                      size_t{24}, size_t{31}, size_t{64}, size_t{1000}}) {
    Row row(1.0, 1, std::string(size, 'x'));
    if (size <= sso_capacity) {
      EXPECT_EQ(row.MemoryFootprint(), sizeof(Row)) << size;
    } else {
      EXPECT_GE(row.MemoryFootprint(),
                sizeof(Row) + size + Row::kPayloadHeapOverheadBytes)
          << size;
    }
  }
}

TEST(RowComparatorTest, AscendingByKey) {
  RowComparator cmp(SortDirection::kAscending);
  EXPECT_TRUE(cmp.Less(Row(1.0, 0), Row(2.0, 0)));
  EXPECT_FALSE(cmp.Less(Row(2.0, 0), Row(1.0, 0)));
}

TEST(RowComparatorTest, DescendingByKey) {
  RowComparator cmp(SortDirection::kDescending);
  EXPECT_TRUE(cmp.Less(Row(2.0, 0), Row(1.0, 0)));
  EXPECT_FALSE(cmp.Less(Row(1.0, 0), Row(2.0, 0)));
}

TEST(RowComparatorTest, TiesBrokenByIdBothDirections) {
  for (auto dir : {SortDirection::kAscending, SortDirection::kDescending}) {
    RowComparator cmp(dir);
    EXPECT_TRUE(cmp.Less(Row(1.0, 1), Row(1.0, 2)));
    EXPECT_FALSE(cmp.Less(Row(1.0, 2), Row(1.0, 1)));
    EXPECT_FALSE(cmp.Less(Row(1.0, 1), Row(1.0, 1)));
  }
}

TEST(RowComparatorTest, KeyBeyondAscending) {
  RowComparator cmp(SortDirection::kAscending);
  EXPECT_TRUE(cmp.KeyBeyond(5.0, 4.0));
  EXPECT_FALSE(cmp.KeyBeyond(4.0, 4.0));  // ties are kept
  EXPECT_FALSE(cmp.KeyBeyond(3.0, 4.0));
}

TEST(RowComparatorTest, KeyBeyondDescending) {
  RowComparator cmp(SortDirection::kDescending);
  EXPECT_TRUE(cmp.KeyBeyond(3.0, 4.0));
  EXPECT_FALSE(cmp.KeyBeyond(4.0, 4.0));
  EXPECT_FALSE(cmp.KeyBeyond(5.0, 4.0));
}

TEST(RowComparatorTest, KeyLessFollowsDirection) {
  EXPECT_TRUE(RowComparator(SortDirection::kAscending).KeyLess(1.0, 2.0));
  EXPECT_TRUE(RowComparator(SortDirection::kDescending).KeyLess(2.0, 1.0));
}

TEST(RowComparatorTest, DirectionAccessor) {
  EXPECT_EQ(RowComparator(SortDirection::kDescending).direction(),
            SortDirection::kDescending);
  EXPECT_EQ(RowComparator().direction(), SortDirection::kAscending);
}

TEST(SerializationTest, RoundTrip) {
  Row in(3.25, 99, "payload bytes");
  std::string buf;
  SerializeRow(in, &buf);
  EXPECT_EQ(buf.size(), in.SerializedSize());

  Row out;
  size_t offset = 0;
  ASSERT_TRUE(DeserializeRow(buf.data(), buf.size(), &offset, &out).ok());
  EXPECT_EQ(offset, buf.size());
  EXPECT_EQ(out, in);
}

TEST(SerializationTest, RoundTripEmptyPayload) {
  Row in(-1.0, 0, "");
  std::string buf;
  SerializeRow(in, &buf);
  Row out;
  size_t offset = 0;
  ASSERT_TRUE(DeserializeRow(buf.data(), buf.size(), &offset, &out).ok());
  EXPECT_EQ(out, in);
}

TEST(SerializationTest, MultipleRowsSequential) {
  std::string buf;
  for (int i = 0; i < 10; ++i) {
    SerializeRow(Row(i * 0.5, i, std::string(i, 'a')), &buf);
  }
  size_t offset = 0;
  for (int i = 0; i < 10; ++i) {
    Row out;
    ASSERT_TRUE(DeserializeRow(buf.data(), buf.size(), &offset, &out).ok());
    EXPECT_EQ(out.key, i * 0.5);
    EXPECT_EQ(out.id, static_cast<uint64_t>(i));
    EXPECT_EQ(out.payload.size(), static_cast<size_t>(i));
  }
  EXPECT_EQ(offset, buf.size());
}

TEST(SerializationTest, TruncatedHeaderIsCorruption) {
  Row in(1.0, 2, "xyz");
  std::string buf;
  SerializeRow(in, &buf);
  Row out;
  size_t offset = 0;
  const Status status =
      DeserializeRow(buf.data(), kRowHeaderBytes - 1, &offset, &out);
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

TEST(SerializationTest, TruncatedPayloadIsCorruption) {
  Row in(1.0, 2, "xyz");
  std::string buf;
  SerializeRow(in, &buf);
  Row out;
  size_t offset = 0;
  const Status status =
      DeserializeRow(buf.data(), buf.size() - 1, &offset, &out);
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

TEST(SerializationTest, NegativeAndSpecialKeys) {
  for (double key : {-1e300, -0.0, 1e-300, 1e300}) {
    Row in(key, 1, "p");
    std::string buf;
    SerializeRow(in, &buf);
    Row out;
    size_t offset = 0;
    ASSERT_TRUE(DeserializeRow(buf.data(), buf.size(), &offset, &out).ok());
    EXPECT_EQ(out.key, key);
  }
}

TEST(SerializationTest, PayloadLimitBoundary) {
  // Regression: payloads above the 32-bit wire length used to truncate
  // silently through the uint32_t cast; they must be rejected where rows
  // enter the system instead.
  Row at_limit(1.0, 1, std::string(kMaxRowPayloadBytes, 'x'));
  EXPECT_TRUE(ValidateRowPayload(at_limit).ok());
  Row beyond(1.0, 1, std::string(size_t{kMaxRowPayloadBytes} + 1, 'x'));
  const Status status = ValidateRowPayload(beyond);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.ToString().find("payload"), std::string::npos);
}

TEST(RowComparatorTest, NaNSortsLastAndKeepsStrictWeakOrdering) {
  // Regression: IEEE `<` on a NaN key is always false, which used to make
  // the comparator report Less(a, b) == Less(b, a) == false for a NaN
  // against any key while the id tiebreak still distinguished them —
  // violating strict weak ordering (undefined behavior in std::sort) and
  // leaving "where does NaN go" unanswered. NaN now sorts after every real
  // key in query direction, in both directions.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  for (auto dir : {SortDirection::kAscending, SortDirection::kDescending}) {
    RowComparator cmp(dir);
    for (double key : {-inf, -1.0, -0.0, 0.0, 1.0, inf}) {
      EXPECT_TRUE(cmp.Less(Row(key, 99), Row(nan, 0))) << key;
      EXPECT_FALSE(cmp.Less(Row(nan, 0), Row(key, 99))) << key;
      EXPECT_TRUE(cmp.KeyLess(key, nan)) << key;
      EXPECT_TRUE(cmp.KeyBeyond(nan, key)) << key;
    }
    // NaN keys tie with each other; ids order them deterministically.
    EXPECT_TRUE(cmp.Less(Row(nan, 1), Row(nan, 2)));
    EXPECT_FALSE(cmp.Less(Row(nan, 2), Row(nan, 1)));
    // -0.0 and +0.0 are the same key: only the id decides.
    EXPECT_TRUE(cmp.Less(Row(-0.0, 1), Row(0.0, 2)));
    EXPECT_TRUE(cmp.Less(Row(0.0, 1), Row(-0.0, 2)));
  }

  // std::sort on a NaN-contaminated vector must be safe and deterministic.
  std::vector<Row> rows;
  for (uint64_t id = 0; id < 200; ++id) {
    const double keys[] = {nan, 1.0, -inf, inf, -0.0, 0.0, 2.0};
    rows.push_back(Row(keys[id % 7], id));
  }
  std::sort(rows.begin(), rows.end(), RowComparator());
  for (size_t i = 0; i + 1 < rows.size(); ++i) {
    EXPECT_FALSE(RowComparator().Less(rows[i + 1], rows[i])) << i;
  }
  // All NaNs at the tail.
  size_t first_nan = rows.size();
  for (size_t i = 0; i < rows.size(); ++i) {
    if (std::isnan(rows[i].key)) {
      first_nan = i;
      break;
    }
  }
  for (size_t i = first_nan; i < rows.size(); ++i) {
    EXPECT_TRUE(std::isnan(rows[i].key)) << i;
  }
}

}  // namespace
}  // namespace topk
