#include <algorithm>
#include <map>
#include <thread>

#include <gtest/gtest.h>

#include "common/random.h"

#include "extensions/approx_topk.h"
#include "extensions/grouped_topk.h"
#include "extensions/parallel_topk.h"
#include "extensions/segmented_topk.h"
#include "tests/test_util.h"

namespace topk {
namespace {

using testing_util::ExpectSameRows;
using testing_util::MaterializeDataset;
using testing_util::ReferenceTopK;
using testing_util::ScratchDir;

class ExtensionsTest : public ::testing::Test {
 protected:
  TopKOptions BaseOptions(uint64_t k, size_t memory_bytes = 32 * 1024) {
    TopKOptions options;
    options.k = k;
    options.memory_limit_bytes = memory_bytes;
    options.env = &env_;
    options.spill_dir = scratch_.str() + "/" + std::to_string(dir_seq_++);
    return options;
  }

  ScratchDir scratch_;
  StorageEnv env_;
  int dir_seq_ = 0;
};

// ---------------- Grouped top-k (Sec 4.3) ----------------

TEST_F(ExtensionsTest, GroupedTopKMatchesPerGroupReference) {
  GroupedTopK::Options options;
  options.per_group = BaseOptions(300, 16 * 1024);
  auto grouped = GroupedTopK::Make(options);
  ASSERT_TRUE(grouped.ok());

  DatasetSpec spec;
  spec.WithRows(30000).WithSeed(1);
  auto rows = MaterializeDataset(spec);
  std::map<uint64_t, std::vector<Row>> by_group;
  for (const Row& row : rows) {
    const uint64_t group = row.id % 7;
    by_group[group].push_back(row);
    ASSERT_TRUE((*grouped)->Consume(group, row).ok());
  }
  EXPECT_EQ((*grouped)->group_count(), 7u);

  auto results = (*grouped)->Finish();
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 7u);
  for (const auto& result : *results) {
    ExpectSameRows(ReferenceTopK(by_group[result.group], 300, 0,
                                 SortDirection::kAscending),
                   result.rows);
  }
}

TEST_F(ExtensionsTest, GroupedTopKSkewedGroupSizes) {
  GroupedTopK::Options options;
  options.per_group = BaseOptions(50, 8 * 1024);
  options.grouped_buckets_per_run = 5;  // smaller per-group histograms
  auto grouped = GroupedTopK::Make(options);
  ASSERT_TRUE(grouped.ok());

  DatasetSpec spec;
  spec.WithRows(20000).WithSeed(2);
  auto rows = MaterializeDataset(spec);
  std::map<uint64_t, std::vector<Row>> by_group;
  for (const Row& row : rows) {
    // Group 0 gets ~94% of rows; groups 1..16 share the tail.
    const uint64_t group = (row.id % 16 == 0) ? 1 + (row.id % 15) : 0;
    by_group[group].push_back(row);
    ASSERT_TRUE((*grouped)->Consume(group, row).ok());
  }
  auto results = (*grouped)->Finish();
  ASSERT_TRUE(results.ok());
  for (const auto& result : *results) {
    ExpectSameRows(ReferenceTopK(by_group[result.group], 50, 0,
                                 SortDirection::kAscending),
                   result.rows);
  }
}

TEST_F(ExtensionsTest, GroupedTopKConsumeAfterFinishFails) {
  GroupedTopK::Options options;
  options.per_group = BaseOptions(10);
  auto grouped = GroupedTopK::Make(options);
  ASSERT_TRUE(grouped.ok());
  ASSERT_TRUE((*grouped)->Consume(0, Row(1, 1)).ok());
  ASSERT_TRUE((*grouped)->Finish().ok());
  EXPECT_EQ((*grouped)->Consume(0, Row(2, 2)).code(),
            StatusCode::kFailedPrecondition);
}

// ---------------- Segmented top-k (Sec 4.2) ----------------

TEST_F(ExtensionsTest, SegmentedTopKStopsAfterKRows) {
  SegmentedTopK::Options options;
  options.base = BaseOptions(100, 16 * 1024);
  auto segmented = SegmentedTopK::Make(options);
  ASSERT_TRUE(segmented.ok());

  // Three segments of 80 rows each: k=100 needs all of segment 0 plus the
  // top 20 of segment 1; segment 2 must be ignored.
  DatasetSpec spec;
  spec.WithRows(240).WithSeed(3);
  auto rows = MaterializeDataset(spec);
  for (size_t i = 0; i < rows.size(); ++i) {
    ASSERT_TRUE((*segmented)->Consume(i / 80, rows[i]).ok());
  }
  EXPECT_GT((*segmented)->rows_ignored(), 0u);
  auto result = (*segmented)->Finish();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 100u);

  // Expected: segment 0 fully sorted (80 rows), then top-20 of segment 1.
  std::vector<Row> segment0(rows.begin(), rows.begin() + 80);
  std::vector<Row> segment1(rows.begin() + 80, rows.begin() + 160);
  auto expected0 = ReferenceTopK(segment0, 80, 0, SortDirection::kAscending);
  auto expected1 = ReferenceTopK(segment1, 20, 0, SortDirection::kAscending);
  for (size_t i = 0; i < 80; ++i) {
    EXPECT_EQ((*result)[i].segment, 0u);
    EXPECT_EQ((*result)[i].row.id, expected0[i].id);
  }
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_EQ((*result)[80 + i].segment, 1u);
    EXPECT_EQ((*result)[80 + i].row.id, expected1[i].id);
  }
}

TEST_F(ExtensionsTest, SegmentedTopKFirstSegmentSatisfiesQuery) {
  SegmentedTopK::Options options;
  options.base = BaseOptions(10);
  auto segmented = SegmentedTopK::Make(options);
  ASSERT_TRUE(segmented.ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE((*segmented)->Consume(0, Row(i, i)).ok());
  }
  // Close segment 0 by presenting segment 1; everything after is ignored.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE((*segmented)->Consume(1, Row(-100 + i, 100 + i)).ok());
  }
  EXPECT_TRUE((*segmented)->saturated());
  EXPECT_EQ((*segmented)->rows_ignored(), 50u);  // all of segment 1
  auto result = (*segmented)->Finish();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ((*result)[i].segment, 0u);
    EXPECT_EQ((*result)[i].row.key, i);
  }
}

TEST_F(ExtensionsTest, SegmentedTopKRejectsOutOfOrderSegments) {
  SegmentedTopK::Options options;
  options.base = BaseOptions(10);
  auto segmented = SegmentedTopK::Make(options);
  ASSERT_TRUE(segmented.ok());
  ASSERT_TRUE((*segmented)->Consume(3, Row(1, 1)).ok());
  EXPECT_EQ((*segmented)->Consume(2, Row(2, 2)).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ExtensionsTest, SegmentedTopKRejectsOffset) {
  SegmentedTopK::Options options;
  options.base = BaseOptions(10);
  options.base.offset = 5;
  EXPECT_FALSE(SegmentedTopK::Make(options).ok());
}

// ---------------- Approximate top-k (Sec 4.5) ----------------

TEST_F(ExtensionsTest, ApproxTopKReturnsTruePrefixWithinTolerance) {
  auto op = ApproxTopK::Make(BaseOptions(2000, 16 * 1024), 0.1);
  ASSERT_TRUE(op.ok());
  EXPECT_EQ((*op)->guaranteed_rows(), 1800u);
  DatasetSpec spec;
  spec.WithRows(60000).WithSeed(4);
  auto rows = MaterializeDataset(spec);
  for (const Row& row : rows) {
    ASSERT_TRUE((*op)->Consume(row).ok());
  }
  auto result = (*op)->Finish();
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->size(), 1800u);
  ASSERT_LE(result->size(), 2000u);
  // Guarantee (Sec 4.5): the first k' rows are the exact top-k'; rows
  // between k' and k may be approximate in *membership* (the second form
  // of approximation) but are still sorted retained rows.
  auto exact_prefix = ReferenceTopK(rows, 1800, 0, SortDirection::kAscending);
  std::vector<Row> head(result->begin(), result->begin() + 1800);
  ExpectSameRows(exact_prefix, head);
  RowComparator cmp;
  EXPECT_TRUE(std::is_sorted(result->begin(), result->end(), cmp));
}

TEST_F(ExtensionsTest, ApproxTopKZeroToleranceIsExact) {
  auto op = ApproxTopK::Make(BaseOptions(500, 16 * 1024), 0.0);
  ASSERT_TRUE(op.ok());
  DatasetSpec spec;
  spec.WithRows(20000).WithSeed(5);
  auto rows = MaterializeDataset(spec);
  for (const Row& row : rows) {
    ASSERT_TRUE((*op)->Consume(row).ok());
  }
  auto result = (*op)->Finish();
  ASSERT_TRUE(result.ok());
  ExpectSameRows(ReferenceTopK(rows, 500, 0, SortDirection::kAscending),
                 *result);
}

TEST_F(ExtensionsTest, ApproxTopKRejectsBadTolerance) {
  EXPECT_FALSE(ApproxTopK::Make(BaseOptions(10), 1.0).ok());
  EXPECT_FALSE(ApproxTopK::Make(BaseOptions(10), -0.1).ok());
}

// ---------------- Parallel top-k (Sec 4.4) ----------------

TEST_F(ExtensionsTest, ParallelTopKMatchesReference) {
  ParallelTopK::Options options;
  options.base = BaseOptions(1000, 64 * 1024);
  options.num_workers = 4;
  auto op = ParallelTopK::Make(options);
  ASSERT_TRUE(op.ok());

  DatasetSpec spec;
  spec.WithRows(50000).WithSeed(6);
  auto rows = MaterializeDataset(spec);
  for (const Row& row : rows) {
    ASSERT_TRUE((*op)->Consume(row).ok());
  }
  auto result = (*op)->Finish();
  ASSERT_TRUE(result.ok());
  ExpectSameRows(ReferenceTopK(rows, 1000, 0, SortDirection::kAscending),
                 *result);
  // The shared filter must have eliminated a large share of the input.
  EXPECT_GT((*op)->stats().rows_eliminated_input +
                (*op)->stats().rows_eliminated_spill,
            20000u);
  ASSERT_TRUE((*op)->filter()->cutoff().has_value());
}

TEST_F(ExtensionsTest, ParallelTopKSingleWorkerDegeneratesGracefully) {
  ParallelTopK::Options options;
  options.base = BaseOptions(200, 32 * 1024);
  options.num_workers = 1;
  auto op = ParallelTopK::Make(options);
  ASSERT_TRUE(op.ok());
  DatasetSpec spec;
  spec.WithRows(10000).WithSeed(7);
  auto rows = MaterializeDataset(spec);
  for (const Row& row : rows) {
    ASSERT_TRUE((*op)->Consume(row).ok());
  }
  auto result = (*op)->Finish();
  ASSERT_TRUE(result.ok());
  ExpectSameRows(ReferenceTopK(rows, 200, 0, SortDirection::kAscending),
                 *result);
}

TEST_F(ExtensionsTest, ParallelSharedFilterRetainsLikeSingleThread) {
  // Sec 4.4: sharing the histogram priority queue keeps the retained row
  // count near single-thread levels; independent filters retain far more.
  DatasetSpec spec;
  spec.WithRows(60000).WithSeed(8);
  auto rows = MaterializeDataset(spec);

  auto run = [&](size_t workers, bool shared) -> uint64_t {
    ParallelTopK::Options options;
    options.base = BaseOptions(2000, 64 * 1024);
    options.num_workers = workers;
    options.share_filter = shared;
    auto op = ParallelTopK::Make(options);
    EXPECT_TRUE(op.ok());
    for (const Row& row : rows) {
      EXPECT_TRUE((*op)->Consume(row).ok());
    }
    auto result = (*op)->Finish();
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(result->size(), 2000u);
    return (*op)->stats().rows_spilled;
  };

  const uint64_t single = run(1, true);
  const uint64_t shared4 = run(4, true);
  const uint64_t independent4 = run(4, false);
  EXPECT_LT(shared4, 2 * single);        // near single-thread retention
  EXPECT_GT(independent4, shared4);      // independent filters retain more
}

TEST_F(ExtensionsTest, ParallelIndependentFiltersStillCorrect) {
  ParallelTopK::Options options;
  options.base = BaseOptions(500, 32 * 1024);
  options.num_workers = 3;
  options.share_filter = false;
  auto op = ParallelTopK::Make(options);
  ASSERT_TRUE(op.ok());
  DatasetSpec spec;
  spec.WithRows(20000).WithSeed(9);
  auto rows = MaterializeDataset(spec);
  for (const Row& row : rows) {
    ASSERT_TRUE((*op)->Consume(row).ok());
  }
  auto result = (*op)->Finish();
  ASSERT_TRUE(result.ok());
  ExpectSameRows(ReferenceTopK(rows, 500, 0, SortDirection::kAscending),
                 *result);
  EXPECT_TRUE((*op)->stats().final_cutoff.has_value());
}

TEST_F(ExtensionsTest, ParallelTopKRejectsZeroWorkers) {
  ParallelTopK::Options options;
  options.base = BaseOptions(10);
  options.num_workers = 0;
  EXPECT_FALSE(ParallelTopK::Make(options).ok());
}

TEST_F(ExtensionsTest, SharedCutoffFilterThreadSafety) {
  CutoffFilter::Options options;
  options.k = 1000;
  options.target_buckets_per_run = 10;
  options.target_run_rows = 100;
  SharedCutoffFilter filter(options);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&filter, t] {
      Random rng(t);
      for (int i = 0; i < 5000; ++i) {
        const double key = rng.NextDouble();
        if (!filter.EliminateKey(key)) {
          filter.RowSpilled(key);
        }
        if (i % 200 == 199) filter.RunFinished();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  ASSERT_TRUE(filter.cutoff().has_value());
  EXPECT_GT(*filter.cutoff(), 0.0);
  EXPECT_LE(*filter.cutoff(), 1.0);
}

}  // namespace
}  // namespace topk
