#include "common/flags.h"

#include <gtest/gtest.h>

namespace topk {
namespace {

Flags MustParse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  auto flags = Flags::Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(flags.ok());
  return *flags;
}

TEST(FlagsTest, EqualsSyntax) {
  Flags flags = MustParse({"--name=value", "--n=100"});
  EXPECT_EQ(flags.GetString("name", ""), "value");
  EXPECT_EQ(flags.GetInt("n", 0).value(), 100);
}

TEST(FlagsTest, SpaceSyntax) {
  Flags flags = MustParse({"--name", "value", "--n", "100"});
  EXPECT_EQ(flags.GetString("name", ""), "value");
  EXPECT_EQ(flags.GetInt("n", 0).value(), 100);
}

TEST(FlagsTest, BareFlagIsBooleanTrue) {
  Flags flags = MustParse({"--verbose", "--n=5"});
  EXPECT_TRUE(flags.GetBool("verbose", false).value());
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  Flags flags = MustParse({});
  EXPECT_EQ(flags.GetString("missing", "fallback"), "fallback");
  EXPECT_EQ(flags.GetInt("missing", 7).value(), 7);
  EXPECT_EQ(flags.GetDouble("missing", 2.5).value(), 2.5);
  EXPECT_FALSE(flags.GetBool("missing", false).value());
  EXPECT_FALSE(flags.Has("missing"));
}

TEST(FlagsTest, ScientificNotationIntegers) {
  Flags flags = MustParse({"--n=2e6"});
  EXPECT_EQ(flags.GetInt("n", 0).value(), 2000000);
}

TEST(FlagsTest, MalformedNumbersRejected) {
  Flags flags = MustParse({"--n=abc", "--x=1.2.3", "--b=perhaps"});
  EXPECT_FALSE(flags.GetInt("n", 0).ok());
  EXPECT_FALSE(flags.GetDouble("x", 0).ok());
  EXPECT_FALSE(flags.GetBool("b", false).ok());
}

TEST(FlagsTest, BooleanSpellings) {
  Flags flags = MustParse({"--a=true", "--b=1", "--c=no", "--d=false"});
  EXPECT_TRUE(flags.GetBool("a", false).value());
  EXPECT_TRUE(flags.GetBool("b", false).value());
  EXPECT_FALSE(flags.GetBool("c", true).value());
  EXPECT_FALSE(flags.GetBool("d", true).value());
}

TEST(FlagsTest, PositionalArguments) {
  Flags flags = MustParse({"input.csv", "--n=1", "output.csv"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.csv");
  EXPECT_EQ(flags.positional()[1], "output.csv");
}

TEST(FlagsTest, UnreadFlagsDetected) {
  Flags flags = MustParse({"--used=1", "--typo=2"});
  EXPECT_EQ(flags.GetInt("used", 0).value(), 1);
  const auto unread = flags.UnreadFlags();
  ASSERT_EQ(unread.size(), 1u);
  EXPECT_EQ(unread[0], "typo");
}

TEST(FlagsTest, BareDoubleDashRejected) {
  const char* argv[] = {"prog", "--"};
  EXPECT_FALSE(Flags::Parse(2, argv).ok());
}

TEST(FlagsTest, LastValueWins) {
  Flags flags = MustParse({"--n=1", "--n=2"});
  EXPECT_EQ(flags.GetInt("n", 0).value(), 2);
}

}  // namespace
}  // namespace topk
