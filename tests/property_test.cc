/// Randomized property sweeps: for arbitrary configurations, every operator
/// must (a) agree with a reference sort, (b) never let the cutoff key cross
/// the true kth key, and (c) keep its accounting self-consistent.

#include <gtest/gtest.h>

#include "common/random.h"
#include "tests/test_util.h"
#include "topk/histogram_topk.h"
#include "topk/operator_factory.h"

namespace topk {
namespace {

using testing_util::ExpectSameRows;
using testing_util::MaterializeDataset;
using testing_util::ReferenceTopK;
using testing_util::RunOperator;
using testing_util::ScratchDir;

class RandomConfigTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomConfigTest, AllOperatorsAgreeWithReference) {
  const uint64_t seed = GetParam();
  Random rng(seed * 2654435761ULL + 17);

  DatasetSpec spec;
  const uint64_t input = 2000 + rng.NextUint64(30000);
  spec.WithRows(input)
      .WithSeed(seed)
      .WithPayload(rng.NextUint64(8), 8 + rng.NextUint64(64));
  const KeyDistribution dists[] = {
      KeyDistribution::kUniform, KeyDistribution::kFal,
      KeyDistribution::kLogNormal, KeyDistribution::kAscending,
      KeyDistribution::kDescending};
  spec.WithDistribution(dists[rng.NextUint64(5)]);
  if (spec.keys.distribution == KeyDistribution::kFal) {
    const double shapes[] = {0.5, 1.05, 1.25, 1.5};
    spec.keys.fal_shape = shapes[rng.NextUint64(4)];
  }
  auto rows = MaterializeDataset(spec);

  const uint64_t k = 1 + rng.NextUint64(input / 2);
  const uint64_t offset = rng.NextUint64(50);
  const SortDirection direction = rng.NextUint64(2) == 0
                                      ? SortDirection::kAscending
                                      : SortDirection::kDescending;
  // WITH TIES sometimes (fal keys are discrete, so real ties occur).
  const bool with_ties = rng.NextUint64(3) == 0;
  const auto expected =
      with_ties
          ? testing_util::ReferenceTopKWithTies(rows, k, offset, direction)
          : ReferenceTopK(rows, k, offset, direction);

  ScratchDir scratch;
  StorageEnv env;
  TopKOptions options;
  options.k = k;
  options.offset = offset;
  options.direction = direction;
  options.with_ties = with_ties;
  options.memory_limit_bytes = 8 * 1024 + rng.NextUint64(64 * 1024);
  options.histogram_buckets_per_run = rng.NextUint64(101);
  options.merge_fan_in = 2 + rng.NextUint64(30);
  options.early_merge_fan_in = 2 + rng.NextUint64(10);
  options.run_generation = rng.NextUint64(2) == 0
                               ? RunGenerationKind::kReplacementSelection
                               : RunGenerationKind::kQuicksort;
  options.env = &env;

  for (TopKAlgorithm algorithm :
       {TopKAlgorithm::kTraditionalExternal, TopKAlgorithm::kOptimizedExternal,
        TopKAlgorithm::kHistogram}) {
    options.spill_dir = scratch.str() + "/" + TopKAlgorithmName(algorithm);
    auto op = MakeTopKOperator(algorithm, options);
    ASSERT_TRUE(op.ok());
    auto result = RunOperator(op->get(), rows);
    ASSERT_TRUE(result.ok())
        << TopKAlgorithmName(algorithm) << ": " << result.status().ToString();
    ExpectSameRows(expected, *result);

    // Accounting invariants.
    const OperatorStats& stats = (*op)->stats();
    ASSERT_EQ(stats.rows_consumed, rows.size());
    ASSERT_LE(stats.rows_eliminated_input, stats.rows_consumed);
    ASSERT_LE(stats.rows_spilled,
              stats.rows_consumed - stats.rows_eliminated_input);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomConfigTest,
                         ::testing::Range<uint64_t>(0, 20));

class CutoffSoundnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CutoffSoundnessTest, CutoffNeverCrossesTrueKthKey) {
  // The central safety property of the paper's filter: at every moment, the
  // cutoff key must sort at-or-after the true kth key of the *entire*
  // input (otherwise a row of the true answer could be discarded).
  const uint64_t seed = GetParam();
  Random rng(seed + 1234);
  const uint64_t input = 20000 + rng.NextUint64(20000);
  const uint64_t k = 100 + rng.NextUint64(2000);

  DatasetSpec spec;
  spec.WithRows(input).WithSeed(seed);
  auto rows = MaterializeDataset(spec);
  auto truth = ReferenceTopK(rows, k, 0, SortDirection::kAscending);
  const double true_kth = truth.back().key;

  ScratchDir scratch;
  StorageEnv env;
  TopKOptions options;
  options.k = k;
  options.memory_limit_bytes = 8 * 1024 + rng.NextUint64(16 * 1024);
  options.histogram_buckets_per_run = 1 + rng.NextUint64(50);
  options.env = &env;
  options.spill_dir = scratch.str();
  auto op = HistogramTopK::Make(options);
  ASSERT_TRUE(op.ok());
  for (size_t i = 0; i < rows.size(); ++i) {
    ASSERT_TRUE((*op)->Consume(rows[i]).ok());
    if (i % 97 == 0) {
      const auto cutoff = (*op)->cutoff();
      if (cutoff.has_value()) {
        ASSERT_GE(*cutoff, true_kth) << "unsound cutoff at row " << i;
      }
    }
  }
  auto result = (*op)->Finish();
  ASSERT_TRUE(result.ok());
  ExpectSameRows(truth, *result);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CutoffSoundnessTest,
                         ::testing::Range<uint64_t>(0, 10));

class DuplicateKeysTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DuplicateKeysTest, HeavyDuplicationHandledByAllOperators) {
  // Keys drawn from a tiny domain: massive duplication stresses the
  // tie-keeping rule (rows equal to the cutoff must never be eliminated).
  const uint64_t seed = GetParam();
  Random rng(seed);
  const uint64_t domain = 1 + rng.NextUint64(20);
  std::vector<Row> rows;
  for (int i = 0; i < 20000; ++i) {
    rows.push_back(
        Row(static_cast<double>(rng.NextUint64(domain)), i,
            std::string(rng.NextUint64(16), 'd')));
  }
  const uint64_t k = 500 + rng.NextUint64(3000);
  auto expected = ReferenceTopK(rows, k, 0, SortDirection::kAscending);

  ScratchDir scratch;
  StorageEnv env;
  TopKOptions options;
  options.k = k;
  options.memory_limit_bytes = 16 * 1024;
  options.env = &env;
  for (TopKAlgorithm algorithm :
       {TopKAlgorithm::kTraditionalExternal, TopKAlgorithm::kOptimizedExternal,
        TopKAlgorithm::kHistogram}) {
    options.spill_dir = scratch.str() + "/" + TopKAlgorithmName(algorithm);
    auto op = MakeTopKOperator(algorithm, options);
    ASSERT_TRUE(op.ok());
    auto result = RunOperator(op->get(), rows);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectSameRows(expected, *result);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DuplicateKeysTest,
                         ::testing::Range<uint64_t>(0, 8));

}  // namespace
}  // namespace topk
