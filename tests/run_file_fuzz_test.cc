/// Hardening: arbitrary and corrupted bytes fed to the run-file reader must
/// produce Status errors, never crashes, hangs, or silent garbage.

#include <gtest/gtest.h>

#include <cstring>

#include "common/random.h"
#include "io/run_file.h"
#include "io/spill_manager.h"
#include "row/serialization.h"
#include "io/storage_env.h"
#include "tests/test_util.h"

namespace topk {
namespace {

using testing_util::ScratchDir;

class RunFileFuzzTest : public ::testing::Test {
 protected:
  std::string WriteBytes(const std::string& name, const std::string& bytes) {
    const std::string path = scratch_.str() + "/" + name;
    auto file = env_.NewWritableFile(path);
    EXPECT_TRUE(file.ok());
    EXPECT_TRUE((*file)->Append(bytes).ok());
    EXPECT_TRUE((*file)->Close().ok());
    return path;
  }

  /// Reads the whole run; returns the terminal status (OK at clean EOF).
  Status DrainRun(const std::string& path, uint64_t* rows_out = nullptr) {
    auto reader = RunReader::Open(&env_, path);
    if (!reader.ok()) return reader.status();
    Row row;
    uint64_t rows = 0;
    for (;;) {
      bool eof = false;
      Status status = (*reader)->Next(&row, &eof);
      if (!status.ok()) return status;
      if (eof) break;
      ++rows;
      if (rows > 10 * 1000 * 1000) {
        return Status::Unknown("reader did not terminate");
      }
    }
    if (rows_out != nullptr) *rows_out = rows;
    return Status::OK();
  }

  ScratchDir scratch_;
  StorageEnv env_;
};

TEST_F(RunFileFuzzTest, RandomBytesRejectedAtOpen) {
  Random rng(1);
  for (int i = 0; i < 50; ++i) {
    std::string bytes;
    const size_t n = rng.NextUint64(200);
    for (size_t j = 0; j < n; ++j) {
      bytes.push_back(static_cast<char>(rng.NextUint64(256)));
    }
    const std::string path = WriteBytes("rand" + std::to_string(i), bytes);
    const Status status = DrainRun(path);
    // Random bytes essentially never start with the magic; any failure
    // must be a structured error.
    EXPECT_FALSE(status.ok());
    EXPECT_TRUE(status.code() == StatusCode::kCorruption ||
                status.code() == StatusCode::kIoError)
        << status.ToString();
  }
}

TEST_F(RunFileFuzzTest, ValidMagicThenGarbage) {
  Random rng(2);
  for (int i = 0; i < 50; ++i) {
    std::string bytes(kRunFileMagic, 8);
    const size_t n = 1 + rng.NextUint64(300);
    for (size_t j = 0; j < n; ++j) {
      bytes.push_back(static_cast<char>(rng.NextUint64(256)));
    }
    const std::string path = WriteBytes("garb" + std::to_string(i), bytes);
    const Status status = DrainRun(path);
    // Garbage row headers usually declare absurd payload lengths; the
    // reader must fail with Corruption (or stop cleanly if the garbage
    // happens to parse — but never crash or hang).
    if (!status.ok()) {
      EXPECT_EQ(status.code(), StatusCode::kCorruption) << status.ToString();
    }
  }
}

TEST_F(RunFileFuzzTest, OversizedPayloadLengthRejectedWithoutAllocation) {
  // A corrupt header declaring a multi-gigabyte payload must fail fast
  // with Corruption instead of attempting the allocation.
  std::string bytes(kRunFileMagic, 8);
  Row header_row(1.0, 1);
  std::string serialized;
  SerializeRow(header_row, &serialized);
  // Patch the length field to 3 GiB.
  const uint32_t huge = 3u << 30;
  std::memcpy(serialized.data() + sizeof(double) + sizeof(uint64_t), &huge,
              sizeof(huge));
  bytes += serialized;
  const std::string path = WriteBytes("huge", bytes);
  const Status status = DrainRun(path);
  EXPECT_EQ(status.code(), StatusCode::kCorruption) << status.ToString();
}

TEST_F(RunFileFuzzTest, WriterRejectsOversizedPayload) {
  RowComparator cmp;
  auto writer =
      RunWriter::Create(&env_, scratch_.str() + "/big", 0, cmp);
  ASSERT_TRUE(writer.ok());
  Row row(1.0, 1);
  row.payload.assign(kMaxRowPayloadBytes + 1, 'z');
  EXPECT_EQ((*writer)->Append(row).code(), StatusCode::kInvalidArgument);
}

TEST_F(RunFileFuzzTest, RandomTruncationsOfValidRun) {
  // Build a real run, then re-read every kind of truncated prefix.
  RowComparator cmp;
  auto writer =
      RunWriter::Create(&env_, scratch_.str() + "/valid", 0, cmp);
  ASSERT_TRUE(writer.ok());
  Random rng(3);
  double key = 0;
  for (int i = 0; i < 200; ++i) {
    key += rng.NextDouble();
    ASSERT_TRUE(
        (*writer)
            ->Append(Row(key, i, std::string(rng.NextUint64(40), 'x')))
            .ok());
  }
  auto meta = (*writer)->Finish();
  ASSERT_TRUE(meta.ok());

  std::string valid;
  {
    std::FILE* f = std::fopen(meta->path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    valid.resize(meta->bytes);
    ASSERT_EQ(std::fread(valid.data(), 1, valid.size(), f), valid.size());
    std::fclose(f);
  }

  for (int i = 0; i < 60; ++i) {
    const size_t cut = rng.NextUint64(valid.size());
    const std::string path =
        WriteBytes("trunc" + std::to_string(i), valid.substr(0, cut));
    uint64_t rows = 0;
    const Status status = DrainRun(path, &rows);
    if (status.ok()) {
      // Truncation landed exactly on a row boundary: a clean short run.
      EXPECT_LE(rows, 200u);
    } else {
      EXPECT_EQ(status.code(), StatusCode::kCorruption) << status.ToString();
    }
  }
}

TEST_F(RunFileFuzzTest, RandomByteFlipsDetectedByVerify) {
  auto spill = SpillManager::Create(&env_, scratch_.str() + "/spill");
  ASSERT_TRUE(spill.ok());
  RowComparator cmp;
  auto writer = (*spill)->NewRun(cmp);
  ASSERT_TRUE(writer.ok());
  Random rng(4);
  double key = 0;
  for (int i = 0; i < 500; ++i) {
    key += rng.NextDouble();
    ASSERT_TRUE((*writer)->Append(Row(key, i, std::string(16, 'y'))).ok());
  }
  auto meta = (*writer)->Finish();
  ASSERT_TRUE(meta.ok());
  (*spill)->AddRun(*meta);
  ASSERT_TRUE((*spill)->VerifyRun(*meta, cmp).ok());

  // Flip random bytes (skipping the magic); VerifyRun must catch every one
  // (CRC-32C detects all single-byte flips).
  for (int trial = 0; trial < 20; ++trial) {
    const uint64_t pos = 8 + rng.NextUint64(meta->bytes - 8);
    std::FILE* f = std::fopen(meta->path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, static_cast<long>(pos), SEEK_SET);
    int original = std::fgetc(f);
    std::fseek(f, static_cast<long>(pos), SEEK_SET);
    std::fputc(original ^ 0x20, f);
    std::fclose(f);

    EXPECT_FALSE((*spill)->VerifyRun(*meta, cmp).ok())
        << "undetected flip at byte " << pos;

    // Restore for the next trial.
    f = std::fopen(meta->path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, static_cast<long>(pos), SEEK_SET);
    std::fputc(original, f);
    std::fclose(f);
  }
  ASSERT_TRUE((*spill)->VerifyRun(*meta, cmp).ok());
}

}  // namespace
}  // namespace topk
