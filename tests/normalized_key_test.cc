#include "row/normalized_key.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "sort/loser_tree.h"

namespace topk {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Keys in ascending query order (NaN defined to sort last); every pair
/// must encode order-preservingly in both directions.
std::vector<double> OrderedSpecialKeys() {
  return {-kInf,
          std::numeric_limits<double>::lowest(),
          -1.5,
          -std::numeric_limits<double>::min(),
          -std::numeric_limits<double>::denorm_min(),
          0.0,
          std::numeric_limits<double>::denorm_min(),
          std::numeric_limits<double>::min(),
          1.5,
          std::numeric_limits<double>::max(),
          kInf,
          kNaN};
}

TEST(NormalizedKeyTest, EncodingPreservesOrderBothDirections) {
  const std::vector<double> keys = OrderedSpecialKeys();
  for (size_t i = 0; i < keys.size(); ++i) {
    for (size_t j = i + 1; j < keys.size(); ++j) {
      const uint64_t asc_i = NormalizeDoubleKey(keys[i], SortDirection::kAscending);
      const uint64_t asc_j = NormalizeDoubleKey(keys[j], SortDirection::kAscending);
      EXPECT_LT(asc_i, asc_j) << keys[i] << " vs " << keys[j];
      if (std::isnan(keys[i]) || std::isnan(keys[j])) continue;
      // Descending reverses the order of real keys; NaN stays last (below).
      const uint64_t desc_i =
          NormalizeDoubleKey(keys[i], SortDirection::kDescending);
      const uint64_t desc_j =
          NormalizeDoubleKey(keys[j], SortDirection::kDescending);
      EXPECT_GT(desc_i, desc_j) << keys[i] << " vs " << keys[j];
    }
  }
}

TEST(NormalizedKeyTest, NaNIsLastInBothDirectionsAndNeverCollides) {
  for (auto dir : {SortDirection::kAscending, SortDirection::kDescending}) {
    EXPECT_EQ(NormalizeDoubleKey(kNaN, dir), kNormalizedNaN);
    EXPECT_EQ(NormalizeDoubleKey(-kNaN, dir), kNormalizedNaN);
    for (double key : OrderedSpecialKeys()) {
      if (std::isnan(key)) continue;
      EXPECT_LT(NormalizeDoubleKey(key, dir), kNormalizedNaN) << key;
    }
  }
}

TEST(NormalizedKeyTest, SignedZerosFoldToOneKey) {
  for (auto dir : {SortDirection::kAscending, SortDirection::kDescending}) {
    EXPECT_EQ(NormalizeDoubleKey(-0.0, dir), NormalizeDoubleKey(0.0, dir));
  }
}

TEST(NormalizedKeyTest, RandomPairsMatchDoubleComparison) {
  Random rng(99);
  for (int i = 0; i < 200000; ++i) {
    const double a = rng.NextDouble() * 2e3 - 1e3;
    const double b = rng.NextDouble() * 2e3 - 1e3;
    EXPECT_EQ(NormalizeDoubleKey(a, SortDirection::kAscending) <
                  NormalizeDoubleKey(b, SortDirection::kAscending),
              a < b);
    EXPECT_EQ(NormalizeDoubleKey(a, SortDirection::kDescending) <
                  NormalizeDoubleKey(b, SortDirection::kDescending),
              a > b);
  }
}

TEST(NormalizedKeyTest, IdBreaksTiesAscendingInBothDirections) {
  for (auto dir : {SortDirection::kAscending, SortDirection::kDescending}) {
    const NormalizedKey low = NormalizedKey::Encode(1.0, 3, dir);
    const NormalizedKey high = NormalizedKey::Encode(1.0, 4, dir);
    EXPECT_TRUE(low < high);
    EXPECT_FALSE(high < low);
    EXPECT_TRUE(low != high);
    EXPECT_EQ(low, NormalizedKey::Encode(1.0, 3, dir));
  }
}

TEST(NormalizedKeyTest, ByteViewIsBigEndianOverBothWords) {
  NormalizedKey key;
  key.key_word = 0x0102030405060708ULL;
  key.id_word = 0x090A0B0C0D0E0F10ULL;
  for (size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(key.ByteAt(i), static_cast<uint8_t>(i + 1)) << i;
  }
}

TEST(NormalizedKeyTest, FirstDifferingByteFindsEveryPosition) {
  NormalizedKey base;
  base.key_word = 0x1111111111111111ULL;
  base.id_word = 0x2222222222222222ULL;
  EXPECT_EQ(base.FirstDifferingByte(base), 16u);
  for (size_t i = 0; i < 16; ++i) {
    NormalizedKey other = base;
    uint64_t& word = i < 8 ? other.key_word : other.id_word;
    word ^= uint64_t{0xFF} << (56 - 8 * (i & 7));
    EXPECT_EQ(base.FirstDifferingByte(other), i);
    EXPECT_EQ(other.FirstDifferingByte(base), i);
  }
}

TEST(OffsetValueCodeTest, CodeOrderEqualsKeyOrderAgainstSameBase) {
  // Against a shared base, code order must equal key order for any pair of
  // keys at or after the base; equal codes mean "undecided", never a wrong
  // decision.
  Random rng(7);
  const SortDirection dir = SortDirection::kAscending;
  for (int trial = 0; trial < 50000; ++trial) {
    double keys[3] = {rng.NextDouble(), rng.NextDouble(), rng.NextDouble()};
    std::sort(keys, keys + 3);
    const NormalizedKey base = NormalizedKey::Encode(keys[0], 0, dir);
    const NormalizedKey a = NormalizedKey::Encode(keys[1], 1, dir);
    const NormalizedKey b = NormalizedKey::Encode(keys[2], 2, dir);
    const OffsetValueCode code_a = MakeOvcAgainstBase(a, base);
    const OffsetValueCode code_b = MakeOvcAgainstBase(b, base);
    if (code_a < code_b) {
      EXPECT_TRUE(a < b);
    } else if (code_b < code_a) {
      EXPECT_TRUE(b < a);
    }
  }
}

TEST(OffsetValueCodeTest, EqualKeyYieldsZeroCodeAndSentinelSortsLast) {
  const NormalizedKey key = NormalizedKey::Encode(42.0, 7, SortDirection::kAscending);
  EXPECT_EQ(MakeOvcAgainstBase(key, key), 0u);
  // The largest real code is offset 0 with value 0xFF; the exhausted
  // sentinel must sort after it.
  EXPECT_LT(MakeOvc(0, 0xFF), kOvcExhausted);
  EXPECT_LT(MakeInitialOvc(key), kOvcExhausted);
}

/// The merge path's OVC loser-tree logic, replicated over in-memory ways:
/// the property test behind the Merger rewrite. Each way carries (norm,
/// code); codes decide when they differ, a full byte compare breaks the
/// tie and re-codes the loser against the winner (Do & Graefe's update
/// rule). Exhausted ways carry the sentinel code.
std::vector<uint64_t> MergeIdsWithOvcTree(
    const std::vector<std::vector<NormalizedKey>>& ways) {
  struct WayState {
    NormalizedKey norm;
    OffsetValueCode ovc = kOvcExhausted;
    size_t pos = 0;
    bool exhausted = true;
  };
  std::vector<WayState> state(ways.size());
  for (size_t w = 0; w < ways.size(); ++w) {
    if (ways[w].empty()) continue;
    state[w] = WayState{ways[w][0], MakeInitialOvc(ways[w][0]), 0, false};
  }
  LoserTree tree(ways.size(), [&state](size_t a, size_t b) {
    WayState& wa = state[a];
    WayState& wb = state[b];
    if (wa.ovc != wb.ovc) return wa.ovc < wb.ovc;
    if (wa.exhausted) return false;
    const size_t offset = wa.norm.FirstDifferingByte(wb.norm);
    if (offset >= 16) return false;
    if (wa.norm.ByteAt(offset) < wb.norm.ByteAt(offset)) {
      wb.ovc = MakeOvc(offset, wb.norm.ByteAt(offset));
      return true;
    }
    wa.ovc = MakeOvc(offset, wa.norm.ByteAt(offset));
    return false;
  });
  tree.Build();
  std::vector<uint64_t> out;
  while (!state[tree.winner()].exhausted) {
    const size_t w = tree.winner();
    WayState& winner = state[w];
    out.push_back(winner.norm.id_word);
    const NormalizedKey base = winner.norm;
    if (++winner.pos < ways[w].size()) {
      winner.norm = ways[w][winner.pos];
      winner.ovc = MakeOvcAgainstBase(winner.norm, base);
    } else {
      winner.exhausted = true;
      winner.ovc = kOvcExhausted;
    }
    tree.ReplayWinner();
  }
  return out;
}

class OvcLoserTreeWaysTest : public ::testing::TestWithParam<size_t> {};

TEST_P(OvcLoserTreeWaysTest, OvcMergeMatchesStdSort) {
  const size_t num_ways = GetParam();
  Random rng(500 + num_ways);
  const SortDirection dir = SortDirection::kAscending;
  // Heavy duplication plus special values: exactly the inputs where a
  // buggy code update would surface as a mis-ordered or unstable merge.
  const double pool[] = {0.0, -0.0, 1.0, 1.0, 2.5, -2.5, kInf, -kInf, kNaN};
  uint64_t next_id = 0;
  std::vector<std::vector<NormalizedKey>> ways(num_ways);
  std::vector<NormalizedKey> all;
  for (auto& way : ways) {
    const size_t len = rng.NextUint64(100);
    for (size_t i = 0; i < len; ++i) {
      const double key = pool[rng.NextUint64(sizeof(pool) / sizeof(pool[0]))];
      way.push_back(NormalizedKey::Encode(key, next_id++, dir));
    }
    std::sort(way.begin(), way.end(),
              [](const NormalizedKey& a, const NormalizedKey& b) {
                return a < b;
              });
    all.insert(all.end(), way.begin(), way.end());
  }
  std::sort(all.begin(), all.end(),
            [](const NormalizedKey& a, const NormalizedKey& b) {
              return a < b;
            });
  std::vector<uint64_t> expected;
  for (const NormalizedKey& key : all) expected.push_back(key.id_word);
  EXPECT_EQ(MergeIdsWithOvcTree(ways), expected);
}

INSTANTIATE_TEST_SUITE_P(WayCounts, OvcLoserTreeWaysTest,
                         ::testing::Values(1, 3, 5, 7, 13));

}  // namespace
}  // namespace topk
