/// Boundary conditions every operator must get right: empty inputs, k or
/// offset at or past the input size, k = 1, single-row inputs, extreme
/// payloads, and degenerate memory budgets.

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/random.h"
#include "tests/test_util.h"
#include "topk/operator_factory.h"

namespace topk {
namespace {

using testing_util::ExpectSameRows;
using testing_util::ExpectSameRowsBitwise;
using testing_util::MaterializeDataset;
using testing_util::ReferenceTopK;
using testing_util::RunOperator;
using testing_util::ScratchDir;

constexpr TopKAlgorithm kAllAlgorithms[] = {
    TopKAlgorithm::kHeap, TopKAlgorithm::kTraditionalExternal,
    TopKAlgorithm::kOptimizedExternal, TopKAlgorithm::kHistogram};

class EdgeCasesTest : public ::testing::TestWithParam<TopKAlgorithm> {
 protected:
  TopKOptions Options(uint64_t k, size_t memory_bytes = 32 * 1024) {
    TopKOptions options;
    options.k = k;
    options.memory_limit_bytes = memory_bytes;
    options.env = &env_;
    options.spill_dir = scratch_.str() + "/" + std::to_string(seq_++);
    if (GetParam() == TopKAlgorithm::kHeap) {
      options.allow_unbounded_memory = true;
    }
    return options;
  }

  Result<std::vector<Row>> Run(const TopKOptions& options,
                               const std::vector<Row>& rows) {
    auto op = MakeTopKOperator(GetParam(), options);
    if (!op.ok()) return op.status();
    return RunOperator(op->get(), rows);
  }

  ScratchDir scratch_;
  StorageEnv env_;
  int seq_ = 0;
};

TEST_P(EdgeCasesTest, EmptyInput) {
  auto result = Run(Options(10), {});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->empty());
}

TEST_P(EdgeCasesTest, SingleRow) {
  auto result = Run(Options(10), {Row(3.5, 7, "only")});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].payload, "only");
}

TEST_P(EdgeCasesTest, KEqualsOne) {
  DatasetSpec spec;
  spec.WithRows(10000).WithSeed(1);
  auto rows = MaterializeDataset(spec);
  auto result = Run(Options(1, 8 * 1024), rows);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectSameRows(ReferenceTopK(rows, 1, 0, SortDirection::kAscending),
                 *result);
}

TEST_P(EdgeCasesTest, KEqualsInputSize) {
  DatasetSpec spec;
  spec.WithRows(3000).WithSeed(2);
  auto rows = MaterializeDataset(spec);
  auto result = Run(Options(3000, 16 * 1024), rows);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectSameRows(ReferenceTopK(rows, 3000, 0, SortDirection::kAscending),
                 *result);
}

TEST_P(EdgeCasesTest, KExceedsInputSize) {
  DatasetSpec spec;
  spec.WithRows(500).WithSeed(3);
  auto rows = MaterializeDataset(spec);
  auto result = Run(Options(100000, 8 * 1024), rows);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->size(), 500u);
  ExpectSameRows(ReferenceTopK(rows, 100000, 0, SortDirection::kAscending),
                 *result);
}

TEST_P(EdgeCasesTest, OffsetBeyondInputYieldsEmpty) {
  DatasetSpec spec;
  spec.WithRows(2000).WithSeed(4);
  auto rows = MaterializeDataset(spec);
  TopKOptions options = Options(10, 8 * 1024);
  options.offset = 5000;
  auto result = Run(options, rows);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->empty());
}

TEST_P(EdgeCasesTest, OffsetPlusKStraddlesInputEnd) {
  DatasetSpec spec;
  spec.WithRows(2000).WithSeed(5);
  auto rows = MaterializeDataset(spec);
  TopKOptions options = Options(100, 8 * 1024);
  options.offset = 1950;  // only 50 rows remain
  auto result = Run(options, rows);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->size(), 50u);
  ExpectSameRows(ReferenceTopK(rows, 100, 1950, SortDirection::kAscending),
                 *result);
}

TEST_P(EdgeCasesTest, EmptyPayloads) {
  std::vector<Row> rows;
  for (int i = 0; i < 5000; ++i) rows.push_back(Row(5000.0 - i, i));
  auto result = Run(Options(200, 8 * 1024), rows);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectSameRows(ReferenceTopK(rows, 200, 0, SortDirection::kAscending),
                 *result);
}

TEST_P(EdgeCasesTest, OneGiantRowAmongSmall) {
  DatasetSpec spec;
  spec.WithRows(3000).WithSeed(6);
  auto rows = MaterializeDataset(spec);
  // A single row far larger than the memory budget, keyed into the output.
  rows.push_back(Row(-1.0, 999999, std::string(64 * 1024, 'G')));
  auto expected = ReferenceTopK(rows, 100, 0, SortDirection::kAscending);
  auto result = Run(Options(100, 16 * 1024), rows);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectSameRows(expected, *result);
}

TEST_P(EdgeCasesTest, NegativeAndExtremeKeys) {
  std::vector<Row> rows;
  Random rng(7);
  for (int i = 0; i < 4000; ++i) {
    double key = 0;
    switch (rng.NextUint64(4)) {
      case 0:
        key = -1e307 * rng.NextDouble();
        break;
      case 1:
        key = 1e307 * rng.NextDouble();
        break;
      case 2:
        key = rng.NextDouble() * 1e-300;
        break;
      case 3:
        key = (rng.NextDouble() - 0.5) * 2.0;
        break;
    }
    rows.push_back(Row(key, i));
  }
  auto result = Run(Options(300, 8 * 1024), rows);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectSameRows(ReferenceTopK(rows, 300, 0, SortDirection::kAscending),
                 *result);
}

TEST_P(EdgeCasesTest, NaNZeroAndInfinityKeys) {
  // Regression for the comparator's strict-weak-ordering violation: NaN
  // keys used to compare "not less" in both directions while the id
  // tiebreak still distinguished rows, which is undefined behavior in
  // std::sort and left NaN placement to chance. NaN now totally orders
  // last in query direction; -0.0 and +0.0 are one key; infinities sort as
  // the extreme reals. All of it must hold through every operator — run
  // generation, spill, cutoff filter, and merge included.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<Row> rows;
  Random rng(21);
  const double pool[] = {nan, -nan, inf, -inf, -0.0, 0.0, 1.0, -1.0};
  for (int i = 0; i < 6000; ++i) {
    const uint64_t pick = rng.NextUint64(10);
    const double key = pick < 8 ? pool[pick] : rng.NextDouble() - 0.5;
    rows.push_back(Row(key, i));
  }
  for (auto direction :
       {SortDirection::kAscending, SortDirection::kDescending}) {
    TopKOptions options = Options(400, 8 * 1024);
    options.direction = direction;
    auto result = Run(options, rows);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectSameRowsBitwise(ReferenceTopK(rows, 400, 0, direction), *result);
  }
  // A k large enough that the NaN tail enters the output.
  TopKOptions options = Options(5900, 64 * 1024);
  auto result = Run(options, rows);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectSameRowsBitwise(
      ReferenceTopK(rows, 5900, 0, SortDirection::kAscending), *result);
}

TEST_P(EdgeCasesTest, AlreadySortedInput) {
  DatasetSpec spec;
  spec.WithRows(8000).WithDistribution(KeyDistribution::kAscending);
  spec.WithSeed(8);
  auto rows = MaterializeDataset(spec);
  auto result = Run(Options(500, 8 * 1024), rows);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectSameRows(ReferenceTopK(rows, 500, 0, SortDirection::kAscending),
                 *result);
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, EdgeCasesTest, ::testing::ValuesIn(kAllAlgorithms),
    [](const ::testing::TestParamInfo<TopKAlgorithm>& info) {
      std::string name = TopKAlgorithmName(info.param);
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace topk
