#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "gen/generator.h"
#include "sort/replacement_selection.h"
#include "sort/run_generation.h"

namespace topk {
namespace {

class RunGenerationTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("topk_rungen_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    auto spill = SpillManager::Create(&env_, dir_.string());
    ASSERT_TRUE(spill.ok());
    spill_ = std::move(*spill);
  }

  void TearDown() override {
    spill_.reset();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  /// True = replacement selection, false = quicksort.
  std::unique_ptr<RunGenerator> MakeGenerator(
      const RunGeneratorOptions& options,
      const RowComparator& cmp = RowComparator()) {
    if (GetParam()) {
      return std::make_unique<ReplacementSelectionRunGenerator>(spill_.get(),
                                                                cmp, options);
    }
    return std::make_unique<QuicksortRunGenerator>(spill_.get(), cmp,
                                                   options);
  }

  /// Reads all rows of a run back.
  std::vector<Row> ReadRun(const RunMeta& meta) {
    auto reader = spill_->OpenRun(meta);
    EXPECT_TRUE(reader.ok());
    std::vector<Row> rows;
    Row row;
    bool eof = false;
    for (;;) {
      EXPECT_TRUE((*reader)->Next(&row, &eof).ok());
      if (eof) break;
      rows.push_back(row);
    }
    return rows;
  }

  std::filesystem::path dir_;
  StorageEnv env_;
  std::unique_ptr<SpillManager> spill_;
};

RunGeneratorOptions SmallMemory(size_t rows_about = 100) {
  RunGeneratorOptions options;
  // ~Row footprint with empty payload + overhead.
  options.memory_limit_bytes = rows_about * (sizeof(Row) + 32);
  return options;
}

TEST_P(RunGenerationTest, AllRowsLandInSortedRuns) {
  auto gen = MakeGenerator(SmallMemory());
  Random rng(1);
  std::vector<double> keys;
  for (int i = 0; i < 5000; ++i) {
    const double key = rng.NextDouble();
    keys.push_back(key);
    ASSERT_TRUE(gen->Add(Row(key, i)).ok());
  }
  ASSERT_TRUE(gen->Flush().ok());
  EXPECT_EQ(gen->stats().rows_added, 5000u);
  EXPECT_EQ(gen->stats().rows_spilled, 5000u);
  EXPECT_GT(spill_->run_count(), 1u);

  RowComparator cmp;
  std::vector<double> read_back;
  for (const RunMeta& meta : spill_->runs()) {
    std::vector<Row> rows = ReadRun(meta);
    EXPECT_EQ(rows.size(), meta.rows);
    ASSERT_TRUE(std::is_sorted(rows.begin(), rows.end(), cmp));
    EXPECT_EQ(rows.front().key, meta.first_key);
    EXPECT_EQ(rows.back().key, meta.last_key);
    for (const Row& row : rows) read_back.push_back(row.key);
  }
  std::sort(keys.begin(), keys.end());
  std::sort(read_back.begin(), read_back.end());
  EXPECT_EQ(keys, read_back);
}

TEST_P(RunGenerationTest, DescendingComparatorProducesDescendingRuns) {
  RowComparator cmp(SortDirection::kDescending);
  auto gen = MakeGenerator(SmallMemory(), cmp);
  Random rng(2);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(gen->Add(Row(rng.NextDouble(), i)).ok());
  }
  ASSERT_TRUE(gen->Flush().ok());
  for (const RunMeta& meta : spill_->runs()) {
    std::vector<Row> rows = ReadRun(meta);
    ASSERT_TRUE(std::is_sorted(rows.begin(), rows.end(), cmp));
  }
}

TEST_P(RunGenerationTest, RunRowLimitSplitsRuns) {
  RunGeneratorOptions options = SmallMemory(100);
  options.run_row_limit = 25;
  auto gen = MakeGenerator(options);
  Random rng(3);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(gen->Add(Row(rng.NextDouble(), i)).ok());
  }
  ASSERT_TRUE(gen->Flush().ok());
  uint64_t total = 0;
  for (const RunMeta& meta : spill_->runs()) {
    EXPECT_LE(meta.rows, 25u);
    total += meta.rows;
  }
  EXPECT_EQ(total, 1000u);
}

TEST_P(RunGenerationTest, VariableSizeRowsRespectByteBudget) {
  RunGeneratorOptions options;
  options.memory_limit_bytes = 64 * 1024;
  auto gen = MakeGenerator(options);
  DatasetSpec spec;
  spec.WithRows(2000).WithPayload(0, 600).WithSeed(11);
  RowGenerator rows(spec);
  Row row;
  while (rows.Next(&row)) {
    ASSERT_TRUE(gen->Add(std::move(row)).ok());
  }
  ASSERT_TRUE(gen->Flush().ok());
  EXPECT_LE(gen->stats().peak_memory_bytes, 2 * options.memory_limit_bytes);
  EXPECT_EQ(gen->stats().rows_spilled, 2000u);
  uint64_t total = 0;
  for (const RunMeta& meta : spill_->runs()) total += meta.rows;
  EXPECT_EQ(total, 2000u);
}

TEST_P(RunGenerationTest, BudgetEnforcedAcrossPayloadSizes) {
  // Regression for the MemoryFootprint under-count: payloads that left SSO
  // but stayed under sizeof(std::string) were charged zero heap bytes, so
  // small-payload workloads quietly buffered more rows than the budget
  // intended. The peak may exceed the limit by at most one row's footprint
  // (the row is added before the spill loop runs), for every payload shape.
  for (const size_t payload : {size_t{0}, size_t{8}, size_t{24}, size_t{64}}) {
    RunGeneratorOptions options;
    options.memory_limit_bytes = 16 * 1024;
    auto gen = MakeGenerator(options);
    const std::string fill(payload, 'p');
    const size_t row_cost =
        Row(0.0, 0, fill).MemoryFootprint() + kPerRowOverheadBytes;
    Random rng(31 + payload);
    for (int i = 0; i < 4000; ++i) {
      ASSERT_TRUE(gen->Add(Row(rng.NextDouble(), i, fill)).ok());
    }
    const size_t peak = gen->stats().peak_memory_bytes;
    ASSERT_TRUE(gen->Flush().ok());
    EXPECT_LE(peak, options.memory_limit_bytes + row_cost)
        << "payload " << payload;
    EXPECT_EQ(gen->stats().rows_spilled, 4000u) << "payload " << payload;
  }
}

/// Observer that eliminates keys above a fixed threshold and records calls.
class ThresholdObserver : public SpillObserver {
 public:
  explicit ThresholdObserver(double threshold) : threshold_(threshold) {}

  bool EliminateAtSpill(const Row& row) override {
    return row.key > threshold_;
  }
  void OnRowSpilled(const Row& row) override { spilled_keys.push_back(row.key); }
  std::vector<HistogramBucket> OnRunFinished() override {
    ++runs_finished;
    return {};
  }

  std::vector<double> spilled_keys;
  int runs_finished = 0;

 private:
  double threshold_;
};

TEST_P(RunGenerationTest, ObserverEliminatesAtSpill) {
  RunGeneratorOptions options = SmallMemory(50);
  ThresholdObserver observer(0.5);
  options.observer = &observer;
  auto gen = MakeGenerator(options);
  Random rng(4);
  uint64_t below = 0;
  for (int i = 0; i < 2000; ++i) {
    const double key = rng.NextDouble();
    if (key <= 0.5) ++below;
    ASSERT_TRUE(gen->Add(Row(key, i)).ok());
  }
  ASSERT_TRUE(gen->Flush().ok());
  EXPECT_EQ(gen->stats().rows_spilled, below);
  EXPECT_EQ(gen->stats().rows_eliminated_at_spill, 2000 - below);
  EXPECT_EQ(observer.spilled_keys.size(), below);
  EXPECT_GT(observer.runs_finished, 0);
  for (double key : observer.spilled_keys) EXPECT_LE(key, 0.5);
}

TEST_P(RunGenerationTest, FlushOnEmptyInputCreatesNoRuns) {
  auto gen = MakeGenerator(SmallMemory());
  ASSERT_TRUE(gen->Flush().ok());
  EXPECT_EQ(spill_->run_count(), 0u);
  EXPECT_EQ(gen->stats().rows_spilled, 0u);
}

TEST_P(RunGenerationTest, SingleRowSingleRun) {
  auto gen = MakeGenerator(SmallMemory());
  ASSERT_TRUE(gen->Add(Row(0.5, 0)).ok());
  ASSERT_TRUE(gen->Flush().ok());
  ASSERT_EQ(spill_->run_count(), 1u);
  EXPECT_EQ(spill_->runs()[0].rows, 1u);
}

INSTANTIATE_TEST_SUITE_P(Generators, RunGenerationTest,
                         ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "ReplacementSelection"
                                             : "Quicksort";
                         });

// --- Replacement-selection-specific behaviour ---

class ReplacementSelectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("topk_rs_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    auto spill = SpillManager::Create(&env_, dir_.string());
    ASSERT_TRUE(spill.ok());
    spill_ = std::move(*spill);
  }

  void TearDown() override {
    spill_.reset();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::filesystem::path dir_;
  StorageEnv env_;
  std::unique_ptr<SpillManager> spill_;
};

TEST_F(ReplacementSelectionTest, PresortedInputYieldsOneLongRun) {
  // The signature property of replacement selection: already-sorted input
  // produces a single run regardless of memory size.
  RunGeneratorOptions options;
  options.memory_limit_bytes = 100 * (sizeof(Row) + 32);
  ReplacementSelectionRunGenerator gen(spill_.get(), RowComparator(),
                                       options);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(gen.Add(Row(i * 1.0, i)).ok());
  }
  ASSERT_TRUE(gen.Flush().ok());
  EXPECT_EQ(spill_->run_count(), 1u);
  EXPECT_EQ(spill_->runs()[0].rows, 5000u);
}

TEST_F(ReplacementSelectionTest, RandomInputRunsAverageTwiceMemory) {
  const size_t memory_rows = 200;
  RunGeneratorOptions options;
  options.memory_limit_bytes = memory_rows * (sizeof(Row) + 32);
  ReplacementSelectionRunGenerator gen(spill_.get(), RowComparator(),
                                       options);
  Random rng(6);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(gen.Add(Row(rng.NextDouble(), i)).ok());
  }
  ASSERT_TRUE(gen.Flush().ok());
  const double avg_run =
      static_cast<double>(n) / static_cast<double>(spill_->run_count());
  // Knuth: expected run length ~ 2x memory on random input.
  EXPECT_GT(avg_run, 1.5 * memory_rows);
  EXPECT_LT(avg_run, 2.6 * memory_rows);
}

TEST_F(ReplacementSelectionTest, ReverseSortedInputYieldsMemorySizedRuns) {
  // Worst case: descending input with ascending sort -> every row starts a
  // new logical run once memory cycles; run length ~= memory capacity.
  const size_t memory_rows = 100;
  RunGeneratorOptions options;
  options.memory_limit_bytes = memory_rows * (sizeof(Row) + 32);
  ReplacementSelectionRunGenerator gen(spill_.get(), RowComparator(),
                                       options);
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(gen.Add(Row(static_cast<double>(n - i), i)).ok());
  }
  ASSERT_TRUE(gen.Flush().ok());
  const double avg_run =
      static_cast<double>(n) / static_cast<double>(spill_->run_count());
  EXPECT_LT(avg_run, 1.3 * memory_rows);
}

TEST_F(ReplacementSelectionTest, PipelinedOperationNeverHoldsInputBack) {
  // Adds never block on a full sort: after every Add the buffered rows stay
  // within the budget.
  RunGeneratorOptions options;
  options.memory_limit_bytes = 50 * (sizeof(Row) + 32);
  ReplacementSelectionRunGenerator gen(spill_.get(), RowComparator(),
                                       options);
  Random rng(8);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(gen.Add(Row(rng.NextDouble(), i)).ok());
    EXPECT_LE(gen.stats().rows_in_memory, 51u);
  }
}

}  // namespace
}  // namespace topk
