#include "sort/external_sorter.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "topk/stats_reporter.h"

namespace topk {
namespace {

using testing_util::MaterializeDataset;
using testing_util::ScratchDir;

class ExternalSorterTest : public ::testing::Test {
 protected:
  ExternalSorter::Options Options(size_t memory_bytes = 32 * 1024) {
    ExternalSorter::Options options;
    options.memory_limit_bytes = memory_bytes;
    options.env = &env_;
    options.spill_dir = scratch_.str() + "/" + std::to_string(seq_++);
    return options;
  }

  ScratchDir scratch_;
  StorageEnv env_;
  int seq_ = 0;
};

TEST_F(ExternalSorterTest, SortsSpillingInput) {
  auto sorter = ExternalSorter::Make(Options());
  ASSERT_TRUE(sorter.ok());
  DatasetSpec spec;
  spec.WithRows(20000).WithPayload(4, 24).WithSeed(1);
  auto rows = MaterializeDataset(spec);
  for (const Row& row : rows) {
    ASSERT_TRUE((*sorter)->Add(row).ok());
  }
  EXPECT_EQ((*sorter)->rows_added(), rows.size());
  auto sorted = (*sorter)->SortToVector();
  ASSERT_TRUE(sorted.ok());
  EXPECT_GT((*sorter)->rows_spilled(), 0u);

  RowComparator cmp;
  std::sort(rows.begin(), rows.end(), cmp);
  ASSERT_EQ(sorted->size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    ASSERT_EQ((*sorted)[i].id, rows[i].id);
  }
}

TEST_F(ExternalSorterTest, InMemoryWhenInputFits) {
  auto sorter = ExternalSorter::Make(Options(16 << 20));
  ASSERT_TRUE(sorter.ok());
  for (int i = 100; i > 0; --i) {
    ASSERT_TRUE((*sorter)->Add(Row(i, i)).ok());
  }
  auto sorted = (*sorter)->SortToVector();
  ASSERT_TRUE(sorted.ok());
  EXPECT_EQ((*sorter)->rows_spilled(), 0u);
  EXPECT_EQ(env_.stats()->bytes_written(), 0u);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ((*sorted)[i].key, i + 1.0);
  }
}

TEST_F(ExternalSorterTest, DescendingDirection) {
  ExternalSorter::Options options = Options();
  options.direction = SortDirection::kDescending;
  auto sorter = ExternalSorter::Make(options);
  ASSERT_TRUE(sorter.ok());
  DatasetSpec spec;
  spec.WithRows(5000).WithSeed(2);
  auto rows = MaterializeDataset(spec);
  for (const Row& row : rows) {
    ASSERT_TRUE((*sorter)->Add(row).ok());
  }
  auto sorted = (*sorter)->SortToVector();
  ASSERT_TRUE(sorted.ok());
  RowComparator cmp(SortDirection::kDescending);
  EXPECT_TRUE(std::is_sorted(sorted->begin(), sorted->end(), cmp));
}

TEST_F(ExternalSorterTest, TinyFanInMultiPass) {
  ExternalSorter::Options options = Options(8 * 1024);
  options.merge_fan_in = 2;
  auto sorter = ExternalSorter::Make(options);
  ASSERT_TRUE(sorter.ok());
  DatasetSpec spec;
  spec.WithRows(10000).WithSeed(3);
  auto rows = MaterializeDataset(spec);
  for (const Row& row : rows) {
    ASSERT_TRUE((*sorter)->Add(row).ok());
  }
  auto sorted = (*sorter)->SortToVector();
  ASSERT_TRUE(sorted.ok());
  ASSERT_EQ(sorted->size(), rows.size());
  RowComparator cmp;
  EXPECT_TRUE(std::is_sorted(sorted->begin(), sorted->end(), cmp));
}

TEST_F(ExternalSorterTest, EmptyInput) {
  auto sorter = ExternalSorter::Make(Options());
  ASSERT_TRUE(sorter.ok());
  auto sorted = (*sorter)->SortToVector();
  ASSERT_TRUE(sorted.ok());
  EXPECT_TRUE(sorted->empty());
}

TEST_F(ExternalSorterTest, QuicksortVariant) {
  ExternalSorter::Options options = Options();
  options.run_generation = RunGenerationKind::kQuicksort;
  auto sorter = ExternalSorter::Make(options);
  ASSERT_TRUE(sorter.ok());
  DatasetSpec spec;
  spec.WithRows(8000).WithSeed(4);
  auto rows = MaterializeDataset(spec);
  for (const Row& row : rows) {
    ASSERT_TRUE((*sorter)->Add(row).ok());
  }
  auto sorted = (*sorter)->SortToVector();
  ASSERT_TRUE(sorted.ok());
  RowComparator cmp;
  EXPECT_TRUE(std::is_sorted(sorted->begin(), sorted->end(), cmp));
  EXPECT_EQ(sorted->size(), rows.size());
}

TEST_F(ExternalSorterTest, InvalidOptionsRejected) {
  ExternalSorter::Options options;  // no env / spill dir
  EXPECT_FALSE(ExternalSorter::Make(options).ok());
  options.env = &env_;
  EXPECT_FALSE(ExternalSorter::Make(options).ok());
  options.spill_dir = scratch_.str();
  options.merge_fan_in = 1;
  EXPECT_FALSE(ExternalSorter::Make(options).ok());
}

TEST_F(ExternalSorterTest, AddAfterSortFails) {
  auto sorter = ExternalSorter::Make(Options());
  ASSERT_TRUE(sorter.ok());
  ASSERT_TRUE((*sorter)->Add(Row(1, 1)).ok());
  ASSERT_TRUE((*sorter)->SortToVector().ok());
  EXPECT_EQ((*sorter)->Add(Row(2, 2)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(StatsReporterTest, FormatCountGroupsThousands) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(1000), "1,000");
  EXPECT_EQ(FormatCount(1234567), "1,234,567");
  EXPECT_EQ(FormatCount(12345678), "12,345,678");
}

TEST(StatsReporterTest, FormatOperatorStatsMentionsKeyFields) {
  OperatorStats stats;
  stats.rows_consumed = 1000;
  stats.rows_eliminated_input = 600;
  stats.rows_spilled = 300;
  stats.final_cutoff = 0.25;
  stats.filter_buckets_inserted = 42;
  const std::string report = FormatOperatorStats(stats);
  EXPECT_NE(report.find("rows consumed"), std::string::npos);
  EXPECT_NE(report.find("1,000"), std::string::npos);
  EXPECT_NE(report.find("(60.0%)"), std::string::npos);
  EXPECT_NE(report.find("0.25"), std::string::npos);
  EXPECT_NE(report.find("buckets inserted"), std::string::npos);
}

TEST(StatsReporterTest, NoCutoffPrintsNone) {
  OperatorStats stats;
  const std::string report = FormatOperatorStats(stats);
  EXPECT_NE(report.find("(none)"), std::string::npos);
}

}  // namespace
}  // namespace topk
