/// Memory-conformance suite: every operator leases its memory from the
/// arbiter it is handed, releases everything by destruction time, survives
/// injected allocation failures as clean OutOfMemory/ResourceExhausted
/// statuses (never a crash), and — via a counting global allocator — its
/// real heap footprint is consistent with what it leased.

#include <malloc.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "common/resource_arbiter.h"
#include "tests/test_util.h"
#include "topk/operator_factory.h"

// ---------------------------------------------------------------------------
// Counting global allocator. Tracks live and peak heap bytes via
// malloc_usable_size so the tests below can compare the process's actual
// footprint against the arbiter's books. Thread-safe (relaxed atomics);
// alignment-overloaded news fall through to the default path uncounted,
// which only makes the measured peak an undercount — fine for the
// directional assertions used here.
// ---------------------------------------------------------------------------

namespace {
std::atomic<size_t> g_live_bytes{0};
std::atomic<size_t> g_peak_bytes{0};

void CountAlloc(void* p) {
  if (p == nullptr) return;
  const size_t size = ::malloc_usable_size(p);
  const size_t live =
      g_live_bytes.fetch_add(size, std::memory_order_relaxed) + size;
  size_t peak = g_peak_bytes.load(std::memory_order_relaxed);
  while (live > peak && !g_peak_bytes.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
}

void CountFree(void* p) {
  if (p == nullptr) return;
  g_live_bytes.fetch_sub(::malloc_usable_size(p), std::memory_order_relaxed);
}
}  // namespace

// noinline keeps GCC from inlining the malloc/free pair into call sites,
// where it would misfire -Wmismatched-new-delete (the pairing is
// consistent: every replaced operator goes through malloc/free).
#if defined(__GNUC__)
#define TOPK_COUNTING_NOINLINE __attribute__((noinline))
#else
#define TOPK_COUNTING_NOINLINE
#endif

TOPK_COUNTING_NOINLINE void* operator new(size_t size) {
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  CountAlloc(p);
  return p;
}
TOPK_COUNTING_NOINLINE void* operator new[](size_t size) {
  return ::operator new(size);
}
TOPK_COUNTING_NOINLINE void operator delete(void* p) noexcept {
  CountFree(p);
  std::free(p);
}
TOPK_COUNTING_NOINLINE void operator delete[](void* p) noexcept {
  ::operator delete(p);
}
TOPK_COUNTING_NOINLINE void operator delete(void* p, size_t) noexcept {
  ::operator delete(p);
}
TOPK_COUNTING_NOINLINE void operator delete[](void* p, size_t) noexcept {
  ::operator delete(p);
}

namespace topk {
namespace {

using testing_util::ExpectSameRows;
using testing_util::MaterializeDataset;
using testing_util::ReferenceTopK;
using testing_util::RunOperator;
using testing_util::ScratchDir;

constexpr size_t kChunk = 256 * 1024;  // mirrors kLeaseChunkBytes

const std::vector<TopKAlgorithm> kAllAlgorithms = {
    TopKAlgorithm::kHeap, TopKAlgorithm::kTraditionalExternal,
    TopKAlgorithm::kOptimizedExternal, TopKAlgorithm::kHistogram};

std::vector<Row> Dataset(uint64_t rows = 20000) {
  DatasetSpec spec;
  spec.WithRows(rows).WithSeed(91).WithPayload(24, 24);
  return MaterializeDataset(spec);
}

/// Small enough that the external operators spill; the heap operator runs
/// unbounded (its own memory_limit failure mode is tested elsewhere — here
/// only the arbiter should ever say no).
TopKOptions ConformanceOptions(StorageEnv* env, const std::string& dir,
                               TopKAlgorithm algorithm,
                               MemoryArbiter* arbiter) {
  TopKOptions options;
  options.k = 300;
  options.memory_limit_bytes = 16 * 1024;
  options.io_background_threads = 0;
  options.env = env;
  options.spill_dir = dir;
  options.arbiter = arbiter;
  if (algorithm == TopKAlgorithm::kHeap) {
    options.allow_unbounded_memory = true;
  }
  return options;
}

TEST(MemoryConformanceTest, EveryOperatorReleasesAllLeases) {
  const auto rows = Dataset();
  const auto expected = ReferenceTopK(rows, 300, 0, SortDirection::kAscending);
  for (const TopKAlgorithm algorithm : kAllAlgorithms) {
    SCOPED_TRACE(TopKAlgorithmName(algorithm));
    MemoryArbiter arbiter;  // accounting only
    ScratchDir scratch;
    StorageEnv env;
    {
      TopKOptions options =
          ConformanceOptions(&env, scratch.str(), algorithm, &arbiter);
      auto op = MakeTopKOperator(algorithm, options);
      ASSERT_TRUE(op.ok()) << op.status().ToString();
      auto result = RunOperator(op->get(), rows);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ExpectSameRows(expected, *result);
    }
    // Leases live at most as long as the operator: with it destroyed, the
    // arbiter's books must be exactly empty.
    EXPECT_EQ(arbiter.granted_bytes(), 0u);
    EXPECT_GT(arbiter.peak_bytes(), 0u) << "operator never leased anything";
    EXPECT_GT(arbiter.grant_count(), 0u);
  }
}

TEST(MemoryConformanceTest, ArbiterPeakCoversTheBufferedFootprint) {
  // A spilling workload buffers up to memory_limit_bytes before each run;
  // the operator's lease must cover that footprint, so the arbiter peak
  // cannot be below half the configured limit.
  const size_t limit = 512 * 1024;
  DatasetSpec spec;
  spec.WithRows(30000).WithSeed(17).WithPayload(40, 40);  // ~2.5 MiB input
  const auto rows = MaterializeDataset(spec);
  for (const TopKAlgorithm algorithm :
       {TopKAlgorithm::kTraditionalExternal, TopKAlgorithm::kHistogram}) {
    SCOPED_TRACE(TopKAlgorithmName(algorithm));
    MemoryArbiter arbiter;
    ScratchDir scratch;
    StorageEnv env;
    TopKOptions options =
        ConformanceOptions(&env, scratch.str(), algorithm, &arbiter);
    options.memory_limit_bytes = limit;
    auto op = MakeTopKOperator(algorithm, options);
    ASSERT_TRUE(op.ok()) << op.status().ToString();
    auto result = RunOperator(op->get(), rows);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_GE(arbiter.peak_bytes(), limit / 2)
        << "the sort buffer was not charged to the arbiter";
  }
}

TEST(MemoryConformanceTest, MeasuredHeapBacksTheGrantedBytes) {
  // The leases describe real memory: the measured heap growth while the
  // query runs must be able to account for the arbiter peak, modulo chunk
  // rounding (every lease rounds up by < 1 chunk) and a generous fixed
  // slack for allocator overhead and test scaffolding.
  DatasetSpec spec;
  spec.WithRows(60000).WithSeed(29).WithPayload(56, 56);  // ~5 MiB input
  const auto rows = MaterializeDataset(spec);
  MemoryArbiter arbiter;
  ScratchDir scratch;
  StorageEnv env;
  TopKOptions options = ConformanceOptions(&env, scratch.str(),
                                           TopKAlgorithm::kHistogram, &arbiter);
  options.memory_limit_bytes = 4 * 1024 * 1024;

  const size_t live_before = g_live_bytes.load(std::memory_order_relaxed);
  g_peak_bytes.store(live_before, std::memory_order_relaxed);
  auto op = MakeTopKOperator(TopKAlgorithm::kHistogram, options);
  ASSERT_TRUE(op.ok()) << op.status().ToString();
  auto result = RunOperator(op->get(), rows);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const size_t measured_peak_delta =
      g_peak_bytes.load(std::memory_order_relaxed) - live_before;
  EXPECT_GE(measured_peak_delta + 8 * kChunk, arbiter.peak_bytes())
      << "arbiter books exceed what the process ever allocated: leases are "
         "over-claiming (peak_delta="
      << measured_peak_delta << ", arbiter peak=" << arbiter.peak_bytes()
      << ")";
  EXPECT_GT(arbiter.peak_bytes(), 0u);
}

TEST(MemoryConformanceTest, FirstGrantDenialFailsTheQueryCleanly) {
  // nth=1 denies the operator's very first (bootstrap) grant: Consume must
  // surface a clean OutOfMemory on row one — and keep returning it (the
  // first-error latch), never crash.
  const auto rows = Dataset(100);
  for (const TopKAlgorithm algorithm : kAllAlgorithms) {
    SCOPED_TRACE(TopKAlgorithmName(algorithm));
    MemoryArbiter arbiter;
    MemFaultProfile profile;
    profile.deny_nth = 1;
    arbiter.SetFaultProfile(profile);
    ScratchDir scratch;
    StorageEnv env;
    TopKOptions options =
        ConformanceOptions(&env, scratch.str(), algorithm, &arbiter);
    auto op = MakeTopKOperator(algorithm, options);
    ASSERT_TRUE(op.ok()) << op.status().ToString();
    Status first = (*op)->Consume(rows[0]);
    ASSERT_FALSE(first.ok());
    EXPECT_EQ(first.code(), StatusCode::kOutOfMemory)
        << first.ToString();
    if (algorithm != TopKAlgorithm::kHeap) {
      // The spilling operators latch the first error so Suspend reports
      // the real cause of death instead of a precondition complaint.
      Status latched = (*op)->Suspend();
      ASSERT_FALSE(latched.ok());
      EXPECT_EQ(latched.code(), StatusCode::kOutOfMemory)
          << latched.ToString();
    }
  }
}

TEST(MemoryConformanceTest, ThrownBadAllocIsContainedAtConsume) {
  // mode=throw turns the same denial into a real std::bad_alloc thrown out
  // of the arbiter; RunWithAllocGuard must convert it at the operator
  // boundary into OutOfMemory naming the containment site.
  const auto rows = Dataset(100);
  for (const TopKAlgorithm algorithm : kAllAlgorithms) {
    SCOPED_TRACE(TopKAlgorithmName(algorithm));
    MemoryArbiter arbiter;
    MemFaultProfile profile;
    profile.deny_nth = 1;
    profile.throw_bad_alloc = true;
    arbiter.SetFaultProfile(profile);
    ScratchDir scratch;
    StorageEnv env;
    TopKOptions options =
        ConformanceOptions(&env, scratch.str(), algorithm, &arbiter);
    auto op = MakeTopKOperator(algorithm, options);
    ASSERT_TRUE(op.ok()) << op.status().ToString();
    Status status = (*op)->Consume(rows[0]);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kOutOfMemory) << status.ToString();
    EXPECT_NE(status.message().find("allocation failure contained at"),
              std::string::npos)
        << status.ToString();
  }
}

TEST(MemoryConformanceTest, ThrowingFaultsArmedAtFinishNeverEscape) {
  // Arm a deny-everything throwing profile only after the input is fully
  // consumed, so the faults land inside Finish (merge readers, prefetch,
  // writers). Degradation paths swallow refusals by design, so Finish may
  // still succeed — the contract under test is: byte-identical rows or a
  // clean memory status, never an escaped exception.
  const auto rows = Dataset();
  const auto expected = ReferenceTopK(rows, 300, 0, SortDirection::kAscending);
  for (const TopKAlgorithm algorithm : kAllAlgorithms) {
    SCOPED_TRACE(TopKAlgorithmName(algorithm));
    MemoryArbiter arbiter;
    ScratchDir scratch;
    StorageEnv env;
    TopKOptions options =
        ConformanceOptions(&env, scratch.str(), algorithm, &arbiter);
    auto op = MakeTopKOperator(algorithm, options);
    ASSERT_TRUE(op.ok()) << op.status().ToString();
    for (const Row& row : rows) {
      ASSERT_TRUE((*op)->Consume(row).ok());
    }
    MemFaultProfile profile;
    profile.deny_rate = 1.0;
    profile.throw_bad_alloc = true;
    arbiter.SetFaultProfile(profile);
    auto result = (*op)->Finish();
    if (result.ok()) {
      ExpectSameRows(expected, *result);
    } else {
      EXPECT_EQ(result.status().code(), StatusCode::kOutOfMemory)
          << result.status().ToString();
      EXPECT_NE(
          result.status().message().find("allocation failure contained at"),
          std::string::npos)
          << result.status().ToString();
    }
  }
}

TEST(MemoryConformanceTest, HardBudgetDenialNamesTheBudget) {
  // A budget below one lease chunk means the first real growth is refused:
  // the query must fail with ResourceExhausted that names the configured
  // budget (the greppable operator signature), not crash or mis-answer.
  const auto rows = Dataset(2000);
  for (const TopKAlgorithm algorithm : kAllAlgorithms) {
    SCOPED_TRACE(TopKAlgorithmName(algorithm));
    MemoryArbiter::Options arb_options;
    arb_options.budget_bytes = 64 * 1024;  // < one chunk
    MemoryArbiter arbiter(arb_options);
    ScratchDir scratch;
    StorageEnv env;
    TopKOptions options =
        ConformanceOptions(&env, scratch.str(), algorithm, &arbiter);
    auto op = MakeTopKOperator(algorithm, options);
    ASSERT_TRUE(op.ok()) << op.status().ToString();
    Status status = Status::OK();
    for (const Row& row : rows) {
      status = (*op)->Consume(row);
      if (!status.ok()) break;
    }
    if (status.ok()) {
      status = (*op)->Finish().status();
    }
    ASSERT_FALSE(status.ok()) << "a 64 KiB budget cannot fit this query";
    EXPECT_EQ(status.code(), StatusCode::kResourceExhausted)
        << status.ToString();
    EXPECT_NE(status.message().find("mem_budget_bytes="), std::string::npos)
        << status.ToString();
    EXPECT_GT(arbiter.denial_count(), 0u);
  }
}

TEST(MemoryConformanceTest, AmpleBudgetKeepsOutputIdentical) {
  // With admission control on but the budget comfortably above the
  // workload, the degradation machinery must not change the answer.
  const auto rows = Dataset();
  const auto expected = ReferenceTopK(rows, 300, 0, SortDirection::kAscending);
  for (const TopKAlgorithm algorithm : kAllAlgorithms) {
    SCOPED_TRACE(TopKAlgorithmName(algorithm));
    MemoryArbiter::Options arb_options;
    arb_options.budget_bytes = 64u << 20;
    MemoryArbiter arbiter(arb_options);
    ScratchDir scratch;
    StorageEnv env;
    TopKOptions options =
        ConformanceOptions(&env, scratch.str(), algorithm, &arbiter);
    auto op = MakeTopKOperator(algorithm, options);
    ASSERT_TRUE(op.ok()) << op.status().ToString();
    auto result = RunOperator(op->get(), rows);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectSameRows(expected, *result);
    EXPECT_EQ(arbiter.denial_count(), 0u);
  }
}

}  // namespace
}  // namespace topk
