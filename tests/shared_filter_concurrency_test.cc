/// Concurrency contract of SharedCutoffFilter: while any number of threads
/// mutate it (InsertBucket / ProposeCutoff / RowSpilled), the published
/// cutoff only ever tightens — an observer never sees it loosen, because a
/// looser cutoff could readmit rows that were already eliminated. Run this
/// under ThreadSanitizer (tools/run_sanitized.sh thread) to also validate
/// the lock-free Eliminate path against the locked mutation path.

#include <atomic>
#include <optional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "extensions/parallel_topk.h"
#include "histogram/cutoff_filter.h"

namespace topk {
namespace {

CutoffFilter::Options MakeOptions(SortDirection direction) {
  CutoffFilter::Options options;
  options.k = 100;
  options.direction = direction;
  options.target_buckets_per_run = 8;
  options.target_run_rows = 512;
  return options;
}

/// Reader thread: samples cutoff() in a loop and records every transition.
/// Monotonicity check: for consecutive samples c1 then c2, c2 must not sort
/// after c1 in the query direction (KeyLess(c1, c2) must be false).
void CheckMonotone(const SharedCutoffFilter& filter,
                   const std::atomic<bool>& stop,
                   std::atomic<bool>* violation) {
  const RowComparator& cmp = filter.comparator();
  std::optional<double> prev;
  while (!stop.load(std::memory_order_relaxed)) {
    std::optional<double> cur = filter.cutoff();
    if (cur.has_value()) {
      if (prev.has_value() && cmp.KeyLess(*prev, *cur)) {
        violation->store(true);
      }
      prev = cur;
    } else if (prev.has_value()) {
      // Once published, a cutoff can never disappear.
      violation->store(true);
    }
  }
}

class SharedFilterConcurrencyTest
    : public ::testing::TestWithParam<SortDirection> {};

TEST_P(SharedFilterConcurrencyTest, CutoffOnlyTightensUnderConcurrentInserts) {
  const SortDirection direction = GetParam();
  SharedCutoffFilter filter(MakeOptions(direction));
  const RowComparator cmp(direction);

  std::atomic<bool> stop{false};
  std::atomic<bool> violation{false};

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back(
        [&filter, &stop, &violation] { CheckMonotone(filter, stop, &violation); });
  }

  constexpr int kWriters = 4;
  constexpr int kBucketsPerWriter = 400;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&filter, direction, w] {
      // Each writer inserts buckets whose boundaries improve over time, from
      // a writer-specific offset, so the shared queue sees interleaved
      // progress from several histogram streams.
      for (int i = 0; i < kBucketsPerWriter; ++i) {
        const double base = 1000.0 - i + 0.1 * w;
        const double boundary =
            direction == SortDirection::kAscending ? base : -base;
        filter.InsertBucket(HistogramBucket{boundary, /*count=*/10});
        if (i % 64 == 0) {
          // Exact-cutoff proposals (the k-th row of an in-memory phase).
          filter.ProposeCutoff(boundary);
        }
        if (i % 16 == 0) {
          // Exercise the hot lock-free read path concurrently.
          filter.EliminateKey(boundary);
        }
      }
    });
  }

  for (auto& t : writers) t.join();
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_FALSE(violation.load()) << "published cutoff loosened";

  // With 4*400 buckets of 10 rows each and k=100 the filter must have
  // established some cutoff by the end.
  ASSERT_TRUE(filter.cutoff().has_value());
  // Final sanity: the cutoff eliminates a clearly-beyond key and keeps a
  // clearly-within key.
  const double beyond =
      direction == SortDirection::kAscending ? 1.0e12 : -1.0e12;
  EXPECT_TRUE(filter.EliminateKey(beyond));
  const double within =
      direction == SortDirection::kAscending ? -1.0e12 : 1.0e12;
  EXPECT_FALSE(filter.EliminateKey(within));
}

INSTANTIATE_TEST_SUITE_P(Directions, SharedFilterConcurrencyTest,
                         ::testing::Values(SortDirection::kAscending,
                                           SortDirection::kDescending),
                         [](const auto& info) {
                           return info.param == SortDirection::kAscending
                                      ? "Ascending"
                                      : "Descending";
                         });

}  // namespace
}  // namespace topk
