/// I/O failures must surface as Status through every external operator —
/// never crash, never silently return wrong results. This includes failures
/// that happen on a background flush thread of the I/O pipeline: they must
/// be latched and reported by a later Append/Close, not dropped.

#include <gtest/gtest.h>

#include "io/block_io.h"
#include "io/spill_manager.h"
#include "tests/test_util.h"
#include "topk/operator_factory.h"

namespace topk {
namespace {

using testing_util::MaterializeDataset;
using testing_util::RunOperator;
using testing_util::ScratchDir;

class FailureInjectionTest : public ::testing::TestWithParam<TopKAlgorithm> {
 protected:
  TopKOptions Options(StorageEnv* env, const std::string& dir) {
    TopKOptions options;
    options.k = 1000;
    options.memory_limit_bytes = 16 * 1024;
    options.env = env;
    options.spill_dir = dir;
    return options;
  }
};

TEST_P(FailureInjectionTest, WriteFailurePropagates) {
  ScratchDir scratch;
  StorageEnv env;
  env.InjectWriteFailure(3);  // fail the 3rd storage write call
  DatasetSpec spec;
  spec.WithRows(50000).WithSeed(1);
  auto rows = MaterializeDataset(spec);

  auto op = MakeTopKOperator(GetParam(), Options(&env, scratch.str()));
  ASSERT_TRUE(op.ok());
  Status status = Status::OK();
  for (const Row& row : rows) {
    status = (*op)->Consume(row);
    if (!status.ok()) break;
  }
  if (status.ok()) {
    auto result = (*op)->Finish();
    status = result.status();
  }
  EXPECT_EQ(status.code(), StatusCode::kIoError) << status.ToString();
}

/// The default options run the background I/O pipeline; this variant pins
/// both pipeline modes explicitly so an injected failure during a
/// *background* flush is proven to surface as a non-OK Status (latched by
/// DoubleBufferedWriter), and the synchronous path keeps its behaviour.
TEST_P(FailureInjectionTest, WriteFailurePropagatesInBothPipelineModes) {
  for (size_t io_threads : {size_t{0}, size_t{2}}) {
    SCOPED_TRACE("io_background_threads=" + std::to_string(io_threads));
    ScratchDir scratch;
    StorageEnv env;
    env.InjectWriteFailure(3);
    DatasetSpec spec;
    spec.WithRows(50000).WithSeed(7);
    auto rows = MaterializeDataset(spec);

    TopKOptions options = Options(&env, scratch.str());
    options.io_background_threads = io_threads;
    auto op = MakeTopKOperator(GetParam(), options);
    ASSERT_TRUE(op.ok());
    Status status = Status::OK();
    for (const Row& row : rows) {
      status = (*op)->Consume(row);
      if (!status.ok()) break;
    }
    if (status.ok()) {
      auto result = (*op)->Finish();
      status = result.status();
    }
    EXPECT_EQ(status.code(), StatusCode::kIoError) << status.ToString();
  }
}

TEST_P(FailureInjectionTest, ReadFailureDuringMergePropagates) {
  ScratchDir scratch;
  StorageEnv env;
  DatasetSpec spec;
  spec.WithRows(50000).WithSeed(2);
  auto rows = MaterializeDataset(spec);

  auto op = MakeTopKOperator(GetParam(), Options(&env, scratch.str()));
  ASSERT_TRUE(op.ok());
  for (const Row& row : rows) {
    ASSERT_TRUE((*op)->Consume(row).ok());
  }
  // All reads happen in Finish (merge phase) for the histogram and
  // traditional operators; the optimized baseline also reads during early
  // merges, which already happened — so inject now, right before Finish.
  env.InjectReadFailure(1);
  auto result = (*op)->Finish();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

/// Flush() failures must propagate exactly like Append() failures — every
/// BlockWriter::Close runs Append → Flush → Close on the file, and a call
/// site that drops the Flush status would silently lose buffered data.
TEST_P(FailureInjectionTest, FlushFailurePropagates) {
  ScratchDir scratch;
  StorageEnv env;
  env.InjectFlushFailure(1);
  DatasetSpec spec;
  spec.WithRows(50000).WithSeed(5);
  auto rows = MaterializeDataset(spec);

  auto op = MakeTopKOperator(GetParam(), Options(&env, scratch.str()));
  ASSERT_TRUE(op.ok());
  Status status = Status::OK();
  for (const Row& row : rows) {
    status = (*op)->Consume(row);
    if (!status.ok()) break;
  }
  if (status.ok()) {
    auto result = (*op)->Finish();
    status = result.status();
  }
  EXPECT_EQ(status.code(), StatusCode::kIoError) << status.ToString();
}

TEST_P(FailureInjectionTest, CloseFailurePropagates) {
  ScratchDir scratch;
  StorageEnv env;
  env.InjectCloseFailure(1);
  DatasetSpec spec;
  spec.WithRows(50000).WithSeed(6);
  auto rows = MaterializeDataset(spec);

  auto op = MakeTopKOperator(GetParam(), Options(&env, scratch.str()));
  ASSERT_TRUE(op.ok());
  Status status = Status::OK();
  for (const Row& row : rows) {
    status = (*op)->Consume(row);
    if (!status.ok()) break;
  }
  if (status.ok()) {
    auto result = (*op)->Finish();
    status = result.status();
  }
  EXPECT_EQ(status.code(), StatusCode::kIoError) << status.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    ExternalAlgorithms, FailureInjectionTest,
    ::testing::Values(TopKAlgorithm::kTraditionalExternal,
                      TopKAlgorithm::kOptimizedExternal,
                      TopKAlgorithm::kHistogram),
    [](const ::testing::TestParamInfo<TopKAlgorithm>& info) {
      std::string name = TopKAlgorithmName(info.param);
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

/// Regression: BlockWriter's destructor used to discard the Close() status
/// entirely. The destructor path cannot return an error, but it must not
/// crash and the failure must be observable (it is logged at WARNING).
TEST(BlockWriterFailureTest, DestructorSurvivesCloseFailure) {
  ScratchDir scratch;
  StorageEnv env;
  auto file = env.NewWritableFile(scratch.str() + "/f");
  ASSERT_TRUE(file.ok());
  {
    BlockWriter writer(std::move(*file), /*block_bytes=*/1024);
    ASSERT_TRUE(writer.Append(std::string(100, 'x')).ok());  // buffered only
    env.InjectWriteFailure(1);  // the destructor's flush will fail
  }  // must not crash; the error is logged, not thrown away silently
}

/// Regression: bytes_appended() used to count bytes *before* the flush
/// could fail, over-reporting on error. It must only count bytes the
/// writer actually accepted.
TEST(BlockWriterFailureTest, BytesAppendedNotCountedOnFailedAppend) {
  ScratchDir scratch;
  StorageEnv env;
  auto file = env.NewWritableFile(scratch.str() + "/f");
  ASSERT_TRUE(file.ok());
  BlockWriter writer(std::move(*file), /*block_bytes=*/128);
  ASSERT_TRUE(writer.Append(std::string(100, 'a')).ok());
  EXPECT_EQ(writer.bytes_appended(), 100u);
  env.InjectWriteFailure(1);
  // This append crosses the block boundary, triggering the failing flush.
  EXPECT_FALSE(writer.Append(std::string(100, 'b')).ok());
  EXPECT_EQ(writer.bytes_appended(), 100u);  // failed append not counted
  // Close after the failed flush must not crash (it may fail again or
  // succeed depending on what remains buffered).
  writer.Close();
}

/// DeleteFile() failures: RemoveRun must surface the error (a merge step
/// that cannot reclaim its inputs reports it, not ignores it), and the
/// manager's best-effort destructor cleanup must absorb one without
/// crashing.
TEST(DeleteFailureTest, RemoveRunSurfacesDeleteFailure) {
  ScratchDir scratch;
  StorageEnv env;
  auto spill = SpillManager::Create(&env, scratch.str() + "/spill");
  ASSERT_TRUE(spill.ok());
  auto writer = (*spill)->NewRun(RowComparator());
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(Row(1.0, 1, "p")).ok());
  auto meta = (*writer)->Finish();
  ASSERT_TRUE(meta.ok());
  (*spill)->AddRun(*meta);

  env.InjectDeleteFailure(1);
  Status status = (*spill)->RemoveRun(meta->id);
  EXPECT_EQ(status.code(), StatusCode::kIoError) << status.ToString();
}

TEST(DeleteFailureTest, DestructorCleanupSurvivesDeleteFailure) {
  ScratchDir scratch;
  StorageEnv env;
  {
    auto spill = SpillManager::Create(&env, scratch.str() + "/spill");
    ASSERT_TRUE(spill.ok());
    auto writer = (*spill)->NewRun(RowComparator());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(Row(1.0, 1, "p")).ok());
    auto meta = (*writer)->Finish();
    ASSERT_TRUE(meta.ok());
    (*spill)->AddRun(*meta);
    env.InjectDeleteFailure(1);
  }  // destructor cleanup: the failed delete is logged, not fatal
}

TEST(FailureCleanupTest, SpillDirRemovedDespiteFailure) {
  ScratchDir scratch;
  StorageEnv env;
  const std::string spill_dir = scratch.str() + "/spill";
  {
    env.InjectWriteFailure(2);
    TopKOptions options;
    options.k = 1000;
    options.memory_limit_bytes = 16 * 1024;
    options.env = &env;
    options.spill_dir = spill_dir;
    auto op = MakeTopKOperator(TopKAlgorithm::kHistogram, options);
    ASSERT_TRUE(op.ok());
    DatasetSpec spec;
    spec.WithRows(30000).WithSeed(3);
    auto rows = MaterializeDataset(spec);
    Status status = Status::OK();
    for (const Row& row : rows) {
      status = (*op)->Consume(row);
      if (!status.ok()) break;
    }
    EXPECT_FALSE(status.ok());
    // Operator destroyed here with spilled state.
  }
  EXPECT_FALSE(std::filesystem::exists(spill_dir));
}

TEST(FailureCleanupTest, OperatorUnusableButSafeAfterConsumeError) {
  ScratchDir scratch;
  StorageEnv env;
  env.InjectWriteFailure(1);
  TopKOptions options;
  options.k = 500;
  options.memory_limit_bytes = 8 * 1024;
  options.env = &env;
  options.spill_dir = scratch.str();
  auto op = MakeTopKOperator(TopKAlgorithm::kHistogram, options);
  ASSERT_TRUE(op.ok());
  DatasetSpec spec;
  spec.WithRows(20000).WithSeed(4);
  auto rows = MaterializeDataset(spec);
  bool failed = false;
  for (const Row& row : rows) {
    if (!(*op)->Consume(row).ok()) {
      failed = true;
      break;
    }
  }
  ASSERT_TRUE(failed);
  // Finishing after a failure must not crash; it may fail or succeed with
  // partial data, but must return a well-formed Result.
  auto result = (*op)->Finish();
  (void)result;
}

}  // namespace
}  // namespace topk
