/// I/O failures must surface as Status through every external operator —
/// never crash, never silently return wrong results.

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "topk/operator_factory.h"

namespace topk {
namespace {

using testing_util::MaterializeDataset;
using testing_util::RunOperator;
using testing_util::ScratchDir;

class FailureInjectionTest : public ::testing::TestWithParam<TopKAlgorithm> {
 protected:
  TopKOptions Options(StorageEnv* env, const std::string& dir) {
    TopKOptions options;
    options.k = 1000;
    options.memory_limit_bytes = 16 * 1024;
    options.env = env;
    options.spill_dir = dir;
    return options;
  }
};

TEST_P(FailureInjectionTest, WriteFailurePropagates) {
  ScratchDir scratch;
  StorageEnv env;
  env.InjectWriteFailure(3);  // fail the 3rd storage write call
  DatasetSpec spec;
  spec.WithRows(50000).WithSeed(1);
  auto rows = MaterializeDataset(spec);

  auto op = MakeTopKOperator(GetParam(), Options(&env, scratch.str()));
  ASSERT_TRUE(op.ok());
  Status status = Status::OK();
  for (const Row& row : rows) {
    status = (*op)->Consume(row);
    if (!status.ok()) break;
  }
  if (status.ok()) {
    auto result = (*op)->Finish();
    status = result.status();
  }
  EXPECT_EQ(status.code(), StatusCode::kIoError) << status.ToString();
}

TEST_P(FailureInjectionTest, ReadFailureDuringMergePropagates) {
  ScratchDir scratch;
  StorageEnv env;
  DatasetSpec spec;
  spec.WithRows(50000).WithSeed(2);
  auto rows = MaterializeDataset(spec);

  auto op = MakeTopKOperator(GetParam(), Options(&env, scratch.str()));
  ASSERT_TRUE(op.ok());
  for (const Row& row : rows) {
    ASSERT_TRUE((*op)->Consume(row).ok());
  }
  // All reads happen in Finish (merge phase) for the histogram and
  // traditional operators; the optimized baseline also reads during early
  // merges, which already happened — so inject now, right before Finish.
  env.InjectReadFailure(1);
  auto result = (*op)->Finish();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

INSTANTIATE_TEST_SUITE_P(
    ExternalAlgorithms, FailureInjectionTest,
    ::testing::Values(TopKAlgorithm::kTraditionalExternal,
                      TopKAlgorithm::kOptimizedExternal,
                      TopKAlgorithm::kHistogram),
    [](const ::testing::TestParamInfo<TopKAlgorithm>& info) {
      std::string name = TopKAlgorithmName(info.param);
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

TEST(FailureCleanupTest, SpillDirRemovedDespiteFailure) {
  ScratchDir scratch;
  StorageEnv env;
  const std::string spill_dir = scratch.str() + "/spill";
  {
    env.InjectWriteFailure(2);
    TopKOptions options;
    options.k = 1000;
    options.memory_limit_bytes = 16 * 1024;
    options.env = &env;
    options.spill_dir = spill_dir;
    auto op = MakeTopKOperator(TopKAlgorithm::kHistogram, options);
    ASSERT_TRUE(op.ok());
    DatasetSpec spec;
    spec.WithRows(30000).WithSeed(3);
    auto rows = MaterializeDataset(spec);
    Status status = Status::OK();
    for (const Row& row : rows) {
      status = (*op)->Consume(row);
      if (!status.ok()) break;
    }
    EXPECT_FALSE(status.ok());
    // Operator destroyed here with spilled state.
  }
  EXPECT_FALSE(std::filesystem::exists(spill_dir));
}

TEST(FailureCleanupTest, OperatorUnusableButSafeAfterConsumeError) {
  ScratchDir scratch;
  StorageEnv env;
  env.InjectWriteFailure(1);
  TopKOptions options;
  options.k = 500;
  options.memory_limit_bytes = 8 * 1024;
  options.env = &env;
  options.spill_dir = scratch.str();
  auto op = MakeTopKOperator(TopKAlgorithm::kHistogram, options);
  ASSERT_TRUE(op.ok());
  DatasetSpec spec;
  spec.WithRows(20000).WithSeed(4);
  auto rows = MaterializeDataset(spec);
  bool failed = false;
  for (const Row& row : rows) {
    if (!(*op)->Consume(row).ok()) {
      failed = true;
      break;
    }
  }
  ASSERT_TRUE(failed);
  // Finishing after a failure must not crash; it may fail or succeed with
  // partial data, but must return a well-formed Result.
  auto result = (*op)->Finish();
  (void)result;
}

}  // namespace
}  // namespace topk
