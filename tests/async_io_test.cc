/// Background I/O pipeline: ThreadPool, DoubleBufferedWriter,
/// PrefetchingBlockReader, and the SpillManager wiring. The pipeline must
/// produce byte-identical run files, surface background errors as Status,
/// and never lose or reorder data.

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "io/async_io.h"
#include "io/run_file.h"
#include "io/spill_manager.h"
#include "io/storage_env.h"
#include "obs/metrics.h"
#include "tests/test_util.h"

namespace topk {
namespace {

using testing_util::ScratchDir;

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(ThreadPoolTest, RunsEveryTaskBeforeDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.Schedule([&counter] { counter.fetch_add(1); });
    }
  }  // destructor drains the queue
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, AtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  pool.Schedule([&ran] { ran.store(true); });
  // Destructor (end of scope) waits for the task.
}

class AsyncIoTest : public ::testing::Test {
 protected:
  std::string Path(const std::string& name) {
    return scratch_.str() + "/" + name;
  }

  ScratchDir scratch_;
  StorageEnv env_;
  ThreadPool pool_{2};
};

TEST_F(AsyncIoTest, DoubleBufferedWriterWritesAllBlocksInOrder) {
  auto file = env_.NewWritableFile(Path("f"));
  ASSERT_TRUE(file.ok());
  std::string expected;
  {
    DoubleBufferedWriter writer(std::move(*file), &pool_);
    for (int i = 0; i < 50; ++i) {
      std::string block(97, static_cast<char>('a' + (i % 26)));
      expected += block;
      ASSERT_TRUE(writer.Append(block).ok());
    }
    ASSERT_TRUE(writer.Close().ok());
  }
  EXPECT_EQ(ReadWholeFile(Path("f")), expected);
}

TEST_F(AsyncIoTest, DoubleBufferedWriterLatchesBackgroundError) {
  auto file = env_.NewWritableFile(Path("f"));
  ASSERT_TRUE(file.ok());
  DoubleBufferedWriter writer(std::move(*file), &pool_);
  env_.InjectWriteFailure(2);  // the 2nd block flush fails in the background
  ASSERT_TRUE(writer.Append("block-1").ok());
  // The failure may not have happened yet when Append returns (it only
  // hands the block over); it must surface on a later call and stay
  // latched.
  Status status = writer.Append("block-2");
  if (status.ok()) status = writer.Append("block-3");
  if (status.ok()) status = writer.Close();
  EXPECT_EQ(status.code(), StatusCode::kIoError) << status.ToString();
  // Idempotent close keeps reporting the latched error.
  EXPECT_EQ(writer.Close().code(), StatusCode::kIoError);
}

TEST_F(AsyncIoTest, DoubleBufferedWriterErrorOnLastBlockSurfacesAtClose) {
  auto file = env_.NewWritableFile(Path("f"));
  ASSERT_TRUE(file.ok());
  DoubleBufferedWriter writer(std::move(*file), &pool_);
  env_.InjectWriteFailure(1);
  ASSERT_TRUE(writer.Append("doomed").ok());  // handed off, fails async
  EXPECT_EQ(writer.Close().code(), StatusCode::kIoError);
}

TEST_F(AsyncIoTest, PrefetchingReaderStreamsWholeFile) {
  std::string expected;
  {
    auto file = env_.NewWritableFile(Path("f"));
    ASSERT_TRUE(file.ok());
    for (int i = 0; i < 10; ++i) {
      expected += std::string(33, static_cast<char>('A' + i));
    }
    ASSERT_TRUE((*file)->Append(expected).ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  auto in = env_.NewSequentialFile(Path("f"));
  ASSERT_TRUE(in.ok());
  // Block size deliberately misaligned with the file size.
  PrefetchingBlockReader reader(std::move(*in), &pool_, /*block_bytes=*/64);
  std::string got;
  char buf[64];
  for (;;) {
    size_t n = 0;
    ASSERT_TRUE(reader.Read(sizeof(buf), buf, &n).ok());
    if (n == 0) break;
    got.append(buf, n);
  }
  EXPECT_EQ(got, expected);
}

TEST_F(AsyncIoTest, PrefetchingReaderSkipCrossesBlockBoundaries) {
  std::string payload(1000, '\0');
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>('0' + (i % 10));
  }
  {
    auto file = env_.NewWritableFile(Path("f"));
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append(payload).ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  auto in = env_.NewSequentialFile(Path("f"));
  ASSERT_TRUE(in.ok());
  PrefetchingBlockReader reader(std::move(*in), &pool_, /*block_bytes=*/100);
  char buf[16];
  size_t n = 0;
  ASSERT_TRUE(reader.Read(10, buf, &n).ok());
  ASSERT_EQ(n, 10u);
  EXPECT_EQ(std::string(buf, n), payload.substr(0, 10));
  // Skip past the ready remainder, the prefetched block, and into the
  // un-fetched tail of the file.
  ASSERT_TRUE(reader.Skip(700).ok());
  ASSERT_TRUE(reader.Read(10, buf, &n).ok());
  ASSERT_EQ(n, 10u);
  EXPECT_EQ(std::string(buf, n), payload.substr(710, 10));
}

TEST_F(AsyncIoTest, PrefetchingReaderSurfacesBackgroundReadError) {
  {
    auto file = env_.NewWritableFile(Path("f"));
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append(std::string(400, 'x')).ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  auto in = env_.NewSequentialFile(Path("f"));
  ASSERT_TRUE(in.ok());
  env_.InjectReadFailure(2);  // the prefetch of block 2 fails
  PrefetchingBlockReader reader(std::move(*in), &pool_, /*block_bytes=*/100);
  char buf[100];
  size_t n = 0;
  Status status = Status::OK();
  for (int block = 0; block < 5 && status.ok(); ++block) {
    status = reader.Read(sizeof(buf), buf, &n);
    if (status.ok() && n == 0) break;
  }
  EXPECT_EQ(status.code(), StatusCode::kIoError) << status.ToString();
}

TEST_F(AsyncIoTest, PrefetchUnconsumedCounterTracksAbandonedBlocks) {
  // The "prefetch overshoot" metric: blocks fetched off storage but never
  // handed to the consumer (a k-limited merge abandons each run mid-file).
  MetricsCounter* unconsumed =
      GlobalMetrics().GetCounter("io.prefetch.blocks_unconsumed");
  {
    auto file = env_.NewWritableFile(Path("f"));
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append(std::string(500, 'x')).ok());
    ASSERT_TRUE((*file)->Close().ok());
  }

  // Abandoned untouched: the constructor's eager prefetch is wasted.
  uint64_t before = unconsumed->value();
  {
    auto in = env_.NewSequentialFile(Path("f"));
    ASSERT_TRUE(in.ok());
    PrefetchingBlockReader reader(std::move(*in), &pool_,
                                  /*block_bytes=*/100);
  }
  EXPECT_EQ(unconsumed->value(), before + 1);

  // Abandoned inside the first block: pipelining ahead is deferred until
  // the run survives its first refill, so no second block was fetched and
  // nothing is wasted. (Most runs of a k-limited merge die right here —
  // the eager behaviour this regression test guards against prefetched
  // block two for every one of them.)
  before = unconsumed->value();
  {
    auto in = env_.NewSequentialFile(Path("f"));
    ASSERT_TRUE(in.ok());
    PrefetchingBlockReader reader(std::move(*in), &pool_,
                                  /*block_bytes=*/100);
    char buf[10];
    size_t n = 0;
    ASSERT_TRUE(reader.Read(sizeof(buf), buf, &n).ok());
    ASSERT_EQ(n, 10u);
  }
  EXPECT_EQ(unconsumed->value(), before);

  // Abandoned inside the second block: the run survived a refill, the
  // pipeline is ahead again, and the in-flight third block is wasted.
  before = unconsumed->value();
  {
    auto in = env_.NewSequentialFile(Path("f"));
    ASSERT_TRUE(in.ok());
    PrefetchingBlockReader reader(std::move(*in), &pool_,
                                  /*block_bytes=*/100);
    char buf[100];
    size_t n = 0;
    ASSERT_TRUE(reader.Read(sizeof(buf), buf, &n).ok());
    ASSERT_EQ(n, 100u);
    ASSERT_TRUE(reader.Read(10, buf, &n).ok());
    ASSERT_EQ(n, 10u);
  }
  EXPECT_EQ(unconsumed->value(), before + 1);

  // Drained to EOF: nothing was wasted.
  before = unconsumed->value();
  {
    auto in = env_.NewSequentialFile(Path("f"));
    ASSERT_TRUE(in.ok());
    PrefetchingBlockReader reader(std::move(*in), &pool_,
                                  /*block_bytes=*/100);
    char buf[100];
    for (;;) {
      size_t n = 0;
      ASSERT_TRUE(reader.Read(sizeof(buf), buf, &n).ok());
      if (n == 0) break;
    }
  }
  EXPECT_EQ(unconsumed->value(), before);
}

std::vector<Row> TestRows(size_t n) {
  std::vector<Row> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    rows.push_back(Row(static_cast<double>(i), i,
                       std::string(1 + (i % 40), static_cast<char>(i))));
  }
  return rows;
}

/// Acceptance: io_background_threads=0 and the pipelined path must produce
/// byte-identical run files.
TEST_F(AsyncIoTest, PipelinedRunFilesAreByteIdenticalToSynchronous) {
  const std::vector<Row> rows = TestRows(5000);
  const RowComparator cmp;
  std::string sync_path, async_path;
  {
    IoPipelineOptions io;  // background_threads = 0: synchronous
    auto spill = SpillManager::Create(&env_, Path("sync"), io);
    ASSERT_TRUE(spill.ok());
    auto writer = (*spill)->NewRun(cmp);
    ASSERT_TRUE(writer.ok());
    for (const Row& row : rows) ASSERT_TRUE((*writer)->Append(row).ok());
    auto meta = (*writer)->Finish();
    ASSERT_TRUE(meta.ok());
    sync_path = Path("sync_copy");
    std::filesystem::copy_file(meta->path, sync_path);
  }
  {
    IoPipelineOptions io;
    io.background_threads = 2;
    auto spill = SpillManager::Create(&env_, Path("async"), io);
    ASSERT_TRUE(spill.ok());
    ASSERT_NE((*spill)->io_pool(), nullptr);
    auto writer = (*spill)->NewRun(cmp);
    ASSERT_TRUE(writer.ok());
    for (const Row& row : rows) ASSERT_TRUE((*writer)->Append(row).ok());
    auto meta = (*writer)->Finish();
    ASSERT_TRUE(meta.ok());
    async_path = Path("async_copy");
    std::filesystem::copy_file(meta->path, async_path);
  }
  EXPECT_EQ(ReadWholeFile(sync_path), ReadWholeFile(async_path));
}

/// End-to-end through the pipelined SpillManager: write, verify, read back.
TEST_F(AsyncIoTest, PipelinedSpillRoundTripAndVerify) {
  IoPipelineOptions io;
  io.background_threads = 2;
  io.enable_prefetch = true;
  auto spill = SpillManager::Create(&env_, Path("spill"), io);
  ASSERT_TRUE(spill.ok());
  const RowComparator cmp;
  const std::vector<Row> rows = TestRows(3000);

  auto writer = (*spill)->NewRun(cmp);
  ASSERT_TRUE(writer.ok());
  for (const Row& row : rows) ASSERT_TRUE((*writer)->Append(row).ok());
  auto meta = (*writer)->Finish();
  ASSERT_TRUE(meta.ok());
  (*spill)->AddRun(*meta);

  ASSERT_TRUE((*spill)->VerifyRun(*meta, cmp).ok());

  auto reader = (*spill)->OpenRun(*meta);
  ASSERT_TRUE(reader.ok());
  Row row;
  bool eof = false;
  size_t i = 0;
  for (;;) {
    ASSERT_TRUE((*reader)->Next(&row, &eof).ok());
    if (eof) break;
    ASSERT_LT(i, rows.size());
    EXPECT_EQ(row.key, rows[i].key);
    EXPECT_EQ(row.payload, rows[i].payload);
    ++i;
  }
  EXPECT_EQ(i, rows.size());
}

}  // namespace
}  // namespace topk
