#include "sort/merger.h"

#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <filesystem>
#include <limits>

#include <gtest/gtest.h>

#include "common/random.h"
#include "obs/metrics.h"

namespace topk {
namespace {

class MergerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("topk_merger_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    auto spill = SpillManager::Create(&env_, dir_.string());
    ASSERT_TRUE(spill.ok());
    spill_ = std::move(*spill);
  }

  void TearDown() override {
    spill_.reset();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  /// Writes `keys` (sorted ascending here) as one run.
  void WriteRun(const std::vector<double>& keys) {
    RowComparator cmp;
    auto writer = spill_->NewRun(cmp);
    ASSERT_TRUE(writer.ok());
    for (size_t i = 0; i < keys.size(); ++i) {
      ASSERT_TRUE(
          (*writer)->Append(Row(keys[i], next_id_++)).ok());
    }
    auto meta = (*writer)->Finish();
    ASSERT_TRUE(meta.ok());
    spill_->AddRun(*meta);
  }

  Result<MergeStats> Merge(const MergeOptions& options,
                           std::vector<Row>* out) {
    return MergeRuns(spill_.get(), spill_->runs(), RowComparator(), options,
                     [out](Row&& row) {
                       out->push_back(std::move(row));
                       return Status::OK();
                     });
  }

  std::filesystem::path dir_;
  StorageEnv env_;
  std::unique_ptr<SpillManager> spill_;
  uint64_t next_id_ = 0;
};

TEST_F(MergerTest, MergesSortedRuns) {
  WriteRun({1, 4, 7});
  WriteRun({2, 5, 8});
  WriteRun({3, 6, 9});
  std::vector<Row> out;
  auto stats = Merge(MergeOptions{}, &out);
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(out.size(), 9u);
  for (size_t i = 0; i < 9; ++i) EXPECT_EQ(out[i].key, i + 1.0);
  EXPECT_TRUE(stats->exhausted_inputs);
  EXPECT_EQ(stats->rows_read, 9u);
  EXPECT_EQ(stats->rows_emitted, 9u);
  EXPECT_EQ(stats->last_key, 9.0);
}

TEST_F(MergerTest, EmptyRunListIsEmptyResult) {
  std::vector<Row> out;
  auto stats = Merge(MergeOptions{}, &out);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(stats->exhausted_inputs);
}

TEST_F(MergerTest, LimitStopsEarly) {
  WriteRun({1, 3, 5});
  WriteRun({2, 4, 6});
  MergeOptions options;
  options.limit = 4;
  std::vector<Row> out;
  auto stats = Merge(options, &out);
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out.back().key, 4.0);
  EXPECT_FALSE(stats->exhausted_inputs);
  EXPECT_LT(stats->rows_read, 7u);
}

TEST_F(MergerTest, SkipDropsOffsetRows) {
  WriteRun({1, 3, 5});
  WriteRun({2, 4, 6});
  MergeOptions options;
  options.skip = 2;
  options.limit = 3;
  std::vector<Row> out;
  auto stats = Merge(options, &out);
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].key, 3.0);
  EXPECT_EQ(out[2].key, 5.0);
  EXPECT_EQ(stats->rows_skipped, 2u);
}

TEST_F(MergerTest, SkipBeyondInputYieldsNothing) {
  WriteRun({1, 2});
  MergeOptions options;
  options.skip = 5;
  std::vector<Row> out;
  auto stats = Merge(options, &out);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(stats->rows_skipped, 2u);
}

TEST_F(MergerTest, StopFilterEndsMergeAtCutoff) {
  WriteRun({1, 4, 7, 10});
  WriteRun({2, 5, 8, 11});
  CutoffFilter::Options filter_options;
  filter_options.k = 2;
  CutoffFilter filter(filter_options);
  filter.ProposeCutoff(5.0);
  MergeOptions options;
  options.stop_filter = &filter;
  std::vector<Row> out;
  auto stats = Merge(options, &out);
  ASSERT_TRUE(stats.ok());
  // Rows up to and including key 5 are emitted; 7 stops the merge.
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out.back().key, 5.0);
  EXPECT_FALSE(stats->exhausted_inputs);
}

TEST_F(MergerTest, RefineFilterProposesKthKey) {
  WriteRun({1, 3, 5, 7});
  WriteRun({2, 4, 6, 8});
  CutoffFilter::Options filter_options;
  filter_options.k = 3;
  CutoffFilter filter(filter_options);
  MergeOptions options;
  options.refine_filter = &filter;
  std::vector<Row> out;
  auto stats = Merge(options, &out);
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(filter.cutoff().has_value());
  EXPECT_EQ(*filter.cutoff(), 3.0);  // the 3rd merged key
}

TEST_F(MergerTest, ManyRunsRandomizedAgainstSort) {
  Random rng(42);
  std::vector<double> all;
  for (int run = 0; run < 37; ++run) {
    std::vector<double> keys;
    const size_t n = rng.NextUint64(100);
    for (size_t i = 0; i < n; ++i) keys.push_back(rng.NextDouble());
    std::sort(keys.begin(), keys.end());
    all.insert(all.end(), keys.begin(), keys.end());
    WriteRun(keys);
  }
  std::vector<Row> out;
  auto stats = Merge(MergeOptions{}, &out);
  ASSERT_TRUE(stats.ok());
  std::sort(all.begin(), all.end());
  ASSERT_EQ(out.size(), all.size());
  for (size_t i = 0; i < all.size(); ++i) EXPECT_EQ(out[i].key, all[i]);
}

TEST_F(MergerTest, WithTiesExtendsPastLimit) {
  WriteRun({1, 2, 2, 2, 3});
  WriteRun({2, 2, 4});
  MergeOptions options;
  options.limit = 2;  // 2nd row has key 2 -> all five 2s must be emitted
  options.with_ties = true;
  std::vector<Row> out;
  auto stats = Merge(options, &out);
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(out.size(), 6u);  // 1 + five 2s
  EXPECT_EQ(out.back().key, 2.0);
}

TEST_F(MergerTest, WithTiesNoExtensionWhenBoundaryUnique) {
  WriteRun({1, 2, 3});
  WriteRun({4, 5, 6});
  MergeOptions options;
  options.limit = 3;
  options.with_ties = true;
  std::vector<Row> out;
  auto stats = Merge(options, &out);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(out.size(), 3u);
}

TEST_F(MergerTest, WithTiesAndSkipExtendAtOutputEnd) {
  WriteRun({1, 2, 3, 3, 3, 4});
  MergeOptions options;
  options.skip = 1;
  options.limit = 3;  // rows 2,3,3 then tie-extend with the third 3
  options.with_ties = true;
  std::vector<Row> out;
  auto stats = Merge(options, &out);
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out.front().key, 2.0);
  EXPECT_EQ(out.back().key, 3.0);
}

TEST_F(MergerTest, MalformedSeekVectorRejected) {
  WriteRun({1, 2, 3});
  WriteRun({4, 5, 6});
  MergeOptions options;
  options.seek_bytes = {0};  // wrong arity: 1 entry for 2 runs
  std::vector<Row> out;
  auto stats = Merge(options, &out);
  EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(MergerTest, SeekRowsBeyondSkipRejected) {
  WriteRun({1, 2, 3});
  MergeOptions options;
  options.skip = 1;
  options.seek_bytes = {0};
  options.seek_rows_total = 5;  // claims more seeked rows than the offset
  std::vector<Row> out;
  auto stats = Merge(options, &out);
  EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(MergerTest, SinkErrorPropagates) {
  WriteRun({1, 2, 3});
  auto result = MergeRuns(spill_.get(), spill_->runs(), RowComparator(),
                          MergeOptions{}, [](Row&&) {
                            return Status::Cancelled("sink full");
                          });
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

/// Exact (bitwise) row equality: EXPECT_EQ on a double is useless for NaN
/// keys, and "byte-identical output" is precisely the OVC contract.
void ExpectBitIdentical(const std::vector<Row>& a, const std::vector<Row>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::bit_cast<uint64_t>(a[i].key),
              std::bit_cast<uint64_t>(b[i].key))
        << i;
    EXPECT_EQ(a[i].id, b[i].id) << i;
    EXPECT_EQ(a[i].payload, b[i].payload) << i;
  }
}

class MergerOvcEquivalenceTest : public MergerTest,
                                 public ::testing::WithParamInterface<size_t> {
};

TEST_P(MergerOvcEquivalenceTest, OvcOnAndOffAreByteIdentical) {
  // Duplicate-heavy keys with every special value: the inputs where a
  // wrong offset-value-code update would first show as a reordered (or
  // nondeterministic) merge. The OVC fast path must be invisible in the
  // output and visible in the comparison counters.
  const size_t num_ways = GetParam();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const double pool[] = {0.0, -0.0, 1.0, 1.0, 1.0, 2.5, -2.5, nan, inf, -inf};
  Random rng(900 + num_ways);
  const RowComparator cmp;
  for (size_t w = 0; w < num_ways; ++w) {
    std::vector<double> keys;
    const size_t n = 1 + rng.NextUint64(120);
    for (size_t i = 0; i < n; ++i) {
      keys.push_back(pool[rng.NextUint64(sizeof(pool) / sizeof(pool[0]))]);
    }
    // Run order = query order over *normalized* keys (plain double sort
    // cannot place the NaNs).
    std::sort(keys.begin(), keys.end(), [&](double a, double b) {
      return cmp.KeyLess(a, b);
    });
    WriteRun(keys);
  }

  MetricsCounter* full = GlobalMetrics().GetCounter("sort.compare.count");
  auto merge_with = [&](bool use_ovc, std::vector<Row>* out) {
    MergeOptions options;
    options.use_ovc = use_ovc;
    auto stats = Merge(options, out);
    ASSERT_TRUE(stats.ok());
  };
  std::vector<Row> legacy, ovc;
  const uint64_t before_legacy = full->value();
  merge_with(false, &legacy);
  const uint64_t legacy_compares = full->value() - before_legacy;
  merge_with(true, &ovc);
  const uint64_t ovc_compares = full->value() - before_legacy - legacy_compares;

  ExpectBitIdentical(ovc, legacy);
  // Both streams must be totally ordered under the comparator.
  for (size_t i = 0; i + 1 < ovc.size(); ++i) {
    EXPECT_FALSE(cmp.Less(ovc[i + 1], ovc[i])) << i;
  }
  if (num_ways > 1) {
    // The point of the machinery: most tournament repairs decide on the
    // code alone, so full key comparisons must drop.
    EXPECT_LT(ovc_compares, legacy_compares);
  }
}

INSTANTIATE_TEST_SUITE_P(WayCounts, MergerOvcEquivalenceTest,
                         ::testing::Values(1, 3, 5, 7, 13));

}  // namespace
}  // namespace topk
