/// SQL "FETCH FIRST k ROWS WITH TIES" semantics across every operator:
/// the result contains the top k rows plus every row whose key equals the
/// kth row's key. Sec 2.3 calls unknown duplicate counts a robustness
/// hazard for the in-memory algorithm; these tests demonstrate both the
/// hazard and the external operators' immunity to it.

#include <gtest/gtest.h>

#include "common/random.h"
#include "tests/test_util.h"
#include "topk/heap_topk.h"
#include "topk/histogram_topk.h"
#include "topk/operator_factory.h"

namespace topk {
namespace {

using testing_util::ExpectSameRows;
using testing_util::ReferenceTopK;
using testing_util::RunOperator;
using testing_util::ScratchDir;

/// Ground truth for WITH TIES: sort, slice [offset, offset+k), then extend
/// while keys equal the boundary key.
std::vector<Row> ReferenceWithTies(std::vector<Row> rows, uint64_t k,
                                   uint64_t offset, SortDirection direction) {
  RowComparator cmp(direction);
  std::sort(rows.begin(), rows.end(), cmp);
  const size_t begin = std::min<size_t>(offset, rows.size());
  size_t end = std::min<size_t>(begin + k, rows.size());
  if (end > begin) {
    const double boundary = rows[end - 1].key;
    while (end < rows.size() && rows[end].key == boundary) ++end;
  }
  return std::vector<Row>(rows.begin() + begin, rows.begin() + end);
}

/// Keys from a tiny integer domain: every boundary has many ties.
std::vector<Row> DuplicateHeavyRows(uint64_t n, uint64_t domain,
                                    uint64_t seed) {
  Random rng(seed);
  std::vector<Row> rows;
  rows.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    rows.push_back(Row(static_cast<double>(rng.NextUint64(domain)), i,
                       std::string(8, 'p')));
  }
  return rows;
}

class WithTiesTest : public ::testing::TestWithParam<TopKAlgorithm> {
 protected:
  TopKOptions Options(uint64_t k, size_t memory_bytes) {
    TopKOptions options;
    options.k = k;
    options.with_ties = true;
    options.memory_limit_bytes = memory_bytes;
    options.env = &env_;
    options.spill_dir = scratch_.str() + "/" + std::to_string(seq_++);
    if (GetParam() == TopKAlgorithm::kHeap) {
      options.allow_unbounded_memory = true;
    }
    return options;
  }

  ScratchDir scratch_;
  StorageEnv env_;
  int seq_ = 0;
};

TEST_P(WithTiesTest, DuplicateHeavyInputMatchesReference) {
  auto rows = DuplicateHeavyRows(20000, 40, 1);
  auto expected =
      ReferenceWithTies(rows, 1000, 0, SortDirection::kAscending);
  ASSERT_GT(expected.size(), 1000u);  // the boundary really has ties

  auto op = MakeTopKOperator(GetParam(), Options(1000, 24 * 1024));
  ASSERT_TRUE(op.ok());
  auto result = RunOperator(op->get(), rows);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectSameRows(expected, *result);
}

TEST_P(WithTiesTest, UniqueKeysDegradeToPlainTopK) {
  DatasetSpec spec;
  spec.WithRows(15000).WithSeed(2);
  auto rows = testing_util::MaterializeDataset(spec);
  auto op = MakeTopKOperator(GetParam(), Options(700, 24 * 1024));
  ASSERT_TRUE(op.ok());
  auto result = RunOperator(op->get(), rows);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Continuous keys: ties are measure-zero, result is exactly top-k.
  ExpectSameRows(ReferenceTopK(rows, 700, 0, SortDirection::kAscending),
                 *result);
}

TEST_P(WithTiesTest, OffsetCombinesWithTies) {
  auto rows = DuplicateHeavyRows(15000, 25, 3);
  auto expected =
      ReferenceWithTies(rows, 500, 123, SortDirection::kAscending);
  TopKOptions options = Options(500, 24 * 1024);
  options.offset = 123;
  auto op = MakeTopKOperator(GetParam(), options);
  ASSERT_TRUE(op.ok());
  auto result = RunOperator(op->get(), rows);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectSameRows(expected, *result);
}

TEST_P(WithTiesTest, DescendingDirection) {
  auto rows = DuplicateHeavyRows(10000, 30, 4);
  auto expected =
      ReferenceWithTies(rows, 800, 0, SortDirection::kDescending);
  TopKOptions options = Options(800, 24 * 1024);
  options.direction = SortDirection::kDescending;
  auto op = MakeTopKOperator(GetParam(), options);
  ASSERT_TRUE(op.ok());
  auto result = RunOperator(op->get(), rows);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectSameRows(expected, *result);
}

TEST_P(WithTiesTest, AllKeysEqualReturnsEverything) {
  std::vector<Row> rows;
  for (int i = 0; i < 5000; ++i) rows.push_back(Row(7.0, i));
  auto op = MakeTopKOperator(GetParam(), Options(100, 24 * 1024));
  ASSERT_TRUE(op.ok());
  auto result = RunOperator(op->get(), rows);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->size(), 5000u);  // every row ties with the kth
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, WithTiesTest,
    ::testing::Values(TopKAlgorithm::kHeap,
                      TopKAlgorithm::kTraditionalExternal,
                      TopKAlgorithm::kOptimizedExternal,
                      TopKAlgorithm::kHistogram),
    [](const ::testing::TestParamInfo<TopKAlgorithm>& info) {
      std::string name = TopKAlgorithmName(info.param);
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

TEST(WithTiesRobustnessTest, HeapFailsOnUnboundedDuplicates) {
  // Sec 2.3: "if rows with key values equal to the kth key value are
  // desired and the number of duplicate rows is unknown, then this
  // algorithm may unexpectedly fail."
  ScratchDir scratch;
  TopKOptions options;
  options.k = 10;
  options.with_ties = true;
  options.memory_limit_bytes = 8 * 1024;
  auto op = HeapTopK::Make(options);
  ASSERT_TRUE(op.ok());
  Status status = Status::OK();
  for (int i = 0; i < 100000 && status.ok(); ++i) {
    status = (*op)->Consume(Row(1.0, i, std::string(32, 't')));
  }
  EXPECT_EQ(status.code(), StatusCode::kOutOfMemory);
}

TEST(WithTiesRobustnessTest, HistogramSwitchesToExternalAndSucceeds) {
  // The adaptive operator hits the same duplicate flood, spills, and
  // still returns the complete tied answer.
  ScratchDir scratch;
  StorageEnv env;
  TopKOptions options;
  options.k = 10;
  options.with_ties = true;
  options.memory_limit_bytes = 8 * 1024;
  options.env = &env;
  options.spill_dir = scratch.str();
  auto op = HistogramTopK::Make(options);
  ASSERT_TRUE(op.ok());
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE((*op)->Consume(Row(1.0, i, std::string(32, 't'))).ok());
  }
  auto result = (*op)->Finish();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE((*op)->is_external());
  EXPECT_EQ(result->size(), static_cast<size_t>(n));  // all rows tie
}

TEST(WithTiesRobustnessTest, TiesNeverEliminatedByFilter) {
  // Property: over many random duplicate-heavy configurations, no tied
  // boundary row is ever lost to the cutoff filter.
  for (uint64_t seed = 0; seed < 6; ++seed) {
    ScratchDir scratch;
    StorageEnv env;
    Random rng(seed);
    auto rows = DuplicateHeavyRows(8000 + rng.NextUint64(20000),
                                   2 + rng.NextUint64(60), seed * 11 + 3);
    const uint64_t k = 50 + rng.NextUint64(2000);
    TopKOptions options;
    options.k = k;
    options.with_ties = true;
    options.memory_limit_bytes = 8 * 1024 + rng.NextUint64(32 * 1024);
    options.histogram_buckets_per_run = 1 + rng.NextUint64(60);
    options.env = &env;
    options.spill_dir = scratch.str();
    auto op = HistogramTopK::Make(options);
    ASSERT_TRUE(op.ok());
    auto result = RunOperator(op->get(), rows);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectSameRows(
        ReferenceWithTies(rows, k, 0, SortDirection::kAscending), *result);
  }
}

}  // namespace
}  // namespace topk
