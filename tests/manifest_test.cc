#include "io/manifest.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "io/spill_manager.h"
#include "sort/merger.h"
#include "tests/test_util.h"

namespace topk {
namespace {

using testing_util::ScratchDir;

class ManifestTest : public ::testing::Test {
 protected:
  /// Builds a spill directory with `num_runs` indexed runs and returns the
  /// registered metadata.
  std::vector<RunMeta> BuildRuns(SpillManager* spill, int num_runs,
                                 int rows_per_run, uint64_t seed) {
    RowComparator cmp;
    Random rng(seed);
    uint64_t id = 0;
    for (int r = 0; r < num_runs; ++r) {
      auto writer = spill->NewRun(cmp, /*index_stride=*/16);
      EXPECT_TRUE(writer.ok());
      std::vector<double> keys;
      for (int i = 0; i < rows_per_run; ++i) keys.push_back(rng.NextDouble());
      std::sort(keys.begin(), keys.end());
      for (double key : keys) {
        EXPECT_TRUE((*writer)->Append(Row(key, id++, "p")).ok());
      }
      auto meta = (*writer)->Finish();
      EXPECT_TRUE(meta.ok());
      // Attach a small histogram like an operator would.
      meta->histogram.push_back(
          HistogramBucket{keys[rows_per_run / 2], 50});
      spill->AddRun(*meta);
    }
    return spill->runs();
  }

  ScratchDir scratch_;
  StorageEnv env_;
};

TEST_F(ManifestTest, WriteReadRoundTrip) {
  auto spill = SpillManager::Create(&env_, scratch_.str() + "/spill");
  ASSERT_TRUE(spill.ok());
  auto runs = BuildRuns(spill->get(), 4, 100, 1);

  const std::string path = scratch_.str() + "/m.manifest";
  ASSERT_TRUE(WriteManifest(&env_, path, runs).ok());
  auto loaded = ReadManifest(&env_, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), runs.size());
  for (size_t i = 0; i < runs.size(); ++i) {
    const RunMeta& a = runs[i];
    const RunMeta& b = (*loaded)[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.path, b.path);
    EXPECT_EQ(a.rows, b.rows);
    EXPECT_EQ(a.bytes, b.bytes);
    EXPECT_EQ(a.first_key, b.first_key);  // %.17g round-trips exactly
    EXPECT_EQ(a.last_key, b.last_key);
    EXPECT_EQ(a.crc32c, b.crc32c);
    ASSERT_EQ(a.histogram.size(), b.histogram.size());
    for (size_t j = 0; j < a.histogram.size(); ++j) {
      EXPECT_EQ(a.histogram[j], b.histogram[j]);
    }
    ASSERT_EQ(a.index.size(), b.index.size());
    for (size_t j = 0; j < a.index.size(); ++j) {
      EXPECT_EQ(a.index[j].key, b.index[j].key);
      EXPECT_EQ(a.index[j].rows, b.index[j].rows);
      EXPECT_EQ(a.index[j].bytes, b.index[j].bytes);
    }
  }
}

TEST_F(ManifestTest, EmptyRegistryRoundTrips) {
  const std::string path = scratch_.str() + "/empty.manifest";
  ASSERT_TRUE(WriteManifest(&env_, path, {}).ok());
  auto loaded = ReadManifest(&env_, path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
}

TEST_F(ManifestTest, CorruptManifestsRejected) {
  const std::string dir = scratch_.str();
  auto write = [&](const std::string& name, const std::string& content) {
    auto file = env_.NewWritableFile(dir + "/" + name);
    EXPECT_TRUE(file.ok());
    EXPECT_TRUE((*file)->Append(content).ok());
    EXPECT_TRUE((*file)->Close().ok());
    return dir + "/" + name;
  };

  EXPECT_EQ(ReadManifest(&env_, write("bad1", "not a manifest\n"))
                .status()
                .code(),
            StatusCode::kCorruption);
  EXPECT_EQ(ReadManifest(&env_, write("bad2", "topk-manifest v1\n"))
                .status()
                .code(),
            StatusCode::kCorruption);  // no end record
  EXPECT_EQ(
      ReadManifest(&env_,
                   write("bad3", "topk-manifest v1\nrun zzz\nend 1\n"))
          .status()
          .code(),
      StatusCode::kCorruption);
  EXPECT_EQ(
      ReadManifest(&env_, write("bad4", "topk-manifest v1\nend 3\n"))
          .status()
          .code(),
      StatusCode::kCorruption);  // count mismatch
  EXPECT_EQ(
      ReadManifest(
          &env_,
          write("bad5",
                "topk-manifest v1\nhist 0 0.5 10\nend 0\n"))
          .status()
          .code(),
      StatusCode::kCorruption);  // hist before its run
  EXPECT_EQ(
      ReadManifest(&env_, write("bad6",
                                "topk-manifest v1\nend 0\nrun trailing\n"))
          .status()
          .code(),
      StatusCode::kCorruption);  // content after end
}

TEST_F(ManifestTest, RestoreResumesMergePhase) {
  const std::string dir = scratch_.str() + "/resumable";
  std::vector<double> all_keys;

  // Phase 1: an "operator" generates runs, saves a manifest, and dies
  // without cleaning up (simulated crash: release() leaks the manager so
  // the directory survives).
  {
    auto spill = SpillManager::Create(&env_, dir);
    ASSERT_TRUE(spill.ok());
    auto runs = BuildRuns(spill->get(), 5, 200, 2);
    for (const RunMeta& meta : runs) {
      auto reader = spill.value()->OpenRun(meta);
      ASSERT_TRUE(reader.ok());
      Row row;
      bool eof = false;
      for (;;) {
        ASSERT_TRUE((*reader)->Next(&row, &eof).ok());
        if (eof) break;
        all_keys.push_back(row.key);
      }
    }
    ASSERT_TRUE(spill.value()->SaveManifest("state.manifest").ok());
    (void)spill->release();  // crash: no destructor, directory stays
  }

  // Phase 2: a fresh process restores the spill state and finishes the
  // merge.
  auto restored = SpillManager::Restore(&env_, dir, "state.manifest",
                                        /*verify_runs=*/true);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ((*restored)->run_count(), 5u);

  std::vector<Row> merged;
  auto stats = MergeRuns(restored->get(), (*restored)->runs(),
                         RowComparator(), MergeOptions{}, [&](Row&& row) {
                           merged.push_back(std::move(row));
                           return Status::OK();
                         });
  ASSERT_TRUE(stats.ok());
  std::sort(all_keys.begin(), all_keys.end());
  ASSERT_EQ(merged.size(), all_keys.size());
  for (size_t i = 0; i < merged.size(); ++i) {
    ASSERT_EQ(merged[i].key, all_keys[i]);
  }

  // Run-id allocation continues past the restored runs.
  auto writer = (*restored)->NewRun(RowComparator());
  ASSERT_TRUE(writer.ok());
  EXPECT_GE((*writer)->run_id(), 5u);
}

TEST_F(ManifestTest, AsyncSaveManifestRoundTripsThroughIoPool) {
  const std::string dir = scratch_.str() + "/async";
  IoPipelineOptions io;
  io.background_threads = 2;
  std::vector<RunMeta> runs;
  {
    auto spill = SpillManager::Create(&env_, dir, io);
    ASSERT_TRUE(spill.ok());
    ASSERT_NE((*spill)->io_pool(), nullptr);
    runs = BuildRuns(spill->get(), 3, 100, 7);
    // Repeated saves (one per finished run is the expected cadence) — each
    // is scheduled on the pool, at most one in flight at a time.
    ASSERT_TRUE((*spill)->SaveManifest("state.manifest").ok());
    ASSERT_TRUE((*spill)->SaveManifest("state.manifest").ok());
    // Barrier: after FlushManifest the file must be durable and current.
    ASSERT_TRUE((*spill)->FlushManifest().ok());

    auto loaded = ReadManifest(&env_, dir + "/state.manifest");
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ASSERT_EQ(loaded->size(), runs.size());
    for (size_t i = 0; i < runs.size(); ++i) {
      EXPECT_EQ((*loaded)[i].id, runs[i].id);
      EXPECT_EQ((*loaded)[i].rows, runs[i].rows);
      EXPECT_EQ((*loaded)[i].crc32c, runs[i].crc32c);
    }
    (void)spill->release();  // keep the directory for Restore below
  }

  // A restored manager (itself pooled) sees exactly the saved registry.
  auto restored = SpillManager::Restore(&env_, dir, "state.manifest",
                                        /*verify_runs=*/true,
                                        RowComparator(), io);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ((*restored)->run_count(), runs.size());
}

TEST_F(ManifestTest, AsyncSaveManifestSurfacesLatchedWriteError) {
  IoPipelineOptions io;
  io.background_threads = 1;
  auto spill = SpillManager::Create(&env_, scratch_.str() + "/latch", io);
  ASSERT_TRUE(spill.ok());
  BuildRuns(spill->get(), 1, 50, 9);

  env_.InjectWriteFailure(1);  // the scheduled manifest write fails
  ASSERT_TRUE((*spill)->SaveManifest("state.manifest").ok());
  // The failure surfaces on the flush barrier, then clears.
  EXPECT_EQ((*spill)->FlushManifest().code(), StatusCode::kIoError);
  EXPECT_TRUE((*spill)->FlushManifest().ok());
  // And a retry after the fault goes through.
  ASSERT_TRUE((*spill)->SaveManifest("state.manifest").ok());
  EXPECT_TRUE((*spill)->FlushManifest().ok());
  auto loaded = ReadManifest(&env_, scratch_.str() + "/latch/state.manifest");
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
}

TEST_F(ManifestTest, RestoreVerifyCatchesTamperedRun) {
  const std::string dir = scratch_.str() + "/tampered";
  {
    auto spill = SpillManager::Create(&env_, dir);
    ASSERT_TRUE(spill.ok());
    auto runs = BuildRuns(spill->get(), 2, 100, 3);
    ASSERT_TRUE(spill.value()->SaveManifest("state.manifest").ok());
    // Corrupt one run file before the "crash".
    std::FILE* f = std::fopen(runs[0].path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 100, SEEK_SET);
    std::fputc('X', f);
    std::fclose(f);
    (void)spill->release();
  }
  auto restored = SpillManager::Restore(&env_, dir, "state.manifest",
                                        /*verify_runs=*/true);
  EXPECT_EQ(restored.status().code(), StatusCode::kCorruption);
  // Without verification the registry loads; corruption would surface at
  // merge time instead.
  auto lax = SpillManager::Restore(&env_, dir, "state.manifest",
                                   /*verify_runs=*/false);
  EXPECT_TRUE(lax.ok());
}

}  // namespace
}  // namespace topk
