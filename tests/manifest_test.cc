#include "io/manifest.h"

#include <gtest/gtest.h>

#include <fstream>
#include <iterator>

#include "common/crc32.h"
#include "common/random.h"
#include "io/spill_manager.h"
#include "sort/merger.h"
#include "tests/test_util.h"

namespace topk {
namespace {

using testing_util::ScratchDir;

class ManifestTest : public ::testing::Test {
 protected:
  /// Builds a spill directory with `num_runs` indexed runs and returns the
  /// registered metadata.
  std::vector<RunMeta> BuildRuns(SpillManager* spill, int num_runs,
                                 int rows_per_run, uint64_t seed) {
    RowComparator cmp;
    Random rng(seed);
    uint64_t id = 0;
    for (int r = 0; r < num_runs; ++r) {
      auto writer = spill->NewRun(cmp, /*index_stride=*/16);
      EXPECT_TRUE(writer.ok());
      std::vector<double> keys;
      for (int i = 0; i < rows_per_run; ++i) keys.push_back(rng.NextDouble());
      std::sort(keys.begin(), keys.end());
      for (double key : keys) {
        EXPECT_TRUE((*writer)->Append(Row(key, id++, "p")).ok());
      }
      auto meta = (*writer)->Finish();
      EXPECT_TRUE(meta.ok());
      // Attach a small histogram like an operator would.
      meta->histogram.push_back(
          HistogramBucket{keys[rows_per_run / 2], 50});
      spill->AddRun(*meta);
    }
    return spill->runs();
  }

  ScratchDir scratch_;
  StorageEnv env_;
};

TEST_F(ManifestTest, WriteReadRoundTrip) {
  auto spill = SpillManager::Create(&env_, scratch_.str() + "/spill");
  ASSERT_TRUE(spill.ok());
  auto runs = BuildRuns(spill->get(), 4, 100, 1);

  const std::string path = scratch_.str() + "/m.manifest";
  ASSERT_TRUE(WriteManifest(&env_, path, runs).ok());
  auto loaded = ReadManifest(&env_, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), runs.size());
  for (size_t i = 0; i < runs.size(); ++i) {
    const RunMeta& a = runs[i];
    const RunMeta& b = (*loaded)[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.path, b.path);
    EXPECT_EQ(a.rows, b.rows);
    EXPECT_EQ(a.bytes, b.bytes);
    EXPECT_EQ(a.first_key, b.first_key);  // %.17g round-trips exactly
    EXPECT_EQ(a.last_key, b.last_key);
    EXPECT_EQ(a.crc32c, b.crc32c);
    ASSERT_EQ(a.histogram.size(), b.histogram.size());
    for (size_t j = 0; j < a.histogram.size(); ++j) {
      EXPECT_EQ(a.histogram[j], b.histogram[j]);
    }
    ASSERT_EQ(a.index.size(), b.index.size());
    for (size_t j = 0; j < a.index.size(); ++j) {
      EXPECT_EQ(a.index[j].key, b.index[j].key);
      EXPECT_EQ(a.index[j].rows, b.index[j].rows);
      EXPECT_EQ(a.index[j].bytes, b.index[j].bytes);
    }
  }
}

TEST_F(ManifestTest, EmptyRegistryRoundTrips) {
  const std::string path = scratch_.str() + "/empty.manifest";
  ASSERT_TRUE(WriteManifest(&env_, path, {}).ok());
  auto loaded = ReadManifest(&env_, path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
}

TEST_F(ManifestTest, CorruptManifestsRejected) {
  const std::string dir = scratch_.str();
  auto write = [&](const std::string& name, const std::string& content) {
    auto file = env_.NewWritableFile(dir + "/" + name);
    EXPECT_TRUE(file.ok());
    EXPECT_TRUE((*file)->Append(content).ok());
    EXPECT_TRUE((*file)->Close().ok());
    return dir + "/" + name;
  };
  // Appends a correct `end <count> <crc>` record so the case under test
  // reaches the semantic checks instead of dying on the checksum.
  auto seal = [](std::string content, uint64_t count) {
    const uint32_t crc = Crc32c(0, content.data(), content.size());
    return content + "end " + std::to_string(count) + " " +
           std::to_string(crc) + "\n";
  };

  EXPECT_EQ(ReadManifest(&env_, write("bad1", "not a manifest\n"))
                .status()
                .code(),
            StatusCode::kCorruption);
  EXPECT_EQ(ReadManifest(&env_, write("bad2", "topk-manifest v1\n"))
                .status()
                .code(),
            StatusCode::kCorruption);  // old version header
  EXPECT_EQ(ReadManifest(&env_, write("bad3", "topk-manifest v2\n"))
                .status()
                .code(),
            StatusCode::kCorruption);  // no end record
  EXPECT_EQ(
      ReadManifest(
          &env_,
          write("bad4", seal("topk-manifest v2\nrun zzz\n", 1)))
          .status()
          .code(),
      StatusCode::kCorruption);  // malformed run record
  EXPECT_EQ(
      ReadManifest(&env_, write("bad5", seal("topk-manifest v2\n", 3)))
          .status()
          .code(),
      StatusCode::kCorruption);  // count mismatch
  EXPECT_EQ(
      ReadManifest(
          &env_,
          write("bad6", seal("topk-manifest v2\nhist 0 0.5 10\n", 0)))
          .status()
          .code(),
      StatusCode::kCorruption);  // hist before its run
  EXPECT_EQ(
      ReadManifest(
          &env_,
          write("bad7", seal("topk-manifest v2\n", 0) + "run trailing\n"))
          .status()
          .code(),
      StatusCode::kCorruption);  // content after end
  EXPECT_EQ(
      ReadManifest(&env_, write("bad8", "topk-manifest v2\nend 0 12345\n"))
          .status()
          .code(),
      StatusCode::kCorruption);  // end CRC wrong
  EXPECT_EQ(
      ReadManifest(
          &env_,
          write("bad9", seal("topk-manifest v2\n", 0).substr(
                            0, seal("topk-manifest v2\n", 0).size() - 1) +
                            "garbage\n"))
          .status()
          .code(),
      StatusCode::kCorruption);  // trailing bytes on the end record
}

/// The corruption grid (Sec 8 fault model): starting from a real manifest,
/// truncate at every line boundary and flip a bit in every byte. Every
/// mutation must be rejected with Corruption — never a crash, never a
/// partially-loaded registry. Single-bit flips ahead of the end record are
/// caught by its CRC-32C even when the mutated field still parses.
TEST_F(ManifestTest, CorruptionGridRejectsEveryMutation) {
  auto spill = SpillManager::Create(&env_, scratch_.str() + "/spill");
  ASSERT_TRUE(spill.ok());
  auto runs = BuildRuns(spill->get(), 3, 64, 5);
  const std::string path = scratch_.str() + "/grid.manifest";
  ASSERT_TRUE(WriteManifest(&env_, path, runs).ok());

  std::string content;
  {
    auto file = env_.NewSequentialFile(path);
    ASSERT_TRUE(file.ok());
    char buf[64 * 1024];
    size_t got = 0;
    ASSERT_TRUE((*file)->Read(sizeof(buf), buf, &got).ok());
    ASSERT_LT(got, sizeof(buf)) << "grid assumes the manifest fits one read";
    content.assign(buf, got);
  }
  ASSERT_GT(content.size(), 0u);

  const std::string mutant_path = scratch_.str() + "/mutant.manifest";
  auto write_mutant = [&](const std::string& mutated) {
    auto file = env_.NewWritableFile(mutant_path);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append(mutated).ok());
    ASSERT_TRUE((*file)->Close().ok());
  };

  // Truncation at every line boundary (both keeping and dropping the
  // newline). Only the untruncated file may load; everything shorter is a
  // torn write and must be rejected.
  for (size_t i = 0; i < content.size(); ++i) {
    if (content[i] != '\n') continue;
    for (const size_t cut : {i, i + 1}) {
      // cut == size is the intact manifest; cut == size-1 merely drops the
      // trailing newline, which the parser deliberately tolerates.
      if (cut + 1 >= content.size()) continue;
      SCOPED_TRACE("truncated to " + std::to_string(cut) + " bytes");
      write_mutant(content.substr(0, cut));
      auto loaded = ReadManifest(&env_, mutant_path);
      ASSERT_FALSE(loaded.ok());
      EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
    }
  }

  // A single-bit flip in every byte, covering every field of every record
  // (run, hist, index, header, and the end record itself).
  for (size_t i = 0; i < content.size(); ++i) {
    SCOPED_TRACE("bit flip at byte " + std::to_string(i));
    std::string mutated = content;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x40);
    write_mutant(mutated);
    auto loaded = ReadManifest(&env_, mutant_path);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  }
}

TEST_F(ManifestTest, RestoreResumesMergePhase) {
  const std::string dir = scratch_.str() + "/resumable";
  std::vector<double> all_keys;

  // Phase 1: an "operator" generates runs, saves a manifest, and dies
  // without cleaning up (simulated crash: DisownDir() makes the destructor
  // leave the directory behind, as a real crash would).
  {
    auto spill = SpillManager::Create(&env_, dir);
    ASSERT_TRUE(spill.ok());
    auto runs = BuildRuns(spill->get(), 5, 200, 2);
    for (const RunMeta& meta : runs) {
      auto reader = spill.value()->OpenRun(meta);
      ASSERT_TRUE(reader.ok());
      Row row;
      bool eof = false;
      for (;;) {
        ASSERT_TRUE((*reader)->Next(&row, &eof).ok());
        if (eof) break;
        all_keys.push_back(row.key);
      }
    }
    ASSERT_TRUE(spill.value()->SaveManifest("state.manifest").ok());
    spill.value()->DisownDir();  // crash: the directory stays
  }

  // Phase 2: a fresh process restores the spill state and finishes the
  // merge.
  auto restored = SpillManager::Restore(&env_, dir, "state.manifest",
                                        /*verify_runs=*/true);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ((*restored)->run_count(), 5u);

  std::vector<Row> merged;
  auto stats = MergeRuns(restored->get(), (*restored)->runs(),
                         RowComparator(), MergeOptions{}, [&](Row&& row) {
                           merged.push_back(std::move(row));
                           return Status::OK();
                         });
  ASSERT_TRUE(stats.ok());
  std::sort(all_keys.begin(), all_keys.end());
  ASSERT_EQ(merged.size(), all_keys.size());
  for (size_t i = 0; i < merged.size(); ++i) {
    ASSERT_EQ(merged[i].key, all_keys[i]);
  }

  // Run-id allocation continues past the restored runs.
  auto writer = (*restored)->NewRun(RowComparator());
  ASSERT_TRUE(writer.ok());
  EXPECT_GE((*writer)->run_id(), 5u);
}

TEST_F(ManifestTest, AsyncSaveManifestRoundTripsThroughIoPool) {
  const std::string dir = scratch_.str() + "/async";
  IoPipelineOptions io;
  io.background_threads = 2;
  std::vector<RunMeta> runs;
  {
    auto spill = SpillManager::Create(&env_, dir, io);
    ASSERT_TRUE(spill.ok());
    ASSERT_NE((*spill)->io_pool(), nullptr);
    runs = BuildRuns(spill->get(), 3, 100, 7);
    // Repeated saves (one per finished run is the expected cadence) — each
    // is scheduled on the pool, at most one in flight at a time.
    ASSERT_TRUE((*spill)->SaveManifest("state.manifest").ok());
    ASSERT_TRUE((*spill)->SaveManifest("state.manifest").ok());
    // Barrier: after FlushManifest the file must be durable and current.
    ASSERT_TRUE((*spill)->FlushManifest().ok());

    auto loaded = ReadManifest(&env_, dir + "/state.manifest");
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ASSERT_EQ(loaded->size(), runs.size());
    for (size_t i = 0; i < runs.size(); ++i) {
      EXPECT_EQ((*loaded)[i].id, runs[i].id);
      EXPECT_EQ((*loaded)[i].rows, runs[i].rows);
      EXPECT_EQ((*loaded)[i].crc32c, runs[i].crc32c);
    }
    spill.value()->DisownDir();  // keep the directory for Restore below
  }

  // A restored manager (itself pooled) sees exactly the saved registry.
  auto restored = SpillManager::Restore(&env_, dir, "state.manifest",
                                        /*verify_runs=*/true,
                                        RowComparator(), io);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ((*restored)->run_count(), runs.size());
}

TEST_F(ManifestTest, AsyncSaveManifestSurfacesLatchedWriteError) {
  IoPipelineOptions io;
  io.background_threads = 1;
  auto spill = SpillManager::Create(&env_, scratch_.str() + "/latch", io);
  ASSERT_TRUE(spill.ok());
  BuildRuns(spill->get(), 1, 50, 9);

  env_.InjectWriteFailure(1);  // the scheduled manifest write fails
  ASSERT_TRUE((*spill)->SaveManifest("state.manifest").ok());
  // The failure surfaces on the flush barrier, then clears.
  EXPECT_EQ((*spill)->FlushManifest().code(), StatusCode::kIoError);
  EXPECT_TRUE((*spill)->FlushManifest().ok());
  // And a retry after the fault goes through.
  ASSERT_TRUE((*spill)->SaveManifest("state.manifest").ok());
  EXPECT_TRUE((*spill)->FlushManifest().ok());
  auto loaded = ReadManifest(&env_, scratch_.str() + "/latch/state.manifest");
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
}

TEST_F(ManifestTest, RestoreVerifyCatchesTamperedRun) {
  const std::string dir = scratch_.str() + "/tampered";
  {
    auto spill = SpillManager::Create(&env_, dir);
    ASSERT_TRUE(spill.ok());
    auto runs = BuildRuns(spill->get(), 2, 100, 3);
    ASSERT_TRUE(spill.value()->SaveManifest("state.manifest").ok());
    // Corrupt one run file before the "crash".
    std::FILE* f = std::fopen(runs[0].path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 100, SEEK_SET);
    std::fputc('X', f);
    std::fclose(f);
    spill.value()->DisownDir();
  }
  auto restored = SpillManager::Restore(&env_, dir, "state.manifest",
                                        /*verify_runs=*/true);
  EXPECT_EQ(restored.status().code(), StatusCode::kCorruption);
  // Without verification the registry loads; corruption would surface at
  // merge time instead.
  auto lax = SpillManager::Restore(&env_, dir, "state.manifest",
                                   /*verify_runs=*/false);
  EXPECT_TRUE(lax.ok());
}

TEST_F(ManifestTest, CheckpointRoundTripsWithCutoff) {
  auto spill = SpillManager::Create(&env_, scratch_.str() + "/spill");
  ASSERT_TRUE(spill.ok());
  auto runs = BuildRuns(spill->get(), 3, 50, 9);

  ManifestCheckpoint ckpt;
  ckpt.input_rows_consumed = 123456;
  ckpt.run_id_bound = 3;
  ckpt.has_cutoff = true;
  ckpt.cutoff = 0.123456789012345678;  // %.17g must round-trip exactly
  const std::string path = scratch_.str() + "/ckpt.manifest";
  ASSERT_TRUE(WriteManifest(&env_, path, runs, RetryPolicy(), &ckpt).ok());

  ManifestCheckpoint loaded;
  bool has_ckpt = false;
  auto read = ReadManifest(&env_, path, RetryPolicy(), &loaded, &has_ckpt);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->size(), runs.size());
  ASSERT_TRUE(has_ckpt);
  EXPECT_EQ(loaded.input_rows_consumed, 123456u);
  EXPECT_EQ(loaded.run_id_bound, 3u);
  ASSERT_TRUE(loaded.has_cutoff);
  EXPECT_EQ(loaded.cutoff, ckpt.cutoff);
}

TEST_F(ManifestTest, CheckpointRoundTripsWithoutCutoff) {
  auto spill = SpillManager::Create(&env_, scratch_.str() + "/spill");
  ASSERT_TRUE(spill.ok());
  auto runs = BuildRuns(spill->get(), 2, 50, 10);

  ManifestCheckpoint ckpt;
  ckpt.input_rows_consumed = 7;
  ckpt.run_id_bound = 0;  // 0 runs covered: exclusive bound must survive
  ckpt.has_cutoff = false;
  const std::string path = scratch_.str() + "/nocutoff.manifest";
  ASSERT_TRUE(WriteManifest(&env_, path, runs, RetryPolicy(), &ckpt).ok());

  ManifestCheckpoint loaded;
  bool has_ckpt = false;
  ASSERT_TRUE(
      ReadManifest(&env_, path, RetryPolicy(), &loaded, &has_ckpt).ok());
  ASSERT_TRUE(has_ckpt);
  EXPECT_EQ(loaded.input_rows_consumed, 7u);
  EXPECT_EQ(loaded.run_id_bound, 0u);
  EXPECT_FALSE(loaded.has_cutoff);
}

TEST_F(ManifestTest, NoCheckpointStaysV2ByteStable) {
  // A checkpoint-free write must produce the v2 format byte-for-byte, so
  // manifests written by pre-checkpoint builds and by this build are
  // interchangeable when the feature is unused.
  auto spill = SpillManager::Create(&env_, scratch_.str() + "/spill");
  ASSERT_TRUE(spill.ok());
  auto runs = BuildRuns(spill->get(), 2, 50, 11);

  const std::string path = scratch_.str() + "/v2.manifest";
  ASSERT_TRUE(WriteManifest(&env_, path, runs).ok());
  std::ifstream in(path);
  std::string first_line;
  ASSERT_TRUE(static_cast<bool>(std::getline(in, first_line)));
  EXPECT_EQ(first_line.find("topk-manifest v2"), 0u) << first_line;
  std::string rest((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(rest.find("ckpt"), std::string::npos);

  bool has_ckpt = true;
  ManifestCheckpoint ignored;
  ASSERT_TRUE(
      ReadManifest(&env_, path, RetryPolicy(), &ignored, &has_ckpt).ok());
  EXPECT_FALSE(has_ckpt);
}

TEST_F(ManifestTest, CheckpointCorruptionsAreRejected) {
  auto spill = SpillManager::Create(&env_, scratch_.str() + "/spill");
  ASSERT_TRUE(spill.ok());
  auto runs = BuildRuns(spill->get(), 2, 50, 12);
  ManifestCheckpoint ckpt;
  ckpt.input_rows_consumed = 99;
  ckpt.run_id_bound = 2;
  ckpt.has_cutoff = true;
  ckpt.cutoff = 0.5;
  const std::string good_path = scratch_.str() + "/good.manifest";
  ASSERT_TRUE(
      WriteManifest(&env_, good_path, runs, RetryPolicy(), &ckpt).ok());
  std::string good;
  {
    std::ifstream in(good_path);
    good.assign((std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
  }
  // Strip the end record; tampered bodies are resealed with a fresh CRC so
  // the ckpt-specific validation is what rejects them, not the checksum.
  const size_t end_pos = good.rfind("end ");
  ASSERT_NE(end_pos, std::string::npos);
  const std::string body = good.substr(0, end_pos);
  const auto reseal = [&](const std::string& tampered_body) {
    const uint32_t crc =
        Crc32c(0, tampered_body.data(), tampered_body.size());
    return tampered_body + "end " + std::to_string(runs.size()) + " " +
           std::to_string(crc) + "\n";
  };
  const auto write_tampered = [&](const std::string& content) {
    const std::string path = scratch_.str() + "/tampered.manifest";
    std::ofstream out(path, std::ios::trunc);
    out << content;
    out.close();
    return path;
  };
  const auto expect_corrupt = [&](const std::string& content,
                                  const char* what) {
    auto read = ReadManifest(&env_, write_tampered(content));
    EXPECT_EQ(read.status().code(), StatusCode::kCorruption) << what;
  };

  // A ckpt record smuggled into a v2 header is not valid v2.
  std::string v2_with_ckpt = body;
  v2_with_ckpt.replace(v2_with_ckpt.find("topk-manifest v3"),
                       std::string("topk-manifest v3").size(),
                       "topk-manifest v2");
  expect_corrupt(reseal(v2_with_ckpt), "ckpt in v2");

  // Two ckpt records contradict each other.
  const size_t ckpt_pos = body.find("ckpt ");
  ASSERT_NE(ckpt_pos, std::string::npos);
  const size_t ckpt_end = body.find('\n', ckpt_pos) + 1;
  std::string duplicated =
      body.substr(0, ckpt_end) + body.substr(ckpt_pos, ckpt_end - ckpt_pos) +
      body.substr(ckpt_end);
  expect_corrupt(reseal(duplicated), "duplicate ckpt");

  // A malformed cutoff field is corruption, not a silent default.
  std::string bad_cutoff = body;
  bad_cutoff.replace(ckpt_pos, ckpt_end - ckpt_pos, "ckpt 99 2 banana\n");
  expect_corrupt(reseal(bad_cutoff), "malformed cutoff");

  // Truncated mid-ckpt (torn write of the record itself): no end record
  // survives, so this one is the checksum/footer path by design.
  expect_corrupt(good.substr(0, ckpt_pos + 6), "truncated ckpt");
}

}  // namespace
}  // namespace topk
